// Metrics registry: counters, gauges, fixed-bucket histograms.
//
// The campaign is the product's hot loop, and until now its own health was
// invisible while it ran — counters lived in ad-hoc RunRecord fields and
// surfaced only after the last trial. This registry gives every layer a
// uniform, cheap place to publish operational numbers:
//
//   * Counter    monotonic u64, incremented from any thread
//   * Gauge      last-write-wins i64 (single logical writer)
//   * Histogram  fixed upper-bound buckets + count/sum, fed from any thread
//
// Write path: per-thread lock-free shards. Each thread is assigned a stable
// shard slot once (thread_local), and Inc()/Observe() is one relaxed
// fetch_add on a cache-line-padded atomic in that shard — no locks, no
// false sharing, TSan-clean. Aggregation happens only at scrape time
// (Value()/BucketCounts()/ToJson()), which sums the shards with relaxed
// loads; scrapes are monotone but deliberately not linearizable snapshots.
//
// Identity-safety rule (DESIGN.md §5.5): nothing in this registry may feed
// back into campaign results. Metrics are observation only — reports, CSVs
// and spools are byte-identical whether or not anyone ever scrapes.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace chaser::obs {

/// Number of write shards per metric. Power of two; threads hash onto
/// shards, so contention only appears when > kMetricShards threads write
/// the same metric simultaneously (and even then it is one relaxed RMW).
inline constexpr std::size_t kMetricShards = 16;

/// Stable per-thread shard index in [0, kMetricShards). Assigned round-robin
/// on first use per thread, so up to kMetricShards concurrent threads get
/// collision-free slots.
std::size_t ThreadShardSlot();

class Counter {
 public:
  void Inc(std::uint64_t n = 1) {
    shards_[ThreadShardSlot()].v.fetch_add(n, std::memory_order_relaxed);
  }
  /// Sum over shards (relaxed; monotone, not a linearizable snapshot).
  std::uint64_t Value() const;
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::string name_;
  Shard shards_[kMetricShards];
};

class Gauge {
 public:
  void Set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// one implicit overflow bucket catches everything past the last bound.
/// Bucket layout and edge rule: sample s lands in the first bucket with
/// s <= bounds[i], else in the overflow bucket.
class Histogram {
 public:
  void Observe(std::uint64_t sample);

  std::uint64_t Count() const;
  std::uint64_t Sum() const;
  /// Aggregated per-bucket counts; size() == bounds().size() + 1, the last
  /// entry being the overflow bucket.
  std::vector<std::uint64_t> BucketCounts() const;
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  const std::string& name() const { return name_; }

  /// Smallest bound b such that at least `q` (0..1) of samples are <= b,
  /// computed from aggregated bucket counts (upper bound of the selected
  /// bucket; the overflow bucket reports the max representable value).
  std::uint64_t ApproxQuantile(double q) const;

 private:
  friend class Registry;
  Histogram(std::string name, std::vector<std::uint64_t> bounds);
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;  // bounds+1 slots
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  std::string name_;
  std::vector<std::uint64_t> bounds_;
  Shard shards_[kMetricShards];
};

/// Exponential upper bounds for latency-in-nanoseconds histograms:
/// 1us, 4us, 16us, ... up to ~17s (12 buckets + overflow).
std::vector<std::uint64_t> LatencyBoundsNs();

/// Build a labeled series name: `base{key="value"}` with Prometheus
/// label-value escaping (backslash, double quote, newline). The result is a
/// plain registry key — the registry itself treats it as an opaque name;
/// only ToPrometheus() and dashboards care about the structure.
std::string LabeledName(const std::string& base, const std::string& key,
                        const std::string& value);

/// Owns its metrics; references returned by Get* stay valid for the
/// registry's lifetime. Registration takes a mutex (callers cache the
/// reference); the write path never does.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// First registration fixes the bucket bounds; later calls with the same
  /// name return the existing histogram and ignore `bounds`. Throws
  /// ConfigError on empty or non-ascending bounds.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<std::uint64_t> bounds);

  /// Deterministically ordered (name-sorted) JSON object:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {name:
  ///    {"count": n, "sum": n, "buckets": [{"le": bound, "count": n}...,
  ///     {"le": "inf", "count": n}], "p50": n, "p99": n}}}
  std::string ToJson() const;

  /// Prometheus text exposition (format 0.0.4). Metric names may embed a
  /// label set ('hub_cmd_ns{cmd="poll"}', see LabeledName); series sharing a
  /// base name are grouped under one `# TYPE` line. Histograms render the
  /// conventional cumulative `_bucket{le=...}` series plus `_sum`/`_count`;
  /// the overflow bucket becomes `le="+Inf"`.
  std::string ToPrometheus() const;

  /// Zero every registered metric (handles stay valid). Tests and
  /// campaign-scoped scrapers use this; concurrent writers may interleave.
  void Reset();

  /// Process-wide registry. Deep layers (journal fsyncs, hub traffic)
  /// publish here through function-local cached handles so no pointer has
  /// to be threaded through every constructor.
  static Registry& Global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace chaser::obs

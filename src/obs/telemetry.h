// Telemetry: the campaign-facing facade over the obs subsystem.
//
// One Telemetry object represents "observability for this campaign run".
// chaser_run (or a test) builds it from the --trace-out/--status/--metrics
// flags and lends it to the campaign drivers through
// CampaignConfig::telemetry; a null pointer means telemetry is off and
// every instrumentation site degrades to a thread_local load + branch.
//
// The drivers call three things:
//   AttachThread / DetachThread   around each worker's (and the main
//                                 thread's) campaign work — this is what
//                                 arms ScopedPhase on that thread;
//   OnTrialDone                   once per completed trial, with a neutral
//                                 TrialStats mirror of the RunRecord.
//
// The owner calls Finish() once the campaign is over: final status.json
// (running=false), the Chrome trace file, and metrics.json all land then,
// each via WriteFileAtomic.
//
// Identity-safety: Telemetry only observes. Reports, CSVs, and spools are
// byte-identical with telemetry on or off, serial or parallel — asserted by
// obs_test's identity suite and guarded by bench_ablation_obs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/status.h"
#include "obs/trace_writer.h"

namespace chaser::obs {

struct TelemetryOptions {
  std::string trace_path;    // non-empty: Chrome trace-event JSON
  std::string status_path;   // non-empty: live status.json
  std::string metrics_path;  // non-empty: final metrics registry dump
  /// Stderr progress meter (needs status channel). kAuto shows it only on
  /// a terminal so fleet worker logs stay clean.
  ProgressMode progress = ProgressMode::kOff;
  std::uint64_t status_every = 0;  // trials per status rewrite; 0 = auto
  /// Shard-worker identity forwarded into status.json (see
  /// StatusWriter::Options); the 0/1 default changes nothing.
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
  /// >= 0: serve /metrics, /status, /healthz on obs_host:obs_port for the
  /// campaign's lifetime (0 = ephemeral port; see Telemetry::obs_endpoint).
  /// -1 (default) = no scrape server.
  int obs_port = -1;
  std::string obs_host = "127.0.0.1";
  /// Trace identity for fleet merges: the pid and process name stamped on
  /// every trace event (chaser_run passes shard_index+1 / "shard-i/N").
  std::uint32_t trace_pid = 1;
  std::string trace_process_name = "chaser campaign";
};

/// Outcome-agnostic mirror of the RunRecord fields telemetry consumes
/// (obs cannot see campaign types; the driver maps them).
struct TrialStats {
  int outcome = 0;  // 0 benign, 1 terminated, 2 sdc, 3 infra
  std::uint64_t run_seed = 0;
  std::uint64_t instructions = 0;
  std::uint64_t injections = 0;
  std::uint64_t taint_lost = 0;
  std::uint64_t trace_dropped = 0;
  std::uint64_t tb_chain_hits = 0;
  std::uint64_t tlb_hits = 0;
  std::uint64_t tlb_misses = 0;
  unsigned retries = 0;
  bool replayed = false;  // restored from a resume journal, not executed
};

const char* TrialOutcomeName(int outcome);  // benign/terminated/sdc/infra

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options);
  ~Telemetry();  // Finish()es, swallowing errors

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Called by the driver before trials start. Creates the status channel
  /// (the total becomes its denominator). Safe to call once per campaign.
  void BeginCampaign(const std::string& app, std::uint64_t total_trials);

  /// Optional: a live source for shared-translation-cache stats, polled at
  /// every status rewrite and dumped into metrics.json gauges at Finish.
  void SetCacheStatsSource(std::function<CacheStatsSnapshot()> source);

  /// Optional: a live source for sampled-campaign outcome estimates, polled
  /// at every status rewrite ("estimates" block in status.json). Like
  /// SetCacheStatsSource, set it before BeginCampaign — the status channel
  /// captures the source at creation.
  void SetEstimatesSource(std::function<EstimateSnapshot()> source);

  /// Arm instrumentation on the calling thread: builds a PhaseProfiler,
  /// registers a trace tid named `name`, and publishes it thread-locally.
  /// No-op if this Telemetry is already attached to the thread.
  void AttachThread(const std::string& name);
  /// Flush and drop the calling thread's profiler (no-op when detached).
  void DetachThread();

  /// Account one completed trial: registry counters, status channel, and —
  /// when tracing — a "trial" span on the calling thread covering
  /// [t0_ns, t1_ns] with run_seed/outcome args. Replayed trials update the
  /// status channel only (they did not execute here, so no span and no
  /// per-trial registry traffic beyond the replay counter).
  void OnTrialDone(const TrialStats& t, std::uint64_t t0_ns,
                   std::uint64_t t1_ns);

  /// Hub-handshake clock correction for the trace anchor (see
  /// ProbeHubClock / TraceJsonWriter::SetClockOffsetUs). No-op when
  /// tracing is off.
  void SetClockOffsetUs(std::int64_t offset_us);

  /// Final outputs: status.json with running=false, the Chrome trace file,
  /// metrics.json. Idempotent. The scrape server (if any) keeps answering
  /// until destruction so a dashboard can read the final state.
  void Finish();

  /// The registry all telemetry metrics land in (the process-global one, so
  /// deep-layer counters — journal fsyncs, hub traffic — are in scope).
  Registry& registry() { return Registry::Global(); }
  StatusWriter* status() { return status_.get(); }
  TraceJsonWriter* trace_writer() { return trace_.get(); }
  bool tracing() const { return trace_ != nullptr; }
  /// "host:port" of the scrape server, or "" when obs_port was -1.
  std::string obs_endpoint() const;

 private:
  /// /status body: the live StatusWriter snapshot once BeginCampaign ran,
  /// else a minimal not-started placeholder.
  std::string StatusBody();

  TelemetryOptions options_;
  std::unique_ptr<TraceJsonWriter> trace_;
  std::unique_ptr<StatusWriter> status_;
  std::unique_ptr<ExportServer> export_server_;
  std::function<CacheStatsSnapshot()> cache_stats_;
  std::function<EstimateSnapshot()> estimates_;
  std::string app_;

  std::mutex mutex_;  // guards profilers_, finish, and status_ creation
  std::vector<std::unique_ptr<PhaseProfiler>> profilers_;
  bool finished_ = false;
};

}  // namespace chaser::obs

// Chrome trace-event JSON writer (chrome://tracing / Perfetto format).
//
// Collects complete-duration spans ("ph":"X") from any number of threads
// and writes one self-contained JSON object at Finish():
//
//   {"traceEvents": [
//      {"name":"process_name","ph":"M",...},          // metadata
//      {"name":"worker-1","ph":"M",...},              // thread names
//      {"name":"trial","ph":"X","ts":12.3,"dur":4.5,
//       "pid":1,"tid":2,"args":{"run_seed":"7"}}, ...],
//    "displayTimeUnit": "ms"}
//
// Timestamps are microseconds on the process monotonic clock (see
// obs::MonotonicNanos), so spans from different worker threads line up on
// one timeline. The file is written via WriteFileAtomic: a campaign killed
// mid-run leaves either no trace file or a complete one, never torn JSON.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/profiler.h"

namespace chaser::obs {

class TraceJsonWriter {
 public:
  /// `path` is only written at Finish(); construction is I/O-free. `pid`
  /// and `process_name` identify this process's row in a merged fleet
  /// trace — chaser_run passes shard_index + 1 and "shard-i/N" when running
  /// as a fleet worker, so merged timelines keep one process row per shard.
  explicit TraceJsonWriter(std::string path, std::uint32_t pid = 1,
                           const std::string& process_name = "chaser campaign");

  TraceJsonWriter(const TraceJsonWriter&) = delete;
  TraceJsonWriter& operator=(const TraceJsonWriter&) = delete;

  /// Assign the next trace tid and emit its thread-name metadata event.
  /// Thread-safe.
  std::uint32_t RegisterThread(const std::string& name);

  /// One span, with optional args rendered as string values. Thread-safe.
  void AddSpan(std::uint32_t tid, const char* name, std::uint64_t t0_ns,
               std::uint64_t t1_ns,
               const std::vector<std::pair<std::string, std::string>>& args = {});

  /// Bulk ingest of a profiler's buffered phase spans. Thread-safe.
  void AddPhaseSpans(std::uint32_t tid, const std::vector<PhaseSpan>& spans);

  /// Hub-handshake clock correction (see ProbeHubClock): microseconds to
  /// add to this process's wall-clock anchor so all fleet members agree on
  /// the hub's clock. Thread-safe; affects only the anchor stamped at
  /// Finish(), never the spans themselves.
  void SetClockOffsetUs(std::int64_t offset_us);

  /// Write the complete JSON to `path` atomically. Idempotent; spans added
  /// after the first Finish are dropped. The top-level
  /// "chaserClockAnchorUs" field records the (offset-corrected) wall-clock
  /// microseconds of this trace's ts origin — the merge step shifts each
  /// file by the anchor deltas to build one fleet timeline.
  void Finish();

  const std::string& path() const { return path_; }
  std::uint64_t num_events() const;

 private:
  void AppendEventLocked(const std::string& event_json);

  mutable std::mutex mutex_;
  std::string path_;
  std::string events_;  // comma-joined event objects
  std::string pid_field_;  // rendered "\"pid\":N" fragment for every event
  std::uint64_t anchor_us_ = 0;
  std::int64_t clock_offset_us_ = 0;
  std::uint64_t num_events_ = 0;
  std::uint32_t next_tid_ = 1;
  bool finished_ = false;
};

}  // namespace chaser::obs

#include "obs/status.h"

#include <unistd.h>

#include <cstdio>

#include "common/error.h"
#include "common/fileio.h"
#include "common/strings.h"
#include "obs/profiler.h"

namespace chaser::obs {

StatusWriter::StatusWriter(Options options) : options_(std::move(options)) {
  progress_on_ =
      options_.progress == ProgressMode::kOn ||
      (options_.progress == ProgressMode::kAuto && ::isatty(STDERR_FILENO) == 1);
  every_ = options_.every;
  if (every_ == 0) {
    // Auto cadence: ~100 rewrites over the campaign. Cheap either way — a
    // rewrite is one small atomic file replace.
    every_ = options_.total / 100;
    if (every_ == 0) every_ = 1;
  }
  start_ns_ = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mutex_);
  WriteLocked(/*running=*/true);  // status exists from trial 0 onward
}

StatusWriter::~StatusWriter() {
  try {
    Finish();
  } catch (...) {
    // Destructor path: a full disk must not turn campaign teardown into a
    // crash; the last successful rewrite stays in place.
  }
}

void StatusWriter::OnTrialDone(int outcome, std::uint64_t taint_lost,
                               std::uint64_t trace_dropped, bool replayed) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++done_;
  if (replayed) ++replayed_;
  if (outcome >= 0 && outcome < 4) ++outcomes_[outcome];
  taint_lost_ += taint_lost;
  trace_dropped_ += trace_dropped;
  if (done_ % every_ == 0 || done_ == options_.total) {
    WriteLocked(/*running=*/true);
  }
}

std::string StatusWriter::RenderLocked(bool running) const {
  const double elapsed_s =
      static_cast<double>(MonotonicNanos() - start_ns_) / 1e9;
  // Replayed trials were not executed here; excluding them keeps the rate
  // (and therefore the ETA) honest after a resume.
  const std::uint64_t executed = done_ - replayed_;
  const double rate =
      elapsed_s > 0.0 ? static_cast<double>(executed) / elapsed_s : 0.0;
  const std::uint64_t left = options_.total > done_ ? options_.total - done_ : 0;
  // eta_s: 0.0 only when nothing is left; while trials remain but no local
  // rate exists yet the remaining time is genuinely unknown — emit JSON null
  // so readers cannot mistake "unknown" for "about to finish" (see status.h).
  std::string eta;
  if (left == 0) {
    eta = "0.0";
  } else if (rate > 0.0) {
    eta = StrFormat("%.1f", static_cast<double>(left) / rate);
  } else {
    eta = "null";
  }

  std::string out = StrFormat(
      "{\"app\": \"%s\", \"running\": %s, \"total\": %llu, \"done\": %llu, "
      "\"replayed\": %llu, \"benign\": %llu, \"terminated\": %llu, "
      "\"sdc\": %llu, \"infra\": %llu, \"taint_lost\": %llu, "
      "\"trace_dropped\": %llu, \"elapsed_s\": %.3f, \"trials_per_s\": %.2f, "
      "\"eta_s\": %s",
      options_.app.c_str(), running ? "true" : "false",
      static_cast<unsigned long long>(options_.total),
      static_cast<unsigned long long>(done_),
      static_cast<unsigned long long>(replayed_),
      static_cast<unsigned long long>(outcomes_[0]),
      static_cast<unsigned long long>(outcomes_[1]),
      static_cast<unsigned long long>(outcomes_[2]),
      static_cast<unsigned long long>(outcomes_[3]),
      static_cast<unsigned long long>(taint_lost_),
      static_cast<unsigned long long>(trace_dropped_), elapsed_s, rate,
      eta.c_str());
  if (options_.shard_count > 1) {
    out += StrFormat(
        ", \"shard\": {\"index\": %llu, \"count\": %llu}",
        static_cast<unsigned long long>(options_.shard_index),
        static_cast<unsigned long long>(options_.shard_count));
  }
  if (!options_.obs_endpoint.empty()) {
    out += StrFormat(", \"obs\": \"%s\"", options_.obs_endpoint.c_str());
  }
  if (options_.cache_stats) {
    const CacheStatsSnapshot cs = options_.cache_stats();
    out += StrFormat(
        ", \"tb_cache\": {\"translations\": %llu, \"reuses\": %llu, "
        "\"epoch_flushes\": %llu, \"evicted_tbs\": %llu}",
        static_cast<unsigned long long>(cs.translations),
        static_cast<unsigned long long>(cs.reuses),
        static_cast<unsigned long long>(cs.epoch_flushes),
        static_cast<unsigned long long>(cs.evicted_tbs));
  }
  if (options_.estimates) {
    const EstimateSnapshot es = options_.estimates();
    const auto interval = [](const char* name,
                             const OutcomeIntervalSnapshot& i) {
      return StrFormat("\"%s\": {\"rate\": %.6f, \"lo\": %.6f, \"hi\": %.6f}",
                       name, i.rate, i.lo, i.hi);
    };
    out += StrFormat(
        ", \"estimates\": {\"trials\": %llu, \"effective_n\": %.1f, "
        "\"stop_width\": %.4f, \"converged\": %s, %s, %s, %s, %s}",
        static_cast<unsigned long long>(es.trials), es.effective_n,
        es.stop_width, es.converged ? "true" : "false",
        interval("benign", es.benign).c_str(),
        interval("terminated", es.terminated).c_str(),
        interval("sdc", es.sdc).c_str(), interval("hang", es.hang).c_str());
  }
  out += "}\n";
  return out;
}

void StatusWriter::WriteLocked(bool running) {
  if (!options_.path.empty()) {
    WriteFileAtomic(options_.path, RenderLocked(running));
    ++writes_;
  }
  if (progress_on_) {
    const double pct = options_.total == 0
                           ? 100.0
                           : 100.0 * static_cast<double>(done_) /
                                 static_cast<double>(options_.total);
    std::fprintf(stderr,
                 "\r%s: %llu/%llu (%5.1f%%)  benign %llu  terminated %llu  "
                 "sdc %llu  infra %llu ",
                 options_.app.c_str(), static_cast<unsigned long long>(done_),
                 static_cast<unsigned long long>(options_.total), pct,
                 static_cast<unsigned long long>(outcomes_[0]),
                 static_cast<unsigned long long>(outcomes_[1]),
                 static_cast<unsigned long long>(outcomes_[2]),
                 static_cast<unsigned long long>(outcomes_[3]));
    progress_line_open_ = true;
    if (!running) {
      std::fprintf(stderr, "\n");
      progress_line_open_ = false;
    }
    std::fflush(stderr);
  }
}

void StatusWriter::Finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  finished_ = true;
  WriteLocked(/*running=*/false);
}

std::string StatusWriter::RenderSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return RenderLocked(/*running=*/!finished_);
}

std::uint64_t StatusWriter::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

std::uint64_t StatusWriter::writes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writes_;
}

}  // namespace chaser::obs

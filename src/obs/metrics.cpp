#include "obs/metrics.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "common/strings.h"

namespace chaser::obs {

std::size_t ThreadShardSlot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

// ---- Counter -----------------------------------------------------------------

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

// ---- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<std::uint64_t> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  const std::size_t slots = bounds_.size() + 1;  // + overflow
  for (Shard& s : shards_) {
    s.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(slots);
    for (std::size_t i = 0; i < slots; ++i) {
      s.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(std::uint64_t sample) {
  // First bucket whose inclusive upper bound admits the sample; past the
  // last bound the sample lands in the overflow slot.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  Shard& s = shards_[ThreadShardSlot()];
  s.buckets[idx].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(sample, std::memory_order_relaxed);
}

std::uint64_t Histogram::Count() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.count.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::Sum() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < counts.size(); ++i) {
      counts[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

std::uint64_t Histogram::ApproxQuantile(double q) const {
  const std::vector<std::uint64_t> counts = BucketCounts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0;
  const double target = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (static_cast<double>(seen) >= target) {
      return i < bounds_.size() ? bounds_[i]
                                : std::numeric_limits<std::uint64_t>::max();
    }
  }
  return std::numeric_limits<std::uint64_t>::max();
}

std::vector<std::uint64_t> LatencyBoundsNs() {
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 1'000; b <= 17'179'869'184ull; b *= 4) {
    bounds.push_back(b);  // 1us, 4us, ..., ~17.2s
  }
  return bounds;
}

std::string LabeledName(const std::string& base, const std::string& key,
                        const std::string& value) {
  std::string out = base;
  out += '{';
  out += key;
  out += "=\"";
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  out += "\"}";
  return out;
}

namespace {

// Splits a registry key "base{labels}" into the base metric name and the
// brace-free label body; a plain name yields an empty label body.
void SplitSeries(const std::string& name, std::string* base,
                 std::string* labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  std::size_t end = name.rfind('}');
  if (end == std::string::npos || end < brace) end = name.size();
  *labels = name.substr(brace + 1, end - brace - 1);
}

// Joins an existing label body with one extra `k="v"` pair into a rendered
// label set (or "" when both are empty).
std::string JoinLabels(const std::string& labels, const std::string& extra) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

}  // namespace

// ---- Registry ----------------------------------------------------------------

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter(name));
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge(name));
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  std::vector<std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) {
      throw ConfigError("Registry: histogram '" + name + "' needs bounds");
    }
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      if (bounds[i] <= bounds[i - 1]) {
        throw ConfigError("Registry: histogram '" + name +
                          "' bounds must be strictly ascending");
      }
    }
    slot.reset(new Histogram(name, std::move(bounds)));
  }
  return *slot;
}

std::string Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += StrFormat("%s\n    \"%s\": %llu", first ? "" : ",", name.c_str(),
                     static_cast<unsigned long long>(c->Value()));
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += StrFormat("%s\n    \"%s\": %lld", first ? "" : ",", name.c_str(),
                     static_cast<long long>(g->Value()));
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const std::vector<std::uint64_t> counts = h->BucketCounts();
    out += StrFormat(
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, \"buckets\": [",
        first ? "" : ",", name.c_str(),
        static_cast<unsigned long long>(h->Count()),
        static_cast<unsigned long long>(h->Sum()));
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i < h->bounds().size()) {
        out += StrFormat("%s{\"le\": %llu, \"count\": %llu}", i == 0 ? "" : ", ",
                         static_cast<unsigned long long>(h->bounds()[i]),
                         static_cast<unsigned long long>(counts[i]));
      } else {
        out += StrFormat("%s{\"le\": \"inf\", \"count\": %llu}",
                         i == 0 ? "" : ", ",
                         static_cast<unsigned long long>(counts[i]));
      }
    }
    out += StrFormat("], \"p50\": %llu, \"p99\": %llu}",
                     static_cast<unsigned long long>(h->ApproxQuantile(0.5)),
                     static_cast<unsigned long long>(h->ApproxQuantile(0.99)));
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

std::string Registry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  const auto u64 = [](std::uint64_t v) {
    return StrFormat("%llu", static_cast<unsigned long long>(v));
  };

  // Group series by base name: the map is sorted by full key, but a labeled
  // series ("hub_cmd_ns{cmd=...}") can interleave with an unrelated longer
  // name, and Prometheus wants exactly one TYPE line per family.
  std::map<std::string, std::vector<const Counter*>> counter_families;
  for (const auto& [name, c] : counters_) {
    std::string base, labels;
    SplitSeries(name, &base, &labels);
    counter_families[base].push_back(c.get());
  }
  for (const auto& [base, series] : counter_families) {
    out += "# TYPE " + base + " counter\n";
    for (const Counter* c : series) {
      std::string b, labels;
      SplitSeries(c->name(), &b, &labels);
      out += base + JoinLabels(labels, "") + " " + u64(c->Value()) + "\n";
    }
  }

  std::map<std::string, std::vector<const Gauge*>> gauge_families;
  for (const auto& [name, g] : gauges_) {
    std::string base, labels;
    SplitSeries(name, &base, &labels);
    gauge_families[base].push_back(g.get());
  }
  for (const auto& [base, series] : gauge_families) {
    out += "# TYPE " + base + " gauge\n";
    for (const Gauge* g : series) {
      std::string b, labels;
      SplitSeries(g->name(), &b, &labels);
      out += base + JoinLabels(labels, "") +
             StrFormat(" %lld\n", static_cast<long long>(g->Value()));
    }
  }

  std::map<std::string, std::vector<const Histogram*>> histo_families;
  for (const auto& [name, h] : histograms_) {
    std::string base, labels;
    SplitSeries(name, &base, &labels);
    histo_families[base].push_back(h.get());
  }
  for (const auto& [base, series] : histo_families) {
    out += "# TYPE " + base + " histogram\n";
    for (const Histogram* h : series) {
      std::string b, labels;
      SplitSeries(h->name(), &b, &labels);
      const std::vector<std::uint64_t> counts = h->BucketCounts();
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < h->bounds().size(); ++i) {
        cum += counts[i];
        out += base + "_bucket" +
               JoinLabels(labels, "le=\"" + u64(h->bounds()[i]) + "\"") + " " +
               u64(cum) + "\n";
      }
      cum += counts.back();
      out += base + "_bucket" + JoinLabels(labels, "le=\"+Inf\"") + " " +
             u64(cum) + "\n";
      out += base + "_sum" + JoinLabels(labels, "") + " " + u64(h->Sum()) +
             "\n";
      out += base + "_count" + JoinLabels(labels, "") + " " + u64(cum) + "\n";
    }
  }
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) {
    for (Counter::Shard& s : c->shards_) s.v.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : gauges_) g->Set(0);
  for (auto& [name, h] : histograms_) {
    const std::size_t slots = h->bounds_.size() + 1;
    for (Histogram::Shard& s : h->shards_) {
      for (std::size_t i = 0; i < slots; ++i) {
        s.buckets[i].store(0, std::memory_order_relaxed);
      }
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
    }
  }
}

Registry& Registry::Global() {
  static Registry* global = new Registry();  // leaked: outlives all users
  return *global;
}

}  // namespace chaser::obs

#include "obs/export.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <utility>

#include "common/error.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace chaser::obs {

namespace {

/// A scraper that never sends a full request line should not pin a
/// connection slot forever: reaped after this many idle 500ms poll rounds.
constexpr int kIdleTickLimit = 10;

/// Requests are one GET line + a few headers; anything larger is abuse.
constexpr std::size_t kMaxRequestBytes = 8 * 1024;

std::string HttpMessage(int status, const std::string& content_type,
                        const std::string& body) {
  const char* reason = status == 200   ? "OK"
                       : status == 404 ? "Not Found"
                       : status == 400 ? "Bad Request"
                                       : "Error";
  std::string out = StrFormat("HTTP/1.0 %d %s\r\n", status, reason);
  out += "Content-Type: " + content_type + "\r\n";
  out += StrFormat("Content-Length: %zu\r\n", body.size());
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

HttpResponse HttpGet(const std::string& host, std::uint16_t port,
                     const std::string& path, int timeout_ms) {
  net::TcpSocket sock = net::TcpSocket::Connect(host, port);
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const std::string request = "GET " + path +
                              " HTTP/1.0\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  sock.SendAll(request.data(), request.size());
  std::string raw;
  char buf[16 * 1024];
  for (;;) {
    const std::size_t n = sock.Recv(buf, sizeof(buf));  // throws on timeout
    if (n == 0) break;
    raw.append(buf, n);
  }
  // "HTTP/1.x NNN ..." — we only need the code and the body.
  if (raw.size() < 12 || raw.compare(0, 5, "HTTP/") != 0) {
    throw ConfigError("obs: malformed HTTP response from " + host + ":" +
                      std::to_string(port) + path);
  }
  const std::size_t sp = raw.find(' ');
  HttpResponse resp;
  resp.status = std::atoi(raw.c_str() + sp + 1);
  const std::size_t blank = raw.find("\r\n\r\n");
  if (blank != std::string::npos) resp.body = raw.substr(blank + 4);
  return resp;
}

bool PrometheusValue(const std::string& text, const std::string& series,
                     double* out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    if (text.compare(pos, series.size(), series) == 0 &&
        pos + series.size() < eol && text[pos + series.size()] == ' ') {
      *out = std::strtod(text.c_str() + pos + series.size() + 1, nullptr);
      return true;
    }
    pos = eol + 1;
  }
  return false;
}

ExportServer::ExportServer(Options options) : options_(std::move(options)) {
  listener_ = net::TcpListener::Bind(options_.host, options_.port);
  port_ = listener_.port();
  net::SetNonBlocking(listener_.fd());
  if (::pipe(wake_pipe_) != 0) {
    listener_.Close();
    throw ConfigError("obs: export server pipe() failed");
  }
  net::SetNonBlocking(wake_pipe_[0]);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

ExportServer::~ExportServer() { Stop(); }

void ExportServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  const char byte = 0;
  [[maybe_unused]] const ssize_t rc = ::write(wake_pipe_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
  conns_.clear();
  listener_.Close();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

std::string ExportServer::endpoint() const {
  return StrFormat("%s:%u", options_.host.c_str(),
                   static_cast<unsigned>(port_));
}

void ExportServer::BuildResponse(Connection& conn) {
  Registry& registry =
      options_.registry != nullptr ? *options_.registry : Registry::Global();
  // Request line: "GET <path> HTTP/1.x". Anything else is a 400; the path
  // decides the rest. The scrape itself is counted in the registry it
  // serves, so a dashboard can watch its own cost.
  const std::size_t eol = conn.in.find("\r\n");
  const std::string line =
      eol == std::string::npos ? conn.in : conn.in.substr(0, eol);
  std::string path;
  if (line.compare(0, 4, "GET ") == 0) {
    const std::size_t sp = line.find(' ', 4);
    path = line.substr(4, sp == std::string::npos ? std::string::npos : sp - 4);
  }
  if (path.empty()) {
    conn.out = HttpMessage(400, "text/plain", "bad request\n");
  } else if (path == "/metrics") {
    registry.GetCounter("obs_scrapes_total").Inc();
    conn.out = HttpMessage(200, "text/plain; version=0.0.4",
                           registry.ToPrometheus());
  } else if (path == "/status") {
    if (options_.status_body) {
      registry.GetCounter("obs_scrapes_total").Inc();
      conn.out = HttpMessage(200, "application/json", options_.status_body());
    } else {
      conn.out = HttpMessage(404, "text/plain", "no status source\n");
    }
  } else if (path == "/healthz") {
    conn.out = HttpMessage(200, "text/plain", "ok\n");
  } else {
    conn.out = HttpMessage(404, "text/plain", "unknown path\n");
  }
  conn.responded = true;
}

void ExportServer::FlushWrites(Connection& conn) {
  while (!conn.out.empty()) {
    const ssize_t rc = ::send(conn.sock.fd(), conn.out.data(), conn.out.size(),
                              MSG_NOSIGNAL);
    if (rc > 0) {
      conn.out.erase(0, static_cast<std::size_t>(rc));
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (rc < 0 && errno == EINTR) continue;
    conn.sock.Close();
    return;
  }
}

void ExportServer::Loop() {
  std::vector<pollfd> fds;
  char buf[16 * 1024];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({listener_.fd(), POLLIN, 0});
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const auto& conn : conns_) {
      short events = POLLIN;
      if (!conn->out.empty()) events |= POLLOUT;
      fds.push_back({conn->sock.fd(), events, 0});
    }
    const std::size_t polled_conns = conns_.size();
    const int rc = ::poll(fds.data(), fds.size(), 500);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) {
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int cfd = listener_.Accept();
        if (cfd < 0) break;
        net::SetNonBlocking(cfd);
        auto conn = std::make_unique<Connection>();
        conn->sock = net::TcpSocket(cfd);
        conns_.push_back(std::move(conn));
      }
    }
    for (std::size_t i = 0; i < polled_conns; ++i) {
      Connection& conn = *conns_[i];
      const pollfd& pfd = fds[i + 2];
      bool drop = false;
      bool progressed = false;
      if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) drop = true;
      if (!drop && (pfd.revents & POLLIN) && !conn.responded) {
        for (;;) {
          const ssize_t n = ::recv(conn.sock.fd(), buf, sizeof(buf), 0);
          if (n > 0) {
            conn.in.append(buf, static_cast<std::size_t>(n));
            progressed = true;
            if (static_cast<ssize_t>(sizeof(buf)) != n) break;
            continue;
          }
          if (n == 0) {
            drop = true;  // EOF before a complete request
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR) continue;
          drop = true;
          break;
        }
        if (!drop && conn.in.size() > kMaxRequestBytes) drop = true;
        if (!drop && conn.in.find("\r\n\r\n") != std::string::npos) {
          BuildResponse(conn);
        }
      }
      if (!drop && !conn.out.empty()) {
        FlushWrites(conn);
        progressed = true;
      }
      if (!drop && !conn.sock.valid()) drop = true;
      // HTTP/1.0 + Connection: close — once the response drained, we close.
      if (!drop && conn.responded && conn.out.empty()) drop = true;
      if (!drop) {
        conn.idle_ticks = progressed ? 0 : conn.idle_ticks + 1;
        if (conn.idle_ticks > kIdleTickLimit) drop = true;
      }
      if (drop) {
        conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
        --i;
        break;  // fds no longer lines up with conns_; next round rebuilds
      }
    }
  }
}

}  // namespace chaser::obs

// Live campaign status channel: machine-readable status.json + progress meter.
//
// A running campaign used to be silent until the last trial. StatusWriter
// gives operators (and orchestration around chaser_run) a continuously
// fresh, machine-readable view: every rewrite replaces `path` atomically
// (WriteFileAtomic), so a reader polling the file always sees one complete
// JSON object — never a torn write — and `done` only ever grows.
//
//   {"app": "matvec", "running": true, "total": 1000, "done": 412,
//    "replayed": 0, "benign": 301, "terminated": 88, "sdc": 21, "infra": 2,
//    "taint_lost": 0, "trace_dropped": 0,
//    "elapsed_s": 12.341, "trials_per_s": 33.4, "eta_s": 17.6,
//    "tb_cache": {"translations": n, "reuses": n, "epoch_flushes": n,
//                 "evicted_tbs": n},
//    "estimates": {"trials": n, "effective_n": x, "stop_width": x,
//                  "converged": bool, "benign": {"rate": x, "lo": x, "hi": x},
//                  ... "terminated"/"sdc"/"hang" alike}}
//
// `eta_s` semantics: a number of seconds while the remaining time is
// computable (0.0 means "no trials left", i.e. the campaign is finishing);
// JSON `null` while it is unknown — trials remain but no trial has executed
// here yet, so there is no rate to extrapolate from. Readers must treat
// null as "unknown", never as zero.
//
// The optional `estimates` block appears only for sampled campaigns
// (--sample weighted/stratified or --stop-ci): live outcome-rate estimates
// with 95% Wilson intervals, polled from the campaign's estimator.
//
// The optional progress meter is a single overwritten stderr line (opt-in:
// it is chatty and assumes a terminal). Neither channel feeds back into
// campaign results — status output is observation only.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

namespace chaser::obs {

/// Snapshot of a shared translation cache for the status report (a neutral
/// mirror of tcg::SharedTbCache::Stats — obs stays dependency-free).
struct CacheStatsSnapshot {
  std::uint64_t translations = 0;
  std::uint64_t reuses = 0;
  std::uint64_t epoch_flushes = 0;
  std::uint64_t evicted_tbs = 0;
};

/// One outcome rate with its Wilson confidence interval (a neutral mirror of
/// campaign::WilsonInterval — obs cannot see campaign types).
struct OutcomeIntervalSnapshot {
  double rate = 0.0;
  double lo = 0.0;
  double hi = 1.0;
};

/// Live outcome-rate estimates of a sampled campaign, polled at every status
/// rewrite. `hang` is the deadlock subset of `terminated`.
struct EstimateSnapshot {
  std::uint64_t trials = 0;    // trials in the estimate (infra excluded)
  double effective_n = 0.0;    // Kish effective sample size
  double stop_width = 0.0;     // --stop-ci target; 0 = early stop off
  bool converged = false;      // the stop rule has fired
  OutcomeIntervalSnapshot benign;
  OutcomeIntervalSnapshot terminated;
  OutcomeIntervalSnapshot sdc;
  OutcomeIntervalSnapshot hang;
};

/// Progress-meter policy. kAuto (the default when a campaign asks for any
/// telemetry) shows the meter only when stderr is a terminal, so fleet
/// worker logs and CI captures stay clean; an explicit --progress forces
/// kOn even into a pipe.
enum class ProgressMode : std::uint8_t {
  kOff = 0,
  kAuto,  // isatty(stderr) decides
  kOn,
};

class StatusWriter {
 public:
  struct Options {
    /// status.json destination. Empty = render-only: no file is ever
    /// written (RenderSnapshot feeds a /status scrape endpoint instead),
    /// but trial accounting and the progress meter still work.
    std::string path;
    std::string app;           // campaign label
    std::uint64_t total = 0;   // trials expected
    /// Rewrite the file every N completed trials (the final write always
    /// happens). 0 = auto: ~100 rewrites over the campaign, at least 1.
    std::uint64_t every = 0;
    ProgressMode progress = ProgressMode::kOff;  // one-line stderr meter
    /// Shard-worker identity (chaser_run --shard i/N). When shard_count > 1
    /// the JSON gains a "shard": {"index", "count"} block so a fleet rollup
    /// can tell the per-worker files apart; the unsharded default emits
    /// nothing and the JSON bytes stay as they always were.
    std::uint64_t shard_index = 0;
    std::uint64_t shard_count = 1;
    /// Scrape endpoint ("host:port") this process serves, advertised as an
    /// "obs" field so a fleet coordinator reading the status file learns
    /// where to scrape live data. Empty = no field (bytes unchanged).
    std::string obs_endpoint;
    /// Optional cache-stats source polled at every rewrite.
    std::function<CacheStatsSnapshot()> cache_stats;
    /// Optional sampled-campaign estimates source polled at every rewrite
    /// (set by the drivers only when a sampling policy or early stop is
    /// active; absent = no "estimates" block in the JSON).
    std::function<EstimateSnapshot()> estimates;
  };

  explicit StatusWriter(Options options);
  /// Final write (running=false) if the campaign never called Finish.
  ~StatusWriter();

  StatusWriter(const StatusWriter&) = delete;
  StatusWriter& operator=(const StatusWriter&) = delete;

  /// Account one completed trial. Thread-safe; rewrites the file when the
  /// cadence says so. `outcome` is the campaign outcome index
  /// (0 benign, 1 terminated, 2 sdc, 3 infra); `replayed` marks trials
  /// restored from a resume journal rather than executed.
  void OnTrialDone(int outcome, std::uint64_t taint_lost,
                   std::uint64_t trace_dropped, bool replayed);

  /// Final rewrite with running=false. Idempotent. Ends the progress line.
  void Finish();

  /// The status JSON as of now, without touching the file — the /status
  /// scrape endpoint's source. Thread-safe.
  std::string RenderSnapshot() const;

  std::uint64_t done() const;
  std::uint64_t writes() const;  // status.json rewrites so far

 private:
  std::string RenderLocked(bool running) const;
  void WriteLocked(bool running);

  Options options_;
  bool progress_on_ = false;  // options_.progress resolved against isatty
  mutable std::mutex mutex_;
  std::uint64_t done_ = 0;
  std::uint64_t replayed_ = 0;
  std::uint64_t outcomes_[4] = {0, 0, 0, 0};
  std::uint64_t taint_lost_ = 0;
  std::uint64_t trace_dropped_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t every_ = 1;
  std::uint64_t writes_ = 0;
  bool finished_ = false;
  bool progress_line_open_ = false;
};

}  // namespace chaser::obs

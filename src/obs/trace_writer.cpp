#include "obs/trace_writer.h"

#include "common/fileio.h"
#include "common/strings.h"

namespace chaser::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

/// Microseconds with sub-microsecond precision — the trace-event format's
/// native unit.
std::string TsUs(std::uint64_t ns) {
  return StrFormat("%llu.%03llu", static_cast<unsigned long long>(ns / 1000),
                   static_cast<unsigned long long>(ns % 1000));
}

}  // namespace

TraceJsonWriter::TraceJsonWriter(std::string path, std::uint32_t pid,
                                 const std::string& process_name)
    : path_(std::move(path)),
      pid_field_(StrFormat("\"pid\":%u", pid)),
      anchor_us_(RealtimeAnchorUs()) {
  AppendEventLocked(StrFormat(
      "{\"name\":\"process_name\",\"ph\":\"M\",%s,\"tid\":0,"
      "\"args\":{\"name\":\"%s\"}}",
      pid_field_.c_str(), JsonEscape(process_name).c_str()));
}

std::uint32_t TraceJsonWriter::RegisterThread(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint32_t tid = next_tid_++;
  AppendEventLocked(StrFormat(
      "{\"name\":\"thread_name\",\"ph\":\"M\",%s,\"tid\":%u,"
      "\"args\":{\"name\":\"%s\"}}",
      pid_field_.c_str(), tid, JsonEscape(name).c_str()));
  return tid;
}

void TraceJsonWriter::SetClockOffsetUs(std::int64_t offset_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_offset_us_ = offset_us;
}

void TraceJsonWriter::AddSpan(
    std::uint32_t tid, const char* name, std::uint64_t t0_ns,
    std::uint64_t t1_ns,
    const std::vector<std::pair<std::string, std::string>>& args) {
  std::string event = StrFormat(
      "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,%s,"
      "\"tid\":%u",
      name, TsUs(t0_ns).c_str(), TsUs(t1_ns - t0_ns).c_str(),
      pid_field_.c_str(), tid);
  if (!args.empty()) {
    event += ",\"args\":{";
    bool first = true;
    for (const auto& [k, v] : args) {
      event += StrFormat("%s\"%s\":\"%s\"", first ? "" : ",",
                         JsonEscape(k).c_str(), JsonEscape(v).c_str());
      first = false;
    }
    event += '}';
  }
  event += '}';
  std::lock_guard<std::mutex> lock(mutex_);
  AppendEventLocked(event);
}

void TraceJsonWriter::AddPhaseSpans(std::uint32_t tid,
                                    const std::vector<PhaseSpan>& spans) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const PhaseSpan& s : spans) {
    AppendEventLocked(StrFormat(
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,%s,"
        "\"tid\":%u}",
        PhaseName(s.phase), TsUs(s.t0_ns).c_str(),
        TsUs(s.t1_ns - s.t0_ns).c_str(), pid_field_.c_str(), tid));
  }
}

void TraceJsonWriter::AppendEventLocked(const std::string& event_json) {
  if (finished_) return;
  if (num_events_ > 0) events_ += ",\n";
  events_ += event_json;
  ++num_events_;
}

std::uint64_t TraceJsonWriter::num_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_events_;
}

void TraceJsonWriter::Finish() {
  std::string content;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_) return;
    finished_ = true;
    const std::int64_t anchor =
        static_cast<std::int64_t>(anchor_us_) + clock_offset_us_;
    content = "{\"traceEvents\": [\n" + events_ +
              StrFormat("\n], \"chaserClockAnchorUs\": %lld, "
                        "\"displayTimeUnit\": \"ms\"}\n",
                        static_cast<long long>(anchor));
    events_.clear();
  }
  WriteFileAtomic(path_, content);
}

}  // namespace chaser::obs

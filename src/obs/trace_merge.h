// Fleet trace merge: stitch per-process Chrome traces into one timeline.
//
// Every fleet member writes its own trace file (TraceJsonWriter), with
// timestamps on its *own* monotonic clock and a top-level
// "chaserClockAnchorUs" recording the wall-clock microseconds of that
// clock's origin (offset-corrected by the hub handshake when the worker is
// hub-attached, see ProbeHubClock). The merge:
//
//   * picks the earliest anchor as the fleet's ts origin,
//   * shifts every event's "ts" by (anchor_i - min_anchor) microseconds, and
//   * rewrites each file's "pid" to a process-unique value (input order:
//     file i becomes pid i+1), so Perfetto shows one process row per fleet
//     member instead of collapsing them all onto pid 1.
//
// "dur", "tid" and everything else pass through untouched. The writer emits
// one event per line, which is what lets this run as line rewriting instead
// of a JSON parser.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace chaser::obs {

/// One input trace plus its parsed anchor (exposed for tests/reporting).
struct TraceMergeStats {
  std::size_t files = 0;
  std::size_t events = 0;
  std::int64_t min_anchor_us = 0;
  std::int64_t max_skew_us = 0;  // largest anchor delta across inputs
};

/// Merge already-loaded trace JSON documents. Inputs must be
/// TraceJsonWriter output (one event per line). Returns the merged
/// document; throws ConfigError on a malformed input (missing traceEvents
/// or anchor). `stats` is optional.
std::string MergeChromeTraces(const std::vector<std::string>& docs,
                              TraceMergeStats* stats = nullptr);

/// File convenience wrapper: reads `paths`, merges, writes `out_path`
/// atomically. Throws ConfigError on I/O or format errors.
TraceMergeStats MergeChromeTraceFiles(const std::vector<std::string>& paths,
                                      const std::string& out_path);

}  // namespace chaser::obs

// Observability scrape endpoint: a tiny zero-dependency HTTP/1.0 server on
// the net socket layer, mounted in chaser_run / chaser_hubd behind
// --obs-port. It serves exactly three read-only paths:
//
//   /metrics   Prometheus text exposition rendered from an obs::Registry
//   /status    the campaign status.json payload (whatever the host process
//              would write to --status), rendered on demand
//   /healthz   "ok\n" — liveness for fleet supervisors and smoke scripts
//
// Design mirrors HubServer: one poll(2) event loop on a background thread
// owns every connection (wake pipe for Stop(), nonblocking listener,
// per-connection buffers). HTTP here is deliberately minimal — parse the
// request line of a GET, answer with Content-Length + Connection: close,
// drop the connection. No keep-alive, no TLS, no request bodies; scrapers
// (Prometheus, chaser_fleet, chaser_top, curl) all speak this subset.
//
// Identity-safety rule (DESIGN.md §5.5): the server only *reads* registry
// and status state. Campaign results are byte-identical whether or not the
// endpoint exists or anyone ever scrapes it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"

namespace chaser::obs {

class Registry;

/// Minimal HTTP GET response: status code + body (headers are dropped).
struct HttpResponse {
  int status = 0;
  std::string body;
};

/// Blocking HTTP/1.0 GET of `path` from host:port with a receive deadline.
/// Throws ConfigError on connect failure, timeout, or a malformed status
/// line. This is the scrape client used by chaser_fleet and chaser_top.
HttpResponse HttpGet(const std::string& host, std::uint16_t port,
                     const std::string& path, int timeout_ms = 2000);

/// Looks up one series line ("name 42" or "name{k=\"v\"} 42") in Prometheus
/// text and parses its value. Returns false when the series is absent.
bool PrometheusValue(const std::string& text, const std::string& series,
                     double* out);

class ExportServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral; see port() after start.
    /// Registry backing /metrics; nullptr means Registry::Global().
    Registry* registry = nullptr;
    /// Renders the /status body on demand. When unset, /status answers 404
    /// (hubd without a campaign still serves /metrics + /healthz).
    std::function<std::string()> status_body;
  };

  /// Binds, listens, and launches the event loop thread. Throws ConfigError
  /// if the bind fails (the thread is never started in that case).
  explicit ExportServer(Options options);
  ~ExportServer();

  ExportServer(const ExportServer&) = delete;
  ExportServer& operator=(const ExportServer&) = delete;

  void Stop();

  std::uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }
  /// "host:port" as a scraper would dial it.
  std::string endpoint() const;

 private:
  struct Connection {
    net::TcpSocket sock;
    std::string in;        // request bytes until the blank line
    std::string out;       // response bytes not yet written
    bool responded = false;
    int idle_ticks = 0;    // poll rounds without progress; reaped at limit
  };

  void Loop();
  void BuildResponse(Connection& conn);
  void FlushWrites(Connection& conn);

  Options options_;
  net::TcpListener listener_;
  std::uint16_t port_ = 0;
  int wake_pipe_[2] = {-1, -1};
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::vector<std::unique_ptr<Connection>> conns_;
};

}  // namespace chaser::obs

#include "obs/trace_merge.h"

#include <cctype>
#include <cstdint>
#include <cstdlib>

#include "common/error.h"
#include "common/fileio.h"
#include "common/strings.h"

namespace chaser::obs {

namespace {

struct ParsedTrace {
  std::vector<std::string> events;  // one JSON object each, no trailing comma
  std::int64_t anchor_us = 0;
};

ParsedTrace ParseTrace(const std::string& doc, std::size_t index) {
  const auto malformed = [&](const std::string& what) {
    throw ConfigError(StrFormat("trace merge: input %zu %s", index,
                                what.c_str()));
  };
  ParsedTrace out;
  const std::size_t open = doc.find("\"traceEvents\": [");
  if (open == std::string::npos) malformed("has no traceEvents array");
  std::size_t pos = doc.find('\n', open);
  if (pos == std::string::npos) malformed("is not line-per-event output");
  ++pos;
  // Events run one per line until the line that closes the array.
  while (pos < doc.size()) {
    std::size_t eol = doc.find('\n', pos);
    if (eol == std::string::npos) eol = doc.size();
    std::string line = doc.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line[0] == ']') break;
    if (!line.empty() && line.back() == ',') line.pop_back();
    if (line.empty()) continue;
    out.events.push_back(std::move(line));
  }
  const std::string anchor_key = "\"chaserClockAnchorUs\": ";
  const std::size_t akey = doc.find(anchor_key);
  if (akey == std::string::npos) {
    malformed("has no chaserClockAnchorUs (written by an older build?)");
  }
  out.anchor_us = std::strtoll(doc.c_str() + akey + anchor_key.size(),
                               nullptr, 10);
  return out;
}

/// Rewrites every `"pid":<n>` in the event to the file's merged pid.
void RewritePid(std::string* event, std::uint32_t pid) {
  const std::string key = "\"pid\":";
  const std::string replacement = key + std::to_string(pid);
  std::size_t pos = 0;
  while ((pos = event->find(key, pos)) != std::string::npos) {
    std::size_t end = pos + key.size();
    while (end < event->size() &&
           std::isdigit(static_cast<unsigned char>((*event)[end]))) {
      ++end;
    }
    event->replace(pos, end - pos, replacement);
    pos += replacement.size();
  }
}

/// Shifts the event's `"ts":<us>.<frac>` by delta microseconds, preserving
/// the fractional digits. Metadata events carry no ts and pass through.
void ShiftTs(std::string* event, std::int64_t delta_us) {
  if (delta_us == 0) return;
  const std::string key = "\"ts\":";
  const std::size_t pos = event->find(key);
  if (pos == std::string::npos) return;
  const std::size_t num_start = pos + key.size();
  std::size_t end = num_start;
  while (end < event->size() &&
         std::isdigit(static_cast<unsigned char>((*event)[end]))) {
    ++end;
  }
  const std::int64_t us =
      std::strtoll(event->c_str() + num_start, nullptr, 10) + delta_us;
  std::string frac;
  if (end < event->size() && (*event)[end] == '.') {
    std::size_t fend = end + 1;
    while (fend < event->size() &&
           std::isdigit(static_cast<unsigned char>((*event)[fend]))) {
      ++fend;
    }
    frac = event->substr(end, fend - end);
    end = fend;
  }
  event->replace(pos, end - pos,
                 key + std::to_string(us < 0 ? 0 : us) + frac);
}

}  // namespace

std::string MergeChromeTraces(const std::vector<std::string>& docs,
                              TraceMergeStats* stats) {
  if (docs.empty()) throw ConfigError("trace merge: no inputs");
  std::vector<ParsedTrace> traces;
  traces.reserve(docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    traces.push_back(ParseTrace(docs[i], i));
  }
  std::int64_t min_anchor = traces[0].anchor_us;
  std::int64_t max_anchor = traces[0].anchor_us;
  for (const ParsedTrace& t : traces) {
    if (t.anchor_us < min_anchor) min_anchor = t.anchor_us;
    if (t.anchor_us > max_anchor) max_anchor = t.anchor_us;
  }
  std::string events;
  std::size_t count = 0;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const std::int64_t delta = traces[i].anchor_us - min_anchor;
    for (std::string& event : traces[i].events) {
      RewritePid(&event, static_cast<std::uint32_t>(i + 1));
      ShiftTs(&event, delta);
      if (count > 0) events += ",\n";
      events += event;
      ++count;
    }
  }
  if (stats != nullptr) {
    stats->files = traces.size();
    stats->events = count;
    stats->min_anchor_us = min_anchor;
    stats->max_skew_us = max_anchor - min_anchor;
  }
  return "{\"traceEvents\": [\n" + events +
         StrFormat("\n], \"chaserClockAnchorUs\": %lld, "
                   "\"displayTimeUnit\": \"ms\"}\n",
                   static_cast<long long>(min_anchor));
}

TraceMergeStats MergeChromeTraceFiles(const std::vector<std::string>& paths,
                                      const std::string& out_path) {
  std::vector<std::string> docs;
  docs.reserve(paths.size());
  for (const std::string& path : paths) {
    docs.push_back(ReadFileToString(path));
  }
  TraceMergeStats stats;
  const std::string merged = MergeChromeTraces(docs, &stats);
  WriteFileAtomic(out_path, merged);
  return stats;
}

}  // namespace chaser::obs

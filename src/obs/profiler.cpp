#include "obs/profiler.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace_writer.h"

namespace chaser::obs {

namespace {

/// Spans buffered per profiler before a self-triggered flush to the writer.
constexpr std::size_t kSpanFlushThreshold = 1 << 16;

thread_local PhaseProfiler* tls_profiler = nullptr;

}  // namespace

const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kGolden: return "golden";
    case Phase::kTrial: return "trial";
    case Phase::kTranslate: return "translate";
    case Phase::kExecute: return "execute";
    case Phase::kInject: return "inject";
    case Phase::kTaintPropagate: return "taint-propagate";
    case Phase::kHubPublish: return "hub-publish";
    case Phase::kHubPoll: return "hub-poll";
    case Phase::kJournalFsync: return "journal-fsync";
  }
  return "?";
}

namespace {

struct ClockAnchor {
  std::chrono::steady_clock::time_point mono;
  std::uint64_t realtime_us;
};

// Monotonic zero and the wall-clock microseconds at that instant are sampled
// together, once, so RealtimeAnchorUs() lets a merger place this process's
// monotonic-relative trace timestamps on a fleet-shared wall clock.
const ClockAnchor& Anchor() {
  static const ClockAnchor anchor = [] {
    ClockAnchor a;
    a.mono = std::chrono::steady_clock::now();
    a.realtime_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    return a;
  }();
  return anchor;
}

}  // namespace

std::uint64_t MonotonicNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Anchor().mono)
          .count());
}

std::uint64_t RealtimeAnchorUs() { return Anchor().realtime_us; }

PhaseProfiler* ThreadProfiler() { return tls_profiler; }
void SetThreadProfiler(PhaseProfiler* p) { tls_profiler = p; }

PhaseProfiler::PhaseProfiler(Registry* registry, TraceJsonWriter* writer,
                             std::uint32_t tid)
    : writer_(writer), tid_(tid) {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    phase_ns_[i] = &registry->GetHistogram(
        std::string("phase_") + PhaseName(static_cast<Phase>(i)) + "_ns",
        LatencyBoundsNs());
  }
}

PhaseProfiler::~PhaseProfiler() { Flush(); }

void PhaseProfiler::Record(Phase p, std::uint64_t t0_ns, std::uint64_t t1_ns,
                           std::uint32_t depth) {
  phase_ns_[static_cast<std::size_t>(p)]->Observe(t1_ns - t0_ns);
  if (writer_ == nullptr) return;
  spans_.push_back({p, t0_ns, t1_ns, depth});
  if (spans_.size() >= kSpanFlushThreshold) Flush();
}

void PhaseProfiler::Flush() {
  if (writer_ == nullptr || spans_.empty()) return;
  writer_->AddPhaseSpans(tid_, spans_);
  spans_.clear();
}

}  // namespace chaser::obs

// Phase profiler: RAII scoped timers over the campaign's hot phases.
//
// Every layer brackets its interesting work with a ScopedPhase. When the
// current thread has no profiler attached (telemetry off — the default),
// the scope costs one thread_local load and a predictable branch, which is
// what keeps the bench_ablation_obs guard under its 2% budget. When a
// profiler is attached (obs::Telemetry::AttachThread), each scope:
//
//   * feeds a per-phase latency histogram in the metrics registry, and
//   * when Chrome tracing is on, buffers a span that the TraceJsonWriter
//     later emits as a trace-event (`ph:"X"`) on this thread's tid.
//
// Identity-safety: timers read the monotonic clock and touch only obs
// state. They never read or write guest, RNG, hub, or record state, so
// campaign outputs are byte-identical with profiling on or off.
#pragma once

#include <cstdint>
#include <vector>

namespace chaser::obs {

class Registry;
class Histogram;
class TraceJsonWriter;

/// The instrumented phases. Order is stable (it names histogram metrics and
/// trace spans); append only.
enum class Phase : std::uint8_t {
  kGolden = 0,      // the one-time clean profiling run
  kTrial,           // one whole injection trial (driver-emitted span)
  kTranslate,       // guest block -> TCG ops (shared-cache miss path)
  kExecute,         // Cluster::Run of one trial's guest execution
  kInject,          // injector helper firing (bit flips applied)
  kTaintPropagate,  // send-side shadow scan + receive-side re-taint
  kHubPublish,      // TaintHub::Publish
  kHubPoll,         // TaintHub poll (incl. retries) at receive completion
  kJournalFsync,    // crash-safe journal append (write+flush+fsync)
};
inline constexpr std::size_t kNumPhases = 9;

const char* PhaseName(Phase p);

/// Nanoseconds on the process-wide monotonic clock (steady_clock, rebased
/// to the first call so spans start near zero).
std::uint64_t MonotonicNanos();

/// Wall-clock microseconds (Unix epoch) at this process's monotonic zero,
/// sampled in the same instant MonotonicNanos() was rebased. monotonic_ns /
/// 1000 + RealtimeAnchorUs() places any span on the shared wall clock,
/// which is how chaser_fleet's trace merge aligns per-process timelines.
std::uint64_t RealtimeAnchorUs();

/// One buffered span (tracing only).
struct PhaseSpan {
  Phase phase = Phase::kTrial;
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;
  std::uint32_t depth = 0;  // nesting depth at entry (0 = outermost)
};

/// Per-thread profiler. One per attached campaign thread; owned by
/// obs::Telemetry, published to the thread via SetThreadProfiler. Not
/// thread-safe by design — the owning thread is the only writer, and the
/// writer flush hands buffered spans over under the writer's lock.
class PhaseProfiler {
 public:
  /// `registry` feeds phase latency histograms (required); `writer` is null
  /// when Chrome tracing is off. `tid` is the trace thread id.
  PhaseProfiler(Registry* registry, TraceJsonWriter* writer, std::uint32_t tid);
  ~PhaseProfiler();

  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// Record one completed scope. `depth` is the nesting depth at entry.
  void Record(Phase p, std::uint64_t t0_ns, std::uint64_t t1_ns,
              std::uint32_t depth);

  /// Current nesting depth of open ScopedPhase frames on this thread.
  std::uint32_t depth() const { return depth_; }
  std::uint32_t tid() const { return tid_; }

  /// Hand buffered spans to the writer (no-op without a writer). Called on
  /// detach and destruction; also self-triggered past a buffer threshold.
  void Flush();

 private:
  friend class ScopedPhase;
  Histogram* phase_ns_[kNumPhases] = {};
  TraceJsonWriter* writer_ = nullptr;
  std::uint32_t tid_ = 0;
  std::uint32_t depth_ = 0;
  std::vector<PhaseSpan> spans_;
};

/// The profiler attached to the current thread, or null (telemetry off).
PhaseProfiler* ThreadProfiler();
/// Attach/detach the current thread's profiler (obs::Telemetry calls this).
void SetThreadProfiler(PhaseProfiler* p);

/// RAII scope: near-free when no profiler is attached to this thread.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase p) : prof_(ThreadProfiler()), phase_(p) {
    if (prof_ != nullptr) {
      depth_ = prof_->depth_++;
      t0_ = MonotonicNanos();
    }
  }
  ~ScopedPhase() {
    if (prof_ != nullptr) {
      --prof_->depth_;
      prof_->Record(phase_, t0_, MonotonicNanos(), depth_);
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler* prof_;
  Phase phase_;
  std::uint32_t depth_ = 0;
  std::uint64_t t0_ = 0;
};

}  // namespace chaser::obs

#include "obs/telemetry.h"

#include "common/fileio.h"
#include "common/strings.h"

namespace chaser::obs {

const char* TrialOutcomeName(int outcome) {
  switch (outcome) {
    case 0: return "benign";
    case 1: return "terminated";
    case 2: return "sdc";
    case 3: return "infra";
  }
  return "?";
}

Telemetry::Telemetry(TelemetryOptions options) : options_(std::move(options)) {
  if (!options_.trace_path.empty()) {
    trace_ = std::make_unique<TraceJsonWriter>(options_.trace_path,
                                               options_.trace_pid,
                                               options_.trace_process_name);
  }
  if (options_.obs_port >= 0) {
    ExportServer::Options eo;
    eo.host = options_.obs_host;
    eo.port = static_cast<std::uint16_t>(options_.obs_port);
    eo.status_body = [this] { return StatusBody(); };
    export_server_ = std::make_unique<ExportServer>(std::move(eo));
  }
}

Telemetry::~Telemetry() {
  try {
    Finish();
  } catch (...) {
    // Teardown must not throw; the last successful artifacts stay in place.
  }
}

void Telemetry::BeginCampaign(const std::string& app,
                              std::uint64_t total_trials) {
  {
    // app_ is also read by the export thread's /status fallback.
    std::lock_guard<std::mutex> lock(mutex_);
    app_ = app;
  }
  // A scrape server implies a status channel even without --status: the
  // StatusWriter runs render-only (empty path) and feeds /status.
  const bool want_status =
      !options_.status_path.empty() || export_server_ != nullptr;
  if (want_status && status_ == nullptr) {
    StatusWriter::Options so;
    so.path = options_.status_path;
    so.app = app;
    so.total = total_trials;
    so.every = options_.status_every;
    so.progress = options_.progress;
    so.shard_index = options_.shard_index;
    so.shard_count = options_.shard_count;
    if (export_server_ != nullptr) so.obs_endpoint = export_server_->endpoint();
    so.cache_stats = cache_stats_;
    so.estimates = estimates_;
    auto status = std::make_unique<StatusWriter>(std::move(so));
    // The /status callback reads status_ from the export thread; publish
    // the fully-built writer under the lock it reads through.
    std::lock_guard<std::mutex> lock(mutex_);
    status_ = std::move(status);
  }
}

std::string Telemetry::StatusBody() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (status_ != nullptr) return status_->RenderSnapshot();
  return StrFormat("{\"app\": \"%s\", \"running\": false, \"started\": false}\n",
                   app_.c_str());
}

std::string Telemetry::obs_endpoint() const {
  return export_server_ != nullptr ? export_server_->endpoint() : std::string();
}

void Telemetry::SetClockOffsetUs(std::int64_t offset_us) {
  if (trace_ != nullptr) trace_->SetClockOffsetUs(offset_us);
}

void Telemetry::SetCacheStatsSource(
    std::function<CacheStatsSnapshot()> source) {
  cache_stats_ = std::move(source);
}

void Telemetry::SetEstimatesSource(std::function<EstimateSnapshot()> source) {
  estimates_ = std::move(source);
}

void Telemetry::AttachThread(const std::string& name) {
  if (ThreadProfiler() != nullptr) return;  // already armed (ours by contract)
  const std::uint32_t tid =
      trace_ != nullptr ? trace_->RegisterThread(name) : 0;
  auto profiler = std::make_unique<PhaseProfiler>(&Registry::Global(),
                                                  trace_.get(), tid);
  SetThreadProfiler(profiler.get());
  std::lock_guard<std::mutex> lock(mutex_);
  profilers_.push_back(std::move(profiler));
}

void Telemetry::DetachThread() {
  PhaseProfiler* prof = ThreadProfiler();
  if (prof == nullptr) return;
  prof->Flush();
  SetThreadProfiler(nullptr);
  // The profiler object stays in profilers_ (its tid and histograms remain
  // valid); only the thread-local arming is dropped.
}

void Telemetry::OnTrialDone(const TrialStats& t, std::uint64_t t0_ns,
                            std::uint64_t t1_ns) {
  Registry& reg = Registry::Global();
  // Handles resolve once per process — registration is mutexed, Inc is not.
  static Counter& trials = reg.GetCounter("campaign_trials_total");
  static Counter& replayed = reg.GetCounter("campaign_trials_replayed");
  static Counter* outcomes[4] = {
      &reg.GetCounter("campaign_outcome_benign"),
      &reg.GetCounter("campaign_outcome_terminated"),
      &reg.GetCounter("campaign_outcome_sdc"),
      &reg.GetCounter("campaign_outcome_infra"),
  };
  static Counter& instructions = reg.GetCounter("guest_instructions_total");
  static Counter& injections = reg.GetCounter("injections_total");
  static Counter& taint_lost = reg.GetCounter("hub_taint_lost_total");
  static Counter& trace_dropped = reg.GetCounter("trace_events_dropped_total");
  static Counter& chain_hits = reg.GetCounter("vm_tb_chain_hits_total");
  static Counter& tlb_hits = reg.GetCounter("vm_tlb_hits_total");
  static Counter& tlb_misses = reg.GetCounter("vm_tlb_misses_total");
  static Counter& retries = reg.GetCounter("campaign_trial_retries_total");

  if (status_ != nullptr) {
    status_->OnTrialDone(t.outcome, t.taint_lost, t.trace_dropped, t.replayed);
  }
  trials.Inc();
  if (t.outcome >= 0 && t.outcome < 4) outcomes[t.outcome]->Inc();
  if (t.replayed) {
    replayed.Inc();
    return;  // not executed here: no span, no hot-path counter traffic
  }
  instructions.Inc(t.instructions);
  injections.Inc(t.injections);
  taint_lost.Inc(t.taint_lost);
  trace_dropped.Inc(t.trace_dropped);
  chain_hits.Inc(t.tb_chain_hits);
  tlb_hits.Inc(t.tlb_hits);
  tlb_misses.Inc(t.tlb_misses);
  retries.Inc(t.retries);

  static Histogram& trial_ns =
      reg.GetHistogram("phase_trial_ns", LatencyBoundsNs());
  trial_ns.Observe(t1_ns - t0_ns);
  if (trace_ != nullptr) {
    PhaseProfiler* prof = ThreadProfiler();
    // Flush first so the trial's phase spans precede their enclosing trial
    // span only by buffer order, not by a whole campaign.
    if (prof != nullptr) prof->Flush();
    const std::uint32_t tid = prof != nullptr ? prof->tid() : 0;
    trace_->AddSpan(tid, PhaseName(Phase::kTrial), t0_ns, t1_ns,
                    {{"run_seed", std::to_string(t.run_seed)},
                     {"outcome", TrialOutcomeName(t.outcome)}});
  }
}

void Telemetry::Finish() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_) return;
    finished_ = true;
    // Contract: Finish runs after every attached thread detached (workers
    // are joined by the drivers), so flushing their buffers is race-free.
    for (auto& prof : profilers_) prof->Flush();
  }
  if (cache_stats_) {
    const CacheStatsSnapshot cs = cache_stats_();
    Registry& reg = Registry::Global();
    reg.GetGauge("tb_cache_translations").Set(static_cast<std::int64_t>(cs.translations));
    reg.GetGauge("tb_cache_reuses").Set(static_cast<std::int64_t>(cs.reuses));
    reg.GetGauge("tb_cache_epoch_flushes").Set(static_cast<std::int64_t>(cs.epoch_flushes));
    reg.GetGauge("tb_cache_evicted_tbs").Set(static_cast<std::int64_t>(cs.evicted_tbs));
  }
  if (trace_ != nullptr) trace_->Finish();
  if (status_ != nullptr) status_->Finish();
  if (!options_.metrics_path.empty()) {
    WriteFileAtomic(options_.metrics_path, Registry::Global().ToJson());
  }
}

}  // namespace chaser::obs

#include "mpi/cluster.h"

#include <algorithm>
#include <cstring>
#include <tuple>

#include "common/error.h"
#include "common/strings.h"

namespace chaser::mpi {

void ClearGuestMemTaint(vm::Vm& vm, GuestAddr vaddr, std::uint64_t len) {
  auto& taint = vm.taint();
  if (!taint.enabled()) return;
  // With zero tainted bytes in the whole process the clear is a no-op;
  // receives in clean runs skip the scan entirely.
  if (taint.CountTaintedBytes() == 0) return;
  // Page-at-a-time: one translation per guest page, one shadow-page probe
  // instead of a hash lookup per byte; untracked pages are already clean.
  std::uint64_t i = 0;
  while (i < len) {
    const GuestAddr va = vaddr + i;
    std::uint64_t chunk =
        std::min<std::uint64_t>(len - i, vm::kPageSize - (va & vm::kPageMask));
    const auto paddr = vm.memory().Translate(va);
    if (paddr) {
      const std::uint64_t shadow_off = *paddr & (taint::kShadowPageSize - 1);
      chunk = std::min(chunk, taint::kShadowPageSize - shadow_off);
      if (taint.PeekShadowPage(*paddr) != nullptr) {
        for (std::uint64_t j = 0; j < chunk; ++j) {
          taint.SetMemTaintByte(*paddr + j, 0);
        }
      }
    }
    i += chunk;
  }
}

std::optional<vm::SyscallResult> Cluster::RankSyscalls::HandleSyscall(
    vm::Vm& vm, std::uint64_t num) {
  using guest::Sys;
  (void)vm;
  switch (static_cast<Sys>(num)) {
    case Sys::kMpiInit: return cluster_->MpiInit(rank_);
    case Sys::kMpiCommRank: return vm::SyscallResult::Done(static_cast<std::uint64_t>(rank_));
    case Sys::kMpiCommSize:
      return vm::SyscallResult::Done(static_cast<std::uint64_t>(cluster_->num_ranks()));
    case Sys::kMpiSend: return cluster_->MpiSend(rank_);
    case Sys::kMpiRecv: return cluster_->MpiRecv(rank_);
    case Sys::kMpiBcast: return cluster_->MpiBcast(rank_);
    case Sys::kMpiReduce: return cluster_->MpiReduce(rank_);
    case Sys::kMpiBarrier: return cluster_->MpiBarrier(rank_);
    case Sys::kMpiAllreduce: return cluster_->MpiAllreduce(rank_);
    case Sys::kMpiGather: return cluster_->MpiGather(rank_);
    case Sys::kMpiScatter: return cluster_->MpiScatter(rank_);
    case Sys::kMpiFinalize: return cluster_->MpiFinalize(rank_);
    default: return std::nullopt;
  }
}

Cluster::Cluster(Config config) : config_(config) {
  if (config_.num_ranks <= 0) throw ConfigError("Cluster: num_ranks must be positive");
  if (config_.ranks_per_node <= 0) {
    throw ConfigError("Cluster: ranks_per_node must be positive");
  }
  ranks_.reserve(static_cast<std::size_t>(config_.num_ranks));
  for (Rank r = 0; r < config_.num_ranks; ++r) {
    auto state = std::make_unique<RankState>();
    state->vm = std::make_unique<vm::Vm>(config_.vm);
    state->syscalls = std::make_unique<RankSyscalls>(this, r);
    state->vm->set_syscall_extension(state->syscalls.get());
    ranks_.push_back(std::move(state));
  }
}

void Cluster::SetInstructionBudgets(std::uint64_t per_rank, std::uint64_t total) {
  config_.max_total_instructions = total;
  for (auto& state : ranks_) state->vm->set_max_instructions(per_rank);
}

void Cluster::Start(const guest::Program& program) {
  ResetJobState();
  for (auto& state : ranks_) state->vm->StartProcess(program);
}

void Cluster::Start(std::shared_ptr<const guest::Program> program) {
  ResetJobState();
  for (auto& state : ranks_) state->vm->StartProcess(program);
}

void Cluster::ResetJobState() {
  if (hooks_ != nullptr) hooks_->OnJobStart();
  send_seq_.clear();
  barrier_completed_ = 0;
  barrier_arrived_count_ = 0;
  messages_delivered_ = 0;
  for (auto& state : ranks_) {
    state->mpi_initialized = false;
    state->mpi_finalized = false;
    state->inbox.clear();
    state->barriers_done = 0;
    state->barrier_arrived = false;
    state->allreduce_sent = false;
  }
}

JobResult Cluster::Run() {
  JobResult result;
  std::uint64_t total = 0;
  while (true) {
    bool any_runnable = false;
    for (Rank r = 0; r < config_.num_ranks; ++r) {
      vm::Vm& v = rank_vm(r);
      if (v.run_state() != vm::RunState::kRunnable) continue;
      any_runnable = true;
      const std::uint64_t before = v.instret();
      v.Run(config_.quantum);
      total += v.instret() - before;
      if (v.run_state() == vm::RunState::kTerminated &&
          v.termination() != vm::TerminationKind::kExited) {
        result.first_failure_rank = r;
        result.first_failure_kind = v.termination();
        result.first_failure_signal = v.signal();
        result.first_failure_message = v.termination_message();
        result.total_instructions = total;
        return result;  // launcher kills the job on first abnormal exit
      }
    }

    bool all_exited = true;
    for (Rank r = 0; r < config_.num_ranks; ++r) {
      const vm::Vm& v = rank_vm(r);
      if (!(v.run_state() == vm::RunState::kTerminated &&
            v.termination() == vm::TerminationKind::kExited)) {
        all_exited = false;
        break;
      }
    }
    if (all_exited) {
      result.completed = true;
      result.total_instructions = total;
      return result;
    }

    if (!any_runnable) {
      // Every surviving rank is blocked: the runtime reports a deadlock
      // (classified as an MPI-detected error by the campaign layer).
      result.deadlock = true;
      for (Rank r = 0; r < config_.num_ranks; ++r) {
        vm::Vm& v = rank_vm(r);
        if (v.run_state() == vm::RunState::kBlocked) {
          v.TerminateMpiError("MPI deadlock: blocked with no matching message");
          if (result.first_failure_rank < 0) {
            result.first_failure_rank = r;
            result.first_failure_kind = vm::TerminationKind::kMpiError;
            result.first_failure_message = v.termination_message();
          }
        }
      }
      result.total_instructions = total;
      return result;
    }

    if (total > config_.max_total_instructions) {
      for (Rank r = 0; r < config_.num_ranks; ++r) {
        vm::Vm& v = rank_vm(r);
        if (v.run_state() != vm::RunState::kTerminated) {
          v.RaiseSignal(vm::GuestSignal::kKill, "cluster watchdog expired");
          if (result.first_failure_rank < 0) {
            result.first_failure_rank = r;
            result.first_failure_kind = vm::TerminationKind::kSignaled;
            result.first_failure_signal = vm::GuestSignal::kKill;
            result.first_failure_message = v.termination_message();
          }
        }
      }
      result.total_instructions = total;
      return result;
    }
  }
}

bool Cluster::RequireInitialized(Rank r, const char* what) {
  RankState& state = rank(r);
  if (state.mpi_initialized && !state.mpi_finalized) return true;
  state.vm->TerminateMpiError(StrFormat("%s called outside MPI_Init/Finalize", what));
  return false;
}

bool Cluster::ValidateArgs(Rank r, std::uint64_t count, std::uint64_t datatype,
                           std::int64_t peer, std::int64_t tag,
                           bool peer_may_be_any, const char* what) {
  vm::Vm& v = rank_vm(r);
  if (guest::MpiDatatypeSize(datatype) == 0) {
    v.TerminateMpiError(StrFormat("%s: invalid datatype %llu", what,
                                  static_cast<unsigned long long>(datatype)));
    return false;
  }
  if (count > kMaxCount) {
    v.TerminateMpiError(StrFormat("%s: invalid count %llu", what,
                                  static_cast<unsigned long long>(count)));
    return false;
  }
  const bool peer_ok =
      (peer >= 0 && peer < config_.num_ranks) || (peer_may_be_any && peer == -1);
  if (!peer_ok) {
    v.TerminateMpiError(StrFormat("%s: invalid rank %lld", what,
                                  static_cast<long long>(peer)));
    return false;
  }
  if (tag < -1 || tag > kMaxUserTag) {
    v.TerminateMpiError(StrFormat("%s: invalid tag %lld", what,
                                  static_cast<long long>(tag)));
    return false;
  }
  return true;
}

vm::SyscallResult Cluster::MpiInit(Rank r) {
  rank(r).mpi_initialized = true;
  return vm::SyscallResult::Done(0);
}

vm::SyscallResult Cluster::MpiFinalize(Rank r) {
  rank(r).mpi_finalized = true;
  return vm::SyscallResult::Done(0);
}

void Cluster::Deliver(Envelope env) {
  const Rank dest = env.dest;
  rank(dest).inbox.push_back(std::move(env));
  ++messages_delivered_;
  rank_vm(dest).Unblock();
}

bool Cluster::SendRaw(Rank src, Rank dest, std::int64_t tag, std::uint64_t count,
                      std::uint64_t datatype, GuestAddr buf) {
  vm::Vm& v = rank_vm(src);
  Envelope env;
  env.src = src;
  env.dest = dest;
  env.tag = tag;
  env.count = count;
  env.datatype = datatype;
  const std::uint64_t bytes = count * guest::MpiDatatypeSize(datatype);
  env.payload.resize(bytes);
  if (!v.memory().ReadBytes(buf, env.payload.data(), bytes)) {
    v.RaiseSignal(vm::GuestSignal::kSegv,
                  "MPI collective: buffer " + Hex64(buf) + " not mapped");
    return false;
  }
  env.seq = send_seq_[{env.src, env.dest, env.tag}]++;
  if (hooks_ != nullptr) hooks_->OnSend(v, env, buf);
  Deliver(std::move(env));
  return true;
}

vm::SyscallResult Cluster::MpiSend(Rank r) {
  if (!RequireInitialized(r, "MPI_Send")) return vm::SyscallResult::Terminated();
  vm::Vm& v = rank_vm(r);
  const GuestAddr buf = v.cpu().IntReg(1);
  const std::uint64_t count = v.cpu().IntReg(2);
  const std::uint64_t datatype = v.cpu().IntReg(3);
  const auto dest = static_cast<std::int64_t>(v.cpu().IntReg(4));
  const auto tag = static_cast<std::int64_t>(v.cpu().IntReg(5));
  if (!ValidateArgs(r, count, datatype, dest, tag, /*peer_may_be_any=*/false,
                    "MPI_Send") ||
      tag < 0) {
    if (v.run_state() != vm::RunState::kTerminated) {
      v.TerminateMpiError("MPI_Send: negative tag");
    }
    return vm::SyscallResult::Terminated();
  }

  Envelope env;
  env.src = r;
  env.dest = static_cast<Rank>(dest);
  env.tag = tag;
  env.count = count;
  env.datatype = datatype;
  const std::uint64_t bytes = count * guest::MpiDatatypeSize(datatype);
  env.payload.resize(bytes);
  if (!v.memory().ReadBytes(buf, env.payload.data(), bytes)) {
    v.RaiseSignal(vm::GuestSignal::kSegv,
                  "MPI_Send: buffer " + Hex64(buf) + " not mapped");
    return vm::SyscallResult::Terminated();
  }
  env.seq = send_seq_[{env.src, env.dest, env.tag}]++;
  if (hooks_ != nullptr) hooks_->OnSend(v, env, buf);
  Deliver(std::move(env));
  return vm::SyscallResult::Done(0);
}

bool Cluster::CompleteReceive(Rank r, const Envelope& env, GuestAddr buf) {
  vm::Vm& v = rank_vm(r);
  if (!v.memory().WriteBytes(buf, env.payload.data(), env.payload.size())) {
    v.RaiseSignal(vm::GuestSignal::kSegv,
                  "MPI_Recv: buffer " + Hex64(buf) + " not mapped");
    return false;
  }
  // Only raw bytes crossed the wire: whatever taint the buffer carried is
  // gone, and the incoming taint (if any) must be re-established by the
  // TaintHub hook below — this is the paper's central mechanism.
  ClearGuestMemTaint(v, buf, env.payload.size());
  if (hooks_ != nullptr) hooks_->OnRecvComplete(v, env, buf);
  return true;
}

vm::SyscallResult Cluster::MpiRecv(Rank r) {
  if (!RequireInitialized(r, "MPI_Recv")) return vm::SyscallResult::Terminated();
  vm::Vm& v = rank_vm(r);
  const GuestAddr buf = v.cpu().IntReg(1);
  const std::uint64_t count = v.cpu().IntReg(2);
  const std::uint64_t datatype = v.cpu().IntReg(3);
  const auto source = static_cast<std::int64_t>(v.cpu().IntReg(4));
  const auto tag = static_cast<std::int64_t>(v.cpu().IntReg(5));
  if (!ValidateArgs(r, count, datatype, source, tag, /*peer_may_be_any=*/true,
                    "MPI_Recv")) {
    return vm::SyscallResult::Terminated();
  }

  auto& inbox = rank(r).inbox;
  const auto match = std::find_if(inbox.begin(), inbox.end(), [&](const Envelope& e) {
    if (e.tag < 0) return false;  // collective traffic is not user-receivable
    return (source == -1 || e.src == source) && (tag == -1 || e.tag == tag);
  });
  if (match == inbox.end()) return vm::SyscallResult::Block();

  const std::uint64_t capacity = count * guest::MpiDatatypeSize(datatype);
  if (match->payload.size() > capacity) {
    v.TerminateMpiError(StrFormat(
        "MPI_Recv: message truncated (%zu bytes into %llu-byte buffer)",
        match->payload.size(), static_cast<unsigned long long>(capacity)));
    return vm::SyscallResult::Terminated();
  }
  const Envelope env = std::move(*match);
  inbox.erase(match);
  if (!CompleteReceive(r, env, buf)) return vm::SyscallResult::Terminated();
  return vm::SyscallResult::Done(0);
}

vm::SyscallResult Cluster::MpiBcast(Rank r) {
  if (!RequireInitialized(r, "MPI_Bcast")) return vm::SyscallResult::Terminated();
  vm::Vm& v = rank_vm(r);
  const GuestAddr buf = v.cpu().IntReg(1);
  const std::uint64_t count = v.cpu().IntReg(2);
  const std::uint64_t datatype = v.cpu().IntReg(3);
  const auto root = static_cast<std::int64_t>(v.cpu().IntReg(4));
  if (!ValidateArgs(r, count, datatype, root, 0, false, "MPI_Bcast")) {
    return vm::SyscallResult::Terminated();
  }

  if (r == root) {
    const std::uint64_t bytes = count * guest::MpiDatatypeSize(datatype);
    std::vector<std::uint8_t> payload(bytes);
    if (!v.memory().ReadBytes(buf, payload.data(), bytes)) {
      v.RaiseSignal(vm::GuestSignal::kSegv,
                    "MPI_Bcast: buffer " + Hex64(buf) + " not mapped");
      return vm::SyscallResult::Terminated();
    }
    for (Rank dest = 0; dest < config_.num_ranks; ++dest) {
      if (dest == r) continue;
      Envelope env;
      env.src = r;
      env.dest = dest;
      env.tag = kBcastTag;
      env.count = count;
      env.datatype = datatype;
      env.payload = payload;
      env.seq = send_seq_[{env.src, env.dest, env.tag}]++;
      if (hooks_ != nullptr) hooks_->OnSend(v, env, buf);
      Deliver(std::move(env));
    }
    return vm::SyscallResult::Done(0);
  }

  // Non-root: wait for the broadcast message from the root.
  auto& inbox = rank(r).inbox;
  const auto match = std::find_if(inbox.begin(), inbox.end(), [&](const Envelope& e) {
    return e.tag == kBcastTag && e.src == root;
  });
  if (match == inbox.end()) return vm::SyscallResult::Block();
  const std::uint64_t capacity = count * guest::MpiDatatypeSize(datatype);
  if (match->payload.size() != capacity) {
    v.TerminateMpiError("MPI_Bcast: count mismatch between root and receiver");
    return vm::SyscallResult::Terminated();
  }
  const Envelope env = std::move(*match);
  inbox.erase(match);
  if (!CompleteReceive(r, env, buf)) return vm::SyscallResult::Terminated();
  return vm::SyscallResult::Done(0);
}

namespace {

/// Element-wise reduction of `incoming` into `accum`.
void CombineReduce(std::vector<std::uint8_t>& accum,
                   const std::vector<std::uint8_t>& incoming,
                   std::uint64_t datatype, std::uint64_t op) {
  using guest::MpiDatatype;
  using guest::MpiOp;
  const std::size_t n = std::min(accum.size(), incoming.size());
  if (static_cast<MpiDatatype>(datatype) == MpiDatatype::kDouble) {
    for (std::size_t i = 0; i + 8 <= n; i += 8) {
      double a = 0, b = 0;
      std::memcpy(&a, accum.data() + i, 8);
      std::memcpy(&b, incoming.data() + i, 8);
      double out = a;
      switch (static_cast<MpiOp>(op)) {
        case MpiOp::kSum: out = a + b; break;
        case MpiOp::kMin: out = std::min(a, b); break;
        case MpiOp::kMax: out = std::max(a, b); break;
      }
      std::memcpy(accum.data() + i, &out, 8);
    }
  } else if (static_cast<MpiDatatype>(datatype) == MpiDatatype::kInt64) {
    for (std::size_t i = 0; i + 8 <= n; i += 8) {
      std::int64_t a = 0, b = 0;
      std::memcpy(&a, accum.data() + i, 8);
      std::memcpy(&b, incoming.data() + i, 8);
      std::int64_t out = a;
      switch (static_cast<MpiOp>(op)) {
        case MpiOp::kSum: out = a + b; break;
        case MpiOp::kMin: out = std::min(a, b); break;
        case MpiOp::kMax: out = std::max(a, b); break;
      }
      std::memcpy(accum.data() + i, &out, 8);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      switch (static_cast<MpiOp>(op)) {
        case MpiOp::kSum: accum[i] = static_cast<std::uint8_t>(accum[i] + incoming[i]); break;
        case MpiOp::kMin: accum[i] = std::min(accum[i], incoming[i]); break;
        case MpiOp::kMax: accum[i] = std::max(accum[i], incoming[i]); break;
      }
    }
  }
}

}  // namespace

vm::SyscallResult Cluster::MpiReduce(Rank r) {
  if (!RequireInitialized(r, "MPI_Reduce")) return vm::SyscallResult::Terminated();
  vm::Vm& v = rank_vm(r);
  const GuestAddr sendbuf = v.cpu().IntReg(1);
  const GuestAddr recvbuf = v.cpu().IntReg(2);
  const std::uint64_t count = v.cpu().IntReg(3);
  const std::uint64_t datatype = v.cpu().IntReg(4);
  const std::uint64_t op = v.cpu().IntReg(5);
  const auto root = static_cast<std::int64_t>(v.cpu().IntReg(6));
  if (!ValidateArgs(r, count, datatype, root, 0, false, "MPI_Reduce")) {
    return vm::SyscallResult::Terminated();
  }
  if (op != static_cast<std::uint64_t>(guest::MpiOp::kSum) &&
      op != static_cast<std::uint64_t>(guest::MpiOp::kMin) &&
      op != static_cast<std::uint64_t>(guest::MpiOp::kMax)) {
    v.TerminateMpiError(StrFormat("MPI_Reduce: invalid op %llu",
                                  static_cast<unsigned long long>(op)));
    return vm::SyscallResult::Terminated();
  }
  const std::uint64_t bytes = count * guest::MpiDatatypeSize(datatype);

  if (r != root) {
    Envelope env;
    env.src = r;
    env.dest = static_cast<Rank>(root);
    env.tag = kReduceTag;
    env.count = count;
    env.datatype = datatype;
    env.payload.resize(bytes);
    if (!v.memory().ReadBytes(sendbuf, env.payload.data(), bytes)) {
      v.RaiseSignal(vm::GuestSignal::kSegv,
                    "MPI_Reduce: buffer " + Hex64(sendbuf) + " not mapped");
      return vm::SyscallResult::Terminated();
    }
    env.seq = send_seq_[{env.src, env.dest, env.tag}]++;
    if (hooks_ != nullptr) hooks_->OnSend(v, env, sendbuf);
    Deliver(std::move(env));
    return vm::SyscallResult::Done(0);
  }

  // Root: wait until every other rank's contribution is in the inbox.
  auto& inbox = rank(r).inbox;
  std::vector<const Envelope*> contributions(
      static_cast<std::size_t>(config_.num_ranks), nullptr);
  int have = 0;
  for (const Envelope& e : inbox) {
    if (e.tag == kReduceTag && contributions[static_cast<std::size_t>(e.src)] == nullptr) {
      contributions[static_cast<std::size_t>(e.src)] = &e;
      ++have;
    }
  }
  if (have < config_.num_ranks - 1) return vm::SyscallResult::Block();

  std::vector<std::uint8_t> accum(bytes);
  if (!v.memory().ReadBytes(sendbuf, accum.data(), bytes)) {
    v.RaiseSignal(vm::GuestSignal::kSegv,
                  "MPI_Reduce: buffer " + Hex64(sendbuf) + " not mapped");
    return vm::SyscallResult::Terminated();
  }
  // Record whether the root's own contribution was tainted before combining.
  bool root_contribution_tainted = false;
  if (v.taint().enabled() && v.taint().Active()) {  // elastic: no taint -> clean
    for (std::uint64_t i = 0; i < bytes && !root_contribution_tainted; ++i) {
      const auto pa = v.memory().Translate(sendbuf + i);
      if (pa && v.taint().GetMemTaintByte(*pa) != 0) root_contribution_tainted = true;
    }
  }

  std::vector<Envelope> taken;
  for (Rank src = 0; src < config_.num_ranks; ++src) {
    if (src == r) continue;
    const auto match = std::find_if(inbox.begin(), inbox.end(), [&](const Envelope& e) {
      return e.tag == kReduceTag && e.src == src;
    });
    if (match->payload.size() != bytes) {
      v.TerminateMpiError("MPI_Reduce: count mismatch across ranks");
      return vm::SyscallResult::Terminated();
    }
    CombineReduce(accum, match->payload, datatype, op);
    taken.push_back(std::move(*match));
    inbox.erase(match);
  }

  if (!v.memory().WriteBytes(recvbuf, accum.data(), bytes)) {
    v.RaiseSignal(vm::GuestSignal::kSegv,
                  "MPI_Reduce: recv buffer " + Hex64(recvbuf) + " not mapped");
    return vm::SyscallResult::Terminated();
  }
  ClearGuestMemTaint(v, recvbuf, bytes);
  // Taint flows into the reduction result from the root's own contribution
  // (local propagation) and from remote contributions (via the hub hook).
  if (root_contribution_tainted && v.taint().enabled()) {
    for (std::uint64_t i = 0; i < bytes; ++i) {
      const auto pa = v.memory().Translate(recvbuf + i);
      if (pa) v.taint().SetMemTaintByte(*pa, 0xff);
    }
  }
  if (hooks_ != nullptr) {
    for (const Envelope& env : taken) hooks_->OnRecvComplete(v, env, recvbuf);
  }
  return vm::SyscallResult::Done(0);
}

vm::SyscallResult Cluster::MpiAllreduce(Rank r) {
  // Implemented as reduce-to-rank-0 + result distribution. Rank 0 combines
  // contributions (idempotently: they are only consumed once all arrived)
  // and sends the result to every other rank; non-zero ranks contribute
  // exactly once (allreduce_sent survives blocked re-execution) and then
  // wait for the result message.
  if (!RequireInitialized(r, "MPI_Allreduce")) return vm::SyscallResult::Terminated();
  vm::Vm& v = rank_vm(r);
  const GuestAddr sendbuf = v.cpu().IntReg(1);
  const GuestAddr recvbuf = v.cpu().IntReg(2);
  const std::uint64_t count = v.cpu().IntReg(3);
  const std::uint64_t datatype = v.cpu().IntReg(4);
  const std::uint64_t op = v.cpu().IntReg(5);
  if (!ValidateArgs(r, count, datatype, 0, 0, false, "MPI_Allreduce")) {
    return vm::SyscallResult::Terminated();
  }
  if (op != static_cast<std::uint64_t>(guest::MpiOp::kSum) &&
      op != static_cast<std::uint64_t>(guest::MpiOp::kMin) &&
      op != static_cast<std::uint64_t>(guest::MpiOp::kMax)) {
    v.TerminateMpiError(StrFormat("MPI_Allreduce: invalid op %llu",
                                  static_cast<unsigned long long>(op)));
    return vm::SyscallResult::Terminated();
  }
  const std::uint64_t bytes = count * guest::MpiDatatypeSize(datatype);

  if (r != 0) {
    RankState& state = rank(r);
    if (!state.allreduce_sent) {
      if (!SendRaw(r, 0, kAllreduceTag, count, datatype, sendbuf)) {
        return vm::SyscallResult::Terminated();
      }
      state.allreduce_sent = true;
    }
    auto& inbox = state.inbox;
    const auto match = std::find_if(inbox.begin(), inbox.end(), [](const Envelope& e) {
      return e.tag == kAllreduceResultTag;
    });
    if (match == inbox.end()) return vm::SyscallResult::Block();
    if (match->payload.size() != bytes) {
      v.TerminateMpiError("MPI_Allreduce: count mismatch across ranks");
      return vm::SyscallResult::Terminated();
    }
    const Envelope env = std::move(*match);
    inbox.erase(match);
    state.allreduce_sent = false;  // ready for the next allreduce
    if (!CompleteReceive(r, env, recvbuf)) return vm::SyscallResult::Terminated();
    return vm::SyscallResult::Done(0);
  }

  // Rank 0: wait for every contribution, combine, distribute.
  auto& inbox = rank(r).inbox;
  int have = 0;
  std::vector<bool> seen(static_cast<std::size_t>(config_.num_ranks), false);
  for (const Envelope& e : inbox) {
    if (e.tag == kAllreduceTag && !seen[static_cast<std::size_t>(e.src)]) {
      seen[static_cast<std::size_t>(e.src)] = true;
      ++have;
    }
  }
  if (have < config_.num_ranks - 1) return vm::SyscallResult::Block();

  std::vector<std::uint8_t> accum(bytes);
  if (!v.memory().ReadBytes(sendbuf, accum.data(), bytes)) {
    v.RaiseSignal(vm::GuestSignal::kSegv,
                  "MPI_Allreduce: buffer " + Hex64(sendbuf) + " not mapped");
    return vm::SyscallResult::Terminated();
  }
  bool root_tainted = false;
  if (v.taint().enabled() && v.taint().Active()) {  // elastic: no taint -> clean
    for (std::uint64_t i = 0; i < bytes && !root_tainted; ++i) {
      const auto pa = v.memory().Translate(sendbuf + i);
      if (pa && v.taint().GetMemTaintByte(*pa) != 0) root_tainted = true;
    }
  }
  std::vector<Envelope> taken;
  for (Rank src = 1; src < config_.num_ranks; ++src) {
    const auto match = std::find_if(inbox.begin(), inbox.end(), [&](const Envelope& e) {
      return e.tag == kAllreduceTag && e.src == src;
    });
    if (match->payload.size() != bytes) {
      v.TerminateMpiError("MPI_Allreduce: count mismatch across ranks");
      return vm::SyscallResult::Terminated();
    }
    CombineReduce(accum, match->payload, datatype, op);
    taken.push_back(std::move(*match));
    inbox.erase(match);
  }
  if (!v.memory().WriteBytes(recvbuf, accum.data(), bytes)) {
    v.RaiseSignal(vm::GuestSignal::kSegv,
                  "MPI_Allreduce: recv buffer " + Hex64(recvbuf) + " not mapped");
    return vm::SyscallResult::Terminated();
  }
  ClearGuestMemTaint(v, recvbuf, bytes);
  if (root_tainted && v.taint().enabled()) {
    for (std::uint64_t i = 0; i < bytes; ++i) {
      const auto pa = v.memory().Translate(recvbuf + i);
      if (pa) v.taint().SetMemTaintByte(*pa, 0xff);
    }
  }
  if (hooks_ != nullptr) {
    for (const Envelope& env : taken) hooks_->OnRecvComplete(v, env, recvbuf);
  }
  // Distribute the combined result (taint travels via the usual send hook).
  for (Rank dest = 1; dest < config_.num_ranks; ++dest) {
    if (!SendRaw(r, dest, kAllreduceResultTag, count, datatype, recvbuf)) {
      return vm::SyscallResult::Terminated();
    }
  }
  return vm::SyscallResult::Done(0);
}

vm::SyscallResult Cluster::MpiGather(Rank r) {
  if (!RequireInitialized(r, "MPI_Gather")) return vm::SyscallResult::Terminated();
  vm::Vm& v = rank_vm(r);
  const GuestAddr sendbuf = v.cpu().IntReg(1);
  const GuestAddr recvbuf = v.cpu().IntReg(2);
  const std::uint64_t count = v.cpu().IntReg(3);
  const std::uint64_t datatype = v.cpu().IntReg(4);
  const auto root = static_cast<std::int64_t>(v.cpu().IntReg(5));
  if (!ValidateArgs(r, count, datatype, root, 0, false, "MPI_Gather")) {
    return vm::SyscallResult::Terminated();
  }
  const std::uint64_t bytes = count * guest::MpiDatatypeSize(datatype);

  if (r != root) {
    // Fire-and-forget: no blocking, so no re-execution to guard against.
    if (!SendRaw(r, static_cast<Rank>(root), kGatherTag, count, datatype, sendbuf)) {
      return vm::SyscallResult::Terminated();
    }
    return vm::SyscallResult::Done(0);
  }

  auto& inbox = rank(r).inbox;
  int have = 0;
  std::vector<bool> seen(static_cast<std::size_t>(config_.num_ranks), false);
  for (const Envelope& e : inbox) {
    if (e.tag == kGatherTag && !seen[static_cast<std::size_t>(e.src)]) {
      seen[static_cast<std::size_t>(e.src)] = true;
      ++have;
    }
  }
  if (have < config_.num_ranks - 1) return vm::SyscallResult::Block();

  // Root's own slice first (local copy).
  std::vector<std::uint8_t> slice(bytes);
  if (!v.memory().ReadBytes(sendbuf, slice.data(), bytes) ||
      !v.memory().WriteBytes(recvbuf + static_cast<std::uint64_t>(r) * bytes,
                             slice.data(), bytes)) {
    v.RaiseSignal(vm::GuestSignal::kSegv, "MPI_Gather: buffer not mapped");
    return vm::SyscallResult::Terminated();
  }
  for (Rank src = 0; src < config_.num_ranks; ++src) {
    if (src == r) continue;
    const auto match = std::find_if(inbox.begin(), inbox.end(), [&](const Envelope& e) {
      return e.tag == kGatherTag && e.src == src;
    });
    if (match->payload.size() != bytes) {
      v.TerminateMpiError("MPI_Gather: count mismatch across ranks");
      return vm::SyscallResult::Terminated();
    }
    const Envelope env = std::move(*match);
    inbox.erase(match);
    if (!CompleteReceive(r, env,
                         recvbuf + static_cast<std::uint64_t>(src) * bytes)) {
      return vm::SyscallResult::Terminated();
    }
  }
  return vm::SyscallResult::Done(0);
}

vm::SyscallResult Cluster::MpiScatter(Rank r) {
  if (!RequireInitialized(r, "MPI_Scatter")) return vm::SyscallResult::Terminated();
  vm::Vm& v = rank_vm(r);
  const GuestAddr sendbuf = v.cpu().IntReg(1);
  const GuestAddr recvbuf = v.cpu().IntReg(2);
  const std::uint64_t count = v.cpu().IntReg(3);
  const std::uint64_t datatype = v.cpu().IntReg(4);
  const auto root = static_cast<std::int64_t>(v.cpu().IntReg(5));
  if (!ValidateArgs(r, count, datatype, root, 0, false, "MPI_Scatter")) {
    return vm::SyscallResult::Terminated();
  }
  const std::uint64_t bytes = count * guest::MpiDatatypeSize(datatype);

  if (r == root) {
    for (Rank dest = 0; dest < config_.num_ranks; ++dest) {
      const GuestAddr chunk = sendbuf + static_cast<std::uint64_t>(dest) * bytes;
      if (dest == r) {
        std::vector<std::uint8_t> slice(bytes);
        if (!v.memory().ReadBytes(chunk, slice.data(), bytes) ||
            !v.memory().WriteBytes(recvbuf, slice.data(), bytes)) {
          v.RaiseSignal(vm::GuestSignal::kSegv, "MPI_Scatter: buffer not mapped");
          return vm::SyscallResult::Terminated();
        }
        continue;
      }
      if (!SendRaw(r, dest, kScatterTag, count, datatype, chunk)) {
        return vm::SyscallResult::Terminated();
      }
    }
    return vm::SyscallResult::Done(0);
  }

  auto& inbox = rank(r).inbox;
  const auto match = std::find_if(inbox.begin(), inbox.end(), [&](const Envelope& e) {
    return e.tag == kScatterTag && e.src == root;
  });
  if (match == inbox.end()) return vm::SyscallResult::Block();
  if (match->payload.size() != bytes) {
    v.TerminateMpiError("MPI_Scatter: count mismatch between root and receiver");
    return vm::SyscallResult::Terminated();
  }
  const Envelope env = std::move(*match);
  inbox.erase(match);
  if (!CompleteReceive(r, env, recvbuf)) return vm::SyscallResult::Terminated();
  return vm::SyscallResult::Done(0);
}

vm::SyscallResult Cluster::MpiBarrier(Rank r) {
  if (!RequireInitialized(r, "MPI_Barrier")) return vm::SyscallResult::Terminated();
  RankState& state = rank(r);
  const std::uint64_t target = state.barriers_done + 1;
  if (barrier_completed_ >= target) {
    state.barriers_done = target;
    state.barrier_arrived = false;
    return vm::SyscallResult::Done(0);
  }
  if (!state.barrier_arrived) {
    state.barrier_arrived = true;
    ++barrier_arrived_count_;
    if (barrier_arrived_count_ == config_.num_ranks) {
      ++barrier_completed_;
      barrier_arrived_count_ = 0;
      for (auto& other : ranks_) {
        other->barrier_arrived = false;
        other->vm->Unblock();
      }
      state.barriers_done = target;
      return vm::SyscallResult::Done(0);
    }
  }
  return vm::SyscallResult::Block();
}

}  // namespace chaser::mpi

// Simulated MPI runtime.
//
// Each MPI rank runs in its own Vm (own address space, own taint shadow),
// scheduled round-robin — the "four Chaser-hypervised nodes" of the paper's
// testbed collapse into one host process, but the property that matters is
// preserved: *only raw bytes* cross rank boundaries, so shadow taint dies at
// the boundary unless TaintHub (src/hub) re-establishes it.
//
// MPI calls are guest syscalls (Sys::kMpi*). The runtime validates arguments
// the way a real MPI would: bad ranks/tags/counts/datatypes terminate the
// offending process with an "MPI error detected" outcome (Table III's second
// column), and faulting buffers raise the SIGSEGV analogue (first column).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "guest/program.h"
#include "vm/vm.h"

namespace chaser::mpi {

/// Reserved internal tags for collectives (user tags must be >= 0).
inline constexpr std::int64_t kBcastTag = -2;
inline constexpr std::int64_t kReduceTag = -3;
inline constexpr std::int64_t kAllreduceTag = -4;
inline constexpr std::int64_t kAllreduceResultTag = -5;
inline constexpr std::int64_t kGatherTag = -6;
inline constexpr std::int64_t kScatterTag = -7;
inline constexpr std::int64_t kMaxUserTag = 32767;
/// Largest element count a message may carry (larger counts are corrupt).
inline constexpr std::uint64_t kMaxCount = 1ull << 22;

/// A message in flight between two ranks.
struct Envelope {
  Rank src = 0;
  Rank dest = 0;
  std::int64_t tag = 0;
  std::uint64_t count = 0;     // element count
  std::uint64_t datatype = 0;  // guest::MpiDatatype value
  std::uint64_t seq = 0;       // per-(src,dest,tag) FIFO sequence number
  std::vector<std::uint8_t> payload;
};

/// Chaser's MPI function hooks (implemented by the TaintHub glue, src/hub).
class MessageHooks {
 public:
  virtual ~MessageHooks() = default;
  /// Invoked by Cluster::Start before any rank executes. Per-job state must
  /// reset here: message sequence numbers restart at zero on Start, so taint
  /// records published in a previous job (e.g. by a trial that terminated
  /// before the receiver polled) would otherwise match the *next* job's
  /// identities and leak phantom taint across campaign trials.
  virtual void OnJobStart() {}
  /// Sender side, invoked before the message leaves the rank; `buf` is the
  /// send buffer's guest virtual address in `sender`.
  virtual void OnSend(vm::Vm& sender, const Envelope& env, GuestAddr buf) = 0;
  /// Receiver side, invoked after the payload has been copied into `buf`
  /// (whose shadow taint has been cleared — fresh data arrived).
  virtual void OnRecvComplete(vm::Vm& receiver, const Envelope& env,
                              GuestAddr buf) = 0;
};

/// Result of running an MPI job to completion.
struct JobResult {
  bool completed = false;  // every rank exited normally
  bool deadlock = false;   // all surviving ranks blocked forever
  Rank first_failure_rank = -1;
  vm::TerminationKind first_failure_kind = vm::TerminationKind::kRunning;
  vm::GuestSignal first_failure_signal = vm::GuestSignal::kNone;
  std::string first_failure_message;
  std::uint64_t total_instructions = 0;
};

class Cluster {
 public:
  struct Config {
    int num_ranks = 4;
    int ranks_per_node = 1;           // paper testbed: one rank per node
    std::uint64_t quantum = 20'000;   // instructions per scheduling slice
    std::uint64_t max_total_instructions = 4'000'000'000ull;
    vm::Vm::Config vm;
  };

  explicit Cluster(Config config);

  // Non-copyable (owns VMs).
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  void SetMessageHooks(MessageHooks* hooks) { hooks_ = hooks; }

  int num_ranks() const { return config_.num_ranks; }
  int node_of(Rank r) const { return r / config_.ranks_per_node; }
  vm::Vm& rank_vm(Rank r) { return *ranks_[static_cast<std::size_t>(r)]->vm; }
  const vm::Vm& rank_vm(Rank r) const { return *ranks_[static_cast<std::size_t>(r)]->vm; }

  /// Load the SPMD `program` into every rank's VM (fires each VM's VMI
  /// process-creation callback).
  void Start(const guest::Program& program);

  /// Shared-image variant: every rank VM borrows the same immutable image
  /// instead of copying it (see Vm::StartProcess overloads). The fast path
  /// for campaign engines that restart one program thousands of times.
  void Start(std::shared_ptr<const guest::Program> program);

  /// Round-robin schedule all ranks until the job completes, a rank fails
  /// (which kills the job, like a real MPI launcher), or deadlock.
  JobResult Run();

  /// Messages delivered so far (for tests).
  std::uint64_t messages_delivered() const { return messages_delivered_; }

  /// Tune the whole-job instruction watchdog (see Vm::set_max_instructions).
  void SetInstructionBudgets(std::uint64_t per_rank, std::uint64_t total);

 private:
  struct RankState;

  /// Shared prologue of both Start overloads: job bookkeeping + rank reset.
  void ResetJobState();

  /// Per-rank syscall extension: forwards MPI syscalls into the cluster.
  class RankSyscalls : public vm::SyscallExtension {
   public:
    RankSyscalls(Cluster* cluster, Rank rank) : cluster_(cluster), rank_(rank) {}
    std::optional<vm::SyscallResult> HandleSyscall(vm::Vm& vm,
                                                   std::uint64_t num) override;

   private:
    Cluster* cluster_;
    Rank rank_;
  };

  struct RankState {
    std::unique_ptr<vm::Vm> vm;
    std::unique_ptr<RankSyscalls> syscalls;
    bool mpi_initialized = false;
    bool mpi_finalized = false;
    std::deque<Envelope> inbox;
    std::uint64_t barriers_done = 0;
    bool barrier_arrived = false;
    // Allreduce progress: the contribution is sent exactly once even though
    // a blocked syscall re-executes when the rank is unblocked.
    bool allreduce_sent = false;
  };

  vm::SyscallResult MpiInit(Rank r);
  vm::SyscallResult MpiFinalize(Rank r);
  vm::SyscallResult MpiSend(Rank r);
  vm::SyscallResult MpiRecv(Rank r);
  vm::SyscallResult MpiBcast(Rank r);
  vm::SyscallResult MpiReduce(Rank r);
  vm::SyscallResult MpiBarrier(Rank r);
  vm::SyscallResult MpiAllreduce(Rank r);
  vm::SyscallResult MpiGather(Rank r);
  vm::SyscallResult MpiScatter(Rank r);

  /// Validates (count, datatype, peer, tag); terminates with an MPI error and
  /// returns false if invalid. `peer_may_be_any` allows -1 (MPI_ANY_SOURCE).
  bool ValidateArgs(Rank r, std::uint64_t count, std::uint64_t datatype,
                    std::int64_t peer, std::int64_t tag, bool peer_may_be_any,
                    const char* what);
  bool RequireInitialized(Rank r, const char* what);

  /// Enqueue `env` for its destination and unblock the destination VM.
  void Deliver(Envelope env);

  /// Copy a payload into guest memory, clear the buffer's shadow taint
  /// (fresh bytes arrived over the wire), and fire the receive hook.
  /// Returns false if the destination buffer faulted (signal raised).
  bool CompleteReceive(Rank r, const Envelope& env, GuestAddr buf);

  /// Read `bytes` from `buf` into an envelope payload and ship it; raises
  /// SIGSEGV and returns false if the buffer is unmapped.
  bool SendRaw(Rank src, Rank dest, std::int64_t tag, std::uint64_t count,
               std::uint64_t datatype, GuestAddr buf);

  RankState& rank(Rank r) { return *ranks_[static_cast<std::size_t>(r)]; }

  Config config_;
  std::vector<std::unique_ptr<RankState>> ranks_;
  MessageHooks* hooks_ = nullptr;
  std::map<std::tuple<Rank, Rank, std::int64_t>, std::uint64_t> send_seq_;
  std::uint64_t barrier_completed_ = 0;
  int barrier_arrived_count_ = 0;
  std::uint64_t messages_delivered_ = 0;
};

/// Clear the shadow taint of `len` bytes of guest memory starting at `vaddr`
/// (no-op for unmapped bytes). Exposed for the hub and tests.
void ClearGuestMemTaint(vm::Vm& vm, GuestAddr vaddr, std::uint64_t len);

}  // namespace chaser::mpi

#include "guest/operands.h"

namespace chaser::guest {

OperandInfo OperandsOf(const Instruction& in) {
  using GO = Opcode;
  OperandInfo info;
  switch (in.op) {
    case GO::kMovRR:
      info.int_sources = {in.rs1};
      break;
    case GO::kMovRI:
    case GO::kNop:
    case GO::kHalt:
    case GO::kJmp:
    case GO::kBr:
    case GO::kFmovI:
    case GO::kSyscall:
      break;
    case GO::kLd:
    case GO::kLdS:
      info.int_sources = {in.rs1};
      info.reads_memory = true;
      break;
    case GO::kSt:
      info.int_sources = {in.rs1, in.rs2};
      info.writes_memory = true;
      break;
    case GO::kPush:
      info.int_sources = {in.rs1, kSpReg};
      info.writes_memory = true;
      break;
    case GO::kPop:
      info.int_sources = {kSpReg};
      info.reads_memory = true;
      break;
    case GO::kAdd: case GO::kSub: case GO::kMul:
    case GO::kDivS: case GO::kDivU: case GO::kRemS: case GO::kRemU:
    case GO::kAnd: case GO::kOr: case GO::kXor:
    case GO::kShl: case GO::kShr: case GO::kSar:
      info.int_sources = in.use_imm ? std::vector<std::uint8_t>{in.rs1}
                                    : std::vector<std::uint8_t>{in.rs1, in.rs2};
      break;
    case GO::kNot:
    case GO::kNeg:
      info.int_sources = {in.rs1};
      break;
    case GO::kCmp:
      info.int_sources = in.use_imm ? std::vector<std::uint8_t>{in.rs1}
                                    : std::vector<std::uint8_t>{in.rs1, in.rs2};
      break;
    case GO::kCall:
      info.int_sources = {kSpReg};
      info.writes_memory = true;
      break;
    case GO::kCallR:
      info.int_sources = {in.rs1, kSpReg};
      info.writes_memory = true;
      break;
    case GO::kRet:
      info.int_sources = {kSpReg};
      info.reads_memory = true;
      break;
    case GO::kFmovRR:
    case GO::kFneg:
    case GO::kFabs:
    case GO::kFsqrt:
      info.fp_sources = {in.rs1};
      break;
    case GO::kFld:
      info.int_sources = {in.rs1};
      info.reads_memory = true;
      break;
    case GO::kFst:
      info.int_sources = {in.rs1};
      info.fp_sources = {in.rs2};
      info.writes_memory = true;
      break;
    case GO::kFadd: case GO::kFsub: case GO::kFmul: case GO::kFdiv:
    case GO::kFmin: case GO::kFmax:
    case GO::kFcmp:
      info.fp_sources = {in.rs1, in.rs2};
      break;
    case GO::kCvtIF:
    case GO::kBitsF:
      info.int_sources = {in.rs1};
      break;
    case GO::kCvtFI:
    case GO::kFbits:
      info.fp_sources = {in.rs1};
      break;
  }
  return info;
}

bool CorruptAfter(const Instruction& in) {
  switch (in.op) {
    case Opcode::kMovRI:
    case Opcode::kFmovI:
      return true;
    default:
      return false;
  }
}

}  // namespace chaser::guest

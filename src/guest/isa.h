// The guest instruction set architecture ("GISA-64").
//
// Chaser (the paper) injects faults into x86 guests run under QEMU.  We
// substitute a compact 64-bit RISC-style ISA with x86-flavoured mnemonic
// *classes* — mov / cmp / fadd / fmul / ... — because those classes are what
// the paper's injection campaigns target.  Guest programs are sequences of
// structured `Instruction` records; the program counter is an instruction
// index, rendered as an x86-like virtual address (kTextBase + 4*index) in
// trace logs.
//
// Register file: 16 integer registers r0..r15 (r15 = stack pointer) and
// 16 double-precision FP registers f0..f15.  Compare instructions set a
// flags record consumed by conditional branches (keeping `cmp` a distinct,
// targetable instruction exactly as on x86).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace chaser::guest {

inline constexpr unsigned kNumIntRegs = 16;
inline constexpr unsigned kNumFpRegs = 16;
inline constexpr unsigned kSpReg = 15;  // stack pointer register index

/// Memory layout of a guest process.
inline constexpr GuestAddr kTextBase = 0x0000000000400000ull;
inline constexpr GuestAddr kDataBase = 0x0000000010000000ull;
inline constexpr GuestAddr kBssBase = 0x0000000018000000ull;
inline constexpr GuestAddr kHeapBase = 0x0000000020000000ull;
inline constexpr GuestAddr kStackTop = 0x000000007fff0000ull;
inline constexpr std::uint64_t kDefaultStackBytes = 1u << 20;  // 1 MiB

/// Virtual address of the instruction at text index `idx` (for trace logs).
inline constexpr GuestAddr PcToAddr(std::uint64_t idx) { return kTextBase + 4 * idx; }
inline constexpr std::uint64_t AddrToPc(GuestAddr a) { return (a - kTextBase) / 4; }

enum class Opcode : std::uint8_t {
  kNop = 0,
  kHalt,     // abnormal stop (acts like executing an invalid instruction)

  // Integer data movement.
  kMovRR,    // rd <- rs1
  kMovRI,    // rd <- imm
  kLd,       // rd <- mem[rs1 + imm]   (size bytes, zero-extended)
  kLdS,      // rd <- mem[rs1 + imm]   (size bytes, sign-extended)
  kSt,       // mem[rs1 + imm] <- rs2  (size bytes)
  kPush,     // sp -= 8; mem[sp] <- rs1
  kPop,      // rd <- mem[sp]; sp += 8

  // Integer ALU (rd <- rs1 op (use_imm ? imm : rs2)).
  kAdd, kSub, kMul, kDivS, kDivU, kRemS, kRemU,
  kAnd, kOr, kXor, kShl, kShr, kSar,
  kNot,      // rd <- ~rs1
  kNeg,      // rd <- -rs1

  // Compare: sets flags from rs1 ? (use_imm ? imm : rs2).
  kCmp,

  // Control flow. Branch/call targets are absolute instruction indices (imm).
  kJmp,
  kBr,       // conditional branch on flags, condition in `cond`
  kCall,     // push return index; jump to imm
  kCallR,    // push return index; jump to rs1 (value is an instruction index)
  kRet,

  // Floating point (doubles).
  kFmovRR,   // fd <- fs1
  kFmovI,    // fd <- fimm
  kFld,      // fd <- mem[rs1 + imm]   (8 bytes)
  kFst,      // mem[rs1 + imm] <- fs2  (8 bytes)
  kFadd, kFsub, kFmul, kFdiv,   // fd <- fs1 op fs2
  kFneg, kFabs, kFsqrt,         // fd <- op fs1
  kFmin, kFmax,                 // fd <- op(fs1, fs2)
  kFcmp,     // sets flags from fs1 ? fs2 (unordered -> ne, not-lt)
  kCvtIF,    // fd <- (double) rs1   (signed)
  kCvtFI,    // rd <- (int64) trunc(fs1)
  kFbits,    // rd <- bit pattern of fs1
  kBitsF,    // fd <- bit pattern rs1

  kSyscall,  // service in r7, args r1..r6, result r0
};

/// Branch conditions (consume the flags set by kCmp / kFcmp).
enum class Cond : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe, kLtU, kGeU };

/// Memory access width for kLd / kLdS / kSt.
enum class MemSize : std::uint8_t { k1 = 1, k2 = 2, k4 = 4, k8 = 8 };

/// Instruction classes used to *target* fault injection (the granularity the
/// paper exposes: "inject into fadd after it executed 1000 times").
enum class InstrClass : std::uint8_t {
  kMov,    // integer moves, loads, stores, push/pop
  kFmov,   // FP moves, FP loads/stores, conversions
  kAdd,    // integer add/sub
  kMul,    // integer mul/div/rem
  kLogic,  // and/or/xor/shifts
  kCmp,    // integer and FP compares
  kBranch, // jumps, branches, call/ret
  kFadd,   // FP add/sub
  kFmul,   // FP mul/div
  kFother, // FP neg/abs/sqrt/min/max
  kSys,    // syscall / halt / nop
};

struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  Cond cond = Cond::kEq;
  bool use_imm = false;        // ALU/cmp second operand selector
  MemSize size = MemSize::k8;  // ld/st width
  std::int64_t imm = 0;        // immediate / displacement / branch target index
  double fimm = 0.0;           // kFmovI payload
};

/// Instruction class of an opcode (for injection targeting).
InstrClass ClassOf(Opcode op);

/// Human-readable names.
const char* OpcodeName(Opcode op);
const char* CondName(Cond c);
const char* ClassName(InstrClass c);

/// Parse an instruction-class name ("mov", "fadd", "cmp", ...). Returns false
/// if the name is unknown.
bool ParseInstrClass(const std::string& name, InstrClass* out);

/// True if the opcode reads/writes FP registers.
bool IsFpOpcode(Opcode op);

/// Guest system call numbers (placed in r7 before kSyscall).
enum class Sys : std::uint16_t {
  kExit = 1,        // r1 = exit code
  kWrite = 2,       // r1 = fd (1 stdout, 3 output-file), r2 = buf, r3 = len
  kAbort = 3,       // program-level abort
  kAssertFail = 4,  // failed program-level assertion (r1 = check id)
  kBrk = 5,         // r1 = bytes to extend heap; returns old break in r0
  kInstret = 6,     // returns executed instruction count in r0

  // Simulated MPI (see src/mpi). Results in r0: 0 = MPI_SUCCESS.
  kMpiInit = 16,
  kMpiCommRank = 17,  // r0 <- rank
  kMpiCommSize = 18,  // r0 <- size
  kMpiSend = 19,      // r1=buf r2=count r3=datatype r4=dest r5=tag
  kMpiRecv = 20,      // r1=buf r2=count r3=datatype r4=source r5=tag
  kMpiBcast = 21,     // r1=buf r2=count r3=datatype r4=root
  kMpiReduce = 22,    // r1=sendbuf r2=recvbuf r3=count r4=datatype r5=op r6=root
  kMpiBarrier = 23,
  kMpiFinalize = 24,
  kMpiAllreduce = 25,  // r1=sendbuf r2=recvbuf r3=count r4=datatype r5=op
  kMpiGather = 26,     // r1=sendbuf r2=recvbuf r3=count r4=datatype r5=root
  kMpiScatter = 27,    // r1=sendbuf r2=recvbuf r3=count r4=datatype r5=root
};

/// MPI datatypes understood by the simulated runtime.
enum class MpiDatatype : std::uint8_t { kDouble = 1, kInt64 = 2, kByte = 3 };

/// MPI reduction operators.
enum class MpiOp : std::uint8_t { kSum = 1, kMin = 2, kMax = 3 };

/// Byte width of an MPI datatype; 0 for invalid values (an MPI usage error).
std::uint64_t MpiDatatypeSize(std::uint64_t datatype);

}  // namespace chaser::guest

#include "guest/disasm.h"

#include <map>

#include "common/strings.h"

namespace chaser::guest {
namespace {

std::string IntReg(std::uint8_t n) { return StrFormat("r%u", n); }
std::string FpReg(std::uint8_t n) { return StrFormat("f%u", n); }

std::string Mem(std::uint8_t base, std::int64_t disp) {
  if (disp == 0) return StrFormat("[r%u]", base);
  return StrFormat("[r%u%+lld]", base, static_cast<long long>(disp));
}

}  // namespace

std::string Disassemble(const Instruction& in) {
  const char* name = OpcodeName(in.op);
  switch (in.op) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kRet:
    case Opcode::kSyscall:
      return name;
    case Opcode::kMovRR:
      return StrFormat("%s %s, %s", name, IntReg(in.rd).c_str(), IntReg(in.rs1).c_str());
    case Opcode::kMovRI:
      return StrFormat("%s %s, %lld", name, IntReg(in.rd).c_str(),
                       static_cast<long long>(in.imm));
    case Opcode::kLd:
    case Opcode::kLdS:
      return StrFormat("%s%u %s, %s", name, static_cast<unsigned>(in.size) * 8,
                       IntReg(in.rd).c_str(), Mem(in.rs1, in.imm).c_str());
    case Opcode::kSt:
      return StrFormat("%s%u %s, %s", name, static_cast<unsigned>(in.size) * 8,
                       Mem(in.rs1, in.imm).c_str(), IntReg(in.rs2).c_str());
    case Opcode::kPush:
      return StrFormat("%s %s", name, IntReg(in.rs1).c_str());
    case Opcode::kPop:
      return StrFormat("%s %s", name, IntReg(in.rd).c_str());
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDivS:
    case Opcode::kDivU:
    case Opcode::kRemS:
    case Opcode::kRemU:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kSar:
      if (in.use_imm) {
        return StrFormat("%s %s, %s, %lld", name, IntReg(in.rd).c_str(),
                         IntReg(in.rs1).c_str(), static_cast<long long>(in.imm));
      }
      return StrFormat("%s %s, %s, %s", name, IntReg(in.rd).c_str(),
                       IntReg(in.rs1).c_str(), IntReg(in.rs2).c_str());
    case Opcode::kNot:
    case Opcode::kNeg:
      return StrFormat("%s %s, %s", name, IntReg(in.rd).c_str(), IntReg(in.rs1).c_str());
    case Opcode::kCmp:
      if (in.use_imm) {
        return StrFormat("%s %s, %lld", name, IntReg(in.rs1).c_str(),
                         static_cast<long long>(in.imm));
      }
      return StrFormat("%s %s, %s", name, IntReg(in.rs1).c_str(), IntReg(in.rs2).c_str());
    case Opcode::kJmp:
    case Opcode::kCall:
      return StrFormat("%s #%lld", name, static_cast<long long>(in.imm));
    case Opcode::kBr:
      return StrFormat("b%s #%lld", CondName(in.cond), static_cast<long long>(in.imm));
    case Opcode::kCallR:
      return StrFormat("%s %s", name, IntReg(in.rs1).c_str());
    case Opcode::kFmovRR:
      return StrFormat("%s %s, %s", name, FpReg(in.rd).c_str(), FpReg(in.rs1).c_str());
    case Opcode::kFmovI:
      return StrFormat("%s %s, %g", name, FpReg(in.rd).c_str(), in.fimm);
    case Opcode::kFld:
      return StrFormat("%s %s, %s", name, FpReg(in.rd).c_str(), Mem(in.rs1, in.imm).c_str());
    case Opcode::kFst:
      return StrFormat("%s %s, %s", name, Mem(in.rs1, in.imm).c_str(), FpReg(in.rs2).c_str());
    case Opcode::kFadd:
    case Opcode::kFsub:
    case Opcode::kFmul:
    case Opcode::kFdiv:
    case Opcode::kFmin:
    case Opcode::kFmax:
      return StrFormat("%s %s, %s, %s", name, FpReg(in.rd).c_str(),
                       FpReg(in.rs1).c_str(), FpReg(in.rs2).c_str());
    case Opcode::kFneg:
    case Opcode::kFabs:
    case Opcode::kFsqrt:
      return StrFormat("%s %s, %s", name, FpReg(in.rd).c_str(), FpReg(in.rs1).c_str());
    case Opcode::kFcmp:
      return StrFormat("%s %s, %s", name, FpReg(in.rs1).c_str(), FpReg(in.rs2).c_str());
    case Opcode::kCvtIF:
      return StrFormat("%s %s, %s", name, FpReg(in.rd).c_str(), IntReg(in.rs1).c_str());
    case Opcode::kCvtFI:
      return StrFormat("%s %s, %s", name, IntReg(in.rd).c_str(), FpReg(in.rs1).c_str());
    case Opcode::kFbits:
      return StrFormat("%s %s, %s", name, IntReg(in.rd).c_str(), FpReg(in.rs1).c_str());
    case Opcode::kBitsF:
      return StrFormat("%s %s, %s", name, FpReg(in.rd).c_str(), IntReg(in.rs1).c_str());
  }
  return "?";
}

std::string DisassembleProgram(const Program& p) {
  // Invert the label map for printing.
  std::map<std::uint64_t, std::string> by_index;
  for (const auto& [label, idx] : p.code_labels) by_index[idx] = label;

  std::string out = StrFormat("; program '%s', %zu instructions, %zu data bytes, "
                              "%llu bss bytes, entry #%llu\n",
                              p.name.c_str(), p.text.size(), p.data.size(),
                              static_cast<unsigned long long>(p.bss_bytes),
                              static_cast<unsigned long long>(p.entry));
  for (std::uint64_t i = 0; i < p.text.size(); ++i) {
    const auto it = by_index.find(i);
    if (it != by_index.end()) out += it->second + ":\n";
    out += StrFormat("  %s  #%-5llu %s\n", Hex64(PcToAddr(i)).c_str(),
                     static_cast<unsigned long long>(i),
                     Disassemble(p.text[i]).c_str());
  }
  return out;
}

}  // namespace chaser::guest

#include "guest/isa.h"

#include "common/strings.h"

namespace chaser::guest {

InstrClass ClassOf(Opcode op) {
  switch (op) {
    case Opcode::kMovRR:
    case Opcode::kMovRI:
    case Opcode::kLd:
    case Opcode::kLdS:
    case Opcode::kSt:
    case Opcode::kPush:
    case Opcode::kPop:
      return InstrClass::kMov;
    case Opcode::kFmovRR:
    case Opcode::kFmovI:
    case Opcode::kFld:
    case Opcode::kFst:
    case Opcode::kCvtIF:
    case Opcode::kCvtFI:
    case Opcode::kFbits:
    case Opcode::kBitsF:
      return InstrClass::kFmov;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kNeg:
      return InstrClass::kAdd;
    case Opcode::kMul:
    case Opcode::kDivS:
    case Opcode::kDivU:
    case Opcode::kRemS:
    case Opcode::kRemU:
      return InstrClass::kMul;
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kSar:
    case Opcode::kNot:
      return InstrClass::kLogic;
    case Opcode::kCmp:
    case Opcode::kFcmp:
      return InstrClass::kCmp;
    case Opcode::kJmp:
    case Opcode::kBr:
    case Opcode::kCall:
    case Opcode::kCallR:
    case Opcode::kRet:
      return InstrClass::kBranch;
    case Opcode::kFadd:
    case Opcode::kFsub:
      return InstrClass::kFadd;
    case Opcode::kFmul:
    case Opcode::kFdiv:
      return InstrClass::kFmul;
    case Opcode::kFneg:
    case Opcode::kFabs:
    case Opcode::kFsqrt:
    case Opcode::kFmin:
    case Opcode::kFmax:
      return InstrClass::kFother;
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kSyscall:
      return InstrClass::kSys;
  }
  return InstrClass::kSys;
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
    case Opcode::kMovRR: return "mov";
    case Opcode::kMovRI: return "movi";
    case Opcode::kLd: return "ld";
    case Opcode::kLdS: return "lds";
    case Opcode::kSt: return "st";
    case Opcode::kPush: return "push";
    case Opcode::kPop: return "pop";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDivS: return "divs";
    case Opcode::kDivU: return "divu";
    case Opcode::kRemS: return "rems";
    case Opcode::kRemU: return "remu";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kSar: return "sar";
    case Opcode::kNot: return "not";
    case Opcode::kNeg: return "neg";
    case Opcode::kCmp: return "cmp";
    case Opcode::kJmp: return "jmp";
    case Opcode::kBr: return "br";
    case Opcode::kCall: return "call";
    case Opcode::kCallR: return "callr";
    case Opcode::kRet: return "ret";
    case Opcode::kFmovRR: return "fmov";
    case Opcode::kFmovI: return "fmovi";
    case Opcode::kFld: return "fld";
    case Opcode::kFst: return "fst";
    case Opcode::kFadd: return "fadd";
    case Opcode::kFsub: return "fsub";
    case Opcode::kFmul: return "fmul";
    case Opcode::kFdiv: return "fdiv";
    case Opcode::kFneg: return "fneg";
    case Opcode::kFabs: return "fabs";
    case Opcode::kFsqrt: return "fsqrt";
    case Opcode::kFmin: return "fmin";
    case Opcode::kFmax: return "fmax";
    case Opcode::kFcmp: return "fcmp";
    case Opcode::kCvtIF: return "cvtif";
    case Opcode::kCvtFI: return "cvtfi";
    case Opcode::kFbits: return "fbits";
    case Opcode::kBitsF: return "bitsf";
    case Opcode::kSyscall: return "syscall";
  }
  return "?";
}

const char* CondName(Cond c) {
  switch (c) {
    case Cond::kEq: return "eq";
    case Cond::kNe: return "ne";
    case Cond::kLt: return "lt";
    case Cond::kLe: return "le";
    case Cond::kGt: return "gt";
    case Cond::kGe: return "ge";
    case Cond::kLtU: return "ltu";
    case Cond::kGeU: return "geu";
  }
  return "?";
}

const char* ClassName(InstrClass c) {
  switch (c) {
    case InstrClass::kMov: return "mov";
    case InstrClass::kFmov: return "fmov";
    case InstrClass::kAdd: return "add";
    case InstrClass::kMul: return "mul";
    case InstrClass::kLogic: return "logic";
    case InstrClass::kCmp: return "cmp";
    case InstrClass::kBranch: return "branch";
    case InstrClass::kFadd: return "fadd";
    case InstrClass::kFmul: return "fmul";
    case InstrClass::kFother: return "fother";
    case InstrClass::kSys: return "sys";
  }
  return "?";
}

bool ParseInstrClass(const std::string& name, InstrClass* out) {
  const std::string n = ToLower(name);
  static constexpr InstrClass kAll[] = {
      InstrClass::kMov,  InstrClass::kFmov,   InstrClass::kAdd,
      InstrClass::kMul,  InstrClass::kLogic,  InstrClass::kCmp,
      InstrClass::kBranch, InstrClass::kFadd, InstrClass::kFmul,
      InstrClass::kFother, InstrClass::kSys};
  for (InstrClass c : kAll) {
    if (n == ClassName(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

bool IsFpOpcode(Opcode op) {
  switch (op) {
    case Opcode::kFmovRR:
    case Opcode::kFmovI:
    case Opcode::kFld:
    case Opcode::kFst:
    case Opcode::kFadd:
    case Opcode::kFsub:
    case Opcode::kFmul:
    case Opcode::kFdiv:
    case Opcode::kFneg:
    case Opcode::kFabs:
    case Opcode::kFsqrt:
    case Opcode::kFmin:
    case Opcode::kFmax:
    case Opcode::kFcmp:
    case Opcode::kCvtIF:
    case Opcode::kCvtFI:
    case Opcode::kFbits:
    case Opcode::kBitsF:
      return true;
    default:
      return false;
  }
}

std::uint64_t MpiDatatypeSize(std::uint64_t datatype) {
  switch (datatype) {
    case static_cast<std::uint64_t>(MpiDatatype::kDouble): return 8;
    case static_cast<std::uint64_t>(MpiDatatype::kInt64): return 8;
    case static_cast<std::uint64_t>(MpiDatatype::kByte): return 1;
    default: return 0;
  }
}

}  // namespace chaser::guest

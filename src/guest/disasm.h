// Disassembler for GISA-64 instructions (used by trace logs and debugging).
#pragma once

#include <string>

#include "guest/program.h"

namespace chaser::guest {

/// One-line rendering of a single instruction, e.g. "fadd f2, f0, f1".
std::string Disassemble(const Instruction& in);

/// Full program listing with labels and addresses.
std::string DisassembleProgram(const Program& p);

}  // namespace chaser::guest

#include "guest/program.h"

#include "common/error.h"

namespace chaser::guest {

GuestAddr Program::DataAddr(const std::string& label) const {
  const auto it = data_labels.find(label);
  if (it == data_labels.end()) {
    throw ConfigError("program '" + name + "' has no data label '" + label + "'");
  }
  return it->second;
}

std::uint64_t Program::CodeIndex(const std::string& label) const {
  const auto it = code_labels.find(label);
  if (it == code_labels.end()) {
    throw ConfigError("program '" + name + "' has no code label '" + label + "'");
  }
  return it->second;
}

}  // namespace chaser::guest

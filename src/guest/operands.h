// Operand metadata: which registers an instruction *reads*.
//
// Chaser's bundled injectors corrupt "the operands" of the targeted
// instruction right before it executes (paper §IV-A: faults are injected
// into the operands of fadd/fmul/mov...). This table tells an injector what
// there is to corrupt.
#pragma once

#include <cstdint>
#include <vector>

#include "guest/isa.h"

namespace chaser::guest {

struct OperandInfo {
  /// Integer registers read by the instruction (address bases included —
  /// corrupting those is how pointer faults / SIGSEGVs arise).
  std::vector<std::uint8_t> int_sources;
  /// FP registers read.
  std::vector<std::uint8_t> fp_sources;
  /// True if the instruction reads/writes memory.
  bool reads_memory = false;
  bool writes_memory = false;
};

/// Source-operand registers of `in`.
OperandInfo OperandsOf(const Instruction& in);

/// True if the instruction's only corruptible operand is its *result*
/// (immediate moves and the like). The injection helper must then run after
/// the instruction, not before — corrupting the destination of `movi` before
/// it executes would be overwritten and the fault would silently vanish.
bool CorruptAfter(const Instruction& in);

}  // namespace chaser::guest

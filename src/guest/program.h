// A guest program image: text (instructions), initialised data, bss, entry
// point and debug labels. Produced by ProgramBuilder, loaded by the guest OS.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "guest/isa.h"

namespace chaser::guest {

struct Program {
  std::string name;                    // program name, matched by VMI targeting
  std::vector<Instruction> text;       // instruction memory
  std::vector<std::uint8_t> data;      // initialised data placed at kDataBase
  std::uint64_t bss_bytes = 0;         // zero-filled region after data
  std::uint64_t entry = 0;             // entry instruction index
  std::map<std::string, std::uint64_t> code_labels;  // label -> instr index
  std::map<std::string, GuestAddr> data_labels;      // label -> virtual address

  /// Virtual address of a named data object; throws ConfigError if missing.
  GuestAddr DataAddr(const std::string& label) const;

  /// Instruction index of a named code label; throws ConfigError if missing.
  std::uint64_t CodeIndex(const std::string& label) const;
};

}  // namespace chaser::guest

#include "guest/builder.h"

#include <cstring>

#include "common/error.h"
#include "common/strings.h"

namespace chaser::guest {

ProgramBuilder::ProgramBuilder(std::string name) : name_(std::move(name)) {}

ProgramBuilder::Label ProgramBuilder::NewLabel(const std::string& name) {
  LabelInfo info;
  info.name = name.empty() ? StrFormat("L%zu", labels_.size()) : name;
  labels_.push_back(info);
  return Label(static_cast<std::uint32_t>(labels_.size() - 1));
}

void ProgramBuilder::Bind(Label l) {
  if (l.id_ >= labels_.size()) throw AssemblyError("Bind: invalid label");
  LabelInfo& info = labels_[l.id_];
  if (info.bound) throw AssemblyError("Bind: label '" + info.name + "' bound twice");
  info.bound = true;
  info.index = text_.size();
  code_labels_[info.name] = info.index;
}

ProgramBuilder::Label ProgramBuilder::Here(const std::string& name) {
  Label l = NewLabel(name);
  Bind(l);
  return l;
}

void ProgramBuilder::SetEntry(Label l) {
  if (l.id_ >= labels_.size()) throw AssemblyError("SetEntry: invalid label");
  has_entry_ = true;
  entry_label_ = l.id_;
}

GuestAddr ProgramBuilder::PlaceData(const std::string& label, const std::uint8_t* p,
                                    std::size_t n) {
  // 8-byte align each object so FP loads are naturally aligned.
  while (data_.size() % 8 != 0) data_.push_back(0);
  const GuestAddr addr = kDataBase + data_.size();
  data_.insert(data_.end(), p, p + n);
  if (!label.empty()) {
    if (data_labels_.count(label) != 0) {
      throw AssemblyError("duplicate data label '" + label + "'");
    }
    data_labels_[label] = addr;
  }
  return addr;
}

GuestAddr ProgramBuilder::DataBytes(const std::string& label,
                                    std::span<const std::uint8_t> bytes) {
  return PlaceData(label, bytes.data(), bytes.size());
}

GuestAddr ProgramBuilder::DataU64(const std::string& label,
                                  std::span<const std::uint64_t> words) {
  return PlaceData(label, reinterpret_cast<const std::uint8_t*>(words.data()),
                   words.size() * 8);
}

GuestAddr ProgramBuilder::DataF64(const std::string& label,
                                  std::span<const double> values) {
  return PlaceData(label, reinterpret_cast<const std::uint8_t*>(values.data()),
                   values.size() * 8);
}

GuestAddr ProgramBuilder::DataString(const std::string& label, const std::string& text) {
  return PlaceData(label, reinterpret_cast<const std::uint8_t*>(text.data()),
                   text.size());
}

GuestAddr ProgramBuilder::Bss(const std::string& label, std::uint64_t bytes) {
  bss_cursor_ = (bss_cursor_ + 7) & ~std::uint64_t{7};
  const GuestAddr addr = kBssBase + bss_cursor_;
  bss_cursor_ += bytes;
  if (!label.empty()) {
    if (data_labels_.count(label) != 0) {
      throw AssemblyError("duplicate data label '" + label + "'");
    }
    data_labels_[label] = addr;
  }
  return addr;
}

void ProgramBuilder::CheckReg(std::uint8_t n) const {
  if (n >= kNumIntRegs) throw AssemblyError(StrFormat("register r%u out of range", n));
}

void ProgramBuilder::Emit(const Instruction& in) {
  if (finalized_) throw AssemblyError("emit after Finalize()");
  text_.push_back(in);
}

// ---- Plain emitters ---------------------------------------------------------

void ProgramBuilder::Nop() { Emit({.op = Opcode::kNop}); }
void ProgramBuilder::Halt() { Emit({.op = Opcode::kHalt}); }

void ProgramBuilder::Mov(Reg rd, Reg rs) {
  CheckReg(rd.n);
  CheckReg(rs.n);
  Emit({.op = Opcode::kMovRR, .rd = rd.n, .rs1 = rs.n});
}

void ProgramBuilder::MovI(Reg rd, std::int64_t imm) {
  CheckReg(rd.n);
  Emit({.op = Opcode::kMovRI, .rd = rd.n, .imm = imm});
}

void ProgramBuilder::MovILabel(Reg rd, Label l) {
  CheckReg(rd.n);
  fixups_.push_back({text_.size(), l.id_});
  Emit({.op = Opcode::kMovRI, .rd = rd.n, .imm = 0});
}

void ProgramBuilder::Ld(Reg rd, Reg base, std::int64_t disp, MemSize sz) {
  CheckReg(rd.n);
  CheckReg(base.n);
  Emit({.op = Opcode::kLd, .rd = rd.n, .rs1 = base.n, .size = sz, .imm = disp});
}

void ProgramBuilder::LdS(Reg rd, Reg base, std::int64_t disp, MemSize sz) {
  CheckReg(rd.n);
  CheckReg(base.n);
  Emit({.op = Opcode::kLdS, .rd = rd.n, .rs1 = base.n, .size = sz, .imm = disp});
}

void ProgramBuilder::St(Reg base, std::int64_t disp, Reg rs, MemSize sz) {
  CheckReg(base.n);
  CheckReg(rs.n);
  Emit({.op = Opcode::kSt, .rs1 = base.n, .rs2 = rs.n, .size = sz, .imm = disp});
}

void ProgramBuilder::Push(Reg rs) {
  CheckReg(rs.n);
  Emit({.op = Opcode::kPush, .rs1 = rs.n});
}

void ProgramBuilder::Pop(Reg rd) {
  CheckReg(rd.n);
  Emit({.op = Opcode::kPop, .rd = rd.n});
}

void ProgramBuilder::Alu(Opcode op, Reg rd, Reg rs1, Reg rs2) {
  CheckReg(rd.n);
  CheckReg(rs1.n);
  CheckReg(rs2.n);
  Emit({.op = op, .rd = rd.n, .rs1 = rs1.n, .rs2 = rs2.n});
}

void ProgramBuilder::AluI(Opcode op, Reg rd, Reg rs1, std::int64_t imm) {
  CheckReg(rd.n);
  CheckReg(rs1.n);
  Emit({.op = op, .rd = rd.n, .rs1 = rs1.n, .use_imm = true, .imm = imm});
}

void ProgramBuilder::Add(Reg rd, Reg rs1, Reg rs2) { Alu(Opcode::kAdd, rd, rs1, rs2); }
void ProgramBuilder::AddI(Reg rd, Reg rs1, std::int64_t imm) { AluI(Opcode::kAdd, rd, rs1, imm); }
void ProgramBuilder::Sub(Reg rd, Reg rs1, Reg rs2) { Alu(Opcode::kSub, rd, rs1, rs2); }
void ProgramBuilder::SubI(Reg rd, Reg rs1, std::int64_t imm) { AluI(Opcode::kSub, rd, rs1, imm); }
void ProgramBuilder::Mul(Reg rd, Reg rs1, Reg rs2) { Alu(Opcode::kMul, rd, rs1, rs2); }
void ProgramBuilder::MulI(Reg rd, Reg rs1, std::int64_t imm) { AluI(Opcode::kMul, rd, rs1, imm); }
void ProgramBuilder::DivS(Reg rd, Reg rs1, Reg rs2) { Alu(Opcode::kDivS, rd, rs1, rs2); }
void ProgramBuilder::DivU(Reg rd, Reg rs1, Reg rs2) { Alu(Opcode::kDivU, rd, rs1, rs2); }
void ProgramBuilder::RemS(Reg rd, Reg rs1, Reg rs2) { Alu(Opcode::kRemS, rd, rs1, rs2); }
void ProgramBuilder::RemU(Reg rd, Reg rs1, Reg rs2) { Alu(Opcode::kRemU, rd, rs1, rs2); }
void ProgramBuilder::And(Reg rd, Reg rs1, Reg rs2) { Alu(Opcode::kAnd, rd, rs1, rs2); }
void ProgramBuilder::AndI(Reg rd, Reg rs1, std::int64_t imm) { AluI(Opcode::kAnd, rd, rs1, imm); }
void ProgramBuilder::Or(Reg rd, Reg rs1, Reg rs2) { Alu(Opcode::kOr, rd, rs1, rs2); }
void ProgramBuilder::OrI(Reg rd, Reg rs1, std::int64_t imm) { AluI(Opcode::kOr, rd, rs1, imm); }
void ProgramBuilder::Xor(Reg rd, Reg rs1, Reg rs2) { Alu(Opcode::kXor, rd, rs1, rs2); }
void ProgramBuilder::XorI(Reg rd, Reg rs1, std::int64_t imm) { AluI(Opcode::kXor, rd, rs1, imm); }
void ProgramBuilder::Shl(Reg rd, Reg rs1, Reg rs2) { Alu(Opcode::kShl, rd, rs1, rs2); }
void ProgramBuilder::ShlI(Reg rd, Reg rs1, std::int64_t imm) { AluI(Opcode::kShl, rd, rs1, imm); }
void ProgramBuilder::Shr(Reg rd, Reg rs1, Reg rs2) { Alu(Opcode::kShr, rd, rs1, rs2); }
void ProgramBuilder::ShrI(Reg rd, Reg rs1, std::int64_t imm) { AluI(Opcode::kShr, rd, rs1, imm); }
void ProgramBuilder::Sar(Reg rd, Reg rs1, Reg rs2) { Alu(Opcode::kSar, rd, rs1, rs2); }
void ProgramBuilder::SarI(Reg rd, Reg rs1, std::int64_t imm) { AluI(Opcode::kSar, rd, rs1, imm); }

void ProgramBuilder::Not(Reg rd, Reg rs1) {
  CheckReg(rd.n);
  CheckReg(rs1.n);
  Emit({.op = Opcode::kNot, .rd = rd.n, .rs1 = rs1.n});
}

void ProgramBuilder::Neg(Reg rd, Reg rs1) {
  CheckReg(rd.n);
  CheckReg(rs1.n);
  Emit({.op = Opcode::kNeg, .rd = rd.n, .rs1 = rs1.n});
}

void ProgramBuilder::Cmp(Reg rs1, Reg rs2) {
  CheckReg(rs1.n);
  CheckReg(rs2.n);
  Emit({.op = Opcode::kCmp, .rs1 = rs1.n, .rs2 = rs2.n});
}

void ProgramBuilder::CmpI(Reg rs1, std::int64_t imm) {
  CheckReg(rs1.n);
  Emit({.op = Opcode::kCmp, .rs1 = rs1.n, .use_imm = true, .imm = imm});
}

void ProgramBuilder::EmitBranchLike(Opcode op, Cond c, Label l, std::uint8_t rs1) {
  if (l.id_ >= labels_.size()) throw AssemblyError("branch to invalid label");
  fixups_.push_back({text_.size(), l.id_});
  Emit({.op = op, .rs1 = rs1, .cond = c, .imm = 0});
}

void ProgramBuilder::Jmp(Label l) { EmitBranchLike(Opcode::kJmp, Cond::kEq, l); }
void ProgramBuilder::Br(Cond c, Label l) { EmitBranchLike(Opcode::kBr, c, l); }
void ProgramBuilder::Call(Label l) { EmitBranchLike(Opcode::kCall, Cond::kEq, l); }

void ProgramBuilder::CallR(Reg rs1) {
  CheckReg(rs1.n);
  Emit({.op = Opcode::kCallR, .rs1 = rs1.n});
}

void ProgramBuilder::Ret() { Emit({.op = Opcode::kRet}); }

void ProgramBuilder::Fmov(FReg fd, FReg fs) {
  Emit({.op = Opcode::kFmovRR, .rd = fd.n, .rs1 = fs.n});
}

void ProgramBuilder::FmovI(FReg fd, double value) {
  Emit({.op = Opcode::kFmovI, .rd = fd.n, .fimm = value});
}

void ProgramBuilder::Fld(FReg fd, Reg base, std::int64_t disp) {
  CheckReg(base.n);
  Emit({.op = Opcode::kFld, .rd = fd.n, .rs1 = base.n, .imm = disp});
}

void ProgramBuilder::Fst(Reg base, std::int64_t disp, FReg fs) {
  CheckReg(base.n);
  Emit({.op = Opcode::kFst, .rs1 = base.n, .rs2 = fs.n, .imm = disp});
}

void ProgramBuilder::Falu(Opcode op, FReg fd, FReg fs1, FReg fs2) {
  Emit({.op = op, .rd = fd.n, .rs1 = fs1.n, .rs2 = fs2.n});
}

void ProgramBuilder::Fadd(FReg fd, FReg fs1, FReg fs2) { Falu(Opcode::kFadd, fd, fs1, fs2); }
void ProgramBuilder::Fsub(FReg fd, FReg fs1, FReg fs2) { Falu(Opcode::kFsub, fd, fs1, fs2); }
void ProgramBuilder::Fmul(FReg fd, FReg fs1, FReg fs2) { Falu(Opcode::kFmul, fd, fs1, fs2); }
void ProgramBuilder::Fdiv(FReg fd, FReg fs1, FReg fs2) { Falu(Opcode::kFdiv, fd, fs1, fs2); }
void ProgramBuilder::Fmin(FReg fd, FReg fs1, FReg fs2) { Falu(Opcode::kFmin, fd, fs1, fs2); }
void ProgramBuilder::Fmax(FReg fd, FReg fs1, FReg fs2) { Falu(Opcode::kFmax, fd, fs1, fs2); }

void ProgramBuilder::Fneg(FReg fd, FReg fs1) {
  Emit({.op = Opcode::kFneg, .rd = fd.n, .rs1 = fs1.n});
}

void ProgramBuilder::Fabs(FReg fd, FReg fs1) {
  Emit({.op = Opcode::kFabs, .rd = fd.n, .rs1 = fs1.n});
}

void ProgramBuilder::Fsqrt(FReg fd, FReg fs1) {
  Emit({.op = Opcode::kFsqrt, .rd = fd.n, .rs1 = fs1.n});
}

void ProgramBuilder::Fcmp(FReg fs1, FReg fs2) {
  Emit({.op = Opcode::kFcmp, .rs1 = fs1.n, .rs2 = fs2.n});
}

void ProgramBuilder::CvtIF(FReg fd, Reg rs1) {
  CheckReg(rs1.n);
  Emit({.op = Opcode::kCvtIF, .rd = fd.n, .rs1 = rs1.n});
}

void ProgramBuilder::CvtFI(Reg rd, FReg fs1) {
  CheckReg(rd.n);
  Emit({.op = Opcode::kCvtFI, .rd = rd.n, .rs1 = fs1.n});
}

void ProgramBuilder::Fbits(Reg rd, FReg fs1) {
  CheckReg(rd.n);
  Emit({.op = Opcode::kFbits, .rd = rd.n, .rs1 = fs1.n});
}

void ProgramBuilder::BitsF(FReg fd, Reg rs1) {
  CheckReg(rs1.n);
  Emit({.op = Opcode::kBitsF, .rd = fd.n, .rs1 = rs1.n});
}

void ProgramBuilder::Syscall() { Emit({.op = Opcode::kSyscall}); }

void ProgramBuilder::Sys(guest::Sys service) {
  MovI(R(7), static_cast<std::int64_t>(service));
  Syscall();
}

void ProgramBuilder::Exit(std::int64_t code) {
  MovI(R(1), code);
  Sys(guest::Sys::kExit);
}

void ProgramBuilder::Write(std::int64_t fd, Reg buf, Reg len) {
  MovI(R(1), fd);
  Mov(R(2), buf);
  Mov(R(3), len);
  Sys(guest::Sys::kWrite);
}

void ProgramBuilder::AssertFail(std::int64_t check_id) {
  MovI(R(1), check_id);
  Sys(guest::Sys::kAssertFail);
}

Program ProgramBuilder::Finalize() {
  if (finalized_) throw AssemblyError("Finalize() called twice");
  for (const Fixup& f : fixups_) {
    const LabelInfo& info = labels_[f.label_id];
    if (!info.bound) {
      throw AssemblyError("unbound label '" + info.name + "' in " + name_);
    }
    text_[f.instr_index].imm = static_cast<std::int64_t>(info.index);
  }
  Program p;
  p.name = name_;
  p.text = std::move(text_);
  p.data = std::move(data_);
  p.bss_bytes = bss_cursor_;
  p.entry = has_entry_ ? labels_[entry_label_].index : 0;
  if (has_entry_ && !labels_[entry_label_].bound) {
    throw AssemblyError("entry label unbound in " + name_);
  }
  p.code_labels = std::move(code_labels_);
  p.data_labels = std::move(data_labels_);
  finalized_ = true;
  return p;
}

}  // namespace chaser::guest

// ProgramBuilder: a typed, label-resolving assembler for GISA-64.
//
// Guest applications (src/apps) are authored against this API. It plays the
// role of the compiler+linker that produced the x86 binaries the paper's
// authors ran under QEMU: it emits Instruction records, places initialised
// data and bss, and resolves forward label references at Finalize() time.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "guest/program.h"

namespace chaser::guest {

/// Typed integer-register operand (prevents mixing int and FP registers).
struct Reg {
  std::uint8_t n;
};
/// Typed FP-register operand.
struct FReg {
  std::uint8_t n;
};

constexpr Reg R(unsigned n) { return Reg{static_cast<std::uint8_t>(n)}; }
constexpr FReg F(unsigned n) { return FReg{static_cast<std::uint8_t>(n)}; }
constexpr Reg SP = Reg{kSpReg};

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  // ---- Labels -------------------------------------------------------------
  class Label {
   public:
    Label() = default;

   private:
    friend class ProgramBuilder;
    explicit Label(std::uint32_t id) : id_(id) {}
    std::uint32_t id_ = 0xffffffffu;
  };

  Label NewLabel(const std::string& name = "");
  void Bind(Label l);
  /// Shorthand: create a label and bind it here.
  Label Here(const std::string& name = "");
  /// Mark the entry point (defaults to instruction 0).
  void SetEntry(Label l);

  // ---- Data placement -----------------------------------------------------
  GuestAddr DataBytes(const std::string& label, std::span<const std::uint8_t> bytes);
  GuestAddr DataU64(const std::string& label, std::span<const std::uint64_t> words);
  GuestAddr DataF64(const std::string& label, std::span<const double> values);
  GuestAddr DataString(const std::string& label, const std::string& text);
  /// Reserve `bytes` of zero-initialised storage (8-byte aligned).
  GuestAddr Bss(const std::string& label, std::uint64_t bytes);

  // ---- Instructions -------------------------------------------------------
  void Nop();
  void Halt();

  void Mov(Reg rd, Reg rs);
  void MovI(Reg rd, std::int64_t imm);
  /// rd <- instruction index of `l` (for indirect calls through CallR).
  void MovILabel(Reg rd, Label l);
  void Ld(Reg rd, Reg base, std::int64_t disp, MemSize sz = MemSize::k8);
  void LdS(Reg rd, Reg base, std::int64_t disp, MemSize sz = MemSize::k8);
  void St(Reg base, std::int64_t disp, Reg rs, MemSize sz = MemSize::k8);
  void Push(Reg rs);
  void Pop(Reg rd);

  void Add(Reg rd, Reg rs1, Reg rs2);
  void AddI(Reg rd, Reg rs1, std::int64_t imm);
  void Sub(Reg rd, Reg rs1, Reg rs2);
  void SubI(Reg rd, Reg rs1, std::int64_t imm);
  void Mul(Reg rd, Reg rs1, Reg rs2);
  void MulI(Reg rd, Reg rs1, std::int64_t imm);
  void DivS(Reg rd, Reg rs1, Reg rs2);
  void DivU(Reg rd, Reg rs1, Reg rs2);
  void RemS(Reg rd, Reg rs1, Reg rs2);
  void RemU(Reg rd, Reg rs1, Reg rs2);
  void And(Reg rd, Reg rs1, Reg rs2);
  void AndI(Reg rd, Reg rs1, std::int64_t imm);
  void Or(Reg rd, Reg rs1, Reg rs2);
  void OrI(Reg rd, Reg rs1, std::int64_t imm);
  void Xor(Reg rd, Reg rs1, Reg rs2);
  void XorI(Reg rd, Reg rs1, std::int64_t imm);
  void Shl(Reg rd, Reg rs1, Reg rs2);
  void ShlI(Reg rd, Reg rs1, std::int64_t imm);
  void Shr(Reg rd, Reg rs1, Reg rs2);
  void ShrI(Reg rd, Reg rs1, std::int64_t imm);
  void Sar(Reg rd, Reg rs1, Reg rs2);
  void SarI(Reg rd, Reg rs1, std::int64_t imm);
  void Not(Reg rd, Reg rs1);
  void Neg(Reg rd, Reg rs1);

  void Cmp(Reg rs1, Reg rs2);
  void CmpI(Reg rs1, std::int64_t imm);

  void Jmp(Label l);
  void Br(Cond c, Label l);
  void Call(Label l);
  void CallR(Reg rs1);
  void Ret();

  void Fmov(FReg fd, FReg fs);
  void FmovI(FReg fd, double value);
  void Fld(FReg fd, Reg base, std::int64_t disp);
  void Fst(Reg base, std::int64_t disp, FReg fs);
  void Fadd(FReg fd, FReg fs1, FReg fs2);
  void Fsub(FReg fd, FReg fs1, FReg fs2);
  void Fmul(FReg fd, FReg fs1, FReg fs2);
  void Fdiv(FReg fd, FReg fs1, FReg fs2);
  void Fneg(FReg fd, FReg fs1);
  void Fabs(FReg fd, FReg fs1);
  void Fsqrt(FReg fd, FReg fs1);
  void Fmin(FReg fd, FReg fs1, FReg fs2);
  void Fmax(FReg fd, FReg fs1, FReg fs2);
  void Fcmp(FReg fs1, FReg fs2);
  void CvtIF(FReg fd, Reg rs1);
  void CvtFI(Reg rd, FReg fs1);
  void Fbits(Reg rd, FReg fs1);
  void BitsF(FReg fd, Reg rs1);

  void Syscall();

  // ---- Convenience sequences (clobber r7; args per Sys contract) ----------
  /// exit(code): r7 <- kExit, r1 <- code, syscall.
  void Exit(std::int64_t code);
  /// write(fd, buf_reg, len_reg) — buf/len already in registers.
  void Write(std::int64_t fd, Reg buf, Reg len);
  /// Raise a program-level assertion failure with `check_id` (see Sys).
  void AssertFail(std::int64_t check_id);
  /// Set r7 and issue the syscall (args must already be in r1..r6).
  void Sys(guest::Sys service);

  /// Current instruction index (for size accounting / tests).
  std::uint64_t TextSize() const { return text_.size(); }

  /// Resolve all fixups and produce the Program. Throws AssemblyError on
  /// unbound labels or out-of-range operands.
  Program Finalize();

 private:
  struct LabelInfo {
    std::string name;
    bool bound = false;
    std::uint64_t index = 0;
  };
  struct Fixup {
    std::uint64_t instr_index;
    std::uint32_t label_id;
  };

  void Emit(const Instruction& in);
  void EmitBranchLike(Opcode op, Cond c, Label l, std::uint8_t rs1 = 0);
  void Alu(Opcode op, Reg rd, Reg rs1, Reg rs2);
  void AluI(Opcode op, Reg rd, Reg rs1, std::int64_t imm);
  void Falu(Opcode op, FReg fd, FReg fs1, FReg fs2);
  GuestAddr PlaceData(const std::string& label, const std::uint8_t* p, std::size_t n);
  void CheckReg(std::uint8_t n) const;

  std::string name_;
  std::vector<Instruction> text_;
  std::vector<std::uint8_t> data_;
  std::uint64_t bss_cursor_ = 0;
  std::vector<LabelInfo> labels_;
  std::vector<Fixup> fixups_;
  std::map<std::string, std::uint64_t> code_labels_;
  std::map<std::string, GuestAddr> data_labels_;
  bool has_entry_ = false;
  std::uint32_t entry_label_ = 0;
  bool finalized_ = false;
};

}  // namespace chaser::guest

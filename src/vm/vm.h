// The virtual machine: CPU state, guest OS services, VMI events, and the
// TB-cached execution engine.
//
// One Vm hosts one guest process (the paper runs the target application in a
// QEMU guest per node; we collapse guest-OS multi-tasking to the single
// process under test but keep the process-creation *event*, because that is
// the hook Chaser's VMI targeting uses). The execution engine mirrors QEMU's
// main loop: look up the translation block for the current pc in the TB
// cache, translate on miss, execute the TCG ops. Chaser's pieces plug in via:
//
//  * `set_on_process_create` — DECAF's VMI_CREATEPROC_CB;
//  * `SetInstrumentPredicate` + `FlushTbCache` — flush-and-retranslate so the
//    injector helper is spliced into targeted instructions only;
//  * `set_injector_hook` — the DECAF_inject_fault helper body;
//  * `taint()` — the per-VM bitwise taint engine;
//  * `set_syscall_extension` — the simulated MPI runtime.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/types.h"
#include "guest/program.h"
#include "taint/taint.h"
#include "tcg/ir.h"
#include "tcg/optimizer.h"
#include "tcg/translator.h"
#include "vm/memory.h"

namespace chaser::vm {

/// Guest-visible signals (the "OS exception" termination causes of Table III).
enum class GuestSignal : std::uint8_t {
  kNone = 0,
  kSegv,   // unmapped memory access or wild jump
  kFpe,    // integer division by zero
  kIll,    // halt / undefined behaviour trap
  kSys,    // unknown syscall
  kAbort,  // guest called abort()
  kKill,   // watchdog: instruction budget exceeded (hung run)
};

/// Why a process stopped.
enum class TerminationKind : std::uint8_t {
  kRunning = 0,
  kExited,        // normal exit(code)
  kSignaled,      // OS exception (GuestSignal)
  kAssertFailed,  // program-level assertion (e.g. CLAMR mass-conservation check)
  kMpiError,      // the MPI runtime detected an error
};

enum class RunState : std::uint8_t { kRunnable, kBlocked, kTerminated };

const char* GuestSignalName(GuestSignal s);
const char* TerminationKindName(TerminationKind k);

/// Guest CPU: TCG env slots (r0..r15, f0..f15 as bit patterns, flags) + pc.
struct CpuState {
  std::array<std::uint64_t, tcg::kNumEnvSlots> env{};
  std::uint64_t pc = 0;  // instruction index into program text

  std::uint64_t& IntReg(unsigned r) { return env[tcg::EnvInt(r)]; }
  std::uint64_t IntReg(unsigned r) const { return env[tcg::EnvInt(r)]; }
  double FpReg(unsigned f) const { return std::bit_cast<double>(env[tcg::EnvFp(f)]); }
  void SetFpReg(unsigned f, double v) { env[tcg::EnvFp(f)] = std::bit_cast<std::uint64_t>(v); }
};

class Vm;

/// Result of an extension-handled syscall.
struct SyscallResult {
  enum class Outcome : std::uint8_t {
    kDone,       // retval valid; continue
    kBlock,      // re-execute the syscall when the VM is unblocked
    kTerminated, // the handler terminated the process (via Vm methods)
  };
  Outcome outcome = Outcome::kDone;
  std::uint64_t retval = 0;

  static SyscallResult Done(std::uint64_t rv = 0) { return {Outcome::kDone, rv}; }
  static SyscallResult Block() { return {Outcome::kBlock, 0}; }
  static SyscallResult Terminated() { return {Outcome::kTerminated, 0}; }
};

/// Handles syscalls the core OS does not implement (the MPI runtime).
class SyscallExtension {
 public:
  virtual ~SyscallExtension() = default;
  /// Return nullopt if the syscall number is not handled here.
  virtual std::optional<SyscallResult> HandleSyscall(Vm& vm, std::uint64_t num) = 0;
};

class Vm {
 public:
  struct Config {
    /// Watchdog: terminate (GuestSignal::kKill) after this many instructions.
    std::uint64_t max_instructions = 500'000'000;
    std::uint32_t max_tb_insns = 64;
    /// Run the TCG optimizer over each freshly translated TB.
    bool optimize_tbs = true;
  };

  using VmiProcessCallback = std::function<void(Vm&, Pid, const std::string&)>;
  using InjectorHook = std::function<void(Vm&, std::uint64_t pc)>;
  using InstretSampleHook = std::function<void(Vm&, std::uint64_t instret)>;
  using InstrumentPredicate =
      std::function<bool(const guest::Instruction&, std::uint64_t pc)>;

  Vm();
  explicit Vm(Config config);

  // ---- VMI (DECAF-style process events) ------------------------------------
  void set_on_process_create(VmiProcessCallback cb) { on_create_ = std::move(cb); }
  void set_on_process_exit(VmiProcessCallback cb) { on_exit_ = std::move(cb); }

  // ---- Chaser instrumentation glue ------------------------------------------
  void set_injector_hook(InjectorHook hook) { injector_hook_ = std::move(hook); }
  /// Install the predicate choosing which instructions get the injector call.
  /// Takes effect for TBs translated after the next FlushTbCache().
  void SetInstrumentPredicate(InstrumentPredicate pred);
  /// Ablation: instrument every instruction (F-SEFI style).
  void SetInstrumentAll(bool all);
  /// Drop all cached TBs; the next execution re-translates (paper §III-A(b)).
  void FlushTbCache();
  /// Flush the TB cache at the next TB boundary. Safe to call from inside a
  /// helper (e.g. when the injector detaches itself after firing, the paper's
  /// fi_clean_cb) while the current TB is still executing.
  void RequestTbFlush() { tb_flush_pending_ = true; }
  /// Invoke `hook` every `interval` retired instructions (0 disables).
  void SetInstretSample(std::uint64_t interval, InstretSampleHook hook);

  /// Instruction-granularity trace hook: invoked at every retired guest
  /// instruction while taint is active. This is the expensive alternative
  /// Chaser's memory-access-granularity tracing replaces (paper SII-C(b));
  /// it exists for the ablation bench. Null disables (the default).
  using InsnTraceHook = std::function<void(Vm&, std::uint64_t pc)>;
  void SetInsnTraceHook(InsnTraceHook hook) { insn_trace_hook_ = std::move(hook); }

  /// One tainted byte leaving the process through a write syscall:
  /// (fd, byte offset in that fd's output stream, guest/physical source
  /// address, byte value, taint mask). Chaser records these as
  /// TraceEventKind::kTaintedOutput — the anchor the root-cause walk starts
  /// from when tracing an SDC'd output byte back to its injection.
  struct TaintedOutputByte {
    int fd = -1;
    std::uint64_t stream_off = 0;
    GuestAddr vaddr = 0;
    PhysAddr paddr = 0;
    std::uint8_t value = 0;
    std::uint8_t taint = 0;
  };
  using TaintedOutputHook = std::function<void(Vm&, const TaintedOutputByte&)>;
  void SetTaintedOutputHook(TaintedOutputHook hook) {
    tainted_output_hook_ = std::move(hook);
  }

  void set_syscall_extension(SyscallExtension* ext) { syscall_ext_ = ext; }

  /// Tune the hung-run watchdog (campaigns set this from the golden run's
  /// instruction count so corrupted loop bounds terminate quickly).
  void set_max_instructions(std::uint64_t n) { config_.max_instructions = n; }
  std::uint64_t max_instructions() const { return config_.max_instructions; }

  // ---- Lifecycle -------------------------------------------------------------
  /// Load `program` (data, bss, stack), reset CPU/taint, fire the VMI
  /// process-creation callback. Returns the new pid. The VM keeps its own
  /// copy of the image, so temporaries are safe to pass.
  Pid StartProcess(const guest::Program& program);

  /// Execute up to `max_insns` instructions (or until blocked/terminated).
  RunState Run(std::uint64_t max_insns);

  /// Convenience for single-process workloads: run until terminated.
  /// Throws ConfigError if the process blocks with no extension to unblock it.
  RunState RunToCompletion();

  // ---- State inspection --------------------------------------------------------
  RunState run_state() const { return run_state_; }
  TerminationKind termination() const { return termination_; }
  GuestSignal signal() const { return signal_; }
  std::int64_t exit_code() const { return exit_code_; }
  const std::string& termination_message() const { return termination_message_; }
  std::uint64_t instret() const { return instret_; }
  Pid pid() const { return pid_; }
  const std::string& process_name() const { return process_name_; }

  CpuState& cpu() { return cpu_; }
  const CpuState& cpu() const { return cpu_; }
  GuestMemory& memory() { return memory_; }
  const GuestMemory& memory() const { return memory_; }
  taint::TaintEngine& taint() { return taint_; }
  const taint::TaintEngine& taint() const { return taint_; }
  const guest::Program* program() const { return program_; }

  /// Captured guest output for a file descriptor (1 = stdout, 3 = data file).
  const std::string& output(int fd) const;

  /// Tainted bytes the guest wrote to any output fd (taint-through-I/O:
  /// DECAF propagates taint into I/O devices; a non-zero value predicts
  /// silent data corruption before any golden-run comparison).
  std::uint64_t tainted_output_bytes() const { return tainted_output_bytes_; }

  // ---- Used by extensions / the injector ----------------------------------------
  /// Mark a blocked process runnable again (e.g. its MPI message arrived).
  void Unblock();
  /// Terminate with an MPI-runtime-detected error.
  void TerminateMpiError(std::string msg);
  /// Raise a guest signal (terminates the process).
  void RaiseSignal(GuestSignal sig, std::string msg);

  // ---- Engine statistics (Fig. 10 overhead analysis) ------------------------------
  std::uint64_t tb_translations() const { return tb_translations_; }
  std::uint64_t tb_executions() const { return tb_executions_; }
  std::uint64_t tb_cache_size() const { return tb_cache_.size(); }
  /// Cumulative TCG-optimizer activity across all translations.
  const tcg::OptimizerStats& optimizer_stats() const { return optimizer_stats_; }
  void set_optimize_tbs(bool on) { config_.optimize_tbs = on; }

 private:
  tcg::TranslationBlock& LookupTb(std::uint64_t pc);
  void ExecuteTb(const tcg::TranslationBlock& tb, std::uint64_t* budget);
  void HandleSyscallHelper(std::uint64_t pc);
  SyscallResult HandleCoreSyscall(std::uint64_t num);
  void TerminateExit(std::int64_t code);
  void TerminateAssert(std::int64_t check_id);

  Config config_;
  tcg::Translator translator_;
  std::unordered_map<std::uint64_t, std::unique_ptr<tcg::TranslationBlock>> tb_cache_;

  guest::Program program_storage_;   // owned copy of the loaded image
  const guest::Program* program_ = nullptr;  // null until a process starts
  std::string process_name_;
  Pid pid_ = kInvalidPid;
  Pid next_pid_ = 1000;

  CpuState cpu_;
  GuestMemory memory_;
  taint::TaintEngine taint_;
  std::vector<std::uint64_t> temps_;

  RunState run_state_ = RunState::kTerminated;
  TerminationKind termination_ = TerminationKind::kRunning;
  GuestSignal signal_ = GuestSignal::kNone;
  std::int64_t exit_code_ = 0;
  std::string termination_message_;

  std::uint64_t instret_ = 0;
  GuestAddr heap_break_ = 0;

  std::map<int, std::string> outputs_;
  std::uint64_t tainted_output_bytes_ = 0;

  VmiProcessCallback on_create_;
  VmiProcessCallback on_exit_;
  InjectorHook injector_hook_;
  InstretSampleHook sample_hook_;
  InsnTraceHook insn_trace_hook_;
  TaintedOutputHook tainted_output_hook_;
  std::uint64_t sample_interval_ = 0;
  std::uint64_t next_sample_ = 0;
  SyscallExtension* syscall_ext_ = nullptr;

  std::uint64_t tb_translations_ = 0;
  std::uint64_t tb_executions_ = 0;
  bool tb_flush_pending_ = false;
  tcg::OptimizerStats optimizer_stats_;
};

}  // namespace chaser::vm

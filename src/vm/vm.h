// The virtual machine: CPU state, guest OS services, VMI events, and the
// TB-cached execution engine.
//
// One Vm hosts one guest process (the paper runs the target application in a
// QEMU guest per node; we collapse guest-OS multi-tasking to the single
// process under test but keep the process-creation *event*, because that is
// the hook Chaser's VMI targeting uses). The execution engine mirrors QEMU's
// main loop: look up the translation block for the current pc in the TB
// cache, translate on miss, execute the TCG ops. Chaser's pieces plug in via:
//
//  * `set_on_process_create` — DECAF's VMI_CREATEPROC_CB;
//  * `SetInstrumentPredicate` + `FlushTbCache` — flush-and-retranslate so the
//    injector helper is spliced into targeted instructions only;
//  * `set_injector_hook` — the DECAF_inject_fault helper body;
//  * `taint()` — the per-VM bitwise taint engine;
//  * `set_syscall_extension` — the simulated MPI runtime.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "guest/program.h"
#include "taint/taint.h"
#include "tcg/ir.h"
#include "tcg/optimizer.h"
#include "tcg/translator.h"
#include "vm/memory.h"

namespace chaser::tcg {
class SharedTbCache;
}  // namespace chaser::tcg

namespace chaser::vm {

/// How ExecuteTb dispatches TCG ops.
///  * kAuto: threaded if compiled in (CHASER_THREADED_DISPATCH + a compiler
///    with computed goto), else the portable switch.
///  * kSwitch / kThreaded force one engine (ablation benches, identity
///    tests). kThreaded silently falls back to switch when unavailable —
///    both engines are bit-identical by construction, so forcing is only
///    about *measuring*, never about semantics.
enum class Dispatch : std::uint8_t { kAuto, kSwitch, kThreaded };

/// Guest-visible signals (the "OS exception" termination causes of Table III).
enum class GuestSignal : std::uint8_t {
  kNone = 0,
  kSegv,   // unmapped memory access or wild jump
  kFpe,    // integer division by zero
  kIll,    // halt / undefined behaviour trap
  kSys,    // unknown syscall
  kAbort,  // guest called abort()
  kKill,   // watchdog: instruction budget exceeded (hung run)
  kCrash,  // injected process crash (rank-crash fault, FINJ-style)
};

/// Why a process stopped.
enum class TerminationKind : std::uint8_t {
  kRunning = 0,
  kExited,        // normal exit(code)
  kSignaled,      // OS exception (GuestSignal)
  kAssertFailed,  // program-level assertion (e.g. CLAMR mass-conservation check)
  kMpiError,      // the MPI runtime detected an error
};

enum class RunState : std::uint8_t { kRunnable, kBlocked, kTerminated };

const char* GuestSignalName(GuestSignal s);
const char* TerminationKindName(TerminationKind k);

/// Guest CPU: TCG env slots (r0..r15, f0..f15 as bit patterns, flags) + pc.
struct CpuState {
  std::array<std::uint64_t, tcg::kNumEnvSlots> env{};
  std::uint64_t pc = 0;  // instruction index into program text

  std::uint64_t& IntReg(unsigned r) { return env[tcg::EnvInt(r)]; }
  std::uint64_t IntReg(unsigned r) const { return env[tcg::EnvInt(r)]; }
  double FpReg(unsigned f) const { return std::bit_cast<double>(env[tcg::EnvFp(f)]); }
  void SetFpReg(unsigned f, double v) { env[tcg::EnvFp(f)] = std::bit_cast<std::uint64_t>(v); }
};

class Vm;

/// Result of an extension-handled syscall.
struct SyscallResult {
  enum class Outcome : std::uint8_t {
    kDone,       // retval valid; continue
    kBlock,      // re-execute the syscall when the VM is unblocked
    kTerminated, // the handler terminated the process (via Vm methods)
  };
  Outcome outcome = Outcome::kDone;
  std::uint64_t retval = 0;

  static SyscallResult Done(std::uint64_t rv = 0) { return {Outcome::kDone, rv}; }
  static SyscallResult Block() { return {Outcome::kBlock, 0}; }
  static SyscallResult Terminated() { return {Outcome::kTerminated, 0}; }
};

/// Handles syscalls the core OS does not implement (the MPI runtime).
class SyscallExtension {
 public:
  virtual ~SyscallExtension() = default;
  /// Return nullopt if the syscall number is not handled here.
  virtual std::optional<SyscallResult> HandleSyscall(Vm& vm, std::uint64_t num) = 0;
};

class Vm {
 public:
  struct Config {
    /// Watchdog: terminate (GuestSignal::kKill) after this many instructions.
    std::uint64_t max_instructions = 500'000'000;
    std::uint32_t max_tb_insns = 64;
    /// Run the TCG optimizer over each freshly translated TB.
    bool optimize_tbs = true;
    /// TCG-op dispatch engine (see Dispatch).
    Dispatch dispatch = Dispatch::kAuto;
    /// Patch direct TB successor pointers (QEMU's goto_tb chaining) so
    /// straight-line and loop execution skips the TB-cache hash lookup.
    bool chain_tbs = true;
    /// Flat software TLB in front of GuestMemory::Translate.
    bool mem_tlb = true;
    /// Cap on locally indexed TBs; exceeding it triggers a full flush
    /// (QEMU semantics) counted in tb_evictions(). 0 = unlimited.
    std::uint64_t max_cached_tbs = 0;
    /// Optional process-wide shared translation cache. When set (and the
    /// current instrument predicate is shareable), translations are
    /// published to / reused from it instead of being per-VM. Not owned;
    /// must outlive the Vm.
    tcg::SharedTbCache* shared_cache = nullptr;
    /// Precomputed SharedTbCache::HashProgram of the image this Vm will run,
    /// for callers (campaign engines) that restart one program thousands of
    /// times — hashing a large image on every StartProcess is measurable.
    /// 0 = hash at StartProcess.
    std::uint64_t program_hash = 0;
  };

  using VmiProcessCallback = std::function<void(Vm&, Pid, const std::string&)>;
  using InjectorHook = std::function<void(Vm&, std::uint64_t pc)>;
  using InstretSampleHook = std::function<void(Vm&, std::uint64_t instret)>;
  using InstrumentPredicate =
      std::function<bool(const guest::Instruction&, std::uint64_t pc)>;

  Vm();
  explicit Vm(Config config);

  // ---- VMI (DECAF-style process events) ------------------------------------
  void set_on_process_create(VmiProcessCallback cb) { on_create_ = std::move(cb); }
  void set_on_process_exit(VmiProcessCallback cb) { on_exit_ = std::move(cb); }

  // ---- Chaser instrumentation glue ------------------------------------------
  void set_injector_hook(InjectorHook hook) {
    // Stored behind a shared_ptr: the interpreter pins the callable with a
    // refcount bump per invocation instead of copying the closure (the hook
    // may detach itself mid-call, so it must outlive reassignment).
    injector_hook_ =
        hook ? std::make_shared<const InjectorHook>(std::move(hook)) : nullptr;
  }
  /// Install the predicate choosing which instructions get the injector call.
  /// Takes effect for TBs translated after the next FlushTbCache().
  ///
  /// A predicate is opaque to the shared translation cache, so installing one
  /// through this overload makes translations *unshareable* (each VM owns
  /// its TBs) — correct but slow. Callers whose predicate is a pure function
  /// of some stable identity (e.g. "instruction class in {kFadd}") should use
  /// the keyed overload below.
  void SetInstrumentPredicate(InstrumentPredicate pred);

  /// Keyed variant: `key` names the predicate's behaviour for shared-cache
  /// purposes — two VMs passing the same key MUST have predicates that
  /// accept exactly the same (instruction, pc) pairs. key 0 means
  /// unshareable. A null predicate always maps to kCleanPredicateKey.
  void SetInstrumentPredicate(InstrumentPredicate pred, std::uint64_t key);

  /// Reserved shared-cache key for "no instrumentation" (null predicate).
  /// User keys should set bit 63 (see Chaser::Attach) to stay disjoint.
  static constexpr std::uint64_t kCleanPredicateKey = 1;
  /// Ablation: instrument every instruction (F-SEFI style).
  void SetInstrumentAll(bool all);
  /// Drop all cached TBs; the next execution re-translates (paper §III-A(b)).
  void FlushTbCache();
  /// Flush the TB cache at the next TB boundary. Safe to call from inside a
  /// helper (e.g. when the injector detaches itself after firing, the paper's
  /// fi_clean_cb) while the current TB is still executing.
  void RequestTbFlush() { tb_flush_pending_ = true; }
  /// Invoke `hook` every `interval` retired instructions (0 disables).
  void SetInstretSample(std::uint64_t interval, InstretSampleHook hook);

  /// Instruction-granularity trace hook: invoked at every retired guest
  /// instruction while taint is active. This is the expensive alternative
  /// Chaser's memory-access-granularity tracing replaces (paper SII-C(b));
  /// it exists for the ablation bench. Null disables (the default).
  using InsnTraceHook = std::function<void(Vm&, std::uint64_t pc)>;
  void SetInsnTraceHook(InsnTraceHook hook) { insn_trace_hook_ = std::move(hook); }

  /// One tainted byte leaving the process through a write syscall:
  /// (fd, byte offset in that fd's output stream, guest/physical source
  /// address, byte value, taint mask). Chaser records these as
  /// TraceEventKind::kTaintedOutput — the anchor the root-cause walk starts
  /// from when tracing an SDC'd output byte back to its injection.
  struct TaintedOutputByte {
    int fd = -1;
    std::uint64_t stream_off = 0;
    GuestAddr vaddr = 0;
    PhysAddr paddr = 0;
    std::uint8_t value = 0;
    std::uint8_t taint = 0;
  };
  using TaintedOutputHook = std::function<void(Vm&, const TaintedOutputByte&)>;
  void SetTaintedOutputHook(TaintedOutputHook hook) {
    tainted_output_hook_ = std::move(hook);
  }

  void set_syscall_extension(SyscallExtension* ext) { syscall_ext_ = ext; }

  /// Tune the hung-run watchdog (campaigns set this from the golden run's
  /// instruction count so corrupted loop bounds terminate quickly).
  void set_max_instructions(std::uint64_t n) {
    config_.max_instructions = n;
    UpdateNextStop();
  }
  std::uint64_t max_instructions() const { return config_.max_instructions; }

  // ---- Lifecycle -------------------------------------------------------------
  /// Load `program` (data, bss, stack), reset CPU/taint, fire the VMI
  /// process-creation callback. Returns the new pid. The VM keeps its own
  /// copy of the image, so temporaries are safe to pass.
  Pid StartProcess(const guest::Program& program);

  /// Zero-copy variant for callers that restart one immutable image many
  /// times (campaign trial engines): the Vm shares ownership instead of
  /// copying text/data into private storage on every start.
  Pid StartProcess(std::shared_ptr<const guest::Program> program);

  /// Execute up to `max_insns` instructions (or until blocked/terminated).
  RunState Run(std::uint64_t max_insns);

  /// Convenience for single-process workloads: run until terminated.
  /// Throws ConfigError if the process blocks with no extension to unblock it.
  RunState RunToCompletion();

  // ---- State inspection --------------------------------------------------------
  RunState run_state() const { return run_state_; }
  TerminationKind termination() const { return termination_; }
  GuestSignal signal() const { return signal_; }
  std::int64_t exit_code() const { return exit_code_; }
  const std::string& termination_message() const { return termination_message_; }
  std::uint64_t instret() const { return instret_; }
  Pid pid() const { return pid_; }
  const std::string& process_name() const { return process_name_; }

  CpuState& cpu() { return cpu_; }
  const CpuState& cpu() const { return cpu_; }
  GuestMemory& memory() { return memory_; }
  const GuestMemory& memory() const { return memory_; }
  taint::TaintEngine& taint() { return taint_; }
  const taint::TaintEngine& taint() const { return taint_; }
  const guest::Program* program() const { return program_; }

  /// Captured guest output for a file descriptor (1 = stdout, 3 = data file).
  const std::string& output(int fd) const;

  /// Tainted bytes the guest wrote to any output fd (taint-through-I/O:
  /// DECAF propagates taint into I/O devices; a non-zero value predicts
  /// silent data corruption before any golden-run comparison).
  std::uint64_t tainted_output_bytes() const { return tainted_output_bytes_; }

  // ---- Used by extensions / the injector ----------------------------------------
  /// Mark a blocked process runnable again (e.g. its MPI message arrived).
  void Unblock();
  /// Terminate with an MPI-runtime-detected error.
  void TerminateMpiError(std::string msg);
  /// Raise a guest signal (terminates the process).
  void RaiseSignal(GuestSignal sig, std::string msg);

  /// Instruction-skip faults (InjectV-style): callable from inside the
  /// injector helper, which runs immediately before the targeted instruction
  /// — that instruction is then squashed and execution resumes at the next
  /// one. The squashed instruction still counts as retired (its prologue ran
  /// before the helper). For the few instructions whose helper is spliced
  /// *after* them (guest::CorruptAfter), the skip degrades to a no-op.
  void SkipCurrentInstruction() { skip_pending_ = true; }

  /// Stuck-at faults (CHAOS/NAIL-style persistent register faults): pin
  /// `mask` bits of CPU env slot `env_slot` to the corresponding bits of
  /// `value`. The pin is re-asserted at every instruction boundary, so every
  /// register read observes the stuck bits no matter what the program wrote;
  /// each re-pin that changes state re-taints the changed bits. Pins are VM
  /// state, not TB state — they survive TB chaining and cache flushes — and
  /// are cleared by StartProcess, making them strictly per-trial.
  struct StuckFault {
    std::uint32_t env_slot = 0;
    std::uint64_t mask = 0;
    std::uint64_t value = 0;
  };
  void AddStuckFault(std::uint32_t env_slot, std::uint64_t mask,
                     std::uint64_t value);
  void ClearStuckFaults();
  const std::vector<StuckFault>& stuck_faults() const { return stuck_faults_; }

  // ---- Engine statistics (Fig. 10 overhead analysis) ------------------------------
  std::uint64_t tb_translations() const { return tb_translations_; }
  std::uint64_t tb_executions() const { return tb_executions_; }
  std::uint64_t tb_cache_size() const { return tb_cache_.size(); }
  /// Cumulative TCG-optimizer activity across all translations.
  const tcg::OptimizerStats& optimizer_stats() const { return optimizer_stats_; }
  void set_optimize_tbs(bool on) { config_.optimize_tbs = on; }

  /// Per-translation-epoch breakdown of translation cost. An epoch is the
  /// interval between TB-cache flushes, so e.g. epoch 0 is the cost before
  /// the injector predicate was attached and epoch 1 the retranslation cost
  /// after. The current (open) epoch is included as the last element.
  struct TranslationEpochStats {
    std::uint64_t translations = 0;   // TBs translated locally this epoch
    std::uint64_t shared_reuses = 0;  // TBs taken from the shared cache
    tcg::OptimizerStats optimizer;    // optimizer work for those translations
  };
  /// Closed epochs then the current one (always >= 1 entry once running).
  std::vector<TranslationEpochStats> translation_epochs() const;
  /// Zero every translation counter: lifetime totals (tb_translations,
  /// optimizer_stats, shared-cache reuse, evictions) and the epoch history.
  void ResetTranslationStats();

  // ---- Hot-path counters (this PR's perf work) -------------------------------
  /// TB-to-TB transfers that followed a patched chain pointer instead of
  /// hashing into the TB cache (QEMU's tb_add_jump hit rate).
  std::uint64_t tb_chain_hits() const { return tb_chain_hits_; }
  /// Flat-TLB hit/miss counters from the soft-MMU.
  std::uint64_t tlb_hits() const { return memory_.tlb_hits(); }
  std::uint64_t tlb_misses() const { return memory_.tlb_misses(); }
  /// TBs served by the shared cross-trial cache instead of translating.
  std::uint64_t shared_tb_reuses() const { return shared_reuses_; }
  /// TBs dropped by cap-overflow flushes of the local index.
  std::uint64_t tb_evictions() const { return tb_evictions_; }

  /// True when the binary was built with computed-goto threaded dispatch.
  static bool ThreadedDispatchAvailable();

 private:
  /// One slot of the local pc -> TB index. `tb` points either at `owned` or
  /// at a shared-cache node; `chain` holds the patched direct successors
  /// (slot 0 = kGotoTb / taken kBrCond, slot 1 = fallthrough kBrCond).
  /// Values live in node-stable unordered_map storage, so CachedTb* chain
  /// pointers survive rehash; FlushTbCache() invalidates them wholesale.
  struct CachedTb {
    const tcg::TranslationBlock* tb = nullptr;
    std::unique_ptr<tcg::TranslationBlock> owned;
    CachedTb* chain[2] = {nullptr, nullptr};
  };

  CachedTb& LookupTb(std::uint64_t pc);
  /// Execute `tb`; `*exit_slot` receives the chain slot of the exit taken
  /// (0/1 for static successors, -1 for dynamic/none — see CachedTb::chain).
  void ExecuteTb(const tcg::TranslationBlock& tb, std::uint64_t* budget,
                 int* exit_slot);
  // __restrict: budget/exit_slot never alias VM state, which lets the
  // compiler keep them in registers across the per-op member stores.
  void ExecuteTbSwitch(const tcg::TranslationBlock& tb,
                       std::uint64_t* __restrict budget,
                       int* __restrict exit_slot);
  void ExecuteTbThreaded(const tcg::TranslationBlock& tb,
                         std::uint64_t* __restrict budget,
                         int* __restrict exit_slot);
  /// Shared-cache key of the current translation configuration, or 0 when
  /// translations are not shareable (no cache / opaque predicate).
  std::uint64_t SharedVariantKey() const;
  /// Common tail of both StartProcess overloads; `program_` is already set.
  Pid StartLoadedProcess();
  void HandleSyscallHelper(std::uint64_t pc);
  /// Recompute next_stop_ = min(watchdog threshold, next sample point).
  /// Called whenever max_instructions or the sample schedule changes.
  void UpdateNextStop() {
    const std::uint64_t kNever = ~std::uint64_t{0};
    const std::uint64_t watchdog = config_.max_instructions == kNever
                                       ? kNever
                                       : config_.max_instructions + 1;
    const std::uint64_t sample = sample_interval_ == 0 ? kNever : next_sample_;
    next_stop_ = watchdog < sample ? watchdog : sample;
  }
  SyscallResult HandleCoreSyscall(std::uint64_t num);
  void TerminateExit(std::int64_t code);
  void TerminateAssert(std::int64_t check_id);
  /// Re-apply every stuck-at pin to the CPU env, tainting any bits that had
  /// drifted since the last boundary. Returns true when a bit actually
  /// changed (the interpreter must then refresh its local taint latch).
  bool ReassertStuckFaults();

  Config config_;
  tcg::Translator translator_;
  std::unordered_map<std::uint64_t, CachedTb> tb_cache_;

  guest::Program program_storage_;   // owned copy of the loaded image
  std::shared_ptr<const guest::Program> program_shared_;  // shared-image mode
  const guest::Program* program_ = nullptr;  // null until a process starts
  std::string process_name_;
  Pid pid_ = kInvalidPid;
  Pid next_pid_ = 1000;

  CpuState cpu_;
  GuestMemory memory_;
  taint::TaintEngine taint_;
  std::vector<std::uint64_t> temps_;

  RunState run_state_ = RunState::kTerminated;
  TerminationKind termination_ = TerminationKind::kRunning;
  GuestSignal signal_ = GuestSignal::kNone;
  std::int64_t exit_code_ = 0;
  std::string termination_message_;

  std::uint64_t instret_ = 0;
  GuestAddr heap_break_ = 0;

  std::map<int, std::string> outputs_;
  std::uint64_t tainted_output_bytes_ = 0;

  VmiProcessCallback on_create_;
  VmiProcessCallback on_exit_;
  std::shared_ptr<const InjectorHook> injector_hook_;
  InstretSampleHook sample_hook_;
  InsnTraceHook insn_trace_hook_;
  TaintedOutputHook tainted_output_hook_;
  std::uint64_t sample_interval_ = 0;
  std::uint64_t next_sample_ = 0;
  // First instret at which the watchdog or the sample hook must act; fuses
  // their two compares into one on the per-instruction hot path.
  std::uint64_t next_stop_ = 0;
  SyscallExtension* syscall_ext_ = nullptr;

  std::uint64_t tb_translations_ = 0;
  std::uint64_t tb_executions_ = 0;
  bool tb_flush_pending_ = false;
  // Fault-injection machine state (see SkipCurrentInstruction/AddStuckFault).
  bool skip_pending_ = false;
  bool stuck_active_ = false;
  std::vector<StuckFault> stuck_faults_;
  tcg::OptimizerStats optimizer_stats_;

  // Translation identity for the shared cache (fixed per StartProcess).
  std::uint64_t program_hash_ = 0;
  std::uint64_t predicate_key_ = kCleanPredicateKey;

  // Epoch accounting (satellite: per-flush translation-cost breakdown).
  std::vector<TranslationEpochStats> closed_epochs_;
  TranslationEpochStats epoch_cur_;

  // Hot-path counters + chain-safety generation counter. flush_count_ lets
  // the run loop detect a flush that happened *inside* LookupTb/ExecuteTb
  // (cap overflow, guest-requested flush) and drop its dangling CachedTb*.
  std::uint64_t tb_chain_hits_ = 0;
  std::uint64_t shared_reuses_ = 0;
  std::uint64_t tb_evictions_ = 0;
  std::uint64_t flush_count_ = 0;
};

}  // namespace chaser::vm

#include "vm/vm.h"

#include "common/error.h"
#include "common/log.h"
#include "common/strings.h"
#include "tcg/shared_cache.h"

namespace chaser::vm {

namespace {
/// Largest guest write() honoured; beyond this the buffer length is treated
/// as corrupt and the access faults (a corrupted length register would make
/// the real OS fail the copy the same way).
constexpr std::uint64_t kMaxWriteBytes = 1ull << 26;
}  // namespace

const char* GuestSignalName(GuestSignal s) {
  switch (s) {
    case GuestSignal::kNone: return "none";
    case GuestSignal::kSegv: return "SIGSEGV";
    case GuestSignal::kFpe: return "SIGFPE";
    case GuestSignal::kIll: return "SIGILL";
    case GuestSignal::kSys: return "SIGSYS";
    case GuestSignal::kAbort: return "SIGABRT";
    case GuestSignal::kKill: return "SIGKILL";
    case GuestSignal::kCrash: return "SIGCRASH";
  }
  return "?";
}

const char* TerminationKindName(TerminationKind k) {
  switch (k) {
    case TerminationKind::kRunning: return "running";
    case TerminationKind::kExited: return "exited";
    case TerminationKind::kSignaled: return "os-exception";
    case TerminationKind::kAssertFailed: return "assertion-failed";
    case TerminationKind::kMpiError: return "mpi-error";
  }
  return "?";
}

Vm::Vm() : Vm(Config{}) {}

Vm::Vm(Config config) : config_(config) {
  tcg::Translator::Options opts;
  opts.max_tb_insns = config_.max_tb_insns;
  translator_.set_options(std::move(opts));
}

void Vm::SetInstrumentPredicate(InstrumentPredicate pred) {
  // Unkeyed: a null predicate is the canonical "clean" variant; a live one
  // is opaque and therefore unshareable (key 0).
  const std::uint64_t key = pred ? 0 : kCleanPredicateKey;
  SetInstrumentPredicate(std::move(pred), key);
}

void Vm::SetInstrumentPredicate(InstrumentPredicate pred, std::uint64_t key) {
  auto opts = translator_.options();
  opts.instrument = std::move(pred);
  translator_.set_options(std::move(opts));
  predicate_key_ = key;
}

void Vm::SetInstrumentAll(bool all) {
  auto opts = translator_.options();
  opts.instrument_all = all;
  translator_.set_options(std::move(opts));
}

void Vm::FlushTbCache() {
  // Shared-cache mode: the TBs live in (and are owned by) the shared cache;
  // dropping the local pc index is the whole flush. A subsequent predicate
  // change switches the variant key, so stale translations can never be
  // looked up again — no epoch bump needed here.
  tb_cache_.clear();
  ++flush_count_;  // invalidates every outstanding CachedTb* / chain pointer
  if (epoch_cur_.translations != 0 || epoch_cur_.shared_reuses != 0) {
    closed_epochs_.push_back(epoch_cur_);
    epoch_cur_ = TranslationEpochStats{};
  }
}

std::vector<Vm::TranslationEpochStats> Vm::translation_epochs() const {
  std::vector<TranslationEpochStats> epochs = closed_epochs_;
  epochs.push_back(epoch_cur_);
  return epochs;
}

void Vm::ResetTranslationStats() {
  tb_translations_ = 0;
  optimizer_stats_ = tcg::OptimizerStats{};
  shared_reuses_ = 0;
  tb_evictions_ = 0;
  closed_epochs_.clear();
  epoch_cur_ = TranslationEpochStats{};
}

std::uint64_t Vm::SharedVariantKey() const {
  if (config_.shared_cache == nullptr || predicate_key_ == 0) return 0;
  // Mix every knob that changes translation output. FNV-style so distinct
  // (predicate, optimize, max_tb_insns, instrument_all) tuples get distinct
  // variants.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(predicate_key_);
  mix(config_.optimize_tbs ? 1 : 0);
  mix(config_.max_tb_insns);
  mix(translator_.options().instrument_all ? 1 : 0);
  return h == 0 ? 1 : h;
}

void Vm::SetInstretSample(std::uint64_t interval, InstretSampleHook hook) {
  sample_interval_ = interval;
  sample_hook_ = std::move(hook);
  next_sample_ = instret_ + (interval == 0 ? 0 : interval);
  UpdateNextStop();
}

Pid Vm::StartProcess(const guest::Program& program) {
  // Copy the image: callers may hand us a temporary, and the TB cache /
  // execution engine reference the text for the process's whole lifetime.
  // (Self-assignment when re-starting the same image is harmless.)
  program_storage_ = program;
  program_shared_.reset();
  program_ = &program_storage_;
  return StartLoadedProcess();
}

Pid Vm::StartProcess(std::shared_ptr<const guest::Program> program) {
  if (program == nullptr) {
    throw ConfigError("StartProcess: null shared program image");
  }
  program_shared_ = std::move(program);
  program_ = program_shared_.get();
  return StartLoadedProcess();
}

Pid Vm::StartLoadedProcess() {
  const guest::Program& program = *program_;
  process_name_ = program.name;
  pid_ = next_pid_++;
  program_hash_ = config_.shared_cache == nullptr ? 0
                  : config_.program_hash != 0
                      ? config_.program_hash
                      : tcg::SharedTbCache::HashProgram(program);

  memory_ = GuestMemory();
  memory_.set_tlb_enabled(config_.mem_tlb);
  // The taint shadow-page cache is the other half of the same knob: both
  // memoise page lookups, so the ablation toggles them together.
  taint_.set_page_cache_enabled(config_.mem_tlb);
  if (!program.data.empty()) {
    memory_.MapRegion(guest::kDataBase, program.data.size());
    memory_.WriteBytes(guest::kDataBase, program.data.data(), program.data.size());
  }
  if (program.bss_bytes > 0) {
    memory_.MapRegion(guest::kBssBase, program.bss_bytes);
  }
  memory_.MapRegion(guest::kStackTop - guest::kDefaultStackBytes,
                    guest::kDefaultStackBytes);
  heap_break_ = guest::kHeapBase;

  cpu_ = CpuState{};
  cpu_.pc = program.entry;
  cpu_.IntReg(guest::kSpReg) = guest::kStackTop - 64;

  taint_.Reset();
  temps_.clear();
  outputs_.clear();
  tainted_output_bytes_ = 0;

  run_state_ = RunState::kRunnable;
  termination_ = TerminationKind::kRunning;
  signal_ = GuestSignal::kNone;
  exit_code_ = 0;
  termination_message_.clear();
  instret_ = 0;
  next_sample_ = sample_interval_;
  UpdateNextStop();
  tb_chain_hits_ = 0;
  // Fault-injection state is per-trial: a stuck-at pin or pending skip from
  // a previous run must never leak into a fresh process.
  skip_pending_ = false;
  stuck_active_ = false;
  stuck_faults_.clear();

  FlushTbCache();
  // Epoch history is per-process: the flush above closed the previous
  // process's open epoch, and a fresh process starts its own epoch 0.
  closed_epochs_.clear();

  if (on_create_) on_create_(*this, pid_, process_name_);
  return pid_;
}

RunState Vm::RunToCompletion() {
  while (run_state_ == RunState::kRunnable) {
    Run(1u << 22);
  }
  if (run_state_ == RunState::kBlocked) {
    throw ConfigError("RunToCompletion: process '" + process_name_ +
                      "' blocked with nothing to unblock it");
  }
  return run_state_;
}

const std::string& Vm::output(int fd) const {
  static const std::string kEmpty;
  const auto it = outputs_.find(fd);
  return it == outputs_.end() ? kEmpty : it->second;
}

void Vm::Unblock() {
  if (run_state_ == RunState::kBlocked) run_state_ = RunState::kRunnable;
}

void Vm::TerminateMpiError(std::string msg) {
  if (run_state_ == RunState::kTerminated) return;
  run_state_ = RunState::kTerminated;
  termination_ = TerminationKind::kMpiError;
  termination_message_ = std::move(msg);
  if (on_exit_) on_exit_(*this, pid_, process_name_);
}

void Vm::AddStuckFault(std::uint32_t env_slot, std::uint64_t mask,
                       std::uint64_t value) {
  if (env_slot >= tcg::kNumEnvSlots) {
    throw ConfigError(StrFormat("AddStuckFault: env slot %u out of range",
                                env_slot));
  }
  stuck_faults_.push_back({env_slot, mask, value});
  stuck_active_ = true;
  ReassertStuckFaults();
}

void Vm::ClearStuckFaults() {
  stuck_faults_.clear();
  stuck_active_ = false;
}

bool Vm::ReassertStuckFaults() {
  bool changed = false;
  for (const StuckFault& f : stuck_faults_) {
    const std::uint64_t cur = cpu_.env[f.env_slot];
    const std::uint64_t pinned = (cur & ~f.mask) | (f.value & f.mask);
    if (pinned != cur) {
      cpu_.env[f.env_slot] = pinned;
      taint_.TaintSourceRegister(f.env_slot, cur ^ pinned);
      changed = true;
    }
  }
  return changed;
}

void Vm::RaiseSignal(GuestSignal sig, std::string msg) {
  if (run_state_ == RunState::kTerminated) return;
  run_state_ = RunState::kTerminated;
  termination_ = TerminationKind::kSignaled;
  signal_ = sig;
  termination_message_ = std::move(msg);
  if (on_exit_) on_exit_(*this, pid_, process_name_);
}

void Vm::TerminateExit(std::int64_t code) {
  if (run_state_ == RunState::kTerminated) return;
  run_state_ = RunState::kTerminated;
  termination_ = TerminationKind::kExited;
  exit_code_ = code;
  if (on_exit_) on_exit_(*this, pid_, process_name_);
}

void Vm::TerminateAssert(std::int64_t check_id) {
  if (run_state_ == RunState::kTerminated) return;
  run_state_ = RunState::kTerminated;
  termination_ = TerminationKind::kAssertFailed;
  termination_message_ = StrFormat("program assertion %lld failed",
                                   static_cast<long long>(check_id));
  if (on_exit_) on_exit_(*this, pid_, process_name_);
}

SyscallResult Vm::HandleCoreSyscall(std::uint64_t num) {
  using guest::Sys;
  switch (static_cast<Sys>(num)) {
    case Sys::kExit:
      TerminateExit(static_cast<std::int64_t>(cpu_.IntReg(1)));
      return SyscallResult::Terminated();
    case Sys::kWrite: {
      const int fd = static_cast<int>(cpu_.IntReg(1));
      const GuestAddr buf = cpu_.IntReg(2);
      const std::uint64_t len = cpu_.IntReg(3);
      if (len > kMaxWriteBytes) {
        RaiseSignal(GuestSignal::kSegv,
                    StrFormat("write: implausible length %llu",
                              static_cast<unsigned long long>(len)));
        return SyscallResult::Terminated();
      }
      std::string bytes(len, '\0');
      if (!memory_.ReadBytes(buf, bytes.data(), len)) {
        RaiseSignal(GuestSignal::kSegv,
                    "write: buffer " + Hex64(buf) + " not mapped");
        return SyscallResult::Terminated();
      }
      const std::uint64_t stream_base = outputs_[fd].size();
      outputs_[fd] += bytes;
      // Taint-through-I/O: count corrupted bytes leaving the process.
      // Scanned page-at-a-time: one translation and one shadow lookup per
      // page instead of per byte (a buffer page is contiguous physically,
      // so per-byte results are identical).
      if (taint_.enabled() && taint_.Active()) {
        // One guest page maps to one phys frame maps to one shadow page.
        static_assert(taint::kShadowPageSize == kPageSize);
        std::uint64_t i = 0;
        while (i < len) {
          const GuestAddr va = buf + i;
          const std::uint64_t in_page = kPageSize - (va & kPageMask);
          const std::uint64_t chunk = std::min(in_page, len - i);
          const auto pa = memory_.Translate(va);
          if (!pa) {
            i += chunk;  // unmapped page: every byte in it is unmapped
            continue;
          }
          const std::uint8_t* shadow = taint_.PeekShadowPage(*pa);
          if (shadow == nullptr) {
            i += chunk;  // untracked page: every byte in it is clean
            continue;
          }
          const std::uint64_t off = *pa & (taint::kShadowPageSize - 1);
          for (std::uint64_t j = 0; j < chunk; ++j) {
            const std::uint8_t mask = shadow[off + j];
            if (mask == 0) continue;
            ++tainted_output_bytes_;
            if (tainted_output_hook_) {
              tainted_output_hook_(
                  *this, TaintedOutputByte{
                             .fd = fd,
                             .stream_off = stream_base + i + j,
                             .vaddr = va + j,
                             .paddr = *pa + j,
                             .value = static_cast<std::uint8_t>(bytes[i + j]),
                             .taint = mask});
            }
          }
          i += chunk;
        }
      }
      return SyscallResult::Done(len);
    }
    case Sys::kAbort:
      RaiseSignal(GuestSignal::kAbort, "guest called abort()");
      return SyscallResult::Terminated();
    case Sys::kAssertFail:
      TerminateAssert(static_cast<std::int64_t>(cpu_.IntReg(1)));
      return SyscallResult::Terminated();
    case Sys::kBrk: {
      const std::uint64_t bytes = cpu_.IntReg(1);
      const GuestAddr old_break = heap_break_;
      if (bytes > 0) {
        if (bytes > (1ull << 30) || heap_break_ + bytes > guest::kStackTop) {
          RaiseSignal(GuestSignal::kSegv, "brk: out of guest memory");
          return SyscallResult::Terminated();
        }
        memory_.MapRegion(heap_break_, bytes);
        heap_break_ += bytes;
      }
      return SyscallResult::Done(old_break);
    }
    case Sys::kInstret:
      return SyscallResult::Done(instret_);
    default:
      break;
  }
  if (syscall_ext_ != nullptr) {
    if (auto result = syscall_ext_->HandleSyscall(*this, num)) return *result;
  }
  RaiseSignal(GuestSignal::kSys,
              StrFormat("unknown syscall %llu", static_cast<unsigned long long>(num)));
  return SyscallResult::Terminated();
}

}  // namespace chaser::vm

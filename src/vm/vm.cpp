#include "vm/vm.h"

#include "common/error.h"
#include "common/log.h"
#include "common/strings.h"

namespace chaser::vm {

namespace {
/// Largest guest write() honoured; beyond this the buffer length is treated
/// as corrupt and the access faults (a corrupted length register would make
/// the real OS fail the copy the same way).
constexpr std::uint64_t kMaxWriteBytes = 1ull << 26;
}  // namespace

const char* GuestSignalName(GuestSignal s) {
  switch (s) {
    case GuestSignal::kNone: return "none";
    case GuestSignal::kSegv: return "SIGSEGV";
    case GuestSignal::kFpe: return "SIGFPE";
    case GuestSignal::kIll: return "SIGILL";
    case GuestSignal::kSys: return "SIGSYS";
    case GuestSignal::kAbort: return "SIGABRT";
    case GuestSignal::kKill: return "SIGKILL";
  }
  return "?";
}

const char* TerminationKindName(TerminationKind k) {
  switch (k) {
    case TerminationKind::kRunning: return "running";
    case TerminationKind::kExited: return "exited";
    case TerminationKind::kSignaled: return "os-exception";
    case TerminationKind::kAssertFailed: return "assertion-failed";
    case TerminationKind::kMpiError: return "mpi-error";
  }
  return "?";
}

Vm::Vm() : Vm(Config{}) {}

Vm::Vm(Config config) : config_(config) {
  tcg::Translator::Options opts;
  opts.max_tb_insns = config_.max_tb_insns;
  translator_.set_options(std::move(opts));
}

void Vm::SetInstrumentPredicate(InstrumentPredicate pred) {
  auto opts = translator_.options();
  opts.instrument = std::move(pred);
  translator_.set_options(std::move(opts));
}

void Vm::SetInstrumentAll(bool all) {
  auto opts = translator_.options();
  opts.instrument_all = all;
  translator_.set_options(std::move(opts));
}

void Vm::FlushTbCache() { tb_cache_.clear(); }

void Vm::SetInstretSample(std::uint64_t interval, InstretSampleHook hook) {
  sample_interval_ = interval;
  sample_hook_ = std::move(hook);
  next_sample_ = instret_ + (interval == 0 ? 0 : interval);
}

Pid Vm::StartProcess(const guest::Program& program) {
  // Copy the image: callers may hand us a temporary, and the TB cache /
  // execution engine reference the text for the process's whole lifetime.
  // (Self-assignment when re-starting the same image is harmless.)
  program_storage_ = program;
  program_ = &program_storage_;
  process_name_ = program_storage_.name;
  pid_ = next_pid_++;

  memory_ = GuestMemory();
  if (!program.data.empty()) {
    memory_.MapRegion(guest::kDataBase, program.data.size());
    memory_.WriteBytes(guest::kDataBase, program.data.data(), program.data.size());
  }
  if (program.bss_bytes > 0) {
    memory_.MapRegion(guest::kBssBase, program.bss_bytes);
  }
  memory_.MapRegion(guest::kStackTop - guest::kDefaultStackBytes,
                    guest::kDefaultStackBytes);
  heap_break_ = guest::kHeapBase;

  cpu_ = CpuState{};
  cpu_.pc = program.entry;
  cpu_.IntReg(guest::kSpReg) = guest::kStackTop - 64;

  taint_.Reset();
  temps_.clear();
  outputs_.clear();
  tainted_output_bytes_ = 0;

  run_state_ = RunState::kRunnable;
  termination_ = TerminationKind::kRunning;
  signal_ = GuestSignal::kNone;
  exit_code_ = 0;
  termination_message_.clear();
  instret_ = 0;
  next_sample_ = sample_interval_;

  FlushTbCache();

  if (on_create_) on_create_(*this, pid_, process_name_);
  return pid_;
}

RunState Vm::RunToCompletion() {
  while (run_state_ == RunState::kRunnable) {
    Run(1u << 22);
  }
  if (run_state_ == RunState::kBlocked) {
    throw ConfigError("RunToCompletion: process '" + process_name_ +
                      "' blocked with nothing to unblock it");
  }
  return run_state_;
}

const std::string& Vm::output(int fd) const {
  static const std::string kEmpty;
  const auto it = outputs_.find(fd);
  return it == outputs_.end() ? kEmpty : it->second;
}

void Vm::Unblock() {
  if (run_state_ == RunState::kBlocked) run_state_ = RunState::kRunnable;
}

void Vm::TerminateMpiError(std::string msg) {
  if (run_state_ == RunState::kTerminated) return;
  run_state_ = RunState::kTerminated;
  termination_ = TerminationKind::kMpiError;
  termination_message_ = std::move(msg);
  if (on_exit_) on_exit_(*this, pid_, process_name_);
}

void Vm::RaiseSignal(GuestSignal sig, std::string msg) {
  if (run_state_ == RunState::kTerminated) return;
  run_state_ = RunState::kTerminated;
  termination_ = TerminationKind::kSignaled;
  signal_ = sig;
  termination_message_ = std::move(msg);
  if (on_exit_) on_exit_(*this, pid_, process_name_);
}

void Vm::TerminateExit(std::int64_t code) {
  if (run_state_ == RunState::kTerminated) return;
  run_state_ = RunState::kTerminated;
  termination_ = TerminationKind::kExited;
  exit_code_ = code;
  if (on_exit_) on_exit_(*this, pid_, process_name_);
}

void Vm::TerminateAssert(std::int64_t check_id) {
  if (run_state_ == RunState::kTerminated) return;
  run_state_ = RunState::kTerminated;
  termination_ = TerminationKind::kAssertFailed;
  termination_message_ = StrFormat("program assertion %lld failed",
                                   static_cast<long long>(check_id));
  if (on_exit_) on_exit_(*this, pid_, process_name_);
}

SyscallResult Vm::HandleCoreSyscall(std::uint64_t num) {
  using guest::Sys;
  switch (static_cast<Sys>(num)) {
    case Sys::kExit:
      TerminateExit(static_cast<std::int64_t>(cpu_.IntReg(1)));
      return SyscallResult::Terminated();
    case Sys::kWrite: {
      const int fd = static_cast<int>(cpu_.IntReg(1));
      const GuestAddr buf = cpu_.IntReg(2);
      const std::uint64_t len = cpu_.IntReg(3);
      if (len > kMaxWriteBytes) {
        RaiseSignal(GuestSignal::kSegv,
                    StrFormat("write: implausible length %llu",
                              static_cast<unsigned long long>(len)));
        return SyscallResult::Terminated();
      }
      std::string bytes(len, '\0');
      if (!memory_.ReadBytes(buf, bytes.data(), len)) {
        RaiseSignal(GuestSignal::kSegv,
                    "write: buffer " + Hex64(buf) + " not mapped");
        return SyscallResult::Terminated();
      }
      const std::uint64_t stream_base = outputs_[fd].size();
      outputs_[fd] += bytes;
      // Taint-through-I/O: count corrupted bytes leaving the process.
      if (taint_.enabled() && taint_.Active()) {
        for (std::uint64_t i = 0; i < len; ++i) {
          const auto pa = memory_.Translate(buf + i);
          if (!pa) continue;
          const std::uint8_t mask = taint_.GetMemTaintByte(*pa);
          if (mask == 0) continue;
          ++tainted_output_bytes_;
          if (tainted_output_hook_) {
            tainted_output_hook_(
                *this, TaintedOutputByte{
                           .fd = fd,
                           .stream_off = stream_base + i,
                           .vaddr = buf + i,
                           .paddr = *pa,
                           .value = static_cast<std::uint8_t>(bytes[i]),
                           .taint = mask});
          }
        }
      }
      return SyscallResult::Done(len);
    }
    case Sys::kAbort:
      RaiseSignal(GuestSignal::kAbort, "guest called abort()");
      return SyscallResult::Terminated();
    case Sys::kAssertFail:
      TerminateAssert(static_cast<std::int64_t>(cpu_.IntReg(1)));
      return SyscallResult::Terminated();
    case Sys::kBrk: {
      const std::uint64_t bytes = cpu_.IntReg(1);
      const GuestAddr old_break = heap_break_;
      if (bytes > 0) {
        if (bytes > (1ull << 30) || heap_break_ + bytes > guest::kStackTop) {
          RaiseSignal(GuestSignal::kSegv, "brk: out of guest memory");
          return SyscallResult::Terminated();
        }
        memory_.MapRegion(heap_break_, bytes);
        heap_break_ += bytes;
      }
      return SyscallResult::Done(old_break);
    }
    case Sys::kInstret:
      return SyscallResult::Done(instret_);
    default:
      break;
  }
  if (syscall_ext_ != nullptr) {
    if (auto result = syscall_ext_->HandleSyscall(*this, num)) return *result;
  }
  RaiseSignal(GuestSignal::kSys,
              StrFormat("unknown syscall %llu", static_cast<unsigned long long>(num)));
  return SyscallResult::Terminated();
}

}  // namespace chaser::vm

// Paged guest memory with a soft-MMU (QEMU's softmmu equivalent).
//
// Guest virtual pages map to physical frames allocated on demand by the
// loader / brk. Accesses to unmapped pages produce a page fault that the
// execution engine turns into the guest-visible SIGSEGV analogue — this is
// how injected pointer corruptions become "OS exception" terminations.
// Physical addresses are exposed because the taint shadow and the paper's
// propagation log are keyed by them.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace chaser::vm {

inline constexpr std::uint64_t kPageBits = 12;
inline constexpr std::uint64_t kPageSize = 1ull << kPageBits;
inline constexpr std::uint64_t kPageMask = kPageSize - 1;

class GuestMemory {
 public:
  GuestMemory() = default;

  // Non-copyable (owns frames), movable.
  GuestMemory(const GuestMemory&) = delete;
  GuestMemory& operator=(const GuestMemory&) = delete;
  GuestMemory(GuestMemory&&) = default;
  GuestMemory& operator=(GuestMemory&&) = default;

  /// Map all pages covering [vaddr, vaddr + bytes), zero-filled.
  /// Already-mapped pages are left untouched.
  void MapRegion(GuestAddr vaddr, std::uint64_t bytes);

  /// True if the byte at `vaddr` is mapped.
  bool IsMapped(GuestAddr vaddr) const;

  /// Virtual -> physical translation; nullopt on unmapped page.
  std::optional<PhysAddr> Translate(GuestAddr vaddr) const;

  /// Load `size` (1/2/4/8) bytes little-endian. Returns nullopt on fault
  /// (any byte unmapped); `paddr_out` receives the physical address of the
  /// first byte on success.
  std::optional<std::uint64_t> Load(GuestAddr vaddr, std::uint32_t size,
                                    PhysAddr* paddr_out);

  /// Store the low `size` bytes of `value`. False on fault.
  bool Store(GuestAddr vaddr, std::uint32_t size, std::uint64_t value,
             PhysAddr* paddr_out);

  /// Bulk copy out of guest memory. False if any byte is unmapped.
  bool ReadBytes(GuestAddr vaddr, void* dst, std::uint64_t n) const;

  /// Bulk copy into guest memory. False if any byte is unmapped.
  bool WriteBytes(GuestAddr vaddr, const void* src, std::uint64_t n);

  std::uint64_t mapped_pages() const { return frames_.size(); }

 private:
  std::uint8_t* FramePtr(PhysAddr paddr);
  const std::uint8_t* FramePtr(PhysAddr paddr) const;

  // vpage index -> frame index. paddr = frame_index * kPageSize + offset.
  std::unordered_map<std::uint64_t, std::uint64_t> page_table_;
  std::vector<std::unique_ptr<std::uint8_t[]>> frames_;
};

}  // namespace chaser::vm

// Paged guest memory with a soft-MMU (QEMU's softmmu equivalent).
//
// Guest virtual pages map to physical frames allocated on demand by the
// loader / brk. Accesses to unmapped pages produce a page fault that the
// execution engine turns into the guest-visible SIGSEGV analogue — this is
// how injected pointer corruptions become "OS exception" terminations.
// Physical addresses are exposed because the taint shadow and the paper's
// propagation log are keyed by them.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.h"

namespace chaser::vm {

inline constexpr std::uint64_t kPageBits = 12;
inline constexpr std::uint64_t kPageSize = 1ull << kPageBits;
inline constexpr std::uint64_t kPageMask = kPageSize - 1;

class GuestMemory {
 public:
  GuestMemory() = default;

  // Non-copyable (owns frames), movable.
  GuestMemory(const GuestMemory&) = delete;
  GuestMemory& operator=(const GuestMemory&) = delete;
  GuestMemory(GuestMemory&&) = default;
  GuestMemory& operator=(GuestMemory&&) = default;

  /// Map all pages covering [vaddr, vaddr + bytes), zero-filled.
  /// Already-mapped pages are left untouched.
  void MapRegion(GuestAddr vaddr, std::uint64_t bytes);

  /// True if the byte at `vaddr` is mapped.
  bool IsMapped(GuestAddr vaddr) const;

  /// Virtual -> physical translation; nullopt on unmapped page.
  ///
  /// Hot path: a small direct-mapped software TLB (QEMU's victim-TLB shape,
  /// minus the victim) sits in front of the radix page table. A hit costs
  /// one compare; misses fill the slot. The TLB caches only positive
  /// entries, so fault behaviour is identical with it on or off.
  std::optional<PhysAddr> Translate(GuestAddr vaddr) const {
    const std::uint64_t vpage = vaddr >> kPageBits;
    if (tlb_enabled_) {
      const TlbEntry& e = tlb_[vpage & (kTlbEntries - 1)];
      if (e.vpage == vpage) {
        ++tlb_hits_;
        return e.frame_base + (vaddr & kPageMask);
      }
    }
    return TranslateSlow(vaddr, vpage);
  }

  /// Load `size` (1/2/4/8) bytes little-endian. Returns nullopt on fault
  /// (any byte unmapped); `paddr_out` receives the physical address of the
  /// first byte on success.
  ///
  /// Deliberately out of line: an earlier version inlined a fused
  /// TLB-probe + memcpy fast path into every interpreter load/store handler,
  /// and measurement showed the code bloat cost more than the saved call on
  /// every workload once the radix page table made TranslateSlow two array
  /// loads (lud campaigns ran ~15% slower with the fused path).
  std::optional<std::uint64_t> Load(GuestAddr vaddr, std::uint32_t size,
                                    PhysAddr* paddr_out);

  /// Store the low `size` bytes of `value`. False on fault; a faulting
  /// store writes nothing (no partial stores).
  bool Store(GuestAddr vaddr, std::uint32_t size, std::uint64_t value,
             PhysAddr* paddr_out);

  /// Bulk copy out of guest memory. False if any byte is unmapped.
  bool ReadBytes(GuestAddr vaddr, void* dst, std::uint64_t n) const;

  /// Bulk copy into guest memory. False if any byte is unmapped.
  bool WriteBytes(GuestAddr vaddr, const void* src, std::uint64_t n);

  std::uint64_t mapped_pages() const { return frames_.size(); }

  /// Enable/disable the flat TLB (ablation + determinism checks). Disabling
  /// also flushes, so re-enabling never sees stale entries.
  void set_tlb_enabled(bool enabled) {
    tlb_enabled_ = enabled;
    FlushTlb();
  }
  bool tlb_enabled() const { return tlb_enabled_; }

  /// Drop every cached translation (called on any mapping change).
  void FlushTlb() { tlb_.fill(TlbEntry{}); }

  std::uint64_t tlb_hits() const { return tlb_hits_; }
  std::uint64_t tlb_misses() const { return tlb_misses_; }

 private:
  struct TlbEntry {
    std::uint64_t vpage = ~0ull;  // ~0 never matches: vaddrs are < 2^52 pages
    PhysAddr frame_base = 0;      // paddr of the frame's first byte
  };
  // Power of two. 1024 slots cover lud-sized working sets (a few hundred
  // guest pages) without conflict thrash; at 16 B/entry the table still sits
  // comfortably in L2.
  static constexpr std::size_t kTlbEntries = 1024;

  std::optional<PhysAddr> TranslateSlow(GuestAddr vaddr,
                                        std::uint64_t vpage) const;

  std::uint8_t* FramePtr(PhysAddr paddr);
  const std::uint8_t* FramePtr(PhysAddr paddr) const;

  // vpage index -> frame index, as a two-level direct-mapped table (a radix
  // page table, not a hash): leaf arrays of 512 entries allocated on demand,
  // indexed by a growable directory. Guest addresses top out just above
  // kStackTop (~2^19 pages), so the directory stays tiny while lookups and
  // inserts are two array indexations — the former unordered_map here was a
  // top campaign-profile entry (trial engines rebuild guest memory
  // thousands of times, and every TLB miss lands here).
  // paddr = frame_index * kPageSize + offset.
  static constexpr std::uint64_t kLeafBits = 9;  // 512 pages = 2 MiB per leaf
  static constexpr std::uint64_t kLeafPages = 1ull << kLeafBits;
  static constexpr std::uint32_t kNoFrame = ~std::uint32_t{0};
  struct Leaf {
    std::array<std::uint32_t, kLeafPages> frames;
  };
  /// Frame index of `vpage`, or kNoFrame when unmapped.
  std::uint32_t FrameIndex(std::uint64_t vpage) const {
    const std::uint64_t d = vpage >> kLeafBits;
    if (d >= dir_.size() || dir_[d] == nullptr) return kNoFrame;
    return dir_[d]->frames[vpage & (kLeafPages - 1)];
  }

  std::vector<std::unique_ptr<Leaf>> dir_;
  std::vector<std::uint8_t*> frames_;
  std::vector<std::unique_ptr<std::uint8_t[]>> slabs_;

  // Direct-mapped translation cache. `mutable` because Translate is
  // semantically const; the TLB is pure memoisation.
  mutable std::array<TlbEntry, kTlbEntries> tlb_{};
  bool tlb_enabled_ = true;
  mutable std::uint64_t tlb_hits_ = 0;
  mutable std::uint64_t tlb_misses_ = 0;
};

}  // namespace chaser::vm

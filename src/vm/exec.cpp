// The TCG execution engine: QEMU's cpu_exec loop.
//
// Looks up (or translates) the TB for the current pc, then interprets its
// TCG ops against the CPU env slots and per-TB temporaries. Taint rules are
// applied op-by-op (DECAF's enforcement point); the fault-injection helper
// and the syscall helper are dispatched from kCallHelper ops.
#include <cmath>

#include "common/error.h"
#include "common/strings.h"
#include "vm/vm.h"

namespace chaser::vm {

namespace {

std::uint64_t SignExtend(std::uint64_t v, std::uint32_t size) {
  switch (size) {
    case 1: return static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int8_t>(v)));
    case 2: return static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int16_t>(v)));
    case 4: return static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
    default: return v;
  }
}

std::uint64_t DoubleToI64(double d) {
  // x86 CVTTSD2SI semantics: NaN and out-of-range convert to the
  // "integer indefinite" value.
  constexpr std::uint64_t kIndefinite = 0x8000000000000000ull;
  if (std::isnan(d) || d >= 9.2233720368547758e18 || d < -9.2233720368547758e18) {
    return kIndefinite;
  }
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(d));
}

}  // namespace

tcg::TranslationBlock& Vm::LookupTb(std::uint64_t pc) {
  const auto it = tb_cache_.find(pc);
  if (it != tb_cache_.end()) return *it->second;
  auto tb = std::make_unique<tcg::TranslationBlock>(translator_.Translate(*program_, pc));
  if (config_.optimize_tbs) {
    const tcg::OptimizerStats stats = tcg::Optimize(tb.get());
    optimizer_stats_.movs_forwarded += stats.movs_forwarded;
    optimizer_stats_.dead_ops_removed += stats.dead_ops_removed;
  }
  ++tb_translations_;
  auto [ins, ok] = tb_cache_.emplace(pc, std::move(tb));
  (void)ok;
  return *ins->second;
}

RunState Vm::Run(std::uint64_t max_insns) {
  if (program_ == nullptr) throw ConfigError("Run: no process started");
  std::uint64_t budget = max_insns;
  while (run_state_ == RunState::kRunnable && budget > 0) {
    if (cpu_.pc >= program_->text.size()) {
      RaiseSignal(GuestSignal::kSegv,
                  "jump outside text: pc #" +
                      StrFormat("%llu", static_cast<unsigned long long>(cpu_.pc)));
      break;
    }
    const tcg::TranslationBlock& tb = LookupTb(cpu_.pc);
    ++tb_executions_;
    ExecuteTb(tb, &budget);
    if (tb_flush_pending_) {
      tb_flush_pending_ = false;
      FlushTbCache();
    }
  }
  return run_state_;
}

void Vm::HandleSyscallHelper(std::uint64_t pc) {
  const std::uint64_t num = cpu_.IntReg(7);
  const SyscallResult result = HandleCoreSyscall(num);
  switch (result.outcome) {
    case SyscallResult::Outcome::kDone:
      cpu_.IntReg(0) = result.retval;
      // The syscall result comes from the host/runtime: clean unless the
      // extension explicitly tainted the destination buffer.
      taint_.SetValTaint(tcg::EnvInt(0), 0);
      break;
    case SyscallResult::Outcome::kBlock:
      run_state_ = RunState::kBlocked;
      cpu_.pc = pc;      // re-execute the syscall once unblocked
      --instret_;        // the retried instruction is not double-counted
      break;
    case SyscallResult::Outcome::kTerminated:
      break;
  }
}

void Vm::ExecuteTb(const tcg::TranslationBlock& tb, std::uint64_t* budget) {
  using tcg::TcgOpc;
  if (temps_.size() < tb.num_temps) temps_.resize(tb.num_temps);
  // Elastic taint (DECAF++): skip the whole taint path while no taint
  // exists anywhere — skipping is exact because every slot/byte is already
  // clean. Helpers (the injector, MPI receive) can introduce taint, so the
  // latch is refreshed after every kCallHelper.
  const bool taint_enabled = taint_.enabled();
  bool taint_on = taint_enabled && taint_.Active();
  if (taint_on) taint_.BeginTb(tb.num_temps);

  auto get = [&](tcg::ValId v) -> std::uint64_t {
    return v < tcg::kNumEnvSlots ? cpu_.env[v] : temps_[v - tcg::kTempBase];
  };
  auto put = [&](tcg::ValId v, std::uint64_t x) {
    if (v < tcg::kNumEnvSlots) {
      cpu_.env[v] = x;
    } else {
      temps_[v - tcg::kTempBase] = x;
    }
  };
  auto fp = [&](tcg::ValId v) { return std::bit_cast<double>(get(v)); };
  auto propagate2 = [&](const tcg::TcgOp& op, std::uint64_t a, std::uint64_t bv) {
    if (!taint_on) return;
    const std::uint64_t ta = taint_.GetValTaint(op.src1);
    const std::uint64_t tb = taint_.GetValTaint(op.src2);
    if ((ta | tb) == 0) {
      taint_.ClearValTaint(op.dst);  // clean result; avoid the full Set path
      return;
    }
    taint_.SetValTaint(op.dst, taint_.PropagateOp(op.opc, ta, tb, a, bv));
  };
  auto propagate1 = [&](const tcg::TcgOp& op, std::uint64_t a) {
    if (!taint_on) return;
    const std::uint64_t ta = taint_.GetValTaint(op.src1);
    if (ta == 0) {
      taint_.ClearValTaint(op.dst);
      return;
    }
    taint_.SetValTaint(op.dst, taint_.PropagateOp(op.opc, ta, 0, a, 0));
  };

  for (const tcg::TcgOp& op : tb.ops) {
    if (run_state_ != RunState::kRunnable) return;
    switch (op.opc) {
      case TcgOpc::kInsnStart: {
        ++instret_;
        if (*budget > 0) --*budget;
        if (instret_ > config_.max_instructions) {
          RaiseSignal(GuestSignal::kKill,
                      "watchdog: instruction budget exhausted (hung run)");
          return;
        }
        if (sample_interval_ != 0 && instret_ >= next_sample_) {
          next_sample_ += sample_interval_;
          if (sample_hook_) sample_hook_(*this, instret_);
        }
        if (insn_trace_hook_ && taint_on) insn_trace_hook_(*this, op.imm);
        break;
      }
      case TcgOpc::kMovI:
        put(op.dst, op.imm);
        if (taint_on) taint_.ClearValTaint(op.dst);
        break;
      case TcgOpc::kMov:
        put(op.dst, get(op.src1));
        if (taint_on) taint_.SetValTaint(op.dst, taint_.GetValTaint(op.src1));
        break;

      case TcgOpc::kAdd: {
        const std::uint64_t a = get(op.src1), bv = get(op.src2);
        put(op.dst, a + bv);
        propagate2(op, a, bv);
        break;
      }
      case TcgOpc::kSub: {
        const std::uint64_t a = get(op.src1), bv = get(op.src2);
        put(op.dst, a - bv);
        propagate2(op, a, bv);
        break;
      }
      case TcgOpc::kMul: {
        const std::uint64_t a = get(op.src1), bv = get(op.src2);
        put(op.dst, a * bv);
        propagate2(op, a, bv);
        break;
      }
      case TcgOpc::kDivS:
      case TcgOpc::kRemS: {
        const auto a = static_cast<std::int64_t>(get(op.src1));
        const auto bv = static_cast<std::int64_t>(get(op.src2));
        if (bv == 0) {
          RaiseSignal(GuestSignal::kFpe, "integer division by zero");
          return;
        }
        if (a == INT64_MIN && bv == -1) {
          RaiseSignal(GuestSignal::kFpe, "integer division overflow");
          return;
        }
        put(op.dst, static_cast<std::uint64_t>(op.opc == TcgOpc::kDivS ? a / bv : a % bv));
        propagate2(op, static_cast<std::uint64_t>(a), static_cast<std::uint64_t>(bv));
        break;
      }
      case TcgOpc::kDivU:
      case TcgOpc::kRemU: {
        const std::uint64_t a = get(op.src1), bv = get(op.src2);
        if (bv == 0) {
          RaiseSignal(GuestSignal::kFpe, "integer division by zero");
          return;
        }
        put(op.dst, op.opc == TcgOpc::kDivU ? a / bv : a % bv);
        propagate2(op, a, bv);
        break;
      }
      case TcgOpc::kAnd: {
        const std::uint64_t a = get(op.src1), bv = get(op.src2);
        put(op.dst, a & bv);
        propagate2(op, a, bv);
        break;
      }
      case TcgOpc::kOr: {
        const std::uint64_t a = get(op.src1), bv = get(op.src2);
        put(op.dst, a | bv);
        propagate2(op, a, bv);
        break;
      }
      case TcgOpc::kXor: {
        const std::uint64_t a = get(op.src1), bv = get(op.src2);
        put(op.dst, a ^ bv);
        propagate2(op, a, bv);
        break;
      }
      case TcgOpc::kShl: {
        const std::uint64_t a = get(op.src1), bv = get(op.src2);
        put(op.dst, a << (bv & 63u));
        propagate2(op, a, bv);
        break;
      }
      case TcgOpc::kShr: {
        const std::uint64_t a = get(op.src1), bv = get(op.src2);
        put(op.dst, a >> (bv & 63u));
        propagate2(op, a, bv);
        break;
      }
      case TcgOpc::kSar: {
        const std::uint64_t a = get(op.src1), bv = get(op.src2);
        put(op.dst,
            static_cast<std::uint64_t>(static_cast<std::int64_t>(a) >>
                                       (bv & 63u)));
        propagate2(op, a, bv);
        break;
      }
      case TcgOpc::kNot: {
        const std::uint64_t a = get(op.src1);
        put(op.dst, ~a);
        propagate1(op, a);
        break;
      }
      case TcgOpc::kNeg: {
        const std::uint64_t a = get(op.src1);
        put(op.dst, 0 - a);
        propagate1(op, a);
        break;
      }

      case TcgOpc::kQemuLd: {
        const GuestAddr vaddr = get(op.src1);
        const auto size = static_cast<std::uint32_t>(op.size);
        PhysAddr paddr = 0;
        const auto loaded = memory_.Load(vaddr, size, &paddr);
        if (!loaded) {
          RaiseSignal(GuestSignal::kSegv, "load fault at " + Hex64(vaddr));
          return;
        }
        const std::uint64_t value = op.sign ? SignExtend(*loaded, size) : *loaded;
        put(op.dst, value);
        if (taint_on) {
          const std::uint64_t t =
              taint_.OnLoad(op.guest_pc, vaddr, paddr, size, op.sign,
                            taint_.GetValTaint(op.src1), *loaded);
          taint_.SetValTaint(op.dst, t);
        }
        break;
      }
      case TcgOpc::kQemuSt: {
        const GuestAddr vaddr = get(op.src1);
        const std::uint64_t value = get(op.src2);
        const auto size = static_cast<std::uint32_t>(op.size);
        PhysAddr paddr = 0;
        if (!memory_.Store(vaddr, size, value, &paddr)) {
          RaiseSignal(GuestSignal::kSegv, "store fault at " + Hex64(vaddr));
          return;
        }
        if (taint_on) {
          taint_.OnStore(op.guest_pc, vaddr, paddr, size,
                         taint_.GetValTaint(op.src1), value,
                         taint_.GetValTaint(op.src2));
        }
        break;
      }

      case TcgOpc::kFAdd: {
        put(op.dst, std::bit_cast<std::uint64_t>(fp(op.src1) + fp(op.src2)));
        propagate2(op, get(op.src1), get(op.src2));
        break;
      }
      case TcgOpc::kFSub: {
        put(op.dst, std::bit_cast<std::uint64_t>(fp(op.src1) - fp(op.src2)));
        propagate2(op, get(op.src1), get(op.src2));
        break;
      }
      case TcgOpc::kFMul: {
        put(op.dst, std::bit_cast<std::uint64_t>(fp(op.src1) * fp(op.src2)));
        propagate2(op, get(op.src1), get(op.src2));
        break;
      }
      case TcgOpc::kFDiv: {
        put(op.dst, std::bit_cast<std::uint64_t>(fp(op.src1) / fp(op.src2)));
        propagate2(op, get(op.src1), get(op.src2));
        break;
      }
      case TcgOpc::kFMin: {
        put(op.dst, std::bit_cast<std::uint64_t>(std::fmin(fp(op.src1), fp(op.src2))));
        propagate2(op, get(op.src1), get(op.src2));
        break;
      }
      case TcgOpc::kFMax: {
        put(op.dst, std::bit_cast<std::uint64_t>(std::fmax(fp(op.src1), fp(op.src2))));
        propagate2(op, get(op.src1), get(op.src2));
        break;
      }
      case TcgOpc::kFNeg: {
        put(op.dst, std::bit_cast<std::uint64_t>(-fp(op.src1)));
        propagate1(op, get(op.src1));
        break;
      }
      case TcgOpc::kFAbs: {
        put(op.dst, std::bit_cast<std::uint64_t>(std::fabs(fp(op.src1))));
        propagate1(op, get(op.src1));
        break;
      }
      case TcgOpc::kFSqrt: {
        put(op.dst, std::bit_cast<std::uint64_t>(std::sqrt(fp(op.src1))));
        propagate1(op, get(op.src1));
        break;
      }
      case TcgOpc::kCvtIF: {
        put(op.dst, std::bit_cast<std::uint64_t>(
                        static_cast<double>(static_cast<std::int64_t>(get(op.src1)))));
        propagate1(op, get(op.src1));
        break;
      }
      case TcgOpc::kCvtFI: {
        put(op.dst, DoubleToI64(fp(op.src1)));
        propagate1(op, get(op.src1));
        break;
      }

      case TcgOpc::kSetFlags: {
        const std::uint64_t a = get(op.src1), bv = get(op.src2);
        cpu_.env[tcg::kEnvFlags] = tcg::ComputeFlags(a, bv);
        propagate2(op, a, bv);
        break;
      }
      case TcgOpc::kSetFlagsF: {
        cpu_.env[tcg::kEnvFlags] = tcg::ComputeFlagsF(fp(op.src1), fp(op.src2));
        propagate2(op, get(op.src1), get(op.src2));
        break;
      }

      case TcgOpc::kCallHelper:
        switch (op.helper) {
          case tcg::HelperId::kSyscall:
            HandleSyscallHelper(op.imm);
            if (run_state_ != RunState::kRunnable) return;
            break;
          case tcg::HelperId::kFaultInjector:
            if (injector_hook_) {
              // Copy first: the hook may detach itself (fi_clean_cb), and
              // reassigning the member while it executes would destroy the
              // callable under our feet.
              const InjectorHook hook = injector_hook_;
              hook(*this, op.imm);
            }
            if (run_state_ != RunState::kRunnable) return;
            break;
          case tcg::HelperId::kHaltTrap:
            RaiseSignal(GuestSignal::kIll, "halt instruction executed");
            return;
        }
        // A helper may have created (injector, MPI receive) or consumed
        // taint: refresh the elastic latch.
        if (taint_enabled) {
          const bool now_active = taint_.Active();
          if (now_active && !taint_on) taint_.BeginTb(tb.num_temps);
          taint_on = now_active;
        }
        break;

      case TcgOpc::kGotoTb:
        cpu_.pc = op.imm;
        return;
      case TcgOpc::kBrCond:
        cpu_.pc = tcg::CondHolds(op.cond, cpu_.env[tcg::kEnvFlags]) ? op.imm : op.imm2;
        return;
      case TcgOpc::kExitTb:
        cpu_.pc = get(op.src1);
        return;
    }
  }
  // A TB always ends in a terminator; reaching here means the terminator
  // raised a signal earlier in the loop.
}

}  // namespace chaser::vm

// The TCG execution engine: QEMU's cpu_exec loop.
//
// Looks up (or translates) the TB for the current pc, then interprets its
// TCG ops against the CPU env slots and per-TB temporaries. Taint rules are
// applied op-by-op (DECAF's enforcement point); the fault-injection helper
// and the syscall helper are dispatched from kCallHelper ops.
//
// Hot-path structure (this file + exec_body.inc):
//  * Vm::Run chains TBs goto_tb-style: each executed TB reports which static
//    exit it took, and the run loop patches a direct CachedTb* so the next
//    iteration skips the hash lookup entirely;
//  * Vm::LookupTb consults the optional process-wide SharedTbCache before
//    translating, so a whole campaign translates each TB once;
//  * the interpreter body lives in exec_body.inc and is compiled twice —
//    portable switch and (optionally) computed-goto threaded dispatch.
#include <cmath>

#include "common/error.h"
#include "common/strings.h"
#include "obs/profiler.h"
#include "tcg/shared_cache.h"
#include "vm/vm.h"

// Computed goto needs the GNU &&label extension; the CMake option only
// requests it, the compiler check decides.
#if defined(CHASER_THREADED_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
#define CHASER_HAVE_THREADED_DISPATCH 1
#else
#define CHASER_HAVE_THREADED_DISPATCH 0
#endif

namespace chaser::vm {

namespace {

std::uint64_t SignExtend(std::uint64_t v, std::uint32_t size) {
  switch (size) {
    case 1: return static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int8_t>(v)));
    case 2: return static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int16_t>(v)));
    case 4: return static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
    default: return v;
  }
}

std::uint64_t DoubleToI64(double d) {
  // x86 CVTTSD2SI semantics: NaN and out-of-range convert to the
  // "integer indefinite" value.
  constexpr std::uint64_t kIndefinite = 0x8000000000000000ull;
  if (std::isnan(d) || d >= 9.2233720368547758e18 || d < -9.2233720368547758e18) {
    return kIndefinite;
  }
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(d));
}

}  // namespace

Vm::CachedTb& Vm::LookupTb(std::uint64_t pc) {
  const auto it = tb_cache_.find(pc);
  if (it != tb_cache_.end()) return it->second;

  // Local index cap (QEMU code_gen_buffer overflow semantics): drop
  // everything and start over rather than evicting piecemeal.
  if (config_.max_cached_tbs > 0 && tb_cache_.size() >= config_.max_cached_tbs) {
    tb_evictions_ += tb_cache_.size();
    FlushTbCache();
  }

  CachedTb entry;
  const std::uint64_t variant = SharedVariantKey();
  if (variant != 0) {
    const tcg::SharedTbCache::Key key{program_hash_, variant, pc};
    if (const tcg::TranslationBlock* shared = config_.shared_cache->Lookup(key)) {
      ++shared_reuses_;
      ++epoch_cur_.shared_reuses;
      entry.tb = shared;
    } else {
      const obs::ScopedPhase obs_scope(obs::Phase::kTranslate);
      tcg::TranslationBlock tb = translator_.Translate(*program_, pc);
      if (config_.optimize_tbs) {
        const tcg::OptimizerStats stats = tcg::Optimize(&tb);
        optimizer_stats_.movs_forwarded += stats.movs_forwarded;
        optimizer_stats_.dead_ops_removed += stats.dead_ops_removed;
        optimizer_stats_.imms_fused += stats.imms_fused;
        optimizer_stats_.addrs_fused += stats.addrs_fused;
        optimizer_stats_.insn_starts_folded += stats.insn_starts_folded;
        epoch_cur_.optimizer.movs_forwarded += stats.movs_forwarded;
        epoch_cur_.optimizer.dead_ops_removed += stats.dead_ops_removed;
        epoch_cur_.optimizer.imms_fused += stats.imms_fused;
        epoch_cur_.optimizer.addrs_fused += stats.addrs_fused;
        epoch_cur_.optimizer.insn_starts_folded += stats.insn_starts_folded;
      }
      ++tb_translations_;
      ++epoch_cur_.translations;
      // Insert returns the canonical TB — a racing worker's copy if it
      // published the same key first (our duplicate is then discarded).
      entry.tb = config_.shared_cache->Insert(key, std::move(tb));
    }
  } else {
    const obs::ScopedPhase obs_scope(obs::Phase::kTranslate);
    auto tb = std::make_unique<tcg::TranslationBlock>(
        translator_.Translate(*program_, pc));
    if (config_.optimize_tbs) {
      const tcg::OptimizerStats stats = tcg::Optimize(tb.get());
        optimizer_stats_.movs_forwarded += stats.movs_forwarded;
      optimizer_stats_.dead_ops_removed += stats.dead_ops_removed;
      optimizer_stats_.imms_fused += stats.imms_fused;
      optimizer_stats_.addrs_fused += stats.addrs_fused;
      optimizer_stats_.insn_starts_folded += stats.insn_starts_folded;
      epoch_cur_.optimizer.movs_forwarded += stats.movs_forwarded;
      epoch_cur_.optimizer.dead_ops_removed += stats.dead_ops_removed;
      epoch_cur_.optimizer.imms_fused += stats.imms_fused;
      epoch_cur_.optimizer.addrs_fused += stats.addrs_fused;
      epoch_cur_.optimizer.insn_starts_folded += stats.insn_starts_folded;
    }
    ++tb_translations_;
    ++epoch_cur_.translations;
    entry.tb = tb.get();
    entry.owned = std::move(tb);
  }
  auto [ins, ok] = tb_cache_.emplace(pc, std::move(entry));
  (void)ok;
  return ins->second;
}

RunState Vm::Run(std::uint64_t max_insns) {
  if (program_ == nullptr) throw ConfigError("Run: no process started");
  std::uint64_t budget = max_insns;
  // goto_tb chaining state: the TB we just executed and the static exit slot
  // it took. Chains are only followed/patched within one Run call — a
  // signal, block, budget exhaustion, or flush drops prev (chain broken).
  CachedTb* prev = nullptr;
  int slot = -1;
  while (run_state_ == RunState::kRunnable && budget > 0) {
    CachedTb* cur = (prev != nullptr && slot >= 0) ? prev->chain[slot] : nullptr;
    if (cur != nullptr) {
      // Chained: pc already equals the slot's static target, which was
      // bounds-checked when the chain was patched.
      ++tb_chain_hits_;
    } else {
      if (cpu_.pc >= program_->text.size()) {
        RaiseSignal(GuestSignal::kSegv,
                    "jump outside text: pc #" +
                        StrFormat("%llu", static_cast<unsigned long long>(cpu_.pc)));
        break;
      }
      const std::uint64_t fc_lookup = flush_count_;
      cur = &LookupTb(cpu_.pc);
      // A cap-overflow flush inside LookupTb invalidated prev — don't patch
      // through a dangling pointer.
      if (config_.chain_tbs && prev != nullptr && slot >= 0 &&
          flush_count_ == fc_lookup) {
        prev->chain[slot] = cur;
      }
    }
    ++tb_executions_;
    slot = -1;
    const std::uint64_t fc_exec = flush_count_;
    ExecuteTb(*cur->tb, &budget, &slot);
    // A helper-triggered flush (RequestTbFlush fires below, but StartProcess
    // from a hook flushes immediately) also invalidates cur.
    prev = (flush_count_ == fc_exec) ? cur : nullptr;
    if (tb_flush_pending_) {
      tb_flush_pending_ = false;
      FlushTbCache();
      prev = nullptr;
    }
  }
  return run_state_;
}

void Vm::HandleSyscallHelper(std::uint64_t pc) {
  const std::uint64_t num = cpu_.IntReg(7);
  const SyscallResult result = HandleCoreSyscall(num);
  switch (result.outcome) {
    case SyscallResult::Outcome::kDone:
      cpu_.IntReg(0) = result.retval;
      // The syscall result comes from the host/runtime: clean unless the
      // extension explicitly tainted the destination buffer.
      taint_.SetValTaint(tcg::EnvInt(0), 0);
      break;
    case SyscallResult::Outcome::kBlock:
      run_state_ = RunState::kBlocked;
      cpu_.pc = pc;      // re-execute the syscall once unblocked
      --instret_;        // the retried instruction is not double-counted
      break;
    case SyscallResult::Outcome::kTerminated:
      break;
  }
}

bool Vm::ThreadedDispatchAvailable() {
  return CHASER_HAVE_THREADED_DISPATCH != 0;
}

void Vm::ExecuteTb(const tcg::TranslationBlock& tb, std::uint64_t* budget,
                   int* exit_slot) {
#if CHASER_HAVE_THREADED_DISPATCH
  if (config_.dispatch != Dispatch::kSwitch) {
    ExecuteTbThreaded(tb, budget, exit_slot);
    return;
  }
#endif
  ExecuteTbSwitch(tb, budget, exit_slot);
}

// Portable engine: for/switch.
#define VM_DISPATCH_NAME ExecuteTbSwitch
#define VM_USE_COMPUTED_GOTO 0
#include "vm/exec_body.inc"
#undef VM_DISPATCH_NAME
#undef VM_USE_COMPUTED_GOTO

#if CHASER_HAVE_THREADED_DISPATCH
// Threaded engine: computed goto, one indirect jump per op.
#define VM_DISPATCH_NAME ExecuteTbThreaded
#define VM_USE_COMPUTED_GOTO 1
#include "vm/exec_body.inc"
#undef VM_DISPATCH_NAME
#undef VM_USE_COMPUTED_GOTO
#else
// Not compiled in: keep the symbol (vm.h declares it unconditionally) and
// fall back to the switch engine, which is bit-identical by construction.
void Vm::ExecuteTbThreaded(const tcg::TranslationBlock& tb,
                           std::uint64_t* budget, int* exit_slot) {
  ExecuteTbSwitch(tb, budget, exit_slot);
}
#endif

}  // namespace chaser::vm

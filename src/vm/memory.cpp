#include "vm/memory.h"

#include <cstring>

namespace chaser::vm {

void GuestMemory::MapRegion(GuestAddr vaddr, std::uint64_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t first = vaddr >> kPageBits;
  const std::uint64_t last = (vaddr + bytes - 1) >> kPageBits;
  // Grow the directory and allocate leaves up front so the insert loop below
  // is pure array stores.
  const std::uint64_t last_leaf = last >> kLeafBits;
  if (last_leaf >= dir_.size()) dir_.resize(last_leaf + 1);
  std::uint64_t fresh = 0;
  for (std::uint64_t d = first >> kLeafBits; d <= last_leaf; ++d) {
    if (dir_[d] == nullptr) {
      dir_[d] = std::make_unique<Leaf>();
      dir_[d]->frames.fill(kNoFrame);
    }
  }
  for (std::uint64_t vp = first; vp <= last; ++vp) {
    fresh += FrameIndex(vp) == kNoFrame ? 1 : 0;
  }
  if (fresh > 0) {
    // One zero-initialised slab for every new page in the region; per-page
    // heap allocation here used to be a top entry in campaign profiles.
    auto slab = std::make_unique<std::uint8_t[]>(fresh * kPageSize);
    std::uint8_t* next = slab.get();
    slabs_.push_back(std::move(slab));
    frames_.reserve(frames_.size() + static_cast<std::size_t>(fresh));
    for (std::uint64_t vp = first; vp <= last; ++vp) {
      Leaf& leaf = *dir_[vp >> kLeafBits];
      std::uint32_t& slot = leaf.frames[vp & (kLeafPages - 1)];
      if (slot != kNoFrame) continue;
      frames_.push_back(next);
      next += kPageSize;
      slot = static_cast<std::uint32_t>(frames_.size() - 1);
    }
  }
  // No TLB flush: the TLB caches only positive entries, newly-mapped pages
  // cannot be cached yet, and frames never move (slab storage is stable), so
  // every cached translation stays valid. The moment unmap/remap exists this
  // must flush.
}

bool GuestMemory::IsMapped(GuestAddr vaddr) const {
  return FrameIndex(vaddr >> kPageBits) != kNoFrame;
}

std::optional<PhysAddr> GuestMemory::TranslateSlow(GuestAddr vaddr,
                                                   std::uint64_t vpage) const {
  if (tlb_enabled_) ++tlb_misses_;
  // Wild vpages (injected pointer corruption makes arbitrary 64-bit
  // addresses) fall out of the directory bounds check inside FrameIndex and
  // read as unmapped, exactly like a hash miss did.
  const std::uint32_t frame = FrameIndex(vpage);
  if (frame == kNoFrame) return std::nullopt;
  const PhysAddr frame_base = static_cast<PhysAddr>(frame) * kPageSize;
  if (tlb_enabled_) {
    tlb_[vpage & (kTlbEntries - 1)] = TlbEntry{vpage, frame_base};
  }
  return frame_base + (vaddr & kPageMask);
}

std::uint8_t* GuestMemory::FramePtr(PhysAddr paddr) {
  return frames_[paddr >> kPageBits] + (paddr & kPageMask);
}

const std::uint8_t* GuestMemory::FramePtr(PhysAddr paddr) const {
  return frames_[paddr >> kPageBits] + (paddr & kPageMask);
}

std::optional<std::uint64_t> GuestMemory::Load(GuestAddr vaddr,
                                               std::uint32_t size,
                                               PhysAddr* paddr_out) {
  const auto paddr = Translate(vaddr);
  if (!paddr) return std::nullopt;
  if (paddr_out != nullptr) *paddr_out = *paddr;
  // Fast path: the access does not cross a page boundary.
  if ((vaddr & kPageMask) + size <= kPageSize) {
    std::uint64_t v = 0;
    std::memcpy(&v, FramePtr(*paddr), size);
    return v;
  }
  // Slow path: byte-by-byte across pages.
  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < size; ++i) {
    const auto pa = Translate(vaddr + i);
    if (!pa) return std::nullopt;
    v |= static_cast<std::uint64_t>(*FramePtr(*pa)) << (8 * i);
  }
  return v;
}

bool GuestMemory::Store(GuestAddr vaddr, std::uint32_t size,
                        std::uint64_t value, PhysAddr* paddr_out) {
  const auto paddr = Translate(vaddr);
  if (!paddr) return false;
  if (paddr_out != nullptr) *paddr_out = *paddr;
  if ((vaddr & kPageMask) + size <= kPageSize) {
    std::memcpy(FramePtr(*paddr), &value, size);
    return true;
  }
  // Verify all bytes are mapped before writing any (no partial stores).
  for (std::uint32_t i = 0; i < size; ++i) {
    if (!Translate(vaddr + i)) return false;
  }
  for (std::uint32_t i = 0; i < size; ++i) {
    *FramePtr(*Translate(vaddr + i)) = static_cast<std::uint8_t>(value >> (8 * i));
  }
  return true;
}

bool GuestMemory::ReadBytes(GuestAddr vaddr, void* dst, std::uint64_t n) const {
  auto* out = static_cast<std::uint8_t*>(dst);
  std::uint64_t done = 0;
  while (done < n) {
    const auto paddr = Translate(vaddr + done);
    if (!paddr) return false;
    const std::uint64_t in_page = kPageSize - ((vaddr + done) & kPageMask);
    const std::uint64_t chunk = std::min(in_page, n - done);
    std::memcpy(out + done, FramePtr(*paddr), chunk);
    done += chunk;
  }
  return true;
}

bool GuestMemory::WriteBytes(GuestAddr vaddr, const void* src, std::uint64_t n) {
  const auto* in = static_cast<const std::uint8_t*>(src);
  // Check the whole range first so a fault never leaves a partial write.
  for (std::uint64_t off = 0; off < n; off += kPageSize) {
    if (!IsMapped(vaddr + off)) return false;
  }
  if (n > 0 && !IsMapped(vaddr + n - 1)) return false;
  std::uint64_t done = 0;
  while (done < n) {
    const auto paddr = Translate(vaddr + done);
    const std::uint64_t in_page = kPageSize - ((vaddr + done) & kPageMask);
    const std::uint64_t chunk = std::min(in_page, n - done);
    std::memcpy(FramePtr(*paddr), in + done, chunk);
    done += chunk;
  }
  return true;
}

}  // namespace chaser::vm

#include "vm/memory.h"

#include <cstring>

namespace chaser::vm {

void GuestMemory::MapRegion(GuestAddr vaddr, std::uint64_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t first = vaddr >> kPageBits;
  const std::uint64_t last = (vaddr + bytes - 1) >> kPageBits;
  for (std::uint64_t vp = first; vp <= last; ++vp) {
    if (page_table_.count(vp) != 0) continue;
    auto frame = std::make_unique<std::uint8_t[]>(kPageSize);
    std::memset(frame.get(), 0, kPageSize);
    frames_.push_back(std::move(frame));
    page_table_[vp] = frames_.size() - 1;
  }
}

bool GuestMemory::IsMapped(GuestAddr vaddr) const {
  return page_table_.count(vaddr >> kPageBits) != 0;
}

std::optional<PhysAddr> GuestMemory::Translate(GuestAddr vaddr) const {
  const auto it = page_table_.find(vaddr >> kPageBits);
  if (it == page_table_.end()) return std::nullopt;
  return it->second * kPageSize + (vaddr & kPageMask);
}

std::uint8_t* GuestMemory::FramePtr(PhysAddr paddr) {
  return frames_[paddr >> kPageBits].get() + (paddr & kPageMask);
}

const std::uint8_t* GuestMemory::FramePtr(PhysAddr paddr) const {
  return frames_[paddr >> kPageBits].get() + (paddr & kPageMask);
}

std::optional<std::uint64_t> GuestMemory::Load(GuestAddr vaddr, std::uint32_t size,
                                               PhysAddr* paddr_out) {
  const auto paddr = Translate(vaddr);
  if (!paddr) return std::nullopt;
  if (paddr_out != nullptr) *paddr_out = *paddr;
  // Fast path: the access does not cross a page boundary.
  if ((vaddr & kPageMask) + size <= kPageSize) {
    std::uint64_t v = 0;
    std::memcpy(&v, FramePtr(*paddr), size);
    return v;
  }
  // Slow path: byte-by-byte across pages.
  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < size; ++i) {
    const auto pa = Translate(vaddr + i);
    if (!pa) return std::nullopt;
    v |= static_cast<std::uint64_t>(*FramePtr(*pa)) << (8 * i);
  }
  return v;
}

bool GuestMemory::Store(GuestAddr vaddr, std::uint32_t size, std::uint64_t value,
                        PhysAddr* paddr_out) {
  const auto paddr = Translate(vaddr);
  if (!paddr) return false;
  if (paddr_out != nullptr) *paddr_out = *paddr;
  if ((vaddr & kPageMask) + size <= kPageSize) {
    std::memcpy(FramePtr(*paddr), &value, size);
    return true;
  }
  // Verify all bytes are mapped before writing any (no partial stores).
  for (std::uint32_t i = 0; i < size; ++i) {
    if (!Translate(vaddr + i)) return false;
  }
  for (std::uint32_t i = 0; i < size; ++i) {
    *FramePtr(*Translate(vaddr + i)) = static_cast<std::uint8_t>(value >> (8 * i));
  }
  return true;
}

bool GuestMemory::ReadBytes(GuestAddr vaddr, void* dst, std::uint64_t n) const {
  auto* out = static_cast<std::uint8_t*>(dst);
  std::uint64_t done = 0;
  while (done < n) {
    const auto paddr = Translate(vaddr + done);
    if (!paddr) return false;
    const std::uint64_t in_page = kPageSize - ((vaddr + done) & kPageMask);
    const std::uint64_t chunk = std::min(in_page, n - done);
    std::memcpy(out + done, FramePtr(*paddr), chunk);
    done += chunk;
  }
  return true;
}

bool GuestMemory::WriteBytes(GuestAddr vaddr, const void* src, std::uint64_t n) {
  const auto* in = static_cast<const std::uint8_t*>(src);
  // Check the whole range first so a fault never leaves a partial write.
  for (std::uint64_t off = 0; off < n; off += kPageSize) {
    if (!IsMapped(vaddr + off)) return false;
  }
  if (n > 0 && !IsMapped(vaddr + n - 1)) return false;
  std::uint64_t done = 0;
  while (done < n) {
    const auto paddr = Translate(vaddr + done);
    const std::uint64_t in_page = kPageSize - ((vaddr + done) & kPageMask);
    const std::uint64_t chunk = std::min(in_page, n - done);
    std::memcpy(FramePtr(*paddr), in + done, chunk);
    done += chunk;
  }
  return true;
}

}  // namespace chaser::vm

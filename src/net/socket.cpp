#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "common/strings.h"

namespace chaser::net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

in_addr ResolveHost(const std::string& host) {
  in_addr addr{};
  const std::string h = (host.empty() || host == "localhost") ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, h.c_str(), &addr) != 1) {
    throw ConfigError("net: cannot parse IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

TcpSocket::TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

TcpSocket::~TcpSocket() { Close(); }

void TcpSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpSocket TcpSocket::Connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw ConfigError(Errno("net: socket()"));
  TcpSocket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr = ResolveHost(host);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw ConfigError(Errno(StrFormat("net: connect to %s:%u", host.c_str(),
                                      static_cast<unsigned>(port))));
  }
  // Command/response round trips dominate the protocol; Nagle only hurts.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

void TcpSocket::SendAll(const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw ConfigError(Errno("net: send"));
    }
    sent += static_cast<std::size_t>(rc);
  }
}

std::size_t TcpSocket::Recv(char* buf, std::size_t n) {
  for (;;) {
    const ssize_t rc = ::recv(fd_, buf, n, 0);
    if (rc >= 0) return static_cast<std::size_t>(rc);
    if (errno == EINTR) continue;
    throw ConfigError(Errno("net: recv"));
  }
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

TcpListener::~TcpListener() { Close(); }

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener TcpListener::Bind(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw ConfigError(Errno("net: socket()"));
  TcpListener lis;
  lis.fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr = ResolveHost(host);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw ConfigError(Errno(StrFormat("net: bind %s:%u", host.c_str(),
                                      static_cast<unsigned>(port))));
  }
  if (::listen(fd, 64) != 0) throw ConfigError(Errno("net: listen"));
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw ConfigError(Errno("net: getsockname"));
  }
  lis.port_ = ntohs(bound.sin_port);
  return lis;
}

int TcpListener::Accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return -1;  // EAGAIN (nonblocking) or a transient failure: not fatal
  }
}

Endpoint ParseEndpoint(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) {
    throw ConfigError("net: endpoint '" + spec + "' is not host:port");
  }
  std::uint64_t port = 0;
  if (!ParseU64(spec.substr(colon + 1), &port) || port == 0 || port > 65535) {
    throw ConfigError("net: endpoint '" + spec + "' has an invalid port");
  }
  return {spec.substr(0, colon), static_cast<std::uint16_t>(port)};
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace chaser::net

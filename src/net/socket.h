// Thin RAII wrappers over POSIX TCP sockets — just enough for the hub wire
// protocol: a blocking client socket and a listener the server's poll loop
// accepts from. IPv4 only (campaign fleets are rack-local); no TLS.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace chaser::net {

/// Owns one socket fd. Movable, not copyable; closes on destruction.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;
  ~TcpSocket();

  /// Blocking connect to host:port. Throws common ConfigError on failure
  /// (unknown host, refused, ...).
  static TcpSocket Connect(const std::string& host, std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Write all of data[0..n); throws ConfigError if the peer vanished.
  /// SIGPIPE is suppressed (MSG_NOSIGNAL) so a dead peer is an exception,
  /// never a process kill.
  void SendAll(const char* data, std::size_t n);

  /// Blocking read of up to n bytes. Returns the byte count, 0 on orderly
  /// EOF; throws ConfigError on a socket error.
  std::size_t Recv(char* buf, std::size_t n);

  void Close();

 private:
  int fd_ = -1;
};

/// Listening socket. Bind with port 0 for an ephemeral port, then port()
/// reports the one the kernel picked (test servers, chaser_hubd --port 0).
class TcpListener {
 public:
  TcpListener() = default;
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  /// Bind + listen on host:port (SO_REUSEADDR). Throws ConfigError.
  static TcpListener Bind(const std::string& host, std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  std::uint16_t port() const { return port_; }

  /// Accept one pending connection; returns an owned fd, or -1 if none is
  /// pending (nonblocking listener) or the accept failed transiently.
  int Accept();

  void Close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Endpoint spec "host:port" (e.g. "127.0.0.1:7700"). Throws ConfigError on
/// a missing/invalid port.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};
Endpoint ParseEndpoint(const std::string& spec);

/// Make fd nonblocking (server poll loop). Returns false on fcntl failure.
bool SetNonBlocking(int fd);

}  // namespace chaser::net

#include "net/frame.h"

#include "common/crc32.h"

namespace chaser::net {

void AppendVarint(std::string* out, std::uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

DecodeStatus DecodeVarint(const char* buf, std::size_t size, std::size_t* pos,
                          std::uint64_t* value) {
  std::uint64_t v = 0;
  int shift = 0;
  std::size_t p = *pos;
  while (p < size) {
    const std::uint8_t byte = static_cast<std::uint8_t>(buf[p++]);
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = v;
      *pos = p;
      return DecodeStatus::kOk;
    }
    shift += 7;
    if (shift >= 64) return DecodeStatus::kMalformed;
  }
  return DecodeStatus::kNeedMore;
}

void AppendFrame(std::string* out, const std::string& payload) {
  AppendVarint(out, payload.size());
  out->append(payload);
  const std::uint32_t crc = Crc32(payload.data(), payload.size());
  out->push_back(static_cast<char>(crc & 0xFF));
  out->push_back(static_cast<char>((crc >> 8) & 0xFF));
  out->push_back(static_cast<char>((crc >> 16) & 0xFF));
  out->push_back(static_cast<char>((crc >> 24) & 0xFF));
}

FrameDecoder::Result FrameDecoder::Next(std::string* payload) {
  if (poisoned_) return Result::kError;
  // Compact once the consumed prefix dominates, so long-lived connections
  // do not grow the buffer without bound.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  std::size_t p = pos_;
  std::uint64_t len = 0;
  switch (DecodeVarint(buf_.data(), buf_.size(), &p, &len)) {
    case DecodeStatus::kNeedMore:
      return Result::kNeedMore;
    case DecodeStatus::kMalformed:
      poisoned_ = true;
      error_ = "malformed frame length varint";
      return Result::kError;
    case DecodeStatus::kOk:
      break;
  }
  if (len == 0) {
    poisoned_ = true;
    error_ = "zero-length frame";
    return Result::kError;
  }
  if (len > kMaxFramePayload) {
    poisoned_ = true;
    error_ = "oversized frame (" + std::to_string(len) + " bytes)";
    return Result::kError;
  }
  if (buf_.size() - p < len + 4) return Result::kNeedMore;
  const char* body = buf_.data() + p;
  const std::uint32_t want = Crc32(body, len);
  const char* c = body + len;
  const std::uint32_t got =
      static_cast<std::uint32_t>(static_cast<std::uint8_t>(c[0])) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(c[1])) << 8) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(c[2])) << 16) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(c[3])) << 24);
  if (want != got) {
    poisoned_ = true;
    error_ = "frame CRC mismatch";
    return Result::kError;
  }
  payload->assign(body, len);
  pos_ = p + len + 4;
  return Result::kFrame;
}

}  // namespace chaser::net

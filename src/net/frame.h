// Length-prefixed CRC-framed byte streams for the hub wire protocol.
//
// A frame on the wire is:
//
//     varint payload_len | payload bytes | CRC32-LE(payload)   (4 bytes)
//
// — the same shape as the trial journal's record frames (DESIGN.md §5.3),
// with the same CRC (common/crc32.h), so a frame written by either subsystem
// is checkable by the other's tooling. Unlike the journal, a torn frame on a
// socket is not "end of valid prefix": the stream continues, so the decoder
// distinguishes "need more bytes" (kNeedMore) from "this connection is
// poisoned" (kError — bad varint, zero/oversized length, CRC mismatch).
// Servers drop only the offending connection, never abort.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace chaser::net {

/// Hard ceiling on a single frame's payload. Large enough for a batch of
/// publish records with multi-megabyte masks, small enough that a garbage
/// length prefix cannot make a peer allocate unbounded memory.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 22;  // 4 MiB

// ---- varint (LEB128, unsigned) ---------------------------------------------

void AppendVarint(std::string* out, std::uint64_t value);

/// Zig-zag for signed values (tags/ranks on the wire).
inline std::uint64_t ZigZagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t ZigZagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

enum class DecodeStatus : std::uint8_t {
  kOk,        // value decoded, *pos advanced past it
  kNeedMore,  // buffer ends mid-varint — feed more bytes and retry
  kMalformed, // > 10 bytes of continuation: not a varint
};

/// Decode a varint from buf[*pos..). On kOk advances *pos; otherwise leaves
/// it untouched so the caller can retry once more bytes arrive.
DecodeStatus DecodeVarint(const char* buf, std::size_t size, std::size_t* pos,
                          std::uint64_t* value);

// ---- frame encode ----------------------------------------------------------

/// Append one complete frame (length + payload + CRC) to `out`.
void AppendFrame(std::string* out, const std::string& payload);

// ---- incremental frame decode ----------------------------------------------

/// Incremental decoder over a byte stream: Feed() socket reads in, call
/// Next() until it stops returning kFrame. Keeps a single rolling buffer;
/// consumed frames are compacted away lazily.
class FrameDecoder {
 public:
  enum class Result : std::uint8_t {
    kFrame,     // *payload holds the next frame's payload
    kNeedMore,  // no complete frame buffered yet
    kError,     // stream poisoned (see error()); drop the connection
  };

  void Feed(const char* data, std::size_t n) { buf_.append(data, n); }

  Result Next(std::string* payload);

  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet consumed (backpressure accounting).
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
  std::string error_;
  bool poisoned_ = false;
};

}  // namespace chaser::net

// TaintHub: the central coordination service for cross-rank taint (paper
// §III-C(b), Fig. 5).
//
// Shadow taint cannot travel inside MPI payloads — only raw bytes cross the
// process/node boundary. Chaser therefore hooks the MPI send functions: if
// the send buffer is tainted, the sender publishes the message's taint
// status (keyed by its identity) to TaintHub *before* the message leaves.
// The receiver-side hook polls TaintHub with the received message's identity
// and, only on a hit, re-applies the per-byte taint to the receive buffer.
// Clean messages cost one hash lookup — receivers never parse message
// contents (the advantage over in-band header schemes, §V).
//
// The hub is also a single point of failure in the paper's real deployment
// (one service coordinating every QEMU instance). A configurable
// HubFaultModel degrades the hub on purpose — dropped publishes, delayed
// visibility, a hard outage window, and a bounded receiver-side poll
// deadline — so campaigns can *measure* cross-rank taint loss
// (HubStats::taint_lost) instead of treating the hub as infallible.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace chaser::hub {

/// Identity of an MPI message as TaintHub keys it: (tag, dest) extended with
/// source and a FIFO sequence number so re-used tags stay unambiguous.
struct MessageId {
  Rank src = 0;
  Rank dest = 0;
  std::int64_t tag = 0;
  std::uint64_t seq = 0;

  auto Key() const { return std::make_tuple(src, dest, tag, seq); }
};

/// Published taint status of one message.
struct MessageTaintRecord {
  MessageId id;
  std::vector<std::uint8_t> byte_masks;  // one 8-bit taint mask per payload byte
  // Sender-side provenance (propagation analysis): guest address of the send
  // buffer and the sender's retired-instruction count at publish time.
  GuestAddr src_vaddr = 0;
  std::uint64_t send_instret = 0;

  bool AnyTainted() const {
    for (const std::uint8_t m : byte_masks) {
      if (m != 0) return true;
    }
    return false;
  }
  std::uint64_t TaintedByteCount() const {
    std::uint64_t n = 0;
    for (const std::uint8_t m : byte_masks) n += (m != 0) ? 1 : 0;
    return n;
  }
};

/// A completed cross-rank taint transfer (for Table III's propagation rows
/// and the propagation graph's cross-rank edges).
struct TransferLogEntry {
  MessageId id;
  std::uint64_t tainted_bytes = 0;
  std::uint64_t payload_bytes = 0;   // full message length (mask count)
  // Address/time anchors for the propagation graph: where the payload lived
  // on the sender, where it landed on the receiver, and each side's
  // retired-instruction count (per-rank clocks; comparable within one rank).
  GuestAddr src_vaddr = 0;
  GuestAddr dest_vaddr = 0;
  std::uint64_t send_instret = 0;
  std::uint64_t recv_instret = 0;
  /// Global arrival order at the hub (0, 1, 2, ...): the deterministic
  /// cross-channel ordering the spread-order analysis keys on.
  std::uint64_t hub_seq = 0;
};

/// Receiver-side context for Poll (propagation-analysis anchors).
struct RecvContext {
  GuestAddr dest_vaddr = 0;
  std::uint64_t recv_instret = 0;
};

struct HubStats {
  std::uint64_t publishes = 0;       // tainted messages registered by senders
  std::uint64_t polls = 0;           // receiver-side lookups (incl. retries)
  std::uint64_t hits = 0;            // polls that found a tainted record
  std::uint64_t applied_bytes = 0;   // taint bytes re-established at receivers
  // Degradation-mode accounting (all zero with a healthy hub):
  std::uint64_t publish_drops = 0;     // sender publishes the hub lost
  std::uint64_t unavailable_polls = 0; // poll attempts during outage/lag
  std::uint64_t abandoned_polls = 0;   // receivers that exhausted the deadline
  std::uint64_t taint_lost = 0;        // tainted messages whose taint never
                                       // reached the receiver (drops + abandons)
  std::uint64_t lost_taint_bytes = 0;  // tainted bytes those messages carried
};

/// Configurable hub degradation (all defaults = a perfectly healthy hub).
/// Time is the hub's own operation clock: every Publish and every poll
/// attempt advances it by one, so the model is deterministic and identical
/// on the serial and parallel campaign drivers.
struct HubFaultModel {
  /// Each sender publish is silently lost with this probability (drawn from
  /// a private Rng reseeded on every Clear(), i.e. per trial).
  double publish_drop_prob = 0.0;
  /// A publish becomes visible to polls only after this many further hub
  /// operations (models hub processing lag; receivers overcome it by
  /// retrying if their deadline allows).
  std::uint64_t visibility_delay = 0;
  /// Hard outage: hub operations in clock window [outage_start, outage_end)
  /// fail — publishes are lost, polls report kUnavailable.
  std::uint64_t outage_start = 0;
  std::uint64_t outage_end = 0;
  /// Receiver-side deadline: extra poll attempts a receiver hook makes after
  /// an unavailable first attempt before proceeding untainted.
  std::uint64_t poll_retries = 0;
  /// Seed for the publish-drop decisions.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  bool Active() const {
    return publish_drop_prob > 0.0 || visibility_delay > 0 ||
           outage_end > outage_start;
  }
};

/// Outcome of one poll attempt under a (possibly degraded) hub.
enum class PollStatus : std::uint8_t {
  kHit,          // tainted record found and consumed
  kMiss,         // no record: the message was clean (or its publish was lost)
  kUnavailable,  // hub down / record not yet visible — retrying may succeed
};

struct PollAttempt {
  PollStatus status = PollStatus::kMiss;
  std::optional<MessageTaintRecord> record;  // set only on kHit
};

/// The hub operations the MPI hooks and campaign code actually consume,
/// abstracted so the transport is invisible: TaintHub implements it
/// in-process, hub::remote::RemoteTaintHub over a socket to a chaser_hubd
/// server (possibly key-space-sharded across several). Everything above this
/// interface — ChaserMpiHooks, ChaserMpi, the campaign drivers — is
/// transport-agnostic.
class HubService {
 public:
  virtual ~HubService() = default;

  /// Sender side: register a tainted message's status.
  virtual void Publish(MessageTaintRecord record) = 0;

  /// One poll attempt distinguishing "definitively clean" (kMiss) from "hub
  /// unavailable right now" (kUnavailable — outage, visibility lag, or a
  /// transport that has not caught up). Receivers retry kUnavailable up to
  /// fault_model().poll_retries.
  virtual PollAttempt TryPoll(const MessageId& id,
                              const RecvContext& ctx = {}) = 0;

  /// Receiver gave up on `id` (deadline exhausted): evict any pending record
  /// and account the lost taint.
  virtual void AbandonPoll(const MessageId& id) = 0;

  /// Install (or reset) the degradation model for subsequent trials.
  virtual void SetFaultModel(const HubFaultModel& model) = 0;
  /// The installed model (remote implementations cache it client-side so the
  /// receiver hook's retry deadline needs no network round trip).
  virtual const HubFaultModel& fault_model() const = 0;

  /// Completed transfers in deterministic hub_seq order (ascending).
  virtual std::vector<TransferLogEntry> transfer_log() const = 0;

  /// Move the transfer log out (hub_seq order) and clear it, leaving stats
  /// and pending records untouched.
  virtual std::vector<TransferLogEntry> DrainTransferLog() = 0;

  /// True if any tainted message has flowed src -> dest.
  virtual bool SawTransfer(Rank src, Rank dest) const = 0;

  /// Counter snapshot (remote implementations sum their shards').
  virtual HubStats stats() const = 0;

  /// Per-trial reset: evict pending records, restart the clock, drop tape,
  /// transfer log, and stats.
  virtual void Clear() = 0;

  /// One-shot lookup by message identity: the record on a hit, nullopt on a
  /// miss *or* an unavailable hub — callers that want to retry use TryPoll.
  std::optional<MessageTaintRecord> Poll(const MessageId& id,
                                         const RecvContext& ctx = {});
};

class TaintHub : public HubService {
 public:
  /// Sender side: register a tainted message's status. Clean messages are
  /// never published (the sender-side hook returns early). Under a fault
  /// model the publish may be silently lost (counted in stats).
  void Publish(MessageTaintRecord record) override;

  /// One poll attempt that distinguishes "definitively clean" (kMiss) from
  /// "hub unavailable right now" (kUnavailable, outage or visibility lag).
  /// The receiver hook retries kUnavailable up to the model's poll_retries.
  PollAttempt TryPoll(const MessageId& id,
                      const RecvContext& ctx = {}) override;

  /// Receiver gave up on `id` (deadline exhausted): drop any pending record
  /// so it cannot alias a later message, and account the lost taint. The
  /// taint_lost counter only grows when a record actually existed — abandons
  /// of genuinely clean messages are not taint loss.
  void AbandonPoll(const MessageId& id) override;

  /// Install (or clear, with a default-constructed model) the degradation
  /// model. Takes effect immediately; the drop Rng reseeds now and on every
  /// Clear() so each campaign trial sees the same deterministic fault tape.
  void SetFaultModel(const HubFaultModel& model) override;
  const HubFaultModel& fault_model() const override { return fault_model_; }

  /// Hub operation clock (publishes + poll attempts since the last Clear).
  std::uint64_t clock() const { return clock_; }

  /// Completed transfers (every Poll hit), oldest first.
  const std::vector<TransferLogEntry>& transfers() const { return transfers_; }

  /// Completed transfers in deterministic hub_seq order (ascending). The
  /// entries are appended in that order, but callers that merged or filtered
  /// lists should re-sort through this accessor's contract.
  std::vector<TransferLogEntry> transfer_log() const override;

  /// Move the transfer log out (hub_seq order) and clear it, leaving stats
  /// and pending records untouched. The per-trial trace spool drains the log
  /// through this so records from one trial can never bleed into — or
  /// interleave with — the next trial's spool.
  std::vector<TransferLogEntry> DrainTransferLog() override;

  /// True if any tainted message has flowed src -> dest.
  bool SawTransfer(Rank src, Rank dest) const override;

  HubStats stats() const override { return stats_; }

  void Clear() override;

 private:
  /// A published record plus the hub clock at which it becomes pollable.
  struct Pending {
    MessageTaintRecord record;
    std::uint64_t visible_at = 0;
  };

  bool InOutage() const {
    return clock_ >= fault_model_.outage_start && clock_ < fault_model_.outage_end;
  }
  void AccountLoss(const MessageTaintRecord& record);

  std::map<std::tuple<Rank, Rank, std::int64_t, std::uint64_t>, Pending> records_;
  std::vector<TransferLogEntry> transfers_;
  std::uint64_t next_hub_seq_ = 0;
  HubStats stats_;
  HubFaultModel fault_model_;
  Rng fault_rng_{fault_model_.seed};
  std::uint64_t clock_ = 0;
};

}  // namespace chaser::hub

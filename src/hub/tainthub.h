// TaintHub: the central coordination service for cross-rank taint (paper
// §III-C(b), Fig. 5).
//
// Shadow taint cannot travel inside MPI payloads — only raw bytes cross the
// process/node boundary. Chaser therefore hooks the MPI send functions: if
// the send buffer is tainted, the sender publishes the message's taint
// status (keyed by its identity) to TaintHub *before* the message leaves.
// The receiver-side hook polls TaintHub with the received message's identity
// and, only on a hit, re-applies the per-byte taint to the receive buffer.
// Clean messages cost one hash lookup — receivers never parse message
// contents (the advantage over in-band header schemes, §V).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "common/types.h"

namespace chaser::hub {

/// Identity of an MPI message as TaintHub keys it: (tag, dest) extended with
/// source and a FIFO sequence number so re-used tags stay unambiguous.
struct MessageId {
  Rank src = 0;
  Rank dest = 0;
  std::int64_t tag = 0;
  std::uint64_t seq = 0;

  auto Key() const { return std::make_tuple(src, dest, tag, seq); }
};

/// Published taint status of one message.
struct MessageTaintRecord {
  MessageId id;
  std::vector<std::uint8_t> byte_masks;  // one 8-bit taint mask per payload byte
  // Sender-side provenance (propagation analysis): guest address of the send
  // buffer and the sender's retired-instruction count at publish time.
  GuestAddr src_vaddr = 0;
  std::uint64_t send_instret = 0;

  bool AnyTainted() const {
    for (const std::uint8_t m : byte_masks) {
      if (m != 0) return true;
    }
    return false;
  }
  std::uint64_t TaintedByteCount() const {
    std::uint64_t n = 0;
    for (const std::uint8_t m : byte_masks) n += (m != 0) ? 1 : 0;
    return n;
  }
};

/// A completed cross-rank taint transfer (for Table III's propagation rows
/// and the propagation graph's cross-rank edges).
struct TransferLogEntry {
  MessageId id;
  std::uint64_t tainted_bytes = 0;
  std::uint64_t payload_bytes = 0;   // full message length (mask count)
  // Address/time anchors for the propagation graph: where the payload lived
  // on the sender, where it landed on the receiver, and each side's
  // retired-instruction count (per-rank clocks; comparable within one rank).
  GuestAddr src_vaddr = 0;
  GuestAddr dest_vaddr = 0;
  std::uint64_t send_instret = 0;
  std::uint64_t recv_instret = 0;
  /// Global arrival order at the hub (0, 1, 2, ...): the deterministic
  /// cross-channel ordering the spread-order analysis keys on.
  std::uint64_t hub_seq = 0;
};

/// Receiver-side context for Poll (propagation-analysis anchors).
struct RecvContext {
  GuestAddr dest_vaddr = 0;
  std::uint64_t recv_instret = 0;
};

struct HubStats {
  std::uint64_t publishes = 0;       // tainted messages registered by senders
  std::uint64_t polls = 0;           // receiver-side lookups
  std::uint64_t hits = 0;            // polls that found a tainted record
  std::uint64_t applied_bytes = 0;   // taint bytes re-established at receivers
};

class TaintHub {
 public:
  /// Sender side: register a tainted message's status. Clean messages are
  /// never published (the sender-side hook returns early).
  void Publish(MessageTaintRecord record);

  /// Receiver side: one-shot lookup by message identity. Returns the record
  /// and removes it, or nullopt (message clean / never published). `ctx`
  /// stamps the transfer-log entry with the receiver-side anchors.
  std::optional<MessageTaintRecord> Poll(const MessageId& id,
                                         const RecvContext& ctx = {});

  /// Completed transfers (every Poll hit), oldest first.
  const std::vector<TransferLogEntry>& transfers() const { return transfers_; }

  /// Completed transfers in deterministic hub_seq order (ascending). The
  /// entries are appended in that order, but callers that merged or filtered
  /// lists should re-sort through this accessor's contract.
  std::vector<TransferLogEntry> transfer_log() const;

  /// Move the transfer log out (hub_seq order) and clear it, leaving stats
  /// and pending records untouched. The per-trial trace spool drains the log
  /// through this so records from one trial can never bleed into — or
  /// interleave with — the next trial's spool.
  std::vector<TransferLogEntry> DrainTransferLog();

  /// True if any tainted message has flowed src -> dest.
  bool SawTransfer(Rank src, Rank dest) const;

  const HubStats& stats() const { return stats_; }

  void Clear();

 private:
  std::map<std::tuple<Rank, Rank, std::int64_t, std::uint64_t>, MessageTaintRecord>
      records_;
  std::vector<TransferLogEntry> transfers_;
  std::uint64_t next_hub_seq_ = 0;
  HubStats stats_;
};

}  // namespace chaser::hub

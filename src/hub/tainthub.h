// TaintHub: the central coordination service for cross-rank taint (paper
// §III-C(b), Fig. 5).
//
// Shadow taint cannot travel inside MPI payloads — only raw bytes cross the
// process/node boundary. Chaser therefore hooks the MPI send functions: if
// the send buffer is tainted, the sender publishes the message's taint
// status (keyed by its identity) to TaintHub *before* the message leaves.
// The receiver-side hook polls TaintHub with the received message's identity
// and, only on a hit, re-applies the per-byte taint to the receive buffer.
// Clean messages cost one hash lookup — receivers never parse message
// contents (the advantage over in-band header schemes, §V).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "common/types.h"

namespace chaser::hub {

/// Identity of an MPI message as TaintHub keys it: (tag, dest) extended with
/// source and a FIFO sequence number so re-used tags stay unambiguous.
struct MessageId {
  Rank src = 0;
  Rank dest = 0;
  std::int64_t tag = 0;
  std::uint64_t seq = 0;

  auto Key() const { return std::make_tuple(src, dest, tag, seq); }
};

/// Published taint status of one message.
struct MessageTaintRecord {
  MessageId id;
  std::vector<std::uint8_t> byte_masks;  // one 8-bit taint mask per payload byte

  bool AnyTainted() const {
    for (const std::uint8_t m : byte_masks) {
      if (m != 0) return true;
    }
    return false;
  }
  std::uint64_t TaintedByteCount() const {
    std::uint64_t n = 0;
    for (const std::uint8_t m : byte_masks) n += (m != 0) ? 1 : 0;
    return n;
  }
};

/// A completed cross-rank taint transfer (for Table III's propagation rows).
struct TransferLogEntry {
  MessageId id;
  std::uint64_t tainted_bytes = 0;
};

struct HubStats {
  std::uint64_t publishes = 0;       // tainted messages registered by senders
  std::uint64_t polls = 0;           // receiver-side lookups
  std::uint64_t hits = 0;            // polls that found a tainted record
  std::uint64_t applied_bytes = 0;   // taint bytes re-established at receivers
};

class TaintHub {
 public:
  /// Sender side: register a tainted message's status. Clean messages are
  /// never published (the sender-side hook returns early).
  void Publish(MessageTaintRecord record);

  /// Receiver side: one-shot lookup by message identity. Returns the record
  /// and removes it, or nullopt (message clean / never published).
  std::optional<MessageTaintRecord> Poll(const MessageId& id);

  /// Completed transfers (every Poll hit), oldest first.
  const std::vector<TransferLogEntry>& transfers() const { return transfers_; }

  /// True if any tainted message has flowed src -> dest.
  bool SawTransfer(Rank src, Rank dest) const;

  const HubStats& stats() const { return stats_; }

  void Clear();

 private:
  std::map<std::tuple<Rank, Rank, std::int64_t, std::uint64_t>, MessageTaintRecord>
      records_;
  std::vector<TransferLogEntry> transfers_;
  HubStats stats_;
};

}  // namespace chaser::hub

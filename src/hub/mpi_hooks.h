// Chaser's MPI send/receive hooks, wired between the simulated MPI runtime
// and TaintHub (paper Fig. 5).
#pragma once

#include "hub/tainthub.h"
#include "mpi/cluster.h"

namespace chaser::hub {

class ChaserMpiHooks : public mpi::MessageHooks {
 public:
  explicit ChaserMpiHooks(HubService* hub) : hub_(hub) {}

  /// Job-start hook: evict everything a previous trial left in the hub.
  /// Records published but never polled (the sender's receiver died first)
  /// would otherwise collide with the fresh job's restarted sequence numbers,
  /// and HubStats/transfers() would accumulate across trials, skewing the
  /// Table III cross-rank propagation counts.
  void OnJobStart() override { hub_->Clear(); }

  /// Sender hook: extract (tag, dest) and the buffer's shadow taint; if any
  /// byte is tainted, publish the per-byte masks to TaintHub before the
  /// message leaves. Clean buffers return without any hub traffic.
  void OnSend(vm::Vm& sender, const mpi::Envelope& env, GuestAddr buf) override;

  /// Receiver hook: poll TaintHub with (tag, source, seq); on a hit,
  /// re-apply the per-byte taint masks to the (freshly cleaned) receive
  /// buffer so local propagation resumes — the fault "manifests again".
  /// Under a degraded hub (HubFaultModel) an unavailable poll is retried up
  /// to the model's deadline; past it the receiver proceeds untainted and
  /// the hub counts the lost taint.
  void OnRecvComplete(vm::Vm& receiver, const mpi::Envelope& env,
                      GuestAddr buf) override;

  HubService& hub() { return *hub_; }

 private:
  HubService* hub_;
};

}  // namespace chaser::hub

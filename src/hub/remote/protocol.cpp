#include "hub/remote/protocol.h"

#include <cstdlib>
#include <cstring>

#include "common/error.h"
#include "common/strings.h"

namespace chaser::hub::remote {

namespace {

using net::AppendVarint;
using net::DecodeStatus;
using net::DecodeVarint;
using net::ZigZagDecode;
using net::ZigZagEncode;

bool ReadVarint(const std::string& buf, std::size_t* pos, std::uint64_t* v) {
  return DecodeVarint(buf.data(), buf.size(), pos, v) == DecodeStatus::kOk;
}

bool ReadSigned(const std::string& buf, std::size_t* pos, std::int64_t* v) {
  std::uint64_t raw = 0;
  if (!ReadVarint(buf, pos, &raw)) return false;
  *v = ZigZagDecode(raw);
  return true;
}

// Doubles travel as their IEEE-754 bit pattern (exact round trip — the fault
// model's drop probability must reproduce the same Bernoulli tape remotely).
void AppendDouble(std::string* out, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  AppendVarint(out, bits);
}

bool ReadDouble(const std::string& buf, std::size_t* pos, double* d) {
  std::uint64_t bits = 0;
  if (!ReadVarint(buf, pos, &bits)) return false;
  std::memcpy(d, &bits, sizeof(*d));
  return true;
}

}  // namespace

void EncodeMessageId(std::string* out, const MessageId& id) {
  AppendVarint(out, ZigZagEncode(id.src));
  AppendVarint(out, ZigZagEncode(id.dest));
  AppendVarint(out, ZigZagEncode(id.tag));
  AppendVarint(out, id.seq);
}

bool DecodeMessageId(const std::string& buf, std::size_t* pos, MessageId* id) {
  std::int64_t src = 0, dest = 0, tag = 0;
  if (!ReadSigned(buf, pos, &src) || !ReadSigned(buf, pos, &dest) ||
      !ReadSigned(buf, pos, &tag) || !ReadVarint(buf, pos, &id->seq)) {
    return false;
  }
  id->src = static_cast<Rank>(src);
  id->dest = static_cast<Rank>(dest);
  id->tag = tag;
  return true;
}

void EncodeRecord(std::string* out, const MessageTaintRecord& record) {
  EncodeMessageId(out, record.id);
  AppendVarint(out, record.src_vaddr);
  AppendVarint(out, record.send_instret);
  AppendVarint(out, record.byte_masks.size());
  out->append(reinterpret_cast<const char*>(record.byte_masks.data()),
              record.byte_masks.size());
}

bool DecodeRecord(const std::string& buf, std::size_t* pos,
                  MessageTaintRecord* record) {
  std::uint64_t len = 0;
  if (!DecodeMessageId(buf, pos, &record->id) ||
      !ReadVarint(buf, pos, &record->src_vaddr) ||
      !ReadVarint(buf, pos, &record->send_instret) ||
      !ReadVarint(buf, pos, &len)) {
    return false;
  }
  if (buf.size() - *pos < len) return false;
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(buf.data() + *pos);
  record->byte_masks.assign(bytes, bytes + len);
  *pos += len;
  return true;
}

void EncodeRecvContext(std::string* out, const RecvContext& ctx) {
  AppendVarint(out, ctx.dest_vaddr);
  AppendVarint(out, ctx.recv_instret);
}

bool DecodeRecvContext(const std::string& buf, std::size_t* pos,
                       RecvContext* ctx) {
  return ReadVarint(buf, pos, &ctx->dest_vaddr) &&
         ReadVarint(buf, pos, &ctx->recv_instret);
}

void EncodeFaultModel(std::string* out, const HubFaultModel& model) {
  AppendDouble(out, model.publish_drop_prob);
  AppendVarint(out, model.visibility_delay);
  AppendVarint(out, model.outage_start);
  AppendVarint(out, model.outage_end);
  AppendVarint(out, model.poll_retries);
  AppendVarint(out, model.seed);
}

bool DecodeFaultModel(const std::string& buf, std::size_t* pos,
                      HubFaultModel* model) {
  return ReadDouble(buf, pos, &model->publish_drop_prob) &&
         ReadVarint(buf, pos, &model->visibility_delay) &&
         ReadVarint(buf, pos, &model->outage_start) &&
         ReadVarint(buf, pos, &model->outage_end) &&
         ReadVarint(buf, pos, &model->poll_retries) &&
         ReadVarint(buf, pos, &model->seed);
}

void EncodeStats(std::string* out, const HubStats& stats) {
  AppendVarint(out, stats.publishes);
  AppendVarint(out, stats.polls);
  AppendVarint(out, stats.hits);
  AppendVarint(out, stats.applied_bytes);
  AppendVarint(out, stats.publish_drops);
  AppendVarint(out, stats.unavailable_polls);
  AppendVarint(out, stats.abandoned_polls);
  AppendVarint(out, stats.taint_lost);
  AppendVarint(out, stats.lost_taint_bytes);
}

bool DecodeStats(const std::string& buf, std::size_t* pos, HubStats* stats) {
  return ReadVarint(buf, pos, &stats->publishes) &&
         ReadVarint(buf, pos, &stats->polls) &&
         ReadVarint(buf, pos, &stats->hits) &&
         ReadVarint(buf, pos, &stats->applied_bytes) &&
         ReadVarint(buf, pos, &stats->publish_drops) &&
         ReadVarint(buf, pos, &stats->unavailable_polls) &&
         ReadVarint(buf, pos, &stats->abandoned_polls) &&
         ReadVarint(buf, pos, &stats->taint_lost) &&
         ReadVarint(buf, pos, &stats->lost_taint_bytes);
}

void EncodeTransferEntry(std::string* out, const TransferLogEntry& entry) {
  EncodeMessageId(out, entry.id);
  AppendVarint(out, entry.tainted_bytes);
  AppendVarint(out, entry.payload_bytes);
  AppendVarint(out, entry.src_vaddr);
  AppendVarint(out, entry.dest_vaddr);
  AppendVarint(out, entry.send_instret);
  AppendVarint(out, entry.recv_instret);
  AppendVarint(out, entry.hub_seq);
}

bool DecodeTransferEntry(const std::string& buf, std::size_t* pos,
                         TransferLogEntry* entry) {
  return DecodeMessageId(buf, pos, &entry->id) &&
         ReadVarint(buf, pos, &entry->tainted_bytes) &&
         ReadVarint(buf, pos, &entry->payload_bytes) &&
         ReadVarint(buf, pos, &entry->src_vaddr) &&
         ReadVarint(buf, pos, &entry->dest_vaddr) &&
         ReadVarint(buf, pos, &entry->send_instret) &&
         ReadVarint(buf, pos, &entry->recv_instret) &&
         ReadVarint(buf, pos, &entry->hub_seq);
}

std::string EncodeHello() {
  std::string out(kHelloMagic, sizeof(kHelloMagic) - 1);
  AppendVarint(&out, kProtocolVersion);
  return out;
}

bool DecodeHello(const std::string& payload, std::string* error) {
  constexpr std::size_t kMagicLen = sizeof(kHelloMagic) - 1;
  if (payload.size() < kMagicLen ||
      payload.compare(0, kMagicLen, kHelloMagic) != 0) {
    *error = "bad hello magic";
    return false;
  }
  std::size_t pos = kMagicLen;
  std::uint64_t version = 0;
  if (!ReadVarint(payload, &pos, &version) || pos != payload.size()) {
    *error = "malformed hello";
    return false;
  }
  if (version != kProtocolVersion) {
    *error = StrFormat("protocol version mismatch: client %llu, server %llu",
                       static_cast<unsigned long long>(version),
                       static_cast<unsigned long long>(kProtocolVersion));
    return false;
  }
  return true;
}

HubFaultModel ParseHubFaultSpec(const std::string& spec,
                                const std::string& flag) {
  HubFaultModel model;
  std::vector<KeyVal> kvs;
  std::string bad;
  if (!ParseKeyValList(spec, &kvs, &bad) || spec.empty()) {
    throw ConfigError(flag + ": expected key=value, got '" +
                      (spec.empty() ? spec : bad) +
                      "' (valid keys: drop, delay, outage, retries, seed)");
  }
  for (const KeyVal& kv : kvs) {
    const std::string& key = kv.key;
    const std::string& val = kv.value;
    std::uint64_t n = 0;
    if (key == "drop") {
      char* end = nullptr;
      const double p = std::strtod(val.c_str(), &end);
      if (end == val.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
        throw ConfigError(flag + ": drop expects a probability in [0,1], got '" +
                          val + "'");
      }
      model.publish_drop_prob = p;
    } else if (key == "delay") {
      if (!ParseU64(val, &n)) {
        throw ConfigError(flag + ": bad delay value '" + val + "'");
      }
      model.visibility_delay = n;
    } else if (key == "outage") {
      const std::vector<std::string> parts = Split(val, '-');
      std::uint64_t a = 0, b = 0;
      if (parts.size() != 2 || !ParseU64(parts[0], &a) ||
          !ParseU64(parts[1], &b) || b < a) {
        throw ConfigError(
            flag + ": outage expects A-B (down for clocks [A,B)), got '" +
            val + "'");
      }
      model.outage_start = a;
      model.outage_end = b;
    } else if (key == "retries") {
      if (!ParseU64(val, &n)) {
        throw ConfigError(flag + ": bad retries value '" + val + "'");
      }
      model.poll_retries = n;
    } else if (key == "seed") {
      if (!ParseU64(val, &n)) {
        throw ConfigError(flag + ": bad seed value '" + val + "'");
      }
      model.seed = n;
    } else {
      throw ConfigError(flag + ": unknown key '" + key +
                        "' (valid keys: drop, delay, outage, retries, seed)");
    }
  }
  return model;
}

}  // namespace chaser::hub::remote

// Wire protocol between RemoteTaintHub clients and chaser_hubd servers.
//
// Transport: TCP, each message one net::FrameDecoder frame (varint length +
// payload + CRC32). The first frame on a connection must be a hello:
//
//     "CHSHUB1" | varint protocol_version
//
// The server replies ok (status 0 + its version) or an error string and
// drops the connection. After the hello, every request frame is:
//
//     varint command | command body
//
// and every response frame is:
//
//     varint status (0 = ok, 1 = error) | body (ok) / error string (error)
//
// Integers are varints; signed values (ranks, tags) are zig-zag coded;
// doubles travel as their IEEE-754 bit pattern in a varint. The shape
// follows the msgpack-style taint command block of vogr/qemu's plugin
// (SNIPPETS.md Snippet 3): one self-delimiting command per frame, batched
// where the hot path (publish) benefits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hub/tainthub.h"
#include "net/frame.h"

namespace chaser::hub::remote {

inline constexpr char kHelloMagic[] = "CHSHUB1";  // 7 bytes on the wire
inline constexpr std::uint64_t kProtocolVersion = 1;

enum class Command : std::uint8_t {
  kPublishBatch = 1,      // body: varint count | count * record
  kTryPoll = 2,           // body: id | ctx
  kAbandonPoll = 3,       // body: id
  kSetFaultModel = 4,     // body: fault model
  kClear = 5,             // body: empty
  kStats = 6,             // reply body: 9 varints (HubStats field order)
  kDrainTransferLog = 7,  // reply body: varint count | count * entry
};

enum class Status : std::uint8_t {
  kOk = 0,
  kError = 1,
};

// ---- body encoders/decoders ------------------------------------------------
// Decoders return false (without throwing) on truncated/garbage bodies so
// the server can reject a malformed command without dying.

void EncodeMessageId(std::string* out, const MessageId& id);
bool DecodeMessageId(const std::string& buf, std::size_t* pos, MessageId* id);

void EncodeRecord(std::string* out, const MessageTaintRecord& record);
bool DecodeRecord(const std::string& buf, std::size_t* pos,
                  MessageTaintRecord* record);

void EncodeRecvContext(std::string* out, const RecvContext& ctx);
bool DecodeRecvContext(const std::string& buf, std::size_t* pos,
                       RecvContext* ctx);

void EncodeFaultModel(std::string* out, const HubFaultModel& model);
bool DecodeFaultModel(const std::string& buf, std::size_t* pos,
                      HubFaultModel* model);

void EncodeStats(std::string* out, const HubStats& stats);
bool DecodeStats(const std::string& buf, std::size_t* pos, HubStats* stats);

void EncodeTransferEntry(std::string* out, const TransferLogEntry& entry);
bool DecodeTransferEntry(const std::string& buf, std::size_t* pos,
                         TransferLogEntry* entry);

/// The hello frame payload a client opens with.
std::string EncodeHello();
/// Validate a hello payload; on failure fills *error with the reason.
bool DecodeHello(const std::string& payload, std::string* error);

/// Parse the --hub-fault spec shared by chaser_run, chaser_hubd, and
/// --hub-fault-trigger: comma-separated key=value with keys drop, delay,
/// outage (A-B), retries, seed. Throws ConfigError on unknown keys / bad
/// values; `flag` names the offending flag in those messages.
HubFaultModel ParseHubFaultSpec(const std::string& spec,
                                const std::string& flag = "--hub-fault");

}  // namespace chaser::hub::remote

#include "hub/remote/client.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.h"
#include "hub/remote/protocol.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace chaser::hub::remote {

namespace {

using net::AppendFrame;
using net::AppendVarint;

/// Flush the batch when it would cross this many encoded bytes or records —
/// well under net::kMaxFramePayload, and large enough that a publish-heavy
/// trial amortizes round trips ~64x.
constexpr std::uint64_t kBatchMaxRecords = 64;
constexpr std::size_t kBatchMaxBytes = net::kMaxFramePayload / 4;

std::uint64_t MixKey(const MessageId& id) {
  // splitmix64-style finalizer over the packed identity: stable across runs,
  // spreads sequential seqs across shards.
  std::uint64_t h = static_cast<std::uint64_t>(id.src) * 0x9e3779b97f4a7c15ull;
  h ^= static_cast<std::uint64_t>(id.dest) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= static_cast<std::uint64_t>(id.tag) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= id.seq + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

}  // namespace

HubClockProbe ProbeHubClock(const std::string& endpoint) {
  const net::Endpoint ep = net::ParseEndpoint(endpoint);
  net::TcpSocket sock = net::TcpSocket::Connect(ep.host, ep.port);
  std::string wire;
  AppendFrame(&wire, EncodeHello());
  const auto now_us = [] {
    return static_cast<std::int64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  };
  const std::int64_t t0 = now_us();
  sock.SendAll(wire.data(), wire.size());
  net::FrameDecoder decoder;
  std::string payload;
  for (;;) {
    const net::FrameDecoder::Result r = decoder.Next(&payload);
    if (r == net::FrameDecoder::Result::kFrame) break;
    if (r == net::FrameDecoder::Result::kError) {
      throw ConfigError("hub clock probe: response stream corrupt: " +
                        decoder.error());
    }
    char buf[4096];
    const std::size_t n = sock.Recv(buf, sizeof(buf));
    if (n == 0) {
      throw ConfigError("hub clock probe: server closed the connection");
    }
    decoder.Feed(buf, n);
  }
  const std::int64_t t1 = now_us();
  std::size_t pos = 0;
  std::uint64_t status = 0;
  if (net::DecodeVarint(payload.data(), payload.size(), &pos, &status) !=
          net::DecodeStatus::kOk ||
      static_cast<Status>(status) != Status::kOk) {
    throw ConfigError("hub clock probe: hello rejected by " + endpoint);
  }
  HubClockProbe probe;
  probe.rtt_us = static_cast<std::uint64_t>(t1 - t0);
  std::uint64_t version = 0;
  std::uint64_t server_us = 0;
  if (net::DecodeVarint(payload.data(), payload.size(), &pos, &version) !=
          net::DecodeStatus::kOk ||
      net::DecodeVarint(payload.data(), payload.size(), &pos, &server_us) !=
          net::DecodeStatus::kOk) {
    return probe;  // hubd predates the hello clock field: ok=false
  }
  probe.ok = true;
  // Cristian: the server stamped its clock roughly mid-flight, so compare
  // against our send time plus half the measured round trip.
  probe.offset_us = static_cast<std::int64_t>(server_us) -
                    (t0 + static_cast<std::int64_t>(probe.rtt_us / 2));
  return probe;
}

RemoteTaintHub::RemoteTaintHub(const std::vector<std::string>& endpoints) {
  if (endpoints.empty()) {
    throw ConfigError("remote hub: no endpoints given");
  }
  shards_.reserve(endpoints.size());
  for (const std::string& spec : endpoints) {
    const net::Endpoint ep = net::ParseEndpoint(spec);
    Shard shard;
    shard.sock = net::TcpSocket::Connect(ep.host, ep.port);
    shards_.push_back(std::move(shard));
    // Hello handshake: reuse Call's response path (hello's ok body carries
    // the server version, which kProtocolVersion already vouched for).
    Call(shards_.back(), EncodeHello());
  }
}

RemoteTaintHub::~RemoteTaintHub() = default;

std::size_t RemoteTaintHub::ShardOf(const MessageId& id) const {
  if (shards_.size() == 1) return 0;
  return static_cast<std::size_t>(MixKey(id) % shards_.size());
}

std::string RemoteTaintHub::Call(Shard& shard, const std::string& request) const {
  static obs::Histogram& call_ns = obs::Registry::Global().GetHistogram(
      "hub_client_call_ns", obs::LatencyBoundsNs());
  static obs::Counter& bytes_sent =
      obs::Registry::Global().GetCounter("hub_client_bytes_sent_total");
  static obs::Counter& bytes_recv =
      obs::Registry::Global().GetCounter("hub_client_bytes_recv_total");
  const std::uint64_t t0 = obs::MonotonicNanos();
  std::string wire;
  AppendFrame(&wire, request);
  shard.sock.SendAll(wire.data(), wire.size());
  bytes_sent.Inc(wire.size());
  std::string payload;
  for (;;) {
    const net::FrameDecoder::Result r = shard.decoder.Next(&payload);
    if (r == net::FrameDecoder::Result::kFrame) break;
    if (r == net::FrameDecoder::Result::kError) {
      throw ConfigError("remote hub: response stream corrupt: " +
                        shard.decoder.error());
    }
    char buf[64 * 1024];
    const std::size_t n = shard.sock.Recv(buf, sizeof(buf));
    if (n == 0) {
      throw ConfigError("remote hub: server closed the connection");
    }
    bytes_recv.Inc(n);
    shard.decoder.Feed(buf, n);
  }
  call_ns.Observe(obs::MonotonicNanos() - t0);
  std::size_t pos = 0;
  std::uint64_t status = 0;
  if (net::DecodeVarint(payload.data(), payload.size(), &pos, &status) !=
      net::DecodeStatus::kOk) {
    throw ConfigError("remote hub: malformed response");
  }
  if (static_cast<Status>(status) != Status::kOk) {
    std::uint64_t len = 0;
    std::string message = "unspecified server error";
    if (net::DecodeVarint(payload.data(), payload.size(), &pos, &len) ==
            net::DecodeStatus::kOk &&
        payload.size() - pos >= len) {
      message.assign(payload.data() + pos, len);
    }
    throw ConfigError("remote hub: " + message);
  }
  return payload.substr(pos);
}

void RemoteTaintHub::FlushBatch(Shard& shard) {
  if (shard.batch_count == 0) return;
  static obs::Histogram& batch_records = obs::Registry::Global().GetHistogram(
      "hub_client_batch_records", {1, 4, 16, 64, 256, 1024});
  batch_records.Observe(shard.batch_count);
  std::string request;
  AppendVarint(&request, static_cast<std::uint64_t>(Command::kPublishBatch));
  AppendVarint(&request, shard.batch_count);
  request.append(shard.batch);
  shard.batch.clear();
  shard.batch_count = 0;
  Call(shard, request);
}

void RemoteTaintHub::FlushAllBatches() {
  for (Shard& shard : shards_) FlushBatch(shard);
}

void RemoteTaintHub::Publish(MessageTaintRecord record) {
  Shard& shard = shards_[ShardOf(record.id)];
  EncodeRecord(&shard.batch, record);
  ++shard.batch_count;
  if (shard.batch_count >= kBatchMaxRecords ||
      shard.batch.size() >= kBatchMaxBytes) {
    FlushBatch(shard);
  }
}

PollAttempt RemoteTaintHub::TryPoll(const MessageId& id, const RecvContext& ctx) {
  // Order fence: every buffered publish reaches its server before this poll,
  // preserving the in-process operation order (and the hub clock with it).
  FlushAllBatches();
  Shard& shard = shards_[ShardOf(id)];
  std::string request;
  AppendVarint(&request, static_cast<std::uint64_t>(Command::kTryPoll));
  EncodeMessageId(&request, id);
  EncodeRecvContext(&request, ctx);
  const std::string body = Call(shard, request);
  std::size_t pos = 0;
  std::uint64_t status = 0;
  if (net::DecodeVarint(body.data(), body.size(), &pos, &status) !=
      net::DecodeStatus::kOk) {
    throw ConfigError("remote hub: malformed poll response");
  }
  PollAttempt attempt;
  attempt.status = static_cast<PollStatus>(status);
  if (attempt.status != PollStatus::kHit) return attempt;
  MessageTaintRecord record;
  if (!DecodeRecord(body, &pos, &record)) {
    throw ConfigError("remote hub: malformed poll record");
  }
  // Mirror the transfer log client-side with a client-assigned sequence:
  // polls are issued one at a time, so this numbering matches what an
  // in-process hub would have assigned.
  transfers_.push_back({.id = record.id,
                        .tainted_bytes = record.TaintedByteCount(),
                        .payload_bytes = record.byte_masks.size(),
                        .src_vaddr = record.src_vaddr,
                        .dest_vaddr = ctx.dest_vaddr,
                        .send_instret = record.send_instret,
                        .recv_instret = ctx.recv_instret,
                        .hub_seq = next_hub_seq_++});
  attempt.record = std::move(record);
  return attempt;
}

void RemoteTaintHub::AbandonPoll(const MessageId& id) {
  FlushAllBatches();
  Shard& shard = shards_[ShardOf(id)];
  std::string request;
  AppendVarint(&request, static_cast<std::uint64_t>(Command::kAbandonPoll));
  EncodeMessageId(&request, id);
  Call(shard, request);
}

void RemoteTaintHub::SetFaultModel(const HubFaultModel& model) {
  FlushAllBatches();
  fault_model_ = model;
  std::string request;
  AppendVarint(&request, static_cast<std::uint64_t>(Command::kSetFaultModel));
  EncodeFaultModel(&request, model);
  for (Shard& shard : shards_) Call(shard, request);
}

std::vector<TransferLogEntry> RemoteTaintHub::transfer_log() const {
  std::vector<TransferLogEntry> log = transfers_;
  std::sort(log.begin(), log.end(),
            [](const TransferLogEntry& a, const TransferLogEntry& b) {
              return a.hub_seq < b.hub_seq;
            });
  return log;
}

std::vector<TransferLogEntry> RemoteTaintHub::DrainTransferLog() {
  FlushAllBatches();
  // Release the servers' copies (session memory), then hand out the
  // client-side mirror — its hub_seq numbering is the deterministic one.
  std::string request;
  AppendVarint(&request, static_cast<std::uint64_t>(Command::kDrainTransferLog));
  for (Shard& shard : shards_) Call(shard, request);
  std::vector<TransferLogEntry> log = std::move(transfers_);
  transfers_.clear();
  std::sort(log.begin(), log.end(),
            [](const TransferLogEntry& a, const TransferLogEntry& b) {
              return a.hub_seq < b.hub_seq;
            });
  return log;
}

bool RemoteTaintHub::SawTransfer(Rank src, Rank dest) const {
  for (const TransferLogEntry& t : transfers_) {
    if (t.id.src == src && t.id.dest == dest) return true;
  }
  return false;
}

HubStats RemoteTaintHub::stats() const {
  HubStats total;
  std::string request;
  AppendVarint(&request, static_cast<std::uint64_t>(Command::kStats));
  for (Shard& shard : shards_) {
    const_cast<RemoteTaintHub*>(this)->FlushBatch(shard);
    const std::string body = Call(shard, request);
    HubStats s;
    std::size_t pos = 0;
    if (!DecodeStats(body, &pos, &s)) {
      throw ConfigError("remote hub: malformed stats response");
    }
    total.publishes += s.publishes;
    total.polls += s.polls;
    total.hits += s.hits;
    total.applied_bytes += s.applied_bytes;
    total.publish_drops += s.publish_drops;
    total.unavailable_polls += s.unavailable_polls;
    total.abandoned_polls += s.abandoned_polls;
    total.taint_lost += s.taint_lost;
    total.lost_taint_bytes += s.lost_taint_bytes;
  }
  return total;
}

void RemoteTaintHub::Clear() {
  // Pending batched publishes belong to the state being discarded: drop them
  // client-side instead of paying a round trip to publish-then-clear.
  for (Shard& shard : shards_) {
    shard.batch.clear();
    shard.batch_count = 0;
  }
  transfers_.clear();
  next_hub_seq_ = 0;
  std::string request;
  AppendVarint(&request, static_cast<std::uint64_t>(Command::kClear));
  for (Shard& shard : shards_) Call(shard, request);
}

}  // namespace chaser::hub::remote

// RemoteTaintHub: the HubService implementation that speaks the wire
// protocol to one or more chaser_hubd servers.
//
// Transport is invisible above the interface — ChaserMpiHooks and the
// campaign drivers run unchanged against it. Determinism contract: with a
// single endpoint, every hub operation reaches the server in the exact order
// the hooks issue it (publishes are batched on the wire but flushed, in
// order, before any other command), so the server session's clock, drop
// tape, and hub_seq numbering match the in-process TaintHub operation for
// operation — campaigns over a remote hub are byte-identical to local runs.
//
// With several endpoints, message keys shard across them by hash; each
// shard keeps its own clock, so fault-model degradation is per-shard (noted
// in DESIGN.md §5.7 — use one endpoint when byte-identity matters).
//
// The transfer log is mirrored client-side: each poll hit appends an entry
// with a client-assigned hub_seq, so transfer_log()/SawTransfer() need no
// network round trip and cross-shard ordering matches issue order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hub/tainthub.h"
#include "net/frame.h"
#include "net/socket.h"

namespace chaser::hub::remote {

/// Result of a one-shot hub clock probe (Cristian's algorithm over the
/// hello handshake): `offset_us` is what to add to this process's
/// system_clock to get the hub's, `rtt_us` bounds the error.
struct HubClockProbe {
  bool ok = false;          ///< server answered with a clock (v1.1+ hubd)
  std::int64_t offset_us = 0;
  std::uint64_t rtt_us = 0;
};

/// Connect to `endpoint` ("host:port"), run one hello handshake, and
/// estimate the server-vs-local clock offset as
/// server_time - (t_send + rtt/2). Fleet workers call this once at startup
/// so their trace anchors land on the hub's clock; a hubd predating the
/// clock field yields ok=false (offset 0). Throws ConfigError on
/// connect/hello failure.
HubClockProbe ProbeHubClock(const std::string& endpoint);

class RemoteTaintHub : public HubService {
 public:
  /// Connect to every endpoint ("host:port") and exchange hellos. Throws
  /// ConfigError on connect/hello failure.
  explicit RemoteTaintHub(const std::vector<std::string>& endpoints);
  ~RemoteTaintHub() override;

  void Publish(MessageTaintRecord record) override;
  PollAttempt TryPoll(const MessageId& id, const RecvContext& ctx = {}) override;
  void AbandonPoll(const MessageId& id) override;
  void SetFaultModel(const HubFaultModel& model) override;
  const HubFaultModel& fault_model() const override { return fault_model_; }
  std::vector<TransferLogEntry> transfer_log() const override;
  std::vector<TransferLogEntry> DrainTransferLog() override;
  bool SawTransfer(Rank src, Rank dest) const override;
  /// Sum of every shard's server-side counters.
  HubStats stats() const override;
  void Clear() override;

  std::size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    net::TcpSocket sock;
    net::FrameDecoder decoder;
    std::string batch;             // encoded pending publish records
    std::uint64_t batch_count = 0;
  };

  std::size_t ShardOf(const MessageId& id) const;
  /// Send one command frame on a shard and return the ok-response body
  /// (throws ConfigError on transport errors or an error status).
  std::string Call(Shard& shard, const std::string& request) const;
  void FlushBatch(Shard& shard);
  void FlushAllBatches();

  // Shards are mutated by logically-const queries (stats() must flush
  // batches and round-trip); the hub interface is single-threaded.
  mutable std::vector<Shard> shards_;
  HubFaultModel fault_model_;
  std::vector<TransferLogEntry> transfers_;  // client-side mirror
  std::uint64_t next_hub_seq_ = 0;
};

}  // namespace chaser::hub::remote

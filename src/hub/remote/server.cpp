#include "hub/remote/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/error.h"
#include "hub/remote/protocol.h"
#include "obs/metrics.h"

namespace chaser::hub::remote {

namespace {

using net::AppendFrame;
using net::AppendVarint;

void AppendOkFrame(std::string* out, const std::string& body) {
  std::string payload;
  AppendVarint(&payload, static_cast<std::uint64_t>(Status::kOk));
  payload.append(body);
  AppendFrame(out, payload);
}

void AppendErrorFrame(std::string* out, const std::string& message) {
  std::string payload;
  AppendVarint(&payload, static_cast<std::uint64_t>(Status::kError));
  AppendVarint(&payload, message.size());
  payload.append(message);
  AppendFrame(out, payload);
}

}  // namespace

HubServer::HubServer(Options options) : options_(std::move(options)) {}

HubServer::~HubServer() { Stop(); }

void HubServer::Start() {
  if (running()) return;
  listener_ = net::TcpListener::Bind(options_.host, options_.port);
  port_ = listener_.port();
  net::SetNonBlocking(listener_.fd());
  if (::pipe(wake_pipe_) != 0) {
    listener_.Close();
    throw ConfigError("hub server: pipe() failed");
  }
  net::SetNonBlocking(wake_pipe_[0]);
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void HubServer::Stop() {
  if (!running()) return;
  stop_requested_.store(true, std::memory_order_release);
  const char byte = 0;
  [[maybe_unused]] const ssize_t rc = ::write(wake_pipe_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
  conns_.clear();
  listener_.Close();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

ServerStats HubServer::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void HubServer::NoteConnError(const std::string& why) {
  static obs::Counter& errors =
      obs::Registry::Global().GetCounter("hub_conn_errors");
  errors.Inc();
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.conn_errors;
  (void)why;  // reason is surfaced through the dropped connection itself
}

void HubServer::FlushWrites(Connection& conn) {
  while (!conn.out.empty()) {
    const ssize_t rc = ::send(conn.sock.fd(), conn.out.data(), conn.out.size(),
                              MSG_NOSIGNAL);
    if (rc > 0) {
      conn.out.erase(0, static_cast<std::size_t>(rc));
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (rc < 0 && errno == EINTR) continue;
    conn.sock.Close();  // peer vanished; reaped by the loop
    return;
  }
}

bool HubServer::HandleFrame(Connection& conn, const std::string& payload,
                            std::string* why) {
  if (!conn.hello_done) {
    std::string error;
    if (!DecodeHello(payload, &error)) {
      AppendErrorFrame(&conn.out, error);
      FlushWrites(conn);  // best effort: tell the client why before dropping
      *why = "hello rejected: " + error;
      return false;
    }
    conn.hello_done = true;
    std::string body;
    AppendVarint(&body, kProtocolVersion);
    AppendOkFrame(&conn.out, body);
    conn.session.SetFaultModel(options_.default_fault);
    return true;
  }

  std::size_t pos = 0;
  std::uint64_t cmd = 0;
  if (net::DecodeVarint(payload.data(), payload.size(), &pos, &cmd) !=
      net::DecodeStatus::kOk) {
    *why = "missing command byte";
    return false;
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.commands;
  }
  switch (static_cast<Command>(cmd)) {
    case Command::kPublishBatch: {
      std::uint64_t count = 0;
      if (net::DecodeVarint(payload.data(), payload.size(), &pos, &count) !=
          net::DecodeStatus::kOk) {
        *why = "malformed publish batch";
        return false;
      }
      std::vector<MessageTaintRecord> records;
      records.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        MessageTaintRecord record;
        if (!DecodeRecord(payload, &pos, &record)) {
          *why = "malformed publish record";
          return false;
        }
        records.push_back(std::move(record));
      }
      for (MessageTaintRecord& record : records) {
        conn.session.Publish(std::move(record));
      }
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.records_published += count;
      }
      AppendOkFrame(&conn.out, "");
      return true;
    }
    case Command::kTryPoll: {
      MessageId id;
      RecvContext ctx;
      if (!DecodeMessageId(payload, &pos, &id) ||
          !DecodeRecvContext(payload, &pos, &ctx)) {
        *why = "malformed poll";
        return false;
      }
      PollAttempt attempt = conn.session.TryPoll(id, ctx);
      std::string body;
      AppendVarint(&body, static_cast<std::uint64_t>(attempt.status));
      if (attempt.status == PollStatus::kHit) {
        EncodeRecord(&body, *attempt.record);
      }
      AppendOkFrame(&conn.out, body);
      return true;
    }
    case Command::kAbandonPoll: {
      MessageId id;
      if (!DecodeMessageId(payload, &pos, &id)) {
        *why = "malformed abandon";
        return false;
      }
      conn.session.AbandonPoll(id);
      AppendOkFrame(&conn.out, "");
      return true;
    }
    case Command::kSetFaultModel: {
      HubFaultModel model;
      if (!DecodeFaultModel(payload, &pos, &model)) {
        *why = "malformed fault model";
        return false;
      }
      conn.session.SetFaultModel(model);
      AppendOkFrame(&conn.out, "");
      return true;
    }
    case Command::kClear: {
      conn.session.Clear();
      AppendOkFrame(&conn.out, "");
      return true;
    }
    case Command::kStats: {
      std::string body;
      EncodeStats(&body, conn.session.stats());
      AppendOkFrame(&conn.out, body);
      return true;
    }
    case Command::kDrainTransferLog: {
      const std::vector<TransferLogEntry> log = conn.session.DrainTransferLog();
      std::string body;
      AppendVarint(&body, log.size());
      for (const TransferLogEntry& entry : log) EncodeTransferEntry(&body, entry);
      AppendOkFrame(&conn.out, body);
      return true;
    }
  }
  // Unknown commands get a per-command error (forward compatibility) rather
  // than a dropped connection: the framing is intact, only the verb is new.
  AppendErrorFrame(&conn.out, "unknown command " + std::to_string(cmd));
  return true;
}

void HubServer::Loop() {
  std::vector<pollfd> fds;
  char buf[64 * 1024];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({listener_.fd(), POLLIN, 0});
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const auto& conn : conns_) {
      short events = POLLIN;
      if (!conn->out.empty()) events |= POLLOUT;
      fds.push_back({conn->sock.fd(), events, 0});
    }
    // Connections accepted below are NOT in fds; only this many were polled.
    const std::size_t polled_conns = conns_.size();
    const int rc = ::poll(fds.data(), fds.size(), 500);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // poll itself failed; shut down rather than spin
    }
    if (fds[1].revents & POLLIN) {
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int cfd = listener_.Accept();
        if (cfd < 0) break;
        net::SetNonBlocking(cfd);
        auto conn = std::make_unique<Connection>();
        conn->sock = net::TcpSocket(cfd);
        conns_.push_back(std::move(conn));
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.connections_accepted;
      }
    }
    for (std::size_t i = 0; i < polled_conns; ++i) {
      Connection& conn = *conns_[i];
      const pollfd& pfd = fds[i + 2];
      bool drop = false;
      bool protocol_error = false;
      std::string why;
      if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) drop = true;
      if (!drop && (pfd.revents & POLLIN)) {
        for (;;) {
          const ssize_t n = ::recv(conn.sock.fd(), buf, sizeof(buf), 0);
          if (n > 0) {
            conn.decoder.Feed(buf, static_cast<std::size_t>(n));
            if (static_cast<ssize_t>(sizeof(buf)) != n) break;
            continue;
          }
          if (n == 0) {
            drop = true;  // orderly EOF; a torn trailing frame is just dropped
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR) continue;
          drop = true;
          break;
        }
        std::string payload;
        while (!drop) {
          const net::FrameDecoder::Result r = conn.decoder.Next(&payload);
          if (r == net::FrameDecoder::Result::kNeedMore) break;
          if (r == net::FrameDecoder::Result::kError) {
            drop = true;
            protocol_error = true;
            why = conn.decoder.error();
            break;
          }
          if (!HandleFrame(conn, payload, &why)) {
            drop = true;
            protocol_error = true;
            break;
          }
          if (conn.out.size() > options_.max_out_bytes) {
            drop = true;
            protocol_error = true;
            why = "response queue overflow (client not reading)";
            break;
          }
        }
      }
      if (!drop && (pfd.revents & POLLOUT)) FlushWrites(conn);
      if (!drop && !conn.sock.valid()) drop = true;  // flush hit a dead peer
      if (!drop && !conn.out.empty()) FlushWrites(conn);
      if (drop) {
        if (protocol_error) NoteConnError(why);
        {
          const std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.connections_dropped;
        }
        conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
        --i;
        // fds no longer lines up with conns_, so stop processing this round.
        break;
      }
    }
  }
}

}  // namespace chaser::hub::remote

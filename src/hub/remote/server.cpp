#include "hub/remote/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "common/error.h"
#include "hub/remote/protocol.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace chaser::hub::remote {

namespace {

using net::AppendFrame;
using net::AppendVarint;

const char* CommandLabel(std::uint64_t cmd) {
  switch (static_cast<Command>(cmd)) {
    case Command::kPublishBatch: return "publish-batch";
    case Command::kTryPoll: return "try-poll";
    case Command::kAbandonPoll: return "abandon-poll";
    case Command::kSetFaultModel: return "set-fault-model";
    case Command::kClear: return "clear";
    case Command::kStats: return "stats";
    case Command::kDrainTransferLog: return "drain-transfer-log";
  }
  return "unknown";
}

/// Per-command dispatch latency. Handles are cached per command value
/// (atomics: several servers' loop threads may race the first lookup, and
/// GetHistogram returns the same histogram for the same name either way) —
/// the registry mutex is only walked on the first frame of each kind.
obs::Histogram& CommandHistogram(std::uint64_t cmd) {
  static std::atomic<obs::Histogram*> cached[8] = {};
  const std::size_t slot = (cmd >= 1 && cmd <= 7) ? cmd : 0;
  obs::Histogram* h = cached[slot].load(std::memory_order_acquire);
  if (h == nullptr) {
    h = &obs::Registry::Global().GetHistogram(
        obs::LabeledName("hub_cmd_ns", "cmd", CommandLabel(slot)),
        obs::LatencyBoundsNs());
    cached[slot].store(h, std::memory_order_release);
  }
  return *h;
}

/// Powers-of-four record counts: batch sizing is about order of magnitude.
std::vector<std::uint64_t> BatchBounds() {
  return {1, 4, 16, 64, 256, 1024};
}

void AppendOkFrame(std::string* out, const std::string& body) {
  std::string payload;
  AppendVarint(&payload, static_cast<std::uint64_t>(Status::kOk));
  payload.append(body);
  AppendFrame(out, payload);
}

void AppendErrorFrame(std::string* out, const std::string& message) {
  std::string payload;
  AppendVarint(&payload, static_cast<std::uint64_t>(Status::kError));
  AppendVarint(&payload, message.size());
  payload.append(message);
  AppendFrame(out, payload);
}

}  // namespace

HubServer::HubServer(Options options) : options_(std::move(options)) {}

HubServer::~HubServer() { Stop(); }

void HubServer::Start() {
  if (running()) return;
  listener_ = net::TcpListener::Bind(options_.host, options_.port);
  port_ = listener_.port();
  net::SetNonBlocking(listener_.fd());
  if (::pipe(wake_pipe_) != 0) {
    listener_.Close();
    throw ConfigError("hub server: pipe() failed");
  }
  net::SetNonBlocking(wake_pipe_[0]);
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void HubServer::Stop() {
  if (!running()) return;
  stop_requested_.store(true, std::memory_order_release);
  const char byte = 0;
  [[maybe_unused]] const ssize_t rc = ::write(wake_pipe_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
  conns_.clear();
  listener_.Close();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

ServerStats HubServer::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void HubServer::NoteConnError(const std::string& why) {
  static obs::Counter& errors =
      obs::Registry::Global().GetCounter("hub_conn_errors");
  errors.Inc();
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.conn_errors;
  (void)why;  // reason is surfaced through the dropped connection itself
}

void HubServer::NoteHelloError(const std::string& why) {
  static obs::Counter& errors =
      obs::Registry::Global().GetCounter("hub_hello_errors");
  errors.Inc();
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.hello_errors;
  (void)why;
}

void HubServer::FlushWrites(Connection& conn) {
  static obs::Counter& bytes_out =
      obs::Registry::Global().GetCounter("hub_bytes_out_total");
  while (!conn.out.empty()) {
    const ssize_t rc = ::send(conn.sock.fd(), conn.out.data(), conn.out.size(),
                              MSG_NOSIGNAL);
    if (rc > 0) {
      bytes_out.Inc(static_cast<std::uint64_t>(rc));
      conn.out.erase(0, static_cast<std::size_t>(rc));
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (rc < 0 && errno == EINTR) continue;
    conn.sock.Close();  // peer vanished; reaped by the loop
    return;
  }
}

bool HubServer::HandleFrame(Connection& conn, const std::string& payload,
                            std::string* why) {
  if (!conn.hello_done) {
    std::string error;
    if (!DecodeHello(payload, &error)) {
      NoteHelloError(error);
      AppendErrorFrame(&conn.out, error);
      FlushWrites(conn);  // best effort: tell the client why before dropping
      *why = "hello rejected: " + error;
      return false;
    }
    conn.hello_done = true;
    std::string body;
    AppendVarint(&body, kProtocolVersion);
    // Server wall clock at hello time: the client pairs this with its own
    // send/receive timestamps (Cristian's algorithm) to place its trace on
    // the hub's clock. Pre-PR-10 clients ignore the extra varint.
    AppendVarint(&body,
                 static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count()));
    AppendOkFrame(&conn.out, body);
    conn.session.SetFaultModel(options_.default_fault);
    return true;
  }

  std::size_t pos = 0;
  std::uint64_t cmd = 0;
  if (net::DecodeVarint(payload.data(), payload.size(), &pos, &cmd) !=
      net::DecodeStatus::kOk) {
    *why = "missing command byte";
    return false;
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.commands;
  }
  const std::uint64_t t0 = obs::MonotonicNanos();
  const bool ok = DispatchCommand(conn, payload, pos, cmd, why);
  CommandHistogram(cmd).Observe(obs::MonotonicNanos() - t0);
  return ok;
}

bool HubServer::DispatchCommand(Connection& conn, const std::string& payload,
                                std::size_t pos, std::uint64_t cmd,
                                std::string* why) {
  switch (static_cast<Command>(cmd)) {
    case Command::kPublishBatch: {
      std::uint64_t count = 0;
      if (net::DecodeVarint(payload.data(), payload.size(), &pos, &count) !=
          net::DecodeStatus::kOk) {
        *why = "malformed publish batch";
        return false;
      }
      std::vector<MessageTaintRecord> records;
      records.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        MessageTaintRecord record;
        if (!DecodeRecord(payload, &pos, &record)) {
          *why = "malformed publish record";
          return false;
        }
        records.push_back(std::move(record));
      }
      for (MessageTaintRecord& record : records) {
        conn.session.Publish(std::move(record));
      }
      static obs::Histogram& batch_records =
          obs::Registry::Global().GetHistogram("hub_publish_batch_records",
                                               BatchBounds());
      batch_records.Observe(count);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.records_published += count;
      }
      AppendOkFrame(&conn.out, "");
      return true;
    }
    case Command::kTryPoll: {
      MessageId id;
      RecvContext ctx;
      if (!DecodeMessageId(payload, &pos, &id) ||
          !DecodeRecvContext(payload, &pos, &ctx)) {
        *why = "malformed poll";
        return false;
      }
      PollAttempt attempt = conn.session.TryPoll(id, ctx);
      std::string body;
      AppendVarint(&body, static_cast<std::uint64_t>(attempt.status));
      if (attempt.status == PollStatus::kHit) {
        EncodeRecord(&body, *attempt.record);
      }
      AppendOkFrame(&conn.out, body);
      return true;
    }
    case Command::kAbandonPoll: {
      MessageId id;
      if (!DecodeMessageId(payload, &pos, &id)) {
        *why = "malformed abandon";
        return false;
      }
      conn.session.AbandonPoll(id);
      AppendOkFrame(&conn.out, "");
      return true;
    }
    case Command::kSetFaultModel: {
      HubFaultModel model;
      if (!DecodeFaultModel(payload, &pos, &model)) {
        *why = "malformed fault model";
        return false;
      }
      conn.session.SetFaultModel(model);
      AppendOkFrame(&conn.out, "");
      return true;
    }
    case Command::kClear: {
      conn.session.Clear();
      AppendOkFrame(&conn.out, "");
      return true;
    }
    case Command::kStats: {
      std::string body;
      EncodeStats(&body, conn.session.stats());
      AppendOkFrame(&conn.out, body);
      return true;
    }
    case Command::kDrainTransferLog: {
      const std::vector<TransferLogEntry> log = conn.session.DrainTransferLog();
      std::string body;
      AppendVarint(&body, log.size());
      for (const TransferLogEntry& entry : log) EncodeTransferEntry(&body, entry);
      AppendOkFrame(&conn.out, body);
      return true;
    }
  }
  // Unknown commands get a per-command error (forward compatibility) rather
  // than a dropped connection: the framing is intact, only the verb is new.
  AppendErrorFrame(&conn.out, "unknown command " + std::to_string(cmd));
  return true;
}

void HubServer::Loop() {
  static obs::Counter& bytes_in =
      obs::Registry::Global().GetCounter("hub_bytes_in_total");
  static obs::Gauge& conns_open =
      obs::Registry::Global().GetGauge("hub_connections_open");
  static obs::Gauge& out_depth =
      obs::Registry::Global().GetGauge("hub_out_buffer_bytes");
  std::vector<pollfd> fds;
  char buf[64 * 1024];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({listener_.fd(), POLLIN, 0});
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const auto& conn : conns_) {
      short events = POLLIN;
      if (!conn->out.empty()) events |= POLLOUT;
      fds.push_back({conn->sock.fd(), events, 0});
    }
    // Connections accepted below are NOT in fds; only this many were polled.
    const std::size_t polled_conns = conns_.size();
    const int rc = ::poll(fds.data(), fds.size(), 500);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // poll itself failed; shut down rather than spin
    }
    if (fds[1].revents & POLLIN) {
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int cfd = listener_.Accept();
        if (cfd < 0) break;
        net::SetNonBlocking(cfd);
        auto conn = std::make_unique<Connection>();
        conn->sock = net::TcpSocket(cfd);
        conns_.push_back(std::move(conn));
        conns_open.Add(1);
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.connections_accepted;
      }
    }
    for (std::size_t i = 0; i < polled_conns; ++i) {
      Connection& conn = *conns_[i];
      const pollfd& pfd = fds[i + 2];
      bool drop = false;
      bool protocol_error = false;
      std::string why;
      if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) drop = true;
      if (!drop && (pfd.revents & POLLIN)) {
        for (;;) {
          const ssize_t n = ::recv(conn.sock.fd(), buf, sizeof(buf), 0);
          if (n > 0) {
            bytes_in.Inc(static_cast<std::uint64_t>(n));
            conn.decoder.Feed(buf, static_cast<std::size_t>(n));
            if (static_cast<ssize_t>(sizeof(buf)) != n) break;
            continue;
          }
          if (n == 0) {
            drop = true;  // orderly EOF; a torn trailing frame is just dropped
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR) continue;
          drop = true;
          break;
        }
        std::string payload;
        while (!drop) {
          const net::FrameDecoder::Result r = conn.decoder.Next(&payload);
          if (r == net::FrameDecoder::Result::kNeedMore) break;
          if (r == net::FrameDecoder::Result::kError) {
            drop = true;
            protocol_error = true;
            why = conn.decoder.error();
            break;
          }
          if (!HandleFrame(conn, payload, &why)) {
            drop = true;
            // A rejected hello was already counted by NoteHelloError —
            // hello_done still false here — so only post-hello failures
            // land in conn_errors. The two counters partition the drops.
            protocol_error = conn.hello_done;
            break;
          }
          if (conn.out.size() > options_.max_out_bytes) {
            drop = true;
            protocol_error = true;
            why = "response queue overflow (client not reading)";
            break;
          }
        }
      }
      if (!drop && (pfd.revents & POLLOUT)) FlushWrites(conn);
      if (!drop && !conn.sock.valid()) drop = true;  // flush hit a dead peer
      if (!drop && !conn.out.empty()) FlushWrites(conn);
      if (drop) {
        if (protocol_error) NoteConnError(why);
        {
          const std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.connections_dropped;
        }
        conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
        conns_open.Add(-1);
        --i;
        // fds no longer lines up with conns_, so stop processing this round.
        break;
      }
    }
    // Backpressure visibility: total queued-but-unsent response bytes across
    // this server's connections, published as a delta against the shared
    // gauge (see published_out_bytes_).
    std::int64_t out_total = 0;
    for (const auto& conn : conns_) {
      out_total += static_cast<std::int64_t>(conn->out.size());
    }
    out_depth.Add(out_total - published_out_bytes_);
    published_out_bytes_ = out_total;
  }
  // Shutdown: retire this server's contribution to the shared gauges.
  out_depth.Add(-published_out_bytes_);
  published_out_bytes_ = 0;
  conns_open.Add(-static_cast<std::int64_t>(conns_.size()));
}

}  // namespace chaser::hub::remote

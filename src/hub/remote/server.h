// HubServer: the engine inside chaser_hubd (and the loopback tests).
//
// A single-threaded poll(2) event loop on a background thread owns every
// connection. Each connection gets its *own* TaintHub session: shard workers
// Clear() the hub between trials, and sessions keep one worker's reset from
// wiping another's in-flight records. (A shared hub across workers would
// also destroy per-trial determinism — hub clocks would interleave.)
//
// Robustness rules (ISSUE 7 satellite): a malformed frame, an oversized or
// zero-length frame, a bad hello, or an out-queue overflow drops *that
// connection only* and the server never aborts. Post-hello protocol
// violations count in stats().conn_errors / `hub_conn_errors`; rejected
// hellos count separately in stats().hello_errors / `hub_hello_errors`, so
// protocol-version skew is distinguishable from corruption.
//
// Backpressure: responses queue in a bounded per-connection buffer
// (Options::max_out_bytes). A client that stops reading while issuing
// commands overflows the bound and is dropped; its untainted polls surface
// at the worker as retry-exhausted `taint_lost`, the same path as the
// HubFaultModel outage.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hub/tainthub.h"
#include "net/frame.h"
#include "net/socket.h"

namespace chaser::hub::remote {

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_dropped = 0;  // peer EOF + error drops
  std::uint64_t conn_errors = 0;          // protocol violations after hello
  std::uint64_t hello_errors = 0;         // rejected hellos (version skew)
  std::uint64_t commands = 0;             // frames dispatched after hello
  std::uint64_t records_published = 0;    // across all batches and sessions
};

class HubServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral; see port() after Start()
    /// Fault model pre-installed in every new session (chaser_hubd
    /// --hub-fault). Clients may override per-connection.
    HubFaultModel default_fault;
    /// Bound on one connection's queued-but-unsent response bytes.
    std::size_t max_out_bytes = 2 * net::kMaxFramePayload;
  };

  explicit HubServer(Options options);
  ~HubServer();

  HubServer(const HubServer&) = delete;
  HubServer& operator=(const HubServer&) = delete;

  /// Bind, listen, and launch the event loop thread. Throws ConfigError if
  /// the bind fails. Idempotent Stop() via destructor.
  void Start();
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (after Start(); resolves ephemeral binds).
  std::uint16_t port() const { return port_; }

  ServerStats stats() const;

 private:
  struct Connection {
    net::TcpSocket sock;
    net::FrameDecoder decoder;
    std::string out;        // queued response bytes not yet written
    bool hello_done = false;
    TaintHub session;       // per-connection hub state
  };

  void Loop();
  /// Returns false if the connection must be dropped as a protocol error
  /// (fills *why for the log).
  bool HandleFrame(Connection& conn, const std::string& payload,
                   std::string* why);
  /// Post-hello command dispatch, timed into hub_cmd_ns{cmd=...}.
  bool DispatchCommand(Connection& conn, const std::string& payload,
                       std::size_t pos, std::uint64_t cmd, std::string* why);
  void FlushWrites(Connection& conn);
  void NoteConnError(const std::string& why);
  /// A rejected hello is version/deploy skew, not corruption: counted in
  /// stats().hello_errors and `hub_hello_errors`, never in conn_errors.
  void NoteHelloError(const std::string& why);

  Options options_;
  net::TcpListener listener_;
  std::uint16_t port_ = 0;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: Stop() wakes the poll loop
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::vector<std::unique_ptr<Connection>> conns_;
  /// Last out-buffer total this server pushed into the shared
  /// hub_out_buffer_bytes gauge; deltas keep several servers (loopback
  /// tests) from clobbering each other's contribution.
  std::int64_t published_out_bytes_ = 0;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace chaser::hub::remote

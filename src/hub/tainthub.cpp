#include "hub/tainthub.h"

#include <algorithm>

#include "obs/metrics.h"

namespace chaser::hub {

void TaintHub::AccountLoss(const MessageTaintRecord& record) {
  ++stats_.taint_lost;
  stats_.lost_taint_bytes += record.TaintedByteCount();
}

void TaintHub::Publish(MessageTaintRecord record) {
  static obs::Counter& publishes =
      obs::Registry::Global().GetCounter("hub_publish_total");
  publishes.Inc();
  ++clock_;
  ++stats_.publishes;
  if (fault_model_.Active()) {
    // A publish during the hard outage window never reaches the hub; outside
    // it, the drop tape may still lose it. Either way the taint is gone —
    // the receiver will see a definitive miss, indistinguishable from a
    // clean message (which is exactly the silent-loss mode being modelled).
    if (InOutage() || (fault_model_.publish_drop_prob > 0.0 &&
                       fault_rng_.Bernoulli(fault_model_.publish_drop_prob))) {
      ++stats_.publish_drops;
      AccountLoss(record);
      return;
    }
  }
  const std::uint64_t visible_at = clock_ + fault_model_.visibility_delay;
  records_[record.id.Key()] = Pending{std::move(record), visible_at};
}

PollAttempt TaintHub::TryPoll(const MessageId& id, const RecvContext& ctx) {
  static obs::Counter& polls =
      obs::Registry::Global().GetCounter("hub_poll_total");
  polls.Inc();
  ++clock_;
  ++stats_.polls;
  if (fault_model_.Active() && InOutage()) {
    ++stats_.unavailable_polls;
    return {PollStatus::kUnavailable, std::nullopt};
  }
  const auto it = records_.find(id.Key());
  if (it == records_.end()) return {PollStatus::kMiss, std::nullopt};
  if (it->second.visible_at > clock_) {
    // Published but still inside the hub's processing lag: the receiver can
    // retry (each attempt advances the clock toward visibility).
    ++stats_.unavailable_polls;
    return {PollStatus::kUnavailable, std::nullopt};
  }
  MessageTaintRecord record = std::move(it->second.record);
  records_.erase(it);
  ++stats_.hits;
  const std::uint64_t tainted = record.TaintedByteCount();
  stats_.applied_bytes += tainted;
  transfers_.push_back({.id = record.id,
                        .tainted_bytes = tainted,
                        .payload_bytes = record.byte_masks.size(),
                        .src_vaddr = record.src_vaddr,
                        .dest_vaddr = ctx.dest_vaddr,
                        .send_instret = record.send_instret,
                        .recv_instret = ctx.recv_instret,
                        .hub_seq = next_hub_seq_++});
  return {PollStatus::kHit, std::move(record)};
}

std::optional<MessageTaintRecord> HubService::Poll(const MessageId& id,
                                                   const RecvContext& ctx) {
  PollAttempt attempt = TryPoll(id, ctx);
  if (attempt.status != PollStatus::kHit) return std::nullopt;
  return std::move(attempt.record);
}

void TaintHub::AbandonPoll(const MessageId& id) {
  ++stats_.abandoned_polls;
  const auto it = records_.find(id.Key());
  if (it == records_.end()) return;  // clean message (or publish already lost)
  // The record existed but the receiver gave up waiting: real taint loss.
  // Evict it so it cannot alias a later message with a recycled identity.
  AccountLoss(it->second.record);
  records_.erase(it);
}

void TaintHub::SetFaultModel(const HubFaultModel& model) {
  fault_model_ = model;
  fault_rng_ = Rng(fault_model_.seed);
}

std::vector<TransferLogEntry> TaintHub::transfer_log() const {
  std::vector<TransferLogEntry> log = transfers_;
  std::sort(log.begin(), log.end(),
            [](const TransferLogEntry& a, const TransferLogEntry& b) {
              return a.hub_seq < b.hub_seq;
            });
  return log;
}

std::vector<TransferLogEntry> TaintHub::DrainTransferLog() {
  std::vector<TransferLogEntry> log = std::move(transfers_);
  transfers_.clear();
  std::sort(log.begin(), log.end(),
            [](const TransferLogEntry& a, const TransferLogEntry& b) {
              return a.hub_seq < b.hub_seq;
            });
  return log;
}

bool TaintHub::SawTransfer(Rank src, Rank dest) const {
  for (const TransferLogEntry& t : transfers_) {
    if (t.id.src == src && t.id.dest == dest) return true;
  }
  return false;
}

void TaintHub::Clear() {
  records_.clear();
  transfers_.clear();
  next_hub_seq_ = 0;
  stats_ = HubStats{};
  // Restart the hub clock and the drop tape: every trial (the campaign
  // drivers Clear() via MessageHooks::OnJobStart) sees the same
  // deterministic degradation, which keeps serial == parallel bit-identity.
  clock_ = 0;
  fault_rng_ = Rng(fault_model_.seed);
}

}  // namespace chaser::hub

#include "hub/tainthub.h"

namespace chaser::hub {

void TaintHub::Publish(MessageTaintRecord record) {
  ++stats_.publishes;
  records_[record.id.Key()] = std::move(record);
}

std::optional<MessageTaintRecord> TaintHub::Poll(const MessageId& id) {
  ++stats_.polls;
  const auto it = records_.find(id.Key());
  if (it == records_.end()) return std::nullopt;
  MessageTaintRecord record = std::move(it->second);
  records_.erase(it);
  ++stats_.hits;
  const std::uint64_t tainted = record.TaintedByteCount();
  stats_.applied_bytes += tainted;
  transfers_.push_back({record.id, tainted});
  return record;
}

bool TaintHub::SawTransfer(Rank src, Rank dest) const {
  for (const TransferLogEntry& t : transfers_) {
    if (t.id.src == src && t.id.dest == dest) return true;
  }
  return false;
}

void TaintHub::Clear() {
  records_.clear();
  transfers_.clear();
  stats_ = HubStats{};
}

}  // namespace chaser::hub

#include "hub/tainthub.h"

#include <algorithm>

namespace chaser::hub {

void TaintHub::Publish(MessageTaintRecord record) {
  ++stats_.publishes;
  records_[record.id.Key()] = std::move(record);
}

std::optional<MessageTaintRecord> TaintHub::Poll(const MessageId& id,
                                                 const RecvContext& ctx) {
  ++stats_.polls;
  const auto it = records_.find(id.Key());
  if (it == records_.end()) return std::nullopt;
  MessageTaintRecord record = std::move(it->second);
  records_.erase(it);
  ++stats_.hits;
  const std::uint64_t tainted = record.TaintedByteCount();
  stats_.applied_bytes += tainted;
  transfers_.push_back({.id = record.id,
                        .tainted_bytes = tainted,
                        .payload_bytes = record.byte_masks.size(),
                        .src_vaddr = record.src_vaddr,
                        .dest_vaddr = ctx.dest_vaddr,
                        .send_instret = record.send_instret,
                        .recv_instret = ctx.recv_instret,
                        .hub_seq = next_hub_seq_++});
  return record;
}

std::vector<TransferLogEntry> TaintHub::transfer_log() const {
  std::vector<TransferLogEntry> log = transfers_;
  std::sort(log.begin(), log.end(),
            [](const TransferLogEntry& a, const TransferLogEntry& b) {
              return a.hub_seq < b.hub_seq;
            });
  return log;
}

std::vector<TransferLogEntry> TaintHub::DrainTransferLog() {
  std::vector<TransferLogEntry> log = std::move(transfers_);
  transfers_.clear();
  std::sort(log.begin(), log.end(),
            [](const TransferLogEntry& a, const TransferLogEntry& b) {
              return a.hub_seq < b.hub_seq;
            });
  return log;
}

bool TaintHub::SawTransfer(Rank src, Rank dest) const {
  for (const TransferLogEntry& t : transfers_) {
    if (t.id.src == src && t.id.dest == dest) return true;
  }
  return false;
}

void TaintHub::Clear() {
  records_.clear();
  transfers_.clear();
  next_hub_seq_ = 0;
  stats_ = HubStats{};
}

}  // namespace chaser::hub

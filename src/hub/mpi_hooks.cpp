#include "hub/mpi_hooks.h"

#include <algorithm>

#include "obs/profiler.h"
#include "taint/taint.h"
#include "vm/memory.h"

namespace chaser::hub {

void ChaserMpiHooks::OnSend(vm::Vm& sender, const mpi::Envelope& env,
                            GuestAddr buf) {
  auto& taint = sender.taint();
  if (!taint.enabled()) return;
  // Elastic early-out: with no taint anywhere in the process every mask is
  // zero, so the whole scan (and the hub) can be skipped exactly.
  if (!taint.Active()) return;

  const obs::ScopedPhase obs_scope(obs::Phase::kTaintPropagate);
  const std::uint64_t bytes = env.payload.size();
  std::vector<std::uint8_t> masks(bytes, 0);
  bool any = false;
  // Page-at-a-time: translate once per guest page and read the shadow page
  // directly, instead of a translation + shadow hash lookup per byte.
  std::uint64_t i = 0;
  while (i < bytes) {
    const GuestAddr va = buf + i;
    std::uint64_t chunk =
        std::min<std::uint64_t>(bytes - i, vm::kPageSize - (va & vm::kPageMask));
    const auto paddr = sender.memory().Translate(va);
    if (!paddr) {  // runtime already validated; stay defensive
      i += chunk;
      continue;
    }
    const std::uint64_t shadow_off = *paddr & (taint::kShadowPageSize - 1);
    chunk = std::min(chunk, taint::kShadowPageSize - shadow_off);
    if (const std::uint8_t* shadow = taint.PeekShadowPage(*paddr)) {
      for (std::uint64_t j = 0; j < chunk; ++j) {
        const std::uint8_t m = shadow[shadow_off + j];
        masks[i + j] = m;
        any = any || (m != 0);
      }
    }
    i += chunk;
  }
  if (!any) return;  // clean message: no hub operation at all

  MessageTaintRecord record;
  record.id = {env.src, env.dest, env.tag, env.seq};
  record.byte_masks = std::move(masks);
  record.src_vaddr = buf;
  record.send_instret = sender.instret();
  const obs::ScopedPhase obs_publish(obs::Phase::kHubPublish);
  hub_->Publish(std::move(record));
}

void ChaserMpiHooks::OnRecvComplete(vm::Vm& receiver, const mpi::Envelope& env,
                                    GuestAddr buf) {
  auto& taint = receiver.taint();
  if (!taint.enabled()) return;

  const MessageId id{env.src, env.dest, env.tag, env.seq};
  const RecvContext ctx{.dest_vaddr = buf, .recv_instret = receiver.instret()};
  // Bounded poll deadline: an unavailable hub (outage / visibility lag) is
  // retried up to the fault model's budget; a definitive miss never is.
  PollAttempt attempt = [&] {
    const obs::ScopedPhase obs_poll(obs::Phase::kHubPoll);
    PollAttempt a = hub_->TryPoll(id, ctx);
    for (std::uint64_t retry = hub_->fault_model().poll_retries;
         a.status == PollStatus::kUnavailable && retry > 0; --retry) {
      a = hub_->TryPoll(id, ctx);
    }
    return a;
  }();
  if (attempt.status == PollStatus::kUnavailable) {
    // Deadline exhausted: proceed untainted — the payload bytes arrived, but
    // their shadow is lost. The hub accounts the loss (RunRecord::taint_lost).
    hub_->AbandonPoll(id);
    return;
  }
  if (attempt.status == PollStatus::kMiss) return;  // message was clean

  const obs::ScopedPhase obs_scope(obs::Phase::kTaintPropagate);
  const MessageTaintRecord& record = *attempt.record;
  const std::uint64_t bytes =
      std::min<std::uint64_t>(record.byte_masks.size(), env.payload.size());
  for (std::uint64_t i = 0; i < bytes; ++i) {
    const std::uint8_t m = record.byte_masks[i];
    if (m == 0) continue;
    const auto paddr = receiver.memory().Translate(buf + i);
    if (paddr) taint.SetMemTaintByte(*paddr, m);
  }
}

}  // namespace chaser::hub

// TraceSpool: streaming binary trace sink + reader (propagation analysis).
//
// The in-memory TraceLog caps stored events (2^17 by default) so CLAMR-scale
// traces don't exhaust memory — which silently loses exactly the data the
// paper's Figs. 7-9 post-analysis needs. A TraceSpool removes the cap by
// streaming every event to disk as it happens:
//
//   <dir>/rank-<R>.seg   per-rank segment: header, varint-encoded records
//                        (event + taint-sample), footer with exact counts,
//                        fixed-size trailer locating the footer
//   <dir>/hub.seg        TaintHub cross-rank transfer records (hub_seq order)
//   <dir>/meta.txt       key=value trial metadata (outcome, seed, app, ...)
//
// Records are compact: one tag byte, then LEB128 varints with the instret
// delta-encoded against the previous record of the same stream, so a steady
// trace costs a few bytes per event instead of sizeof(TraceEvent). A segment
// whose process died mid-trial simply lacks the footer/trailer; the reader
// detects that, decodes the intact prefix and reports truncated() — a crash
// never loses the events written before it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/trace.h"
#include "hub/tainthub.h"

namespace chaser::analysis {

// ---- Varint codec (unsigned LEB128 + zigzag for signed fields) ---------------

void AppendVarint(std::string* out, std::uint64_t v);
/// Decode one varint at `*pos`; advances `*pos`. Returns nullopt on
/// truncated/overlong input (leaves `*pos` unspecified).
std::optional<std::uint64_t> DecodeVarint(const std::string& buf,
                                          std::size_t* pos);
std::uint64_t ZigZagEncode(std::int64_t v);
std::int64_t ZigZagDecode(std::uint64_t v);

// ---- Records ------------------------------------------------------------------

/// One decoded spool record (tagged union, tag mirrors the on-disk byte).
struct SpoolRecord {
  enum class Type : std::uint8_t { kEvent = 0, kSample = 1, kTransfer = 2 };
  Type type = Type::kEvent;
  core::TraceEvent event;
  core::TaintSample sample;
  hub::TransferLogEntry transfer;
};

/// Exact per-segment totals from the footer (valid only when the segment was
/// finished cleanly; a truncated segment reports counts from the decode).
struct SegmentFooter {
  std::uint64_t records = 0;
  std::uint64_t events = 0;
  std::uint64_t samples = 0;
  std::uint64_t transfers = 0;
  std::uint64_t kind_counts[core::kNumTraceEventKinds] = {};
  std::uint64_t min_instret = 0;
  std::uint64_t max_instret = 0;
};

// ---- Writer -------------------------------------------------------------------

/// Streaming spool writer. Implements core::TraceSink so a TraceLog can tee
/// into it (`trace_log().set_sink(&spool)`); events route to the per-rank
/// segment named by TraceEvent::rank. Not thread-safe: one spool belongs to
/// one trial, and a trial executes on one thread (parallel campaigns give
/// every worker its own engine and its own spool).
class TraceSpool final : public core::TraceSink {
 public:
  /// Creates `dir` (and parents). Throws ConfigError if that fails.
  explicit TraceSpool(std::string dir);
  ~TraceSpool() override;  // Finish()es, swallowing errors

  TraceSpool(const TraceSpool&) = delete;
  TraceSpool& operator=(const TraceSpool&) = delete;

  void OnTraceEvent(const core::TraceEvent& event) override;
  void AddSample(const core::TaintSample& sample);
  void AddTransfer(const hub::TransferLogEntry& entry);
  /// Remembered until Finish(), then written to meta.txt in key order.
  void SetMeta(const std::string& key, const std::string& value);

  /// Write footers/trailers, close every segment, write meta.txt.
  /// Idempotent; adding records after Finish throws ConfigError.
  void Finish();

  const std::string& dir() const { return dir_; }
  std::uint64_t total_records() const { return total_records_; }

 private:
  struct Segment;
  Segment& SegmentFor(Rank rank, bool hub);

  std::string dir_;
  std::map<std::pair<bool, Rank>, std::unique_ptr<Segment>> segments_;
  std::map<std::string, std::string> meta_;
  std::uint64_t total_records_ = 0;
  bool finished_ = false;
};

// ---- Reader -------------------------------------------------------------------

/// Iterates one segment file. Loads the file once, then decodes records on
/// demand. Throws ConfigError if the file is missing or the header magic is
/// wrong; a missing/corrupt footer switches to truncated mode instead of
/// throwing (the intact record prefix is still served).
class SegmentReader {
 public:
  explicit SegmentReader(const std::string& path);

  Rank rank() const { return rank_; }
  bool is_hub() const { return is_hub_; }
  /// True if the segment lacks a valid footer/trailer (writer died) or a
  /// record failed to decode before the footer.
  bool truncated() const { return truncated_; }
  /// Footer totals; nullopt when truncated.
  const std::optional<SegmentFooter>& footer() const { return footer_; }

  /// Decode the next record. Returns false at the end of the record region
  /// (or, in truncated mode, at the first undecodable byte — which then
  /// also sets truncated()).
  bool Next(SpoolRecord* out);

 private:
  std::string buf_;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;  // one past the last record byte
  Rank rank_ = -1;
  bool is_hub_ = false;
  bool truncated_ = false;
  std::optional<SegmentFooter> footer_;
  std::uint64_t prev_event_instret_ = 0;
  std::uint64_t prev_sample_instret_ = 0;
};

/// Everything one trial spooled, decoded and grouped: events/samples sorted
/// by (rank, emission order), transfers in hub_seq order.
struct TrialSpool {
  std::vector<core::TraceEvent> events;
  std::vector<core::TaintSample> samples;
  std::vector<hub::TransferLogEntry> transfers;
  std::map<std::string, std::string> meta;
  bool truncated = false;  // any segment truncated
};

/// True if `dir` looks like a trial spool (contains at least one .seg file).
bool IsTrialSpoolDir(const std::string& dir);

/// Load a whole trial directory. Throws ConfigError if `dir` has no
/// segments at all; truncated segments are folded in with a flag, not an
/// error.
TrialSpool ReadTrialSpool(const std::string& dir);

}  // namespace chaser::analysis

#include "analysis/propagation.h"

#include <algorithm>
#include <set>

#include "analysis/spool.h"
#include "common/error.h"
#include "common/strings.h"
#include "guest/isa.h"

namespace chaser::analysis {

namespace {

/// [lo1, hi1) and [lo2, hi2) overlap, with `gap` bytes of slack.
bool RangesNear(GuestAddr lo1, GuestAddr hi1, GuestAddr lo2, GuestAddr hi2,
                GuestAddr gap) {
  return lo1 < hi2 + gap && lo2 < hi1 + gap;
}

GuestAddr EventLo(const core::TraceEvent& e) { return e.vaddr; }
GuestAddr EventHi(const core::TraceEvent& e) {
  return e.vaddr + std::max<std::uint32_t>(e.size, 1);
}

bool IsMemEvent(const core::TraceEvent& e) {
  return e.kind == core::TraceEventKind::kTaintedRead ||
         e.kind == core::TraceEventKind::kTaintedWrite;
}

}  // namespace

TraceDataset DatasetFromSpool(const TrialSpool& spool) {
  return TraceDataset{spool.events, spool.samples, spool.transfers};
}

std::string GraphNode::Label() const {
  switch (kind) {
    case NodeKind::kInjection:
      return StrFormat("INJECT rank %d\\n@%llu eip=%s", rank,
                       static_cast<unsigned long long>(first_instret),
                       Hex64(guest::PcToAddr(addr_lo)).c_str());
    case NodeKind::kOutput:
      return StrFormat("OUTPUT rank %d fd %d\\n%llu corrupted bytes", rank, fd,
                       static_cast<unsigned long long>(bytes));
    case NodeKind::kEpisode:
      return StrFormat("rank %d\\n%s..%s\\n@%llu..%llu (%lluR/%lluW)", rank,
                       Hex64(addr_lo).c_str(), Hex64(addr_hi).c_str(),
                       static_cast<unsigned long long>(first_instret),
                       static_cast<unsigned long long>(last_instret),
                       static_cast<unsigned long long>(reads),
                       static_cast<unsigned long long>(writes));
  }
  return "?";
}

std::string ChainStep::Describe() const {
  switch (what) {
    case What::kInjection:
      return StrFormat("INJECT   rank %d @instret %llu eip=%s flip-mask=%s",
                       event.rank, static_cast<unsigned long long>(event.instret),
                       Hex64(guest::PcToAddr(event.pc)).c_str(),
                       Hex64(event.taint).c_str());
    case What::kWrite:
      return StrFormat("T-WRITE  rank %d @instret %llu vaddr=%s size=%u value=%s",
                       event.rank, static_cast<unsigned long long>(event.instret),
                       Hex64(event.vaddr).c_str(), event.size,
                       Hex64(event.value).c_str());
    case What::kRead:
      return StrFormat("T-READ   rank %d @instret %llu vaddr=%s size=%u value=%s",
                       event.rank, static_cast<unsigned long long>(event.instret),
                       Hex64(event.vaddr).c_str(), event.size,
                       Hex64(event.value).c_str());
    case What::kTransfer:
      return StrFormat(
          "TRANSFER rank %d -> rank %d tag %lld (%llu/%llu tainted bytes, "
          "hub seq %llu)",
          transfer.id.src, transfer.id.dest,
          static_cast<long long>(transfer.id.tag),
          static_cast<unsigned long long>(transfer.tainted_bytes),
          static_cast<unsigned long long>(transfer.payload_bytes),
          static_cast<unsigned long long>(transfer.hub_seq));
    case What::kOutput:
      return StrFormat("OUTPUT   rank %d fd %d offset %llu byte=0x%02llx "
                       "(corrupted output byte)",
                       event.rank, event.fd,
                       static_cast<unsigned long long>(event.stream_off),
                       static_cast<unsigned long long>(event.value));
  }
  return "?";
}

std::string RootCauseChain::Render() const {
  std::string out = StrFormat(
      "root cause chain: %zu steps, %zu MPI transfer(s) crossed, %s\n",
      steps.size(), transfers_crossed,
      complete ? "complete (reached the injection)" : "INCOMPLETE");
  for (std::size_t i = 0; i < steps.size(); ++i) {
    out += StrFormat("  %2zu. %s\n", i + 1, steps[i].Describe().c_str());
  }
  return out;
}

int PropagationGraph::AddNode(GraphNode node) {
  node.id = static_cast<int>(nodes_.size());
  nodes_.push_back(node);
  return node.id;
}

void PropagationGraph::AddEdge(int from, int to, EdgeKind kind,
                               std::uint64_t bytes) {
  if (from < 0 || to < 0 || from == to) return;
  for (GraphEdge& e : edges_) {
    if (e.from == from && e.to == to && e.kind == kind) {
      e.bytes += bytes;
      return;
    }
  }
  edges_.push_back({from, to, kind, bytes});
}

PropagationGraph PropagationGraph::Build(TraceDataset dataset,
                                         GraphOptions options) {
  PropagationGraph g;
  g.data_ = std::move(dataset);
  g.options_ = options;
  std::sort(g.data_.transfers.begin(), g.data_.transfers.end(),
            [](const hub::TransferLogEntry& a, const hub::TransferLogEntry& b) {
              return a.hub_seq < b.hub_seq;
            });

  const std::vector<core::TraceEvent>& events = g.data_.events;
  g.event_node_.assign(events.size(), -1);
  for (std::size_t i = 0; i < events.size(); ++i) {
    g.rank_events_[events[i].rank].push_back(i);
  }
  for (auto& [rank, bucket] : g.rank_events_) {
    std::stable_sort(bucket.begin(), bucket.end(),
                     [&](std::size_t a, std::size_t b) {
                       return events[a].instret < events[b].instret;
                     });
  }

  // Pass 1: node construction (injections, episodes, output streams).
  std::map<Rank, std::vector<int>> rank_episodes;
  std::map<Rank, int> rank_injection;  // first injection node per rank
  std::map<std::pair<Rank, int>, int> output_nodes;
  for (const auto& [rank, bucket] : g.rank_events_) {
    for (const std::size_t idx : bucket) {
      const core::TraceEvent& e = events[idx];
      switch (e.kind) {
        case core::TraceEventKind::kInjection: {
          const int id = g.AddNode({.kind = NodeKind::kInjection, .rank = rank,
                                    .addr_lo = e.pc, .addr_hi = e.pc,
                                    .first_instret = e.instret,
                                    .last_instret = e.instret});
          rank_injection.emplace(rank, id);  // keep the first
          g.event_node_[idx] = id;
          break;
        }
        case core::TraceEventKind::kTaintedRead:
        case core::TraceEventKind::kTaintedWrite: {
          int found = -1;
          for (const int nid : rank_episodes[rank]) {
            GraphNode& n = g.nodes_[static_cast<std::size_t>(nid)];
            if (RangesNear(EventLo(e), EventHi(e), n.addr_lo, n.addr_hi,
                           options.addr_gap) &&
                e.instret - n.last_instret <= options.time_gap) {
              found = nid;
              break;
            }
          }
          if (found < 0) {
            found = g.AddNode({.kind = NodeKind::kEpisode, .rank = rank,
                               .addr_lo = EventLo(e), .addr_hi = EventHi(e),
                               .first_instret = e.instret,
                               .last_instret = e.instret});
            rank_episodes[rank].push_back(found);
          }
          GraphNode& n = g.nodes_[static_cast<std::size_t>(found)];
          n.addr_lo = std::min(n.addr_lo, EventLo(e));
          n.addr_hi = std::max(n.addr_hi, EventHi(e));
          n.last_instret = std::max(n.last_instret, e.instret);
          if (e.kind == core::TraceEventKind::kTaintedRead) ++n.reads;
          else ++n.writes;
          g.event_node_[idx] = found;
          break;
        }
        case core::TraceEventKind::kTaintedOutput: {
          const auto key = std::make_pair(rank, e.fd);
          auto it = output_nodes.find(key);
          if (it == output_nodes.end()) {
            const int id = g.AddNode({.kind = NodeKind::kOutput, .rank = rank,
                                      .first_instret = e.instret,
                                      .last_instret = e.instret, .fd = e.fd});
            it = output_nodes.emplace(key, id).first;
          }
          GraphNode& n = g.nodes_[static_cast<std::size_t>(it->second)];
          n.last_instret = std::max(n.last_instret, e.instret);
          ++n.bytes;
          g.event_node_[idx] = it->second;
          break;
        }
        case core::TraceEventKind::kInstruction:
          break;  // ablation-mode noise; not part of the graph
      }
    }
  }

  // Pass 2: intra-rank dataflow edges. A tainted write is fed by the most
  // recent tainted read on its rank; the first write with no prior read is
  // fed by the rank's injection (the fault is still register-resident).
  for (const auto& [rank, bucket] : g.rank_events_) {
    int last_read_node = -1;
    for (const std::size_t idx : bucket) {
      const core::TraceEvent& e = events[idx];
      if (e.kind == core::TraceEventKind::kTaintedRead) {
        last_read_node = g.event_node_[idx];
      } else if (e.kind == core::TraceEventKind::kTaintedWrite) {
        if (last_read_node >= 0) {
          g.AddEdge(last_read_node, g.event_node_[idx], EdgeKind::kFlow, e.size);
        } else {
          const auto inj = rank_injection.find(rank);
          if (inj != rank_injection.end()) {
            g.AddEdge(inj->second, g.event_node_[idx], EdgeKind::kFlow, e.size);
          }
        }
      }
    }
  }

  // Pass 3: cross-rank transfer edges, anchored on the hub's buffer
  // addresses. Missing anchors fall back to the nearest episode in time; a
  // receiver that never touched the landed taint still gets a landing node
  // so the spread stays visible in the graph.
  for (const hub::TransferLogEntry& t : g.data_.transfers) {
    const GuestAddr src_lo = t.src_vaddr;
    const GuestAddr src_hi = t.src_vaddr + std::max<std::uint64_t>(t.payload_bytes, 1);
    const GuestAddr dst_lo = t.dest_vaddr;
    const GuestAddr dst_hi = t.dest_vaddr + std::max<std::uint64_t>(t.payload_bytes, 1);

    int from = -1;
    int from_fallback = -1;
    if (const auto it = g.rank_events_.find(t.id.src); it != g.rank_events_.end()) {
      for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
        const core::TraceEvent& e = events[*rit];
        if (e.instret > t.send_instret || g.event_node_[*rit] < 0) continue;
        if (IsMemEvent(e) && from_fallback < 0) from_fallback = g.event_node_[*rit];
        if (IsMemEvent(e) &&
            RangesNear(EventLo(e), EventHi(e), src_lo, src_hi, options.addr_gap)) {
          from = g.event_node_[*rit];
          break;
        }
      }
    }
    if (from < 0) from = from_fallback;
    if (from < 0) {
      const auto inj = rank_injection.find(t.id.src);
      if (inj != rank_injection.end()) from = inj->second;
    }

    int to = -1;
    if (const auto it = g.rank_events_.find(t.id.dest); it != g.rank_events_.end()) {
      for (const std::size_t idx : it->second) {
        const core::TraceEvent& e = events[idx];
        if (e.instret < t.recv_instret || g.event_node_[idx] < 0) continue;
        if (IsMemEvent(e) &&
            RangesNear(EventLo(e), EventHi(e), dst_lo, dst_hi, options.addr_gap)) {
          to = g.event_node_[idx];
          break;
        }
      }
    }
    if (to < 0) {
      // Landing episode: the transfer re-applied taint here even if the
      // receiver never touched it afterwards.
      to = g.AddNode({.kind = NodeKind::kEpisode, .rank = t.id.dest,
                      .addr_lo = dst_lo, .addr_hi = dst_hi,
                      .first_instret = t.recv_instret,
                      .last_instret = t.recv_instret});
      rank_episodes[t.id.dest].push_back(to);
    }
    if (from >= 0) g.AddEdge(from, to, EdgeKind::kTransfer, t.tainted_bytes);
  }

  // Pass 4: output edges — the write episode covering each corrupted output
  // byte's source address feeds that output stream.
  for (const auto& [rank, bucket] : g.rank_events_) {
    for (std::size_t bi = 0; bi < bucket.size(); ++bi) {
      const core::TraceEvent& e = events[bucket[bi]];
      if (e.kind != core::TraceEventKind::kTaintedOutput) continue;
      int from = -1;
      for (std::size_t j = bi; j-- > 0;) {
        const core::TraceEvent& w = events[bucket[j]];
        if (w.kind == core::TraceEventKind::kTaintedWrite &&
            w.vaddr <= e.vaddr && e.vaddr < EventHi(w)) {
          from = g.event_node_[bucket[j]];
          break;
        }
      }
      if (from < 0) {
        // No local write produced the byte: it landed via an MPI transfer.
        for (auto rit = g.data_.transfers.rbegin();
             rit != g.data_.transfers.rend(); ++rit) {
          if (rit->id.dest == rank && rit->recv_instret <= e.instret &&
              rit->dest_vaddr <= e.vaddr &&
              e.vaddr < rit->dest_vaddr + rit->payload_bytes) {
            for (const int nid : rank_episodes[rank]) {
              const GraphNode& n = g.nodes_[static_cast<std::size_t>(nid)];
              if (n.addr_lo <= e.vaddr && e.vaddr < n.addr_hi) {
                from = nid;
                break;
              }
            }
            break;
          }
        }
      }
      if (from < 0) {
        const auto inj = rank_injection.find(rank);
        if (inj != rank_injection.end()) from = inj->second;
      }
      if (from >= 0) g.AddEdge(from, g.event_node_[bucket[bi]], EdgeKind::kOutput, 1);
    }
  }
  return g;
}

std::map<Rank, std::uint64_t> PropagationGraph::FirstContamination() const {
  std::map<Rank, std::uint64_t> first;
  const auto note = [&](Rank r, std::uint64_t instret) {
    const auto it = first.find(r);
    if (it == first.end() || instret < it->second) first[r] = instret;
  };
  for (const core::TraceEvent& e : data_.events) {
    if (e.kind == core::TraceEventKind::kInstruction) continue;
    note(e.rank, e.instret);
  }
  for (const hub::TransferLogEntry& t : data_.transfers) {
    note(t.id.dest, t.recv_instret);
  }
  return first;
}

std::map<std::uint64_t, std::uint64_t> PropagationGraph::TaintTimeline() const {
  std::map<std::uint64_t, std::uint64_t> timeline;
  for (const core::TaintSample& s : data_.samples) {
    timeline[s.instret] += s.tainted_bytes;
  }
  return timeline;
}

std::vector<Rank> PropagationGraph::SpreadOrder() const {
  std::vector<Rank> order;
  std::set<Rank> seen;
  const auto add = [&](Rank r) {
    if (seen.insert(r).second) order.push_back(r);
  };
  for (const core::TraceEvent& e : data_.events) {
    if (e.kind == core::TraceEventKind::kInjection) add(e.rank);
  }
  for (const hub::TransferLogEntry& t : data_.transfers) {
    add(t.id.src);  // a tainted sender is contaminated by definition
    add(t.id.dest);
  }
  return order;
}

std::vector<core::TraceEvent> PropagationGraph::OutputEvents() const {
  std::vector<core::TraceEvent> out;
  for (const core::TraceEvent& e : data_.events) {
    if (e.kind == core::TraceEventKind::kTaintedOutput) out.push_back(e);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const core::TraceEvent& a, const core::TraceEvent& b) {
                     if (a.rank != b.rank) return a.rank < b.rank;
                     if (a.fd != b.fd) return a.fd < b.fd;
                     return a.stream_off < b.stream_off;
                   });
  return out;
}

RootCauseChain PropagationGraph::RootCause(Rank rank, int fd,
                                           std::uint64_t offset) const {
  const std::vector<core::TraceEvent>& events = data_.events;
  const auto bucket_it = rank_events_.find(rank);
  std::size_t target_pos = static_cast<std::size_t>(-1);
  if (bucket_it != rank_events_.end()) {
    for (std::size_t bi = 0; bi < bucket_it->second.size(); ++bi) {
      const core::TraceEvent& e = events[bucket_it->second[bi]];
      if (e.kind == core::TraceEventKind::kTaintedOutput && e.fd == fd &&
          e.stream_off == offset) {
        target_pos = bi;
        break;
      }
    }
  }
  if (target_pos == static_cast<std::size_t>(-1)) {
    throw ConfigError(StrFormat(
        "RootCause: no tainted output byte at rank %d fd %d offset %llu",
        rank, fd, static_cast<unsigned long long>(offset)));
  }

  RootCauseChain chain;
  // Collected output-first; reversed into causal order at the end.
  std::vector<ChainStep> rev;
  std::set<std::size_t> visited_events;
  std::set<std::uint64_t> visited_transfers;

  Rank cur_rank = rank;
  const core::TraceEvent& target = events[bucket_it->second[target_pos]];
  rev.push_back({.what = ChainStep::What::kOutput, .event = target});
  GuestAddr addr = target.vaddr;
  std::uint64_t time = target.instret;
  std::size_t pos = target_pos;  // walk strictly below this bucket position

  const std::size_t max_steps = events.size() + data_.transfers.size() + 2;
  for (std::size_t step = 0; step < max_steps; ++step) {
    const auto& bucket = rank_events_.at(cur_rank);

    // Candidate 1: the most recent tainted write covering `addr`.
    std::size_t write_bi = static_cast<std::size_t>(-1);
    for (std::size_t j = pos; j-- > 0;) {
      const core::TraceEvent& e = events[bucket[j]];
      if (e.instret > time || visited_events.count(bucket[j])) continue;
      if (e.kind == core::TraceEventKind::kTaintedWrite && e.vaddr <= addr &&
          addr < EventHi(e)) {
        write_bi = j;
        break;
      }
    }

    // Candidate 2: the most recent inbound MPI transfer that landed taint on
    // `addr` (taint application leaves no write event — only the hub log).
    const hub::TransferLogEntry* transfer = nullptr;
    for (auto rit = data_.transfers.rbegin(); rit != data_.transfers.rend();
         ++rit) {
      if (rit->id.dest != cur_rank || rit->recv_instret > time ||
          visited_transfers.count(rit->hub_seq)) {
        continue;
      }
      if (rit->dest_vaddr <= addr &&
          addr < rit->dest_vaddr + rit->payload_bytes) {
        transfer = &*rit;
        break;
      }
    }

    const bool use_write =
        write_bi != static_cast<std::size_t>(-1) &&
        (transfer == nullptr ||
         events[bucket[write_bi]].instret >= transfer->recv_instret);

    if (use_write) {
      const std::size_t w_idx = bucket[write_bi];
      const core::TraceEvent& w = events[w_idx];
      visited_events.insert(w_idx);
      rev.push_back({.what = ChainStep::What::kWrite, .event = w});
      // The written value travelled through registers from the most recent
      // tainted read — or straight from the injection if none happened yet.
      std::size_t read_bi = static_cast<std::size_t>(-1);
      for (std::size_t j = write_bi; j-- > 0;) {
        const core::TraceEvent& e = events[bucket[j]];
        if (visited_events.count(bucket[j])) continue;
        if (e.kind == core::TraceEventKind::kTaintedRead &&
            e.instret <= w.instret) {
          read_bi = j;
          break;
        }
      }
      if (read_bi == static_cast<std::size_t>(-1)) {
        for (std::size_t j = write_bi; j-- > 0;) {
          const core::TraceEvent& e = events[bucket[j]];
          if (e.kind == core::TraceEventKind::kInjection &&
              e.instret <= w.instret) {
            rev.push_back({.what = ChainStep::What::kInjection, .event = e});
            chain.complete = true;
            break;
          }
        }
        break;
      }
      const std::size_t r_idx = bucket[read_bi];
      const core::TraceEvent& r = events[r_idx];
      visited_events.insert(r_idx);
      rev.push_back({.what = ChainStep::What::kRead, .event = r});
      addr = r.vaddr;
      time = r.instret;
      pos = read_bi;
      continue;
    }

    if (transfer != nullptr) {
      visited_transfers.insert(transfer->hub_seq);
      rev.push_back({.what = ChainStep::What::kTransfer, .transfer = *transfer});
      ++chain.transfers_crossed;
      addr = transfer->src_vaddr + (addr - transfer->dest_vaddr);
      time = transfer->send_instret;
      cur_rank = transfer->id.src;
      const auto it = rank_events_.find(cur_rank);
      if (it == rank_events_.end()) break;  // sender left no events
      // Resume below the first sender event after the send.
      const auto& sb = it->second;
      pos = sb.size();
      while (pos > 0 && events[sb[pos - 1]].instret > time) --pos;
      continue;
    }

    // No covering write or transfer: a direct memory injection (or the
    // register fault's very first materialisation) ends the walk here.
    bool found_injection = false;
    for (std::size_t j = pos; j-- > 0;) {
      const core::TraceEvent& e = events[bucket[j]];
      if (e.kind == core::TraceEventKind::kInjection && e.instret <= time) {
        rev.push_back({.what = ChainStep::What::kInjection, .event = e});
        chain.complete = true;
        found_injection = true;
        break;
      }
    }
    (void)found_injection;
    break;
  }

  std::reverse(rev.begin(), rev.end());
  chain.steps = std::move(rev);
  return chain;
}

std::string PropagationGraph::ToDot() const {
  std::string out = "digraph propagation {\n  rankdir=LR;\n"
                    "  node [shape=box, fontsize=10];\n";
  for (const GraphNode& n : nodes_) {
    const char* style = "";
    switch (n.kind) {
      case NodeKind::kInjection:
        style = ", shape=octagon, style=filled, fillcolor=salmon";
        break;
      case NodeKind::kOutput:
        style = ", shape=note, style=filled, fillcolor=lightblue";
        break;
      case NodeKind::kEpisode:
        break;
    }
    out += StrFormat("  n%d [label=\"%s\"%s];\n", n.id, n.Label().c_str(), style);
  }
  for (const GraphEdge& e : edges_) {
    const char* attr = "";
    std::string label;
    switch (e.kind) {
      case EdgeKind::kFlow:
        label = StrFormat("%llu B", static_cast<unsigned long long>(e.bytes));
        break;
      case EdgeKind::kTransfer:
        attr = ", color=red, penwidth=2";
        label = StrFormat("mpi %llu B", static_cast<unsigned long long>(e.bytes));
        break;
      case EdgeKind::kOutput:
        attr = ", color=blue";
        label = StrFormat("%llu B", static_cast<unsigned long long>(e.bytes));
        break;
    }
    out += StrFormat("  n%d -> n%d [label=\"%s\"%s];\n", e.from, e.to,
                     label.c_str(), attr);
  }
  out += "}\n";
  return out;
}

std::string PropagationGraph::Summarize() const {
  std::uint64_t injections = 0, episodes = 0, outputs = 0;
  for (const GraphNode& n : nodes_) {
    switch (n.kind) {
      case NodeKind::kInjection: ++injections; break;
      case NodeKind::kEpisode: ++episodes; break;
      case NodeKind::kOutput: ++outputs; break;
    }
  }
  std::uint64_t flow = 0, transfer = 0, output_edges = 0;
  for (const GraphEdge& e : edges_) {
    switch (e.kind) {
      case EdgeKind::kFlow: ++flow; break;
      case EdgeKind::kTransfer: ++transfer; break;
      case EdgeKind::kOutput: ++output_edges; break;
    }
  }
  std::string out = StrFormat(
      "propagation graph: %zu events, %zu samples, %zu transfers\n"
      "  nodes: %llu injection, %llu episode, %llu output; "
      "edges: %llu flow, %llu transfer, %llu output\n",
      data_.events.size(), data_.samples.size(), data_.transfers.size(),
      static_cast<unsigned long long>(injections),
      static_cast<unsigned long long>(episodes),
      static_cast<unsigned long long>(outputs),
      static_cast<unsigned long long>(flow),
      static_cast<unsigned long long>(transfer),
      static_cast<unsigned long long>(output_edges));
  out += "  first contamination (per-rank instret):";
  for (const auto& [rank, instret] : FirstContamination()) {
    out += StrFormat(" r%d=%llu", rank, static_cast<unsigned long long>(instret));
  }
  out += "\n  spread order:";
  const std::vector<Rank> order = SpreadOrder();
  if (order.empty()) {
    out += " (no contamination)";
  } else {
    for (std::size_t i = 0; i < order.size(); ++i) {
      out += StrFormat("%s %d", i == 0 ? "" : " ->", order[i]);
    }
  }
  out += "\n";
  for (const hub::TransferLogEntry& t : data_.transfers) {
    out += StrFormat(
        "  transfer[%llu]: rank %d -> %d tag %lld seq %llu: %llu/%llu tainted "
        "bytes\n",
        static_cast<unsigned long long>(t.hub_seq), t.id.src, t.id.dest,
        static_cast<long long>(t.id.tag),
        static_cast<unsigned long long>(t.id.seq),
        static_cast<unsigned long long>(t.tainted_bytes),
        static_cast<unsigned long long>(t.payload_bytes));
  }
  for (const GraphNode& n : nodes_) {
    if (n.kind != NodeKind::kOutput) continue;
    out += StrFormat("  corrupted output: rank %d fd %d: %llu bytes\n", n.rank,
                     n.fd, static_cast<unsigned long long>(n.bytes));
  }
  return out;
}

}  // namespace chaser::analysis

// Cross-rank fault-propagation graph (paper §III-C, Figs. 7 & 8).
//
// Built from a trial's trace — either a TraceSpool directory or in-memory
// TraceLogs — plus the TaintHub transfer log. The model:
//
//   nodes  contamination episodes: (rank, address range, instret interval)
//          clusters of tainted reads/writes, plus one node per injection
//          event and one per (rank, fd) corrupted output stream;
//   edges  intra-rank dataflow (read episode -> write episode, injection ->
//          first write), cross-rank MPI transfers (sender episode ->
//          receiver episode, anchored by the hub's buffer addresses), and
//          episode -> output-stream edges.
//
// Queries answer the paper's propagation questions: when was each rank first
// contaminated, how did the tainted-byte count evolve (Fig. 7), in what
// order did the fault spread across ranks (Fig. 8), and — walking the trace
// backwards — which injection a corrupted output byte descends from.
//
// The intra-rank dataflow rule is the paper's read/write heuristic: a
// tainted write is attributed to the most recent tainted read on that rank
// (the value travelled through registers between them), and a tainted read
// to the most recent tainted write or MPI transfer covering its address.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/trace.h"
#include "hub/tainthub.h"

namespace chaser::analysis {

struct TrialSpool;  // spool.h

/// Input to PropagationGraph::Build: any mix of spooled or in-memory data.
struct TraceDataset {
  std::vector<core::TraceEvent> events;          // all ranks, emission order
  std::vector<core::TaintSample> samples;        // tainted-bytes timeline
  std::vector<hub::TransferLogEntry> transfers;  // hub_seq order
};

/// Convert a loaded spool into a dataset (copies).
TraceDataset DatasetFromSpool(const TrialSpool& spool);

struct GraphOptions {
  /// Two memory events join one episode if their address ranges are within
  /// this many bytes of each other...
  GuestAddr addr_gap = 64;
  /// ...and the episode saw an event within this many retired instructions.
  std::uint64_t time_gap = 250'000;
};

enum class NodeKind : std::uint8_t { kInjection, kEpisode, kOutput };
enum class EdgeKind : std::uint8_t { kFlow, kTransfer, kOutput };

struct GraphNode {
  int id = 0;
  NodeKind kind = NodeKind::kEpisode;
  Rank rank = -1;
  GuestAddr addr_lo = 0;  // [addr_lo, addr_hi) touched address range
  GuestAddr addr_hi = 0;
  std::uint64_t first_instret = 0;
  std::uint64_t last_instret = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  int fd = -1;                 // kOutput: which stream
  std::uint64_t bytes = 0;     // kOutput: corrupted bytes in the stream

  std::string Label() const;
};

struct GraphEdge {
  int from = 0;
  int to = 0;
  EdgeKind kind = EdgeKind::kFlow;
  std::uint64_t bytes = 0;  // kTransfer: tainted bytes carried
};

/// One step of a root-cause chain, ordered injection -> output.
struct ChainStep {
  enum class What : std::uint8_t {
    kInjection,
    kWrite,
    kRead,
    kTransfer,
    kOutput,
  };
  What what = What::kWrite;
  core::TraceEvent event;              // valid unless what == kTransfer
  hub::TransferLogEntry transfer;      // valid when what == kTransfer

  std::string Describe() const;
};

struct RootCauseChain {
  /// True if the walk reached an injection event.
  bool complete = false;
  /// Steps in causal order: [injection, ..., output]. On an incomplete walk
  /// the first step is wherever the trace ran out.
  std::vector<ChainStep> steps;
  /// Number of cross-rank MPI transfer edges crossed.
  std::size_t transfers_crossed = 0;

  std::string Render() const;
};

class PropagationGraph {
 public:
  static PropagationGraph Build(TraceDataset dataset, GraphOptions options = {});

  const std::vector<GraphNode>& nodes() const { return nodes_; }
  const std::vector<GraphEdge>& edges() const { return edges_; }
  const TraceDataset& dataset() const { return data_; }

  /// Earliest contamination (instret on that rank's clock) per rank: the
  /// first tainted event, injection, or inbound transfer application.
  std::map<Rank, std::uint64_t> FirstContamination() const;

  /// Fig. 7 data: instret -> tainted bytes summed across ranks (every rank
  /// samples on the same instret grid).
  std::map<std::uint64_t, std::uint64_t> TaintTimeline() const;

  /// Fig. 8 data: ranks in the order the fault reached them — injection
  /// rank(s) first, then receivers in hub transfer order.
  std::vector<Rank> SpreadOrder() const;

  /// Corrupted output bytes, sorted by (rank, fd, stream offset).
  std::vector<core::TraceEvent> OutputEvents() const;

  /// Walk backwards from the corrupted output byte (rank, fd, offset) to
  /// the injection that caused it. Throws ConfigError if no tainted output
  /// byte matches.
  RootCauseChain RootCause(Rank rank, int fd, std::uint64_t offset) const;

  /// Graphviz DOT rendering of the full graph (deterministic).
  std::string ToDot() const;

  /// Multi-line human-readable summary (counts, first contamination, spread
  /// order, transfers).
  std::string Summarize() const;

 private:
  int AddNode(GraphNode node);
  void AddEdge(int from, int to, EdgeKind kind, std::uint64_t bytes);

  TraceDataset data_;
  GraphOptions options_;
  std::vector<GraphNode> nodes_;
  std::vector<GraphEdge> edges_;
  /// data_.events index -> node id (-1 for unassigned, e.g. kInstruction).
  std::vector<int> event_node_;
  /// Per-rank indices into data_.events, sorted by (instret, emission).
  std::map<Rank, std::vector<std::size_t>> rank_events_;
};

}  // namespace chaser::analysis

#include "analysis/spool.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "common/strings.h"

namespace chaser::analysis {

namespace {

constexpr char kHeaderMagic[8] = {'C', 'H', 'S', 'P', 'O', 'O', 'L', '1'};
constexpr char kTrailerMagic[8] = {'C', 'H', 'S', 'P', 'O', 'O', 'L', 'F'};
constexpr std::uint8_t kFooterTag = 0xFE;

void AppendU64Le(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t ReadU64Le(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

// ---- Varint codec -------------------------------------------------------------

void AppendVarint(std::string* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

std::optional<std::uint64_t> DecodeVarint(const std::string& buf,
                                          std::size_t* pos) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (*pos >= buf.size()) return std::nullopt;
    const std::uint8_t byte = static_cast<std::uint8_t>(buf[(*pos)++]);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // Reject overlong encodings that would shift bits past 64.
      if (shift == 63 && (byte & 0x7e) != 0) return std::nullopt;
      // Reject non-canonical (overlong) encodings: a terminal byte of 0x00
      // after at least one continuation byte contributes no value bits, so
      // e.g. {0x80, 0x00} would alias the one-byte encoding of 0. AppendVarint
      // never emits such forms; rejecting them makes encode/decode bijective,
      // which the CTR store's CRC-then-codec framing relies on.
      if (byte == 0 && shift > 0) return std::nullopt;
      return v;
    }
  }
  return std::nullopt;  // >10 continuation bytes: corrupt
}

std::uint64_t ZigZagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t ZigZagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// ---- Writer -------------------------------------------------------------------

struct TraceSpool::Segment {
  std::ofstream out;
  std::string path;
  SegmentFooter footer;
  std::uint64_t prev_event_instret = 0;
  std::uint64_t prev_sample_instret = 0;
  bool any_instret = false;

  void NoteInstret(std::uint64_t instret) {
    if (!any_instret) {
      footer.min_instret = footer.max_instret = instret;
      any_instret = true;
      return;
    }
    footer.min_instret = std::min(footer.min_instret, instret);
    footer.max_instret = std::max(footer.max_instret, instret);
  }
};

TraceSpool::TraceSpool(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw ConfigError("TraceSpool: cannot create directory '" + dir_ +
                      "': " + ec.message());
  }
}

TraceSpool::~TraceSpool() {
  try {
    Finish();
  } catch (...) {
    // Destructor path: a failed flush leaves a truncated segment, which the
    // reader handles; never throw out of a destructor.
  }
}

TraceSpool::Segment& TraceSpool::SegmentFor(Rank rank, bool hub) {
  if (finished_) throw ConfigError("TraceSpool: record added after Finish()");
  const auto key = std::make_pair(hub, hub ? Rank{-1} : rank);
  auto it = segments_.find(key);
  if (it == segments_.end()) {
    auto seg = std::make_unique<Segment>();
    seg->path = dir_ + (hub ? std::string("/hub.seg")
                            : StrFormat("/rank-%d.seg", rank));
    seg->out.open(seg->path, std::ios::binary | std::ios::trunc);
    if (!seg->out) {
      throw ConfigError("TraceSpool: cannot open segment '" + seg->path + "'");
    }
    std::string header(kHeaderMagic, sizeof(kHeaderMagic));
    header.push_back(hub ? '\1' : '\0');
    AppendVarint(&header, ZigZagEncode(hub ? -1 : rank));
    seg->out.write(header.data(), static_cast<std::streamsize>(header.size()));
    it = segments_.emplace(key, std::move(seg)).first;
  }
  return *it->second;
}

void TraceSpool::OnTraceEvent(const core::TraceEvent& event) {
  Segment& seg = SegmentFor(event.rank, /*hub=*/false);
  std::string rec;
  rec.push_back(static_cast<char>(SpoolRecord::Type::kEvent));
  rec.push_back(static_cast<char>(event.kind));
  AppendVarint(&rec, ZigZagEncode(static_cast<std::int64_t>(event.instret) -
                                  static_cast<std::int64_t>(seg.prev_event_instret)));
  AppendVarint(&rec, event.pc);
  AppendVarint(&rec, event.vaddr);
  AppendVarint(&rec, event.paddr);
  AppendVarint(&rec, event.size);
  AppendVarint(&rec, event.value);
  AppendVarint(&rec, event.taint);
  AppendVarint(&rec, ZigZagEncode(event.fd));
  AppendVarint(&rec, event.stream_off);
  seg.out.write(rec.data(), static_cast<std::streamsize>(rec.size()));
  seg.prev_event_instret = event.instret;
  seg.NoteInstret(event.instret);
  ++seg.footer.records;
  ++seg.footer.events;
  ++seg.footer.kind_counts[static_cast<std::size_t>(event.kind)];
  ++total_records_;
}

void TraceSpool::AddSample(const core::TaintSample& sample) {
  Segment& seg = SegmentFor(sample.rank, /*hub=*/false);
  std::string rec;
  rec.push_back(static_cast<char>(SpoolRecord::Type::kSample));
  AppendVarint(&rec, ZigZagEncode(static_cast<std::int64_t>(sample.instret) -
                                  static_cast<std::int64_t>(seg.prev_sample_instret)));
  AppendVarint(&rec, sample.tainted_bytes);
  seg.out.write(rec.data(), static_cast<std::streamsize>(rec.size()));
  seg.prev_sample_instret = sample.instret;
  seg.NoteInstret(sample.instret);
  ++seg.footer.records;
  ++seg.footer.samples;
  ++total_records_;
}

void TraceSpool::AddTransfer(const hub::TransferLogEntry& entry) {
  Segment& seg = SegmentFor(-1, /*hub=*/true);
  std::string rec;
  rec.push_back(static_cast<char>(SpoolRecord::Type::kTransfer));
  AppendVarint(&rec, ZigZagEncode(entry.id.src));
  AppendVarint(&rec, ZigZagEncode(entry.id.dest));
  AppendVarint(&rec, ZigZagEncode(entry.id.tag));
  AppendVarint(&rec, entry.id.seq);
  AppendVarint(&rec, entry.tainted_bytes);
  AppendVarint(&rec, entry.payload_bytes);
  AppendVarint(&rec, entry.src_vaddr);
  AppendVarint(&rec, entry.dest_vaddr);
  AppendVarint(&rec, entry.send_instret);
  AppendVarint(&rec, entry.recv_instret);
  AppendVarint(&rec, entry.hub_seq);
  seg.out.write(rec.data(), static_cast<std::streamsize>(rec.size()));
  ++seg.footer.records;
  ++seg.footer.transfers;
  ++total_records_;
}

void TraceSpool::SetMeta(const std::string& key, const std::string& value) {
  if (finished_) throw ConfigError("TraceSpool: SetMeta after Finish()");
  meta_[key] = value;
}

void TraceSpool::Finish() {
  if (finished_) return;
  finished_ = true;
  for (auto& [key, seg] : segments_) {
    const std::uint64_t footer_off =
        static_cast<std::uint64_t>(seg->out.tellp());
    std::string tail;
    tail.push_back(static_cast<char>(kFooterTag));
    AppendVarint(&tail, seg->footer.records);
    AppendVarint(&tail, seg->footer.events);
    AppendVarint(&tail, seg->footer.samples);
    AppendVarint(&tail, seg->footer.transfers);
    for (const std::uint64_t c : seg->footer.kind_counts) AppendVarint(&tail, c);
    AppendVarint(&tail, seg->footer.min_instret);
    AppendVarint(&tail, seg->footer.max_instret);
    AppendU64Le(&tail, footer_off);
    tail.append(kTrailerMagic, sizeof(kTrailerMagic));
    seg->out.write(tail.data(), static_cast<std::streamsize>(tail.size()));
    seg->out.close();
    if (!seg->out) {
      throw ConfigError("TraceSpool: failed writing segment '" + seg->path + "'");
    }
  }
  std::ofstream meta(dir_ + "/meta.txt", std::ios::trunc);
  for (const auto& [k, v] : meta_) meta << k << '=' << v << '\n';
  meta.close();
  if (!meta) throw ConfigError("TraceSpool: failed writing '" + dir_ + "/meta.txt'");
}

// ---- Reader -------------------------------------------------------------------

SegmentReader::SegmentReader(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("SegmentReader: cannot open '" + path + "'");
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  buf_ = std::move(buf);

  if (buf_.size() < sizeof(kHeaderMagic) + 2 ||
      std::memcmp(buf_.data(), kHeaderMagic, sizeof(kHeaderMagic)) != 0) {
    throw ConfigError("SegmentReader: '" + path + "' is not a Chaser spool segment");
  }
  pos_ = sizeof(kHeaderMagic);
  is_hub_ = buf_[pos_++] != '\0';
  const auto rank_raw = DecodeVarint(buf_, &pos_);
  if (!rank_raw) {
    throw ConfigError("SegmentReader: '" + path + "' has a corrupt header");
  }
  rank_ = static_cast<Rank>(ZigZagDecode(*rank_raw));

  // Locate the footer through the fixed-size trailer; fall back to truncated
  // mode (decode as far as the bytes go) when it is missing or implausible.
  end_ = buf_.size();
  truncated_ = true;
  const std::size_t trailer_size = 8 + sizeof(kTrailerMagic);
  if (buf_.size() >= pos_ + trailer_size &&
      std::memcmp(buf_.data() + buf_.size() - sizeof(kTrailerMagic),
                  kTrailerMagic, sizeof(kTrailerMagic)) == 0) {
    const std::uint64_t footer_off =
        ReadU64Le(buf_.data() + buf_.size() - trailer_size);
    if (footer_off >= pos_ && footer_off < buf_.size() - trailer_size &&
        static_cast<std::uint8_t>(buf_[footer_off]) == kFooterTag) {
      std::size_t fpos = static_cast<std::size_t>(footer_off) + 1;
      SegmentFooter f;
      bool ok = true;
      const auto field = [&](std::uint64_t* out) {
        const auto v = DecodeVarint(buf_, &fpos);
        if (!v) { ok = false; return; }
        *out = *v;
      };
      field(&f.records);
      field(&f.events);
      field(&f.samples);
      field(&f.transfers);
      for (std::uint64_t& c : f.kind_counts) field(&c);
      field(&f.min_instret);
      field(&f.max_instret);
      if (ok) {
        footer_ = f;
        end_ = static_cast<std::size_t>(footer_off);
        truncated_ = false;
      }
    }
  }
}

bool SegmentReader::Next(SpoolRecord* out) {
  if (pos_ >= end_) return false;
  const std::size_t start = pos_;
  const auto fail = [&]() {
    truncated_ = true;
    footer_.reset();
    pos_ = start;
    end_ = start;  // stop iteration at the first undecodable record
    return false;
  };
  const auto tag = static_cast<std::uint8_t>(buf_[pos_++]);
  const auto u64 = [&](std::uint64_t* v) {
    const auto d = DecodeVarint(buf_, &pos_);
    if (!d) return false;
    *v = *d;
    return true;
  };
  switch (tag) {
    case static_cast<std::uint8_t>(SpoolRecord::Type::kEvent): {
      if (pos_ >= end_) return fail();
      const auto kind = static_cast<std::uint8_t>(buf_[pos_++]);
      if (kind >= core::kNumTraceEventKinds) return fail();
      core::TraceEvent e;
      e.kind = static_cast<core::TraceEventKind>(kind);
      e.rank = rank_;
      std::uint64_t delta = 0, size = 0, fd = 0;
      if (!u64(&delta) || !u64(&e.pc) || !u64(&e.vaddr) || !u64(&e.paddr) ||
          !u64(&size) || !u64(&e.value) || !u64(&e.taint) || !u64(&fd) ||
          !u64(&e.stream_off)) {
        return fail();
      }
      e.instret = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(prev_event_instret_) + ZigZagDecode(delta));
      e.size = static_cast<std::uint32_t>(size);
      e.fd = static_cast<int>(ZigZagDecode(fd));
      prev_event_instret_ = e.instret;
      out->type = SpoolRecord::Type::kEvent;
      out->event = e;
      return true;
    }
    case static_cast<std::uint8_t>(SpoolRecord::Type::kSample): {
      core::TaintSample s;
      s.rank = rank_;
      std::uint64_t delta = 0;
      if (!u64(&delta) || !u64(&s.tainted_bytes)) return fail();
      s.instret = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(prev_sample_instret_) + ZigZagDecode(delta));
      prev_sample_instret_ = s.instret;
      out->type = SpoolRecord::Type::kSample;
      out->sample = s;
      return true;
    }
    case static_cast<std::uint8_t>(SpoolRecord::Type::kTransfer): {
      hub::TransferLogEntry t;
      std::uint64_t src = 0, dest = 0, tag_field = 0;
      if (!u64(&src) || !u64(&dest) || !u64(&tag_field) || !u64(&t.id.seq) ||
          !u64(&t.tainted_bytes) || !u64(&t.payload_bytes) ||
          !u64(&t.src_vaddr) || !u64(&t.dest_vaddr) || !u64(&t.send_instret) ||
          !u64(&t.recv_instret) || !u64(&t.hub_seq)) {
        return fail();
      }
      t.id.src = static_cast<Rank>(ZigZagDecode(src));
      t.id.dest = static_cast<Rank>(ZigZagDecode(dest));
      t.id.tag = ZigZagDecode(tag_field);
      out->type = SpoolRecord::Type::kTransfer;
      out->transfer = t;
      return true;
    }
    default:
      return fail();
  }
}

// ---- Trial loader -------------------------------------------------------------

bool IsTrialSpoolDir(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".seg") return true;
  }
  return false;
}

TrialSpool ReadTrialSpool(const std::string& dir) {
  std::error_code ec;
  std::vector<std::string> seg_paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".seg") {
      seg_paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    throw ConfigError("ReadTrialSpool: cannot list '" + dir + "': " + ec.message());
  }
  if (seg_paths.empty()) {
    throw ConfigError("ReadTrialSpool: no .seg files in '" + dir + "'");
  }

  std::vector<SegmentReader> readers;
  readers.reserve(seg_paths.size());
  for (const std::string& p : seg_paths) readers.emplace_back(p);
  // Deterministic merge order: rank segments ascending, hub last.
  std::sort(readers.begin(), readers.end(),
            [](const SegmentReader& a, const SegmentReader& b) {
              if (a.is_hub() != b.is_hub()) return !a.is_hub();
              return a.rank() < b.rank();
            });

  TrialSpool trial;
  for (SegmentReader& r : readers) {
    SpoolRecord rec;
    while (r.Next(&rec)) {
      switch (rec.type) {
        case SpoolRecord::Type::kEvent: trial.events.push_back(rec.event); break;
        case SpoolRecord::Type::kSample: trial.samples.push_back(rec.sample); break;
        case SpoolRecord::Type::kTransfer:
          trial.transfers.push_back(rec.transfer);
          break;
      }
    }
    trial.truncated = trial.truncated || r.truncated();
  }
  std::sort(trial.transfers.begin(), trial.transfers.end(),
            [](const hub::TransferLogEntry& a, const hub::TransferLogEntry& b) {
              return a.hub_seq < b.hub_seq;
            });

  std::ifstream meta(dir + "/meta.txt");
  std::string line;
  while (std::getline(meta, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    trial.meta[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return trial;
}

}  // namespace chaser::analysis

// Chaser: the fault-injection and propagation-tracing framework, attached to
// one VM (one guest process).
//
// Mirrors the paper's plugin flow (§III-A(c), Fig. 4):
//
//   inject_fault command      -> InjectionCommand (fi_cmds_st)
//   fi_creation_cb            -> VMI process-create callback; on a name match,
//                                Chaser flushes the TB cache and installs the
//                                instrumentation predicate for the targeted
//                                instruction classes only
//   DECAF_inject_fault helper -> OnInjectorHelper: bump the executed counter,
//                                ask the trigger (fi_trigger_st), invoke the
//                                user's FaultInjector when it fires
//   fi_clean_cb               -> when the trigger expires, the injector is
//                                detached and the instrumentation flushed out
//   tainted_mem_rd/wt_cb      -> TraceLog records (eip, vaddr, paddr, taint,
//                                value), plus the tainted-bytes timeline
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/injector.h"
#include "core/trace.h"
#include "core/trigger.h"
#include "guest/isa.h"
#include "vm/vm.h"

namespace chaser::core {

/// The user's full injection request (the paper's fi_cmds_st): what
/// application, which instructions, when to fire, and how to corrupt.
struct InjectionCommand {
  std::string target_program;                    // matched against process name
  std::set<guest::InstrClass> target_classes;    // e.g. {kFadd} or {kMov}
  std::shared_ptr<const Trigger> trigger;        // cloned per run; null = trace-only
  std::shared_ptr<FaultInjector> injector;       // null = trace-only
  bool trace = true;                             // enable propagation tracing
  std::uint64_t seed = 1;                        // injector/trigger randomness
  /// Record a per-pc execution histogram of the targeted instructions
  /// (site_execs()). Sampled campaigns enable this on the golden run to
  /// build their importance-sampling frame; off by default — it adds a map
  /// update per targeted execution.
  bool profile_sites = false;

  /// True if this command only traces (no instrumentation is inserted).
  bool TraceOnly() const { return trigger == nullptr || injector == nullptr; }
};

class Chaser {
 public:
  enum class TraceGranularity : std::uint8_t {
    /// Chaser's design: record tainted memory accesses only (paper SII-C(b)).
    kMemoryAccess,
    /// The rejected alternative: additionally record *every* instruction
    /// retired while taint is live. Complete but prohibitively expensive;
    /// kept for the ablation that reproduces the paper's design argument.
    kInstruction,
  };

  struct Options {
    std::size_t trace_capacity = 1u << 17;
    /// Sample the tainted-byte count every N retired instructions
    /// (paper Fig. 7 samples every 100K). 0 disables the timeline.
    std::uint64_t taint_sample_interval = 100'000;
    TraceGranularity granularity = TraceGranularity::kMemoryAccess;
  };

  explicit Chaser(vm::Vm& vm);
  Chaser(vm::Vm& vm, Options options);

  // Non-copyable: registers callbacks pointing at itself.
  Chaser(const Chaser&) = delete;
  Chaser& operator=(const Chaser&) = delete;

  /// Register the command. Attachment happens when a process whose name
  /// matches `cmd.target_program` is created in the VM.
  void Arm(InjectionCommand cmd);

  /// Drop the command and detach from the current process.
  void Disarm();

  /// Set the rank label stamped on trace events (ChaserMpi uses this).
  void set_rank(Rank rank) { rank_ = rank; }

  // ---- Per-run results ------------------------------------------------------
  bool attached() const { return attached_; }
  /// Executions of targeted instructions observed so far (profiling runs use
  /// this with a NeverTrigger to size deterministic triggers).
  std::uint64_t targeted_executions() const { return exec_count_; }
  /// Per-pc execution counts of the targeted instructions — populated only
  /// when the armed command set `profile_sites` (empty otherwise). The
  /// counts sum to targeted_executions().
  const std::map<std::uint64_t, std::uint64_t>& site_execs() const {
    return site_execs_;
  }
  const std::vector<InjectionRecord>& injections() const { return records_; }
  TraceLog& trace_log() { return trace_log_; }
  const TraceLog& trace_log() const { return trace_log_; }
  const std::vector<TaintSample>& taint_timeline() const { return taint_timeline_; }

  vm::Vm& vm() { return vm_; }
  Rng& rng() { return *rng_; }

 private:
  void OnProcessCreate(const std::string& name);
  void Attach();
  void Detach();
  void OnInjectorHelper(std::uint64_t pc);

  vm::Vm& vm_;
  Options options_;
  Rank rank_ = -1;

  std::optional<InjectionCommand> cmd_;
  std::unique_ptr<Trigger> trigger_;   // per-run clone
  std::unique_ptr<Rng> rng_;
  bool attached_ = false;
  bool injector_active_ = false;

  std::uint64_t exec_count_ = 0;
  std::map<std::uint64_t, std::uint64_t> site_execs_;  // pc -> executions
  std::vector<InjectionRecord> records_;
  TraceLog trace_log_;
  std::vector<TaintSample> taint_timeline_;
};

}  // namespace chaser::core

// Injection triggers — the paper's fi_trigger_st.
//
// The DECAF_inject_fault helper runs before every *targeted* instruction and
// bumps an execution counter; the trigger decides, from that counter (and
// optionally randomness), whether the fault injector fires now. A trigger
// also knows when it is exhausted so Chaser can detach the injector
// (fi_clean_cb) and flush the instrumentation out of the translation cache.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"

namespace chaser::core {

class Trigger {
 public:
  virtual ~Trigger() = default;

  /// Called once per execution of a targeted instruction with the 1-based
  /// execution count. Returns true when the injector must fire now.
  virtual bool ShouldFire(std::uint64_t exec_count, Rng& rng) = 0;

  /// Site-aware variant: Chaser calls this one, passing the pc of the
  /// targeted instruction about to execute. The default forwards to
  /// ShouldFire — existing triggers are pc-oblivious and keep their exact
  /// behavior; site-local triggers (PcNthTrigger) override it.
  virtual bool ShouldFireAt(std::uint64_t exec_count, std::uint64_t pc,
                            Rng& rng) {
    (void)pc;
    return ShouldFire(exec_count, rng);
  }

  /// True once no further firing is possible; Chaser detaches the injector.
  virtual bool Expired() const = 0;

  /// Fresh stateful copy (campaigns re-arm the same command per run).
  virtual std::unique_ptr<Trigger> Clone() const = 0;

  virtual std::string Describe() const = 0;
};

/// Deterministic fault model (Table I): fire exactly at the n-th execution.
class DeterministicTrigger final : public Trigger {
 public:
  explicit DeterministicTrigger(std::uint64_t nth);
  bool ShouldFire(std::uint64_t exec_count, Rng& rng) override;
  bool Expired() const override { return fired_; }
  std::unique_ptr<Trigger> Clone() const override;
  std::string Describe() const override;

 private:
  std::uint64_t nth_;
  bool fired_ = false;
};

/// Probabilistic fault model (Table I): fire with probability p at each
/// execution, at most `max_injections` times.
class ProbabilisticTrigger final : public Trigger {
 public:
  ProbabilisticTrigger(double probability, std::uint64_t max_injections = 1);
  bool ShouldFire(std::uint64_t exec_count, Rng& rng) override;
  bool Expired() const override { return fired_ >= max_injections_; }
  std::unique_ptr<Trigger> Clone() const override;
  std::string Describe() const override;

 private:
  double probability_;
  std::uint64_t max_injections_;
  std::uint64_t fired_ = 0;
};

/// Group fault model (Table I): multiple faults — fire at every `stride`-th
/// execution starting at `first`, up to `max_injections` times.
class GroupTrigger final : public Trigger {
 public:
  GroupTrigger(std::uint64_t first, std::uint64_t stride,
               std::uint64_t max_injections);
  bool ShouldFire(std::uint64_t exec_count, Rng& rng) override;
  bool Expired() const override { return fired_ >= max_injections_; }
  std::unique_ptr<Trigger> Clone() const override;
  std::string Describe() const override;

 private:
  std::uint64_t first_;
  std::uint64_t stride_;
  std::uint64_t max_injections_;
  std::uint64_t fired_ = 0;
};

/// Site-local deterministic fault model (importance-sampled campaigns): fire
/// exactly at the n-th execution *of one pc*, counting only that pc's
/// executions. The global execution count is ignored — the sampler picks an
/// (equivalence class, invocation) pair, and the class is identified by its
/// pc, not by its position in the global targeted stream.
class PcNthTrigger final : public Trigger {
 public:
  PcNthTrigger(std::uint64_t pc, std::uint64_t nth);
  /// Pc-less call sites are assumed to be at the target pc (the trigger
  /// cannot tell otherwise); Chaser always uses ShouldFireAt.
  bool ShouldFire(std::uint64_t exec_count, Rng& rng) override;
  bool ShouldFireAt(std::uint64_t exec_count, std::uint64_t pc,
                    Rng& rng) override;
  bool Expired() const override { return fired_; }
  std::unique_ptr<Trigger> Clone() const override;
  std::string Describe() const override;

 private:
  std::uint64_t pc_;
  std::uint64_t nth_;
  std::uint64_t seen_ = 0;  // executions of pc_ observed so far
  bool fired_ = false;
};

/// Never fires — used for profiling runs that only count targeted executions.
class NeverTrigger final : public Trigger {
 public:
  bool ShouldFire(std::uint64_t, Rng&) override { return false; }
  bool Expired() const override { return false; }
  std::unique_ptr<Trigger> Clone() const override {
    return std::make_unique<NeverTrigger>();
  }
  std::string Describe() const override { return "never"; }
};

}  // namespace chaser::core

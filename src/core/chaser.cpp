#include "core/chaser.h"

#include "common/log.h"
#include "common/strings.h"
#include "obs/profiler.h"

namespace chaser::core {

Chaser::Chaser(vm::Vm& vm) : Chaser(vm, Options{}) {}

Chaser::Chaser(vm::Vm& vm, Options options)
    : vm_(vm), options_(options), trace_log_(options.trace_capacity) {
  // fi_creation_cb: screen newly created processes for the target.
  vm_.set_on_process_create([this](vm::Vm&, Pid, const std::string& name) {
    OnProcessCreate(name);
  });
}

void Chaser::Arm(InjectionCommand cmd) {
  cmd_ = std::move(cmd);
  rng_ = std::make_unique<Rng>(cmd_->seed);
  // If the target process is already running, attach right away.
  if (vm_.program() != nullptr && vm_.run_state() != vm::RunState::kTerminated &&
      vm_.process_name() == cmd_->target_program) {
    Attach();
  }
}

void Chaser::Disarm() {
  Detach();
  cmd_.reset();
}

void Chaser::OnProcessCreate(const std::string& name) {
  if (!cmd_ || name != cmd_->target_program) return;
  Attach();
}

void Chaser::Attach() {
  // Fresh per-run state (campaigns re-Start the same VM repeatedly).
  exec_count_ = 0;
  site_execs_.clear();
  records_.clear();
  trace_log_.Clear();
  taint_timeline_.clear();
  attached_ = true;

  if (!cmd_->TraceOnly()) {
    trigger_ = cmd_->trigger->Clone();
    injector_active_ = true;
    const std::set<guest::InstrClass> classes = cmd_->target_classes;
    // The predicate is a pure function of the target-class set, so key it
    // for the shared translation cache: every trial targeting the same
    // classes shares one set of instrumented TBs. Bit 63 keeps user keys
    // disjoint from the reserved clean/unshareable keys (1/0).
    std::uint64_t key = 1469598103934665603ull;
    for (const guest::InstrClass c : classes) {  // std::set: sorted, stable
      key ^= static_cast<std::uint64_t>(c);
      key *= 1099511628211ull;
    }
    key |= 1ull << 63;
    vm_.SetInstrumentPredicate(
        [classes](const guest::Instruction& in, std::uint64_t) {
          return classes.count(guest::ClassOf(in.op)) != 0;
        },
        key);
    vm_.set_injector_hook(
        [this](vm::Vm&, std::uint64_t pc) { OnInjectorHelper(pc); });
  } else {
    trigger_.reset();
    injector_active_ = false;
    vm_.SetInstrumentPredicate(nullptr);
    vm_.set_injector_hook(nullptr);
  }
  vm_.FlushTbCache();

  if (cmd_->trace) {
    vm_.taint().set_enabled(true);
    vm_.taint().set_on_tainted_read([this](const taint::TaintMemAccess& a) {
      trace_log_.Add({.kind = TraceEventKind::kTaintedRead, .rank = rank_,
                      .instret = vm_.instret(), .pc = a.pc, .vaddr = a.vaddr,
                      .paddr = a.paddr, .size = a.size, .value = a.value,
                      .taint = a.taint});
    });
    vm_.taint().set_on_tainted_write([this](const taint::TaintMemAccess& a) {
      trace_log_.Add({.kind = TraceEventKind::kTaintedWrite, .rank = rank_,
                      .instret = vm_.instret(), .pc = a.pc, .vaddr = a.vaddr,
                      .paddr = a.paddr, .size = a.size, .value = a.value,
                      .taint = a.taint});
    });
    vm_.SetTaintedOutputHook([this](vm::Vm& v, const vm::Vm::TaintedOutputByte& b) {
      trace_log_.Add({.kind = TraceEventKind::kTaintedOutput, .rank = rank_,
                      .instret = v.instret(), .pc = v.cpu().pc, .vaddr = b.vaddr,
                      .paddr = b.paddr, .size = 1, .value = b.value,
                      .taint = b.taint, .fd = b.fd, .stream_off = b.stream_off});
    });
    if (options_.taint_sample_interval > 0) {
      vm_.SetInstretSample(
          options_.taint_sample_interval, [this](vm::Vm& v, std::uint64_t instret) {
            taint_timeline_.push_back(
                {rank_, instret, v.taint().CountTaintedBytes()});
          });
    }
    if (options_.granularity == TraceGranularity::kInstruction) {
      vm_.SetInsnTraceHook([this](vm::Vm& v, std::uint64_t pc) {
        trace_log_.Add({.kind = TraceEventKind::kInstruction, .rank = rank_,
                        .instret = v.instret(), .pc = pc});
      });
    } else {
      vm_.SetInsnTraceHook(nullptr);
    }
  } else {
    vm_.taint().set_enabled(false);
    vm_.SetInstretSample(0, nullptr);
    vm_.SetInsnTraceHook(nullptr);
    vm_.SetTaintedOutputHook(nullptr);
  }
}

void Chaser::Detach() {
  attached_ = false;
  injector_active_ = false;
  trigger_.reset();
  vm_.SetInstrumentPredicate(nullptr);
  vm_.set_injector_hook(nullptr);
  vm_.RequestTbFlush();
}

void Chaser::OnInjectorHelper(std::uint64_t pc) {
  if (!injector_active_ || !cmd_) return;
  ++exec_count_;
  if (cmd_->profile_sites) ++site_execs_[pc];
  if (!trigger_->ShouldFireAt(exec_count_, pc, *rng_)) {
    if (trigger_->Expired()) {
      // fi_clean_cb: stop screening and flush the instrumentation out of the
      // translation cache; tracing (taint) stays on.
      injector_active_ = false;
      vm_.SetInstrumentPredicate(nullptr);
      vm_.set_injector_hook(nullptr);
      vm_.RequestTbFlush();
    }
    return;
  }

  const obs::ScopedPhase obs_scope(obs::Phase::kInject);
  const guest::Instruction& instr = vm_.program()->text[pc];
  InjectionContext ctx{vm_, pc, instr, exec_count_, vm_.instret(), *rng_, records_};
  const std::size_t before = records_.size();
  cmd_->injector->Inject(ctx);
  for (std::size_t i = before; i < records_.size(); ++i) {
    InjectionRecord& rec = records_[i];
    rec.pc = pc;
    rec.exec_count = exec_count_;
    rec.instr_class = guest::ClassOf(instr.op);
    trace_log_.Add({.kind = TraceEventKind::kInjection, .rank = rank_,
                    .instret = vm_.instret(), .pc = pc, .vaddr = rec.vaddr,
                    .paddr = 0, .size = 8, .value = rec.new_value,
                    .taint = rec.flip_mask});
    LogDebug(rec.Describe());
  }

  if (trigger_->Expired()) {
    injector_active_ = false;
    vm_.SetInstrumentPredicate(nullptr);
    vm_.set_injector_hook(nullptr);
    vm_.RequestTbFlush();
  }
}

}  // namespace chaser::core

// ChaserMpi: supervise a whole MPI job.
//
// Attaches one Chaser per rank VM, wires the cluster's MPI hooks to a
// TaintHub, and injects faults only into the designated ranks (the paper's
// Matvec campaign injects into the master node only). All ranks trace, so
// faults that cross rank boundaries keep propagating on the receiving side.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "core/chaser.h"
#include "hub/mpi_hooks.h"
#include "hub/tainthub.h"
#include "mpi/cluster.h"

namespace chaser::core {

class ChaserMpi {
 public:
  explicit ChaserMpi(mpi::Cluster& cluster);
  /// `external_hub`, when non-null, replaces the in-process TaintHub (e.g. a
  /// hub::remote::RemoteTaintHub talking to chaser_hubd). The caller keeps
  /// ownership and must outlive this ChaserMpi.
  ChaserMpi(mpi::Cluster& cluster, Chaser::Options options,
            hub::HubService* external_hub = nullptr);

  ChaserMpi(const ChaserMpi&) = delete;
  ChaserMpi& operator=(const ChaserMpi&) = delete;

  /// Arm injection on `inject_ranks` (empty set = all ranks); every other
  /// rank is armed trace-only so propagation is observed end to end.
  /// Each injecting rank derives its own seed from cmd.seed.
  void Arm(const InjectionCommand& cmd, const std::set<Rank>& inject_ranks);

  Chaser& rank_chaser(Rank r) { return *chasers_[static_cast<std::size_t>(r)]; }
  const Chaser& rank_chaser(Rank r) const { return *chasers_[static_cast<std::size_t>(r)]; }
  hub::HubService& hub() { return *hub_; }
  mpi::Cluster& cluster() { return cluster_; }

  // ---- Aggregates across all ranks ------------------------------------------
  std::uint64_t total_injections() const;
  std::uint64_t total_tainted_reads() const;
  std::uint64_t total_tainted_writes() const;
  /// True if any tainted message crossed from `src` to a different rank.
  bool FaultPropagatedFrom(Rank src) const;
  /// True if any tainted message crossed between different *nodes*.
  bool FaultPropagatedAcrossNodes() const;

 private:
  mpi::Cluster& cluster_;
  hub::TaintHub owned_hub_;     // used unless an external hub is supplied
  hub::HubService* hub_;        // the hub everything actually talks to
  hub::ChaserMpiHooks hooks_;
  std::vector<std::unique_ptr<Chaser>> chasers_;
};

}  // namespace chaser::core

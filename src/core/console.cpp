#include "core/console.h"

#include "common/error.h"
#include "common/strings.h"
#include "core/injectors/deterministic_injector.h"
#include "core/injectors/group_injector.h"
#include "core/injectors/probabilistic_injector.h"

namespace chaser::core {

void PluginRegistry::LoadPlugin(const std::string& plugin_name,
                                const PluginInit& init) {
  FiInterface iface = init();  // plugin_init()
  if (iface.command.empty()) {
    throw ConfigError("plugin '" + plugin_name + "' exported an empty command");
  }
  if (commands_.count(iface.command) != 0) {
    throw ConfigError("plugin '" + plugin_name + "' re-registers command '" +
                      iface.command + "'");
  }
  commands_[iface.command] = std::move(iface);
}

void PluginRegistry::Dispatch(const std::string& command_line) {
  std::vector<std::string> tokens = SplitWhitespace(command_line);
  if (tokens.empty()) throw CommandError("empty command line");
  const auto it = commands_.find(tokens[0]);
  if (it == commands_.end()) {
    throw CommandError("unknown command '" + tokens[0] + "'");
  }
  tokens.erase(tokens.begin());
  it->second.handler(tokens);
}

namespace {

std::uint64_t ArgU64(const std::vector<std::string>& args, std::size_t i,
                     const std::string& flag) {
  if (i >= args.size()) throw CommandError("missing value for " + flag);
  std::uint64_t v = 0;
  if (!ParseU64(args[i], &v)) {
    throw CommandError("bad integer '" + args[i] + "' for " + flag);
  }
  return v;
}

double ArgDouble(const std::vector<std::string>& args, std::size_t i,
                 const std::string& flag) {
  if (i >= args.size()) throw CommandError("missing value for " + flag);
  double v = 0;
  if (!ParseDouble(args[i], &v)) {
    throw CommandError("bad number '" + args[i] + "' for " + flag);
  }
  return v;
}

std::string ArgString(const std::vector<std::string>& args, std::size_t i,
                      const std::string& flag) {
  if (i >= args.size()) throw CommandError("missing value for " + flag);
  return args[i];
}

}  // namespace

InjectionCommand ParseInjectFault(const std::vector<std::string>& args) {
  InjectionCommand cmd;
  std::string model = "det";
  std::uint64_t nth = 1, first = 1, stride = 1, max_injections = 1;
  double probability = 0.001;
  unsigned nbits = 1;
  unsigned operand_index = 0;
  std::uint64_t exact_mask = 0;
  bool have_mask = false;
  std::uint64_t mem_addr = 0;
  std::uint64_t mem_size = 8;
  bool have_addr = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "-p") {
      cmd.target_program = ArgString(args, ++i, a);
    } else if (a == "-i") {
      for (const std::string& cls : Split(ArgString(args, ++i, a), ',')) {
        guest::InstrClass parsed;
        if (!guest::ParseInstrClass(cls, &parsed)) {
          throw CommandError("unknown instruction class '" + cls + "'");
        }
        cmd.target_classes.insert(parsed);
      }
    } else if (a == "-m") {
      model = ToLower(ArgString(args, ++i, a));
    } else if (a == "-c") {
      nth = first = ArgU64(args, ++i, a);
    } else if (a == "-P") {
      probability = ArgDouble(args, ++i, a);
    } else if (a == "-stride") {
      stride = ArgU64(args, ++i, a);
    } else if (a == "-max") {
      max_injections = ArgU64(args, ++i, a);
    } else if (a == "-b") {
      nbits = static_cast<unsigned>(ArgU64(args, ++i, a));
    } else if (a == "-o") {
      operand_index = static_cast<unsigned>(ArgU64(args, ++i, a));
    } else if (a == "-mask") {
      exact_mask = ArgU64(args, ++i, a);
      have_mask = true;
    } else if (a == "-addr") {
      mem_addr = ArgU64(args, ++i, a);
      have_addr = true;
    } else if (a == "-size") {
      mem_size = ArgU64(args, ++i, a);
    } else if (a == "-s") {
      cmd.seed = ArgU64(args, ++i, a);
    } else if (a == "-notrace") {
      cmd.trace = false;
    } else {
      throw CommandError("unknown inject_fault flag '" + a + "'");
    }
  }

  if (cmd.target_program.empty()) {
    throw CommandError("inject_fault: -p <program> is required");
  }
  if (cmd.target_classes.empty()) {
    throw CommandError("inject_fault: -i <instruction class> is required");
  }

  if (have_addr && !have_mask) {
    throw CommandError("inject_fault: -addr requires -mask");
  }

  if (model == "det") {
    cmd.trigger = std::make_shared<DeterministicTrigger>(nth);
    if (have_addr) {
      // Memory-targeted corruption (CORRUPT_MEMORY through the console).
      cmd.injector = std::make_shared<DeterministicInjector>(
          static_cast<GuestAddr>(mem_addr), static_cast<std::uint32_t>(mem_size),
          exact_mask);
    } else if (have_mask) {
      cmd.injector = std::make_shared<DeterministicInjector>(operand_index, exact_mask);
    } else {
      cmd.injector = std::make_shared<ProbabilisticInjector>(nbits);
    }
  } else if (model == "prob") {
    cmd.trigger = std::make_shared<ProbabilisticTrigger>(probability, max_injections);
    cmd.injector = std::make_shared<ProbabilisticInjector>(nbits);
  } else if (model == "group") {
    cmd.trigger = std::make_shared<GroupTrigger>(first, stride, max_injections);
    cmd.injector = std::make_shared<GroupInjector>(nbits);
  } else {
    throw CommandError("unknown fault model '" + model + "' (det|prob|group)");
  }
  return cmd;
}

FiInterface MakeFaultInjectionPlugin(std::function<void(InjectionCommand)> sink) {
  FiInterface iface;
  iface.command = "inject_fault";
  iface.help =
      "inject_fault -p <program> -i <classes> -m <det|prob|group> "
      "[-c n] [-P p] [-stride s] [-max k] [-b bits] [-o operand] "
      "[-mask hex] [-addr hex -size n] [-s seed] [-notrace]";
  iface.handler = [sink = std::move(sink)](const std::vector<std::string>& args) {
    sink(ParseInjectFault(args));  // do_fi_fault
  };
  return iface;
}

}  // namespace chaser::core

// Multi-bit injector (CHAOS/NAIL-style adjacent-bit upset).
//
// Fault model: when the trigger fires, flip a *contiguous* run of `nbits`
// bits at a uniformly random position of a uniformly random source operand.
// Single-event upsets in dense SRAM cells frequently clobber physically
// adjacent bits; this models that burst shape in one register, unlike
// ProbabilisticInjector whose flipped bits are independently placed.
#pragma once

#include <memory>

#include "core/injector.h"

namespace chaser::core {

class MultiBitInjector final : public FaultInjector {
 public:
  /// Flip a contiguous run of `nbits` bits (clamped to [1, 64]).
  explicit MultiBitInjector(unsigned nbits = 2);

  void Inject(InjectionContext& ctx) override;
  std::string name() const override { return "multibit"; }

  static std::shared_ptr<FaultInjector> Create(unsigned nbits = 2);

 private:
  unsigned nbits_;
};

}  // namespace chaser::core

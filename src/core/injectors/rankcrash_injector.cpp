// Rank-crash injector plugin. Kills the guest process via the exported
// RaiseSignal interface; no architectural state is corrupted.
#include "core/injectors/rankcrash_injector.h"

namespace chaser::core {

std::shared_ptr<FaultInjector> RankCrashInjector::Create() {
  return std::make_shared<RankCrashInjector>();
}

void RankCrashInjector::Inject(InjectionContext& ctx) {
  // Record the injection before pulling the trigger (the record sink lives
  // in Chaser, which stamps pc/exec_count after this returns).
  InjectionRecord rec;
  rec.instret = ctx.vm.instret();
  rec.old_value = rec.new_value = 0;
  rec.flip_mask = 0;
  ctx.records.push_back(rec);

  ctx.vm.RaiseSignal(vm::GuestSignal::kCrash,
                     "injected rank crash (fault injection)");
}

}  // namespace chaser::core

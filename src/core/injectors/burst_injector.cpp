// Spatial-burst injector plugin. Built only from Chaser's exported
// interfaces: InjectionContext, OperandsOf, RandomBitMask, CORRUPT_*.
#include "core/injectors/burst_injector.h"

#include "common/bits.h"
#include "guest/operands.h"

namespace chaser::core {

BurstInjector::BurstInjector(unsigned span, unsigned nbits)
    : span_(span == 0 ? 1 : span > guest::kNumIntRegs ? guest::kNumIntRegs
                                                      : span),
      nbits_(nbits == 0 ? 1 : nbits) {}

std::shared_ptr<FaultInjector> BurstInjector::Create(unsigned span,
                                                     unsigned nbits) {
  return std::make_shared<BurstInjector>(span, nbits);
}

void BurstInjector::Inject(InjectionContext& ctx) {
  // Base register: a uniform source operand, falling back to the destination
  // for operand-free instructions (same choice rule as the probabilistic
  // injector, so trigger statistics stay comparable across fault models).
  const guest::OperandInfo ops = guest::OperandsOf(ctx.instr);
  const std::size_t total = ops.int_sources.size() + ops.fp_sources.size();
  unsigned base = ctx.instr.rd;
  bool fp_file = guest::IsFpOpcode(ctx.instr.op);
  if (total != 0) {
    const std::size_t pick = ctx.rng.Index(total);
    if (pick < ops.int_sources.size()) {
      base = ops.int_sources[pick];
      fp_file = false;
    } else {
      base = ops.fp_sources[pick - ops.int_sources.size()];
      fp_file = true;
    }
  }
  const unsigned file_size = fp_file ? guest::kNumFpRegs : guest::kNumIntRegs;
  for (unsigned i = 0; i < span_; ++i) {
    const unsigned reg = (base + i) % file_size;
    const std::uint64_t mask = RandomBitMask(ctx.rng, nbits_, 64);
    if (fp_file) {
      ctx.records.push_back(CorruptFpRegister(ctx.vm, reg, mask));
    } else {
      ctx.records.push_back(CorruptIntRegister(ctx.vm, reg, mask));
    }
  }
}

}  // namespace chaser::core

// Instruction-skip injector plugin. The squash itself is the exported
// Vm::SkipCurrentInstruction interface; the rest of this file marks the
// skipped instruction's would-be destinations tainted (values unchanged,
// Touch semantics) so the tracer can follow the missing update.
#include "core/injectors/iskip_injector.h"

#include "guest/operands.h"
#include "tcg/ir.h"

namespace chaser::core {

namespace {

/// True when `op` writes an architectural destination register (rd).
bool WritesRd(guest::Opcode op) {
  using GO = guest::Opcode;
  switch (op) {
    case GO::kSt:
    case GO::kFst:
    case GO::kPush:
    case GO::kCmp:
    case GO::kFcmp:
    case GO::kJmp:
    case GO::kBr:
    case GO::kCall:
    case GO::kCallR:
    case GO::kRet:
    case GO::kSyscall:
    case GO::kHalt:
    case GO::kNop:
      return false;
    default:
      return true;
  }
}

/// True when skipping `op` leaves the stack pointer un-updated.
bool WritesSp(guest::Opcode op) {
  using GO = guest::Opcode;
  return op == GO::kPush || op == GO::kPop || op == GO::kCall ||
         op == GO::kCallR || op == GO::kRet;
}

}  // namespace

std::shared_ptr<FaultInjector> ISkipInjector::Create() {
  return std::make_shared<ISkipInjector>();
}

void ISkipInjector::Inject(InjectionContext& ctx) {
  using GO = guest::Opcode;
  const guest::Instruction& in = ctx.instr;

  ctx.vm.SkipCurrentInstruction();

  // Would-be register destination: taint it with its (now stale) value.
  if (WritesRd(in.op)) {
    if (guest::IsFpOpcode(in.op) && in.op != GO::kCvtFI && in.op != GO::kFbits) {
      ctx.records.push_back(TouchFpRegister(ctx.vm, in.rd));
    } else {
      ctx.records.push_back(TouchIntRegister(ctx.vm, in.rd));
    }
  }
  if (WritesSp(in.op) && !(WritesRd(in.op) && in.rd == guest::kSpReg)) {
    ctx.records.push_back(TouchIntRegister(ctx.vm, guest::kSpReg));
  }

  // Skipped compares leave stale flags behind the next branch.
  if (in.op == GO::kCmp || in.op == GO::kFcmp) {
    ctx.vm.taint().TaintSourceRegister(tcg::kEnvFlags, ~std::uint64_t{0});
  }

  // Would-be store destination: taint the unwritten memory bytes in place.
  if (in.op == GO::kSt || in.op == GO::kFst) {
    const GuestAddr vaddr =
        ctx.vm.cpu().IntReg(in.rs1) + static_cast<std::uint64_t>(in.imm);
    const auto size = static_cast<std::uint32_t>(in.size);
    PhysAddr paddr = 0;
    if (ctx.vm.memory().Load(vaddr, size, &paddr).has_value()) {
      ctx.vm.taint().TaintSourceMemory(paddr, size, ~std::uint64_t{0});
    }
  }
}

}  // namespace chaser::core

// Instruction-skip injector (InjectV-style control fault).
//
// Fault model: when the trigger fires, the targeted instruction is squashed
// — the VM resumes at the next instruction without executing it — and every
// location the instruction *would have written* (destination register,
// flags, stored-to memory) is marked tainted with its value unchanged, so
// the propagation tracer follows the consequences of the missing update.
#pragma once

#include <memory>

#include "core/injector.h"

namespace chaser::core {

class ISkipInjector final : public FaultInjector {
 public:
  ISkipInjector() = default;

  void Inject(InjectionContext& ctx) override;
  std::string name() const override { return "iskip"; }

  static std::shared_ptr<FaultInjector> Create();
};

}  // namespace chaser::core

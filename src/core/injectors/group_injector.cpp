// Group injector plugin: corrupt all FP operands of the fired instruction.
#include "core/injectors/group_injector.h"

#include "common/bits.h"
#include "guest/operands.h"

namespace chaser::core {

GroupInjector::GroupInjector(unsigned nbits) : nbits_(nbits == 0 ? 1 : nbits) {}

std::shared_ptr<FaultInjector> GroupInjector::Create(unsigned nbits) {
  return std::make_shared<GroupInjector>(nbits);
}

void GroupInjector::Inject(InjectionContext& ctx) {
  const guest::OperandInfo ops = guest::OperandsOf(ctx.instr);

  if (!ops.fp_sources.empty()) {
    for (const std::uint8_t reg : ops.fp_sources) {
      const std::uint64_t mask = RandomBitMask(ctx.rng, nbits_, 64);
      ctx.records.push_back(CorruptFpRegister(ctx.vm, reg, mask));
    }
    return;
  }

  // Instruction has no FP sources (the user targeted a non-FP class):
  // degrade gracefully to corrupting every integer source operand.
  if (!ops.int_sources.empty()) {
    for (const std::uint8_t reg : ops.int_sources) {
      const std::uint64_t mask = RandomBitMask(ctx.rng, nbits_, 64);
      ctx.records.push_back(CorruptIntRegister(ctx.vm, reg, mask));
    }
    return;
  }

  const std::uint64_t mask = RandomBitMask(ctx.rng, nbits_, 64);
  if (guest::IsFpOpcode(ctx.instr.op)) {
    ctx.records.push_back(CorruptFpRegister(ctx.vm, ctx.instr.rd, mask));
  } else {
    ctx.records.push_back(CorruptIntRegister(ctx.vm, ctx.instr.rd, mask));
  }
}

}  // namespace chaser::core

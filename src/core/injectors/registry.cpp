#include "core/injectors/registry.h"

#include "common/error.h"
#include "core/injectors/burst_injector.h"
#include "core/injectors/deterministic_injector.h"
#include "core/injectors/group_injector.h"
#include "core/injectors/iskip_injector.h"
#include "core/injectors/multibit_injector.h"
#include "core/injectors/probabilistic_injector.h"
#include "core/injectors/rankcrash_injector.h"
#include "core/injectors/stuckat_injector.h"

namespace chaser::core {

namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

std::string ValidKeysOf(const InjectorRegistry::Entry& entry) {
  if (entry.params.empty()) return "takes no parameters";
  std::string out = "valid keys: ";
  for (std::size_t i = 0; i < entry.params.size(); ++i) {
    if (i != 0) out += ", ";
    out += entry.params[i].key;
  }
  return out;
}

void RegisterBuiltins(InjectorRegistry& r) {
  using Entry = InjectorRegistry::Entry;
  r.Register(Entry{
      "probabilistic",
      "transient-bitflip",
      "flip random bits of a random source operand (the default fault model)",
      {{"bits", "number of bits to flip (default: the trial's draw)"},
       {"width", "restrict flips to the low N bits (default 64)"}},
      [](const InjectorArgs& a) {
        return ProbabilisticInjector::Create(
            static_cast<unsigned>(a.U64("bits", a.flip_bits)),
            static_cast<unsigned>(a.U64("width", 64)));
      }});
  r.Register(Entry{
      "deterministic",
      "transient-bitflip",
      "flip an exact mask on an exact source operand (bit-for-bit replay)",
      {{"operand", "source operand index, int sources first (default 0)"},
       {"mask", "XOR mask to apply (default 0x1)"}},
      [](const InjectorArgs& a) {
        return DeterministicInjector::Create(
            static_cast<unsigned>(a.U64("operand", 0)), a.U64("mask", 1));
      }});
  r.Register(Entry{
      "group",
      "transient-bitflip",
      "corrupt every FP source operand of the targeted instruction",
      {{"bits", "bits to flip per operand (default: the trial's draw)"}},
      [](const InjectorArgs& a) {
        return GroupInjector::Create(
            static_cast<unsigned>(a.U64("bits", a.flip_bits)));
      }});
  r.Register(Entry{
      "multibit",
      "transient-bitflip",
      "flip a contiguous bit burst at a random position of one operand",
      {{"bits", "burst width in bits (default: the trial's draw)"}},
      [](const InjectorArgs& a) {
        return MultiBitInjector::Create(
            static_cast<unsigned>(a.U64("bits", a.flip_bits)));
      }});
  r.Register(Entry{
      "burst",
      "spatial-burst",
      "corrupt a span of adjacent registers in one strike",
      {{"span", "number of adjacent registers (default 2)"},
       {"bits", "bits to flip per register (default: the trial's draw)"}},
      [](const InjectorArgs& a) {
        return BurstInjector::Create(
            static_cast<unsigned>(a.U64("span", 2)),
            static_cast<unsigned>(a.U64("bits", a.flip_bits)));
      }});
  r.Register(Entry{
      "stuckat",
      "stuck-at",
      "pin random bits of a register to 0/1 for the rest of the trial",
      {{"value", "stuck value, 0 or 1 (default 0)"},
       {"bits", "number of pinned bits (default: the trial's draw)"}},
      [](const InjectorArgs& a) {
        const std::uint64_t value = a.U64("value", 0);
        if (value > 1) {
          throw ConfigError("--injector stuckat: value must be 0 or 1");
        }
        return StuckAtInjector::Create(
            static_cast<unsigned>(value),
            static_cast<unsigned>(a.U64("bits", a.flip_bits)));
      }});
  r.Register(Entry{"iskip",
                   "instruction-skip",
                   "squash the targeted instruction; taint its destinations",
                   {},
                   [](const InjectorArgs&) { return ISkipInjector::Create(); }});
  r.Register(Entry{"rank-crash",
                   "process-crash",
                   "kill the injected guest rank mid-run (FINJ-style)",
                   {},
                   [](const InjectorArgs&) {
                     return RankCrashInjector::Create();
                   }});
}

}  // namespace

bool InjectorArgs::Has(const std::string& key) const {
  for (const KeyVal& kv : params) {
    if (kv.key == key) return true;
  }
  return false;
}

std::uint64_t InjectorArgs::U64(const std::string& key,
                                std::uint64_t def) const {
  for (const KeyVal& kv : params) {
    if (kv.key != key) continue;
    std::uint64_t v = 0;
    if (!ParseU64(kv.value, &v)) {
      throw ConfigError("--injector: bad value '" + kv.value + "' for key '" +
                        key + "'");
    }
    return v;
  }
  return def;
}

InjectorRegistry& InjectorRegistry::Global() {
  static InjectorRegistry* registry = [] {
    auto* r = new InjectorRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

void InjectorRegistry::Register(Entry entry) {
  if (entry.name.empty()) {
    throw ConfigError("InjectorRegistry: empty injector name");
  }
  if (!entries_.emplace(entry.name, entry).second) {
    throw ConfigError("InjectorRegistry: duplicate injector '" + entry.name +
                      "'");
  }
}

const InjectorRegistry::Entry* InjectorRegistry::Find(
    const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> InjectorRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::shared_ptr<FaultInjector> InjectorRegistry::Create(
    const InjectorSpec& spec, unsigned flip_bits) const {
  const Entry* entry = Find(spec.name);
  if (entry == nullptr) {
    throw ConfigError("--injector: unknown injector '" + spec.name +
                      "' (registered: " + JoinNames(Names()) + ")");
  }
  for (const KeyVal& kv : spec.params) {
    bool known = false;
    for (const ParamSpec& p : entry->params) {
      if (p.key == kv.key) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw ConfigError("--injector " + spec.name + ": unknown parameter '" +
                        kv.key + "' (" + ValidKeysOf(*entry) + ")");
    }
  }
  const InjectorArgs args{spec.params, flip_bits};
  return entry->factory(args);
}

InjectorSpec ParseInjectorSpec(const std::string& text) {
  InjectorSpec spec;
  const auto colon = text.find(':');
  spec.name = text.substr(0, colon);
  if (colon != std::string::npos) {
    std::string bad;
    if (!ParseKeyValList(text.substr(colon + 1), &spec.params, &bad) ||
        spec.params.empty()) {
      throw ConfigError("--injector " + spec.name +
                        ": expected key=value after ':', got '" + bad + "'");
    }
  }
  // Validate eagerly so a bad spec fails at flag-parse time, not mid-
  // campaign: unknown names/keys throw here with the full choice list.
  // flip_bits=1 stands in for the per-trial draw during validation.
  InjectorRegistry::Global().Create(spec, 1);
  return spec;
}

}  // namespace chaser::core

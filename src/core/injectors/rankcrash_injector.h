// Rank-crash injector (FINJ-style system-level fault).
//
// Fault model: when the trigger fires, the targeted guest rank dies on the
// spot — GuestSignal::kCrash, a hard process crash distinct from every
// program-raised signal. The cluster contains the failure exactly like any
// other abnormal rank exit (surviving ranks are torn down, their in-flight
// hub polls hit the abandon path), and the campaign accounts the trial as
// Outcome::kCrashed, distinct from kInfra harness failures.
#pragma once

#include <memory>

#include "core/injector.h"

namespace chaser::core {

class RankCrashInjector final : public FaultInjector {
 public:
  RankCrashInjector() = default;

  void Inject(InjectionContext& ctx) override;
  std::string name() const override { return "rank-crash"; }

  static std::shared_ptr<FaultInjector> Create();
};

}  // namespace chaser::core

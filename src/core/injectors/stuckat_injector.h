// Stuck-at injector (CHAOS/NAIL-style persistent register fault).
//
// Fault model: from the moment the trigger fires until the end of the trial,
// `nbits` random bit positions of one register are stuck at 0 or at 1. The
// pin lives in the VM (Vm::AddStuckFault) and is re-asserted at every
// instruction boundary, so every subsequent read observes the stuck bits no
// matter what the program writes — across TB-chain boundaries and
// translation-cache flushes alike. The stuck bits are marked as a taint
// source at installation, and every later re-pin that actually flips state
// re-taints the changed bits, so the propagation tracer follows the fault
// for its whole lifetime.
#pragma once

#include <memory>

#include "core/injector.h"

namespace chaser::core {

class StuckAtInjector final : public FaultInjector {
 public:
  /// Pin `nbits` random bits of a random operand register to `value` (0 or
  /// 1) for the rest of the trial.
  explicit StuckAtInjector(unsigned value = 0, unsigned nbits = 1);

  void Inject(InjectionContext& ctx) override;
  std::string name() const override { return "stuckat"; }

  static std::shared_ptr<FaultInjector> Create(unsigned value = 0,
                                               unsigned nbits = 1);

 private:
  unsigned value_;  // 0 = stuck-at-0, nonzero = stuck-at-1
  unsigned nbits_;
};

}  // namespace chaser::core

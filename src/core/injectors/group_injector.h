// Group injector (bundled plugin #3, Table II).
//
// Fault model: multiple faults — every time the trigger fires (typically a
// GroupTrigger hitting every stride-th execution of *all* floating-point
// instruction classes), corrupt every FP source operand of the instruction.
// Models burst/multi-bit upsets affecting the whole FP pipeline.
#pragma once

#include <memory>

#include "core/injector.h"

namespace chaser::core {

class GroupInjector final : public FaultInjector {
 public:
  /// Flip `nbits` random bits in each affected operand.
  explicit GroupInjector(unsigned nbits = 1);

  void Inject(InjectionContext& ctx) override;
  std::string name() const override { return "group"; }

  static std::shared_ptr<FaultInjector> Create(unsigned nbits = 1);

 private:
  unsigned nbits_;
};

}  // namespace chaser::core

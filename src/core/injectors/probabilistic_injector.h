// Probabilistic injector (bundled plugin #1, Table II).
//
// Fault model: when the trigger fires (typically a ProbabilisticTrigger),
// corrupt a uniformly random source operand of the targeted instruction by
// flipping `nbits` uniformly random bits. This is F-SEFI's probabilistic
// model rebuilt on Chaser's exported interfaces.
#pragma once

#include <memory>

#include "core/injector.h"

namespace chaser::core {

class ProbabilisticInjector final : public FaultInjector {
 public:
  /// Flip `nbits` random bits in a random operand. `bit_width` restricts the
  /// flipped bit positions to the low `bit_width` bits (64 = anywhere).
  explicit ProbabilisticInjector(unsigned nbits = 1, unsigned bit_width = 64);

  void Inject(InjectionContext& ctx) override;
  std::string name() const override { return "probabilistic"; }

  static std::shared_ptr<FaultInjector> Create(unsigned nbits = 1,
                                               unsigned bit_width = 64);

 private:
  unsigned nbits_;
  unsigned bit_width_;
};

}  // namespace chaser::core

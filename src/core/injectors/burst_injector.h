// Spatial-burst injector (CHAOS-style multi-register upset).
//
// Fault model: one particle strike clobbering a *span* of physically
// adjacent architectural registers. When the trigger fires, pick a base
// register (a random source operand of the targeted instruction, or its
// destination for operand-free instructions) and corrupt `span` consecutive
// registers of that file — wrapping modulo the file size — each with an
// independent `nbits`-bit random flip.
#pragma once

#include <memory>

#include "core/injector.h"

namespace chaser::core {

class BurstInjector final : public FaultInjector {
 public:
  /// Corrupt `span` adjacent registers (clamped to [1, file size]), flipping
  /// `nbits` random bits in each.
  explicit BurstInjector(unsigned span = 2, unsigned nbits = 1);

  void Inject(InjectionContext& ctx) override;
  std::string name() const override { return "burst"; }

  static std::shared_ptr<FaultInjector> Create(unsigned span = 2,
                                               unsigned nbits = 1);

 private:
  unsigned span_;
  unsigned nbits_;
};

}  // namespace chaser::core

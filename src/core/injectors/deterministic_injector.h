// Deterministic injector (bundled plugin #2, Table II).
//
// Fault model: corrupt an exactly specified location — the k-th source
// operand of the targeted instruction (or a fixed memory address) — by
// flipping exactly the specified bit positions. Paired with a
// DeterministicTrigger this reproduces a fault bit-for-bit, which is how the
// paper re-runs "the same two cases" for the Fig. 7 analysis.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/injector.h"

namespace chaser::core {

class DeterministicInjector final : public FaultInjector {
 public:
  /// Corrupt source operand number `operand_index` (clamped to the operand
  /// count; integer sources order before FP sources) by XOR-ing `flip_mask`.
  DeterministicInjector(unsigned operand_index, std::uint64_t flip_mask);

  /// Corrupt `size` bytes of memory at a fixed virtual address instead.
  DeterministicInjector(GuestAddr vaddr, std::uint32_t size, std::uint64_t flip_mask);

  void Inject(InjectionContext& ctx) override;
  std::string name() const override { return "deterministic"; }

  static std::shared_ptr<FaultInjector> Create(unsigned operand_index,
                                               std::uint64_t flip_mask);

 private:
  unsigned operand_index_ = 0;
  std::uint64_t flip_mask_;
  std::optional<GuestAddr> mem_vaddr_;
  std::uint32_t mem_size_ = 8;
};

}  // namespace chaser::core

// Probabilistic injector plugin. Built only from Chaser's exported
// interfaces: InjectionContext, OperandsOf, RandomBitMask, CORRUPT_*.
#include "core/injectors/probabilistic_injector.h"

#include "common/bits.h"
#include "guest/operands.h"

namespace chaser::core {

ProbabilisticInjector::ProbabilisticInjector(unsigned nbits, unsigned bit_width)
    : nbits_(nbits == 0 ? 1 : nbits),
      bit_width_(bit_width == 0 || bit_width > 64 ? 64 : bit_width) {}

std::shared_ptr<FaultInjector> ProbabilisticInjector::Create(unsigned nbits,
                                                             unsigned bit_width) {
  return std::make_shared<ProbabilisticInjector>(nbits, bit_width);
}

void ProbabilisticInjector::Inject(InjectionContext& ctx) {
  const guest::OperandInfo ops = guest::OperandsOf(ctx.instr);
  const std::uint64_t mask = RandomBitMask(ctx.rng, nbits_, bit_width_);

  // Choose uniformly among all source operands (int and FP together).
  const std::size_t total = ops.int_sources.size() + ops.fp_sources.size();
  if (total == 0) {
    // Operand-free instruction (e.g. movi): corrupt its destination instead,
    // emulating a fault landing in the write-back path.
    if (guest::IsFpOpcode(ctx.instr.op)) {
      ctx.records.push_back(CorruptFpRegister(ctx.vm, ctx.instr.rd, mask));
    } else {
      ctx.records.push_back(CorruptIntRegister(ctx.vm, ctx.instr.rd, mask));
    }
    return;
  }

  const std::size_t pick = ctx.rng.Index(total);
  if (pick < ops.int_sources.size()) {
    ctx.records.push_back(
        CorruptIntRegister(ctx.vm, ops.int_sources[pick], mask));
  } else {
    ctx.records.push_back(CorruptFpRegister(
        ctx.vm, ops.fp_sources[pick - ops.int_sources.size()], mask));
  }
}

}  // namespace chaser::core

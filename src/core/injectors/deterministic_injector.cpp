// Deterministic injector plugin: exact location, exact bits, every time.
#include "core/injectors/deterministic_injector.h"

#include "common/error.h"
#include "guest/operands.h"

namespace chaser::core {

DeterministicInjector::DeterministicInjector(unsigned operand_index,
                                             std::uint64_t flip_mask)
    : operand_index_(operand_index), flip_mask_(flip_mask) {
  if (flip_mask == 0) {
    throw ConfigError("DeterministicInjector: flip_mask must be non-zero");
  }
}

DeterministicInjector::DeterministicInjector(GuestAddr vaddr, std::uint32_t size,
                                             std::uint64_t flip_mask)
    : flip_mask_(flip_mask), mem_vaddr_(vaddr), mem_size_(size) {
  if (flip_mask == 0) {
    throw ConfigError("DeterministicInjector: flip_mask must be non-zero");
  }
  if (size == 0 || size > 8) {
    throw ConfigError("DeterministicInjector: size must be 1..8");
  }
}

std::shared_ptr<FaultInjector> DeterministicInjector::Create(
    unsigned operand_index, std::uint64_t flip_mask) {
  return std::make_shared<DeterministicInjector>(operand_index, flip_mask);
}

void DeterministicInjector::Inject(InjectionContext& ctx) {
  if (mem_vaddr_) {
    ctx.records.push_back(CorruptMemory(ctx.vm, *mem_vaddr_, mem_size_, flip_mask_));
    return;
  }

  const guest::OperandInfo ops = guest::OperandsOf(ctx.instr);
  const std::size_t total = ops.int_sources.size() + ops.fp_sources.size();
  if (total == 0) {
    // No source operands: deterministically corrupt the destination.
    if (guest::IsFpOpcode(ctx.instr.op)) {
      ctx.records.push_back(CorruptFpRegister(ctx.vm, ctx.instr.rd, flip_mask_));
    } else {
      ctx.records.push_back(CorruptIntRegister(ctx.vm, ctx.instr.rd, flip_mask_));
    }
    return;
  }

  const std::size_t pick = operand_index_ % total;
  if (pick < ops.int_sources.size()) {
    ctx.records.push_back(
        CorruptIntRegister(ctx.vm, ops.int_sources[pick], flip_mask_));
  } else {
    ctx.records.push_back(CorruptFpRegister(
        ctx.vm, ops.fp_sources[pick - ops.int_sources.size()], flip_mask_));
  }
}

}  // namespace chaser::core

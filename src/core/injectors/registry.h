// The name-keyed injector registry behind `chaser_run --injector` (paper
// §III-B: users add custom fault injectors against Chaser's exported
// interfaces; Table II's claim is ~100 LOC per injector).
//
// An injector family registers once — a name, a fault-class label for the
// outcome taxonomy, a parameter spec, and a factory — and every campaign
// layer (trial engine, records CSV, journal, chaser_analyze) picks it up by
// name. The factory runs once per trial, after the trial's RNG draws, so a
// family can default its parameters from the campaign's per-trial bit-flip
// width and still be fully deterministic in the trial's run_seed.
//
// The bundled families and their fault classes:
//
//   probabilistic  transient-bitflip   random bits of a random operand
//   deterministic  transient-bitflip   exact mask on an exact operand
//   group          transient-bitflip   every FP source operand at once
//   multibit       transient-bitflip   contiguous bit burst in one operand
//   burst          spatial-burst       adjacent *registers* corrupted together
//   stuckat        stuck-at            bits pinned to 0/1 for the whole trial
//   iskip          instruction-skip    targeted instruction squashed
//   rank-crash     process-crash       the injected rank dies mid-run
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/injector.h"

namespace chaser::core {

/// A parsed `--injector name[:key=val,...]` spec. An empty name selects the
/// campaign's default fault model (the legacy probabilistic bit-flip path,
/// byte-identical to pre-registry output).
struct InjectorSpec {
  std::string name;
  std::vector<KeyVal> params;

  bool IsDefault() const { return name.empty(); }
};

/// What a factory receives when a trial builds its injector: the parsed
/// spec parameters plus the campaign's per-trial `flip_bits` draw, so
/// families that take a bit count default to the campaign's
/// --flip-bits-min/max behaviour when the spec does not pin one.
struct InjectorArgs {
  const std::vector<KeyVal>& params;
  unsigned flip_bits = 1;

  bool Has(const std::string& key) const;
  /// Value of `key` parsed as u64, or `def` when absent. Throws ConfigError
  /// naming the key on a malformed value.
  std::uint64_t U64(const std::string& key, std::uint64_t def) const;
};

class InjectorRegistry {
 public:
  struct ParamSpec {
    std::string key;
    std::string help;
  };
  using Factory =
      std::function<std::shared_ptr<FaultInjector>(const InjectorArgs&)>;

  struct Entry {
    std::string name;
    std::string fault_class;  // taxonomy bucket (see file comment)
    std::string help;         // one line for --injector error/usage text
    std::vector<ParamSpec> params;
    Factory factory;
  };

  /// The process-wide registry; the bundled families are pre-registered.
  static InjectorRegistry& Global();

  /// Throws ConfigError on a duplicate name.
  void Register(Entry entry);

  const Entry* Find(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// Build one trial's injector. Throws ConfigError on an unknown name
  /// (listing every registered name) or an unknown parameter key (listing
  /// the family's valid keys). `flip_bits` is the trial's bit-width draw.
  std::shared_ptr<FaultInjector> Create(const InjectorSpec& spec,
                                        unsigned flip_bits) const;

 private:
  std::map<std::string, Entry> entries_;
};

/// Parse and validate "name[:key=val,...]" against the global registry.
/// Throws ConfigError naming the offending token and the valid choices.
InjectorSpec ParseInjectorSpec(const std::string& text);

/// Self-registration for out-of-tree injector plugins: place at namespace
/// scope in the plugin's .cpp (the README walkthrough uses this). Bundled
/// families register from registry.cpp instead — a static-library archive
/// only runs a TU's initializers when one of its symbols is referenced.
#define CHASER_REGISTER_INJECTOR(ident, ...)                              \
  static const bool chaser_injector_registered_##ident [[maybe_unused]] = \
      ([] {                                                               \
        ::chaser::core::InjectorRegistry::Global().Register(__VA_ARGS__); \
        return true;                                                      \
      })()

}  // namespace chaser::core

// Stuck-at injector plugin. Installs a persistent pin via the exported
// Vm::AddStuckFault interface; record bookkeeping mirrors CORRUPT_REGISTER.
#include "core/injectors/stuckat_injector.h"

#include "common/bits.h"
#include "guest/operands.h"
#include "tcg/ir.h"

namespace chaser::core {

StuckAtInjector::StuckAtInjector(unsigned value, unsigned nbits)
    : value_(value), nbits_(nbits == 0 ? 1 : nbits) {}

std::shared_ptr<FaultInjector> StuckAtInjector::Create(unsigned value,
                                                       unsigned nbits) {
  return std::make_shared<StuckAtInjector>(value, nbits);
}

void StuckAtInjector::Inject(InjectionContext& ctx) {
  const std::uint64_t mask = RandomBitMask(ctx.rng, nbits_, 64);

  // Register choice rule shared with the probabilistic injector: a uniform
  // source operand, or the destination when the instruction has none.
  const guest::OperandInfo ops = guest::OperandsOf(ctx.instr);
  const std::size_t total = ops.int_sources.size() + ops.fp_sources.size();
  unsigned reg = ctx.instr.rd;
  bool fp_file = guest::IsFpOpcode(ctx.instr.op);
  if (total != 0) {
    const std::size_t pick = ctx.rng.Index(total);
    if (pick < ops.int_sources.size()) {
      reg = ops.int_sources[pick];
      fp_file = false;
    } else {
      reg = ops.fp_sources[pick - ops.int_sources.size()];
      fp_file = true;
    }
  }

  const tcg::ValId slot = fp_file ? tcg::EnvFp(reg) : tcg::EnvInt(reg);
  const std::uint64_t pin_value = value_ == 0 ? 0 : ~std::uint64_t{0};

  InjectionRecord rec;
  rec.target = fp_file ? InjectionRecord::Target::kFpRegister
                       : InjectionRecord::Target::kIntRegister;
  rec.reg = reg;
  rec.instret = ctx.vm.instret();
  rec.flip_mask = mask;
  rec.old_value = ctx.vm.cpu().env[slot];
  // AddStuckFault applies the pin immediately (tainting any bits it flips);
  // mark the full stuck mask as a taint source as well, so a pin that
  // happens to match the current value still anchors the propagation trace.
  ctx.vm.AddStuckFault(slot, mask, pin_value);
  ctx.vm.taint().TaintSourceRegister(slot, mask);
  rec.new_value = ctx.vm.cpu().env[slot];
  ctx.records.push_back(rec);
}

}  // namespace chaser::core

// Multi-bit injector plugin. Built only from Chaser's exported interfaces.
#include "core/injectors/multibit_injector.h"

#include "guest/operands.h"

namespace chaser::core {

MultiBitInjector::MultiBitInjector(unsigned nbits)
    : nbits_(nbits == 0 ? 1 : nbits > 64 ? 64 : nbits) {}

std::shared_ptr<FaultInjector> MultiBitInjector::Create(unsigned nbits) {
  return std::make_shared<MultiBitInjector>(nbits);
}

void MultiBitInjector::Inject(InjectionContext& ctx) {
  // A contiguous run of nbits_ set bits at a uniform position.
  const std::uint64_t ones =
      nbits_ >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << nbits_) - 1;
  const std::uint64_t pos = ctx.rng.UniformU64(0, 64 - nbits_);
  const std::uint64_t mask = ones << pos;

  const guest::OperandInfo ops = guest::OperandsOf(ctx.instr);
  const std::size_t total = ops.int_sources.size() + ops.fp_sources.size();
  if (total == 0) {
    if (guest::IsFpOpcode(ctx.instr.op)) {
      ctx.records.push_back(CorruptFpRegister(ctx.vm, ctx.instr.rd, mask));
    } else {
      ctx.records.push_back(CorruptIntRegister(ctx.vm, ctx.instr.rd, mask));
    }
    return;
  }
  const std::size_t pick = ctx.rng.Index(total);
  if (pick < ops.int_sources.size()) {
    ctx.records.push_back(
        CorruptIntRegister(ctx.vm, ops.int_sources[pick], mask));
  } else {
    ctx.records.push_back(CorruptFpRegister(
        ctx.vm, ops.fp_sources[pick - ops.int_sources.size()], mask));
  }
}

}  // namespace chaser::core

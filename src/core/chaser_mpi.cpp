#include "core/chaser_mpi.h"

namespace chaser::core {

ChaserMpi::ChaserMpi(mpi::Cluster& cluster) : ChaserMpi(cluster, Chaser::Options{}) {}

ChaserMpi::ChaserMpi(mpi::Cluster& cluster, Chaser::Options options,
                     hub::HubService* external_hub)
    : cluster_(cluster),
      hub_(external_hub != nullptr ? external_hub : &owned_hub_),
      hooks_(hub_) {
  cluster_.SetMessageHooks(&hooks_);
  chasers_.reserve(static_cast<std::size_t>(cluster_.num_ranks()));
  for (Rank r = 0; r < cluster_.num_ranks(); ++r) {
    auto chaser = std::make_unique<Chaser>(cluster_.rank_vm(r), options);
    chaser->set_rank(r);
    chasers_.push_back(std::move(chaser));
  }
}

void ChaserMpi::Arm(const InjectionCommand& cmd, const std::set<Rank>& inject_ranks) {
  // The authoritative per-trial hub reset is ChaserMpiHooks::OnJobStart
  // (fired by Cluster::Start); clearing on re-Arm as well keeps hub state
  // from an old command out of stats read between Arm and Start.
  hub_->Clear();
  for (Rank r = 0; r < cluster_.num_ranks(); ++r) {
    InjectionCommand rank_cmd = cmd;
    rank_cmd.seed = cmd.seed * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(r);
    const bool injects = inject_ranks.empty() || inject_ranks.count(r) != 0;
    if (!injects) {
      rank_cmd.trigger = nullptr;  // trace-only on non-target ranks
      rank_cmd.injector = nullptr;
    }
    chasers_[static_cast<std::size_t>(r)]->Arm(std::move(rank_cmd));
  }
}

std::uint64_t ChaserMpi::total_injections() const {
  std::uint64_t n = 0;
  for (const auto& c : chasers_) n += c->injections().size();
  return n;
}

std::uint64_t ChaserMpi::total_tainted_reads() const {
  std::uint64_t n = 0;
  for (const auto& c : chasers_) n += c->trace_log().tainted_reads();
  return n;
}

std::uint64_t ChaserMpi::total_tainted_writes() const {
  std::uint64_t n = 0;
  for (const auto& c : chasers_) n += c->trace_log().tainted_writes();
  return n;
}

bool ChaserMpi::FaultPropagatedFrom(Rank src) const {
  for (const hub::TransferLogEntry& t : hub_->transfer_log()) {
    if (t.id.src == src && t.id.dest != src) return true;
  }
  return false;
}

bool ChaserMpi::FaultPropagatedAcrossNodes() const {
  for (const hub::TransferLogEntry& t : hub_->transfer_log()) {
    if (cluster_.node_of(t.id.src) != cluster_.node_of(t.id.dest)) return true;
  }
  return false;
}

}  // namespace chaser::core

// The terminal / plugin layer (paper Fig. 4).
//
// DECAF plugins export a `plugin_init()` that returns an fi_interface_st
// describing the terminal commands they add; Chaser's fault-injection plugin
// registers `inject_fault`, whose handler (do_fi_fault) fills an fi_cmds_st.
// This module reproduces that surface: a PluginRegistry dispatches command
// lines to registered FiInterface handlers, and ParseInjectFault turns an
// `inject_fault` argument vector into an InjectionCommand.
//
//   inject_fault -p <program> -i <class>[,<class>...] -m <model> [options]
//
//   models:  det   -c <nth>                  deterministic at n-th execution
//            prob  -P <p> [-max <k>]         probability p per execution
//            group -c <first> [-stride <s>] [-max <k>]
//   common:  -b <nbits>      bits to flip per operand     (default 1)
//            -o <idx>        operand index (det model)    (default 0)
//            -mask <hex>     exact flip mask (det model)
//            -s <seed>       RNG seed                     (default 1)
//            -notrace        disable propagation tracing
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/chaser.h"

namespace chaser::core {

/// fi_interface_st: a terminal command exported by a plugin.
struct FiInterface {
  std::string command;  // e.g. "inject_fault"
  std::string help;
  std::function<void(const std::vector<std::string>& args)> handler;
};

/// Loads plugins (each contributing commands) and dispatches command lines.
class PluginRegistry {
 public:
  using PluginInit = std::function<FiInterface()>;

  /// Call the plugin's plugin_init() and register its command.
  /// Throws ConfigError on duplicate command names.
  void LoadPlugin(const std::string& plugin_name, const PluginInit& init);

  /// Parse "cmd arg arg ..." and invoke the matching handler.
  /// Throws CommandError for unknown commands.
  void Dispatch(const std::string& command_line);

  const std::map<std::string, FiInterface>& commands() const { return commands_; }

 private:
  std::map<std::string, FiInterface> commands_;
};

/// do_fi_fault: parse `inject_fault` arguments (without the command word)
/// into an InjectionCommand. Throws CommandError on malformed input.
InjectionCommand ParseInjectFault(const std::vector<std::string>& args);

/// The bundled fault-injection plugin: returns an fi_interface_st whose
/// handler parses the arguments and hands the resulting command to `sink`.
FiInterface MakeFaultInjectionPlugin(std::function<void(InjectionCommand)> sink);

}  // namespace chaser::core

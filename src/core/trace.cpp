#include "core/trace.h"

#include <ostream>

#include "common/strings.h"
#include "guest/isa.h"

namespace chaser::core {

const char* TraceEventKindName(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kInjection: return "INJECT";
    case TraceEventKind::kTaintedRead: return "T-READ";
    case TraceEventKind::kTaintedWrite: return "T-WRITE";
    case TraceEventKind::kInstruction: return "I-TRACE";
  }
  return "?";
}

std::string TraceEvent::Describe() const {
  return StrFormat(
      "%-7s rank=%d instret=%llu eip=%s vaddr=%s paddr=%s size=%u value=%s taint=%s",
      TraceEventKindName(kind), rank, static_cast<unsigned long long>(instret),
      Hex64(guest::PcToAddr(pc)).c_str(), Hex64(vaddr).c_str(),
      Hex64(paddr).c_str(), size, Hex64(value).c_str(), Hex64(taint).c_str());
}

void TraceLog::Add(const TraceEvent& event) {
  ++counts_[static_cast<std::size_t>(event.kind)];
  if (events_.size() < capacity_) {
    events_.push_back(event);
  } else {
    ++dropped_;
  }
}

std::uint64_t TraceLog::count(TraceEventKind k) const {
  return counts_[static_cast<std::size_t>(k)];
}

void TraceLog::Clear() {
  events_.clear();
  counts_[0] = counts_[1] = counts_[2] = counts_[3] = 0;
  dropped_ = 0;
}

std::string TraceLog::ToString(std::size_t limit) const {
  std::string out = StrFormat(
      "trace: %llu injections, %llu tainted reads, %llu tainted writes"
      " (%zu stored, %llu dropped)\n",
      static_cast<unsigned long long>(injections()),
      static_cast<unsigned long long>(tainted_reads()),
      static_cast<unsigned long long>(tainted_writes()), events_.size(),
      static_cast<unsigned long long>(dropped_));
  const std::size_t n = std::min(limit, events_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out += "  " + events_[i].Describe() + "\n";
  }
  if (events_.size() > n) {
    out += StrFormat("  ... %zu more stored events\n", events_.size() - n);
  }
  return out;
}

void TraceLog::WriteCsv(std::ostream& out) const {
  out << "kind,rank,instret,eip,vaddr,paddr,size,value,taint\n";
  for (const TraceEvent& e : events_) {
    out << TraceEventKindName(e.kind) << ',' << e.rank << ',' << e.instret
        << ',' << Hex64(guest::PcToAddr(e.pc)) << ',' << Hex64(e.vaddr) << ','
        << Hex64(e.paddr) << ',' << e.size << ',' << Hex64(e.value) << ','
        << Hex64(e.taint) << '\n';
  }
}

}  // namespace chaser::core

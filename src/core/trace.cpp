#include "core/trace.h"

#include <ostream>

#include "common/strings.h"
#include "guest/isa.h"

namespace chaser::core {

const char* TraceEventKindName(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kInjection: return "INJECT";
    case TraceEventKind::kTaintedRead: return "T-READ";
    case TraceEventKind::kTaintedWrite: return "T-WRITE";
    case TraceEventKind::kInstruction: return "I-TRACE";
    case TraceEventKind::kTaintedOutput: return "T-OUT";
  }
  return "?";
}

std::string TraceEvent::Describe() const {
  std::string out = StrFormat(
      "%-7s rank=%d instret=%llu eip=%s vaddr=%s paddr=%s size=%u value=%s taint=%s",
      TraceEventKindName(kind), rank, static_cast<unsigned long long>(instret),
      Hex64(guest::PcToAddr(pc)).c_str(), Hex64(vaddr).c_str(),
      Hex64(paddr).c_str(), size, Hex64(value).c_str(), Hex64(taint).c_str());
  if (kind == TraceEventKind::kTaintedOutput) {
    out += StrFormat(" fd=%d off=%llu", fd,
                     static_cast<unsigned long long>(stream_off));
  }
  return out;
}

void TraceLog::Add(const TraceEvent& event) {
  if (sink_ != nullptr) sink_->OnTraceEvent(event);
  ++counts_[static_cast<std::size_t>(event.kind)];
  if (events_.size() < capacity_) {
    events_.push_back(event);
  } else {
    ++dropped_;
  }
}

std::uint64_t TraceLog::count(TraceEventKind k) const {
  return counts_[static_cast<std::size_t>(k)];
}

void TraceLog::Clear() {
  events_.clear();
  for (std::uint64_t& c : counts_) c = 0;
  dropped_ = 0;
}

std::string TraceLog::ToString(std::size_t limit) const {
  std::string out = StrFormat(
      "trace: %llu injections, %llu tainted reads, %llu tainted writes, "
      "%llu tainted output bytes (%zu stored)\n",
      static_cast<unsigned long long>(injections()),
      static_cast<unsigned long long>(tainted_reads()),
      static_cast<unsigned long long>(tainted_writes()),
      static_cast<unsigned long long>(tainted_outputs()), events_.size());
  if (dropped_ > 0) {
    out += StrFormat(
        "  %llu events dropped at the in-memory capacity cap "
        "(attach a trace spool for the full trace)\n",
        static_cast<unsigned long long>(dropped_));
  }
  const std::size_t n = std::min(limit, events_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out += "  " + events_[i].Describe() + "\n";
  }
  if (events_.size() > n) {
    out += StrFormat("  ... %zu more stored events\n", events_.size() - n);
  }
  return out;
}

void TraceLog::WriteCsv(std::ostream& out) const {
  out << "kind,rank,instret,eip,vaddr,paddr,size,value,taint,fd,offset\n";
  for (const TraceEvent& e : events_) {
    out << TraceEventKindName(e.kind) << ',' << e.rank << ',' << e.instret
        << ',' << Hex64(guest::PcToAddr(e.pc)) << ',' << Hex64(e.vaddr) << ','
        << Hex64(e.paddr) << ',' << e.size << ',' << Hex64(e.value) << ','
        << Hex64(e.taint) << ',' << e.fd << ',' << e.stream_off << '\n';
  }
}

}  // namespace chaser::core

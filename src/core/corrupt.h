// CORRUPT_REGISTER / CORRUPT_MEMORY — the exported corruption primitives
// (paper §III-B(c)): write bit-flips into any user-specified register or
// memory location, and mark the flipped bits as a taint source so the
// propagation tracer can follow the fault.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "guest/isa.h"
#include "vm/vm.h"

namespace chaser::core {

/// What a single corruption did (one entry per injected fault).
struct InjectionRecord {
  enum class Target : std::uint8_t { kIntRegister, kFpRegister, kMemory };
  Target target = Target::kIntRegister;
  unsigned reg = 0;             // register number (register targets)
  GuestAddr vaddr = 0;          // virtual address (memory targets)
  std::uint64_t pc = 0;         // guest instruction index at injection
  std::uint64_t instret = 0;    // retired instructions at injection
  std::uint64_t exec_count = 0; // targeted-instruction execution count
  guest::InstrClass instr_class = guest::InstrClass::kSys;
  std::uint64_t flip_mask = 0;
  std::uint64_t old_value = 0;
  std::uint64_t new_value = 0;

  std::string Describe() const;
};

/// Flip `flip_mask` bits of integer register `reg`; taints the flipped bits.
/// Returns the record (caller decides where to keep it).
InjectionRecord CorruptIntRegister(vm::Vm& vm, unsigned reg, std::uint64_t flip_mask);

/// Flip `flip_mask` bits of FP register `reg` (bit pattern of the double).
InjectionRecord CorruptFpRegister(vm::Vm& vm, unsigned reg, std::uint64_t flip_mask);

/// Flip bits of `size` (<= 8) bytes of guest memory at `vaddr`. The flip mask
/// is interpreted little-endian over the loaded bytes. Throws ConfigError if
/// the address is unmapped (the injector should target live data).
InjectionRecord CorruptMemory(vm::Vm& vm, GuestAddr vaddr, std::uint32_t size,
                              std::uint64_t flip_mask);

/// Re-write a register/memory cell with its *current* value (no bit flips)
/// but still mark it tainted. Used by the overhead benches (paper §IV-D
/// injects "the original values" so behaviour is unchanged while the tracing
/// machinery runs at full cost).
InjectionRecord TouchIntRegister(vm::Vm& vm, unsigned reg);
InjectionRecord TouchFpRegister(vm::Vm& vm, unsigned reg);

}  // namespace chaser::core

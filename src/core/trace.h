// The fault-propagation trace log (paper §III-C(c)).
//
// Chaser records every tainted memory read and write with: eip (instruction
// pointer), virtual address, physical address, taint mask and current value.
// Counters are exact and unbounded; stored events are capped so million-
// event CLAMR traces don't exhaust memory (the drop count is reported).
// For full-fidelity traces, attach a TraceSink (e.g. analysis::TraceSpool):
// every event is teed to the sink *before* the capacity check, so a sink
// never loses events even when the in-memory log drops them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace chaser::core {

enum class TraceEventKind : std::uint8_t {
  kInjection,
  kTaintedRead,
  kTaintedWrite,
  kInstruction,  // instruction-granularity tracing (ablation mode only)
  kTaintedOutput,  // a tainted byte left the process through an output fd
};

inline constexpr std::size_t kNumTraceEventKinds = 5;

const char* TraceEventKindName(TraceEventKind k);

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kTaintedRead;
  Rank rank = -1;             // -1 for single-process runs
  std::uint64_t instret = 0;  // retired instructions when the event fired
  std::uint64_t pc = 0;       // guest instruction index (eip)
  GuestAddr vaddr = 0;
  PhysAddr paddr = 0;
  std::uint32_t size = 0;
  std::uint64_t value = 0;
  std::uint64_t taint = 0;    // packed per-byte masks
  // kTaintedOutput only: which output stream the byte escaped through and
  // its byte offset in that stream (identifies an SDC'd output byte).
  int fd = -1;
  std::uint64_t stream_off = 0;

  std::string Describe() const;
};

/// One point of the tainted-bytes-over-time curve (Fig. 7).
struct TaintSample {
  Rank rank = -1;
  std::uint64_t instret = 0;
  std::uint64_t tainted_bytes = 0;
};

/// Streaming consumer of trace events (implemented by analysis::TraceSpool).
/// Receives every event added to a TraceLog regardless of the log's capacity.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnTraceEvent(const TraceEvent& event) = 0;
};

class TraceLog {
 public:
  explicit TraceLog(std::size_t capacity = 1u << 17) : capacity_(capacity) {}

  void Add(const TraceEvent& event);

  /// Tee every subsequent Add into `sink` (nullptr detaches). The sink is
  /// borrowed and must outlive its installation; Clear() does not detach it.
  void set_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }

  std::uint64_t count(TraceEventKind k) const;
  std::uint64_t tainted_reads() const { return count(TraceEventKind::kTaintedRead); }
  std::uint64_t tainted_writes() const { return count(TraceEventKind::kTaintedWrite); }
  std::uint64_t injections() const { return count(TraceEventKind::kInjection); }
  std::uint64_t instructions_traced() const { return count(TraceEventKind::kInstruction); }
  std::uint64_t tainted_outputs() const { return count(TraceEventKind::kTaintedOutput); }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }

  void Clear();

  /// Human-readable dump of up to `limit` stored events.
  std::string ToString(std::size_t limit = 50) const;

  /// CSV export of all stored events (kind, rank, instret, eip, vaddr,
  /// paddr, size, value, taint, fd, offset) — the paper's post-analysis log
  /// format.
  void WriteCsv(std::ostream& out) const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t counts_[kNumTraceEventKinds] = {0, 0, 0, 0, 0};
  std::uint64_t dropped_ = 0;
  TraceSink* sink_ = nullptr;
};

}  // namespace chaser::core

#include "core/corrupt.h"

#include "common/error.h"
#include "common/strings.h"
#include "tcg/ir.h"

namespace chaser::core {

std::string InjectionRecord::Describe() const {
  const char* what = target == Target::kIntRegister  ? "int-reg"
                     : target == Target::kFpRegister ? "fp-reg"
                                                     : "memory";
  std::string where = target == Target::kMemory
                          ? Hex64(vaddr)
                          : StrFormat("%s%u", target == Target::kFpRegister ? "f" : "r", reg);
  return StrFormat(
      "inject %s %s at pc=#%llu (exec %llu, instret %llu): %s -> %s (mask %s)",
      what, where.c_str(), static_cast<unsigned long long>(pc),
      static_cast<unsigned long long>(exec_count),
      static_cast<unsigned long long>(instret), Hex64(old_value).c_str(),
      Hex64(new_value).c_str(), Hex64(flip_mask).c_str());
}

InjectionRecord CorruptIntRegister(vm::Vm& vm, unsigned reg, std::uint64_t flip_mask) {
  if (reg >= guest::kNumIntRegs) {
    throw ConfigError(StrFormat("CorruptIntRegister: r%u out of range", reg));
  }
  InjectionRecord rec;
  rec.target = InjectionRecord::Target::kIntRegister;
  rec.reg = reg;
  rec.instret = vm.instret();
  rec.flip_mask = flip_mask;
  rec.old_value = vm.cpu().IntReg(reg);
  rec.new_value = rec.old_value ^ flip_mask;
  vm.cpu().IntReg(reg) = rec.new_value;
  vm.taint().TaintSourceRegister(tcg::EnvInt(reg), flip_mask);
  return rec;
}

InjectionRecord CorruptFpRegister(vm::Vm& vm, unsigned reg, std::uint64_t flip_mask) {
  if (reg >= guest::kNumFpRegs) {
    throw ConfigError(StrFormat("CorruptFpRegister: f%u out of range", reg));
  }
  InjectionRecord rec;
  rec.target = InjectionRecord::Target::kFpRegister;
  rec.reg = reg;
  rec.instret = vm.instret();
  rec.flip_mask = flip_mask;
  rec.old_value = vm.cpu().env[tcg::EnvFp(reg)];
  rec.new_value = rec.old_value ^ flip_mask;
  vm.cpu().env[tcg::EnvFp(reg)] = rec.new_value;
  vm.taint().TaintSourceRegister(tcg::EnvFp(reg), flip_mask);
  return rec;
}

InjectionRecord CorruptMemory(vm::Vm& vm, GuestAddr vaddr, std::uint32_t size,
                              std::uint64_t flip_mask) {
  if (size == 0 || size > 8) throw ConfigError("CorruptMemory: size must be 1..8");
  PhysAddr paddr = 0;
  const auto loaded = vm.memory().Load(vaddr, size, &paddr);
  if (!loaded) {
    throw ConfigError("CorruptMemory: address " + Hex64(vaddr) + " not mapped");
  }
  InjectionRecord rec;
  rec.target = InjectionRecord::Target::kMemory;
  rec.vaddr = vaddr;
  rec.instret = vm.instret();
  rec.flip_mask = flip_mask;
  rec.old_value = *loaded;
  rec.new_value = rec.old_value ^ flip_mask;
  vm.memory().Store(vaddr, size, rec.new_value, &paddr);
  vm.taint().TaintSourceMemory(paddr, size, flip_mask);
  return rec;
}

InjectionRecord TouchIntRegister(vm::Vm& vm, unsigned reg) {
  InjectionRecord rec = CorruptIntRegister(vm, reg, 0);
  vm.taint().TaintSourceRegister(tcg::EnvInt(reg), ~std::uint64_t{0});
  return rec;
}

InjectionRecord TouchFpRegister(vm::Vm& vm, unsigned reg) {
  InjectionRecord rec = CorruptFpRegister(vm, reg, 0);
  vm.taint().TaintSourceRegister(tcg::EnvFp(reg), ~std::uint64_t{0});
  return rec;
}

}  // namespace chaser::core

#include "core/trigger.h"

#include "common/error.h"
#include "common/strings.h"

namespace chaser::core {

DeterministicTrigger::DeterministicTrigger(std::uint64_t nth) : nth_(nth) {
  if (nth == 0) throw ConfigError("DeterministicTrigger: nth must be >= 1");
}

bool DeterministicTrigger::ShouldFire(std::uint64_t exec_count, Rng&) {
  if (fired_ || exec_count != nth_) {
    // Executions past nth without firing cannot happen (Chaser detaches on
    // expiry), but stay correct if the caller keeps counting.
    if (exec_count > nth_) fired_ = true;
    return false;
  }
  fired_ = true;
  return true;
}

std::unique_ptr<Trigger> DeterministicTrigger::Clone() const {
  return std::make_unique<DeterministicTrigger>(nth_);
}

std::string DeterministicTrigger::Describe() const {
  return StrFormat("deterministic(n=%llu)", static_cast<unsigned long long>(nth_));
}

ProbabilisticTrigger::ProbabilisticTrigger(double probability,
                                           std::uint64_t max_injections)
    : probability_(probability), max_injections_(max_injections) {
  if (probability < 0.0 || probability > 1.0) {
    throw ConfigError("ProbabilisticTrigger: probability must be in [0,1]");
  }
}

bool ProbabilisticTrigger::ShouldFire(std::uint64_t, Rng& rng) {
  if (Expired()) return false;
  if (!rng.Bernoulli(probability_)) return false;
  ++fired_;
  return true;
}

std::unique_ptr<Trigger> ProbabilisticTrigger::Clone() const {
  return std::make_unique<ProbabilisticTrigger>(probability_, max_injections_);
}

std::string ProbabilisticTrigger::Describe() const {
  return StrFormat("probabilistic(p=%g,max=%llu)", probability_,
                   static_cast<unsigned long long>(max_injections_));
}

GroupTrigger::GroupTrigger(std::uint64_t first, std::uint64_t stride,
                           std::uint64_t max_injections)
    : first_(first), stride_(stride), max_injections_(max_injections) {
  if (first == 0) throw ConfigError("GroupTrigger: first must be >= 1");
  if (stride == 0) throw ConfigError("GroupTrigger: stride must be >= 1");
  if (max_injections == 0) throw ConfigError("GroupTrigger: max_injections must be >= 1");
}

bool GroupTrigger::ShouldFire(std::uint64_t exec_count, Rng&) {
  if (Expired() || exec_count < first_) return false;
  if ((exec_count - first_) % stride_ != 0) return false;
  ++fired_;
  return true;
}

std::unique_ptr<Trigger> GroupTrigger::Clone() const {
  return std::make_unique<GroupTrigger>(first_, stride_, max_injections_);
}

std::string GroupTrigger::Describe() const {
  return StrFormat("group(first=%llu,stride=%llu,max=%llu)",
                   static_cast<unsigned long long>(first_),
                   static_cast<unsigned long long>(stride_),
                   static_cast<unsigned long long>(max_injections_));
}

PcNthTrigger::PcNthTrigger(std::uint64_t pc, std::uint64_t nth)
    : pc_(pc), nth_(nth) {
  if (nth == 0) throw ConfigError("PcNthTrigger: nth must be >= 1");
}

bool PcNthTrigger::ShouldFire(std::uint64_t exec_count, Rng& rng) {
  return ShouldFireAt(exec_count, pc_, rng);
}

bool PcNthTrigger::ShouldFireAt(std::uint64_t, std::uint64_t pc, Rng&) {
  if (fired_ || pc != pc_) return false;
  ++seen_;
  if (seen_ != nth_) {
    // Past nth without firing cannot happen (Chaser detaches on expiry), but
    // stay correct if the caller keeps counting.
    if (seen_ > nth_) fired_ = true;
    return false;
  }
  fired_ = true;
  return true;
}

std::unique_ptr<Trigger> PcNthTrigger::Clone() const {
  return std::make_unique<PcNthTrigger>(pc_, nth_);
}

std::string PcNthTrigger::Describe() const {
  return StrFormat("pc-nth(pc=%llu,n=%llu)",
                   static_cast<unsigned long long>(pc_),
                   static_cast<unsigned long long>(nth_));
}

}  // namespace chaser::core

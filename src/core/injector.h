// The fault-injector interface exported to users (paper §III-B: "for every
// X86 instruction, the user can define custom fault injectors"). Chaser
// maintains the injector and invokes it when the trigger condition holds;
// the injector decides *how* to corrupt state using the CORRUPT_* helpers.
//
// The three bundled injectors under src/core/injectors/ are each ~100 lines,
// matching the development-effort claim of Table II.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/corrupt.h"
#include "guest/isa.h"
#include "vm/vm.h"

namespace chaser::core {

/// Everything an injector sees when it fires: the VM right before the
/// targeted instruction executes, the instruction itself, counters, the
/// campaign RNG, and the sink for injection records.
struct InjectionContext {
  vm::Vm& vm;
  std::uint64_t pc;                   // guest instruction index
  const guest::Instruction& instr;    // the targeted instruction
  std::uint64_t exec_count;           // 1-based targeted-execution count
  std::uint64_t instret;              // retired instructions so far
  Rng& rng;
  std::vector<InjectionRecord>& records;  // append what you corrupted
};

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Corrupt state. Called with the machine stopped immediately before the
  /// targeted instruction executes (just-in-time injection).
  virtual void Inject(InjectionContext& ctx) = 0;

  virtual std::string name() const = 0;
};

}  // namespace chaser::core

// Fault-injection campaign driver.
//
// Reproduces the paper's methodology (§IV-B): run the application once
// cleanly (the "golden" run) to capture reference output and profile how
// often the targeted instruction classes execute; then run N injection
// trials, each flipping x random bits in the operands of the targeted
// instruction after it executed a random number of times, and classify each
// trial as:
//
//   benign      output files bit-wise identical to the golden run
//   terminated  OS exception (SIGSEGV, ...), program-level assertion
//               (CLAMR's mass checker -> "detected"), or MPI-runtime error
//   SDC         ran to completion but output differs bit-wise
//
// Every application (single-process or MPI) runs under a Cluster; a
// 1-rank cluster is just a VM with the MPI syscalls available but unused.
//
// The campaign splits into two phases with very different sharing rules:
//
//   golden phase   runs once, produces an immutable GoldenProfile that every
//                  subsequent trial only reads;
//   trial phase    each trial mutates a Cluster + ChaserMpi + TaintHub. That
//                  mutable state is encapsulated in a TrialEngine so the
//                  serial Campaign owns one engine while ParallelCampaign
//                  (campaign/parallel.h) gives each worker thread its own.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "apps/app.h"
#include "campaign/sampling.h"
#include "common/rng.h"
#include "core/chaser_mpi.h"
#include "core/injectors/registry.h"
#include "hub/tainthub.h"
#include "mpi/cluster.h"
#include "tcg/shared_cache.h"

namespace chaser::obs {
class Telemetry;
struct TrialStats;
}

namespace chaser::campaign {

/// kInfra is not a fault-injection outcome at all: it marks a trial whose
/// *harness* failed (an exception escaped the engine) even after the retry
/// budget, and which was quarantined instead of aborting the campaign.
/// kCrashed is an *injection* outcome: the injected fault killed its guest
/// rank outright (GuestSignal::kCrash, the rank-crash injector) — a real
/// system-level fault result, unlike kInfra, and distinct from kTerminated
/// where the guest OS/runtime/checker detected the fault.
enum class Outcome : std::uint8_t { kBenign, kTerminated, kSdc, kInfra,
                                    kCrashed };

const char* OutcomeName(Outcome o);

/// One injection trial.
struct RunRecord {
  Outcome outcome = Outcome::kBenign;
  vm::TerminationKind kind = vm::TerminationKind::kExited;
  vm::GuestSignal signal = vm::GuestSignal::kNone;
  Rank inject_rank = 0;
  Rank failure_rank = -1;
  bool deadlock = false;
  bool propagated_cross_rank = false;
  bool propagated_cross_node = false;
  std::uint64_t injections = 0;
  std::uint64_t tainted_reads = 0;
  std::uint64_t tainted_writes = 0;
  std::uint64_t peak_tainted_bytes = 0;
  /// Tainted bytes that reached any rank's output stream — a trace-only
  /// predictor of silent data corruption.
  std::uint64_t tainted_output_bytes = 0;
  std::uint64_t trigger_nth = 0;   // the chosen "after executed n times"
  unsigned flip_bits = 0;          // the chosen x
  /// Sampled campaigns only (zero/default on the uniform path): the drawn
  /// injection site — trigger_nth is then *pc-local* — and the importance
  /// weight mapping this trial back to the uniform-over-invocations
  /// estimand (1.0 for weighted draws, mass_c·K/M for stratified).
  std::uint64_t inject_pc = 0;
  guest::InstrClass inject_class = guest::InstrClass::kMov;
  double sample_weight = 1.0;
  std::uint64_t run_seed = 0;      // reproduce this exact trial
  std::uint64_t instructions = 0;  // total guest instructions this trial
  /// Hot-path counters summed over ranks (deterministic per run_seed and
  /// invariant across serial/parallel, shared-cache, and dispatch configs —
  /// which is why they may live in the identity-checked record).
  std::uint64_t tb_chain_hits = 0;
  std::uint64_t tlb_hits = 0;
  std::uint64_t tlb_misses = 0;
  /// Events the in-memory TraceLogs dropped at their capacity cap this
  /// trial (0 when everything fit; a spool still captured all of them).
  std::uint64_t trace_dropped = 0;
  /// Messages whose taint shadow the hub lost this trial (publish dropped,
  /// outage, or receiver poll deadline exhausted) — see hub::HubFaultModel.
  std::uint64_t taint_lost = 0;
  /// Attempts discarded before this record was produced (0 = first attempt
  /// succeeded). For a kInfra record: the full retry budget, all exhausted.
  unsigned retries = 0;
  /// kInfra only: what() of the last exception that escaped the engine.
  std::string infra_error;
  /// Non-default-injector campaigns only (empty strings on the legacy
  /// path): the registry name of the armed injector and its fault class.
  /// Their presence switches the records CSV to v6.
  std::string injector;
  std::string fault_class;
};

/// Map a RunRecord onto the obs layer's neutral mirror (obs cannot see
/// campaign types, so the drivers translate at the boundary). Used by both
/// the serial and parallel drivers so their telemetry cannot diverge.
obs::TrialStats ToTrialStats(const RunRecord& rec, bool replayed);

struct CampaignConfig {
  std::uint64_t runs = 1000;
  std::uint64_t seed = 12345;
  unsigned flip_bits_min = 1;
  unsigned flip_bits_max = 2;
  bool trace = true;                 // fault-propagation tracing on/off
  std::set<Rank> inject_ranks;       // empty = rank 0 only
  core::Chaser::Options chaser_options;
  std::uint64_t scheduler_quantum = 20'000;
  /// Watchdog: per-rank budget = multiplier * golden instret + slack.
  std::uint64_t watchdog_multiplier = 20;
  std::uint64_t watchdog_slack = 1'000'000;
  bool keep_records = true;          // retain per-run records (Fig. 8/9 need them)
  /// Non-empty: stream every trial's full trace (events, taint timeline,
  /// hub transfers, outcome metadata) to `<spool_dir>/trial-<run_seed>/` as
  /// an analysis::TraceSpool — no event cap, readable by chaser_analyze.
  std::string spool_dir;
  /// Extra attempts granted to a trial whose engine throws (fresh
  /// Cluster/TaintHub each attempt, exponential backoff between them).
  /// Past the budget the trial is quarantined as Outcome::kInfra instead of
  /// aborting the campaign. 0 = quarantine on the first throw.
  unsigned trial_retries = 0;
  /// Base of the exponential backoff between retry attempts (doubled per
  /// attempt, capped at ~1 s). 0 disables sleeping — tests use that.
  std::uint64_t retry_backoff_ms = 10;
  /// Non-empty: append every completed trial to this crash-safe journal
  /// (campaign/journal.h) and, on start, replay any trials it already holds
  /// instead of re-running them — `chaser_run --resume`.
  std::string journal_path;
  /// Trial-pruning policy (campaign/sampling.h). kUniform is the legacy
  /// path, byte-identical to pre-sampling builds; kWeighted/kStratified
  /// profile golden sites and draw injection points from equivalence
  /// classes.
  SamplePolicy sample_policy = SamplePolicy::kUniform;
  /// Early stop: halt once every outcome-rate Wilson interval (95%) is
  /// narrower than this full width, never before SampleController::
  /// kMinStopTrials trials. 0 = run all `runs` trials. Works with any
  /// policy and both drivers; the stop point is a deterministic function of
  /// the seed-ordered trial prefix, so it is journal/resume-safe.
  double stop_ci = 0.0;
  /// Degradation model installed into every trial's TaintHub (outages,
  /// publish drops, visibility lag, poll-retry deadline).
  hub::HubFaultModel hub_fault;
  /// Injector family for every trial (core/injectors/registry.h). The
  /// default (empty name) is the legacy probabilistic bit-flip path, byte-
  /// identical to pre-registry builds; any named spec is built fresh per
  /// trial from the registry after the trial's RNG draws.
  core::InjectorSpec injector;
  /// Per-trial hub fault arming (`--hub-fault-trigger`): when set, the model
  /// is installed only inside each trial window — the golden run and any
  /// non-trial execution stay clean, unlike the ambient `hub_fault` — with a
  /// per-trial seed forked from the trial RNG, making network-partition
  /// campaigns samplable and resume-safe like any other fault space.
  std::optional<hub::HubFaultModel> hub_fault_trigger;
  /// Shard-worker identity: this process runs only trial indices i with
  /// i % shard_count == shard_index (seed-order partition of the trial
  /// space). The default 0/1 is the unsharded single-process campaign and
  /// changes nothing. When shard_count > 1, --stop-ci is force-disabled in
  /// the worker (the stop prefix is defined in *global* seed order, which a
  /// single shard cannot observe) and re-applied at merge by
  /// campaign::MergeShardRecords.
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
  /// Non-empty: every trial's hub operations go to these chaser_hubd
  /// endpoints ("host:port", key-space-sharded when more than one) through a
  /// hub::remote::RemoteTaintHub instead of the in-process TaintHub.
  std::vector<std::string> hub_endpoints;
  /// Test/chaos hook: invoked as (run_seed, attempt) right before each trial
  /// attempt, *inside* the containment boundary — throwing from here
  /// exercises the retry/quarantine path deterministically.
  std::function<void(std::uint64_t, unsigned)> trial_chaos;
  /// Called once per committed trial, in campaign seed order, right after
  /// the record enters the result — journal-replayed records included, which
  /// is what makes a resumed sink stream identical to an uninterrupted one.
  /// Both drivers invoke it from single-threaded code (the serial loop / the
  /// parallel ordered reduction). The streaming hook the CTR trial store
  /// hangs off; an exception thrown from it ends the campaign.
  std::function<void(const RunRecord&)> record_sink;
  /// Borrowed observability facade (obs/telemetry.h); must outlive the
  /// campaign. Null = telemetry off — instrumentation sites degrade to a
  /// thread_local load + branch and the campaign's outputs are byte-identical
  /// either way (telemetry only observes).
  obs::Telemetry* telemetry = nullptr;

  // ---- Hot-path knobs (all bit-transparent: outputs are byte-identical
  // ---- with any combination of these, only speed changes) -----------------
  /// Share one cross-trial translation cache among every VM the campaign
  /// creates (the driver owns it unless `shared_tb_cache` is set).
  bool share_tb_cache = true;
  /// Externally owned cache to use instead of the driver-owned one (lets
  /// several campaigns over the same app share translations). Must outlive
  /// the campaign.
  tcg::SharedTbCache* shared_tb_cache = nullptr;
  /// Per-VM local TB-index cap and shared-cache live-TB cap; overflow does a
  /// full flush (QEMU semantics), surfaced in eviction stats. 0 = unlimited.
  std::uint64_t tb_cache_cap = 0;
  /// TCG dispatch engine for every VM (vm::Dispatch::kAuto = threaded when
  /// compiled in, else switch).
  vm::Dispatch dispatch = vm::Dispatch::kAuto;
  /// goto_tb-style TB chaining in every VM.
  bool chain_tbs = true;
  /// Flat software TLB in front of every VM's soft-MMU.
  bool mem_tlb = true;
};

struct CampaignResult {
  std::uint64_t runs = 0;
  std::uint64_t benign = 0;
  std::uint64_t terminated = 0;
  std::uint64_t sdc = 0;

  // Termination sub-causes (Table III):
  std::uint64_t os_exception = 0;     // guest signals on the injected rank
  std::uint64_t mpi_error = 0;        // MPI-runtime-detected (incl. deadlock)
  std::uint64_t assert_detected = 0;  // program-level checker fired
  std::uint64_t other_rank_failed = 0;  // failure surfaced on a non-injected rank

  // Cross-rank propagation subset:
  std::uint64_t propagated_runs = 0;
  std::uint64_t propagated_terminated = 0;
  std::uint64_t propagated_os_exception = 0;
  std::uint64_t propagated_mpi_error = 0;

  /// Total trace events dropped across all trials by the in-memory
  /// TraceLog capacity cap (Render flags this so truncated traces are
  /// never mistaken for complete ones).
  std::uint64_t trace_dropped = 0;

  /// Trials whose injected fault killed the guest rank (Outcome::kCrashed;
  /// rank-crash injector). Zero on every default-injector campaign.
  std::uint64_t crashed = 0;
  /// Trials quarantined after exhausting the retry budget (Outcome::kInfra).
  std::uint64_t infra = 0;
  /// Messages whose taint shadow the degraded hub lost, summed over trials.
  std::uint64_t taint_lost = 0;

  // Hot-path counters summed over trials (see RunRecord).
  std::uint64_t tb_chain_hits = 0;
  std::uint64_t tlb_hits = 0;
  std::uint64_t tlb_misses = 0;

  std::vector<RunRecord> records;

  // ---- Sampled-campaign estimates (has_estimates gates everything below;
  // ---- a plain uniform campaign leaves them untouched so its Render stays
  // ---- byte-identical) -----------------------------------------------------
  bool has_estimates = false;
  SamplePolicy sample_policy = SamplePolicy::kUniform;
  double stop_ci = 0.0;          // requested interval width; 0 = no early stop
  bool stopped_early = false;    // the stop rule fired before planned_runs
  std::uint64_t planned_runs = 0;  // config.runs (runs = trials committed)
  std::uint64_t estimate_trials = 0;  // trials in the estimator (no infra)
  double effective_n = 0.0;      // Kish effective sample size
  WilsonInterval est_benign;
  WilsonInterval est_terminated;
  WilsonInterval est_sdc;
  WilsonInterval est_hang;       // deadlock subset of terminated

  /// Tally one trial into the counters (and into `records` if
  /// `keep_record`). The serial and parallel drivers reduce through this
  /// same function, so their outcome bookkeeping cannot diverge.
  void Accumulate(const RunRecord& rec, bool keep_record);

  /// Fill the estimates block from a finished estimator (both drivers feed
  /// their estimator in seed order, so the floats agree bit for bit).
  void FillEstimates(const OutcomeEstimator& est, SamplePolicy policy,
                     double stop_ci_width, std::uint64_t planned);

  double Pct(std::uint64_t n) const {
    return runs == 0 ? 0.0 : 100.0 * static_cast<double>(n) / static_cast<double>(runs);
  }
  /// Multi-line human-readable summary.
  std::string Render(const std::string& label) const;
};

/// The immutable product of the one-time golden phase: reference outputs,
/// per-rank targeted-execution counts, and the clean instruction count.
/// After RunGolden it is only ever read, so one profile can be shared by any
/// number of worker-private TrialEngines without copies or locks.
struct GoldenProfile {
  std::map<std::pair<Rank, int>, std::string> outputs;
  std::map<Rank, std::uint64_t> targeted_execs;
  /// Per-site execution histogram of the inject ranks (pc-ascending per
  /// rank). Captured only for sampled campaigns — empty on the uniform
  /// path, where nothing reads it.
  GoldenSiteMap sites;
  std::uint64_t instructions = 0;

  /// Reference output of rank `r` on guest fd `fd`; throws ConfigError
  /// naming the rank/fd if that stream was never captured.
  const std::string& output(Rank r, int fd) const;
  /// Golden targeted-execution count of inject rank `r`; throws ConfigError
  /// naming the rank if it was not profiled.
  std::uint64_t execs(Rank r) const;
};

/// One trial-execution engine: a private Cluster + ChaserMpi (and therefore
/// TaintHub) that runs injection trials against a shared GoldenProfile.
/// Engines own all per-trial mutable state — two engines never share
/// anything writable, which is what makes the parallel driver race-free.
class TrialEngine {
 public:
  /// `spec`, `config` and `inject_ranks` are borrowed and must stay alive
  /// and unmodified for the engine's lifetime. Throws ConfigError if an
  /// inject rank is outside the spec's rank range.
  TrialEngine(const apps::AppSpec& spec, const CampaignConfig& config,
              const std::set<Rank>& inject_ranks);

  /// Execute the clean profiling run (never-firing trigger, tracing off) and
  /// return the profile. Throws ConfigError if the clean app fails or an
  /// inject rank never executes the targeted classes.
  GoldenProfile RunGolden();

  /// Adopt a profile — typically captured by a different engine — and
  /// tighten the watchdog from its instruction count. Required before
  /// RunTrial; the profile must outlive the engine.
  void AdoptGolden(const GoldenProfile& golden);

  /// Execute one injection trial. `run_seed` fully determines the trial.
  RunRecord RunTrial(std::uint64_t run_seed);

  mpi::Cluster& cluster() { return *cluster_; }
  core::ChaserMpi& chaser() { return *chaser_; }

 private:
  void Classify(const mpi::JobResult& job, RunRecord* rec);
  /// Remove the trial spool's sink from every rank's trace log.
  void DetachSpool();

  const apps::AppSpec& spec_;
  const CampaignConfig& config_;
  const std::set<Rank>& inject_ranks_;
  /// One immutable copy of the app image, lent to every rank VM of every
  /// trial (Vm::StartProcess shared overload) instead of re-copied per start.
  std::shared_ptr<const guest::Program> image_;
  std::unique_ptr<mpi::Cluster> cluster_;
  /// Remote hub client (config.hub_endpoints non-empty). Declared before
  /// chaser_: the ChaserMpi's hooks point into it, so it must be destroyed
  /// after them.
  std::unique_ptr<hub::HubService> remote_hub_;
  std::unique_ptr<core::ChaserMpi> chaser_;
  const GoldenProfile* golden_ = nullptr;
  /// Sampling frame built by AdoptGolden when the policy needs one. Every
  /// engine rebuilds it from the same profile deterministically, so worker
  /// engines agree without sharing.
  std::unique_ptr<SamplingPlan> plan_;
};

/// Containment boundary shared by the serial and parallel drivers: run one
/// trial, catching anything the engine throws. A throwing attempt discards
/// `*engine` (its Cluster/TaintHub may be in an arbitrary state) and retries
/// with a freshly built engine after exponential backoff, up to
/// config.trial_retries extra attempts. Exhausting the budget quarantines
/// the trial as an Outcome::kInfra record carrying the last exception text —
/// the campaign keeps going. `*engine` may be null on entry (it is built
/// lazily) and is left usable for the next trial whenever possible.
RunRecord RunTrialContained(std::unique_ptr<TrialEngine>* engine,
                            const apps::AppSpec& spec,
                            const CampaignConfig& config,
                            const std::set<Rank>& inject_ranks,
                            const GoldenProfile& golden,
                            std::uint64_t run_seed);

class Campaign {
 public:
  Campaign(apps::AppSpec spec, CampaignConfig config);

  /// Execute the golden run (throws ConfigError if the clean app fails) and
  /// profile targeted-instruction execution counts per inject rank.
  void RunGolden();

  /// Execute one injection trial (RunGolden must have happened; Run() calls
  /// it lazily). `run_seed` fully determines the trial.
  RunRecord RunOnce(std::uint64_t run_seed);

  /// Full campaign: golden + config.runs trials. Trial failures are
  /// contained per RunTrialContained. With config.journal_path set, every
  /// completed trial is journalled and trials already in the journal are
  /// replayed instead of re-run — the resumed result is byte-identical to
  /// an uninterrupted one.
  CampaignResult Run();

  /// The first `n` trial seeds a fresh serial Run() draws for campaign seed
  /// `seed` (the n successive Fork()s of Rng(seed)). ParallelCampaign
  /// dispatches exactly this sequence, which is what makes its result
  /// bit-identical to the serial path for any worker count.
  static std::vector<std::uint64_t> DeriveTrialSeeds(std::uint64_t seed,
                                                     std::uint64_t n);

  // ---- Introspection -------------------------------------------------------
  bool golden_done() const { return golden_done_; }
  const GoldenProfile& golden() const { return golden_; }
  /// Golden output of (r, fd); throws ConfigError naming the rank/fd if the
  /// golden run has not happened or that stream was never captured.
  const std::string& golden_output(Rank r, int fd) const;
  std::uint64_t golden_targeted_execs(Rank r) const;
  std::uint64_t golden_instructions() const { return golden_.instructions; }
  const apps::AppSpec& spec() const { return spec_; }
  const std::set<Rank>& inject_ranks() const { return inject_ranks_; }
  mpi::Cluster& cluster() { return engine_->cluster(); }
  core::ChaserMpi& chaser() { return engine_->chaser(); }
  /// The shared translation cache in use (campaign-owned or external);
  /// null when sharing is disabled.
  const tcg::SharedTbCache* shared_tb_cache() const {
    return config_.shared_tb_cache;
  }

 private:
  apps::AppSpec spec_;
  CampaignConfig config_;
  std::set<Rank> inject_ranks_;
  /// Campaign-owned shared cache (when config.share_tb_cache and no external
  /// cache was supplied). Declared before engine_: engines must be destroyed
  /// before the cache their VMs point into.
  std::unique_ptr<tcg::SharedTbCache> owned_tb_cache_;
  /// Owned via pointer so containment can rebuild it after a trial throws
  /// (a half-destroyed Cluster must never serve another trial).
  std::unique_ptr<TrialEngine> engine_;  // borrows spec_/config_/inject_ranks_

  GoldenProfile golden_;
  bool golden_done_ = false;
};

}  // namespace chaser::campaign

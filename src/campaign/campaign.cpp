#include "campaign/campaign.h"

#include <chrono>
#include <thread>

#include "analysis/spool.h"
#include "campaign/fleet.h"
#include "campaign/journal.h"
#include "hub/remote/client.h"
#include "common/bits.h"
#include "common/error.h"
#include "common/strings.h"
#include "core/injectors/probabilistic_injector.h"
#include "core/trigger.h"
#include "obs/telemetry.h"

namespace chaser::campaign {

obs::TrialStats ToTrialStats(const RunRecord& rec, bool replayed) {
  obs::TrialStats t;
  t.outcome = static_cast<int>(rec.outcome);
  t.run_seed = rec.run_seed;
  t.instructions = rec.instructions;
  t.injections = rec.injections;
  t.taint_lost = rec.taint_lost;
  t.trace_dropped = rec.trace_dropped;
  t.tb_chain_hits = rec.tb_chain_hits;
  t.tlb_hits = rec.tlb_hits;
  t.tlb_misses = rec.tlb_misses;
  t.retries = rec.retries;
  t.replayed = replayed;
  return t;
}

const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kBenign: return "benign";
    case Outcome::kTerminated: return "terminated";
    case Outcome::kSdc: return "sdc";
    case Outcome::kInfra: return "infra";
    case Outcome::kCrashed: return "crashed";
  }
  return "?";
}

std::string CampaignResult::Render(const std::string& label) const {
  std::string out = StrFormat(
      "%s: %llu runs\n"
      "  benign      %6llu (%5.2f%%)\n"
      "  terminated  %6llu (%5.2f%%)\n"
      "  sdc         %6llu (%5.2f%%)\n",
      label.c_str(), static_cast<unsigned long long>(runs),
      static_cast<unsigned long long>(benign), Pct(benign),
      static_cast<unsigned long long>(terminated), Pct(terminated),
      static_cast<unsigned long long>(sdc), Pct(sdc));
  if (crashed > 0) {
    out += StrFormat(
        "  crashed     %6llu (%5.2f%%) — injected rank killed outright "
        "(system-level fault, not a harness failure)\n",
        static_cast<unsigned long long>(crashed), Pct(crashed));
  }
  if (infra > 0) {
    out += StrFormat(
        "  infra       %6llu (%5.2f%%) — harness failures quarantined after "
        "the retry budget; not injection outcomes\n",
        static_cast<unsigned long long>(infra), Pct(infra));
  }
  if (terminated > 0) {
    const auto tp = [&](std::uint64_t n) {
      return 100.0 * static_cast<double>(n) / static_cast<double>(terminated);
    };
    out += StrFormat(
        "  termination breakdown: os-exception %llu (%5.2f%%), "
        "mpi-error %llu (%5.2f%%), checker-detected %llu (%5.2f%%), "
        "other-rank-failed %llu (%5.2f%%)\n",
        static_cast<unsigned long long>(os_exception), tp(os_exception),
        static_cast<unsigned long long>(mpi_error), tp(mpi_error),
        static_cast<unsigned long long>(assert_detected), tp(assert_detected),
        static_cast<unsigned long long>(other_rank_failed), tp(other_rank_failed));
  }
  if (propagated_runs > 0) {
    out += StrFormat(
        "  cross-rank propagation: %llu runs (%llu terminated: "
        "%llu os-exception, %llu mpi-error)\n",
        static_cast<unsigned long long>(propagated_runs),
        static_cast<unsigned long long>(propagated_terminated),
        static_cast<unsigned long long>(propagated_os_exception),
        static_cast<unsigned long long>(propagated_mpi_error));
  }
  if (trace_dropped > 0) {
    out += StrFormat(
        "  trace: %llu events dropped at the in-memory capacity cap "
        "(attach a trace spool for the full trace)\n",
        static_cast<unsigned long long>(trace_dropped));
  }
  if (taint_lost > 0) {
    out += StrFormat(
        "  hub degradation: %llu messages lost their taint shadow in "
        "transit (propagation counts are a lower bound)\n",
        static_cast<unsigned long long>(taint_lost));
  }
  if (tb_chain_hits + tlb_hits + tlb_misses > 0) {
    out += StrFormat(
        "  hot path: %llu tb chain hits, %llu tlb hits, %llu tlb misses\n",
        static_cast<unsigned long long>(tb_chain_hits),
        static_cast<unsigned long long>(tlb_hits),
        static_cast<unsigned long long>(tlb_misses));
  }
  if (has_estimates) {
    out += StrFormat(
        "  sampling: policy %s, %llu/%llu trials%s (effective n %.1f)\n",
        SamplePolicyName(sample_policy), static_cast<unsigned long long>(runs),
        static_cast<unsigned long long>(planned_runs),
        stopped_early
            ? StrFormat(", stopped early at ci width %.4f", stop_ci).c_str()
            : "",
        effective_n);
    const auto line = [&](const char* name, const WilsonInterval& w) {
      return StrFormat("    %-10s %6.2f%%  [%5.2f%%, %5.2f%%] 95%% wilson\n",
                       name, 100.0 * w.rate, 100.0 * w.lo, 100.0 * w.hi);
    };
    out += "  outcome-rate estimates:\n";
    out += line("benign", est_benign);
    out += line("terminated", est_terminated);
    out += line("sdc", est_sdc);
    out += line("hang", est_hang);
  }
  return out;
}

void CampaignResult::FillEstimates(const OutcomeEstimator& est,
                                   SamplePolicy policy, double stop_ci_width,
                                   std::uint64_t planned) {
  has_estimates = true;
  sample_policy = policy;
  stop_ci = stop_ci_width;
  planned_runs = planned;
  estimate_trials = est.trials();
  effective_n = est.effective_n();
  est_benign = est.Interval(OutcomeEstimator::kBenign);
  est_terminated = est.Interval(OutcomeEstimator::kTerminated);
  est_sdc = est.Interval(OutcomeEstimator::kSdc);
  est_hang = est.Interval(OutcomeEstimator::kHang);
}

void CampaignResult::Accumulate(const RunRecord& rec, bool keep_record) {
  switch (rec.outcome) {
    case Outcome::kBenign: ++benign; break;
    case Outcome::kSdc: ++sdc; break;
    case Outcome::kInfra: ++infra; break;
    case Outcome::kCrashed: ++crashed; break;
    case Outcome::kTerminated: {
      ++terminated;
      // A fired program-level checker is a *detection* no matter which rank
      // runs the check (CLAMR's conservation test runs on rank 0);
      // otherwise a failure surfacing on a non-injected rank means the
      // fault crossed the rank boundary before killing the job.
      if (rec.kind == vm::TerminationKind::kAssertFailed) {
        ++assert_detected;
      } else if (rec.deadlock) {
        // A deadlock is a job-wide MPI-runtime condition, not attributable
        // to whichever blocked rank the scheduler terminated first.
        ++mpi_error;
      } else if (rec.failure_rank >= 0 && rec.failure_rank != rec.inject_rank) {
        ++other_rank_failed;
      } else if (rec.kind == vm::TerminationKind::kSignaled) {
        ++os_exception;
      } else if (rec.kind == vm::TerminationKind::kMpiError) {
        ++mpi_error;
      }
      break;
    }
  }
  if (rec.propagated_cross_rank) {
    ++propagated_runs;
    if (rec.outcome == Outcome::kTerminated) {
      ++propagated_terminated;
      if (rec.kind == vm::TerminationKind::kSignaled) {
        ++propagated_os_exception;
      } else if (rec.kind == vm::TerminationKind::kMpiError) {
        ++propagated_mpi_error;
      }
    }
  }
  trace_dropped += rec.trace_dropped;
  taint_lost += rec.taint_lost;
  tb_chain_hits += rec.tb_chain_hits;
  tlb_hits += rec.tlb_hits;
  tlb_misses += rec.tlb_misses;
  if (keep_record) records.push_back(rec);
}

// ---- GoldenProfile -----------------------------------------------------------

const std::string& GoldenProfile::output(Rank r, int fd) const {
  const auto it = outputs.find({r, fd});
  if (it == outputs.end()) {
    throw ConfigError(StrFormat(
        "GoldenProfile: no golden output captured for rank %d fd %d "
        "(golden run not executed, or rank/fd outside the captured set)", r, fd));
  }
  return it->second;
}

std::uint64_t GoldenProfile::execs(Rank r) const {
  const auto it = targeted_execs.find(r);
  if (it == targeted_execs.end()) {
    throw ConfigError(StrFormat(
        "GoldenProfile: rank %d was not profiled as an inject rank", r));
  }
  return it->second;
}

// ---- TrialEngine -------------------------------------------------------------

TrialEngine::TrialEngine(const apps::AppSpec& spec, const CampaignConfig& config,
                         const std::set<Rank>& inject_ranks)
    : spec_(spec),
      config_(config),
      inject_ranks_(inject_ranks),
      image_(std::make_shared<const guest::Program>(spec.program)) {
  for (const Rank r : inject_ranks_) {
    if (r < 0 || r >= spec_.num_ranks) {
      throw ConfigError(StrFormat("Campaign: inject rank %d outside 0..%d", r,
                                  spec_.num_ranks - 1));
    }
  }
  mpi::Cluster::Config cluster_config;
  cluster_config.num_ranks = spec_.num_ranks;
  cluster_config.quantum = config_.scheduler_quantum;
  // Hot-path plumbing: every rank VM of every trial shares the campaign's
  // translation cache and runs with the configured dispatch/chaining/TLB.
  cluster_config.vm.shared_cache = config_.shared_tb_cache;
  cluster_config.vm.max_cached_tbs = config_.tb_cache_cap;
  cluster_config.vm.dispatch = config_.dispatch;
  cluster_config.vm.chain_tbs = config_.chain_tbs;
  cluster_config.vm.mem_tlb = config_.mem_tlb;
  // Every trial restarts the same image; hash it once per engine, not once
  // per StartProcess.
  if (config_.shared_tb_cache != nullptr) {
    cluster_config.vm.program_hash =
        tcg::SharedTbCache::HashProgram(spec_.program);
  }
  cluster_ = std::make_unique<mpi::Cluster>(cluster_config);
  if (!config_.hub_endpoints.empty()) {
    remote_hub_ =
        std::make_unique<hub::remote::RemoteTaintHub>(config_.hub_endpoints);
  }
  chaser_ = std::make_unique<core::ChaserMpi>(*cluster_, config_.chaser_options,
                                              remote_hub_.get());
  // The fault model lives in config (not per trial): TaintHub::Clear() at
  // each trial's job start restarts its clock and drop tape, so every trial
  // — on any driver — sees the identical degradation schedule.
  chaser_->hub().SetFaultModel(config_.hub_fault);
}

GoldenProfile TrialEngine::RunGolden() {
  const obs::ScopedPhase obs_scope(obs::Phase::kGolden);
  // Profile with a never-firing trigger: instrumentation counts targeted
  // executions without perturbing anything; tracing stays off for speed.
  core::InjectionCommand cmd;
  cmd.target_program = spec_.program.name;
  cmd.target_classes = spec_.fault_classes;
  cmd.trigger = std::make_shared<core::NeverTrigger>();
  cmd.injector = core::ProbabilisticInjector::Create(1);
  cmd.trace = false;
  cmd.seed = config_.seed;
  // Sampled campaigns need the per-site histogram to build their sampling
  // frame; the uniform path skips the per-execution map update.
  cmd.profile_sites = config_.sample_policy != SamplePolicy::kUniform;
  chaser_->Arm(cmd, inject_ranks_);

  cluster_->Start(image_);
  const mpi::JobResult job = cluster_->Run();
  if (!job.completed) {
    throw ConfigError(StrFormat(
        "Campaign: golden run of '%s' failed on rank %d: %s (%s)",
        spec_.name.c_str(), job.first_failure_rank,
        vm::TerminationKindName(job.first_failure_kind),
        job.first_failure_message.c_str()));
  }

  GoldenProfile golden;
  golden.instructions = job.total_instructions;
  for (Rank r = 0; r < spec_.num_ranks; ++r) {
    golden.outputs[{r, 1}] = cluster_->rank_vm(r).output(1);
    golden.outputs[{r, 3}] = cluster_->rank_vm(r).output(3);
  }
  for (const Rank r : inject_ranks_) {
    const std::uint64_t execs = chaser_->rank_chaser(r).targeted_executions();
    if (execs == 0) {
      throw ConfigError(StrFormat(
          "Campaign: rank %d of '%s' never executes the targeted classes", r,
          spec_.name.c_str()));
    }
    golden.targeted_execs[r] = execs;
    if (cmd.profile_sites) {
      std::vector<GoldenSite>& sites = golden.sites[r];
      for (const auto& [pc, count] : chaser_->rank_chaser(r).site_execs()) {
        sites.push_back(
            {pc, guest::ClassOf(spec_.program.text[pc].op), count});
      }
    }
  }
  return golden;
}

void TrialEngine::AdoptGolden(const GoldenProfile& golden) {
  golden_ = &golden;
  if (config_.sample_policy != SamplePolicy::kUniform) {
    if (golden.sites.empty()) {
      throw ConfigError(
          "TrialEngine: sampled policy but the golden profile has no site "
          "histogram (was the golden run executed with this policy?)");
    }
    plan_ = std::make_unique<SamplingPlan>(SamplingPlan::Build(golden.sites));
  }
  // Tighten the watchdog so corrupted loop bounds cannot hang a campaign.
  // Saturate instead of wrapping: an extreme multiplier times a long golden
  // run must clamp to "unlimited", never wrap to a tiny budget that would
  // kill every healthy trial as a spurious watchdog timeout.
  const std::uint64_t per_rank = SaturatingAddU64(
      SaturatingMulU64(config_.watchdog_multiplier, golden.instructions),
      config_.watchdog_slack);
  cluster_->SetInstructionBudgets(
      per_rank,
      SaturatingMulU64(per_rank, static_cast<std::uint64_t>(spec_.num_ranks)));
}

RunRecord TrialEngine::RunTrial(std::uint64_t run_seed) {
  if (golden_ == nullptr) {
    throw ConfigError("TrialEngine: RunTrial before a golden profile was adopted");
  }
  Rng run_rng(run_seed);

  RunRecord rec;
  rec.run_seed = run_seed;
  // Pick the injection point, then the bit-flip width x. The uniform path
  // keeps its historical draw sequence exactly (rank, then global nth); the
  // sampled path draws a site from the plan and injects at that pc's nth
  // *local* invocation.
  std::shared_ptr<const core::Trigger> trigger;
  if (config_.sample_policy == SamplePolicy::kUniform) {
    const auto rank_it = std::next(inject_ranks_.begin(),
                                   static_cast<std::ptrdiff_t>(
                                       run_rng.Index(inject_ranks_.size())));
    rec.inject_rank = *rank_it;
    rec.trigger_nth = run_rng.UniformU64(1, golden_->execs(rec.inject_rank));
    trigger = std::make_shared<core::DeterministicTrigger>(rec.trigger_nth);
  } else {
    const SiteDraw draw = plan_->Draw(config_.sample_policy, run_rng);
    rec.inject_rank = draw.rank;
    rec.trigger_nth = draw.nth;
    rec.inject_pc = draw.pc;
    rec.inject_class = draw.cls;
    rec.sample_weight = draw.weight;
    trigger = std::make_shared<core::PcNthTrigger>(draw.pc, draw.nth);
  }
  rec.flip_bits = static_cast<unsigned>(
      run_rng.UniformU64(config_.flip_bits_min, config_.flip_bits_max));

  core::InjectionCommand cmd;
  cmd.target_program = spec_.program.name;
  cmd.target_classes = spec_.fault_classes;
  cmd.trigger = std::move(trigger);
  // The default spec constructs the probabilistic injector directly — not
  // through the registry — so the default path is provably unchanged; any
  // other spec resolves through the registry and stamps the record (which
  // upgrades the records CSV to v6 and adds spool meta keys).
  if (config_.injector.IsDefault()) {
    cmd.injector = core::ProbabilisticInjector::Create(rec.flip_bits);
  } else {
    const core::InjectorRegistry& registry = core::InjectorRegistry::Global();
    cmd.injector = registry.Create(config_.injector, rec.flip_bits);
    rec.injector = config_.injector.name;
    rec.fault_class = registry.Find(config_.injector.name)->fault_class;
  }
  cmd.trace = config_.trace;
  cmd.seed = run_rng.Fork();
  // Trial-window hub faults: install the degradation model for this trial
  // only, seeded by a fork drawn *after* cmd.seed — the default path never
  // reaches this draw, so its historical sequence is untouched.
  const bool hub_trigger = config_.hub_fault_trigger.has_value();
  if (hub_trigger) {
    hub::HubFaultModel model = *config_.hub_fault_trigger;
    model.seed = run_rng.Fork();
    chaser_->hub().SetFaultModel(model);
  }
  chaser_->Arm(cmd, {rec.inject_rank});

  // With a spool directory configured, tee every rank's trace into a
  // per-trial spool named by the run seed — the same seed produces the same
  // directory (and byte-identical contents) on the serial and parallel
  // drivers. Detach the sinks on every exit path: the spool dies with this
  // frame and a dangling sink would corrupt the next trial.
  std::unique_ptr<analysis::TraceSpool> spool;
  if (!config_.spool_dir.empty()) {
    spool = std::make_unique<analysis::TraceSpool>(
        config_.spool_dir + "/trial-" + std::to_string(run_seed));
    for (Rank r = 0; r < spec_.num_ranks; ++r) {
      chaser_->rank_chaser(r).trace_log().set_sink(spool.get());
    }
  }
  try {
    cluster_->Start(image_);
    const mpi::JobResult job = [&] {
      const obs::ScopedPhase obs_scope(obs::Phase::kExecute);
      return cluster_->Run();
    }();
    Classify(job, &rec);
  } catch (...) {
    if (hub_trigger) chaser_->hub().SetFaultModel(config_.hub_fault);
    if (spool != nullptr) DetachSpool();
    throw;
  }
  if (hub_trigger) chaser_->hub().SetFaultModel(config_.hub_fault);
  if (spool != nullptr) {
    for (Rank r = 0; r < spec_.num_ranks; ++r) {
      for (const core::TaintSample& s : chaser_->rank_chaser(r).taint_timeline()) {
        spool->AddSample(s);
      }
    }
    for (const hub::TransferLogEntry& t : chaser_->hub().DrainTransferLog()) {
      spool->AddTransfer(t);
    }
    spool->SetMeta("app", spec_.name);
    spool->SetMeta("ranks", std::to_string(spec_.num_ranks));
    spool->SetMeta("run_seed", std::to_string(run_seed));
    spool->SetMeta("outcome", OutcomeName(rec.outcome));
    spool->SetMeta("inject_rank", std::to_string(rec.inject_rank));
    spool->SetMeta("trigger_nth", std::to_string(rec.trigger_nth));
    spool->SetMeta("flip_bits", std::to_string(rec.flip_bits));
    // Injector keys only with a non-default injector: a default campaign's
    // spool stays byte-identical to pre-registry builds.
    if (!config_.injector.IsDefault()) {
      spool->SetMeta("injector", rec.injector);
      spool->SetMeta("fault_class", rec.fault_class);
    }
    // Sampling keys only on sampled campaigns: a uniform campaign's spool
    // stays byte-identical to pre-sampling builds.
    if (config_.sample_policy != SamplePolicy::kUniform) {
      spool->SetMeta("sample_policy", SamplePolicyName(config_.sample_policy));
      spool->SetMeta("inject_pc", std::to_string(rec.inject_pc));
      spool->SetMeta("inject_class", guest::ClassName(rec.inject_class));
      spool->SetMeta("sample_weight", StrFormat("%.17g", rec.sample_weight));
    }
    spool->SetMeta("trace_dropped", std::to_string(rec.trace_dropped));
    spool->SetMeta("taint_lost", std::to_string(rec.taint_lost));
    DetachSpool();
    spool->Finish();
  }
  return rec;
}

void TrialEngine::DetachSpool() {
  for (Rank r = 0; r < spec_.num_ranks; ++r) {
    chaser_->rank_chaser(r).trace_log().set_sink(nullptr);
  }
}

void TrialEngine::Classify(const mpi::JobResult& job, RunRecord* rec) {
  rec->instructions = job.total_instructions;
  rec->injections = chaser_->total_injections();
  rec->tainted_reads = chaser_->total_tainted_reads();
  rec->tainted_writes = chaser_->total_tainted_writes();
  for (Rank r = 0; r < spec_.num_ranks; ++r) {
    rec->peak_tainted_bytes =
        std::max(rec->peak_tainted_bytes,
                 cluster_->rank_vm(r).taint().stats().peak_tainted_bytes);
    rec->tainted_output_bytes += cluster_->rank_vm(r).tainted_output_bytes();
  }
  for (Rank r = 0; r < spec_.num_ranks; ++r) {
    rec->trace_dropped += chaser_->rank_chaser(r).trace_log().dropped();
  }
  // Hot-path counters: per-trial deterministic (chain hits and TLB traffic
  // depend only on the executed instruction stream) and config-invariant, so
  // they are safe to place in the identity-checked record.
  for (Rank r = 0; r < spec_.num_ranks; ++r) {
    const vm::Vm& rank_vm = cluster_->rank_vm(r);
    rec->tb_chain_hits += rank_vm.tb_chain_hits();
    rec->tlb_hits += rank_vm.tlb_hits();
    rec->tlb_misses += rank_vm.tlb_misses();
  }
  rec->propagated_cross_rank = chaser_->FaultPropagatedFrom(rec->inject_rank);
  rec->propagated_cross_node = chaser_->FaultPropagatedAcrossNodes();
  rec->taint_lost = chaser_->hub().stats().taint_lost;
  rec->deadlock = job.deadlock;

  if (job.completed) {
    bool same = true;
    for (Rank r = 0; r < spec_.num_ranks && same; ++r) {
      same = cluster_->rank_vm(r).output(1) == golden_->output(r, 1) &&
             cluster_->rank_vm(r).output(3) == golden_->output(r, 3);
    }
    rec->outcome = same ? Outcome::kBenign : Outcome::kSdc;
    rec->kind = vm::TerminationKind::kExited;
    return;
  }
  // An injected rank crash (GuestSignal::kCrash) is its own outcome: the
  // process was killed outright by the fault model, not terminated by a
  // corrupted computation, and must not pollute the terminated series.
  rec->outcome = job.first_failure_kind == vm::TerminationKind::kSignaled &&
                         job.first_failure_signal == vm::GuestSignal::kCrash
                     ? Outcome::kCrashed
                     : Outcome::kTerminated;
  rec->kind = job.first_failure_kind;
  rec->signal = job.first_failure_signal;
  rec->failure_rank = job.first_failure_rank;
}

// ---- Contained trial execution -----------------------------------------------

RunRecord RunTrialContained(std::unique_ptr<TrialEngine>* engine,
                            const apps::AppSpec& spec,
                            const CampaignConfig& config,
                            const std::set<Rank>& inject_ranks,
                            const GoldenProfile& golden,
                            std::uint64_t run_seed) {
  const unsigned attempts = config.trial_retries + 1;
  std::string last_error;
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    try {
      if (*engine == nullptr) {
        *engine = std::make_unique<TrialEngine>(spec, config, inject_ranks);
        (*engine)->AdoptGolden(golden);
      }
      if (config.trial_chaos) config.trial_chaos(run_seed, attempt);
      RunRecord rec = (*engine)->RunTrial(run_seed);
      rec.retries = attempt;
      return rec;
    } catch (const std::exception& e) {
      last_error = e.what();
    } catch (...) {
      last_error = "non-standard exception escaped the trial engine";
    }
    // The engine threw mid-trial: its Cluster/TaintHub are in an arbitrary
    // state and must never serve another trial. Rebuild from scratch.
    engine->reset();
    if (attempt + 1 < attempts && config.retry_backoff_ms > 0) {
      const std::uint64_t ms =
          std::min<std::uint64_t>(config.retry_backoff_ms << attempt, 1000);
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
  }
  // Retry budget exhausted: quarantine this seed instead of losing the whole
  // campaign. kInfra records carry no injection data — only the evidence.
  RunRecord rec;
  rec.outcome = Outcome::kInfra;
  rec.run_seed = run_seed;
  rec.retries = config.trial_retries;
  rec.infra_error = last_error;
  return rec;
}

// ---- Campaign (serial driver) ------------------------------------------------

Campaign::Campaign(apps::AppSpec spec, CampaignConfig config)
    : spec_(std::move(spec)),
      config_(std::move(config)),
      inject_ranks_(config_.inject_ranks.empty() ? std::set<Rank>{0}
                                                 : config_.inject_ranks) {
  // Resolve the shared translation cache before any engine exists: engines
  // copy the pointer into their cluster's Vm::Config at construction.
  if (!config_.share_tb_cache) {
    config_.shared_tb_cache = nullptr;
  } else if (config_.shared_tb_cache == nullptr) {
    owned_tb_cache_ = std::make_unique<tcg::SharedTbCache>(config_.tb_cache_cap);
    config_.shared_tb_cache = owned_tb_cache_.get();
  }
  engine_ = std::make_unique<TrialEngine>(spec_, config_, inject_ranks_);
}

void Campaign::RunGolden() {
  if (engine_ == nullptr) {
    engine_ = std::make_unique<TrialEngine>(spec_, config_, inject_ranks_);
  }
  golden_ = engine_->RunGolden();
  engine_->AdoptGolden(golden_);
  golden_done_ = true;
}

const std::string& Campaign::golden_output(Rank r, int fd) const {
  if (!golden_done_) {
    throw ConfigError(StrFormat(
        "Campaign: golden_output(rank %d, fd %d) before the golden run", r, fd));
  }
  return golden_.output(r, fd);
}

std::uint64_t Campaign::golden_targeted_execs(Rank r) const {
  const auto it = golden_.targeted_execs.find(r);
  return it == golden_.targeted_execs.end() ? 0 : it->second;
}

RunRecord Campaign::RunOnce(std::uint64_t run_seed) {
  if (!golden_done_) RunGolden();
  return engine_->RunTrial(run_seed);
}

std::vector<std::uint64_t> Campaign::DeriveTrialSeeds(std::uint64_t seed,
                                                      std::uint64_t n) {
  Rng rng(seed);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) seeds.push_back(rng.Fork());
  return seeds;
}

CampaignResult Campaign::Run() {
  obs::Telemetry* const telemetry = config_.telemetry;
  const bool sharded = config_.shard_count > 1;
  // A shard worker cannot evaluate the early-stop rule: the stop prefix is
  // defined in *global* seed order, which one shard never observes. The
  // merge step (MergeShardRecords) re-applies it over the combined records.
  const double stop_ci = sharded ? 0.0 : config_.stop_ci;
  // The estimator runs whenever a sampling policy or an early stop is
  // active; a plain uniform campaign bypasses it entirely, keeping its
  // report/CSV/spool bytes identical to pre-sampling builds.
  const bool sampling_active =
      config_.sample_policy != SamplePolicy::kUniform || stop_ci > 0.0;
  // Shared (not stack-owned) so the telemetry status channel can keep
  // polling estimates at Finish(), after this frame returned the result.
  std::shared_ptr<SampleController> controller;
  if (sampling_active) {
    controller = std::make_shared<SampleController>(config_.sample_policy,
                                                    stop_ci);
  }
  // This worker's slice of the trial space: global indices i with
  // i % shard_count == shard_index (the identity mapping when unsharded).
  const std::vector<std::uint64_t> indices = ShardTrialIndices(
      config_.runs, ShardSpec{config_.shard_index, config_.shard_count});
  if (telemetry != nullptr) {
    if (controller != nullptr) {
      telemetry->SetEstimatesSource(
          [controller] { return controller->Snapshot(); });
    }
    telemetry->BeginCampaign(spec_.name, indices.size());
    telemetry->AttachThread("main");
  }
  if (!golden_done_) RunGolden();
  const std::vector<std::uint64_t> seeds =
      DeriveTrialSeeds(config_.seed, config_.runs);

  // With a journal, trials completed by an earlier (possibly killed) process
  // are replayed instead of re-run; everything executed here is appended so
  // the *next* resume sees it. Records are keyed by run_seed, so replay
  // order (journal append order) never affects the seed-ordered reduction.
  std::unique_ptr<TrialJournal> journal;
  std::map<std::uint64_t, RunRecord> done;
  if (!config_.journal_path.empty()) {
    std::vector<RunRecord> replayed;
    journal = std::make_unique<TrialJournal>(config_.journal_path, config_.seed,
                                             spec_.name, &replayed,
                                             config_.shard_index,
                                             config_.shard_count);
    for (RunRecord& rec : replayed) done[rec.run_seed] = std::move(rec);
  }

  CampaignResult result;
  result.runs = config_.runs;
  std::uint64_t committed = 0;
  for (const std::uint64_t index : indices) {
    const std::uint64_t run_seed = seeds[index];
    const auto it = done.find(run_seed);
    if (it != done.end()) {
      result.Accumulate(it->second, config_.keep_records);
      if (config_.record_sink) config_.record_sink(it->second);
      ++committed;
      if (telemetry != nullptr) {
        telemetry->OnTrialDone(ToTrialStats(it->second, /*replayed=*/true), 0, 0);
      }
      // Replayed trials feed the estimator exactly like executed ones, so a
      // resumed campaign stops at the same seed-order prefix — that is what
      // makes --stop-ci journal/resume-safe.
      if (controller != nullptr &&
          controller->Commit(static_cast<int>(it->second.outcome),
                             it->second.deadlock, it->second.sample_weight) &&
          controller->stop_enabled()) {
        break;
      }
      continue;
    }
    const std::uint64_t t0_ns =
        telemetry != nullptr ? obs::MonotonicNanos() : 0;
    const RunRecord rec = RunTrialContained(&engine_, spec_, config_,
                                            inject_ranks_, golden_, run_seed);
    if (journal != nullptr) journal->Append(rec);
    result.Accumulate(rec, config_.keep_records);
    if (config_.record_sink) config_.record_sink(rec);
    ++committed;
    if (telemetry != nullptr) {
      telemetry->OnTrialDone(ToTrialStats(rec, /*replayed=*/false), t0_ns,
                             obs::MonotonicNanos());
    }
    if (controller != nullptr &&
        controller->Commit(static_cast<int>(rec.outcome), rec.deadlock,
                           rec.sample_weight) &&
        controller->stop_enabled()) {
      break;
    }
  }
  if (controller != nullptr) {
    result.runs = committed;
    result.stopped_early = controller->converged() && committed < config_.runs;
    result.FillEstimates(controller->estimator(), config_.sample_policy,
                         stop_ci, config_.runs);
  } else if (sharded) {
    result.runs = committed;  // this worker's slice, not the global plan
  }
  if (telemetry != nullptr) telemetry->DetachThread();
  return result;
}

}  // namespace chaser::campaign

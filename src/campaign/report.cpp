#include "campaign/report.h"

#include <istream>
#include <ostream>

#include "common/error.h"
#include "common/strings.h"

namespace chaser::campaign {

namespace {
constexpr const char* kRecordsHeader =
    "run_seed,outcome,kind,signal,inject_rank,failure_rank,deadlock,"
    "propagated_cross_rank,propagated_cross_node,injections,tainted_reads,"
    "tainted_writes,peak_tainted_bytes,tainted_output_bytes,trigger_nth,"
    "flip_bits,instructions,trace_dropped";
}  // namespace

void WriteRecordsCsv(const std::vector<RunRecord>& records, std::ostream& out) {
  out << kRecordsHeader << '\n';
  for (const RunRecord& r : records) {
    out << r.run_seed << ',' << OutcomeName(r.outcome) << ','
        << vm::TerminationKindName(r.kind) << ',' << vm::GuestSignalName(r.signal)
        << ',' << r.inject_rank << ',' << r.failure_rank << ','
        << (r.deadlock ? 1 : 0) << ',' << (r.propagated_cross_rank ? 1 : 0) << ','
        << (r.propagated_cross_node ? 1 : 0) << ',' << r.injections << ','
        << r.tainted_reads << ',' << r.tainted_writes << ','
        << r.peak_tainted_bytes << ',' << r.tainted_output_bytes << ','
        << r.trigger_nth << ',' << r.flip_bits << ',' << r.instructions << ','
        << r.trace_dropped << '\n';
  }
}

namespace {

Outcome ParseOutcome(const std::string& s) {
  if (s == "benign") return Outcome::kBenign;
  if (s == "terminated") return Outcome::kTerminated;
  if (s == "sdc") return Outcome::kSdc;
  throw ConfigError("ReadRecordsCsv: unknown outcome '" + s + "'");
}

vm::TerminationKind ParseKind(const std::string& s) {
  for (const auto k : {vm::TerminationKind::kRunning, vm::TerminationKind::kExited,
                       vm::TerminationKind::kSignaled,
                       vm::TerminationKind::kAssertFailed,
                       vm::TerminationKind::kMpiError}) {
    if (s == vm::TerminationKindName(k)) return k;
  }
  throw ConfigError("ReadRecordsCsv: unknown termination kind '" + s + "'");
}

vm::GuestSignal ParseSignal(const std::string& s) {
  for (const auto sig : {vm::GuestSignal::kNone, vm::GuestSignal::kSegv,
                         vm::GuestSignal::kFpe, vm::GuestSignal::kIll,
                         vm::GuestSignal::kSys, vm::GuestSignal::kAbort,
                         vm::GuestSignal::kKill}) {
    if (s == vm::GuestSignalName(sig)) return sig;
  }
  throw ConfigError("ReadRecordsCsv: unknown signal '" + s + "'");
}

std::uint64_t ParseNum(const std::string& s) {
  std::uint64_t v = 0;
  if (!ParseU64(s, &v)) throw ConfigError("ReadRecordsCsv: bad number '" + s + "'");
  return v;
}

std::int64_t ParseSigned(const std::string& s) {
  if (!s.empty() && s[0] == '-') return -static_cast<std::int64_t>(ParseNum(s.substr(1)));
  return static_cast<std::int64_t>(ParseNum(s));
}

}  // namespace

std::vector<RunRecord> ReadRecordsCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kRecordsHeader) {
    throw ConfigError("ReadRecordsCsv: missing or unexpected header");
  }
  std::vector<RunRecord> records;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> f = Split(line, ',');
    if (f.size() != 18) {
      throw ConfigError(StrFormat("ReadRecordsCsv: expected 18 fields, got %zu",
                                  f.size()));
    }
    RunRecord r;
    r.run_seed = ParseNum(f[0]);
    r.outcome = ParseOutcome(f[1]);
    r.kind = ParseKind(f[2]);
    r.signal = ParseSignal(f[3]);
    r.inject_rank = static_cast<Rank>(ParseSigned(f[4]));
    r.failure_rank = static_cast<Rank>(ParseSigned(f[5]));
    r.deadlock = ParseNum(f[6]) != 0;
    r.propagated_cross_rank = ParseNum(f[7]) != 0;
    r.propagated_cross_node = ParseNum(f[8]) != 0;
    r.injections = ParseNum(f[9]);
    r.tainted_reads = ParseNum(f[10]);
    r.tainted_writes = ParseNum(f[11]);
    r.peak_tainted_bytes = ParseNum(f[12]);
    r.tainted_output_bytes = ParseNum(f[13]);
    r.trigger_nth = ParseNum(f[14]);
    r.flip_bits = static_cast<unsigned>(ParseNum(f[15]));
    r.instructions = ParseNum(f[16]);
    r.trace_dropped = ParseNum(f[17]);
    records.push_back(r);
  }
  return records;
}

void WriteTimelineCsv(const std::vector<core::TaintSample>& samples,
                      std::ostream& out) {
  out << "rank,instret,tainted_bytes\n";
  for (const core::TaintSample& s : samples) {
    out << s.rank << ',' << s.instret << ',' << s.tainted_bytes << '\n';
  }
}

PropagationStats AnalyzePropagation(const std::vector<RunRecord>& records) {
  PropagationStats stats;
  stats.runs = records.size();
  std::uint64_t more_reads = 0, only_reads = 0, only_writes = 0;
  for (const RunRecord& r : records) {
    stats.total_tainted_reads += r.tainted_reads;
    stats.total_tainted_writes += r.tainted_writes;
    stats.max_tainted_reads = std::max(stats.max_tainted_reads, r.tainted_reads);
    stats.max_tainted_writes = std::max(stats.max_tainted_writes, r.tainted_writes);
    if (r.tainted_reads > r.tainted_writes) ++more_reads;
    if (r.tainted_reads > 0 && r.tainted_writes == 0) ++only_reads;
    if (r.tainted_writes > 0 && r.tainted_reads == 0) ++only_writes;
  }
  if (stats.runs > 0) {
    const double n = static_cast<double>(stats.runs);
    stats.pct_more_reads_than_writes = 100.0 * static_cast<double>(more_reads) / n;
    stats.pct_only_reads = 100.0 * static_cast<double>(only_reads) / n;
    stats.pct_only_writes = 100.0 * static_cast<double>(only_writes) / n;
  }
  return stats;
}

SdcPredictionStats AnalyzeSdcPrediction(const std::vector<RunRecord>& records) {
  SdcPredictionStats stats;
  for (const RunRecord& r : records) {
    if (r.kind != vm::TerminationKind::kExited) continue;  // only completed runs
    ++stats.completed_runs;
    const bool predicted = r.tainted_output_bytes > 0;
    const bool actual = r.outcome == Outcome::kSdc;
    if (predicted && actual) ++stats.true_positives;
    if (predicted && !actual) ++stats.false_positives;
    if (!predicted && actual) ++stats.false_negatives;
    if (!predicted && !actual) ++stats.true_negatives;
  }
  const double tp = static_cast<double>(stats.true_positives);
  if (stats.true_positives + stats.false_positives > 0) {
    stats.precision =
        tp / static_cast<double>(stats.true_positives + stats.false_positives);
  }
  if (stats.true_positives + stats.false_negatives > 0) {
    stats.recall =
        tp / static_cast<double>(stats.true_positives + stats.false_negatives);
  }
  return stats;
}

}  // namespace chaser::campaign

#include "campaign/report.h"

#include <cstdlib>
#include <istream>
#include <ostream>

#include "common/error.h"
#include "common/strings.h"

namespace chaser::campaign {

namespace {

// Format history. A bare (versionless) first line is how v1/v2 files start;
// v3 onward leads with an explicit `#chaser-records-csv vN` line so future
// column growth cannot silently misparse old files again.
constexpr const char* kVersionLinePrefix = "#chaser-records-csv v";


constexpr const char* kRecordsHeaderV1 =
    "run_seed,outcome,kind,signal,inject_rank,failure_rank,deadlock,"
    "propagated_cross_rank,propagated_cross_node,injections,tainted_reads,"
    "tainted_writes,peak_tainted_bytes,tainted_output_bytes,trigger_nth,"
    "flip_bits,instructions";
constexpr const char* kRecordsHeaderV2 =
    "run_seed,outcome,kind,signal,inject_rank,failure_rank,deadlock,"
    "propagated_cross_rank,propagated_cross_node,injections,tainted_reads,"
    "tainted_writes,peak_tainted_bytes,tainted_output_bytes,trigger_nth,"
    "flip_bits,instructions,trace_dropped";
constexpr const char* kRecordsHeaderV3 =
    "run_seed,outcome,kind,signal,inject_rank,failure_rank,deadlock,"
    "propagated_cross_rank,propagated_cross_node,injections,tainted_reads,"
    "tainted_writes,peak_tainted_bytes,tainted_output_bytes,trigger_nth,"
    "flip_bits,instructions,trace_dropped,taint_lost,retries,infra_error";
constexpr const char* kRecordsHeaderV4 =
    "run_seed,outcome,kind,signal,inject_rank,failure_rank,deadlock,"
    "propagated_cross_rank,propagated_cross_node,injections,tainted_reads,"
    "tainted_writes,peak_tainted_bytes,tainted_output_bytes,trigger_nth,"
    "flip_bits,instructions,trace_dropped,taint_lost,retries,infra_error,"
    "tb_chain_hits,tlb_hits,tlb_misses";

constexpr const char* kRecordsHeaderV5 =
    "run_seed,outcome,kind,signal,inject_rank,failure_rank,deadlock,"
    "propagated_cross_rank,propagated_cross_node,injections,tainted_reads,"
    "tainted_writes,peak_tainted_bytes,tainted_output_bytes,trigger_nth,"
    "flip_bits,instructions,trace_dropped,taint_lost,retries,infra_error,"
    "tb_chain_hits,tlb_hits,tlb_misses,inject_pc,inject_class,sample_weight";

constexpr const char* kRecordsHeaderV6 =
    "run_seed,outcome,kind,signal,inject_rank,failure_rank,deadlock,"
    "propagated_cross_rank,propagated_cross_node,injections,tainted_reads,"
    "tainted_writes,peak_tainted_bytes,tainted_output_bytes,trigger_nth,"
    "flip_bits,instructions,trace_dropped,taint_lost,retries,infra_error,"
    "tb_chain_hits,tlb_hits,tlb_misses,inject_pc,inject_class,sample_weight,"
    "injector,fault_class";

constexpr std::size_t kFieldsV1 = 17;
constexpr std::size_t kFieldsV2 = 18;
constexpr std::size_t kFieldsV3 = 21;
constexpr std::size_t kFieldsV4 = 24;
constexpr std::size_t kFieldsV5 = 27;
constexpr std::size_t kFieldsV6 = 29;

const char* HeaderFor(unsigned version) {
  return version == 1   ? kRecordsHeaderV1
         : version == 2 ? kRecordsHeaderV2
         : version == 3 ? kRecordsHeaderV3
         : version == 4 ? kRecordsHeaderV4
         : version == 5 ? kRecordsHeaderV5
                        : kRecordsHeaderV6;
}

std::size_t FieldsFor(unsigned version) {
  return version == 1   ? kFieldsV1
         : version == 2 ? kFieldsV2
         : version == 3 ? kFieldsV3
         : version == 4 ? kFieldsV4
         : version == 5 ? kFieldsV5
                        : kFieldsV6;
}

/// Decimal append without a temporary std::string per field. 20 digits is
/// enough for 2^64-1.
void AppendU64(std::string* out, std::uint64_t v) {
  char buf[20];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  out->append(p, static_cast<std::size_t>(buf + sizeof(buf) - p));
}

void AppendI64(std::string* out, std::int64_t v) {
  if (v < 0) {
    out->push_back('-');
    AppendU64(out, static_cast<std::uint64_t>(-(v + 1)) + 1);
  } else {
    AppendU64(out, static_cast<std::uint64_t>(v));
  }
}

/// infra_error/injector/fault_class are free-form text; flatten anything
/// that would break the one-line-per-record framing or the comma split.
void AppendSanitized(std::string* out, const std::string& s) {
  for (char c : s) {
    out->push_back((c == ',' || c == '\n' || c == '\r') ? ' ' : c);
  }
}

}  // namespace

unsigned RecordsCsvVersionFor(bool any_injector, SamplePolicy policy) {
  // Uniform campaigns never populate the sampling columns, so they keep
  // writing v4 — byte for byte what earlier builds produced. Only sampled
  // campaigns opt into the wider v5 layout, and only campaigns run with a
  // non-default injector (the one way records gain an injector name) opt
  // into v6, which carries both the sampling and the injector columns.
  if (any_injector) return 6;
  if (policy != SamplePolicy::kUniform) return 5;
  return 4;
}

void AppendRecordsCsvHeader(std::string* out, unsigned version) {
  if (version >= 3) {
    out->append(kVersionLinePrefix);
    AppendU64(out, version);
    out->push_back('\n');
  }
  out->append(HeaderFor(version));
  out->push_back('\n');
}

void AppendRecordsCsvRow(std::string* out, const RunRecord& r,
                         unsigned version) {
  AppendU64(out, r.run_seed);
  out->push_back(',');
  out->append(OutcomeName(r.outcome));
  out->push_back(',');
  out->append(vm::TerminationKindName(r.kind));
  out->push_back(',');
  out->append(vm::GuestSignalName(r.signal));
  out->push_back(',');
  AppendI64(out, r.inject_rank);
  out->push_back(',');
  AppendI64(out, r.failure_rank);
  out->push_back(',');
  out->push_back(r.deadlock ? '1' : '0');
  out->push_back(',');
  out->push_back(r.propagated_cross_rank ? '1' : '0');
  out->push_back(',');
  out->push_back(r.propagated_cross_node ? '1' : '0');
  out->push_back(',');
  AppendU64(out, r.injections);
  out->push_back(',');
  AppendU64(out, r.tainted_reads);
  out->push_back(',');
  AppendU64(out, r.tainted_writes);
  out->push_back(',');
  AppendU64(out, r.peak_tainted_bytes);
  out->push_back(',');
  AppendU64(out, r.tainted_output_bytes);
  out->push_back(',');
  AppendU64(out, r.trigger_nth);
  out->push_back(',');
  AppendU64(out, r.flip_bits);
  out->push_back(',');
  AppendU64(out, r.instructions);
  if (version >= 2) {
    out->push_back(',');
    AppendU64(out, r.trace_dropped);
  }
  if (version >= 3) {
    out->push_back(',');
    AppendU64(out, r.taint_lost);
    out->push_back(',');
    AppendU64(out, r.retries);
    out->push_back(',');
    AppendSanitized(out, r.infra_error);
  }
  if (version >= 4) {
    out->push_back(',');
    AppendU64(out, r.tb_chain_hits);
    out->push_back(',');
    AppendU64(out, r.tlb_hits);
    out->push_back(',');
    AppendU64(out, r.tlb_misses);
  }
  if (version >= 5) {
    out->push_back(',');
    AppendU64(out, r.inject_pc);
    out->push_back(',');
    out->append(guest::ClassName(r.inject_class));
    out->push_back(',');
    out->append(StrFormat("%.17g", r.sample_weight));
  }
  if (version >= 6) {
    out->push_back(',');
    AppendSanitized(out, r.injector);
    out->push_back(',');
    AppendSanitized(out, r.fault_class);
  }
  out->push_back('\n');
}

void WriteRecordsCsv(const std::vector<RunRecord>& records, std::ostream& out,
                     SamplePolicy policy) {
  bool custom = false;
  for (const RunRecord& r : records) {
    if (!r.injector.empty()) {
      custom = true;
      break;
    }
  }
  const unsigned version = RecordsCsvVersionFor(custom, policy);
  // One preallocated append buffer instead of per-field ostream inserts:
  // rows are ~120-150 bytes, so reserve generously and flush in chunks to
  // keep the buffer out of large-allocation territory on million-row files.
  std::string buf;
  buf.reserve(1 << 16);
  AppendRecordsCsvHeader(&buf, version);
  for (const RunRecord& r : records) {
    AppendRecordsCsvRow(&buf, r, version);
    if (buf.size() >= (1 << 16) - 256) {
      out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
      buf.clear();
    }
  }
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

namespace {

Outcome ParseOutcome(const std::string& s) {
  if (s == "benign") return Outcome::kBenign;
  if (s == "terminated") return Outcome::kTerminated;
  if (s == "sdc") return Outcome::kSdc;
  if (s == "infra") return Outcome::kInfra;
  if (s == "crashed") return Outcome::kCrashed;
  throw ConfigError("ReadRecordsCsv: unknown outcome '" + s + "'");
}

vm::TerminationKind ParseKind(const std::string& s) {
  for (const auto k : {vm::TerminationKind::kRunning, vm::TerminationKind::kExited,
                       vm::TerminationKind::kSignaled,
                       vm::TerminationKind::kAssertFailed,
                       vm::TerminationKind::kMpiError}) {
    if (s == vm::TerminationKindName(k)) return k;
  }
  throw ConfigError("ReadRecordsCsv: unknown termination kind '" + s + "'");
}

vm::GuestSignal ParseSignal(const std::string& s) {
  for (const auto sig : {vm::GuestSignal::kNone, vm::GuestSignal::kSegv,
                         vm::GuestSignal::kFpe, vm::GuestSignal::kIll,
                         vm::GuestSignal::kSys, vm::GuestSignal::kAbort,
                         vm::GuestSignal::kKill, vm::GuestSignal::kCrash}) {
    if (s == vm::GuestSignalName(sig)) return sig;
  }
  throw ConfigError("ReadRecordsCsv: unknown signal '" + s + "'");
}

std::uint64_t ParseNum(const std::string& s) {
  std::uint64_t v = 0;
  if (!ParseU64(s, &v)) throw ConfigError("ReadRecordsCsv: bad number '" + s + "'");
  return v;
}

std::int64_t ParseSigned(const std::string& s) {
  if (!s.empty() && s[0] == '-') return -static_cast<std::int64_t>(ParseNum(s.substr(1)));
  return static_cast<std::int64_t>(ParseNum(s));
}

}  // namespace

RecordsCsvReader::RecordsCsvReader(std::istream& in) : in_(in) {
  std::string line;
  if (!std::getline(in_, line)) {
    throw ConfigError("ReadRecordsCsv: missing or unexpected header");
  }

  // Versioned files lead with `#chaser-records-csv vN`; versionless files
  // are identified by which historical bare header their first line matches.
  const std::string prefix = kVersionLinePrefix;
  if (line.rfind(prefix, 0) == 0) {
    std::uint64_t v = 0;
    if (!ParseU64(line.substr(prefix.size()), &v) || v == 0) {
      throw ConfigError("ReadRecordsCsv: malformed version line '" + line + "'");
    }
    if (v > kRecordsCsvVersion) {
      throw ConfigError(StrFormat(
          "ReadRecordsCsv: file is format v%llu but this build reads up to "
          "v%u — regenerate or upgrade",
          static_cast<unsigned long long>(v), kRecordsCsvVersion));
    }
    version_ = static_cast<unsigned>(v);
    if (!std::getline(in_, line)) {
      throw ConfigError("ReadRecordsCsv: version line without a header");
    }
    if (line != HeaderFor(version_)) {
      throw ConfigError(StrFormat(
          "ReadRecordsCsv: header does not match format v%u", version_));
    }
  } else if (line == kRecordsHeaderV2) {
    version_ = 2;
  } else if (line == kRecordsHeaderV1) {
    version_ = 1;
  } else {
    throw ConfigError("ReadRecordsCsv: missing or unexpected header");
  }
  fields_ = FieldsFor(version_);
}

bool RecordsCsvReader::Next(RunRecord* out) {
  while (std::getline(in_, line_)) {
    if (line_.empty()) continue;
    const std::vector<std::string> f = Split(line_, ',');
    if (f.size() != fields_) {
      throw ConfigError(StrFormat(
          "ReadRecordsCsv: expected %zu fields (format v%u), got %zu", fields_,
          version_, f.size()));
    }
    RunRecord r;
    r.run_seed = ParseNum(f[0]);
    r.outcome = ParseOutcome(f[1]);
    r.kind = ParseKind(f[2]);
    r.signal = ParseSignal(f[3]);
    r.inject_rank = static_cast<Rank>(ParseSigned(f[4]));
    r.failure_rank = static_cast<Rank>(ParseSigned(f[5]));
    r.deadlock = ParseNum(f[6]) != 0;
    r.propagated_cross_rank = ParseNum(f[7]) != 0;
    r.propagated_cross_node = ParseNum(f[8]) != 0;
    r.injections = ParseNum(f[9]);
    r.tainted_reads = ParseNum(f[10]);
    r.tainted_writes = ParseNum(f[11]);
    r.peak_tainted_bytes = ParseNum(f[12]);
    r.tainted_output_bytes = ParseNum(f[13]);
    r.trigger_nth = ParseNum(f[14]);
    r.flip_bits = static_cast<unsigned>(ParseNum(f[15]));
    r.instructions = ParseNum(f[16]);
    if (version_ >= 2) r.trace_dropped = ParseNum(f[17]);
    if (version_ >= 3) {
      r.taint_lost = ParseNum(f[18]);
      r.retries = static_cast<unsigned>(ParseNum(f[19]));
      r.infra_error = f[20];
    }
    if (version_ >= 4) {
      r.tb_chain_hits = ParseNum(f[21]);
      r.tlb_hits = ParseNum(f[22]);
      r.tlb_misses = ParseNum(f[23]);
    }
    if (version_ >= 5) {
      r.inject_pc = ParseNum(f[24]);
      if (!guest::ParseInstrClass(f[25], &r.inject_class)) {
        throw ConfigError("ReadRecordsCsv: unknown instruction class '" +
                          f[25] + "'");
      }
      char* end = nullptr;
      r.sample_weight = std::strtod(f[26].c_str(), &end);
      if (end == f[26].c_str() || *end != '\0' || r.sample_weight < 0.0) {
        throw ConfigError("ReadRecordsCsv: bad sample_weight '" + f[26] + "'");
      }
    }
    if (version_ >= 6) {
      r.injector = f[27];
      r.fault_class = f[28];
    }
    ++rows_;
    *out = r;
    return true;
  }
  return false;
}

std::vector<RunRecord> ReadRecordsCsv(std::istream& in) {
  RecordsCsvReader reader(in);
  std::vector<RunRecord> records;
  RunRecord r;
  while (reader.Next(&r)) records.push_back(r);
  return records;
}

void WriteTimelineCsv(const std::vector<core::TaintSample>& samples,
                      std::ostream& out) {
  out << "rank,instret,tainted_bytes\n";
  for (const core::TaintSample& s : samples) {
    out << s.rank << ',' << s.instret << ',' << s.tainted_bytes << '\n';
  }
}

PropagationStats AnalyzePropagation(const std::vector<RunRecord>& records) {
  PropagationStats stats;
  stats.runs = records.size();
  std::uint64_t more_reads = 0, only_reads = 0, only_writes = 0;
  for (const RunRecord& r : records) {
    stats.total_tainted_reads += r.tainted_reads;
    stats.total_tainted_writes += r.tainted_writes;
    stats.max_tainted_reads = std::max(stats.max_tainted_reads, r.tainted_reads);
    stats.max_tainted_writes = std::max(stats.max_tainted_writes, r.tainted_writes);
    if (r.tainted_reads > r.tainted_writes) ++more_reads;
    if (r.tainted_reads > 0 && r.tainted_writes == 0) ++only_reads;
    if (r.tainted_writes > 0 && r.tainted_reads == 0) ++only_writes;
  }
  if (stats.runs > 0) {
    const double n = static_cast<double>(stats.runs);
    stats.pct_more_reads_than_writes = 100.0 * static_cast<double>(more_reads) / n;
    stats.pct_only_reads = 100.0 * static_cast<double>(only_reads) / n;
    stats.pct_only_writes = 100.0 * static_cast<double>(only_writes) / n;
  }
  return stats;
}

SdcPredictionStats AnalyzeSdcPrediction(const std::vector<RunRecord>& records) {
  SdcPredictionStats stats;
  for (const RunRecord& r : records) {
    if (r.kind != vm::TerminationKind::kExited) continue;  // only completed runs
    ++stats.completed_runs;
    const bool predicted = r.tainted_output_bytes > 0;
    const bool actual = r.outcome == Outcome::kSdc;
    if (predicted && actual) ++stats.true_positives;
    if (predicted && !actual) ++stats.false_positives;
    if (!predicted && actual) ++stats.false_negatives;
    if (!predicted && !actual) ++stats.true_negatives;
  }
  const double tp = static_cast<double>(stats.true_positives);
  if (stats.true_positives + stats.false_positives > 0) {
    stats.precision =
        tp / static_cast<double>(stats.true_positives + stats.false_positives);
  }
  if (stats.true_positives + stats.false_negatives > 0) {
    stats.recall =
        tp / static_cast<double>(stats.true_positives + stats.false_negatives);
  }
  return stats;
}

}  // namespace chaser::campaign

#include "campaign/report.h"

#include <cstdlib>
#include <istream>
#include <ostream>

#include "common/error.h"
#include "common/strings.h"

namespace chaser::campaign {

namespace {

// Format history. A bare (versionless) first line is how v1/v2 files start;
// v3 onward leads with an explicit `#chaser-records-csv vN` line so future
// column growth cannot silently misparse old files again.
constexpr const char* kVersionLinePrefix = "#chaser-records-csv v";


constexpr const char* kRecordsHeaderV1 =
    "run_seed,outcome,kind,signal,inject_rank,failure_rank,deadlock,"
    "propagated_cross_rank,propagated_cross_node,injections,tainted_reads,"
    "tainted_writes,peak_tainted_bytes,tainted_output_bytes,trigger_nth,"
    "flip_bits,instructions";
constexpr const char* kRecordsHeaderV2 =
    "run_seed,outcome,kind,signal,inject_rank,failure_rank,deadlock,"
    "propagated_cross_rank,propagated_cross_node,injections,tainted_reads,"
    "tainted_writes,peak_tainted_bytes,tainted_output_bytes,trigger_nth,"
    "flip_bits,instructions,trace_dropped";
constexpr const char* kRecordsHeaderV3 =
    "run_seed,outcome,kind,signal,inject_rank,failure_rank,deadlock,"
    "propagated_cross_rank,propagated_cross_node,injections,tainted_reads,"
    "tainted_writes,peak_tainted_bytes,tainted_output_bytes,trigger_nth,"
    "flip_bits,instructions,trace_dropped,taint_lost,retries,infra_error";
constexpr const char* kRecordsHeaderV4 =
    "run_seed,outcome,kind,signal,inject_rank,failure_rank,deadlock,"
    "propagated_cross_rank,propagated_cross_node,injections,tainted_reads,"
    "tainted_writes,peak_tainted_bytes,tainted_output_bytes,trigger_nth,"
    "flip_bits,instructions,trace_dropped,taint_lost,retries,infra_error,"
    "tb_chain_hits,tlb_hits,tlb_misses";

constexpr const char* kRecordsHeaderV5 =
    "run_seed,outcome,kind,signal,inject_rank,failure_rank,deadlock,"
    "propagated_cross_rank,propagated_cross_node,injections,tainted_reads,"
    "tainted_writes,peak_tainted_bytes,tainted_output_bytes,trigger_nth,"
    "flip_bits,instructions,trace_dropped,taint_lost,retries,infra_error,"
    "tb_chain_hits,tlb_hits,tlb_misses,inject_pc,inject_class,sample_weight";

constexpr const char* kRecordsHeaderV6 =
    "run_seed,outcome,kind,signal,inject_rank,failure_rank,deadlock,"
    "propagated_cross_rank,propagated_cross_node,injections,tainted_reads,"
    "tainted_writes,peak_tainted_bytes,tainted_output_bytes,trigger_nth,"
    "flip_bits,instructions,trace_dropped,taint_lost,retries,infra_error,"
    "tb_chain_hits,tlb_hits,tlb_misses,inject_pc,inject_class,sample_weight,"
    "injector,fault_class";

constexpr std::size_t kFieldsV1 = 17;
constexpr std::size_t kFieldsV2 = 18;
constexpr std::size_t kFieldsV3 = 21;
constexpr std::size_t kFieldsV4 = 24;
constexpr std::size_t kFieldsV5 = 27;
constexpr std::size_t kFieldsV6 = 29;

/// infra_error is free-form exception text; flatten anything that would
/// break the one-line-per-record framing or the comma split.
std::string SanitizeCell(std::string s) {
  for (char& c : s) {
    if (c == ',' || c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

}  // namespace

void WriteRecordsCsv(const std::vector<RunRecord>& records, std::ostream& out,
                     SamplePolicy policy) {
  // Uniform campaigns never populate the sampling columns, so they keep
  // writing v4 — byte for byte what earlier builds produced. Only sampled
  // campaigns opt into the wider v5 layout, and only campaigns run with a
  // non-default injector (the one way records gain an injector name) opt
  // into v6, which carries both the sampling and the injector columns.
  bool custom = false;
  for (const RunRecord& r : records) {
    if (!r.injector.empty()) {
      custom = true;
      break;
    }
  }
  const bool sampled = custom || policy != SamplePolicy::kUniform;
  const unsigned version = custom ? 6u : sampled ? 5u : 4u;
  out << kVersionLinePrefix << version << '\n';
  out << (custom ? kRecordsHeaderV6 : sampled ? kRecordsHeaderV5 : kRecordsHeaderV4)
      << '\n';
  for (const RunRecord& r : records) {
    out << r.run_seed << ',' << OutcomeName(r.outcome) << ','
        << vm::TerminationKindName(r.kind) << ',' << vm::GuestSignalName(r.signal)
        << ',' << r.inject_rank << ',' << r.failure_rank << ','
        << (r.deadlock ? 1 : 0) << ',' << (r.propagated_cross_rank ? 1 : 0) << ','
        << (r.propagated_cross_node ? 1 : 0) << ',' << r.injections << ','
        << r.tainted_reads << ',' << r.tainted_writes << ','
        << r.peak_tainted_bytes << ',' << r.tainted_output_bytes << ','
        << r.trigger_nth << ',' << r.flip_bits << ',' << r.instructions << ','
        << r.trace_dropped << ',' << r.taint_lost << ',' << r.retries << ','
        << SanitizeCell(r.infra_error) << ',' << r.tb_chain_hits << ','
        << r.tlb_hits << ',' << r.tlb_misses;
    if (sampled) {
      out << ',' << r.inject_pc << ',' << guest::ClassName(r.inject_class)
          << ',' << StrFormat("%.17g", r.sample_weight);
    }
    if (custom) {
      out << ',' << SanitizeCell(r.injector) << ','
          << SanitizeCell(r.fault_class);
    }
    out << '\n';
  }
}

namespace {

Outcome ParseOutcome(const std::string& s) {
  if (s == "benign") return Outcome::kBenign;
  if (s == "terminated") return Outcome::kTerminated;
  if (s == "sdc") return Outcome::kSdc;
  if (s == "infra") return Outcome::kInfra;
  if (s == "crashed") return Outcome::kCrashed;
  throw ConfigError("ReadRecordsCsv: unknown outcome '" + s + "'");
}

vm::TerminationKind ParseKind(const std::string& s) {
  for (const auto k : {vm::TerminationKind::kRunning, vm::TerminationKind::kExited,
                       vm::TerminationKind::kSignaled,
                       vm::TerminationKind::kAssertFailed,
                       vm::TerminationKind::kMpiError}) {
    if (s == vm::TerminationKindName(k)) return k;
  }
  throw ConfigError("ReadRecordsCsv: unknown termination kind '" + s + "'");
}

vm::GuestSignal ParseSignal(const std::string& s) {
  for (const auto sig : {vm::GuestSignal::kNone, vm::GuestSignal::kSegv,
                         vm::GuestSignal::kFpe, vm::GuestSignal::kIll,
                         vm::GuestSignal::kSys, vm::GuestSignal::kAbort,
                         vm::GuestSignal::kKill, vm::GuestSignal::kCrash}) {
    if (s == vm::GuestSignalName(sig)) return sig;
  }
  throw ConfigError("ReadRecordsCsv: unknown signal '" + s + "'");
}

std::uint64_t ParseNum(const std::string& s) {
  std::uint64_t v = 0;
  if (!ParseU64(s, &v)) throw ConfigError("ReadRecordsCsv: bad number '" + s + "'");
  return v;
}

std::int64_t ParseSigned(const std::string& s) {
  if (!s.empty() && s[0] == '-') return -static_cast<std::int64_t>(ParseNum(s.substr(1)));
  return static_cast<std::int64_t>(ParseNum(s));
}

}  // namespace

std::vector<RunRecord> ReadRecordsCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw ConfigError("ReadRecordsCsv: missing or unexpected header");
  }

  // Versioned files lead with `#chaser-records-csv vN`; versionless files
  // are identified by which historical bare header their first line matches.
  unsigned version = 0;
  const std::string prefix = kVersionLinePrefix;
  if (line.rfind(prefix, 0) == 0) {
    std::uint64_t v = 0;
    if (!ParseU64(line.substr(prefix.size()), &v) || v == 0) {
      throw ConfigError("ReadRecordsCsv: malformed version line '" + line + "'");
    }
    if (v > kRecordsCsvVersion) {
      throw ConfigError(StrFormat(
          "ReadRecordsCsv: file is format v%llu but this build reads up to "
          "v%u — regenerate or upgrade",
          static_cast<unsigned long long>(v), kRecordsCsvVersion));
    }
    version = static_cast<unsigned>(v);
    if (!std::getline(in, line)) {
      throw ConfigError("ReadRecordsCsv: version line without a header");
    }
    const char* expected = version == 1   ? kRecordsHeaderV1
                           : version == 2 ? kRecordsHeaderV2
                           : version == 3 ? kRecordsHeaderV3
                           : version == 4 ? kRecordsHeaderV4
                           : version == 5 ? kRecordsHeaderV5
                                          : kRecordsHeaderV6;
    if (line != expected) {
      throw ConfigError(StrFormat(
          "ReadRecordsCsv: header does not match format v%u", version));
    }
  } else if (line == kRecordsHeaderV2) {
    version = 2;
  } else if (line == kRecordsHeaderV1) {
    version = 1;
  } else {
    throw ConfigError("ReadRecordsCsv: missing or unexpected header");
  }

  const std::size_t fields = version == 1   ? kFieldsV1
                             : version == 2 ? kFieldsV2
                             : version == 3 ? kFieldsV3
                             : version == 4 ? kFieldsV4
                             : version == 5 ? kFieldsV5
                                            : kFieldsV6;
  std::vector<RunRecord> records;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> f = Split(line, ',');
    if (f.size() != fields) {
      throw ConfigError(StrFormat(
          "ReadRecordsCsv: expected %zu fields (format v%u), got %zu", fields,
          version, f.size()));
    }
    RunRecord r;
    r.run_seed = ParseNum(f[0]);
    r.outcome = ParseOutcome(f[1]);
    r.kind = ParseKind(f[2]);
    r.signal = ParseSignal(f[3]);
    r.inject_rank = static_cast<Rank>(ParseSigned(f[4]));
    r.failure_rank = static_cast<Rank>(ParseSigned(f[5]));
    r.deadlock = ParseNum(f[6]) != 0;
    r.propagated_cross_rank = ParseNum(f[7]) != 0;
    r.propagated_cross_node = ParseNum(f[8]) != 0;
    r.injections = ParseNum(f[9]);
    r.tainted_reads = ParseNum(f[10]);
    r.tainted_writes = ParseNum(f[11]);
    r.peak_tainted_bytes = ParseNum(f[12]);
    r.tainted_output_bytes = ParseNum(f[13]);
    r.trigger_nth = ParseNum(f[14]);
    r.flip_bits = static_cast<unsigned>(ParseNum(f[15]));
    r.instructions = ParseNum(f[16]);
    if (version >= 2) r.trace_dropped = ParseNum(f[17]);
    if (version >= 3) {
      r.taint_lost = ParseNum(f[18]);
      r.retries = static_cast<unsigned>(ParseNum(f[19]));
      r.infra_error = f[20];
    }
    if (version >= 4) {
      r.tb_chain_hits = ParseNum(f[21]);
      r.tlb_hits = ParseNum(f[22]);
      r.tlb_misses = ParseNum(f[23]);
    }
    if (version >= 5) {
      r.inject_pc = ParseNum(f[24]);
      if (!guest::ParseInstrClass(f[25], &r.inject_class)) {
        throw ConfigError("ReadRecordsCsv: unknown instruction class '" +
                          f[25] + "'");
      }
      char* end = nullptr;
      r.sample_weight = std::strtod(f[26].c_str(), &end);
      if (end == f[26].c_str() || *end != '\0' || r.sample_weight < 0.0) {
        throw ConfigError("ReadRecordsCsv: bad sample_weight '" + f[26] + "'");
      }
    }
    if (version >= 6) {
      r.injector = f[27];
      r.fault_class = f[28];
    }
    records.push_back(r);
  }
  return records;
}

void WriteTimelineCsv(const std::vector<core::TaintSample>& samples,
                      std::ostream& out) {
  out << "rank,instret,tainted_bytes\n";
  for (const core::TaintSample& s : samples) {
    out << s.rank << ',' << s.instret << ',' << s.tainted_bytes << '\n';
  }
}

PropagationStats AnalyzePropagation(const std::vector<RunRecord>& records) {
  PropagationStats stats;
  stats.runs = records.size();
  std::uint64_t more_reads = 0, only_reads = 0, only_writes = 0;
  for (const RunRecord& r : records) {
    stats.total_tainted_reads += r.tainted_reads;
    stats.total_tainted_writes += r.tainted_writes;
    stats.max_tainted_reads = std::max(stats.max_tainted_reads, r.tainted_reads);
    stats.max_tainted_writes = std::max(stats.max_tainted_writes, r.tainted_writes);
    if (r.tainted_reads > r.tainted_writes) ++more_reads;
    if (r.tainted_reads > 0 && r.tainted_writes == 0) ++only_reads;
    if (r.tainted_writes > 0 && r.tainted_reads == 0) ++only_writes;
  }
  if (stats.runs > 0) {
    const double n = static_cast<double>(stats.runs);
    stats.pct_more_reads_than_writes = 100.0 * static_cast<double>(more_reads) / n;
    stats.pct_only_reads = 100.0 * static_cast<double>(only_reads) / n;
    stats.pct_only_writes = 100.0 * static_cast<double>(only_writes) / n;
  }
  return stats;
}

SdcPredictionStats AnalyzeSdcPrediction(const std::vector<RunRecord>& records) {
  SdcPredictionStats stats;
  for (const RunRecord& r : records) {
    if (r.kind != vm::TerminationKind::kExited) continue;  // only completed runs
    ++stats.completed_runs;
    const bool predicted = r.tainted_output_bytes > 0;
    const bool actual = r.outcome == Outcome::kSdc;
    if (predicted && actual) ++stats.true_positives;
    if (predicted && !actual) ++stats.false_positives;
    if (!predicted && actual) ++stats.false_negatives;
    if (!predicted && !actual) ++stats.true_negatives;
  }
  const double tp = static_cast<double>(stats.true_positives);
  if (stats.true_positives + stats.false_positives > 0) {
    stats.precision =
        tp / static_cast<double>(stats.true_positives + stats.false_positives);
  }
  if (stats.true_positives + stats.false_negatives > 0) {
    stats.recall =
        tp / static_cast<double>(stats.true_positives + stats.false_negatives);
  }
  return stats;
}

}  // namespace chaser::campaign

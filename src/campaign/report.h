// Campaign post-analysis: CSV export and offline statistics.
//
// The paper's workflow logs fault-propagation data during the runs and
// analyses it afterwards (Figs. 7-9 are produced from those logs). This
// module serialises campaign results to CSV, parses them back, and computes
// the distribution statistics the paper reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "core/trace.h"

namespace chaser::campaign {

/// Version of the records-CSV format this build writes (the
/// `#chaser-records-csv vN` lead line). The one shared constant behind the
/// writer, the reader's too-new ceiling, report_test's expectations, and
/// tools/bench_to_json.sh (which greps this line to stamp its JSON) — bump
/// it here and every consumer follows.
inline constexpr unsigned kRecordsCsvVersion = 6;

/// Write one row per run: seed, outcome, termination detail, injection site,
/// propagation counters. Uniform campaigns emit format v4 — byte-identical
/// to what this tool has always written — while sampled campaigns (`policy`
/// != kUniform) emit v5, which appends the inject_pc/inject_class/
/// sample_weight columns those campaigns populate. Campaigns run with a
/// non-default `--injector` (detected by any record carrying an injector
/// name) emit v6, which further appends injector/fault_class — and always
/// includes the sampling columns so v6 has one fixed layout. Either way the
/// file leads with a `#chaser-records-csv vN` version line, then the column
/// header, then the rows. `infra_error` cells are sanitized (',' and
/// newlines become spaces) so rows stay one line wide.
void WriteRecordsCsv(const std::vector<RunRecord>& records, std::ostream& out,
                     SamplePolicy policy = SamplePolicy::kUniform);

/// The version WriteRecordsCsv picks for a record set: v6 when any record
/// carries an injector name, else v5 for sampled policies, else v4. The CTR
/// store's export-csv path shares this rule so its output is byte-identical
/// to the native CSV of the same campaign.
unsigned RecordsCsvVersionFor(bool any_injector, SamplePolicy policy);

/// Append the `#chaser-records-csv vN` version line plus the column header
/// for `version` (4..kRecordsCsvVersion) to `*out`.
void AppendRecordsCsvHeader(std::string* out, unsigned version);

/// Append one record row (newline included) in the `version` layout. This is
/// the one row formatter behind WriteRecordsCsv and the CTR store's
/// streaming export — appends into a caller-owned buffer instead of going
/// through an ostream, so a million-row export never pays per-field stream
/// state churn.
void AppendRecordsCsvRow(std::string* out, const RunRecord& r,
                         unsigned version);

/// Streaming (line-at-a-time) reader over a records CSV: parses the
/// version/header eagerly, then decodes one row per Next() call without ever
/// materializing the whole file. ReadRecordsCsv is this reader plus a
/// vector; chaser_analyze summarize streams through it directly so shard
/// CSVs from million-trial campaigns aggregate in constant memory.
class RecordsCsvReader {
 public:
  /// Reads and validates the header lines; throws ConfigError on an
  /// unknown/too-new header. `in` is borrowed and must outlive the reader.
  explicit RecordsCsvReader(std::istream& in);

  /// Decode the next row into `*out` (fields the version predates get their
  /// defaults). Returns false at end of input; throws ConfigError on a
  /// malformed row.
  bool Next(RunRecord* out);

  unsigned version() const { return version_; }
  std::uint64_t rows() const { return rows_; }

 private:
  std::istream& in_;
  unsigned version_ = 0;
  std::size_t fields_ = 0;
  std::uint64_t rows_ = 0;
  std::string line_;
};

/// Parse a CSV produced by WriteRecordsCsv — any version this build knows:
///   v1  bare 17-column header (pre trace_dropped)
///   v2  bare 18-column header (adds trace_dropped)
///   v3  version line + 21 columns (adds taint_lost, retries, infra_error)
///   v4  version line + 24 columns (adds tb_chain_hits, tlb_hits, tlb_misses)
///   v5  version line + 27 columns (adds inject_pc, inject_class,
///       sample_weight — written only by sampled campaigns)
///   v6  version line + 29 columns (adds injector, fault_class — written
///       only by campaigns with a non-default --injector)
/// Fields a version predates default to zero/empty (sample_weight to 1).
/// A version line newer than kRecordsCsvVersion is rejected as "too new".
/// Throws ConfigError on malformed input (unknown header/version, bad field
/// counts, bad cells).
std::vector<RunRecord> ReadRecordsCsv(std::istream& in);

/// Write a tainted-bytes timeline (Fig. 7 series) as CSV.
void WriteTimelineCsv(const std::vector<core::TaintSample>& samples,
                      std::ostream& out);

/// Offline statistics over a set of run records (what the Fig. 8/9 analysis
/// computes from the logs).
struct PropagationStats {
  std::uint64_t runs = 0;
  std::uint64_t total_tainted_reads = 0;
  std::uint64_t total_tainted_writes = 0;
  std::uint64_t max_tainted_reads = 0;
  std::uint64_t max_tainted_writes = 0;
  double pct_more_reads_than_writes = 0.0;  // paper SIV-C: 47.1%
  double pct_only_reads = 0.0;              // paper SIV-C: 3.97%
  double pct_only_writes = 0.0;             // paper SIV-C: 14.93%
};

PropagationStats AnalyzePropagation(const std::vector<RunRecord>& records);

/// Trace-only SDC prediction: a completed run whose trace shows tainted
/// bytes reaching the output stream is predicted to be an SDC — no golden
/// run needed. This quantifies how well the propagation trace alone
/// anticipates the bit-wise output comparison.
struct SdcPredictionStats {
  std::uint64_t completed_runs = 0;
  std::uint64_t true_positives = 0;   // predicted SDC, actually SDC
  std::uint64_t false_positives = 0;  // predicted SDC, actually benign
  std::uint64_t false_negatives = 0;  // unpredicted SDC
  std::uint64_t true_negatives = 0;
  double precision = 0.0;
  double recall = 0.0;
};

SdcPredictionStats AnalyzeSdcPrediction(const std::vector<RunRecord>& records);

}  // namespace chaser::campaign

// Crash-safe trial journal: an append-only, checksummed, fsync-framed log of
// completed trial RunRecords.
//
// A `--runs 10000` campaign that dies at trial 9 999 — driver crash, OOM
// kill, node reboot — must not lose the 9 998 finished trials. Both campaign
// drivers append every completed record here (when CampaignConfig::
// journal_path is set); `chaser_run --resume <journal>` replays the intact
// records through CampaignResult::Accumulate and executes only the missing
// seeds, reproducing the uninterrupted report byte for byte.
//
// On-disk format (all integers varint-encoded unless noted):
//
//   header   magic "CHSJRNL1", version, campaign_seed, app-name (len+bytes)
//   record*  frame: payload_len varint, payload bytes, CRC-32 of the payload
//            as 4 LE bytes; the payload is the varint-serialised RunRecord
//
// The header version selects the record payload layout for the whole file:
// v1 lacks the hot-path counters (tb_chain_hits/tlb_hits/tlb_misses) that v2
// appends after `retries`, and v3 further appends the sampling fields
// (inject_pc, inject_class, sample_weight as IEEE-754 bits) before the error
// string. v4 keeps the v3 record layout and extends only the *header* with
// the writer's shard spec (shard_index, shard_count), so `--resume` on a
// journal written under a different `--shard i/N` fails loudly instead of
// replaying another shard's trial subset. v5 appends the injector identity
// (injector and fault_class as len-prefixed strings) before the error
// string, and widens the validation bounds to admit the kCrashed outcome and
// kCrash signal that rank-crash campaigns record; pre-v5 records replay as
// default-injector trials. A reader accepts any version <=
// its own and an appender continues in the *file's* version, so resuming a
// v1 journal keeps writing v1 frames — one file never mixes layouts.
//
// Every Append is flushed and fsync'd before it returns, so a record is
// either fully on disk or not there at all. The reader applies the same
// prefix discipline as analysis::SegmentReader: it stops at the first frame
// that is short, overlong, or fails its checksum, returns the intact prefix,
// and reports truncated(). Re-opening a torn journal for append first
// truncates the file back to that intact prefix.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/campaign.h"

namespace chaser::campaign {

/// Campaign identity stamped into the journal header so a resume against the
/// wrong campaign (different seed or app — different trial-seed sequence)
/// fails loudly instead of silently merging unrelated trials.
struct JournalHeader {
  std::uint64_t version = 5;
  std::uint64_t campaign_seed = 0;
  std::string app;
  /// Shard spec of the writing worker (v4+; pre-v4 journals read as the
  /// unsharded 0/1).
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
};

/// Everything recovered from a journal file.
struct JournalContents {
  JournalHeader header;
  std::vector<RunRecord> records;  // intact prefix, append order
  bool truncated = false;          // a torn/corrupt tail was discarded
  std::uint64_t valid_bytes = 0;   // file offset one past the last intact record
};

/// Read a journal, recovering the intact record prefix. Throws ConfigError
/// if the file cannot be opened or its header is missing/corrupt; a torn or
/// bit-flipped record region is *not* an error (truncated flag instead).
JournalContents ReadJournal(const std::string& path);

/// Current journal format version written to fresh files.
inline constexpr std::uint64_t kJournalVersion = 5;

/// Serialise one RunRecord payload in the given format version (exposed for
/// tests; the journal frame adds length + CRC around this).
std::string EncodeJournalRecord(const RunRecord& rec,
                                std::uint64_t version = kJournalVersion);

/// Append-side handle. Thread-safe: ParallelCampaign workers share one
/// journal and append completed trials as they finish (order is irrelevant —
/// resume keys records by run_seed).
class TrialJournal {
 public:
  /// Open `path` for appending, creating it (with a header naming this
  /// campaign) if absent. An existing journal is validated against
  /// `campaign_seed`/`app` *and* the shard spec (ConfigError on mismatch —
  /// a journal records which `--shard i/N` slice its trials came from) and
  /// truncated back to its intact record prefix; those records are returned
  /// via `replayed`.
  TrialJournal(const std::string& path, std::uint64_t campaign_seed,
               const std::string& app, std::vector<RunRecord>* replayed,
               std::uint64_t shard_index = 0, std::uint64_t shard_count = 1);
  ~TrialJournal();

  TrialJournal(const TrialJournal&) = delete;
  TrialJournal& operator=(const TrialJournal&) = delete;

  /// Frame, checksum, append, flush, fsync. The record is durable when this
  /// returns. Throws ConfigError on write failure.
  void Append(const RunRecord& rec);

  const std::string& path() const { return path_; }
  std::uint64_t appended() const { return appended_; }
  /// The format version this journal file is written in: an existing file's
  /// header version (appends continue its layout), kJournalVersion if fresh.
  std::uint64_t version() const { return version_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
  std::uint64_t appended_ = 0;
  std::uint64_t version_ = kJournalVersion;
};

}  // namespace chaser::campaign

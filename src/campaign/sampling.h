// Importance sampling and confidence-interval early stop for campaigns.
//
// An exhaustive-style campaign spends most of its trials on injection points
// that cannot change the outcome estimate any further. Following the
// ZOFI/fi-gdb line of work, a sampled campaign instead (a) profiles the
// golden run per *site* (static pc × rank, with its dynamic invocation
// count), (b) collapses sites into equivalence classes (same pc, same
// instruction class — the members only differ in which rank executes them),
// (c) draws injection points from those classes under a policy, and
// (d) maintains Wilson-score interval estimates of the outcome rates so the
// campaign can stop as soon as every interval is narrower than a requested
// width instead of running a fixed trial count.
//
// Policies:
//   uniform     today's behavior (rank uniform, nth uniform in the rank's
//               total targeted executions) — this module is bypassed
//   weighted    classes drawn proportionally to execution mass, members
//               proportionally to their share, invocation uniform within the
//               member: exactly uniform over all golden invocations, so the
//               plain trial tally is an unbiased estimate (weight 1)
//   stratified  classes drawn uniformly (rare sites surface early), each
//               trial carrying the importance weight mass_c·K/M that maps it
//               back to the uniform-over-invocations estimand
//
// Everything here is deterministic: classes are built in pc order from the
// (ordered) golden site map, and a draw consumes a fixed number of Rng
// values, so a trial remains fully determined by its run_seed on either
// driver.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "guest/isa.h"
#include "obs/status.h"

namespace chaser::campaign {

enum class SamplePolicy : std::uint8_t { kUniform, kWeighted, kStratified };

const char* SamplePolicyName(SamplePolicy p);
/// Parse "uniform"/"weighted"/"stratified"; returns false on anything else.
bool ParseSamplePolicy(const std::string& name, SamplePolicy* out);

/// One injection site observed during the golden run: a static targeted
/// instruction (pc) with its class and dynamic invocation count on one rank.
struct GoldenSite {
  std::uint64_t pc = 0;
  guest::InstrClass cls = guest::InstrClass::kMov;
  std::uint64_t execs = 0;
};
/// Per-rank golden site histograms, pc-ascending within each rank.
using GoldenSiteMap = std::map<Rank, std::vector<GoldenSite>>;

/// Equivalence class of sites: same pc and instruction class across ranks.
struct SiteClass {
  std::uint64_t pc = 0;
  guest::InstrClass cls = guest::InstrClass::kMov;
  std::uint64_t mass = 0;  // total dynamic executions over all members
  std::vector<std::pair<Rank, std::uint64_t>> members;  // rank asc, execs
};

/// A single sampled injection point.
struct SiteDraw {
  Rank rank = 0;
  std::uint64_t pc = 0;
  guest::InstrClass cls = guest::InstrClass::kMov;
  std::uint64_t nth = 1;  // pc-local invocation index on `rank`, 1-based
  double weight = 1.0;    // importance weight vs uniform-over-invocations
};

/// The immutable sampling frame built from a golden profile. Like the
/// profile itself it is only read after construction, so one plan may be
/// shared (or identically rebuilt) by any number of worker engines.
class SamplingPlan {
 public:
  /// Build the class list from per-rank golden site histograms. Classes are
  /// ordered by (pc, cls) and members by rank, so the same profile always
  /// yields the same plan. Throws ConfigError if no site has any execution.
  static SamplingPlan Build(const GoldenSiteMap& sites);

  /// Draw one injection point. Consumes exactly one Rng value for kWeighted
  /// and two for kStratified. kUniform is not a plan policy (the legacy path
  /// never builds a plan) and throws ConfigError.
  SiteDraw Draw(SamplePolicy policy, Rng& rng) const;

  const std::vector<SiteClass>& classes() const { return classes_; }
  std::uint64_t total_mass() const { return total_mass_; }

 private:
  SiteDraw DrawInClass(std::size_t c, std::uint64_t offset) const;

  std::vector<SiteClass> classes_;
  std::vector<std::uint64_t> cum_;  // cum_[i] = mass of classes [0..i]
  std::uint64_t total_mass_ = 0;
};

/// Wilson score interval for a binomial rate (the z=1.96 default is the 95%
/// two-sided interval). Unlike the normal approximation it stays inside
/// [0, 1] and behaves at p near 0/1 — exactly where SDC rates live.
struct WilsonInterval {
  double rate = 0.0;
  double lo = 0.0;
  double hi = 1.0;
  double width() const { return hi - lo; }
};

/// Interval for estimated rate `p_hat` at effective sample size `n_eff`.
WilsonInterval WilsonScore(double p_hat, double n_eff, double z = 1.96);

/// Weighted outcome-rate estimator. Feeds on committed trials *in seed
/// order* (floating-point accumulation order matters for bit-identical
/// serial/parallel results) and tracks the benign / terminated / sdc /
/// hang rates, where hang is the deadlock subset of terminated. Weighted
/// trials use the self-normalised (Hájek) estimator with Kish's effective
/// sample size standing in for n in the Wilson interval. kInfra trials are
/// harness failures, not injection outcomes — they are ignored.
class OutcomeEstimator {
 public:
  enum Series { kBenign = 0, kTerminated = 1, kSdc = 2, kHang = 3 };
  static constexpr int kNumSeries = 4;

  /// `outcome` is the campaign outcome index (0 benign, 1 terminated,
  /// 2 sdc, 3 infra — ignored); `deadlock` marks the hang subset.
  void Add(int outcome, bool deadlock, double weight);

  std::uint64_t trials() const { return n_; }
  /// Kish effective sample size (sum w)^2 / sum w^2; equals trials() when
  /// every weight is 1.
  double effective_n() const;
  WilsonInterval Interval(Series s, double z = 1.96) const;
  /// True once every series' interval is narrower than `max_width`
  /// (full width hi - lo).
  bool Converged(double max_width, double z = 1.96) const;

 private:
  double wsum_[kNumSeries] = {0.0, 0.0, 0.0, 0.0};
  double w_total_ = 0.0;
  double w2_total_ = 0.0;
  std::uint64_t n_ = 0;
};

/// Driver-side stop-rule glue shared by the serial and parallel campaigns:
/// committed trials stream in (seed order — the parallel driver commits
/// through a reorder buffer), the estimator updates, and the first commit
/// whose estimate has converged latches the stop. Snapshot() is safe to call
/// from the telemetry status thread while workers commit.
class SampleController {
 public:
  /// `stop_ci` is the full interval width that counts as converged;
  /// 0 disables the early stop (the estimator still runs for reporting).
  SampleController(SamplePolicy policy, double stop_ci);

  bool stop_enabled() const { return stop_ci_ > 0.0; }

  /// Commit one trial (seed order). Returns true once the stop rule has
  /// fired — sticky, so every commit after the trigger also returns true.
  bool Commit(int outcome, bool deadlock, double weight);

  std::uint64_t committed() const;
  /// True once the stop rule has fired.
  bool converged() const;
  /// Copy of the estimator state (for the final result, after commits end).
  OutcomeEstimator estimator() const;
  obs::EstimateSnapshot Snapshot() const;

  /// Trials required before the stop rule may fire, whatever the interval
  /// widths say — a guard against degenerate early convergence when the
  /// first few draws happen to agree.
  static constexpr std::uint64_t kMinStopTrials = 32;

 private:
  const SamplePolicy policy_;
  const double stop_ci_;
  mutable std::mutex mutex_;
  OutcomeEstimator estimator_;
  std::uint64_t committed_ = 0;
  bool converged_ = false;
};

}  // namespace chaser::campaign

#include "campaign/journal.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>

#include "analysis/spool.h"
#include "common/crc32.h"
#include "common/error.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace chaser::campaign {

namespace {

constexpr char kJournalMagic[8] = {'C', 'H', 'S', 'J', 'R', 'N', 'L', '1'};
/// Upper bound on one record frame; anything larger is a corrupt length
/// varint, not a real record (records are a few hundred bytes).
constexpr std::uint64_t kMaxRecordBytes = 1u << 20;

using analysis::AppendVarint;
using analysis::DecodeVarint;
using analysis::ZigZagDecode;
using analysis::ZigZagEncode;

void AppendU32Le(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t ReadU32Le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::optional<RunRecord> DecodeJournalRecord(const std::string& payload,
                                             std::uint64_t version) {
  std::size_t pos = 0;
  RunRecord r;
  const auto u64 = [&](std::uint64_t* v) {
    const auto d = DecodeVarint(payload, &pos);
    if (!d) return false;
    *v = *d;
    return true;
  };
  std::uint64_t outcome = 0, kind = 0, signal = 0, inject = 0, failure = 0,
                flags = 0, flip_bits = 0, retries = 0, error_len = 0;
  if (!u64(&r.run_seed) || !u64(&outcome) || !u64(&kind) || !u64(&signal) ||
      !u64(&inject) || !u64(&failure) || !u64(&flags) || !u64(&r.injections) ||
      !u64(&r.tainted_reads) || !u64(&r.tainted_writes) ||
      !u64(&r.peak_tainted_bytes) || !u64(&r.tainted_output_bytes) ||
      !u64(&r.trigger_nth) || !u64(&flip_bits) || !u64(&r.instructions) ||
      !u64(&r.trace_dropped) || !u64(&r.taint_lost) || !u64(&retries)) {
    return std::nullopt;
  }
  // v2 appended the hot-path counters here; v1 records replay with zeros,
  // matching what a v1 build would have accumulated.
  if (version >= 2 && (!u64(&r.tb_chain_hits) || !u64(&r.tlb_hits) ||
                       !u64(&r.tlb_misses))) {
    return std::nullopt;
  }
  // v3 appended the sampling fields. Older records replay as uniform trials:
  // pc/class unknown, weight 1 — exactly how those campaigns drew them.
  if (version >= 3) {
    std::uint64_t cls = 0, weight_bits = 0;
    if (!u64(&r.inject_pc) || !u64(&cls) || !u64(&weight_bits)) {
      return std::nullopt;
    }
    if (cls > static_cast<std::uint64_t>(guest::InstrClass::kSys)) {
      return std::nullopt;
    }
    r.inject_class = static_cast<guest::InstrClass>(cls);
    std::memcpy(&r.sample_weight, &weight_bits, sizeof(r.sample_weight));
  }
  // v5 appended the injector identity; older records replay as default-
  // injector trials (both strings empty).
  if (version >= 5) {
    std::uint64_t len = 0;
    if (!u64(&len) || len > payload.size() - pos) return std::nullopt;
    r.injector = payload.substr(pos, static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    if (!u64(&len) || len > payload.size() - pos) return std::nullopt;
    r.fault_class = payload.substr(pos, static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
  }
  if (!u64(&error_len)) return std::nullopt;
  // Validation bounds are version-conditional: the kCrashed outcome and
  // kCrash signal only exist from v5 on, so their values in an older file
  // can only be corruption.
  const std::uint64_t max_outcome = static_cast<std::uint64_t>(
      version >= 5 ? Outcome::kCrashed : Outcome::kInfra);
  const std::uint64_t max_signal = static_cast<std::uint64_t>(
      version >= 5 ? vm::GuestSignal::kCrash : vm::GuestSignal::kKill);
  if (outcome > max_outcome ||
      kind > static_cast<std::uint64_t>(vm::TerminationKind::kMpiError) ||
      signal > max_signal) {
    return std::nullopt;
  }
  if (error_len != payload.size() - pos) return std::nullopt;
  r.outcome = static_cast<Outcome>(outcome);
  r.kind = static_cast<vm::TerminationKind>(kind);
  r.signal = static_cast<vm::GuestSignal>(signal);
  r.inject_rank = static_cast<Rank>(ZigZagDecode(inject));
  r.failure_rank = static_cast<Rank>(ZigZagDecode(failure));
  r.deadlock = (flags & 1) != 0;
  r.propagated_cross_rank = (flags & 2) != 0;
  r.propagated_cross_node = (flags & 4) != 0;
  r.flip_bits = static_cast<unsigned>(flip_bits);
  r.retries = static_cast<unsigned>(retries);
  r.infra_error = payload.substr(pos);
  return r;
}

}  // namespace

std::string EncodeJournalRecord(const RunRecord& rec, std::uint64_t version) {
  std::string payload;
  AppendVarint(&payload, rec.run_seed);
  AppendVarint(&payload, static_cast<std::uint64_t>(rec.outcome));
  AppendVarint(&payload, static_cast<std::uint64_t>(rec.kind));
  AppendVarint(&payload, static_cast<std::uint64_t>(rec.signal));
  AppendVarint(&payload, ZigZagEncode(rec.inject_rank));
  AppendVarint(&payload, ZigZagEncode(rec.failure_rank));
  AppendVarint(&payload, (rec.deadlock ? 1u : 0u) |
                             (rec.propagated_cross_rank ? 2u : 0u) |
                             (rec.propagated_cross_node ? 4u : 0u));
  AppendVarint(&payload, rec.injections);
  AppendVarint(&payload, rec.tainted_reads);
  AppendVarint(&payload, rec.tainted_writes);
  AppendVarint(&payload, rec.peak_tainted_bytes);
  AppendVarint(&payload, rec.tainted_output_bytes);
  AppendVarint(&payload, rec.trigger_nth);
  AppendVarint(&payload, rec.flip_bits);
  AppendVarint(&payload, rec.instructions);
  AppendVarint(&payload, rec.trace_dropped);
  AppendVarint(&payload, rec.taint_lost);
  AppendVarint(&payload, rec.retries);
  if (version >= 2) {
    AppendVarint(&payload, rec.tb_chain_hits);
    AppendVarint(&payload, rec.tlb_hits);
    AppendVarint(&payload, rec.tlb_misses);
  }
  if (version >= 3) {
    AppendVarint(&payload, rec.inject_pc);
    AppendVarint(&payload, static_cast<std::uint64_t>(rec.inject_class));
    // The weight round-trips as its IEEE-754 bit pattern: resume must feed
    // the estimator the *exact* double the original trial used.
    std::uint64_t weight_bits = 0;
    std::memcpy(&weight_bits, &rec.sample_weight, sizeof(weight_bits));
    AppendVarint(&payload, weight_bits);
  }
  if (version >= 5) {
    AppendVarint(&payload, rec.injector.size());
    payload.append(rec.injector);
    AppendVarint(&payload, rec.fault_class.size());
    payload.append(rec.fault_class);
  }
  AppendVarint(&payload, rec.infra_error.size());
  payload.append(rec.infra_error);
  return payload;
}

JournalContents ReadJournal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("ReadJournal: cannot open '" + path + "'");
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());

  if (buf.size() < sizeof(kJournalMagic) ||
      std::memcmp(buf.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    throw ConfigError("ReadJournal: '" + path + "' is not a Chaser trial journal");
  }
  std::size_t pos = sizeof(kJournalMagic);
  JournalContents contents;
  const auto header_u64 = [&](std::uint64_t* v) {
    const auto d = DecodeVarint(buf, &pos);
    if (!d) throw ConfigError("ReadJournal: '" + path + "' has a corrupt header");
    *v = *d;
  };
  header_u64(&contents.header.version);
  if (contents.header.version == 0 || contents.header.version > kJournalVersion) {
    throw ConfigError(StrFormat(
        "ReadJournal: '%s' is journal version %llu; this build reads versions up to %llu",
        path.c_str(),
        static_cast<unsigned long long>(contents.header.version),
        static_cast<unsigned long long>(kJournalVersion)));
  }
  header_u64(&contents.header.campaign_seed);
  std::uint64_t app_len = 0;
  header_u64(&app_len);
  if (app_len > buf.size() - pos) {
    throw ConfigError("ReadJournal: '" + path + "' has a corrupt header");
  }
  contents.header.app = buf.substr(pos, app_len);
  pos += app_len;
  // v4 extended the header with the writing worker's shard spec; older
  // journals are by definition unsharded (the defaults).
  if (contents.header.version >= 4) {
    header_u64(&contents.header.shard_index);
    header_u64(&contents.header.shard_count);
  }
  contents.valid_bytes = pos;

  // Record region: prefix discipline — serve intact frames, stop at the
  // first one that is short, overlong, or fails its checksum.
  while (pos < buf.size()) {
    std::size_t frame_start = pos;
    const auto len = DecodeVarint(buf, &pos);
    if (!len || *len > kMaxRecordBytes || *len > buf.size() - pos ||
        buf.size() - pos - *len < 4) {
      contents.truncated = true;
      break;
    }
    const std::size_t payload_at = pos;
    const std::size_t payload_len = static_cast<std::size_t>(*len);
    const std::uint32_t stored_crc = ReadU32Le(buf.data() + payload_at + payload_len);
    if (Crc32(buf.data() + payload_at, payload_len) != stored_crc) {
      contents.truncated = true;
      break;
    }
    const auto rec = DecodeJournalRecord(buf.substr(payload_at, payload_len),
                                         contents.header.version);
    if (!rec) {
      contents.truncated = true;
      break;
    }
    pos = payload_at + payload_len + 4;
    contents.records.push_back(*rec);
    contents.valid_bytes = pos;
    (void)frame_start;
  }
  return contents;
}

TrialJournal::TrialJournal(const std::string& path, std::uint64_t campaign_seed,
                           const std::string& app,
                           std::vector<RunRecord>* replayed,
                           std::uint64_t shard_index, std::uint64_t shard_count)
    : path_(path) {
  if (replayed != nullptr) replayed->clear();
  std::error_code ec;
  const bool exists = std::filesystem::exists(path_, ec) &&
                      std::filesystem::file_size(path_, ec) > 0;
  if (exists) {
    JournalContents contents = ReadJournal(path_);
    if (contents.header.campaign_seed != campaign_seed ||
        contents.header.app != app) {
      throw ConfigError(StrFormat(
          "TrialJournal: '%s' belongs to campaign (app '%s', seed %llu), not "
          "(app '%s', seed %llu) — refusing to mix trial sets",
          path_.c_str(), contents.header.app.c_str(),
          static_cast<unsigned long long>(contents.header.campaign_seed),
          app.c_str(), static_cast<unsigned long long>(campaign_seed)));
    }
    if (contents.header.shard_index != shard_index ||
        contents.header.shard_count != shard_count) {
      throw ConfigError(StrFormat(
          "TrialJournal: '%s' was written by shard %llu/%llu, not %llu/%llu — "
          "its trials are a different slice of the seed order",
          path_.c_str(),
          static_cast<unsigned long long>(contents.header.shard_index),
          static_cast<unsigned long long>(contents.header.shard_count),
          static_cast<unsigned long long>(shard_index),
          static_cast<unsigned long long>(shard_count)));
    }
    // Appends continue in the file's own format version — mixing v1 and v2
    // frames in one file would make the layout ambiguous to readers.
    version_ = contents.header.version;
    // Cut a crash-torn tail off *before* appending: new frames written after
    // garbage would be unreachable to the prefix-disciplined reader.
    std::filesystem::resize_file(path_, contents.valid_bytes, ec);
    if (ec) {
      throw ConfigError("TrialJournal: cannot truncate torn tail of '" + path_ +
                        "': " + ec.message());
    }
    if (replayed != nullptr) *replayed = std::move(contents.records);
  }

  file_ = std::fopen(path_.c_str(), exists ? "ab" : "wb");
  if (file_ == nullptr) {
    throw ConfigError("TrialJournal: cannot open '" + path_ + "' for append");
  }
  if (!exists) {
    std::string header(kJournalMagic, sizeof(kJournalMagic));
    AppendVarint(&header, kJournalVersion);
    AppendVarint(&header, campaign_seed);
    AppendVarint(&header, app.size());
    header.append(app);
    AppendVarint(&header, shard_index);
    AppendVarint(&header, shard_count);
    if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
        std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
      std::fclose(file_);
      file_ = nullptr;
      throw ConfigError("TrialJournal: cannot write header of '" + path_ + "'");
    }
  }
}

TrialJournal::~TrialJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

void TrialJournal::Append(const RunRecord& rec) {
  const std::string payload = EncodeJournalRecord(rec, version_);
  std::string frame;
  AppendVarint(&frame, payload.size());
  frame.append(payload);
  AppendU32Le(&frame, Crc32(payload.data(), payload.size()));

  static obs::Counter& appends =
      obs::Registry::Global().GetCounter("journal_appends_total");
  const obs::ScopedPhase obs_scope(obs::Phase::kJournalFsync);
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) {
    throw ConfigError("TrialJournal: append to closed journal '" + path_ + "'");
  }
  // One fwrite per frame keeps frames contiguous; fsync makes the record
  // durable before the trial is considered "completed" anywhere else.
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    throw ConfigError("TrialJournal: append failed on '" + path_ + "'");
  }
  ++appended_;
  appends.Inc();
}

}  // namespace chaser::campaign

// Parallel campaign execution engine (worker pool).
//
// The paper's methodology is thousands of *independent* injection trials per
// application; Campaign::RunOnce is fully determined by its seed, so trials
// share nothing once the golden profile exists. ParallelCampaign exploits
// that: the golden phase runs once, then N worker threads each own a private
// TrialEngine (Cluster + ChaserMpi + TaintHub) and pull trial indices from
// one atomic work counter.
//
// Determinism: trial seeds are pre-derived with Campaign::DeriveTrialSeeds —
// the exact sequence a fresh serial Campaign::Run() would draw — and the
// per-run records are merged in trial order through the same
// CampaignResult::Accumulate used by the serial path. The result is
// bit-identical to serial for the same CampaignConfig::seed, regardless of
// the worker count or how the scheduler interleaved the workers.
#pragma once

#include <set>

#include "campaign/campaign.h"

namespace chaser::campaign {

class ParallelCampaign {
 public:
  /// `jobs == 0` picks one worker per hardware thread; `jobs == 1` degrades
  /// to a single in-thread worker (still bit-identical to serial Campaign).
  ParallelCampaign(apps::AppSpec spec, CampaignConfig config, unsigned jobs = 0);

  /// Execute the golden run once on a temporary engine (throws ConfigError
  /// if the clean app fails). Run() calls it lazily.
  void RunGolden();

  /// Full campaign: golden + config.runs trials across the worker pool.
  /// Trial failures are contained per RunTrialContained (retry, then
  /// quarantine as Outcome::kInfra). With config.journal_path set, workers
  /// append every completed trial to the shared crash-safe journal and
  /// trials already journalled are replayed, not re-run — a killed `--jobs N`
  /// campaign resumes to the same bytes as an uninterrupted one.
  CampaignResult Run();

  // ---- Introspection -------------------------------------------------------
  unsigned jobs() const { return jobs_; }
  bool golden_done() const { return golden_done_; }
  const GoldenProfile& golden() const { return golden_; }
  std::uint64_t golden_instructions() const { return golden_.instructions; }
  std::uint64_t golden_targeted_execs(Rank r) const;
  const apps::AppSpec& spec() const { return spec_; }
  const std::set<Rank>& inject_ranks() const { return inject_ranks_; }
  /// The shared translation cache in use (driver-owned or external);
  /// null when sharing is disabled.
  const tcg::SharedTbCache* shared_tb_cache() const {
    return config_.shared_tb_cache;
  }

 private:
  apps::AppSpec spec_;
  CampaignConfig config_;
  std::set<Rank> inject_ranks_;
  /// Pool-owned shared cache (when config.share_tb_cache and no external
  /// cache was supplied). Outlives every worker's TrialEngine: workers join
  /// before Run() returns, and nothing else holds TB pointers after that.
  std::unique_ptr<tcg::SharedTbCache> owned_tb_cache_;
  unsigned jobs_ = 1;

  GoldenProfile golden_;
  bool golden_done_ = false;
};

}  // namespace chaser::campaign

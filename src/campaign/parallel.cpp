#include "campaign/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/strings.h"

namespace chaser::campaign {

ParallelCampaign::ParallelCampaign(apps::AppSpec spec, CampaignConfig config,
                                   unsigned jobs)
    : spec_(std::move(spec)),
      config_(config),
      inject_ranks_(config.inject_ranks.empty() ? std::set<Rank>{0}
                                                : config.inject_ranks),
      jobs_(jobs) {
  if (jobs_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs_ = hw == 0 ? 1 : hw;
  }
  // Fail on a bad inject-rank set here, like the serial Campaign constructor
  // does, instead of from inside a worker thread mid-run.
  for (const Rank r : inject_ranks_) {
    if (r < 0 || r >= spec_.num_ranks) {
      throw ConfigError(StrFormat("ParallelCampaign: inject rank %d outside 0..%d",
                                  r, spec_.num_ranks - 1));
    }
  }
}

void ParallelCampaign::RunGolden() {
  TrialEngine engine(spec_, config_, inject_ranks_);
  golden_ = engine.RunGolden();
  golden_done_ = true;
}

std::uint64_t ParallelCampaign::golden_targeted_execs(Rank r) const {
  const auto it = golden_.targeted_execs.find(r);
  return it == golden_.targeted_execs.end() ? 0 : it->second;
}

CampaignResult ParallelCampaign::Run() {
  if (!golden_done_) RunGolden();
  const std::uint64_t runs = config_.runs;
  const std::vector<std::uint64_t> seeds =
      Campaign::DeriveTrialSeeds(config_.seed, runs);

  // Trial i writes only records[i]; the atomic counter hands every index to
  // exactly one worker, so the records vector needs no lock.
  std::vector<RunRecord> records(static_cast<std::size_t>(runs));
  std::atomic<std::uint64_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;

  const auto worker = [&]() {
    try {
      TrialEngine engine(spec_, config_, inject_ranks_);
      engine.AdoptGolden(golden_);
      while (true) {
        const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= runs) break;
        records[static_cast<std::size_t>(i)] = engine.RunTrial(seeds[i]);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
      // Drain the remaining work so the other workers stop promptly.
      next.store(runs, std::memory_order_relaxed);
    }
  };

  const unsigned n_workers = static_cast<unsigned>(std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(jobs_, runs == 0 ? 1 : runs)));
  if (n_workers == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(n_workers);
    for (unsigned w = 0; w < n_workers; ++w) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }
  if (error) std::rethrow_exception(error);

  // Deterministic ordered reduction: merging in trial order through the
  // shared Accumulate makes the result bit-identical to the serial driver.
  CampaignResult result;
  result.runs = runs;
  for (const RunRecord& rec : records) {
    result.Accumulate(rec, config_.keep_records);
  }
  return result;
}

}  // namespace chaser::campaign

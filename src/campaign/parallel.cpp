#include "campaign/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "campaign/fleet.h"
#include "campaign/journal.h"
#include "common/error.h"
#include "common/strings.h"
#include "obs/telemetry.h"

namespace chaser::campaign {

ParallelCampaign::ParallelCampaign(apps::AppSpec spec, CampaignConfig config,
                                   unsigned jobs)
    : spec_(std::move(spec)),
      config_(std::move(config)),
      inject_ranks_(config_.inject_ranks.empty() ? std::set<Rank>{0}
                                                 : config_.inject_ranks),
      jobs_(jobs) {
  if (jobs_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs_ = hw == 0 ? 1 : hw;
  }
  // Resolve the shared translation cache once; every worker's engines copy
  // the pointer, so the whole pool reads/writes one cache. Its read path is
  // lock-free and its insert path re-checks for racing winners, which is
  // what `ctest -L tsan` exercises.
  if (!config_.share_tb_cache) {
    config_.shared_tb_cache = nullptr;
  } else if (config_.shared_tb_cache == nullptr) {
    owned_tb_cache_ = std::make_unique<tcg::SharedTbCache>(config_.tb_cache_cap);
    config_.shared_tb_cache = owned_tb_cache_.get();
  }
  // Fail on a bad inject-rank set here, like the serial Campaign constructor
  // does, instead of from inside a worker thread mid-run.
  for (const Rank r : inject_ranks_) {
    if (r < 0 || r >= spec_.num_ranks) {
      throw ConfigError(StrFormat("ParallelCampaign: inject rank %d outside 0..%d",
                                  r, spec_.num_ranks - 1));
    }
  }
}

void ParallelCampaign::RunGolden() {
  TrialEngine engine(spec_, config_, inject_ranks_);
  golden_ = engine.RunGolden();
  golden_done_ = true;
}

std::uint64_t ParallelCampaign::golden_targeted_execs(Rank r) const {
  const auto it = golden_.targeted_execs.find(r);
  return it == golden_.targeted_execs.end() ? 0 : it->second;
}

CampaignResult ParallelCampaign::Run() {
  obs::Telemetry* const telemetry = config_.telemetry;
  const bool sharded = config_.shard_count > 1;
  // Shard workers never early-stop: the stop prefix is defined in global
  // seed order, which the merge step re-applies (see the serial driver).
  const double stop_ci = sharded ? 0.0 : config_.stop_ci;
  // Sampling/early-stop plumbing mirrors the serial driver; shared so the
  // telemetry status channel can poll estimates after Run() returns.
  const bool sampling_active =
      config_.sample_policy != SamplePolicy::kUniform || stop_ci > 0.0;
  std::shared_ptr<SampleController> controller;
  if (sampling_active) {
    controller = std::make_shared<SampleController>(config_.sample_policy,
                                                    stop_ci);
  }
  // This worker's slice of the trial space in seed order. Everything below
  // runs over shard-local positions 0..runs; unsharded campaigns get the
  // identity mapping and stay bit-identical to earlier builds.
  const std::vector<std::uint64_t> all_seeds =
      Campaign::DeriveTrialSeeds(config_.seed, config_.runs);
  const std::vector<std::uint64_t> indices = ShardTrialIndices(
      config_.runs, ShardSpec{config_.shard_index, config_.shard_count});
  const std::uint64_t runs = indices.size();
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(runs));
  for (const std::uint64_t index : indices) {
    seeds.push_back(all_seeds[static_cast<std::size_t>(index)]);
  }
  if (telemetry != nullptr) {
    if (controller != nullptr) {
      telemetry->SetEstimatesSource(
          [controller] { return controller->Snapshot(); });
    }
    telemetry->BeginCampaign(spec_.name, runs);
    telemetry->AttachThread("main");
  }
  if (!golden_done_) RunGolden();

  // Trial i writes only records[i]; the atomic counter hands every index to
  // exactly one worker, so the records vector needs no lock.
  std::vector<RunRecord> records(static_cast<std::size_t>(runs));

  // Early-stop determinism: the stop point must be the same seed-order
  // prefix the serial driver would pick, whatever order workers finish in.
  // Completed trials are therefore committed to the estimator through a
  // reorder buffer — `completed` flags + a cursor that only ever advances
  // over a contiguous prefix, all under `commit_mutex`. The first committed
  // trial whose estimate has converged latches `stop_at`; workers skip any
  // index beyond it (in-flight later trials still finish and are journaled,
  // but never enter the result).
  std::vector<char> completed(static_cast<std::size_t>(runs), 0);
  std::mutex commit_mutex;
  std::uint64_t commit_cursor = 0;
  std::atomic<std::uint64_t> stop_at{UINT64_MAX};
  const auto advance_commits_locked = [&] {
    while (commit_cursor < runs &&
           completed[static_cast<std::size_t>(commit_cursor)] != 0) {
      const RunRecord& rec = records[static_cast<std::size_t>(commit_cursor)];
      const bool converged = controller->Commit(
          static_cast<int>(rec.outcome), rec.deadlock, rec.sample_weight);
      if (converged && controller->stop_enabled() &&
          stop_at.load() == UINT64_MAX) {
        stop_at.store(commit_cursor);
      }
      ++commit_cursor;
      if (stop_at.load() != UINT64_MAX) break;  // nothing commits past the stop
    }
  };

  // Journal replay: trials an earlier (possibly killed) process already
  // completed are slotted into their records[] position by run_seed and
  // withheld from the work queue. Workers share the journal handle —
  // TrialJournal::Append is internally locked and fsync-framed, so records
  // from concurrent workers interleave whole, never torn.
  std::unique_ptr<TrialJournal> journal;
  std::vector<std::uint64_t> pending;  // indices still to execute
  pending.reserve(static_cast<std::size_t>(runs));
  if (!config_.journal_path.empty()) {
    std::vector<RunRecord> replayed;
    journal = std::make_unique<TrialJournal>(config_.journal_path, config_.seed,
                                             spec_.name, &replayed,
                                             config_.shard_index,
                                             config_.shard_count);
    std::map<std::uint64_t, RunRecord> done;
    for (RunRecord& rec : replayed) done[rec.run_seed] = std::move(rec);
    for (std::uint64_t i = 0; i < runs; ++i) {
      const auto it = done.find(seeds[i]);
      if (it != done.end()) {
        records[static_cast<std::size_t>(i)] = it->second;
        completed[static_cast<std::size_t>(i)] = 1;
        if (telemetry != nullptr) {
          telemetry->OnTrialDone(ToTrialStats(it->second, /*replayed=*/true),
                                 0, 0);
        }
      } else {
        pending.push_back(i);
      }
    }
  } else {
    for (std::uint64_t i = 0; i < runs; ++i) pending.push_back(i);
  }
  if (controller != nullptr) {
    // Commit the replayed prefix before any worker starts: a resumed
    // campaign that already converged stops here, running zero new trials.
    std::lock_guard<std::mutex> lock(commit_mutex);
    advance_commits_locked();
  }

  std::atomic<std::uint64_t> next{0};
  const std::uint64_t n_pending = pending.size();
  std::mutex error_mutex;
  std::exception_ptr error;

  std::atomic<unsigned> worker_seq{0};
  const auto worker = [&]() {
    if (telemetry != nullptr) {
      telemetry->AttachThread(
          "worker-" + std::to_string(worker_seq.fetch_add(1)));
    }
    try {
      std::unique_ptr<TrialEngine> engine;
      while (true) {
        const std::uint64_t p = next.fetch_add(1, std::memory_order_relaxed);
        if (p >= n_pending) break;
        const std::uint64_t i = pending[static_cast<std::size_t>(p)];
        // Pending indices are claimed in ascending order, so the first index
        // past a latched stop point means every later claim would be too.
        if (stop_at.load() != UINT64_MAX && i > stop_at.load()) break;
        const std::uint64_t t0_ns =
            telemetry != nullptr ? obs::MonotonicNanos() : 0;
        // Containment boundary: a throwing trial retries on a rebuilt engine
        // and quarantines as kInfra — it cannot take down the worker pool.
        const RunRecord rec = RunTrialContained(
            &engine, spec_, config_, inject_ranks_, golden_, seeds[i]);
        if (journal != nullptr) journal->Append(rec);
        records[static_cast<std::size_t>(i)] = rec;
        if (telemetry != nullptr) {
          telemetry->OnTrialDone(ToTrialStats(rec, /*replayed=*/false), t0_ns,
                                 obs::MonotonicNanos());
        }
        if (controller != nullptr) {
          std::lock_guard<std::mutex> lock(commit_mutex);
          completed[static_cast<std::size_t>(i)] = 1;
          advance_commits_locked();
        }
      }
    } catch (...) {
      // Only infrastructure outside trial containment lands here (e.g. the
      // journal device filling up) — that genuinely ends the campaign.
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
      // Drain the remaining work so the other workers stop promptly.
      next.store(n_pending, std::memory_order_relaxed);
    }
    if (telemetry != nullptr) telemetry->DetachThread();
  };

  const unsigned n_workers = static_cast<unsigned>(std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(jobs_, n_pending == 0 ? 1 : n_pending)));
  if (n_workers == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(n_workers);
    for (unsigned w = 0; w < n_workers; ++w) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }
  if (error) std::rethrow_exception(error);

  // Deterministic ordered reduction: merging in trial order through the
  // shared Accumulate makes the result bit-identical to the serial driver.
  // With an early stop the reduction covers exactly the committed prefix —
  // the same one the serial driver would have executed.
  const std::uint64_t stop = stop_at.load();
  const std::uint64_t committed_runs = stop == UINT64_MAX ? runs : stop + 1;
  CampaignResult result;
  result.runs = committed_runs;
  for (std::uint64_t i = 0; i < committed_runs; ++i) {
    result.Accumulate(records[static_cast<std::size_t>(i)],
                      config_.keep_records);
    // The sink sees the same seed-ordered committed prefix the serial driver
    // streams — single-threaded here, so no locking falls on the sink.
    if (config_.record_sink) {
      config_.record_sink(records[static_cast<std::size_t>(i)]);
    }
  }
  if (controller != nullptr) {
    result.stopped_early = controller->converged() && committed_runs < runs;
    result.FillEstimates(controller->estimator(), config_.sample_policy,
                         stop_ci, runs);
  }
  if (telemetry != nullptr) telemetry->DetachThread();
  return result;
}

}  // namespace chaser::campaign

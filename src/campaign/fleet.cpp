#include "campaign/fleet.h"

#include <map>

#include "common/error.h"
#include "common/strings.h"

namespace chaser::campaign {

ShardSpec ParseShardSpec(const std::string& spec) {
  const std::vector<std::string> parts = Split(spec, '/');
  ShardSpec s;
  if (parts.size() != 2 || !ParseU64(parts[0], &s.index) ||
      !ParseU64(parts[1], &s.count)) {
    throw ConfigError("--shard: expected I/N (e.g. 0/4), got '" + spec + "'");
  }
  if (s.count == 0) throw ConfigError("--shard: shard count must be > 0");
  if (s.index >= s.count) {
    throw ConfigError(StrFormat(
        "--shard: index %llu out of range for %llu shards (valid: 0..%llu)",
        static_cast<unsigned long long>(s.index),
        static_cast<unsigned long long>(s.count),
        static_cast<unsigned long long>(s.count - 1)));
  }
  return s;
}

std::vector<std::uint64_t> ShardTrialIndices(std::uint64_t runs,
                                             const ShardSpec& spec) {
  if (spec.count == 0 || spec.index >= spec.count) {
    throw ConfigError("ShardTrialIndices: invalid shard spec");
  }
  std::vector<std::uint64_t> indices;
  indices.reserve(static_cast<std::size_t>(runs / spec.count + 1));
  for (std::uint64_t i = spec.index; i < runs; i += spec.count) {
    indices.push_back(i);
  }
  return indices;
}

CampaignResult MergeShardRecords(const MergePlan& plan,
                                 const std::vector<RunRecord>& shard_records) {
  std::map<std::uint64_t, const RunRecord*> by_seed;
  for (const RunRecord& rec : shard_records) {
    const auto [it, inserted] = by_seed.emplace(rec.run_seed, &rec);
    if (!inserted) {
      throw ConfigError(StrFormat(
          "MergeShardRecords: run_seed %llu appears twice — two shards ran "
          "the same trial, or a records file was passed more than once",
          static_cast<unsigned long long>(rec.run_seed)));
    }
  }

  // Replay the serial driver's reduction loop exactly: walk the global seed
  // order, Accumulate, feed the stop controller, and stop where it would
  // have stopped. The records carry every field Accumulate and the
  // estimator read, so the merged result is bit-identical to a single
  // process running the same plan.
  const bool sampling_active =
      plan.sample_policy != SamplePolicy::kUniform || plan.stop_ci > 0.0;
  std::unique_ptr<SampleController> controller;
  if (sampling_active) {
    controller = std::make_unique<SampleController>(plan.sample_policy,
                                                    plan.stop_ci);
  }
  const std::vector<std::uint64_t> seeds =
      Campaign::DeriveTrialSeeds(plan.seed, plan.runs);

  CampaignResult result;
  result.runs = plan.runs;
  std::uint64_t committed = 0;
  for (const std::uint64_t run_seed : seeds) {
    const auto it = by_seed.find(run_seed);
    if (it == by_seed.end()) {
      throw ConfigError(StrFormat(
          "MergeShardRecords: no shard provided trial seed %llu (trial %llu "
          "of %llu) — a shard's records are incomplete or missing",
          static_cast<unsigned long long>(run_seed),
          static_cast<unsigned long long>(committed + 1),
          static_cast<unsigned long long>(plan.runs)));
    }
    const RunRecord& rec = *it->second;
    result.Accumulate(rec, plan.keep_records);
    ++committed;
    if (controller != nullptr &&
        controller->Commit(static_cast<int>(rec.outcome), rec.deadlock,
                           rec.sample_weight) &&
        controller->stop_enabled()) {
      break;
    }
  }
  if (controller != nullptr) {
    result.runs = committed;
    result.stopped_early = controller->converged() && committed < plan.runs;
    result.FillEstimates(controller->estimator(), plan.sample_policy,
                         plan.stop_ci, plan.runs);
  }
  return result;
}

CampaignResult MergeShardStreams(
    const MergePlan& plan, std::vector<ShardRecordStream> streams,
    const std::function<void(const RunRecord&)>& sink) {
  if (streams.empty()) {
    throw ConfigError("MergeShardStreams: no shard streams");
  }
  const std::uint64_t n_shards = streams.size();
  const bool sampling_active =
      plan.sample_policy != SamplePolicy::kUniform || plan.stop_ci > 0.0;
  std::unique_ptr<SampleController> controller;
  if (sampling_active) {
    controller = std::make_unique<SampleController>(plan.sample_policy,
                                                    plan.stop_ci);
  }
  const std::vector<std::uint64_t> seeds =
      Campaign::DeriveTrialSeeds(plan.seed, plan.runs);

  // Same reduction loop as MergeShardRecords, but global trial t's record is
  // the next unread record of stream t % N instead of a map lookup — the
  // shard partition *is* the round-robin, so pulling in lockstep walks the
  // global seed order with one in-flight record per shard.
  CampaignResult result;
  result.runs = plan.runs;
  std::uint64_t committed = 0;
  RunRecord rec;
  for (std::uint64_t t = 0; t < plan.runs; ++t) {
    ShardRecordStream& stream = streams[static_cast<std::size_t>(t % n_shards)];
    if (!stream(&rec)) {
      throw ConfigError(StrFormat(
          "MergeShardStreams: shard %llu ran out of records at trial %llu of "
          "%llu — its store is incomplete",
          static_cast<unsigned long long>(t % n_shards),
          static_cast<unsigned long long>(t + 1),
          static_cast<unsigned long long>(plan.runs)));
    }
    if (rec.run_seed != seeds[static_cast<std::size_t>(t)]) {
      throw ConfigError(StrFormat(
          "MergeShardStreams: shard %llu yielded trial seed %llu where the "
          "plan expects %llu (trial %llu of %llu) — duplicate, missing, or "
          "out-of-order trial",
          static_cast<unsigned long long>(t % n_shards),
          static_cast<unsigned long long>(rec.run_seed),
          static_cast<unsigned long long>(seeds[static_cast<std::size_t>(t)]),
          static_cast<unsigned long long>(t + 1),
          static_cast<unsigned long long>(plan.runs)));
    }
    result.Accumulate(rec, plan.keep_records);
    if (sink) sink(rec);
    ++committed;
    if (controller != nullptr &&
        controller->Commit(static_cast<int>(rec.outcome), rec.deadlock,
                           rec.sample_weight) &&
        controller->stop_enabled()) {
      break;
    }
  }
  if (controller != nullptr) {
    result.runs = committed;
    result.stopped_early = controller->converged() && committed < plan.runs;
    result.FillEstimates(controller->estimator(), plan.sample_policy,
                         plan.stop_ci, plan.runs);
  }
  return result;
}

namespace {

std::uint64_t JsonU64(const std::string& json, const std::string& key) {
  double v = 0.0;
  if (!JsonFindNumber(json, key, &v) || v < 0.0) return 0;
  return static_cast<std::uint64_t>(v);
}

}  // namespace

ShardStatus ParseShardStatus(const std::string& json) {
  ShardStatus s;
  // The two fields every status document has; their absence means this is
  // not (yet) a status.json — e.g. an empty or half-missing file.
  std::string running;
  double total = 0.0;
  if (!JsonFindRaw(json, "running", &running) ||
      !JsonFindNumber(json, "total", &total)) {
    return s;
  }
  s.ok = true;
  s.running = running == "true";
  s.total = static_cast<std::uint64_t>(total);
  s.done = JsonU64(json, "done");
  s.replayed = JsonU64(json, "replayed");
  s.benign = JsonU64(json, "benign");
  s.terminated = JsonU64(json, "terminated");
  s.sdc = JsonU64(json, "sdc");
  s.infra = JsonU64(json, "infra");
  s.taint_lost = JsonU64(json, "taint_lost");
  s.trace_dropped = JsonU64(json, "trace_dropped");
  JsonFindNumber(json, "elapsed_s", &s.elapsed_s);
  JsonFindNumber(json, "trials_per_s", &s.trials_per_s);
  // eta_s is null while the shard has work left but no rate sample yet;
  // JsonFindNumber's false return IS the null signal (see strings.h).
  s.eta_known = JsonFindNumber(json, "eta_s", &s.eta_s);
  JsonFindString(json, "obs", &s.obs_endpoint);
  return s;
}

FleetRollup RollUpShards(const std::vector<ShardStatus>& statuses) {
  FleetRollup r;
  r.shards = statuses.size();
  r.eta_known = true;  // until a silent or eta-null shard proves otherwise
  for (const ShardStatus& s : statuses) {
    if (!s.ok) {
      r.eta_known = false;
      continue;
    }
    ++r.shards_reporting;
    r.total += s.total;
    r.done += s.done;
    r.replayed += s.replayed;
    r.benign += s.benign;
    r.terminated += s.terminated;
    r.sdc += s.sdc;
    r.infra += s.infra;
    r.taint_lost += s.taint_lost;
    r.trace_dropped += s.trace_dropped;
    r.trials_per_s += s.trials_per_s;
    if (!s.eta_known) {
      r.eta_known = false;
    } else if (s.eta_s > r.eta_s) {
      r.eta_s = s.eta_s;  // the fleet finishes when its slowest shard does
    }
  }
  if (!r.eta_known) r.eta_s = 0.0;
  if (r.done > 0) {
    const double done = static_cast<double>(r.done);
    r.benign_rate = static_cast<double>(r.benign) / done;
    r.terminated_rate = static_cast<double>(r.terminated) / done;
    r.sdc_rate = static_cast<double>(r.sdc) / done;
    r.infra_rate = static_cast<double>(r.infra) / done;
  }
  return r;
}

}  // namespace chaser::campaign

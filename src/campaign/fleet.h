// Shard-space partitioning and the fleet merge.
//
// A sharded campaign splits one trial plan (app, runs, seed, policy) across
// N workers: worker i runs exactly the global trial indices with
// index % N == i, in seed order. Because every worker derives the identical
// seed sequence (Campaign::DeriveTrialSeeds) and trials are pure functions
// of their run_seed, the partition is deterministic, disjoint, and complete
// — and merging the per-shard records in global seed order through the same
// CampaignResult::Accumulate / SampleController path the serial driver uses
// reproduces the unsharded report byte for byte, early stop included (the
// stop prefix is re-evaluated here, in global order, which is why shard
// workers themselves never stop early).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/campaign.h"

namespace chaser::campaign {

struct ShardSpec {
  std::uint64_t index = 0;
  std::uint64_t count = 1;
};

/// Parse "i/N" (e.g. "0/4"). Throws ConfigError unless N > 0 and i < N.
ShardSpec ParseShardSpec(const std::string& spec);

/// The global trial indices shard `spec` owns, ascending. The unsharded 0/1
/// spec yields the identity sequence 0..runs-1.
std::vector<std::uint64_t> ShardTrialIndices(std::uint64_t runs,
                                             const ShardSpec& spec);

/// The campaign plan a merge reconstructs results against. Must match what
/// every shard worker ran (same app label, runs, seed, policy, stop rule).
struct MergePlan {
  std::string app;
  std::uint64_t runs = 0;
  std::uint64_t seed = 0;
  SamplePolicy sample_policy = SamplePolicy::kUniform;
  double stop_ci = 0.0;
  bool keep_records = true;
};

/// Merge per-shard trial records into the result an unsharded run of `plan`
/// would have produced. `shard_records` is the concatenation of every
/// shard's records (any order — they are re-keyed by run_seed). Throws
/// ConfigError on a duplicate run_seed (two shards ran the same trial, or
/// one CSV was passed twice) or on a seed the plan needs that no shard
/// provided (a shard's records are incomplete) — except past the early-stop
/// point, where missing trials are expected.
CampaignResult MergeShardRecords(const MergePlan& plan,
                                 const std::vector<RunRecord>& shard_records);

/// One shard's records as a pull stream, in the shard's own (seed-order)
/// sequence: fills `*out` and returns true, or returns false at the end.
using ShardRecordStream = std::function<bool(RunRecord*)>;

/// Streaming MergeShardRecords: byte-identical result, bounded memory.
/// `streams[i]` must yield shard i's records in order — because shard i owns
/// exactly the global trial indices with index % N == i, the global seed
/// order is a round-robin over the streams, so the merge pulls one record at
/// a time and never materializes a shard's record set. Each pulled record's
/// run_seed is verified against the plan's derived seed sequence; a mismatch
/// (duplicate, missing, or mis-ordered trial) is a ConfigError. `sink`, when
/// set, sees every committed record in global seed order — the hook a merged
/// CTR store or streaming CSV export hangs off.
CampaignResult MergeShardStreams(
    const MergePlan& plan, std::vector<ShardRecordStream> streams,
    const std::function<void(const RunRecord&)>& sink = nullptr);

// ---------------------------------------------------------------------------
// Fleet observability: shard status parsing and the live rollup.
// ---------------------------------------------------------------------------

/// One shard worker's status as parsed from its status.json file or its
/// /status scrape body (the same document either way — see obs/status.h).
struct ShardStatus {
  bool ok = false;       // parsed; every other field is garbage when false
  bool running = false;  // worker still mid-campaign
  std::uint64_t total = 0;
  std::uint64_t done = 0;
  std::uint64_t replayed = 0;
  std::uint64_t benign = 0;
  std::uint64_t terminated = 0;
  std::uint64_t sdc = 0;
  std::uint64_t infra = 0;
  std::uint64_t taint_lost = 0;
  std::uint64_t trace_dropped = 0;
  double elapsed_s = 0.0;
  double trials_per_s = 0.0;
  /// eta_known=false mirrors a JSON-null eta_s: the shard has trials left
  /// but no throughput sample yet, so its remaining time is unknown (not 0).
  bool eta_known = false;
  double eta_s = 0.0;
  /// "host:port" of the worker's scrape server ("" when it runs without
  /// one) — how the coordinator upgrades from file polling to live scrapes.
  std::string obs_endpoint;
};

/// Parse a status.json document. Unparseable input yields ok=false rather
/// than a throw: a shard that has not written its first status yet is a
/// normal, transient condition for the rollup, not an error.
ShardStatus ParseShardStatus(const std::string& json);

/// The fleet-wide aggregate of whatever shards are reporting.
struct FleetRollup {
  std::uint64_t shards = 0;            // statuses passed in
  std::uint64_t shards_reporting = 0;  // of those, ok == true
  std::uint64_t total = 0;
  std::uint64_t done = 0;
  std::uint64_t replayed = 0;
  std::uint64_t benign = 0;
  std::uint64_t terminated = 0;
  std::uint64_t sdc = 0;
  std::uint64_t infra = 0;
  std::uint64_t taint_lost = 0;
  std::uint64_t trace_dropped = 0;
  double trials_per_s = 0.0;  // sum of per-shard rates
  /// Fleet ETA is the slowest shard's ETA — but only when every shard is
  /// reporting AND has a known ETA. One unknown shard makes the fleet ETA
  /// unknown (JSON null), never an optimistic partial max: folding unknown
  /// in as 0 is exactly the lie the null-for-unknown contract forbids.
  bool eta_known = false;
  double eta_s = 0.0;
  /// Outcome mix over completed trials (0.0 when done == 0).
  double benign_rate = 0.0;
  double terminated_rate = 0.0;
  double sdc_rate = 0.0;
  double infra_rate = 0.0;
};

/// Aggregate shard statuses (one entry per shard, ok=false for shards with
/// nothing to report yet) into the fleet view described above.
FleetRollup RollUpShards(const std::vector<ShardStatus>& statuses);

}  // namespace chaser::campaign

#include "campaign/sampling.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/strings.h"

namespace chaser::campaign {

const char* SamplePolicyName(SamplePolicy p) {
  switch (p) {
    case SamplePolicy::kUniform: return "uniform";
    case SamplePolicy::kWeighted: return "weighted";
    case SamplePolicy::kStratified: return "stratified";
  }
  return "?";
}

bool ParseSamplePolicy(const std::string& name, SamplePolicy* out) {
  if (name == "uniform") {
    *out = SamplePolicy::kUniform;
  } else if (name == "weighted") {
    *out = SamplePolicy::kWeighted;
  } else if (name == "stratified") {
    *out = SamplePolicy::kStratified;
  } else {
    return false;
  }
  return true;
}

// ---- SamplingPlan ------------------------------------------------------------

SamplingPlan SamplingPlan::Build(const GoldenSiteMap& sites) {
  // Key classes by (pc, cls). A map keeps construction order-independent of
  // rank iteration and the final list sorted — the determinism anchor.
  std::map<std::pair<std::uint64_t, guest::InstrClass>, SiteClass> classes;
  for (const auto& [rank, rank_sites] : sites) {
    for (const GoldenSite& s : rank_sites) {
      if (s.execs == 0) continue;
      SiteClass& c = classes[{s.pc, s.cls}];
      c.pc = s.pc;
      c.cls = s.cls;
      c.mass += s.execs;
      c.members.emplace_back(rank, s.execs);  // outer map: ranks ascending
    }
  }
  SamplingPlan plan;
  plan.classes_.reserve(classes.size());
  plan.cum_.reserve(classes.size());
  for (auto& [key, c] : classes) {
    plan.total_mass_ += c.mass;
    plan.classes_.push_back(std::move(c));
    plan.cum_.push_back(plan.total_mass_);
  }
  if (plan.total_mass_ == 0) {
    throw ConfigError(
        "SamplingPlan: golden profile has no targeted executions to sample");
  }
  return plan;
}

SiteDraw SamplingPlan::DrawInClass(std::size_t c, std::uint64_t offset) const {
  // `offset` is 1-based within the class's mass; walk the members (rank
  // ascending) to find which rank's invocation it lands on.
  const SiteClass& cls = classes_[c];
  SiteDraw d;
  d.pc = cls.pc;
  d.cls = cls.cls;
  for (const auto& [rank, execs] : cls.members) {
    if (offset <= execs) {
      d.rank = rank;
      d.nth = offset;
      return d;
    }
    offset -= execs;
  }
  // Unreachable for offset in [1, mass]: the members sum to the mass.
  throw ConfigError(StrFormat(
      "SamplingPlan: draw offset beyond class mass at pc %llu",
      static_cast<unsigned long long>(cls.pc)));
}

SiteDraw SamplingPlan::Draw(SamplePolicy policy, Rng& rng) const {
  switch (policy) {
    case SamplePolicy::kWeighted: {
      // One uniform draw over the total mass is simultaneously the class
      // pick, the member pick, and the invocation pick — i.e. uniform over
      // every golden invocation, so the weight is 1.
      const std::uint64_t u = rng.UniformU64(1, total_mass_);
      const std::size_t c = static_cast<std::size_t>(
          std::lower_bound(cum_.begin(), cum_.end(), u) - cum_.begin());
      const std::uint64_t before = c == 0 ? 0 : cum_[c - 1];
      SiteDraw d = DrawInClass(c, u - before);
      d.weight = 1.0;
      return d;
    }
    case SamplePolicy::kStratified: {
      // Classes uniform (rare sites get equal attention), invocation uniform
      // within the class; the Horvitz-Thompson-style weight maps the draw
      // back to the uniform-over-invocations estimand.
      const std::size_t c = rng.Index(classes_.size());
      const std::uint64_t v = rng.UniformU64(1, classes_[c].mass);
      SiteDraw d = DrawInClass(c, v);
      d.weight = static_cast<double>(classes_[c].mass) *
                 static_cast<double>(classes_.size()) /
                 static_cast<double>(total_mass_);
      return d;
    }
    case SamplePolicy::kUniform:
      break;
  }
  throw ConfigError("SamplingPlan: kUniform uses the legacy draw, not a plan");
}

// ---- Wilson intervals --------------------------------------------------------

WilsonInterval WilsonScore(double p_hat, double n_eff, double z) {
  WilsonInterval w;
  if (n_eff <= 0.0) return w;  // no data: the vacuous [0, 1] interval
  p_hat = std::clamp(p_hat, 0.0, 1.0);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n_eff;
  const double center = (p_hat + z2 / (2.0 * n_eff)) / denom;
  const double half =
      z *
      std::sqrt(p_hat * (1.0 - p_hat) / n_eff + z2 / (4.0 * n_eff * n_eff)) /
      denom;
  w.rate = p_hat;
  w.lo = std::max(0.0, center - half);
  w.hi = std::min(1.0, center + half);
  return w;
}

// ---- OutcomeEstimator --------------------------------------------------------

void OutcomeEstimator::Add(int outcome, bool deadlock, double weight) {
  // kInfra (3) is not an injection outcome; kCrashed (4) is, but it is not
  // one of the benign/terminated/sdc series this estimator tracks.
  if (outcome < 0 || outcome > 2) return;
  if (weight <= 0.0) return;
  wsum_[outcome] += weight;
  if (outcome == kTerminated && deadlock) wsum_[kHang] += weight;
  w_total_ += weight;
  w2_total_ += weight * weight;
  ++n_;
}

double OutcomeEstimator::effective_n() const {
  return w2_total_ > 0.0 ? w_total_ * w_total_ / w2_total_ : 0.0;
}

WilsonInterval OutcomeEstimator::Interval(Series s, double z) const {
  if (w_total_ <= 0.0) return WilsonInterval{};
  return WilsonScore(wsum_[s] / w_total_, effective_n(), z);
}

bool OutcomeEstimator::Converged(double max_width, double z) const {
  if (n_ == 0) return false;
  for (int s = 0; s < kNumSeries; ++s) {
    if (Interval(static_cast<Series>(s), z).width() > max_width) return false;
  }
  return true;
}

// ---- SampleController --------------------------------------------------------

SampleController::SampleController(SamplePolicy policy, double stop_ci)
    : policy_(policy), stop_ci_(stop_ci) {}

bool SampleController::Commit(int outcome, bool deadlock, double weight) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (converged_) return true;  // sticky: the stop point never moves
  estimator_.Add(outcome, deadlock, weight);
  ++committed_;
  if (stop_ci_ > 0.0 && committed_ >= kMinStopTrials &&
      estimator_.Converged(stop_ci_)) {
    converged_ = true;
  }
  return converged_;
}

std::uint64_t SampleController::committed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return committed_;
}

bool SampleController::converged() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return converged_;
}

OutcomeEstimator SampleController::estimator() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return estimator_;
}

obs::EstimateSnapshot SampleController::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  obs::EstimateSnapshot snap;
  snap.trials = estimator_.trials();
  snap.effective_n = estimator_.effective_n();
  snap.stop_width = stop_ci_;
  snap.converged = converged_;
  const auto fill = [&](OutcomeEstimator::Series s,
                        obs::OutcomeIntervalSnapshot* out) {
    const WilsonInterval w = estimator_.Interval(s);
    out->rate = w.rate;
    out->lo = w.lo;
    out->hi = w.hi;
  };
  fill(OutcomeEstimator::kBenign, &snap.benign);
  fill(OutcomeEstimator::kTerminated, &snap.terminated);
  fill(OutcomeEstimator::kSdc, &snap.sdc);
  fill(OutcomeEstimator::kHang, &snap.hang);
  return snap;
}

}  // namespace chaser::campaign

// Bitwise dynamic taint engine (the DECAF substrate Chaser builds on).
//
// DECAF propagates taint at TCG-op granularity through CPU registers, memory
// and I/O, with bit-level precision; Chaser extends the rules to floating
// point and registers READ/WRITE_TAINTMEM callbacks to observe propagation.
// This module reproduces that layer:
//
//  * every TCG value slot (guest registers, flags, per-TB temporaries) has a
//    64-bit taint mask (bit i set = bit i of the value is tainted);
//  * guest memory has a per-byte shadow (8-bit mask per byte), stored
//    page-by-page against *physical* addresses;
//  * per-op propagation rules are value-aware where DECAF's are (and/or use
//    concrete operand bits; shifts move masks by the concrete amount);
//  * FP ops use conservative whole-value rules (any tainted input bit taints
//    the full result — FP normalisation smears bits unpredictably);
//  * tainted memory reads/writes invoke user callbacks with the paper's log
//    payload: eip, virtual address, physical address, taint mask, value.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "tcg/ir.h"

namespace chaser::taint {

/// Shadow-memory page size (bytes).
inline constexpr std::uint64_t kShadowPageBits = 12;
inline constexpr std::uint64_t kShadowPageSize = 1ull << kShadowPageBits;

/// Payload of a tainted-memory-access callback
/// (the paper's fault-propagation log record, §III-C(c)).
struct TaintMemAccess {
  std::uint64_t pc = 0;        // guest instruction index ("eip"; use PcToAddr to render)
  GuestAddr vaddr = 0;         // virtual address of the access
  PhysAddr paddr = 0;          // physical address after soft-MMU translation
  std::uint32_t size = 0;      // bytes accessed
  std::uint64_t value = 0;     // value read/written (low `size` bytes)
  std::uint64_t taint = 0;     // packed per-byte masks: byte i's mask at bits [8i, 8i+8)
};

/// Counters maintained by the engine.
struct TaintStats {
  std::uint64_t tainted_reads = 0;   // reads that touched >=1 tainted byte
  std::uint64_t tainted_writes = 0;  // writes that stored >=1 tainted byte
  std::uint64_t taint_cleared_bytes = 0;  // tainted bytes overwritten clean
  std::uint64_t peak_tainted_bytes = 0;
};

class TaintEngine {
 public:
  using MemAccessCallback = std::function<void(const TaintMemAccess&)>;

  TaintEngine();

  /// Master switch. Disabled: all propagation calls are cheap no-ops and
  /// report zero taint (used for the Fig. 10 overhead ablation).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Elastic taint (DECAF++): true iff any taint exists anywhere (a value
  /// slot or a memory byte). While false, per-op propagation is exact even
  /// if skipped entirely — everything is already clean — so the execution
  /// engine bypasses the taint path until a source appears.
  bool Active() const { return val_nonzero_ != 0 || tainted_bytes_ != 0; }

  /// Clear a value slot's taint without the full Set path (fast-path helper
  /// for clean results).
  void ClearValTaint(tcg::ValId v) {
    if (v < val_taint_.size() && val_taint_[v] != 0) {
      val_taint_[v] = 0;
      --val_nonzero_;
      if (v >= tcg::kTempBase) --temp_nonzero_;
    }
  }

  /// DECAF_READ_TAINTMEM_CB / DECAF_WRITE_TAINTMEM_CB equivalents.
  void set_on_tainted_read(MemAccessCallback cb) { on_read_ = std::move(cb); }
  void set_on_tainted_write(MemAccessCallback cb) { on_write_ = std::move(cb); }

  // ---- Value-slot shadow ----------------------------------------------------
  // Inline: the interpreter queries/sets value taint for every op while
  // taint is active, so these are on the per-op hot path.
  std::uint64_t GetValTaint(tcg::ValId v) const {
    if (!enabled_ || v >= val_taint_.size()) return 0;
    return val_taint_[v];
  }
  void SetValTaint(tcg::ValId v, std::uint64_t mask) {
    if (!enabled_) return;
    if (v >= val_taint_.size()) val_taint_.resize(v + 1, 0);
    const bool was = val_taint_[v] != 0;
    const bool now = mask != 0;
    val_taint_[v] = mask;
    if (was != now) {
      val_nonzero_ += now ? 1 : -1;
      if (v >= tcg::kTempBase) temp_nonzero_ += now ? 1 : -1;
    }
  }
  /// Ensure capacity for a TB's temporaries and clear them.
  void BeginTb(std::uint16_t num_temps);
  /// True if any guest register (int, FP, flags) carries taint.
  bool AnyEnvTainted() const;
  /// Clear every value-slot taint (process exit / reset).
  void ClearVals();

  // ---- Memory shadow --------------------------------------------------------
  /// Taint mask of the byte at `paddr` (0 if untracked).
  std::uint8_t GetMemTaintByte(PhysAddr paddr) const;
  /// Set the taint mask of a single byte; maintains the tainted-byte count.
  void SetMemTaintByte(PhysAddr paddr, std::uint8_t mask);
  /// Packed per-byte masks for `size` bytes starting at `paddr`.
  std::uint64_t GetMemTaint(PhysAddr paddr, std::uint32_t size) const;
  /// Store packed per-byte masks for `size` bytes at `paddr`.
  void SetMemTaint(PhysAddr paddr, std::uint32_t size, std::uint64_t packed);
  /// Raw shadow masks of the page containing `paddr` (kShadowPageSize bytes,
  /// indexed by paddr offset), or nullptr when the page holds no taint at
  /// all. For page-at-a-time scans — e.g. the write-syscall's
  /// taint-through-I/O filter — where a per-byte GetMemTaintByte would pay
  /// the page lookup once per byte instead of once per page.
  const std::uint8_t* PeekShadowPage(PhysAddr paddr) const {
    const ShadowPage* page = FindPage(paddr);
    return page == nullptr ? nullptr : page->data();
  }

  /// Number of bytes whose shadow mask is currently non-zero.
  std::uint64_t CountTaintedBytes() const { return tainted_bytes_; }
  /// Drop all memory taint.
  void ClearMem();

  // ---- Per-op propagation (called by the execution engine) -------------------
  /// Taint of the result of a pure ALU/FP op given operand taints and concrete
  /// operand values (value-aware rules need them).
  std::uint64_t PropagateOp(tcg::TcgOpc opc, std::uint64_t ta, std::uint64_t tb,
                            std::uint64_t a, std::uint64_t b) const;

  /// Memory load: computes the loaded value's taint from the shadow (plus a
  /// tainted-address over-approximation), fires the read callback if tainted.
  /// Inline early-out: while no memory byte is tainted and the address is
  /// clean, the result is exactly 0 with no callback and no stats — the
  /// common case even after an injection (taint usually lives in a handful
  /// of registers/bytes while the guest streams over clean data).
  std::uint64_t OnLoad(std::uint64_t pc, GuestAddr vaddr, PhysAddr paddr,
                       std::uint32_t size, bool sign_extend,
                       std::uint64_t addr_taint, std::uint64_t value) {
    if (tainted_bytes_ == 0 && addr_taint == 0) return 0;
    return OnLoadSlow(pc, vaddr, paddr, size, sign_extend, addr_taint, value);
  }

  /// Memory store: updates the shadow from the stored value's taint, fires the
  /// write callback if tainted, accounts for taint cleared by clean stores.
  /// Inline early-out mirroring OnLoad: a clean store over clean shadow
  /// changes nothing.
  void OnStore(std::uint64_t pc, GuestAddr vaddr, PhysAddr paddr,
               std::uint32_t size, std::uint64_t addr_taint,
               std::uint64_t value, std::uint64_t value_taint) {
    if (tainted_bytes_ == 0 && addr_taint == 0 && value_taint == 0) return;
    OnStoreSlow(pc, vaddr, paddr, size, addr_taint, value, value_taint);
  }

  // ---- Taint sources (used by the fault injector) ----------------------------
  /// Mark bits of a guest register (int or FP) as tainted — the injected
  /// fault's footprint becomes the taint source.
  void TaintSourceRegister(tcg::ValId v, std::uint64_t mask);
  /// Mark `size` bytes of memory as a taint source with packed masks.
  void TaintSourceMemory(PhysAddr paddr, std::uint32_t size, std::uint64_t packed);

  const TaintStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TaintStats{}; }

  /// Full reset: values, memory, stats.
  void Reset();

 private:
  using ShadowPage = std::vector<std::uint8_t>;  // kShadowPageSize masks

  // Same-shape fast path as GuestMemory's flat TLB: a small direct-mapped
  // page-index -> ShadowPage* cache in front of the pages_ hash. Only
  // positive entries are cached, and unordered_map values are node-stable,
  // so entries survive rehash; ClearMem() is the sole invalidation point.
  struct PageCacheEntry {
    std::uint64_t page = ~0ull;     // ~0 never matches a real page index
    ShadowPage* shadow = nullptr;
  };
  static constexpr std::size_t kPageCacheEntries = 64;  // power of two

  std::uint64_t OnLoadSlow(std::uint64_t pc, GuestAddr vaddr, PhysAddr paddr,
                           std::uint32_t size, bool sign_extend,
                           std::uint64_t addr_taint, std::uint64_t value);
  void OnStoreSlow(std::uint64_t pc, GuestAddr vaddr, PhysAddr paddr,
                   std::uint32_t size, std::uint64_t addr_taint,
                   std::uint64_t value, std::uint64_t value_taint);

  ShadowPage* FindPage(PhysAddr paddr);
  const ShadowPage* FindPage(PhysAddr paddr) const;
  ShadowPage& EnsurePage(PhysAddr paddr);
  void FlushPageCache() { page_cache_.fill(PageCacheEntry{}); }

 public:
  /// Enable/disable the shadow-page cache. Toggled together with the memory
  /// TLB (it is the taint half of the same ablation knob); disabling flushes
  /// so re-enabling never sees stale pointers.
  void set_page_cache_enabled(bool enabled) {
    page_cache_enabled_ = enabled;
    FlushPageCache();
  }

 private:

  bool enabled_ = false;
  std::vector<std::uint64_t> val_taint_;  // env slots + temps
  std::uint64_t val_nonzero_ = 0;         // slots with non-zero taint
  std::uint64_t temp_nonzero_ = 0;        // subset of val_nonzero_ >= kTempBase
  std::unordered_map<std::uint64_t, ShadowPage> pages_;  // page index -> masks
  mutable std::array<PageCacheEntry, kPageCacheEntries> page_cache_{};
  bool page_cache_enabled_ = true;
  std::uint64_t tainted_bytes_ = 0;
  TaintStats stats_;
  MemAccessCallback on_read_;
  MemAccessCallback on_write_;
};

/// Packed-mask helpers (byte i's mask occupies bits [8i, 8i+8)).
std::uint64_t PackMask(const std::uint8_t* masks, std::uint32_t size);
void UnpackMask(std::uint64_t packed, std::uint32_t size, std::uint8_t* masks);

}  // namespace chaser::taint

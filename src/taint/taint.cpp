#include "taint/taint.h"

#include <algorithm>

#include "common/bits.h"

namespace chaser::taint {
namespace {

/// Sound over-approximation for carry-propagating ops (add/sub): every bit at
/// or above the lowest tainted input bit may be affected by a carry.
std::uint64_t SmearUp(std::uint64_t mask) {
  if (mask == 0) return 0;
  const unsigned lowest = static_cast<unsigned>(std::countr_zero(mask));
  return ~std::uint64_t{0} << lowest;
}

std::uint64_t SizeMask(std::uint32_t size) {
  return size >= 8 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (8 * size)) - 1);
}

}  // namespace

std::uint64_t PackMask(const std::uint8_t* masks, std::uint32_t size) {
  std::uint64_t packed = 0;
  for (std::uint32_t i = 0; i < size && i < 8; ++i) {
    packed |= static_cast<std::uint64_t>(masks[i]) << (8 * i);
  }
  return packed;
}

void UnpackMask(std::uint64_t packed, std::uint32_t size, std::uint8_t* masks) {
  for (std::uint32_t i = 0; i < size && i < 8; ++i) {
    masks[i] = static_cast<std::uint8_t>(packed >> (8 * i));
  }
}

TaintEngine::TaintEngine() : val_taint_(tcg::kTempBase, 0) {}

void TaintEngine::BeginTb(std::uint16_t num_temps) {
  if (!enabled_) return;
  const std::size_t needed = tcg::kTempBase + num_temps;
  if (val_taint_.size() < needed) val_taint_.resize(needed, 0);
  // Clear stale temp taint from a previous TB (or a direct SetValTaint) so
  // it cannot leak into this block's temporaries. The temp_nonzero_ counter
  // makes the common case — no tainted temps — a single compare instead of
  // a sweep over every temp slot on every TB.
  if (temp_nonzero_ == 0) return;
  for (std::size_t v = tcg::kTempBase; v < val_taint_.size(); ++v) {
    if (val_taint_[v] != 0) {
      val_taint_[v] = 0;
      --val_nonzero_;
    }
  }
  temp_nonzero_ = 0;
}

bool TaintEngine::AnyEnvTainted() const {
  if (!enabled_) return false;
  for (tcg::ValId v = 0; v < tcg::kNumEnvSlots; ++v) {
    if (val_taint_[v] != 0) return true;
  }
  return false;
}

void TaintEngine::ClearVals() {
  std::fill(val_taint_.begin(), val_taint_.end(), 0);
  val_nonzero_ = 0;
  temp_nonzero_ = 0;
}

TaintEngine::ShadowPage* TaintEngine::FindPage(PhysAddr paddr) {
  const std::uint64_t page = paddr >> kShadowPageBits;
  if (page_cache_enabled_) {
    PageCacheEntry& e = page_cache_[page & (kPageCacheEntries - 1)];
    if (e.page == page) return e.shadow;
    const auto it = pages_.find(page);
    if (it == pages_.end()) return nullptr;
    e = PageCacheEntry{page, &it->second};
    return &it->second;
  }
  const auto it = pages_.find(page);
  if (it == pages_.end()) return nullptr;
  return &it->second;
}

const TaintEngine::ShadowPage* TaintEngine::FindPage(PhysAddr paddr) const {
  const std::uint64_t page = paddr >> kShadowPageBits;
  if (page_cache_enabled_) {
    PageCacheEntry& e = page_cache_[page & (kPageCacheEntries - 1)];
    if (e.page == page) return e.shadow;
    const auto it = pages_.find(page);
    if (it == pages_.end()) return nullptr;
    // Safe to cache from const context: shadow pages are node-stable in the
    // pages_ hash and the cache is pure memoisation.
    e = PageCacheEntry{page, const_cast<ShadowPage*>(&it->second)};
    return &it->second;
  }
  const auto it = pages_.find(page);
  if (it == pages_.end()) return nullptr;
  return &it->second;
}

TaintEngine::ShadowPage& TaintEngine::EnsurePage(PhysAddr paddr) {
  const std::uint64_t page = paddr >> kShadowPageBits;
  if (page_cache_enabled_) {
    PageCacheEntry& e = page_cache_[page & (kPageCacheEntries - 1)];
    if (e.page == page) return *e.shadow;
    ShadowPage& shadow = pages_[page];
    if (shadow.empty()) shadow.resize(kShadowPageSize, 0);
    e = PageCacheEntry{page, &shadow};
    return shadow;
  }
  ShadowPage& shadow = pages_[page];
  if (shadow.empty()) shadow.resize(kShadowPageSize, 0);
  return shadow;
}

std::uint8_t TaintEngine::GetMemTaintByte(PhysAddr paddr) const {
  const ShadowPage* page = FindPage(paddr);
  return page == nullptr ? 0 : (*page)[paddr & (kShadowPageSize - 1)];
}

void TaintEngine::SetMemTaintByte(PhysAddr paddr, std::uint8_t mask) {
  if (mask == 0) {
    ShadowPage* page = FindPage(paddr);
    if (page == nullptr) return;
    std::uint8_t& slot = (*page)[paddr & (kShadowPageSize - 1)];
    if (slot != 0) --tainted_bytes_;
    slot = 0;
    return;
  }
  std::uint8_t& slot = EnsurePage(paddr)[paddr & (kShadowPageSize - 1)];
  if (slot == 0) {
    ++tainted_bytes_;
    stats_.peak_tainted_bytes = std::max(stats_.peak_tainted_bytes, tainted_bytes_);
  }
  slot = mask;
}

std::uint64_t TaintEngine::GetMemTaint(PhysAddr paddr, std::uint32_t size) const {
  if (tainted_bytes_ == 0) return 0;
  // Fast path: the whole access sits in one shadow page (one hash lookup).
  if ((paddr & (kShadowPageSize - 1)) + size <= kShadowPageSize) {
    const ShadowPage* page = FindPage(paddr);
    if (page == nullptr) return 0;
    std::uint64_t packed = 0;
    const std::uint64_t off = paddr & (kShadowPageSize - 1);
    for (std::uint32_t i = 0; i < size && i < 8; ++i) {
      packed |= static_cast<std::uint64_t>((*page)[off + i]) << (8 * i);
    }
    return packed;
  }
  std::uint64_t packed = 0;
  for (std::uint32_t i = 0; i < size && i < 8; ++i) {
    packed |= static_cast<std::uint64_t>(GetMemTaintByte(paddr + i)) << (8 * i);
  }
  return packed;
}

void TaintEngine::SetMemTaint(PhysAddr paddr, std::uint32_t size, std::uint64_t packed) {
  // Fast path: clearing a range when no shadow exists at all is a no-op.
  if (packed == 0 && tainted_bytes_ == 0) return;
  // Fast path: the whole access sits in one shadow page (one page lookup
  // for the range instead of one per byte — stores of tainted values are
  // the hottest shadow writers).
  if ((paddr & (kShadowPageSize - 1)) + size <= kShadowPageSize) {
    const std::uint64_t off = paddr & (kShadowPageSize - 1);
    ShadowPage* page;
    if (packed == 0) {
      page = FindPage(paddr);
      if (page == nullptr) return;  // clearing untracked bytes: no-op
    } else {
      page = &EnsurePage(paddr);
    }
    for (std::uint32_t i = 0; i < size && i < 8; ++i) {
      std::uint8_t& slot = (*page)[off + i];
      const auto mask = static_cast<std::uint8_t>(packed >> (8 * i));
      if (slot == 0 && mask != 0) {
        ++tainted_bytes_;
        stats_.peak_tainted_bytes =
            std::max(stats_.peak_tainted_bytes, tainted_bytes_);
      } else if (slot != 0 && mask == 0) {
        --tainted_bytes_;
      }
      slot = mask;
    }
    return;
  }
  for (std::uint32_t i = 0; i < size && i < 8; ++i) {
    SetMemTaintByte(paddr + i, static_cast<std::uint8_t>(packed >> (8 * i)));
  }
}

void TaintEngine::ClearMem() {
  pages_.clear();
  FlushPageCache();  // cached ShadowPage* now dangle — drop them all
  tainted_bytes_ = 0;
}

std::uint64_t TaintEngine::PropagateOp(tcg::TcgOpc opc, std::uint64_t ta,
                                       std::uint64_t tb, std::uint64_t a,
                                       std::uint64_t b) const {
  using Opc = tcg::TcgOpc;
  if (!enabled_) return 0;
  if (ta == 0 && tb == 0) return 0;  // fast path: clean operands stay clean
  switch (opc) {
    case Opc::kMov:
      return ta;
    case Opc::kAdd:
    case Opc::kSub:
      return SmearUp(ta | tb);
    case Opc::kMul:
    case Opc::kDivS:
    case Opc::kDivU:
    case Opc::kRemS:
    case Opc::kRemU:
      return ~std::uint64_t{0};
    case Opc::kAnd:
      // Result bit is tainted if a tainted input bit can influence it: both
      // tainted, or one tainted while the other's concrete bit is 1.
      return (ta & tb) | (ta & b) | (tb & a);
    case Opc::kOr:
      return (ta & tb) | (ta & ~b) | (tb & ~a);
    case Opc::kXor:
      return ta | tb;
    case Opc::kNot:
      return ta;
    case Opc::kNeg:
      return SmearUp(ta);
    case Opc::kShl:
      if (tb != 0) return ~std::uint64_t{0};  // tainted shift amount
      return ta << (b & 63u);
    case Opc::kShr:
      if (tb != 0) return ~std::uint64_t{0};
      return ta >> (b & 63u);
    case Opc::kSar: {
      if (tb != 0) return ~std::uint64_t{0};
      const unsigned sh = static_cast<unsigned>(b & 63u);
      std::uint64_t m = ta >> sh;
      if ((ta >> 63) & 1u) m |= ~(~std::uint64_t{0} >> sh);  // sign bit smears
      return m;
    }
    // Flag computation: any operand taint taints every flag bit.
    case Opc::kSetFlags:
    case Opc::kSetFlagsF:
      return tcg::kFlagEq | tcg::kFlagLtS | tcg::kFlagLtU;
    // FP extension (Chaser, §II-C(b)): conservative whole-value rules —
    // rounding/normalisation smears bits across the significand.
    case Opc::kFAdd:
    case Opc::kFSub:
    case Opc::kFMul:
    case Opc::kFDiv:
    case Opc::kFMin:
    case Opc::kFMax:
    case Opc::kFSqrt:
    case Opc::kCvtIF:
    case Opc::kCvtFI:
      return ~std::uint64_t{0};
    case Opc::kFNeg:
      return ta | (std::uint64_t{1} << 63);
    case Opc::kFAbs:
      return ta & ~(std::uint64_t{1} << 63);
    default:
      return ta | tb;
  }
}

std::uint64_t TaintEngine::OnLoadSlow(std::uint64_t pc, GuestAddr vaddr, PhysAddr paddr,
                                  std::uint32_t size, bool sign_extend,
                                  std::uint64_t addr_taint, std::uint64_t value) {
  if (!enabled_) return 0;
  std::uint64_t taint = GetMemTaint(paddr, size);
  if (taint != 0) {
    ++stats_.tainted_reads;
    if (on_read_) {
      on_read_({.pc = pc, .vaddr = vaddr, .paddr = paddr, .size = size,
                .value = value, .taint = taint});
    }
  }
  if (sign_extend && size < 8 && taint != 0) {
    // If the loaded sign bit is tainted, all replicated upper bits are too.
    const std::uint64_t sign_bit = std::uint64_t{1} << (8 * size - 1);
    if (taint & sign_bit) taint |= ~SizeMask(size);
  }
  if (addr_taint != 0) {
    // Tainted pointer: the loaded value is wholly attacker/fault-controlled.
    taint = ~std::uint64_t{0};
  }
  return taint;
}

void TaintEngine::OnStoreSlow(std::uint64_t pc, GuestAddr vaddr, PhysAddr paddr,
                          std::uint32_t size, std::uint64_t addr_taint,
                          std::uint64_t value, std::uint64_t value_taint) {
  if (!enabled_) return;
  std::uint64_t stored_taint = value_taint & SizeMask(size);
  if (addr_taint != 0) stored_taint = SizeMask(size);  // tainted pointer write
  if (stored_taint != 0) {
    ++stats_.tainted_writes;
    if (on_write_) {
      on_write_({.pc = pc, .vaddr = vaddr, .paddr = paddr, .size = size,
                 .value = value, .taint = stored_taint});
    }
  } else if ((paddr & (kShadowPageSize - 1)) + size <= kShadowPageSize) {
    // Clean store: count taint destroyed by overwriting (Fig. 7's drops).
    // One page lookup for the whole in-page range.
    if (const ShadowPage* page = FindPage(paddr)) {
      const std::uint64_t off = paddr & (kShadowPageSize - 1);
      for (std::uint32_t i = 0; i < size; ++i) {
        if ((*page)[off + i] != 0) ++stats_.taint_cleared_bytes;
      }
    }
  } else {
    for (std::uint32_t i = 0; i < size; ++i) {
      if (GetMemTaintByte(paddr + i) != 0) ++stats_.taint_cleared_bytes;
    }
  }
  SetMemTaint(paddr, size, stored_taint);
}

void TaintEngine::TaintSourceRegister(tcg::ValId v, std::uint64_t mask) {
  if (!enabled_) return;
  if (v >= val_taint_.size()) val_taint_.resize(v + 1, 0);
  const bool was = val_taint_[v] != 0;
  val_taint_[v] |= mask;
  if (!was && val_taint_[v] != 0) {
    ++val_nonzero_;
    if (v >= tcg::kTempBase) ++temp_nonzero_;
  }
}

void TaintEngine::TaintSourceMemory(PhysAddr paddr, std::uint32_t size,
                                    std::uint64_t packed) {
  if (!enabled_) return;
  for (std::uint32_t i = 0; i < size && i < 8; ++i) {
    const auto mask = static_cast<std::uint8_t>(packed >> (8 * i));
    if (mask != 0) {
      SetMemTaintByte(paddr + i, static_cast<std::uint8_t>(
                                     GetMemTaintByte(paddr + i) | mask));
    }
  }
}

void TaintEngine::Reset() {
  ClearVals();
  ClearMem();
  ResetStats();
}

}  // namespace chaser::taint

// Guest -> TCG translator.
//
// Mirrors QEMU's front end: starting at a guest pc, lower instructions into
// one TranslationBlock until a control-flow instruction (or the block-size
// cap) ends the block. Chaser's just-in-time injection hook lives here: an
// `instrument` predicate decides, per guest instruction, whether to splice a
// DECAF_inject_fault helper call in front of the instruction's IR — the
// selective instrumentation that gives Chaser its low overhead (paper
// §III-A(b), Fig. 3).
#pragma once

#include <cstdint>
#include <functional>

#include "guest/program.h"
#include "tcg/ir.h"

namespace chaser::tcg {

class Translator {
 public:
  struct Options {
    /// Maximum guest instructions per TB (QEMU default region is similar).
    std::uint32_t max_tb_insns = 64;

    /// Returns true if an injection helper call must be inserted before the
    /// instruction at `pc`. Null means "no instrumentation".
    std::function<bool(const guest::Instruction&, std::uint64_t pc)> instrument;

    /// Ablation: instrument *every* instruction (the F-SEFI strategy that
    /// Chaser's selective instrumentation replaces).
    bool instrument_all = false;
  };

  Translator() = default;
  explicit Translator(Options options) : options_(std::move(options)) {}

  /// Translate one TB starting at instruction index `pc`.
  /// Requires pc < prog.text.size().
  TranslationBlock Translate(const guest::Program& prog, std::uint64_t pc) const;

  const Options& options() const { return options_; }
  void set_options(Options options) { options_ = std::move(options); }

 private:
  Options options_;
};

}  // namespace chaser::tcg

#include "tcg/shared_cache.h"

#include <bit>
#include <cstring>

namespace chaser::tcg {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t FnvU64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t FnvBytes(std::uint64_t h, const void* data,
                              std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

// Final avalanche (splitmix64) so near-identical keys spread across buckets.
inline std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t SharedTbCache::BucketOf(const Key& key) {
  std::uint64_t h = Mix64(key.program ^ Mix64(key.variant ^ Mix64(key.pc)));
  return static_cast<std::size_t>(h) & (kBuckets - 1);
}

const TranslationBlock* SharedTbCache::Lookup(const Key& key) const {
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  const Node* node = buckets_[BucketOf(key)].load(std::memory_order_acquire);
  for (; node != nullptr; node = node->next) {
    if (node->epoch == epoch && KeyEq(node->key, key)) {
      reuses_.fetch_add(1, std::memory_order_relaxed);
      return &node->tb;
    }
  }
  return nullptr;
}

const TranslationBlock* SharedTbCache::Insert(const Key& key,
                                              TranslationBlock tb) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Another worker may have translated the same key while we were: keep the
  // first published TB canonical so every VM chains through identical nodes.
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  std::atomic<Node*>& bucket = buckets_[BucketOf(key)];
  for (const Node* node = bucket.load(std::memory_order_relaxed);
       node != nullptr; node = node->next) {
    if (node->epoch == epoch && KeyEq(node->key, key)) {
      reuses_.fetch_add(1, std::memory_order_relaxed);
      return &node->tb;
    }
  }

  if (max_tbs_ > 0 && live_ >= max_tbs_) {
    // QEMU overflow semantics: retire everything, restart into a new epoch.
    evicted_tbs_ += live_;
    live_ = 0;
    ++epoch_flushes_;
    epoch_.fetch_add(1, std::memory_order_release);
  }

  auto node = std::make_unique<Node>();
  node->key = key;
  node->epoch = epoch_.load(std::memory_order_relaxed);
  node->tb = std::move(tb);
  node->next = bucket.load(std::memory_order_relaxed);
  Node* raw = node.get();
  nodes_.push_back(std::move(node));
  ++live_;
  ++translations_;
  bucket.store(raw, std::memory_order_release);
  return &raw->tb;
}

void SharedTbCache::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (live_ == 0) return;
  evicted_tbs_ += live_;
  live_ = 0;
  ++epoch_flushes_;
  epoch_.fetch_add(1, std::memory_order_release);
}

std::uint64_t SharedTbCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_;
}

SharedTbCache::Stats SharedTbCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.translations = translations_;
  s.reuses = reuses_.load(std::memory_order_relaxed);
  s.epoch_flushes = epoch_flushes_;
  s.evicted_tbs = evicted_tbs_;
  return s;
}

std::uint64_t SharedTbCache::HashProgram(const guest::Program& prog) {
  std::uint64_t h = kFnvOffset;
  h = FnvBytes(h, prog.name.data(), prog.name.size());
  h = FnvU64(h, prog.entry);
  h = FnvU64(h, prog.text.size());
  for (const guest::Instruction& in : prog.text) {
    h = FnvU64(h, static_cast<std::uint64_t>(in.op));
    h = FnvU64(h, static_cast<std::uint64_t>(in.rd));
    h = FnvU64(h, static_cast<std::uint64_t>(in.rs1));
    h = FnvU64(h, static_cast<std::uint64_t>(in.rs2));
    h = FnvU64(h, static_cast<std::uint64_t>(in.cond));
    h = FnvU64(h, in.use_imm ? 1u : 0u);
    h = FnvU64(h, static_cast<std::uint64_t>(in.size));
    h = FnvU64(h, static_cast<std::uint64_t>(in.imm));
    h = FnvU64(h, std::bit_cast<std::uint64_t>(in.fimm));
  }
  h = FnvU64(h, prog.data.size());
  if (!prog.data.empty()) h = FnvBytes(h, prog.data.data(), prog.data.size());
  h = FnvU64(h, prog.bss_bytes);
  return h == 0 ? 1 : h;  // 0 is reserved for "no program"
}

}  // namespace chaser::tcg

// TCG optimizer (QEMU runs a very similar pass over every TB).
//
// The translator emits a regular pattern: compute into a fresh temp, then
// kMov the temp into its destination. The optimizer cleans that up:
//
//  1. *Copy forwarding* — when a pure op defines a temp that is consumed
//     exactly once, by the immediately following kMov, the op writes the
//     mov's destination directly and the mov disappears. This typically
//     removes 20-30% of a TB's ops.
//  2. *Immediate fusion* — a kMovI temp consumed exactly once as the second
//     operand of the next ALU / compare / store op folds into that op
//     (src2_imm); a fused `kAdd t, base, #disp` feeding the next load or
//     store's address folds into the memory op itself (addr_fused), QEMU's
//     base+displacement addressing mode.
//  3. *Dead temp elimination* — pure ops whose destination temp is never
//     read afterwards are dropped (a backward liveness sweep).
//  4. *Boundary folding* — a kInsnStart whose instruction emitted at least
//     one more op becomes an insn_boundary flag on that op, so the
//     interpreter pays one well-predicted branch instead of a dispatched op
//     per retired instruction. Instruction accounting (instret, budget,
//     watchdog, hooks) is unchanged: the dispatch glue runs the same
//     bookkeeping before a flagged op that the kInsnStart handler runs.
//
// All transformations preserve taint semantics exactly: a forwarded op
// propagates the same mask the deleted kMov would have copied; fused
// immediates read taint 0 just as the folded kMovI temp would (temps are
// cleared at TB entry and injections only ever target env slots); the
// interpreter re-applies the folded kAdd's taint rule for fused addresses.
// Control flow, flags and helper calls are never touched, and memory ops are
// never removed.
#pragma once

#include <cstdint>

#include "tcg/ir.h"

namespace chaser::tcg {

struct OptimizerStats {
  std::uint64_t movs_forwarded = 0;
  std::uint64_t dead_ops_removed = 0;
  std::uint64_t imms_fused = 0;   // kMovI folded into a consumer's src2
  std::uint64_t addrs_fused = 0;  // kAdd folded into a load/store address
  std::uint64_t insn_starts_folded = 0;  // kInsnStart -> insn_boundary flag
};

/// Optimize `tb` in place. Returns what was done.
OptimizerStats Optimize(TranslationBlock* tb);

}  // namespace chaser::tcg

// TCG optimizer (QEMU runs a very similar pass over every TB).
//
// The translator emits a regular pattern: compute into a fresh temp, then
// kMov the temp into its destination. The optimizer cleans that up:
//
//  1. *Copy forwarding* — when a pure op defines a temp that is consumed
//     exactly once, by the immediately following kMov, the op writes the
//     mov's destination directly and the mov disappears. This typically
//     removes 20-30% of a TB's ops.
//  2. *Dead temp elimination* — pure ops whose destination temp is never
//     read afterwards are dropped (a backward liveness sweep).
//
// Both transformations preserve taint semantics exactly: a forwarded op
// propagates the same mask the deleted kMov would have copied, and dead
// temps carry taint nobody observes (temps are cleared at TB entry anyway).
// Control flow, memory ops, flags and helper calls are never touched.
#pragma once

#include <cstdint>

#include "tcg/ir.h"

namespace chaser::tcg {

struct OptimizerStats {
  std::uint64_t movs_forwarded = 0;
  std::uint64_t dead_ops_removed = 0;
};

/// Optimize `tb` in place. Returns what was done.
OptimizerStats Optimize(TranslationBlock* tb);

}  // namespace chaser::tcg

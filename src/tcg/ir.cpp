#include "tcg/ir.h"

#include "common/strings.h"

namespace chaser::tcg {

const char* TcgOpcName(TcgOpc opc) {
  switch (opc) {
    case TcgOpc::kInsnStart: return "insn_start";
    case TcgOpc::kMovI: return "movi_i64";
    case TcgOpc::kMov: return "mov_i64";
    case TcgOpc::kAdd: return "add_i64";
    case TcgOpc::kSub: return "sub_i64";
    case TcgOpc::kMul: return "mul_i64";
    case TcgOpc::kDivS: return "div_i64";
    case TcgOpc::kDivU: return "divu_i64";
    case TcgOpc::kRemS: return "rem_i64";
    case TcgOpc::kRemU: return "remu_i64";
    case TcgOpc::kAnd: return "and_i64";
    case TcgOpc::kOr: return "or_i64";
    case TcgOpc::kXor: return "xor_i64";
    case TcgOpc::kShl: return "shl_i64";
    case TcgOpc::kShr: return "shr_i64";
    case TcgOpc::kSar: return "sar_i64";
    case TcgOpc::kNot: return "not_i64";
    case TcgOpc::kNeg: return "neg_i64";
    case TcgOpc::kQemuLd: return "qemu_ld_i64";
    case TcgOpc::kQemuSt: return "qemu_st_i64";
    case TcgOpc::kFAdd: return "helper_fadd";
    case TcgOpc::kFSub: return "helper_fsub";
    case TcgOpc::kFMul: return "helper_fmul";
    case TcgOpc::kFDiv: return "helper_fdiv";
    case TcgOpc::kFNeg: return "helper_fneg";
    case TcgOpc::kFAbs: return "helper_fabs";
    case TcgOpc::kFSqrt: return "helper_fsqrt";
    case TcgOpc::kFMin: return "helper_fmin";
    case TcgOpc::kFMax: return "helper_fmax";
    case TcgOpc::kCvtIF: return "helper_cvt_i2f";
    case TcgOpc::kCvtFI: return "helper_cvt_f2i";
    case TcgOpc::kSetFlags: return "setflags";
    case TcgOpc::kSetFlagsF: return "setflags_f";
    case TcgOpc::kCallHelper: return "call";
    case TcgOpc::kGotoTb: return "goto_tb";
    case TcgOpc::kBrCond: return "brcond";
    case TcgOpc::kExitTb: return "exit_tb";
  }
  return "?";
}

namespace {

std::string ValName(ValId v) {
  if (v < kEnvFpBase) return StrFormat("env.r%u", v);
  if (v < kNumEnvSlots) {
    if (v == kEnvFlags) return "env.flags";
    return StrFormat("env.f%u", v - kEnvFpBase);
  }
  return StrFormat("tmp%u", v - kTempBase);
}

/// Second operand as the optimizer left it: a fused immediate or a slot.
std::string Src2Name(const TcgOp& op) {
  if (op.src2_imm) {
    return StrFormat("$%llu", static_cast<unsigned long long>(op.imm));
  }
  return ValName(op.src2);
}

/// Fused address displacement of a load/store ("+$disp"), empty if unfused.
std::string AddrDisp(const TcgOp& op) {
  if (!op.addr_fused) return "";
  return StrFormat("+$%llu", static_cast<unsigned long long>(op.imm2));
}

const char* HelperName(HelperId h) {
  switch (h) {
    case HelperId::kSyscall: return "helper_syscall";
    case HelperId::kFaultInjector: return "DECAF_inject_fault";
    case HelperId::kHaltTrap: return "helper_halt";
  }
  return "?";
}

}  // namespace

std::string PrintTb(const TranslationBlock& tb) {
  std::string out =
      StrFormat("TB pc=#%llu insns=%u temps=%u%s\n",
                static_cast<unsigned long long>(tb.start_pc), tb.num_insns,
                tb.num_temps, tb.instrumented ? " [instrumented]" : "");
  for (const TcgOp& op : tb.ops) {
    if (op.insn_boundary) {
      out += StrFormat(" ---- insn_start #%llu (folded)\n",
                       static_cast<unsigned long long>(op.guest_pc));
    }
    switch (op.opc) {
      case TcgOpc::kInsnStart:
        out += StrFormat(" ---- insn_start #%llu\n",
                         static_cast<unsigned long long>(op.imm));
        break;
      case TcgOpc::kMovI:
        out += StrFormat("  %s %s, $%llu\n", TcgOpcName(op.opc),
                         ValName(op.dst).c_str(),
                         static_cast<unsigned long long>(op.imm));
        break;
      case TcgOpc::kMov:
      case TcgOpc::kNot:
      case TcgOpc::kNeg:
      case TcgOpc::kFNeg:
      case TcgOpc::kFAbs:
      case TcgOpc::kFSqrt:
      case TcgOpc::kCvtIF:
      case TcgOpc::kCvtFI:
        out += StrFormat("  %s %s, %s\n", TcgOpcName(op.opc),
                         ValName(op.dst).c_str(), ValName(op.src1).c_str());
        break;
      case TcgOpc::kQemuLd:
        out += StrFormat("  %s %s, [%s%s] sz=%u%s\n", TcgOpcName(op.opc),
                         ValName(op.dst).c_str(), ValName(op.src1).c_str(),
                         AddrDisp(op).c_str(), static_cast<unsigned>(op.size),
                         op.sign ? " sext" : "");
        break;
      case TcgOpc::kQemuSt:
        out += StrFormat("  %s [%s%s], %s sz=%u\n", TcgOpcName(op.opc),
                         ValName(op.src1).c_str(), AddrDisp(op).c_str(),
                         Src2Name(op).c_str(), static_cast<unsigned>(op.size));
        break;
      case TcgOpc::kSetFlags:
      case TcgOpc::kSetFlagsF:
        out += StrFormat("  %s %s, %s\n", TcgOpcName(op.opc),
                         ValName(op.src1).c_str(), Src2Name(op).c_str());
        break;
      case TcgOpc::kCallHelper:
        out += StrFormat("  %s %s, $pc=%llu\n", TcgOpcName(op.opc),
                         HelperName(op.helper),
                         static_cast<unsigned long long>(op.imm));
        break;
      case TcgOpc::kGotoTb:
        out += StrFormat("  %s #%llu\n", TcgOpcName(op.opc),
                         static_cast<unsigned long long>(op.imm));
        break;
      case TcgOpc::kBrCond:
        out += StrFormat("  %s %s -> #%llu else #%llu\n", TcgOpcName(op.opc),
                         guest::CondName(op.cond),
                         static_cast<unsigned long long>(op.imm),
                         static_cast<unsigned long long>(op.imm2));
        break;
      case TcgOpc::kExitTb:
        out += StrFormat("  %s [%s]\n", TcgOpcName(op.opc), ValName(op.src1).c_str());
        break;
      default:
        out += StrFormat("  %s %s, %s, %s\n", TcgOpcName(op.opc),
                         ValName(op.dst).c_str(), ValName(op.src1).c_str(),
                         Src2Name(op).c_str());
        break;
    }
  }
  return out;
}

}  // namespace chaser::tcg

// Process-wide shared translation cache (the cross-trial JIT cache).
//
// Translation is a pure function of (program, instrument predicate,
// translator/optimizer options, pc) — see Translator::Translate — so TBs
// produced by one trial's VM are byte-for-byte the TBs every other trial
// would produce for the same key. Campaign drivers exploit that: every
// worker's VMs point at one SharedTbCache and a campaign translates each TB
// once, not once per trial.
//
// Concurrency model (what TSan is asked to watch):
//
//  * the read path is lock-free and wait-free: a fixed power-of-two array of
//    atomic bucket heads, each an insert-only singly linked chain. Readers
//    acquire-load the head and walk immutable nodes;
//  * writers serialise on one mutex, re-check the chain for a racing winner,
//    then publish a prepended node with a release store;
//  * published nodes are immutable forever. Invalidation is *logical*:
//    Flush() bumps the epoch and lookups skip nodes from older epochs, so no
//    reader can ever observe a freed TB. Retired nodes are reclaimed when
//    the cache itself is destroyed (campaign end).
//
// Capacity: an optional live-TB cap with QEMU's overflow semantics — when an
// insert would exceed the cap, the whole cache is (logically) flushed and the
// translation starts over into a fresh epoch; evictions are surfaced in
// stats rather than happening silently.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "guest/program.h"
#include "tcg/ir.h"

namespace chaser::tcg {

class SharedTbCache {
 public:
  /// Full cache identity of one TB: which program image, which translation
  /// variant (instrument predicate + translator/optimizer options), which pc.
  struct Key {
    std::uint64_t program = 0;  // HashProgram() of the guest image
    std::uint64_t variant = 0;  // non-zero; 0 means "not shareable"
    std::uint64_t pc = 0;
  };

  struct Stats {
    std::uint64_t translations = 0;   // TBs inserted (translated by some VM)
    std::uint64_t reuses = 0;         // lookups served from the cache
    std::uint64_t epoch_flushes = 0;  // logical full flushes (incl. overflow)
    std::uint64_t evicted_tbs = 0;    // live TBs retired by those flushes
  };

  /// `max_tbs` caps the *live* TB count; 0 = unlimited. Overflow triggers a
  /// full logical flush (epoch bump), QEMU-style.
  explicit SharedTbCache(std::uint64_t max_tbs = 0) : max_tbs_(max_tbs) {}

  SharedTbCache(const SharedTbCache&) = delete;
  SharedTbCache& operator=(const SharedTbCache&) = delete;

  /// Lock-free lookup. Returns the canonical TB for `key`, or nullptr on
  /// miss. The pointer stays valid (and the TB immutable) for the cache's
  /// whole lifetime, across any number of flushes.
  const TranslationBlock* Lookup(const Key& key) const;

  /// Publish a freshly translated TB for `key` and return the canonical
  /// pointer — which is an earlier racing winner's TB if two workers
  /// translated the same key concurrently (the duplicate is discarded).
  const TranslationBlock* Insert(const Key& key, TranslationBlock tb);

  /// Logical full flush: bump the epoch so every cached TB stops matching.
  /// No TB is destroyed — readers holding pointers are unaffected.
  void Flush();

  /// Live TBs in the current epoch.
  std::uint64_t size() const;

  Stats stats() const;

  /// Fingerprint of a guest program image for Key::program. Field-by-field
  /// FNV over name/text/data/bss/entry (never raw struct bytes — padding).
  static std::uint64_t HashProgram(const guest::Program& prog);

 private:
  struct Node {
    Key key;
    std::uint64_t epoch = 0;
    TranslationBlock tb;
    Node* next = nullptr;  // chain link, immutable once published
  };

  static constexpr std::size_t kBuckets = 1024;  // power of two

  static std::size_t BucketOf(const Key& key);
  static bool KeyEq(const Key& a, const Key& b) {
    return a.program == b.program && a.variant == b.variant && a.pc == b.pc;
  }

  std::array<std::atomic<Node*>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> epoch_{0};
  mutable std::atomic<std::uint64_t> reuses_{0};

  mutable std::mutex mutex_;                   // guards everything below
  std::vector<std::unique_ptr<Node>> nodes_;   // owns every node ever made
  std::uint64_t max_tbs_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t translations_ = 0;
  std::uint64_t epoch_flushes_ = 0;
  std::uint64_t evicted_tbs_ = 0;
};

}  // namespace chaser::tcg

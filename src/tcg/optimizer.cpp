#include "tcg/optimizer.h"

#include <functional>
#include <vector>

namespace chaser::tcg {
namespace {

/// True if the op computes a pure value into `dst` (no memory/control/helper
/// side effects), so it can be re-targeted or dropped.
bool IsPureValueOp(const TcgOp& op) {
  switch (op.opc) {
    case TcgOpc::kMovI:
    case TcgOpc::kMov:
    case TcgOpc::kAdd:
    case TcgOpc::kSub:
    case TcgOpc::kMul:
    case TcgOpc::kAnd:
    case TcgOpc::kOr:
    case TcgOpc::kXor:
    case TcgOpc::kShl:
    case TcgOpc::kShr:
    case TcgOpc::kSar:
    case TcgOpc::kNot:
    case TcgOpc::kNeg:
    case TcgOpc::kFAdd:
    case TcgOpc::kFSub:
    case TcgOpc::kFMul:
    case TcgOpc::kFDiv:
    case TcgOpc::kFNeg:
    case TcgOpc::kFAbs:
    case TcgOpc::kFSqrt:
    case TcgOpc::kFMin:
    case TcgOpc::kFMax:
    case TcgOpc::kCvtIF:
    case TcgOpc::kCvtFI:
      return true;
    // Division can trap (the engine raises SIGFPE): never moved or dropped.
    case TcgOpc::kDivS:
    case TcgOpc::kDivU:
    case TcgOpc::kRemS:
    case TcgOpc::kRemU:
    default:
      return false;
  }
}

/// True if the op *loads* a value into op.dst (pure or with side effects that
/// must stay, like kQemuLd) — used to decide whether dst may be re-targeted.
bool WritesDst(const TcgOp& op) {
  switch (op.opc) {
    case TcgOpc::kQemuSt:
    case TcgOpc::kSetFlags:
    case TcgOpc::kSetFlagsF:
    case TcgOpc::kCallHelper:
    case TcgOpc::kGotoTb:
    case TcgOpc::kBrCond:
    case TcgOpc::kExitTb:
    case TcgOpc::kInsnStart:
      return false;
    default:
      return true;
  }
}

/// Source operands actually read by the op.
void ForEachSource(const TcgOp& op, const std::function<void(ValId)>& fn) {
  switch (op.opc) {
    case TcgOpc::kInsnStart:
    case TcgOpc::kMovI:
    case TcgOpc::kCallHelper:
    case TcgOpc::kGotoTb:
    case TcgOpc::kBrCond:  // reads the flags env slot, never a temp
      break;
    case TcgOpc::kMov:
    case TcgOpc::kNot:
    case TcgOpc::kNeg:
    case TcgOpc::kFNeg:
    case TcgOpc::kFAbs:
    case TcgOpc::kFSqrt:
    case TcgOpc::kCvtIF:
    case TcgOpc::kCvtFI:
    case TcgOpc::kQemuLd:
    case TcgOpc::kExitTb:
      fn(op.src1);
      break;
    case TcgOpc::kQemuSt:
    case TcgOpc::kSetFlags:
    case TcgOpc::kSetFlagsF:
    default:
      fn(op.src1);
      fn(op.src2);
      break;
  }
}

}  // namespace

OptimizerStats Optimize(TranslationBlock* tb) {
  OptimizerStats stats;
  std::vector<TcgOp>& ops = tb->ops;

  // Count temp uses across the TB (a temp read by two ops must keep its mov).
  std::vector<std::uint32_t> uses(tb->num_temps, 0);
  for (const TcgOp& op : ops) {
    ForEachSource(op, [&](ValId v) {
      if (IsTemp(v)) ++uses[v - kTempBase];
    });
  }

  // Pass 1: forward `op tN, ...; mov dst, tN` into `op dst, ...` when tN is
  // produced by a value-writing op and consumed only by that adjacent mov.
  std::vector<bool> removed(ops.size(), false);
  for (std::size_t i = 0; i + 1 < ops.size(); ++i) {
    if (removed[i]) continue;
    TcgOp& def = ops[i];
    TcgOp& mov = ops[i + 1];
    if (mov.opc != TcgOpc::kMov || !IsTemp(mov.src1)) continue;
    if (!WritesDst(def) || def.dst != mov.src1) continue;
    if (!IsPureValueOp(def) && def.opc != TcgOpc::kQemuLd) continue;
    if (uses[def.dst - kTempBase] != 1) continue;
    if (def.opc == TcgOpc::kMov && def.src1 == mov.dst) {
      // mov t, x; mov x, t -> degenerate; the general rewrite handles it.
    }
    def.dst = mov.dst;
    removed[i + 1] = true;
    ++stats.movs_forwarded;
  }

  // Pass 2: backward liveness over temps; drop pure ops with dead temp dsts.
  std::vector<bool> live(tb->num_temps, false);
  for (std::size_t ri = ops.size(); ri-- > 0;) {
    if (removed[ri]) continue;
    const TcgOp& op = ops[ri];
    if (WritesDst(op) && IsTemp(op.dst)) {
      const std::size_t t = op.dst - kTempBase;
      if (!live[t] && IsPureValueOp(op)) {
        removed[ri] = true;
        ++stats.dead_ops_removed;
        continue;  // its sources are not made live
      }
      live[t] = false;  // killed above this point
    }
    ForEachSource(op, [&](ValId v) {
      if (IsTemp(v)) live[v - kTempBase] = true;
    });
  }

  if (stats.movs_forwarded > 0 || stats.dead_ops_removed > 0) {
    std::vector<TcgOp> kept;
    kept.reserve(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (!removed[i]) kept.push_back(ops[i]);
    }
    ops = std::move(kept);
  }
  return stats;
}

}  // namespace chaser::tcg

#include "tcg/optimizer.h"

#include <algorithm>
#include <functional>
#include <vector>

namespace chaser::tcg {
namespace {

/// True if the op computes a pure value into `dst` (no memory/control/helper
/// side effects), so it can be re-targeted or dropped.
bool IsPureValueOp(const TcgOp& op) {
  switch (op.opc) {
    case TcgOpc::kMovI:
    case TcgOpc::kMov:
    case TcgOpc::kAdd:
    case TcgOpc::kSub:
    case TcgOpc::kMul:
    case TcgOpc::kAnd:
    case TcgOpc::kOr:
    case TcgOpc::kXor:
    case TcgOpc::kShl:
    case TcgOpc::kShr:
    case TcgOpc::kSar:
    case TcgOpc::kNot:
    case TcgOpc::kNeg:
    case TcgOpc::kFAdd:
    case TcgOpc::kFSub:
    case TcgOpc::kFMul:
    case TcgOpc::kFDiv:
    case TcgOpc::kFNeg:
    case TcgOpc::kFAbs:
    case TcgOpc::kFSqrt:
    case TcgOpc::kFMin:
    case TcgOpc::kFMax:
    case TcgOpc::kCvtIF:
    case TcgOpc::kCvtFI:
      return true;
    // Division can trap (the engine raises SIGFPE): never moved or dropped.
    case TcgOpc::kDivS:
    case TcgOpc::kDivU:
    case TcgOpc::kRemS:
    case TcgOpc::kRemU:
    default:
      return false;
  }
}

/// True if the op *loads* a value into op.dst (pure or with side effects that
/// must stay, like kQemuLd) — used to decide whether dst may be re-targeted.
bool WritesDst(const TcgOp& op) {
  switch (op.opc) {
    case TcgOpc::kQemuSt:
    case TcgOpc::kSetFlags:
    case TcgOpc::kSetFlagsF:
    case TcgOpc::kCallHelper:
    case TcgOpc::kGotoTb:
    case TcgOpc::kBrCond:
    case TcgOpc::kExitTb:
    case TcgOpc::kInsnStart:
      return false;
    default:
      return true;
  }
}

/// Source operands actually read by the op.
void ForEachSource(const TcgOp& op, const std::function<void(ValId)>& fn) {
  switch (op.opc) {
    case TcgOpc::kInsnStart:
    case TcgOpc::kMovI:
    case TcgOpc::kCallHelper:
    case TcgOpc::kGotoTb:
    case TcgOpc::kBrCond:  // reads the flags env slot, never a temp
      break;
    case TcgOpc::kMov:
    case TcgOpc::kNot:
    case TcgOpc::kNeg:
    case TcgOpc::kFNeg:
    case TcgOpc::kFAbs:
    case TcgOpc::kFSqrt:
    case TcgOpc::kCvtIF:
    case TcgOpc::kCvtFI:
    case TcgOpc::kQemuLd:
    case TcgOpc::kExitTb:
      fn(op.src1);
      break;
    case TcgOpc::kQemuSt:
    case TcgOpc::kSetFlags:
    case TcgOpc::kSetFlagsF:
    default:
      fn(op.src1);
      if (!op.src2_imm) fn(op.src2);  // fused src2 is an immediate, not a read
      break;
  }
}

/// Ops whose second operand may be folded to an immediate (src2_imm). The
/// interpreter reads `imm` instead of src2 for these; every other opcode
/// keeps its register operand. Division stays fusible — fusion changes where
/// the operand comes from, not its value, so trap behaviour is unchanged.
bool FusesImmSrc2(TcgOpc opc) {
  switch (opc) {
    case TcgOpc::kAdd:
    case TcgOpc::kSub:
    case TcgOpc::kMul:
    case TcgOpc::kDivS:
    case TcgOpc::kDivU:
    case TcgOpc::kRemS:
    case TcgOpc::kRemU:
    case TcgOpc::kAnd:
    case TcgOpc::kOr:
    case TcgOpc::kXor:
    case TcgOpc::kShl:
    case TcgOpc::kShr:
    case TcgOpc::kSar:
    case TcgOpc::kSetFlags:
    case TcgOpc::kQemuSt:  // stored value; the address operand is src1
      return true;
    default:
      return false;
  }
}

}  // namespace

OptimizerStats Optimize(TranslationBlock* tb) {
  OptimizerStats stats;
  std::vector<TcgOp>& ops = tb->ops;

  // Count temp uses across the TB (a temp read by two ops must keep its mov).
  std::vector<std::uint32_t> uses(tb->num_temps, 0);
  for (const TcgOp& op : ops) {
    ForEachSource(op, [&](ValId v) {
      if (IsTemp(v)) ++uses[v - kTempBase];
    });
  }

  // Pass 1: forward `op tN, ...; mov dst, tN` into `op dst, ...` when tN is
  // produced by a value-writing op and consumed only by that adjacent mov.
  std::vector<bool> removed(ops.size(), false);
  for (std::size_t i = 0; i + 1 < ops.size(); ++i) {
    if (removed[i]) continue;
    TcgOp& def = ops[i];
    TcgOp& mov = ops[i + 1];
    if (mov.opc != TcgOpc::kMov || !IsTemp(mov.src1)) continue;
    if (!WritesDst(def) || def.dst != mov.src1) continue;
    if (!IsPureValueOp(def) && def.opc != TcgOpc::kQemuLd) continue;
    if (uses[def.dst - kTempBase] != 1) continue;
    if (def.opc == TcgOpc::kMov && def.src1 == mov.dst) {
      // mov t, x; mov x, t -> degenerate; the general rewrite handles it.
    }
    def.dst = mov.dst;
    removed[i + 1] = true;
    ++stats.movs_forwarded;
  }

  // Pass 2: immediate fusion. The translator materialises every immediate
  // through a kMovI temp; when that temp's single consumer is the next
  // surviving op, fold the constant into the consumer (src2_imm) and drop
  // the kMovI. A fused `kAdd t, base, #disp` whose single consumer is the
  // next load/store then folds into the memory op's address (addr_fused) —
  // together these turn `movi; add; ld` into one base+displacement load.
  // Temp-use counts are recomputed first: pass 1 retargeted defs.
  std::fill(uses.begin(), uses.end(), 0u);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (removed[i]) continue;
    ForEachSource(ops[i], [&](ValId v) {
      if (IsTemp(v)) ++uses[v - kTempBase];
    });
  }
  auto next_live = [&](std::size_t i) {
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      if (!removed[j]) return j;
    }
    return ops.size();
  };
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (removed[i]) continue;
    TcgOp& def = ops[i];
    if (!IsTemp(def.dst)) continue;
    const std::size_t j = next_live(i);
    if (j == ops.size()) continue;
    TcgOp& use = ops[j];
    if (def.opc == TcgOpc::kMovI && uses[def.dst - kTempBase] == 1 &&
        FusesImmSrc2(use.opc) && !use.src2_imm && use.src2 == def.dst &&
        use.src1 != def.dst) {
      // src2 keeps naming the (now dead, always clean) temp for taint reads.
      use.src2_imm = true;
      use.imm = def.imm;
      removed[i] = true;
      ++stats.imms_fused;
    } else if (def.opc == TcgOpc::kAdd && def.src2_imm &&
               uses[def.dst - kTempBase] == 1 &&
               (use.opc == TcgOpc::kQemuLd || use.opc == TcgOpc::kQemuSt) &&
               !use.addr_fused && use.src1 == def.dst &&
               !(use.opc == TcgOpc::kQemuSt && !use.src2_imm &&
                 use.src2 == def.dst)) {
      use.src1 = def.src1;
      use.imm2 = def.imm;
      use.addr_fused = true;
      removed[i] = true;
      ++stats.addrs_fused;
    }
  }

  // Pass 3: backward liveness over temps; drop pure ops with dead temp dsts.
  std::vector<bool> live(tb->num_temps, false);
  for (std::size_t ri = ops.size(); ri-- > 0;) {
    if (removed[ri]) continue;
    const TcgOp& op = ops[ri];
    if (WritesDst(op) && IsTemp(op.dst)) {
      const std::size_t t = op.dst - kTempBase;
      if (!live[t] && IsPureValueOp(op)) {
        removed[ri] = true;
        ++stats.dead_ops_removed;
        continue;  // its sources are not made live
      }
      live[t] = false;  // killed above this point
    }
    ForEachSource(op, [&](ValId v) {
      if (IsTemp(v)) live[v - kTempBase] = true;
    });
  }

  // Pass 4: fold each kInsnStart into the next surviving op of the same
  // stream as an insn_boundary flag. Consecutive kInsnStarts (a kNop's
  // boundary) keep the first one as an explicit op.
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (removed[i] || ops[i].opc != TcgOpc::kInsnStart) continue;
    const std::size_t j = next_live(i);
    if (j == ops.size()) continue;
    if (ops[j].opc == TcgOpc::kInsnStart || ops[j].insn_boundary) continue;
    ops[j].insn_boundary = true;
    removed[i] = true;
    ++stats.insn_starts_folded;
  }

  if (stats.movs_forwarded > 0 || stats.dead_ops_removed > 0 ||
      stats.imms_fused > 0 || stats.addrs_fused > 0 ||
      stats.insn_starts_folded > 0) {
    std::vector<TcgOp> kept;
    kept.reserve(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (!removed[i]) kept.push_back(ops[i]);
    }
    ops = std::move(kept);
  }
  return stats;
}

}  // namespace chaser::tcg

// TCG-like intermediate representation.
//
// QEMU translates each guest basic block into a Translation Block (TB) of
// architecture-independent TCG ops; DECAF enforces taint-propagation rules at
// this level, and Chaser splices its fault-injection helper call into the IR
// of targeted instructions (paper Fig. 3). We mirror that structure: a
// Translator (src/tcg/translator.*) lowers GISA-64 instructions into TcgOps,
// and the execution engine (src/vm) interprets them, with the taint engine
// (src/taint) shadowing every IR value.
//
// Value space: a single index space of "value slots".
//   [0, 16)   guest integer registers r0..r15
//   [16, 32)  guest FP registers f0..f15 (as 64-bit patterns)
//   32        flags register (bit0 = eq, bit1 = lt-signed, bit2 = lt-unsigned)
//   [64, ...) per-TB temporaries t0, t1, ...
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "guest/isa.h"

namespace chaser::tcg {

using ValId = std::uint16_t;

inline constexpr ValId kEnvIntBase = 0;
inline constexpr ValId kEnvFpBase = 16;
inline constexpr ValId kEnvFlags = 32;
inline constexpr ValId kNumEnvSlots = 33;
inline constexpr ValId kTempBase = 64;

constexpr ValId EnvInt(unsigned r) { return static_cast<ValId>(kEnvIntBase + r); }
constexpr ValId EnvFp(unsigned f) { return static_cast<ValId>(kEnvFpBase + f); }
constexpr bool IsEnvSlot(ValId v) { return v < kNumEnvSlots; }
constexpr bool IsTemp(ValId v) { return v >= kTempBase; }

/// Flags register bit layout.
inline constexpr std::uint64_t kFlagEq = 1u << 0;
inline constexpr std::uint64_t kFlagLtS = 1u << 1;
inline constexpr std::uint64_t kFlagLtU = 1u << 2;

enum class TcgOpc : std::uint8_t {
  kInsnStart,   // marks a guest instruction boundary; imm = guest pc index
  kMovI,        // dst <- imm
  kMov,         // dst <- src1

  // Integer ALU on 64-bit values.
  kAdd, kSub, kMul, kDivS, kDivU, kRemS, kRemU,
  kAnd, kOr, kXor, kShl, kShr, kSar, kNot, kNeg,

  // Memory (guest virtual addresses; soft-MMU applies).
  kQemuLd,      // dst <- mem[src1]; size bytes; sign-extend if `sign`
  kQemuSt,      // mem[src1] <- src2; size bytes

  // FP helpers (operate on 64-bit double bit patterns, like softfloat calls).
  kFAdd, kFSub, kFMul, kFDiv, kFNeg, kFAbs, kFSqrt, kFMin, kFMax,
  kCvtIF,       // dst <- bits(double(int64 src1))
  kCvtFI,       // dst <- int64(trunc(double bits src1))

  // Flag computation (dst is always kEnvFlags).
  kSetFlags,    // flags from signed/unsigned compare of src1 ? src2
  kSetFlagsF,   // flags from double compare of bits(src1) ? bits(src2)

  // Host helper invocation (syscalls, fault injector, halt trap).
  kCallHelper,  // helper id in `helper`, guest pc in imm

  // TB terminators.
  kGotoTb,      // static successor: next pc index = imm
  kBrCond,      // if flags satisfy `cond` -> pc = imm else pc = imm2
  kExitTb,      // dynamic successor: next pc index = value of src1
};

/// Number of TcgOpc values — sizes the threaded-dispatch jump table, which
/// must list one label per opcode in exact enum order.
inline constexpr std::size_t kNumTcgOpcs =
    static_cast<std::size_t>(TcgOpc::kExitTb) + 1;
static_assert(kNumTcgOpcs == 37, "update dispatch tables when adding opcodes");

/// Host helpers reachable from IR.
enum class HelperId : std::uint8_t {
  kSyscall = 1,
  kFaultInjector = 2,  // Chaser's DECAF_inject_fault equivalent
  kHaltTrap = 3,
};

struct TcgOp {
  TcgOpc opc = TcgOpc::kInsnStart;
  ValId dst = 0;
  ValId src1 = 0;
  ValId src2 = 0;
  guest::MemSize size = guest::MemSize::k8;
  bool sign = false;
  // Optimizer immediate fusion (never set by the translator):
  //  * src2_imm — the second operand is `imm`, not the value slot in src2.
  //    src2 still names the dead kMovI temp so taint reads stay valid (the
  //    temp is cleared at TB entry and nothing else writes it, so its taint
  //    is exactly the 0 the folded kMovI would have produced).
  //  * addr_fused (kQemuLd/kQemuSt) — the effective address is
  //    val(src1) + imm2; the folded kAdd's taint rule is applied to the
  //    base's taint by the interpreter. Unfused memory ops keep imm2 == 0,
  //    so the address math needs no branch.
  bool src2_imm = false;
  bool addr_fused = false;
  //  * insn_boundary — this op absorbed the preceding kInsnStart: the
  //    dispatch glue runs the per-instruction bookkeeping (instret, budget,
  //    watchdog, sample/trace hooks) before executing it. guest_pc supplies
  //    the instruction index the folded kInsnStart carried in imm.
  bool insn_boundary = false;
  guest::Cond cond = guest::Cond::kEq;
  HelperId helper = HelperId::kSyscall;
  std::uint64_t imm = 0;
  std::uint64_t imm2 = 0;
  std::uint64_t guest_pc = 0;  // index of the guest instruction that produced this op
};

/// A translated block of guest code, cached by the execution engine.
struct TranslationBlock {
  std::uint64_t start_pc = 0;       // first guest instruction index
  std::uint32_t num_insns = 0;      // guest instructions covered
  std::uint16_t num_temps = 0;      // temporaries used (t0..tN-1)
  bool instrumented = false;        // true if any injector call was spliced in
  std::vector<TcgOp> ops;
};

/// True if `cond` holds for a packed flags value. Inline: evaluated for
/// every conditional branch the interpreter executes.
inline bool CondHolds(guest::Cond cond, std::uint64_t flags) {
  const bool eq = (flags & kFlagEq) != 0;
  const bool lt_s = (flags & kFlagLtS) != 0;
  const bool lt_u = (flags & kFlagLtU) != 0;
  switch (cond) {
    case guest::Cond::kEq: return eq;
    case guest::Cond::kNe: return !eq;
    case guest::Cond::kLt: return lt_s;
    case guest::Cond::kLe: return lt_s || eq;
    case guest::Cond::kGt: return !(lt_s || eq);
    case guest::Cond::kGe: return !lt_s;
    case guest::Cond::kLtU: return lt_u;
    case guest::Cond::kGeU: return !lt_u;
  }
  return false;
}

/// Compute packed flags for an integer compare lhs ? rhs. Inline: one call
/// per kSetFlags op.
inline std::uint64_t ComputeFlags(std::uint64_t lhs, std::uint64_t rhs) {
  std::uint64_t flags = 0;
  if (lhs == rhs) flags |= kFlagEq;
  if (static_cast<std::int64_t>(lhs) < static_cast<std::int64_t>(rhs)) flags |= kFlagLtS;
  if (lhs < rhs) flags |= kFlagLtU;
  return flags;
}

/// Compute packed flags for a double compare (unordered -> no flags set).
inline std::uint64_t ComputeFlagsF(double lhs, double rhs) {
  std::uint64_t flags = 0;
  if (lhs == rhs) flags |= kFlagEq;
  if (lhs < rhs) flags |= kFlagLtS | kFlagLtU;
  return flags;  // NaN compares: no flags (matches x86 unordered semantics loosely)
}

const char* TcgOpcName(TcgOpc opc);

/// Printable listing of a TB (for tests and debugging).
std::string PrintTb(const TranslationBlock& tb);

}  // namespace chaser::tcg

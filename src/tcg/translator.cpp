#include "tcg/translator.h"

#include <bit>

#include "common/error.h"
#include "common/strings.h"
#include "guest/operands.h"

namespace chaser::tcg {
namespace {

/// Incrementally builds the op list for one TB.
class TbBuilder {
 public:
  explicit TbBuilder(std::uint64_t start_pc) { tb_.start_pc = start_pc; }

  ValId Temp() {
    const ValId t = static_cast<ValId>(kTempBase + tb_.num_temps);
    ++tb_.num_temps;
    return t;
  }

  void Emit(TcgOp op) {
    op.guest_pc = cur_pc_;
    tb_.ops.push_back(op);
  }

  void InsnStart(std::uint64_t pc) {
    cur_pc_ = pc;
    Emit({.opc = TcgOpc::kInsnStart, .imm = pc});
    ++tb_.num_insns;
  }

  ValId MovI(std::uint64_t v) {
    const ValId t = Temp();
    Emit({.opc = TcgOpc::kMovI, .dst = t, .imm = v});
    return t;
  }

  ValId Mov(ValId src) {
    const ValId t = Temp();
    Emit({.opc = TcgOpc::kMov, .dst = t, .src1 = src});
    return t;
  }

  void MovTo(ValId dst, ValId src) {
    Emit({.opc = TcgOpc::kMov, .dst = dst, .src1 = src});
  }

  ValId Bin(TcgOpc opc, ValId a, ValId b) {
    const ValId t = Temp();
    Emit({.opc = opc, .dst = t, .src1 = a, .src2 = b});
    return t;
  }

  ValId Un(TcgOpc opc, ValId a) {
    const ValId t = Temp();
    Emit({.opc = opc, .dst = t, .src1 = a});
    return t;
  }

  TranslationBlock Take() { return std::move(tb_); }

 private:
  TranslationBlock tb_;
  std::uint64_t cur_pc_ = 0;
};

TcgOpc AluOpc(guest::Opcode op) {
  using GO = guest::Opcode;
  switch (op) {
    case GO::kAdd: return TcgOpc::kAdd;
    case GO::kSub: return TcgOpc::kSub;
    case GO::kMul: return TcgOpc::kMul;
    case GO::kDivS: return TcgOpc::kDivS;
    case GO::kDivU: return TcgOpc::kDivU;
    case GO::kRemS: return TcgOpc::kRemS;
    case GO::kRemU: return TcgOpc::kRemU;
    case GO::kAnd: return TcgOpc::kAnd;
    case GO::kOr: return TcgOpc::kOr;
    case GO::kXor: return TcgOpc::kXor;
    case GO::kShl: return TcgOpc::kShl;
    case GO::kShr: return TcgOpc::kShr;
    case GO::kSar: return TcgOpc::kSar;
    default: throw ConfigError("AluOpc: not an ALU opcode");
  }
}

TcgOpc FaluOpc(guest::Opcode op) {
  using GO = guest::Opcode;
  switch (op) {
    case GO::kFadd: return TcgOpc::kFAdd;
    case GO::kFsub: return TcgOpc::kFSub;
    case GO::kFmul: return TcgOpc::kFMul;
    case GO::kFdiv: return TcgOpc::kFDiv;
    case GO::kFmin: return TcgOpc::kFMin;
    case GO::kFmax: return TcgOpc::kFMax;
    default: throw ConfigError("FaluOpc: not an FP ALU opcode");
  }
}

}  // namespace

TranslationBlock Translator::Translate(const guest::Program& prog,
                                       std::uint64_t pc) const {
  using GO = guest::Opcode;
  if (pc >= prog.text.size()) {
    throw ConfigError(StrFormat("Translate: pc #%llu outside text (size %zu)",
                                static_cast<unsigned long long>(pc),
                                prog.text.size()));
  }

  TbBuilder b(pc);
  TranslationBlock result;
  bool ended = false;
  std::uint32_t count = 0;
  bool instrumented = false;

  while (!ended && pc < prog.text.size() && count < options_.max_tb_insns) {
    const guest::Instruction& in = prog.text[pc];
    // ProgramBuilder validates registers at assembly time, but a Program can
    // be built by hand; reject out-of-range register fields here rather than
    // index past the env slot array at execution time.
    if (in.rd >= guest::kNumIntRegs || in.rs1 >= guest::kNumIntRegs ||
        in.rs2 >= guest::kNumIntRegs) {
      throw ConfigError(StrFormat(
          "Translate: instruction #%llu has a register field out of range",
          static_cast<unsigned long long>(pc)));
    }
    b.InsnStart(pc);
    ++count;

    // Chaser hook: splice the injection helper in front of targeted
    // instructions only (Fig. 3(c) in the paper). Result-only instructions
    // (immediate moves) get the helper *after* their IR instead, so the
    // corruption lands on the value the instruction produced.
    const bool target =
        options_.instrument_all ||
        (options_.instrument && options_.instrument(in, pc));
    const bool inject_after = target && guest::CorruptAfter(in);
    if (target && !inject_after) {
      b.Emit({.opc = TcgOpc::kCallHelper,
              .helper = HelperId::kFaultInjector,
              .imm = pc});
      instrumented = true;
    }

    const std::uint64_t next_pc = pc + 1;
    switch (in.op) {
      case GO::kNop:
        break;
      case GO::kHalt:
        b.Emit({.opc = TcgOpc::kCallHelper, .helper = HelperId::kHaltTrap, .imm = pc});
        b.Emit({.opc = TcgOpc::kGotoTb, .imm = next_pc});
        ended = true;
        break;

      case GO::kMovRR:
        b.MovTo(EnvInt(in.rd), EnvInt(in.rs1));
        break;
      case GO::kMovRI: {
        const ValId t = b.MovI(static_cast<std::uint64_t>(in.imm));
        b.MovTo(EnvInt(in.rd), t);
        break;
      }
      case GO::kLd:
      case GO::kLdS: {
        const ValId disp = b.MovI(static_cast<std::uint64_t>(in.imm));
        const ValId addr = b.Bin(TcgOpc::kAdd, EnvInt(in.rs1), disp);
        const ValId t = b.Temp();
        b.Emit({.opc = TcgOpc::kQemuLd,
                .dst = t,
                .src1 = addr,
                .size = in.size,
                .sign = in.op == GO::kLdS});
        b.MovTo(EnvInt(in.rd), t);
        break;
      }
      case GO::kSt: {
        const ValId disp = b.MovI(static_cast<std::uint64_t>(in.imm));
        const ValId addr = b.Bin(TcgOpc::kAdd, EnvInt(in.rs1), disp);
        b.Emit({.opc = TcgOpc::kQemuSt,
                .src1 = addr,
                .src2 = EnvInt(in.rs2),
                .size = in.size});
        break;
      }
      case GO::kPush: {
        const ValId eight = b.MovI(8);
        const ValId nsp = b.Bin(TcgOpc::kSub, EnvInt(guest::kSpReg), eight);
        b.MovTo(EnvInt(guest::kSpReg), nsp);
        b.Emit({.opc = TcgOpc::kQemuSt,
                .src1 = nsp,
                .src2 = EnvInt(in.rs1),
                .size = guest::MemSize::k8});
        break;
      }
      case GO::kPop: {
        const ValId t = b.Temp();
        b.Emit({.opc = TcgOpc::kQemuLd,
                .dst = t,
                .src1 = EnvInt(guest::kSpReg),
                .size = guest::MemSize::k8});
        const ValId eight = b.MovI(8);
        const ValId nsp = b.Bin(TcgOpc::kAdd, EnvInt(guest::kSpReg), eight);
        b.MovTo(EnvInt(guest::kSpReg), nsp);
        b.MovTo(EnvInt(in.rd), t);
        break;
      }

      case GO::kAdd: case GO::kSub: case GO::kMul:
      case GO::kDivS: case GO::kDivU: case GO::kRemS: case GO::kRemU:
      case GO::kAnd: case GO::kOr: case GO::kXor:
      case GO::kShl: case GO::kShr: case GO::kSar: {
        const ValId rhs = in.use_imm ? b.MovI(static_cast<std::uint64_t>(in.imm))
                                     : EnvInt(in.rs2);
        const ValId t = b.Bin(AluOpc(in.op), EnvInt(in.rs1), rhs);
        b.MovTo(EnvInt(in.rd), t);
        break;
      }
      case GO::kNot: {
        const ValId t = b.Un(TcgOpc::kNot, EnvInt(in.rs1));
        b.MovTo(EnvInt(in.rd), t);
        break;
      }
      case GO::kNeg: {
        const ValId t = b.Un(TcgOpc::kNeg, EnvInt(in.rs1));
        b.MovTo(EnvInt(in.rd), t);
        break;
      }

      case GO::kCmp: {
        const ValId rhs = in.use_imm ? b.MovI(static_cast<std::uint64_t>(in.imm))
                                     : EnvInt(in.rs2);
        b.Emit({.opc = TcgOpc::kSetFlags, .dst = kEnvFlags,
                .src1 = EnvInt(in.rs1), .src2 = rhs});
        break;
      }

      case GO::kJmp:
        b.Emit({.opc = TcgOpc::kGotoTb, .imm = static_cast<std::uint64_t>(in.imm)});
        ended = true;
        break;
      case GO::kBr:
        b.Emit({.opc = TcgOpc::kBrCond,
                .cond = in.cond,
                .imm = static_cast<std::uint64_t>(in.imm),
                .imm2 = next_pc});
        ended = true;
        break;
      case GO::kCall:
      case GO::kCallR: {
        const ValId eight = b.MovI(8);
        const ValId nsp = b.Bin(TcgOpc::kSub, EnvInt(guest::kSpReg), eight);
        b.MovTo(EnvInt(guest::kSpReg), nsp);
        const ValId ret = b.MovI(next_pc);
        b.Emit({.opc = TcgOpc::kQemuSt, .src1 = nsp, .src2 = ret,
                .size = guest::MemSize::k8});
        if (in.op == GO::kCall) {
          b.Emit({.opc = TcgOpc::kGotoTb, .imm = static_cast<std::uint64_t>(in.imm)});
        } else {
          const ValId t = b.Mov(EnvInt(in.rs1));
          b.Emit({.opc = TcgOpc::kExitTb, .src1 = t});
        }
        ended = true;
        break;
      }
      case GO::kRet: {
        const ValId t = b.Temp();
        b.Emit({.opc = TcgOpc::kQemuLd, .dst = t, .src1 = EnvInt(guest::kSpReg),
                .size = guest::MemSize::k8});
        const ValId eight = b.MovI(8);
        const ValId nsp = b.Bin(TcgOpc::kAdd, EnvInt(guest::kSpReg), eight);
        b.MovTo(EnvInt(guest::kSpReg), nsp);
        b.Emit({.opc = TcgOpc::kExitTb, .src1 = t});
        ended = true;
        break;
      }

      case GO::kFmovRR:
        b.MovTo(EnvFp(in.rd), EnvFp(in.rs1));
        break;
      case GO::kFmovI: {
        const ValId t = b.MovI(std::bit_cast<std::uint64_t>(in.fimm));
        b.MovTo(EnvFp(in.rd), t);
        break;
      }
      case GO::kFld: {
        const ValId disp = b.MovI(static_cast<std::uint64_t>(in.imm));
        const ValId addr = b.Bin(TcgOpc::kAdd, EnvInt(in.rs1), disp);
        const ValId t = b.Temp();
        b.Emit({.opc = TcgOpc::kQemuLd, .dst = t, .src1 = addr,
                .size = guest::MemSize::k8});
        b.MovTo(EnvFp(in.rd), t);
        break;
      }
      case GO::kFst: {
        const ValId disp = b.MovI(static_cast<std::uint64_t>(in.imm));
        const ValId addr = b.Bin(TcgOpc::kAdd, EnvInt(in.rs1), disp);
        b.Emit({.opc = TcgOpc::kQemuSt, .src1 = addr, .src2 = EnvFp(in.rs2),
                .size = guest::MemSize::k8});
        break;
      }
      case GO::kFadd: case GO::kFsub: case GO::kFmul: case GO::kFdiv:
      case GO::kFmin: case GO::kFmax: {
        const ValId t = b.Bin(FaluOpc(in.op), EnvFp(in.rs1), EnvFp(in.rs2));
        b.MovTo(EnvFp(in.rd), t);
        break;
      }
      case GO::kFneg: {
        const ValId t = b.Un(TcgOpc::kFNeg, EnvFp(in.rs1));
        b.MovTo(EnvFp(in.rd), t);
        break;
      }
      case GO::kFabs: {
        const ValId t = b.Un(TcgOpc::kFAbs, EnvFp(in.rs1));
        b.MovTo(EnvFp(in.rd), t);
        break;
      }
      case GO::kFsqrt: {
        const ValId t = b.Un(TcgOpc::kFSqrt, EnvFp(in.rs1));
        b.MovTo(EnvFp(in.rd), t);
        break;
      }
      case GO::kFcmp:
        b.Emit({.opc = TcgOpc::kSetFlagsF, .dst = kEnvFlags,
                .src1 = EnvFp(in.rs1), .src2 = EnvFp(in.rs2)});
        break;
      case GO::kCvtIF: {
        const ValId t = b.Un(TcgOpc::kCvtIF, EnvInt(in.rs1));
        b.MovTo(EnvFp(in.rd), t);
        break;
      }
      case GO::kCvtFI: {
        const ValId t = b.Un(TcgOpc::kCvtFI, EnvFp(in.rs1));
        b.MovTo(EnvInt(in.rd), t);
        break;
      }
      case GO::kFbits:
        b.MovTo(EnvInt(in.rd), EnvFp(in.rs1));
        break;
      case GO::kBitsF:
        b.MovTo(EnvFp(in.rd), EnvInt(in.rs1));
        break;

      case GO::kSyscall:
        b.Emit({.opc = TcgOpc::kCallHelper, .helper = HelperId::kSyscall, .imm = pc});
        b.Emit({.opc = TcgOpc::kGotoTb, .imm = next_pc});
        ended = true;
        break;
    }
    if (inject_after) {
      b.Emit({.opc = TcgOpc::kCallHelper,
              .helper = HelperId::kFaultInjector,
              .imm = pc});
      instrumented = true;
    }
    pc = next_pc;
  }

  if (!ended) {
    // Block-size cap or fell off the end of text: chain to the next pc (the
    // engine raises a fault if that pc is out of range when executed).
    b.Emit({.opc = TcgOpc::kGotoTb, .imm = pc});
  }

  result = b.Take();
  result.instrumented = instrumented;
  return result;
}

}  // namespace chaser::tcg

#include "store/ctr.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>

#include "analysis/spool.h"
#include "common/crc32.h"
#include "common/error.h"
#include "common/strings.h"

namespace chaser::store {

namespace fs = std::filesystem;

using analysis::AppendVarint;
using analysis::DecodeVarint;
using analysis::ZigZagDecode;
using analysis::ZigZagEncode;

namespace {

constexpr char kCtrMagic[8] = {'C', 'H', 'S', 'C', 'T', 'R', '0', '1'};

// Frame payload tags.
constexpr char kTagHeader = 0x01;
constexpr char kTagBlock = 0x02;
constexpr char kTagFooter = 0x03;

// Column payload modes.
constexpr char kModeRaw = 0;
constexpr char kModeConst = 1;
constexpr char kModeDelta = 2;
constexpr char kModePacked = 3;
constexpr char kModePackedDelta = 4;

/// Upper bound on one frame. A block of 512 records is a few KiB even with
/// pathological strings in the dictionary prelude; anything larger is a
/// corrupt length varint. Matches the hub wire protocol's ceiling.
constexpr std::uint64_t kMaxCtrFrame = 1u << 22;

// FNV-1a over the 8 LE bytes of each run_seed, chained across every record
// of the store. Footers carry the running value so a resume can verify the
// re-derived seed sequence against the stored prefix without decoding
// anything but this one column.
constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t FnvStep(std::uint64_t h, std::uint64_t seed) {
  for (int i = 0; i < 8; ++i) {
    h ^= (seed >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

// sample_weight is stored as its IEEE-754 bit pattern XORed with the bits of
// 1.0: the overwhelmingly common weight 1.0 becomes 0 and const-collapses,
// while any other weight round-trips exactly (resume and estimators need the
// identical double).
constexpr std::uint64_t kOneBits = 0x3ff0000000000000ull;

std::uint64_t WeightToBits(double w) {
  std::uint64_t b = 0;
  std::memcpy(&b, &w, sizeof(b));
  return b ^ kOneBits;
}

double BitsToWeight(std::uint64_t b) {
  b ^= kOneBits;
  double w = 0.0;
  std::memcpy(&w, &b, sizeof(w));
  return w;
}

void AppendU64Le(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU32Le(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t ReadU32Le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::optional<std::uint64_t> ReadU64Le(const std::string& buf,
                                       std::size_t* pos) {
  if (buf.size() - *pos < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(buf[*pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  *pos += 8;
  return v;
}

/// Slurp a whole file in one read (istreambuf_iterator pulls a character at
/// a time — at segment sizes that dominates the entire scan).
void ReadWholeFile(std::ifstream& in, std::string* out) {
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  out->resize(size > 0 ? static_cast<std::size_t>(size) : 0);
  if (!out->empty()) in.read(out->data(), static_cast<std::streamsize>(size));
  if (in.gcount() != size) out->resize(static_cast<std::size_t>(in.gcount()));
}

/// Extract the next intact frame's payload. False when the tail from `*pos`
/// is torn: short, overlong, or failing its CRC — the caller applies the
/// journal's prefix discipline.
bool NextFrame(const std::string& buf, std::size_t* pos, std::string* payload) {
  std::size_t p = *pos;
  const auto len = DecodeVarint(buf, &p);
  if (!len || *len == 0 || *len > kMaxCtrFrame || *len > buf.size() - p ||
      buf.size() - p - *len < 4) {
    return false;
  }
  const std::size_t n = static_cast<std::size_t>(*len);
  if (Crc32(buf.data() + p, n) != ReadU32Le(buf.data() + p + n)) return false;
  payload->assign(buf, p, n);
  *pos = p + n + 4;
  return true;
}

unsigned BitWidth(std::uint64_t v) {
  unsigned w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

/// LSB-first fixed-width packing: value i occupies bits [i*w, (i+1)*w); the
/// last byte is zero-padded. The 128-bit accumulator keeps the byte shifts
/// in range for every width up to 64.
void PackBits(std::string* out, const std::vector<std::uint64_t>& v,
              unsigned w) {
  const std::uint64_t mask = w >= 64 ? ~0ull : (1ull << w) - 1;
  unsigned __int128 acc = 0;
  unsigned nbits = 0;
  for (std::uint64_t x : v) {
    acc |= static_cast<unsigned __int128>(x & mask) << nbits;
    nbits += w;
    while (nbits >= 8) {
      out->push_back(static_cast<char>(static_cast<std::uint64_t>(acc) & 0xff));
      acc >>= 8;
      nbits -= 8;
    }
  }
  if (nbits > 0) {
    out->push_back(static_cast<char>(static_cast<std::uint64_t>(acc) & 0xff));
  }
}

/// Append `count` w-bit values from `payload` to `*out`. The packed run must
/// extend exactly to `end` — widths and counts are fixed, so any other
/// length is corruption.
bool UnpackBits(const std::string& payload, std::size_t* pos, std::size_t end,
                std::uint64_t count, unsigned w,
                std::vector<std::uint64_t>* out) {
  const std::uint64_t need = (count * w + 7) / 8;
  if (end - *pos != need) return false;
  const auto* p =
      reinterpret_cast<const unsigned char*>(payload.data()) + *pos;
  const std::uint64_t mask = w >= 64 ? ~0ull : (1ull << w) - 1;
  // Byte-order-independent little-endian 64-bit load; compilers fold the
  // shift chain into a single load on little-endian targets.
  const auto le64 = [](const unsigned char* q) {
    std::uint64_t v = 0;
    for (int k = 0; k < 8; ++k) v |= static_cast<std::uint64_t>(q[k]) << (8 * k);
    return v;
  };
  if (w == 64) {
    for (std::uint64_t i = 0; i < count; ++i) out->push_back(le64(p + 8 * i));
  } else if (w <= 56) {
    // A value at bit offset b spans at most ceil((56+7)/8)=8 bytes, so one
    // windowed 64-bit load covers it; the tail loop handles offsets whose
    // window would read past `need`.
    std::uint64_t bit = 0;
    std::uint64_t i = 0;
    for (; i < count; ++i, bit += w) {
      const std::size_t byte = static_cast<std::size_t>(bit >> 3);
      if (byte + 8 > need) break;
      out->push_back((le64(p + byte) >> (bit & 7)) & mask);
    }
    for (; i < count; ++i, bit += w) {
      const std::size_t byte = static_cast<std::size_t>(bit >> 3);
      std::uint64_t window = 0;
      const std::size_t lim = static_cast<std::size_t>(need);
      for (std::size_t k = byte; k < lim && k < byte + 8; ++k) {
        window |= static_cast<std::uint64_t>(p[k]) << (8 * (k - byte));
      }
      out->push_back((window >> (bit & 7)) & mask);
    }
  } else {
    // 57..63 bits: a value plus its bit offset can exceed 64 bits, so keep
    // the wide accumulator for these rare widths.
    unsigned __int128 acc = 0;
    unsigned nbits = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      while (nbits < w) {
        acc |= static_cast<unsigned __int128>(*p++) << nbits;
        nbits += 8;
      }
      out->push_back(static_cast<std::uint64_t>(acc) & mask);
      acc >>= w;
      nbits -= w;
    }
  }
  *pos += static_cast<std::size_t>(need);
  return true;
}

/// The writer's deterministic column encoding: const when every value is
/// equal; otherwise the smallest of raw varints, first+zigzag-delta varints,
/// fixed-width bit packing, and bit-packed deltas — ties resolve to the
/// earliest candidate, so the choice is a pure function of the values.
void EncodeColumn(std::string* out, const std::vector<std::uint64_t>& v) {
  bool all_equal = true;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] != v[0]) {
      all_equal = false;
      break;
    }
  }
  std::string payload;
  char mode = kModeRaw;
  if (all_equal) {
    mode = kModeConst;
    AppendVarint(&payload, v.empty() ? 0 : v[0]);
  } else {
    std::string raw;
    unsigned raw_width = 0;
    for (std::uint64_t x : v) {
      AppendVarint(&raw, x);
      raw_width = std::max(raw_width, BitWidth(x));
    }
    // Unsigned subtraction wraps mod 2^64; the decoder adds it back the
    // same way, so any value sequence round-trips.
    std::vector<std::uint64_t> zz(v.size() - 1);
    std::string delta;
    unsigned delta_width = 0;
    AppendVarint(&delta, v[0]);
    for (std::size_t i = 1; i < v.size(); ++i) {
      zz[i - 1] = ZigZagEncode(static_cast<std::int64_t>(v[i] - v[i - 1]));
      AppendVarint(&delta, zz[i - 1]);
      delta_width = std::max(delta_width, BitWidth(zz[i - 1]));
    }
    std::string packed;
    AppendVarint(&packed, raw_width);
    PackBits(&packed, v, raw_width);
    std::string packed_delta;
    AppendVarint(&packed_delta, delta_width);
    AppendVarint(&packed_delta, v[0]);
    PackBits(&packed_delta, zz, delta_width);

    payload = std::move(raw);
    if (delta.size() < payload.size()) {
      mode = kModeDelta;
      payload = std::move(delta);
    }
    if (packed.size() < payload.size()) {
      mode = kModePacked;
      payload = std::move(packed);
    }
    if (packed_delta.size() < payload.size()) {
      mode = kModePackedDelta;
      payload = std::move(packed_delta);
    }
  }
  out->push_back(mode);
  AppendVarint(out, payload.size());
  out->append(payload);
}

/// Decode (or skip, when !wanted) one column payload of `count` values.
bool DecodeColumn(const std::string& payload, std::size_t* pos,
                  std::uint64_t count, bool wanted,
                  std::vector<std::uint64_t>* out) {
  if (*pos >= payload.size()) return false;
  const char mode = payload[(*pos)++];
  const auto len = DecodeVarint(payload, pos);
  if (!len || *len > payload.size() - *pos) return false;
  const std::size_t end = *pos + static_cast<std::size_t>(*len);
  if (!wanted) {
    *pos = end;
    return true;
  }
  out->clear();
  out->reserve(static_cast<std::size_t>(count));
  if (mode == kModeConst) {
    const auto v = DecodeVarint(payload, pos);
    if (!v) return false;
    out->assign(static_cast<std::size_t>(count), *v);
  } else if (mode == kModeRaw) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto v = DecodeVarint(payload, pos);
      if (!v) return false;
      out->push_back(*v);
    }
  } else if (mode == kModeDelta) {
    const auto first = DecodeVarint(payload, pos);
    if (!first) return false;
    out->push_back(*first);
    std::uint64_t prev = *first;
    for (std::uint64_t i = 1; i < count; ++i) {
      const auto d = DecodeVarint(payload, pos);
      if (!d) return false;
      prev += static_cast<std::uint64_t>(ZigZagDecode(*d));
      out->push_back(prev);
    }
  } else if (mode == kModePacked) {
    const auto w = DecodeVarint(payload, pos);
    if (!w || *w == 0 || *w > 64) return false;
    if (!UnpackBits(payload, pos, end, count, static_cast<unsigned>(*w),
                    out)) {
      return false;
    }
  } else if (mode == kModePackedDelta) {
    const auto w = DecodeVarint(payload, pos);
    if (!w || *w == 0 || *w > 64) return false;
    const auto first = DecodeVarint(payload, pos);
    if (!first) return false;
    out->push_back(*first);
    if (!UnpackBits(payload, pos, end, count - 1, static_cast<unsigned>(*w),
                    out)) {
      return false;
    }
    std::uint64_t prev = *first;
    for (std::uint64_t i = 1; i < count; ++i) {
      prev += static_cast<std::uint64_t>(ZigZagDecode((*out)[i]));
      (*out)[i] = prev;
    }
  } else {
    return false;
  }
  return *pos == end;
}

/// Decode a data-block payload (past the tag byte): record count, dict
/// prelude (appended to `*dict`), then the kNumColumns column payloads,
/// decoding only those in `mask`.
bool DecodeBlockPayload(const std::string& payload, ColumnMask mask,
                        std::vector<std::string>* dict,
                        std::vector<std::uint64_t> cols[kNumColumns],
                        std::uint64_t* count) {
  std::size_t pos = 1;  // past the tag
  const auto n = DecodeVarint(payload, &pos);
  if (!n || *n == 0 || *n > kMaxCtrFrame) return false;
  const auto new_entries = DecodeVarint(payload, &pos);
  if (!new_entries || *new_entries > payload.size() - pos) return false;
  for (std::uint64_t i = 0; i < *new_entries; ++i) {
    const auto len = DecodeVarint(payload, &pos);
    if (!len || *len > payload.size() - pos) return false;
    dict->push_back(payload.substr(pos, static_cast<std::size_t>(*len)));
    pos += static_cast<std::size_t>(*len);
  }
  for (unsigned c = 0; c < kNumColumns; ++c) {
    if (!DecodeColumn(payload, &pos, *n, (mask >> c) & 1u, &cols[c])) {
      return false;
    }
  }
  if (pos != payload.size()) return false;
  *count = *n;
  return true;
}

struct DecodedHeader {
  CtrStoreInfo info;
  std::uint64_t segment_index = 0;
  std::uint64_t base_records = 0;
};

bool DecodeHeaderPayload(const std::string& payload, DecodedHeader* out) {
  if (payload.empty() || payload[0] != kTagHeader) return false;
  std::size_t pos = 1;
  const auto u64 = [&](std::uint64_t* v) {
    const auto d = DecodeVarint(payload, &pos);
    if (!d) return false;
    *v = *d;
    return true;
  };
  std::uint64_t policy = 0, app_len = 0;
  if (!u64(&out->info.format_version) || !u64(&out->info.campaign_seed) ||
      !u64(&app_len) || app_len > payload.size() - pos) {
    return false;
  }
  out->info.app = payload.substr(pos, static_cast<std::size_t>(app_len));
  pos += static_cast<std::size_t>(app_len);
  if (!u64(&policy) ||
      policy > static_cast<std::uint64_t>(
                   campaign::SamplePolicy::kStratified) ||
      !u64(&out->info.shard_index) || !u64(&out->info.shard_count) ||
      !u64(&out->segment_index) || !u64(&out->base_records) ||
      pos != payload.size()) {
    return false;
  }
  out->info.sample_policy = static_cast<campaign::SamplePolicy>(policy);
  return true;
}

std::string EncodeHeaderPayload(const CtrStoreInfo& info,
                                std::uint64_t segment_index,
                                std::uint64_t base_records) {
  std::string payload(1, kTagHeader);
  AppendVarint(&payload, info.format_version);
  AppendVarint(&payload, info.campaign_seed);
  AppendVarint(&payload, info.app.size());
  payload.append(info.app);
  AppendVarint(&payload, static_cast<std::uint64_t>(info.sample_policy));
  AppendVarint(&payload, info.shard_index);
  AppendVarint(&payload, info.shard_count);
  AppendVarint(&payload, segment_index);
  AppendVarint(&payload, base_records);
  return payload;
}

struct DecodedFooter {
  std::uint64_t records = 0;
  std::uint64_t blocks = 0;
  std::uint64_t fnv = 0;
  std::uint64_t dict_count = 0;
};

bool DecodeFooterPayload(const std::string& payload, DecodedFooter* out) {
  if (payload.empty() || payload[0] != kTagFooter) return false;
  std::size_t pos = 1;
  const auto records = DecodeVarint(payload, &pos);
  if (!records) return false;
  const auto blocks = DecodeVarint(payload, &pos);
  if (!blocks) return false;
  const auto fnv = ReadU64Le(payload, &pos);
  if (!fnv) return false;
  const auto dict = DecodeVarint(payload, &pos);
  if (!dict || pos != payload.size()) return false;
  out->records = *records;
  out->blocks = *blocks;
  out->fnv = *fnv;
  out->dict_count = *dict;
  return true;
}

std::string SegmentName(std::uint64_t index) {
  return StrFormat("seg-%06llu.ctr", static_cast<unsigned long long>(index));
}

std::vector<std::string> ListSegments(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (StartsWith(name, "seg-") && name.size() > 8 &&
        name.substr(name.size() - 4) == ".ctr") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Everything the writer's resume path recovers from one segment file: the
/// decoded header, the intact frame prefix, the record count and run_seed
/// sequence of that prefix, the rebuilt dictionary, and the footer when the
/// segment is sealed.
struct SegmentScan {
  bool header_ok = false;  // magic + header frame intact
  DecodedHeader header;
  std::uint64_t records = 0;
  std::uint64_t blocks = 0;
  std::vector<std::uint64_t> seeds;
  std::vector<std::string> dict{""};
  bool sealed = false;
  DecodedFooter footer;
  std::uint64_t intact_bytes = 0;  // offset one past the last intact frame
  // State just before the last intact block, so a resume can drop a partial
  // trailing block (see the writer constructor).
  std::uint64_t last_block_count = 0;
  std::uint64_t bytes_before_last_block = 0;
  std::size_t dict_before_last_block = 1;
};

SegmentScan ScanSegmentFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("CtrStore: cannot open '" + path + "'");
  std::string buf;
  ReadWholeFile(in, &buf);

  SegmentScan scan;
  if (buf.size() < sizeof(kCtrMagic) ||
      std::memcmp(buf.data(), kCtrMagic, sizeof(kCtrMagic)) != 0) {
    return scan;  // header_ok stays false
  }
  std::size_t pos = sizeof(kCtrMagic);
  std::string payload;
  if (!NextFrame(buf, &pos, &payload) ||
      !DecodeHeaderPayload(payload, &scan.header)) {
    return scan;
  }
  scan.header_ok = true;
  scan.intact_bytes = pos;

  while (pos < buf.size()) {
    if (!NextFrame(buf, &pos, &payload)) break;  // torn tail
    if (!payload.empty() && payload[0] == kTagBlock) {
      scan.bytes_before_last_block = scan.intact_bytes;
      scan.dict_before_last_block = scan.dict.size();
      std::vector<std::uint64_t> cols[kNumColumns];
      std::uint64_t count = 0;
      if (!DecodeBlockPayload(payload, MaskOf(kColRunSeed), &scan.dict, cols,
                              &count)) {
        throw ConfigError("CtrStore: '" + path +
                          "' has a corrupt data block behind a valid CRC");
      }
      scan.seeds.insert(scan.seeds.end(), cols[kColRunSeed].begin(),
                        cols[kColRunSeed].end());
      scan.records += count;
      scan.last_block_count = count;
      ++scan.blocks;
      scan.intact_bytes = pos;
    } else if (!payload.empty() && payload[0] == kTagFooter) {
      if (!DecodeFooterPayload(payload, &scan.footer)) {
        throw ConfigError("CtrStore: '" + path + "' has a corrupt footer");
      }
      if (pos != buf.size()) {
        throw ConfigError("CtrStore: '" + path + "' has data after its footer");
      }
      scan.sealed = true;
      scan.intact_bytes = pos;
    } else {
      throw ConfigError("CtrStore: '" + path + "' has an unknown frame tag");
    }
  }
  return scan;
}

void CheckIdentity(const CtrStoreInfo& found, const CtrStoreInfo& want,
                   const std::string& path) {
  if (found.format_version > kCtrFormatVersion) {
    throw ConfigError(StrFormat(
        "CtrStore: '%s' is format v%llu; this build reads up to v%llu",
        path.c_str(), static_cast<unsigned long long>(found.format_version),
        static_cast<unsigned long long>(kCtrFormatVersion)));
  }
  if (found.campaign_seed != want.campaign_seed || found.app != want.app ||
      found.sample_policy != want.sample_policy ||
      found.shard_index != want.shard_index ||
      found.shard_count != want.shard_count) {
    throw ConfigError(StrFormat(
        "CtrStore: '%s' belongs to campaign (app '%s', seed %llu, policy %s, "
        "shard %llu/%llu), not (app '%s', seed %llu, policy %s, shard "
        "%llu/%llu) — refusing to mix trial sets",
        path.c_str(), found.app.c_str(),
        static_cast<unsigned long long>(found.campaign_seed),
        campaign::SamplePolicyName(found.sample_policy),
        static_cast<unsigned long long>(found.shard_index),
        static_cast<unsigned long long>(found.shard_count), want.app.c_str(),
        static_cast<unsigned long long>(want.campaign_seed),
        campaign::SamplePolicyName(want.sample_policy),
        static_cast<unsigned long long>(want.shard_index),
        static_cast<unsigned long long>(want.shard_count)));
  }
}

}  // namespace

bool IsCtrStorePath(const std::string& path) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) return !ListSegments(path).empty();
  if (!fs::is_regular_file(path, ec)) return false;
  std::ifstream in(path, std::ios::binary);
  char magic[sizeof(kCtrMagic)] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kCtrMagic, sizeof(kCtrMagic)) == 0;
}

// ---- Writer -----------------------------------------------------------------

CtrStoreWriter::CtrStoreWriter(std::string dir, const CtrStoreInfo& identity,
                               CtrWriterOptions options)
    : dir_(std::move(dir)), info_(identity), options_(options), fnv_(kFnvBasis) {
  info_.format_version = kCtrFormatVersion;
  if (options_.block_records == 0) {
    throw ConfigError("CtrStoreWriter: block_records must be > 0");
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw ConfigError("CtrStoreWriter: cannot create '" + dir_ +
                      "': " + ec.message());
  }

  const std::vector<std::string> segs = ListSegments(dir_);
  if (!options_.resume) {
    for (const std::string& p : segs) {
      fs::remove(p, ec);
      if (ec) {
        throw ConfigError("CtrStoreWriter: cannot remove stale segment '" + p +
                          "': " + ec.message());
      }
    }
    return;
  }
  if (segs.empty()) return;

  std::uint64_t running = kFnvBasis;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const bool last = (i + 1 == segs.size());
    SegmentScan scan = ScanSegmentFile(segs[i]);
    if (!scan.header_ok) {
      // A crash can leave a half-created *last* segment with no intact
      // header; it holds no records, so drop it and continue from the
      // previous one. Anywhere else it is corruption.
      if (last) {
        fs::remove(segs[i], ec);
        break;
      }
      throw ConfigError("CtrStoreWriter: '" + segs[i] +
                        "' has no intact header");
    }
    CheckIdentity(scan.header.info, info_, segs[i]);
    if (scan.header.segment_index != i || scan.header.base_records != total) {
      throw ConfigError("CtrStoreWriter: '" + segs[i] +
                        "' is out of sequence with its store");
    }
    if (last && !scan.sealed && scan.blocks > 0 &&
        scan.last_block_count != options_.block_records) {
      // A partial block below a footer only exists when a crash cut Finish()
      // down mid-seal. Mid-run, the uninterrupted writer would have filled
      // that block further, so keeping it would skew every later block
      // boundary off the deterministic layout. Drop it — its records are
      // simply re-written — and the resumed byte stream converges again.
      scan.intact_bytes = scan.bytes_before_last_block;
      scan.records -= scan.last_block_count;
      scan.seeds.resize(scan.seeds.size() -
                        static_cast<std::size_t>(scan.last_block_count));
      --scan.blocks;
      scan.dict.resize(scan.dict_before_last_block);
    }
    for (std::uint64_t seed : scan.seeds) running = FnvStep(running, seed);
    total += scan.records;
    if (!last) {
      if (!scan.sealed) {
        throw ConfigError("CtrStoreWriter: unsealed segment '" + segs[i] +
                          "' is not the last segment of its store");
      }
      if (scan.footer.records != scan.records || scan.footer.fnv != running) {
        throw ConfigError("CtrStoreWriter: '" + segs[i] +
                          "' footer disagrees with its blocks");
      }
      continue;
    }
    if (scan.sealed) {
      if (scan.footer.records != scan.records || scan.footer.fnv != running) {
        throw ConfigError("CtrStoreWriter: '" + segs[i] +
                          "' footer disagrees with its blocks");
      }
      segment_index_ = i + 1;
      base_records_ = total;
    } else {
      // Cut the torn tail off before appending, exactly like the journal:
      // new frames after garbage would be unreachable to a prefix-
      // disciplined reader.
      fs::resize_file(segs[i], scan.intact_bytes, ec);
      if (ec) {
        throw ConfigError("CtrStoreWriter: cannot truncate torn tail of '" +
                          segs[i] + "': " + ec.message());
      }
      file_ = std::fopen(segs[i].c_str(), "ab");
      if (file_ == nullptr) {
        throw ConfigError("CtrStoreWriter: cannot reopen '" + segs[i] +
                          "' for append");
      }
      segment_index_ = i;
      base_records_ = total - scan.records;
      segment_bytes_ = scan.intact_bytes;
      segment_records_ = scan.records;
      segment_blocks_ = scan.blocks;
      for (std::size_t id = 1; id < scan.dict.size(); ++id) {
        dict_map_.emplace(scan.dict[id], id);
      }
      dict_size_ = scan.dict.size();
    }
  }
  stored_count_ = total;
  recovered_fnv_ = running;
}

CtrStoreWriter::~CtrStoreWriter() {
  try {
    Finish();
  } catch (...) {
    // Destructor cleanup must not throw; an explicit Finish() surfaces
    // errors to callers that care.
  }
  if (file_ != nullptr) std::fclose(file_);
}

std::uint64_t CtrStoreWriter::DictId(const std::string& s) {
  if (s.empty()) return 0;
  const auto it = dict_map_.find(s);
  if (it != dict_map_.end()) return it->second;
  const std::uint64_t id = dict_size_++;
  dict_map_.emplace(s, id);
  new_dict_entries_.push_back(s);
  return id;
}

void CtrStoreWriter::Add(const campaign::RunRecord& rec) {
  if (finished_) {
    throw ConfigError("CtrStoreWriter: Add after Finish on '" + dir_ + "'");
  }
  fnv_ = FnvStep(fnv_, rec.run_seed);
  ++added_;
  if (added_ <= stored_count_) {
    // Skip-verify: this record is already on disk. The hash chain is checked
    // once, at the boundary — any divergence in the skipped prefix lands
    // there, before a single new byte is written.
    if (added_ == stored_count_ && fnv_ != recovered_fnv_) {
      throw ConfigError(
          "CtrStoreWriter: resumed store '" + dir_ +
          "' holds a different trial sequence than this campaign (seed-hash "
          "mismatch) — refusing to append");
    }
    return;
  }

  std::uint64_t v[kNumColumns];
  v[kColRunSeed] = rec.run_seed;
  v[kColOutcome] = static_cast<std::uint64_t>(rec.outcome);
  v[kColKind] = static_cast<std::uint64_t>(rec.kind);
  v[kColSignal] = static_cast<std::uint64_t>(rec.signal);
  v[kColInjectRank] = ZigZagEncode(rec.inject_rank);
  v[kColFailureRank] = ZigZagEncode(rec.failure_rank);
  v[kColFlags] = (rec.deadlock ? 1u : 0u) |
                 (rec.propagated_cross_rank ? 2u : 0u) |
                 (rec.propagated_cross_node ? 4u : 0u);
  v[kColInjections] = rec.injections;
  v[kColTaintedReads] = rec.tainted_reads;
  v[kColTaintedWrites] = rec.tainted_writes;
  v[kColPeakTaintedBytes] = rec.peak_tainted_bytes;
  v[kColTaintedOutputBytes] = rec.tainted_output_bytes;
  v[kColTriggerNth] = rec.trigger_nth;
  v[kColFlipBits] = rec.flip_bits;
  v[kColInstructions] = rec.instructions;
  v[kColTraceDropped] = rec.trace_dropped;
  v[kColTaintLost] = rec.taint_lost;
  v[kColRetries] = rec.retries;
  v[kColTbChainHits] = rec.tb_chain_hits;
  v[kColTlbHits] = rec.tlb_hits;
  v[kColTlbMisses] = rec.tlb_misses;
  v[kColInjectPc] = rec.inject_pc;
  v[kColInjectClass] = static_cast<std::uint64_t>(rec.inject_class);
  v[kColSampleWeight] = WeightToBits(rec.sample_weight);
  v[kColInjector] = DictId(rec.injector);
  v[kColFaultClass] = DictId(rec.fault_class);
  v[kColInfraError] = DictId(rec.infra_error);
  for (unsigned c = 0; c < kNumColumns; ++c) cols_[c].push_back(v[c]);

  if (cols_[0].size() >= options_.block_records) FlushBlock();
}

void CtrStoreWriter::EnsureSegmentOpen() {
  if (file_ != nullptr) return;
  const std::string path = dir_ + "/" + SegmentName(segment_index_);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw ConfigError("CtrStoreWriter: cannot create '" + path + "'");
  }
  if (std::fwrite(kCtrMagic, 1, sizeof(kCtrMagic), file_) !=
      sizeof(kCtrMagic)) {
    throw ConfigError("CtrStoreWriter: cannot write magic of '" + path + "'");
  }
  segment_bytes_ = sizeof(kCtrMagic);
  WriteFrame(EncodeHeaderPayload(info_, segment_index_, base_records_));
}

void CtrStoreWriter::WriteFrame(const std::string& payload) {
  std::string frame;
  AppendVarint(&frame, payload.size());
  frame.append(payload);
  AppendU32Le(&frame, Crc32(payload.data(), payload.size()));
  // One fwrite per frame keeps frames contiguous; the fsync bounds how much
  // a crash can tear to the current frame (the journal remains the
  // per-record durability layer — resume replays anything torn off here).
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    throw ConfigError("CtrStoreWriter: write failed in '" + dir_ + "'");
  }
  segment_bytes_ += frame.size();
}

void CtrStoreWriter::FlushBlock() {
  const std::uint64_t n = cols_[0].size();
  if (n == 0) return;
  EnsureSegmentOpen();
  std::string payload(1, kTagBlock);
  AppendVarint(&payload, n);
  AppendVarint(&payload, new_dict_entries_.size());
  for (const std::string& s : new_dict_entries_) {
    AppendVarint(&payload, s.size());
    payload.append(s);
  }
  for (unsigned c = 0; c < kNumColumns; ++c) {
    EncodeColumn(&payload, cols_[c]);
    cols_[c].clear();
  }
  new_dict_entries_.clear();
  WriteFrame(payload);
  ++segment_blocks_;
  segment_records_ += n;
  if (segment_bytes_ >= options_.segment_cap_bytes) SealSegment();
}

void CtrStoreWriter::SealSegment() {
  if (file_ == nullptr) return;
  std::string payload(1, kTagFooter);
  AppendVarint(&payload, segment_records_);
  AppendVarint(&payload, segment_blocks_);
  AppendU64Le(&payload, fnv_);
  AppendVarint(&payload, dict_size_);
  WriteFrame(payload);
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    throw ConfigError("CtrStoreWriter: close failed in '" + dir_ + "'");
  }
  file_ = nullptr;
  base_records_ += segment_records_;
  ++segment_index_;
  segment_bytes_ = 0;
  segment_records_ = 0;
  segment_blocks_ = 0;
  dict_map_.clear();
  dict_size_ = 1;
}

void CtrStoreWriter::Finish() {
  if (finished_) return;
  if (added_ < stored_count_) {
    throw ConfigError(StrFormat(
        "CtrStoreWriter: '%s' already holds %llu records but this campaign "
        "produced only %llu — it belongs to a longer run",
        dir_.c_str(), static_cast<unsigned long long>(stored_count_),
        static_cast<unsigned long long>(added_)));
  }
  FlushBlock();
  // A fresh, empty campaign still materializes one sealed (header + footer)
  // segment so the store is well-formed and scannable.
  if (file_ == nullptr && segment_index_ == 0 && stored_count_ == 0) {
    EnsureSegmentOpen();
  }
  SealSegment();
  finished_ = true;
}

// ---- Scanner ----------------------------------------------------------------

CtrStoreScanner::CtrStoreScanner(const std::string& path, ColumnMask mask)
    : mask_(mask) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    segment_paths_ = ListSegments(path);
    if (segment_paths_.empty()) {
      throw ConfigError("CtrStoreScanner: '" + path + "' has no segments");
    }
  } else if (fs::is_regular_file(path, ec)) {
    segment_paths_.push_back(path);
  } else {
    throw ConfigError("CtrStoreScanner: no CTR store at '" + path + "'");
  }
  fnv_ = kFnvBasis;
  if (!LoadNextSegment()) {
    // A store whose very first segment has no intact header serves nothing.
    if (!truncated_) {
      throw ConfigError("CtrStoreScanner: '" + path + "' has no readable data");
    }
  }
}

bool CtrStoreScanner::LoadNextSegment() {
  if (truncated_ || done_) return false;
  if (next_segment_ >= segment_paths_.size()) {
    done_ = true;
    return false;
  }
  const std::string& path = segment_paths_[next_segment_];
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("CtrStoreScanner: cannot open '" + path + "'");
  ReadWholeFile(in, &buf_);

  if (buf_.size() < sizeof(kCtrMagic) ||
      std::memcmp(buf_.data(), kCtrMagic, sizeof(kCtrMagic)) != 0) {
    if (have_info_) {
      // A torn final segment (crash during creation): serve the prefix.
      truncated_ = true;
      sealed_ = false;
      return false;
    }
    throw ConfigError("CtrStoreScanner: '" + path +
                      "' is not a CTR store segment");
  }
  pos_ = sizeof(kCtrMagic);
  std::string payload;
  DecodedHeader header;
  if (!NextFrame(buf_, &pos_, &payload) ||
      !DecodeHeaderPayload(payload, &header)) {
    if (have_info_) {
      truncated_ = true;
      sealed_ = false;
      return false;
    }
    throw ConfigError("CtrStoreScanner: '" + path + "' has no intact header");
  }
  if (header.info.format_version > kCtrFormatVersion) {
    throw ConfigError(StrFormat(
        "CtrStoreScanner: '%s' is format v%llu; this build reads up to v%llu",
        path.c_str(),
        static_cast<unsigned long long>(header.info.format_version),
        static_cast<unsigned long long>(kCtrFormatVersion)));
  }
  if (!have_info_) {
    info_ = header.info;
    have_info_ = true;
  } else if (header.info.campaign_seed != info_.campaign_seed ||
             header.info.app != info_.app ||
             header.info.sample_policy != info_.sample_policy ||
             header.info.shard_index != info_.shard_index ||
             header.info.shard_count != info_.shard_count) {
    throw ConfigError("CtrStoreScanner: '" + path +
                      "' belongs to a different campaign than its store");
  }
  if (header.segment_index != next_segment_ || header.base_records != rows_) {
    throw ConfigError("CtrStoreScanner: '" + path +
                      "' is out of sequence with its store");
  }
  ++next_segment_;
  in_segment_ = true;
  segment_sealed_ = false;
  segment_records_ = 0;
  segment_blocks_ = 0;
  dict_.assign(1, "");
  return true;
}

bool CtrStoreScanner::DecodeNextBlock() {
  for (;;) {
    if (!in_segment_) {
      if (!LoadNextSegment()) return false;
    }
    if (pos_ >= buf_.size()) {
      // Segment ends without a footer: the writer died after its last
      // intact block. Everything decoded so far is served; nothing after
      // this segment can exist in a well-formed store.
      in_segment_ = false;
      sealed_ = false;
      if (next_segment_ < segment_paths_.size()) truncated_ = true;
      done_ = true;
      return false;
    }
    std::string payload;
    if (!NextFrame(buf_, &pos_, &payload)) {
      in_segment_ = false;
      sealed_ = false;
      truncated_ = true;
      done_ = true;
      return false;
    }
    if (payload[0] == kTagBlock) {
      std::uint64_t count = 0;
      if (!DecodeBlockPayload(payload, mask_, &dict_, cols_, &count)) {
        throw ConfigError("CtrStoreScanner: corrupt data block behind a valid "
                          "CRC in '" + segment_paths_[next_segment_ - 1] + "'");
      }
      if ((mask_ >> kColRunSeed) & 1u) {
        for (std::uint64_t seed : cols_[kColRunSeed]) fnv_ = FnvStep(fnv_, seed);
      }
      segment_records_ += count;
      ++segment_blocks_;
      block_size_ = count;
      row_in_block_ = 0;
      return true;
    }
    if (payload[0] == kTagFooter) {
      DecodedFooter footer;
      if (!DecodeFooterPayload(payload, &footer) ||
          footer.records != segment_records_ ||
          footer.blocks != segment_blocks_ ||
          footer.dict_count != dict_.size() ||
          (((mask_ >> kColRunSeed) & 1u) && footer.fnv != fnv_)) {
        throw ConfigError("CtrStoreScanner: footer disagrees with its blocks "
                          "in '" + segment_paths_[next_segment_ - 1] + "'");
      }
      if (pos_ != buf_.size()) {
        throw ConfigError("CtrStoreScanner: data after the footer in '" +
                          segment_paths_[next_segment_ - 1] + "'");
      }
      sealed_ = true;
      in_segment_ = false;
      continue;  // next segment
    }
    throw ConfigError("CtrStoreScanner: unknown frame tag in '" +
                      segment_paths_[next_segment_ - 1] + "'");
  }
}

bool CtrStoreScanner::Next(campaign::RunRecord* out) {
  while (row_in_block_ >= block_size_) {
    if (!DecodeNextBlock()) return false;
  }
  const std::size_t i = static_cast<std::size_t>(row_in_block_);
  // Fill `*out` in place: unmasked fields are reset to their defaults (the
  // documented contract) rather than materializing a fresh RunRecord and
  // copying it out — at scan rates that copy costs more than the decode, and
  // assign/clear on the string fields reuses their capacity across rows.
  campaign::RunRecord& r = *out;
  const auto bad = [this](const char* what) -> ConfigError {
    return ConfigError(std::string("CtrStoreScanner: out-of-range ") + what +
                       " in '" + segment_paths_[next_segment_ - 1] + "'");
  };
  r.run_seed = (mask_ >> kColRunSeed) & 1u ? cols_[kColRunSeed][i] : 0;
  r.outcome = campaign::Outcome::kBenign;
  if ((mask_ >> kColOutcome) & 1u) {
    const std::uint64_t v = cols_[kColOutcome][i];
    if (v > static_cast<std::uint64_t>(campaign::Outcome::kCrashed)) {
      throw bad("outcome");
    }
    r.outcome = static_cast<campaign::Outcome>(v);
  }
  r.kind = vm::TerminationKind::kExited;
  if ((mask_ >> kColKind) & 1u) {
    const std::uint64_t v = cols_[kColKind][i];
    if (v > static_cast<std::uint64_t>(vm::TerminationKind::kMpiError)) {
      throw bad("termination kind");
    }
    r.kind = static_cast<vm::TerminationKind>(v);
  }
  r.signal = vm::GuestSignal::kNone;
  if ((mask_ >> kColSignal) & 1u) {
    const std::uint64_t v = cols_[kColSignal][i];
    if (v > static_cast<std::uint64_t>(vm::GuestSignal::kCrash)) {
      throw bad("signal");
    }
    r.signal = static_cast<vm::GuestSignal>(v);
  }
  r.inject_rank =
      (mask_ >> kColInjectRank) & 1u
          ? static_cast<Rank>(ZigZagDecode(cols_[kColInjectRank][i]))
          : 0;
  r.failure_rank =
      (mask_ >> kColFailureRank) & 1u
          ? static_cast<Rank>(ZigZagDecode(cols_[kColFailureRank][i]))
          : -1;
  {
    std::uint64_t v = 0;
    if ((mask_ >> kColFlags) & 1u) {
      v = cols_[kColFlags][i];
      if (v > 7) throw bad("flags");
    }
    r.deadlock = (v & 1) != 0;
    r.propagated_cross_rank = (v & 2) != 0;
    r.propagated_cross_node = (v & 4) != 0;
  }
  r.injections = (mask_ >> kColInjections) & 1u ? cols_[kColInjections][i] : 0;
  r.tainted_reads =
      (mask_ >> kColTaintedReads) & 1u ? cols_[kColTaintedReads][i] : 0;
  r.tainted_writes =
      (mask_ >> kColTaintedWrites) & 1u ? cols_[kColTaintedWrites][i] : 0;
  r.peak_tainted_bytes = (mask_ >> kColPeakTaintedBytes) & 1u
                             ? cols_[kColPeakTaintedBytes][i]
                             : 0;
  r.tainted_output_bytes = (mask_ >> kColTaintedOutputBytes) & 1u
                               ? cols_[kColTaintedOutputBytes][i]
                               : 0;
  r.trigger_nth = (mask_ >> kColTriggerNth) & 1u ? cols_[kColTriggerNth][i] : 0;
  r.flip_bits = (mask_ >> kColFlipBits) & 1u
                    ? static_cast<unsigned>(cols_[kColFlipBits][i])
                    : 0;
  r.instructions =
      (mask_ >> kColInstructions) & 1u ? cols_[kColInstructions][i] : 0;
  r.trace_dropped =
      (mask_ >> kColTraceDropped) & 1u ? cols_[kColTraceDropped][i] : 0;
  r.taint_lost = (mask_ >> kColTaintLost) & 1u ? cols_[kColTaintLost][i] : 0;
  r.retries = (mask_ >> kColRetries) & 1u
                  ? static_cast<unsigned>(cols_[kColRetries][i])
                  : 0;
  r.tb_chain_hits =
      (mask_ >> kColTbChainHits) & 1u ? cols_[kColTbChainHits][i] : 0;
  r.tlb_hits = (mask_ >> kColTlbHits) & 1u ? cols_[kColTlbHits][i] : 0;
  r.tlb_misses = (mask_ >> kColTlbMisses) & 1u ? cols_[kColTlbMisses][i] : 0;
  r.inject_pc = (mask_ >> kColInjectPc) & 1u ? cols_[kColInjectPc][i] : 0;
  r.inject_class = guest::InstrClass::kMov;
  if ((mask_ >> kColInjectClass) & 1u) {
    const std::uint64_t v = cols_[kColInjectClass][i];
    if (v > static_cast<std::uint64_t>(guest::InstrClass::kSys)) {
      throw bad("instruction class");
    }
    r.inject_class = static_cast<guest::InstrClass>(v);
  }
  r.sample_weight = (mask_ >> kColSampleWeight) & 1u
                        ? BitsToWeight(cols_[kColSampleWeight][i])
                        : 1.0;
  const auto dict_at = [&](Column c) -> const std::string& {
    const std::uint64_t id = cols_[c][i];
    if (id >= dict_.size()) throw bad("dictionary id");
    return dict_[static_cast<std::size_t>(id)];
  };
  if ((mask_ >> kColInjector) & 1u) {
    r.injector.assign(dict_at(kColInjector));
  } else {
    r.injector.clear();
  }
  if ((mask_ >> kColFaultClass) & 1u) {
    r.fault_class.assign(dict_at(kColFaultClass));
  } else {
    r.fault_class.clear();
  }
  if ((mask_ >> kColInfraError) & 1u) {
    r.infra_error.assign(dict_at(kColInfraError));
  } else {
    r.infra_error.clear();
  }
  ++row_in_block_;
  ++rows_;
  return true;
}

}  // namespace chaser::store

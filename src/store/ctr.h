// CTR segments: the compact append-only columnar trial store.
//
// A million-trial campaign cannot live in a records CSV: ~130 bytes per row,
// parsed field-by-field on every query. A CTR store holds the same
// RunRecords as per-column blocks of LEB128 varints — near-constant columns
// collapse to a few bytes per block, strings (injector, fault_class,
// infra_error) go through a per-segment dictionary, and a query that needs
// three columns decodes exactly three columns, skipping the rest by their
// length prefixes.
//
// On-disk layout. A store is a directory of numbered segment files
// (`seg-000000.ctr`, `seg-000001.ctr`, ...); a single `.ctr` file is also a
// valid store. Each segment is:
//
//   magic    8 bytes "CHSCTR01"
//   frame*   varint payload_len | payload | CRC-32 of the payload as 4 LE
//            bytes — the same frame discipline as the trial journal and the
//            hub wire protocol, so one checksum covers every framed stream
//            in the tree.
//
// The first frame's payload is the header (tag 0x01): format version,
// campaign identity (seed, app, sample policy, shard spec), this segment's
// index and the record count of all prior segments. Then data blocks (tag
// 0x02): a record count, a dictionary prelude listing strings first seen in
// this block (ids are assigned in first-appearance order, per segment, with
// id 0 reserved for ""), then kNumColumns column payloads, each
//
//   mode byte | varint payload_len | payload
//
// where mode 0 is raw varints, mode 1 is a single value shared by every
// record in the block (the big win: most columns of a fault campaign are
// near-constant), mode 2 is the first value raw followed by zigzag-delta
// varints, mode 3 is fixed-width bit packing (varint width, then LSB-first
// packed values — what tiny-cardinality columns like outcome or dict ids
// compress to), and mode 4 is bit-packed deltas (varint width, first value
// as a varint, then packed zigzag deltas — clustered counters like
// instructions or tlb_hits). The writer picks the smallest encoding
// deterministically, so the byte stream is a pure function of the record
// stream. The final frame is
// the footer (tag 0x03): segment record/block counts, the cumulative FNV-1a
// hash of every run_seed since record 0 of segment 0, and the dictionary
// size — a sealed segment is one whose last frame is a footer.
//
// Crash rules are the journal's: blocks are fsync'd as written, a reader
// serves the intact frame prefix and reports truncated() past it, and a
// writer re-opening an unsealed segment truncates the torn tail before
// appending. Because block boundaries (every block_records records), dict id
// assignment, mode choice and segment roll-over are all deterministic in the
// record stream, a resumed store converges to the uninterrupted byte stream.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/sampling.h"

namespace chaser::store {

/// Bump when the segment layout changes. Stamped into every segment header
/// and into BENCH_columnar_store.json by tools/bench_to_json.sh.
inline constexpr std::uint64_t kCtrFormatVersion = 1;

/// Column order inside a data block (fixed; new columns append at the end
/// under a format-version bump). Ranks are zigzag-encoded, the three bool
/// flags pack into one column, sample_weight is stored as IEEE-754 bits
/// XORed with the bits of 1.0 (so the overwhelmingly common weight 1.0
/// encodes as 0 and const-collapses), and the string columns hold dict ids.
enum Column : unsigned {
  kColRunSeed = 0,
  kColOutcome,
  kColKind,
  kColSignal,
  kColInjectRank,
  kColFailureRank,
  kColFlags,
  kColInjections,
  kColTaintedReads,
  kColTaintedWrites,
  kColPeakTaintedBytes,
  kColTaintedOutputBytes,
  kColTriggerNth,
  kColFlipBits,
  kColInstructions,
  kColTraceDropped,
  kColTaintLost,
  kColRetries,
  kColTbChainHits,
  kColTlbHits,
  kColTlbMisses,
  kColInjectPc,
  kColInjectClass,
  kColSampleWeight,
  kColInjector,
  kColFaultClass,
  kColInfraError,
};
inline constexpr unsigned kNumColumns = 27;

/// Which columns a scanner decodes; unselected columns are skipped by their
/// length prefix and the materialized RunRecord keeps their defaults.
using ColumnMask = std::uint32_t;
inline constexpr ColumnMask kAllColumns = (1u << kNumColumns) - 1;
inline constexpr ColumnMask MaskOf(Column c) { return 1u << c; }

/// Campaign identity stamped into every segment header — the CTR analogue of
/// the journal header, with the same purpose: resuming or merging against
/// the wrong campaign fails loudly.
struct CtrStoreInfo {
  std::uint64_t format_version = kCtrFormatVersion;
  std::uint64_t campaign_seed = 0;
  std::string app;
  campaign::SamplePolicy sample_policy = campaign::SamplePolicy::kUniform;
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
};

/// True if `path` looks like a CTR store: a directory holding at least one
/// seg-*.ctr file, or a regular file starting with the segment magic.
bool IsCtrStorePath(const std::string& path);

struct CtrWriterOptions {
  /// Re-open an existing store: validate its identity, truncate the unsealed
  /// tail segment to its intact prefix, then skip-verify the records already
  /// stored (each Add below the stored count only checks the run_seed hash
  /// chain instead of re-writing). false deletes any existing segments.
  bool resume = false;
  /// Roll to a new segment once the current one reaches this many bytes
  /// (checked after each block flush). Bounds both writer and scanner
  /// memory: a scanner holds one segment at a time.
  std::uint64_t segment_cap_bytes = 64ull << 20;
  /// Records per data block. Part of the deterministic layout: run and
  /// resume must use the same value.
  std::uint64_t block_records = 512;
};

/// Streaming writer. Feed it every RunRecord in campaign seed order (the
/// drivers' record_sink does exactly that); call Finish() to seal. Not
/// thread-safe — records arrive from the single-threaded ordered reduction
/// in both drivers.
class CtrStoreWriter {
 public:
  /// Creates `dir` (and parents). Throws ConfigError on identity mismatch
  /// with an existing store (resume) or filesystem failure.
  CtrStoreWriter(std::string dir, const CtrStoreInfo& identity,
                 CtrWriterOptions options = {});
  ~CtrStoreWriter();  // Finish()es, swallowing errors

  CtrStoreWriter(const CtrStoreWriter&) = delete;
  CtrStoreWriter& operator=(const CtrStoreWriter&) = delete;

  /// Append one record (or, while below the resumed store's record count,
  /// verify it against the stored seed-hash chain and skip the write).
  /// Throws ConfigError after Finish, on hash mismatch, or on I/O failure.
  void Add(const campaign::RunRecord& rec);

  /// Flush the partial block, write the footer, fsync, close. Idempotent.
  void Finish();

  const std::string& dir() const { return dir_; }
  /// Records passed to Add (skipped + written).
  std::uint64_t added() const { return added_; }
  /// Records that were already in the store when it was (re)opened.
  std::uint64_t stored() const { return stored_count_; }
  std::uint64_t segments() const { return segment_index_ + (file_ ? 1 : 0); }

 private:
  void EnsureSegmentOpen();
  void FlushBlock();
  void SealSegment();
  void WriteFrame(const std::string& payload);
  std::uint64_t DictId(const std::string& s);

  std::string dir_;
  CtrStoreInfo info_;
  CtrWriterOptions options_;
  std::FILE* file_ = nullptr;
  std::uint64_t segment_index_ = 0;    // index of the segment file_ writes
  std::uint64_t segment_bytes_ = 0;    // bytes written to the open segment
  std::uint64_t segment_records_ = 0;  // records flushed into it
  std::uint64_t segment_blocks_ = 0;
  std::uint64_t base_records_ = 0;  // records in sealed earlier segments

  // Current block, column-major.
  std::vector<std::uint64_t> cols_[kNumColumns];
  std::map<std::string, std::uint64_t> dict_map_;  // per segment; ""->0
  std::uint64_t dict_size_ = 1;
  std::vector<std::string> new_dict_entries_;  // first seen this block

  std::uint64_t added_ = 0;
  std::uint64_t stored_count_ = 0;  // records recovered on resume
  std::uint64_t fnv_ = 0;           // cumulative seed hash, record 0 onward
  std::uint64_t recovered_fnv_ = 0;  // hash of the stored prefix (resume)
  bool finished_ = false;
};

/// Streaming scanner: pulls RunRecords back out in stored (campaign seed)
/// order, one segment in memory at a time, decoding only the columns in
/// `mask`. Throws ConfigError on a missing store, bad magic/header, or
/// structural corruption behind a valid CRC; a torn tail (crashed writer)
/// is served as the intact record prefix with truncated() set — never an
/// error, exactly like the journal reader.
class CtrStoreScanner {
 public:
  explicit CtrStoreScanner(const std::string& path,
                           ColumnMask mask = kAllColumns);

  /// Decode the next record. False at the end of the intact data.
  bool Next(campaign::RunRecord* out);

  /// Header of the first segment (available from construction).
  const CtrStoreInfo& info() const { return info_; }
  /// A frame failed its CRC / framing before a footer — records past it
  /// (and any later segments) were not served.
  bool truncated() const { return truncated_; }
  /// The last scanned segment carried a footer (the writer Finish()ed).
  bool sealed() const { return sealed_; }
  std::uint64_t rows() const { return rows_; }

 private:
  bool LoadNextSegment();
  bool DecodeNextBlock();

  std::vector<std::string> segment_paths_;
  std::size_t next_segment_ = 0;
  ColumnMask mask_;
  CtrStoreInfo info_;
  bool have_info_ = false;

  std::string buf_;       // current segment bytes
  std::size_t pos_ = 0;   // frame cursor into buf_
  bool in_segment_ = false;
  bool segment_sealed_ = false;
  std::uint64_t segment_records_ = 0;
  std::uint64_t segment_blocks_ = 0;
  std::vector<std::string> dict_;  // per segment, id-indexed

  // Current decoded block, column-major (only masked columns filled).
  std::vector<std::uint64_t> cols_[kNumColumns];
  std::uint64_t block_size_ = 0;
  std::uint64_t row_in_block_ = 0;

  std::uint64_t rows_ = 0;
  std::uint64_t fnv_ = 0;  // running seed hash (verified against footers)
  bool truncated_ = false;
  bool sealed_ = false;
  bool done_ = false;
};

}  // namespace chaser::store

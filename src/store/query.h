// Streaming query engine over CTR trial stores.
//
// `chaser_analyze query` runs here: equality filters (`--where
// outcome=sdc,injector=stuckat`), grouped outcome tallies (`--group-by
// outcome|injector|fault_class|inject_class|rank`) and a top-K over
// injection sites (pc × instruction class) — all computed in one pass over
// a CtrStoreScanner that decodes only the columns the query touches and
// never materializes the record set. `export-csv` reproduces the records
// CSV byte-for-byte (shared row formatter with WriteRecordsCsv), demoting
// CSV from the storage format to an export.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "campaign/campaign.h"
#include "store/ctr.h"

namespace chaser::store {

/// Conjunction of equality predicates over a RunRecord; unset fields match
/// everything.
struct TrialFilter {
  std::optional<campaign::Outcome> outcome;
  std::optional<vm::TerminationKind> kind;
  std::optional<vm::GuestSignal> signal;
  std::optional<guest::InstrClass> inject_class;
  std::optional<Rank> inject_rank;
  std::optional<std::string> injector;
  std::optional<std::string> fault_class;
};

/// Parse a `--where` spec: comma-separated key=value pairs over the keys
/// outcome, kind, signal, inject_class, rank, injector, fault_class. Values
/// use the same names the CSV prints ("sdc", "fadd", ...); `injector=` with
/// an empty value matches the default injector. Throws ConfigError on an
/// unknown key or unparsable value.
TrialFilter ParseTrialFilter(const std::string& spec);

bool MatchesFilter(const TrialFilter& f, const campaign::RunRecord& r);

/// The columns a scan must decode to evaluate `f`.
ColumnMask FilterColumns(const TrialFilter& f);

enum class GroupBy : std::uint8_t {
  kNone,
  kOutcome,
  kInjector,
  kFaultClass,
  kInjectClass,
  kRank,
};

/// Parse "outcome"/"injector"/"fault_class"/"inject_class"/"rank".
bool ParseGroupBy(const std::string& name, GroupBy* out);

/// Per-group streaming aggregate.
struct GroupAgg {
  std::uint64_t trials = 0;
  std::uint64_t outcomes[5] = {};  // indexed by campaign::Outcome
  /// sample_weight sums (total and SDC share): the weighted SDC rate of a
  /// sampled campaign, exact under importance weights.
  double weight = 0.0;
  double sdc_weight = 0.0;
};

/// One injection site for --top-k: a static pc with its instruction class.
struct SiteAgg {
  std::uint64_t pc = 0;
  guest::InstrClass cls = guest::InstrClass::kMov;
  std::uint64_t trials = 0;
  std::uint64_t sdc = 0;
};

struct QueryOptions {
  TrialFilter filter;
  GroupBy group_by = GroupBy::kNone;
  /// > 0: also report the top-K sites by matched-trial count (ties broken by
  /// ascending pc). State is one map entry per *site*, bounded by the static
  /// program, not the trial count.
  unsigned top_k = 0;
};

struct QueryResult {
  std::uint64_t scanned = 0;
  std::uint64_t matched = 0;
  GroupAgg total;
  /// Group label -> aggregate, label-sorted (deterministic output). Labels
  /// are the CSV cell values; the empty injector/fault_class prints as
  /// "(default)" / "(none)".
  std::vector<std::pair<std::string, GroupAgg>> groups;
  std::vector<SiteAgg> top_sites;
  CtrStoreInfo info;
  bool truncated = false;
  bool sealed = true;
};

/// One streaming pass over the store at `path`, decoding only the columns
/// the options touch. Throws ConfigError on a missing/corrupt store.
QueryResult RunQuery(const std::string& path, const QueryOptions& options);

/// Human-readable rendering of a query result (chaser_analyze's default
/// output; --json renders tool-side).
std::string RenderQueryResult(const QueryResult& result,
                              const QueryOptions& options);

struct ExportStats {
  std::uint64_t rows = 0;
  unsigned csv_version = 0;
  bool truncated = false;
  bool sealed = true;
};

/// Stream the store back out as a records CSV, byte-identical to what
/// WriteRecordsCsv produces for the same records and sample policy: pass 1
/// scans the injector column alone to pick the format version, pass 2
/// streams every row through the shared formatter. A truncated store exports
/// its intact prefix (flagged in the returned stats).
ExportStats ExportCsv(const std::string& path, std::ostream& out);

}  // namespace chaser::store

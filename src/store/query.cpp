#include "store/query.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "campaign/report.h"
#include "common/error.h"
#include "common/strings.h"

namespace chaser::store {

namespace {

using campaign::Outcome;
using campaign::RunRecord;

Outcome ParseOutcomeName(const std::string& s) {
  for (const Outcome o : {Outcome::kBenign, Outcome::kTerminated, Outcome::kSdc,
                          Outcome::kInfra, Outcome::kCrashed}) {
    if (s == campaign::OutcomeName(o)) return o;
  }
  throw ConfigError("--where: unknown outcome '" + s + "'");
}

vm::TerminationKind ParseKindName(const std::string& s) {
  for (const auto k :
       {vm::TerminationKind::kRunning, vm::TerminationKind::kExited,
        vm::TerminationKind::kSignaled, vm::TerminationKind::kAssertFailed,
        vm::TerminationKind::kMpiError}) {
    if (s == vm::TerminationKindName(k)) return k;
  }
  throw ConfigError("--where: unknown termination kind '" + s + "'");
}

vm::GuestSignal ParseSignalName(const std::string& s) {
  for (const auto sig : {vm::GuestSignal::kNone, vm::GuestSignal::kSegv,
                         vm::GuestSignal::kFpe, vm::GuestSignal::kIll,
                         vm::GuestSignal::kSys, vm::GuestSignal::kAbort,
                         vm::GuestSignal::kKill, vm::GuestSignal::kCrash}) {
    if (s == vm::GuestSignalName(sig)) return sig;
  }
  throw ConfigError("--where: unknown signal '" + s + "'");
}

}  // namespace

TrialFilter ParseTrialFilter(const std::string& spec) {
  TrialFilter f;
  std::vector<KeyVal> pairs;
  std::string bad;
  if (!ParseKeyValList(spec, &pairs, &bad)) {
    throw ConfigError("--where: bad token '" + bad +
                      "' (expected key=value[,key=value...])");
  }
  for (const KeyVal& kv : pairs) {
    if (kv.key == "outcome") {
      f.outcome = ParseOutcomeName(kv.value);
    } else if (kv.key == "kind") {
      f.kind = ParseKindName(kv.value);
    } else if (kv.key == "signal") {
      f.signal = ParseSignalName(kv.value);
    } else if (kv.key == "inject_class") {
      guest::InstrClass cls;
      if (!guest::ParseInstrClass(kv.value, &cls)) {
        throw ConfigError("--where: unknown instruction class '" + kv.value +
                          "'");
      }
      f.inject_class = cls;
    } else if (kv.key == "rank") {
      std::uint64_t r = 0;
      if (!ParseU64(kv.value, &r)) {
        throw ConfigError("--where: bad rank '" + kv.value + "'");
      }
      f.inject_rank = static_cast<Rank>(r);
    } else if (kv.key == "injector") {
      f.injector = kv.value;
    } else if (kv.key == "fault_class") {
      f.fault_class = kv.value;
    } else {
      throw ConfigError(
          "--where: unknown key '" + kv.key +
          "' (known: outcome, kind, signal, inject_class, rank, injector, "
          "fault_class)");
    }
  }
  return f;
}

bool MatchesFilter(const TrialFilter& f, const RunRecord& r) {
  if (f.outcome && r.outcome != *f.outcome) return false;
  if (f.kind && r.kind != *f.kind) return false;
  if (f.signal && r.signal != *f.signal) return false;
  if (f.inject_class && r.inject_class != *f.inject_class) return false;
  if (f.inject_rank && r.inject_rank != *f.inject_rank) return false;
  if (f.injector && r.injector != *f.injector) return false;
  if (f.fault_class && r.fault_class != *f.fault_class) return false;
  return true;
}

ColumnMask FilterColumns(const TrialFilter& f) {
  ColumnMask mask = 0;
  if (f.outcome) mask |= MaskOf(kColOutcome);
  if (f.kind) mask |= MaskOf(kColKind);
  if (f.signal) mask |= MaskOf(kColSignal);
  if (f.inject_class) mask |= MaskOf(kColInjectClass);
  if (f.inject_rank) mask |= MaskOf(kColInjectRank);
  if (f.injector) mask |= MaskOf(kColInjector);
  if (f.fault_class) mask |= MaskOf(kColFaultClass);
  return mask;
}

bool ParseGroupBy(const std::string& name, GroupBy* out) {
  if (name == "outcome") *out = GroupBy::kOutcome;
  else if (name == "injector") *out = GroupBy::kInjector;
  else if (name == "fault_class") *out = GroupBy::kFaultClass;
  else if (name == "inject_class") *out = GroupBy::kInjectClass;
  else if (name == "rank") *out = GroupBy::kRank;
  else return false;
  return true;
}

namespace {

ColumnMask GroupColumns(GroupBy g) {
  switch (g) {
    case GroupBy::kNone: return 0;
    case GroupBy::kOutcome: return MaskOf(kColOutcome);
    case GroupBy::kInjector: return MaskOf(kColInjector);
    case GroupBy::kFaultClass: return MaskOf(kColFaultClass);
    case GroupBy::kInjectClass: return MaskOf(kColInjectClass);
    case GroupBy::kRank: return MaskOf(kColInjectRank);
  }
  return 0;
}

std::string GroupLabel(GroupBy g, const RunRecord& r) {
  switch (g) {
    case GroupBy::kNone: return "";
    case GroupBy::kOutcome: return campaign::OutcomeName(r.outcome);
    case GroupBy::kInjector:
      return r.injector.empty() ? "(default)" : r.injector;
    case GroupBy::kFaultClass:
      return r.fault_class.empty() ? "(none)" : r.fault_class;
    case GroupBy::kInjectClass: return guest::ClassName(r.inject_class);
    case GroupBy::kRank: return StrFormat("%d", r.inject_rank);
  }
  return "";
}

void Tally(GroupAgg* agg, const RunRecord& r) {
  ++agg->trials;
  const int o = static_cast<int>(r.outcome);
  if (o >= 0 && o < 5) ++agg->outcomes[o];
  agg->weight += r.sample_weight;
  if (r.outcome == Outcome::kSdc) agg->sdc_weight += r.sample_weight;
}

}  // namespace

QueryResult RunQuery(const std::string& path, const QueryOptions& options) {
  // Aggregation always reads outcome + weight; the filter, group key and
  // site report add exactly the columns they touch. Everything else is
  // skipped by its length prefix on disk.
  ColumnMask mask = MaskOf(kColOutcome) | MaskOf(kColSampleWeight) |
                    FilterColumns(options.filter) |
                    GroupColumns(options.group_by);
  if (options.top_k > 0) {
    mask |= MaskOf(kColInjectPc) | MaskOf(kColInjectClass);
  }

  CtrStoreScanner scanner(path, mask);
  QueryResult result;
  result.info = scanner.info();

  std::map<std::string, GroupAgg> groups;
  std::map<std::pair<std::uint64_t, unsigned>, SiteAgg> sites;
  RunRecord r;
  while (scanner.Next(&r)) {
    ++result.scanned;
    if (!MatchesFilter(options.filter, r)) continue;
    ++result.matched;
    Tally(&result.total, r);
    if (options.group_by != GroupBy::kNone) {
      Tally(&groups[GroupLabel(options.group_by, r)], r);
    }
    if (options.top_k > 0) {
      SiteAgg& site = sites[{r.inject_pc,
                             static_cast<unsigned>(r.inject_class)}];
      site.pc = r.inject_pc;
      site.cls = r.inject_class;
      ++site.trials;
      if (r.outcome == Outcome::kSdc) ++site.sdc;
    }
  }
  result.truncated = scanner.truncated();
  result.sealed = scanner.sealed();
  result.groups.assign(groups.begin(), groups.end());
  if (options.top_k > 0) {
    std::vector<SiteAgg> all;
    all.reserve(sites.size());
    for (const auto& [key, site] : sites) all.push_back(site);
    std::sort(all.begin(), all.end(), [](const SiteAgg& a, const SiteAgg& b) {
      if (a.trials != b.trials) return a.trials > b.trials;
      if (a.pc != b.pc) return a.pc < b.pc;
      return static_cast<unsigned>(a.cls) < static_cast<unsigned>(b.cls);
    });
    if (all.size() > options.top_k) all.resize(options.top_k);
    result.top_sites = std::move(all);
  }
  return result;
}

namespace {

std::string AggLine(const GroupAgg& a) {
  std::string out = StrFormat(
      "trials %llu  benign %llu, terminated %llu, sdc %llu, infra %llu, "
      "crashed %llu",
      static_cast<unsigned long long>(a.trials),
      static_cast<unsigned long long>(a.outcomes[0]),
      static_cast<unsigned long long>(a.outcomes[1]),
      static_cast<unsigned long long>(a.outcomes[2]),
      static_cast<unsigned long long>(a.outcomes[3]),
      static_cast<unsigned long long>(a.outcomes[4]));
  if (a.weight > 0.0) {
    out += StrFormat("  (weighted sdc %.2f%%)", 100.0 * a.sdc_weight / a.weight);
  }
  return out;
}

const char* GroupByLabel(GroupBy g) {
  switch (g) {
    case GroupBy::kNone: return "";
    case GroupBy::kOutcome: return "outcome";
    case GroupBy::kInjector: return "injector";
    case GroupBy::kFaultClass: return "fault_class";
    case GroupBy::kInjectClass: return "inject_class";
    case GroupBy::kRank: return "rank";
  }
  return "";
}

}  // namespace

std::string RenderQueryResult(const QueryResult& result,
                              const QueryOptions& options) {
  std::string out = StrFormat(
      "ctr store: app '%s', seed %llu, policy %s, shard %llu/%llu\n",
      result.info.app.c_str(),
      static_cast<unsigned long long>(result.info.campaign_seed),
      campaign::SamplePolicyName(result.info.sample_policy),
      static_cast<unsigned long long>(result.info.shard_index),
      static_cast<unsigned long long>(result.info.shard_count));
  if (result.truncated) {
    out += "  warning: store is truncated (writer died); results cover the "
           "intact prefix\n";
  } else if (!result.sealed) {
    out += "  warning: store is unsealed (campaign still running or killed); "
           "results cover the flushed prefix\n";
  }
  out += StrFormat("  %llu records scanned, %llu matched\n",
                   static_cast<unsigned long long>(result.scanned),
                   static_cast<unsigned long long>(result.matched));
  out += "  " + AggLine(result.total) + "\n";
  if (options.group_by != GroupBy::kNone) {
    out += StrFormat("  by %s:\n", GroupByLabel(options.group_by));
    for (const auto& [label, agg] : result.groups) {
      out += StrFormat("    %-16s %s\n", label.c_str(), AggLine(agg).c_str());
    }
  }
  if (options.top_k > 0) {
    out += StrFormat("  top %u sites by trials:\n", options.top_k);
    for (const SiteAgg& s : result.top_sites) {
      out += StrFormat("    pc %s  class %-7s trials %llu  sdc %llu\n",
                       Hex64(s.pc).c_str(), guest::ClassName(s.cls),
                       static_cast<unsigned long long>(s.trials),
                       static_cast<unsigned long long>(s.sdc));
    }
  }
  return out;
}

ExportStats ExportCsv(const std::string& path, std::ostream& out) {
  ExportStats stats;
  // Pass 1: the format version depends on whether *any* record names an
  // injector (WriteRecordsCsv's rule). One column decoded, everything else
  // skipped by its length prefix.
  bool any_injector = false;
  {
    CtrStoreScanner probe(path, MaskOf(kColInjector));
    RunRecord r;
    while (probe.Next(&r)) {
      if (!r.injector.empty()) {
        any_injector = true;
        break;
      }
    }
  }

  CtrStoreScanner scanner(path, kAllColumns);
  stats.csv_version = campaign::RecordsCsvVersionFor(
      any_injector, scanner.info().sample_policy);

  std::string buf;
  buf.reserve(1 << 16);
  campaign::AppendRecordsCsvHeader(&buf, stats.csv_version);
  RunRecord r;
  while (scanner.Next(&r)) {
    campaign::AppendRecordsCsvRow(&buf, r, stats.csv_version);
    ++stats.rows;
    if (buf.size() >= (1 << 16) - 256) {
      out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
      buf.clear();
    }
  }
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  stats.truncated = scanner.truncated();
  stats.sealed = scanner.sealed();
  return stats;
}

}  // namespace chaser::store

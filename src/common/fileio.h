// Crash-safe file output helpers.
//
// Campaign artifacts (CSV exports, reports, analysis dumps) are read back by
// later tooling — a process killed mid-write must never leave a truncated
// file that a reader mistakes for a complete one. The discipline here is the
// classic write-to-temp / fsync / rename: the destination path either holds
// the old contents or the complete new contents, never a prefix.
#pragma once

#include <string>

namespace chaser {

/// Write `content` to `path` atomically: the bytes go to `<path>.tmp`, are
/// flushed and fsync'd, and the temp file is renamed over `path`. Throws
/// ConfigError if any step fails (the temp file is removed on failure).
void WriteFileAtomic(const std::string& path, const std::string& content);

/// Read the whole file at `path` into a string. Throws ConfigError when the
/// file cannot be opened or read.
std::string ReadFileToString(const std::string& path);

}  // namespace chaser

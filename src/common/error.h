// Error types for host-side failures (configuration, assembly, API misuse).
//
// Guest-visible faults (segfaults, FP exceptions, MPI errors) are *not*
// exceptions: they are modelled as guest signals / exit reasons in src/vm and
// src/mpi so that a fault-injection campaign can observe them as outcomes.
#pragma once

#include <stdexcept>
#include <string>

namespace chaser {

/// Base class for all host-side Chaser errors.
class ChaserError : public std::runtime_error {
 public:
  explicit ChaserError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a guest program fails to assemble (bad label, bad operand...).
class AssemblyError : public ChaserError {
 public:
  explicit AssemblyError(const std::string& what) : ChaserError(what) {}
};

/// Raised on invalid configuration of the VM, injector, or MPI world.
class ConfigError : public ChaserError {
 public:
  explicit ConfigError(const std::string& what) : ChaserError(what) {}
};

/// Raised when the user-facing console command cannot be parsed.
class CommandError : public ChaserError {
 public:
  explicit CommandError(const std::string& what) : ChaserError(what) {}
};

}  // namespace chaser

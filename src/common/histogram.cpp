#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace chaser {

Histogram::Histogram(std::uint64_t bucket_width, std::size_t nbuckets)
    : bucket_width_(bucket_width == 0 ? 1 : bucket_width),
      counts_(nbuckets == 0 ? 1 : nbuckets, 0) {}

void Histogram::Add(std::uint64_t sample) {
  const std::size_t idx = static_cast<std::size_t>(sample / bucket_width_);
  if (idx < counts_.size()) {
    ++counts_[idx];
  } else {
    ++overflow_;
  }
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::ApproxQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank statistic: find the bucket holding the ceil(q*n)-th sample
  // (1-based). q == 0 degenerates to rank 1, i.e. the minimum.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    // Bucket upper bounds can overshoot the largest sample actually seen
    // (e.g. one sample of 5 in a [0,10) bucket) — the observed maximum is
    // always the tighter bound, so cap with it.
    if (seen >= rank) return std::min(bucket_hi(i), max_);
  }
  // The rank lands in the overflow bucket, whose boundaries say nothing
  // beyond "past the last bucket": saturate to the observed maximum.
  return max_;
}

std::string Histogram::Render(const std::string& label) const {
  std::string out = StrFormat("%s  (n=%llu, min=%llu, mean=%.1f, max=%llu)\n",
                              label.c_str(), static_cast<unsigned long long>(count_),
                              static_cast<unsigned long long>(min_), mean(),
                              static_cast<unsigned long long>(max_));
  std::uint64_t peak = overflow_;
  for (auto c : counts_) peak = std::max(peak, c);
  if (peak == 0) peak = 1;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const int bar = static_cast<int>(50 * counts_[i] / peak);
    out += StrFormat("  [%10llu, %10llu) %6llu %s\n",
                     static_cast<unsigned long long>(bucket_lo(i)),
                     static_cast<unsigned long long>(bucket_hi(i)),
                     static_cast<unsigned long long>(counts_[i]),
                     std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
  if (overflow_ > 0) {
    const int bar = static_cast<int>(50 * overflow_ / peak);
    out += StrFormat("  [%10llu,        inf) %6llu %s\n",
                     static_cast<unsigned long long>(bucket_width_ * counts_.size()),
                     static_cast<unsigned long long>(overflow_),
                     std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
  return out;
}

}  // namespace chaser

// Deterministic random number generation.
//
// Every stochastic component (probabilistic triggers, campaign fault-site
// randomisation, workload generators) draws from an explicitly seeded Rng so
// that a campaign run can be reproduced bit-for-bit from its seed — this is
// how the paper re-executes "the same two cases" for the Fig. 7 analysis.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/error.h"

namespace chaser {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t UniformU64(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform integer in [0, n). Throws ConfigError if n == 0 — the
  /// alternative is an underflow to UniformU64(0, SIZE_MAX) and a garbage
  /// index that the caller would use to address an empty container.
  std::size_t Index(std::size_t n) {
    if (n == 0) throw ConfigError("Rng::Index: n must be > 0 (empty range)");
    return static_cast<std::size_t>(UniformU64(0, n - 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Pick a uniformly random element from a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Index(v.size())];
  }

  /// Derive a child seed (for per-run or per-rank sub-generators).
  std::uint64_t Fork() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace chaser

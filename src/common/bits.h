// Bit-manipulation helpers used by the fault injectors and the taint engine.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace chaser {

/// Flip bit `bit` (0 = LSB) of `value`.
inline std::uint64_t FlipBit(std::uint64_t value, unsigned bit) {
  return value ^ (std::uint64_t{1} << (bit & 63u));
}

/// Build a mask with `nbits` distinct random bit positions set, chosen
/// uniformly from [0, width). Used by multi-bit-flip fault models.
inline std::uint64_t RandomBitMask(Rng& rng, unsigned nbits, unsigned width) {
  if (width == 0 || width > 64) width = 64;
  std::uint64_t mask = 0;
  unsigned placed = 0;
  while (placed < nbits && placed < width) {
    const unsigned bit = static_cast<unsigned>(rng.UniformU64(0, width - 1));
    const std::uint64_t b = std::uint64_t{1} << bit;
    if ((mask & b) == 0) {
      mask |= b;
      ++placed;
    }
  }
  return mask;
}

/// Number of set bits.
inline unsigned PopCount(std::uint64_t v) {
  return static_cast<unsigned>(std::popcount(v));
}

/// Extract byte `i` (0 = least significant).
inline std::uint8_t ByteOf(std::uint64_t v, unsigned i) {
  return static_cast<std::uint8_t>(v >> (8 * (i & 7u)));
}

/// Replace byte `i` of `v` with `b`.
inline std::uint64_t WithByte(std::uint64_t v, unsigned i, std::uint8_t b) {
  const unsigned sh = 8 * (i & 7u);
  return (v & ~(std::uint64_t{0xff} << sh)) | (std::uint64_t{b} << sh);
}

/// Mask covering the low `bytes` bytes (bytes in [1,8]); 8 → all ones.
inline std::uint64_t LowBytesMask(unsigned bytes) {
  return bytes >= 8 ? ~std::uint64_t{0}
                    : ((std::uint64_t{1} << (8 * bytes)) - 1);
}

/// a + b, clamped to UINT64_MAX on overflow. Watchdog-budget arithmetic
/// (multiplier * golden instret + slack) must never wrap to a tiny budget
/// that would kill every healthy trial.
inline std::uint64_t SaturatingAddU64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t r = 0;
  return __builtin_add_overflow(a, b, &r) ? ~std::uint64_t{0} : r;
}

/// a * b, clamped to UINT64_MAX on overflow.
inline std::uint64_t SaturatingMulU64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t r = 0;
  return __builtin_mul_overflow(a, b, &r) ? ~std::uint64_t{0} : r;
}

/// Positions (0-based) of set bits, LSB first.
inline std::vector<unsigned> SetBitPositions(std::uint64_t v) {
  std::vector<unsigned> out;
  while (v != 0) {
    const unsigned b = static_cast<unsigned>(std::countr_zero(v));
    out.push_back(b);
    v &= v - 1;
  }
  return out;
}

}  // namespace chaser

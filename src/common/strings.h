// Small string formatting/parsing helpers (gcc 12 lacks std::format).
#pragma once

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace chaser {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Split `s` on any of the whitespace characters, dropping empty tokens.
std::vector<std::string> SplitWhitespace(const std::string& s);

/// Split on a single delimiter, keeping empty tokens.
std::vector<std::string> Split(const std::string& s, char delim);

/// Hex rendering of a 64-bit value, e.g. "0x00000000004001a8".
std::string Hex64(std::uint64_t v);

/// Parse an unsigned integer (decimal, or 0x-prefixed hex).
/// Returns false on malformed input.
bool ParseU64(const std::string& s, std::uint64_t* out);

/// Parse a double. Returns false on malformed input.
bool ParseDouble(const std::string& s, double* out);

/// One `key=value` pair from a comma-separated spec string.
struct KeyVal {
  std::string key;
  std::string value;
};

/// Split a "k1=v1,k2=v2,..." spec into pairs — the one tokenizer shared by
/// `--injector` and `--hub-fault`-style flags. An empty spec yields an empty
/// list. Returns false (and sets *bad_token to the offending token) when a
/// token lacks '=' or has an empty key; the caller owns the error message.
bool ParseKeyValList(const std::string& spec, std::vector<KeyVal>* out,
                     std::string* bad_token);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Lower-case copy (ASCII).
std::string ToLower(std::string s);

}  // namespace chaser

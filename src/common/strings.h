// Small string formatting/parsing helpers (gcc 12 lacks std::format).
#pragma once

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace chaser {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Split `s` on any of the whitespace characters, dropping empty tokens.
std::vector<std::string> SplitWhitespace(const std::string& s);

/// Split on a single delimiter, keeping empty tokens.
std::vector<std::string> Split(const std::string& s, char delim);

/// Hex rendering of a 64-bit value, e.g. "0x00000000004001a8".
std::string Hex64(std::uint64_t v);

/// Parse an unsigned integer (decimal, or 0x-prefixed hex).
/// Returns false on malformed input.
bool ParseU64(const std::string& s, std::uint64_t* out);

/// Parse a double. Returns false on malformed input.
bool ParseDouble(const std::string& s, double* out);

/// One `key=value` pair from a comma-separated spec string.
struct KeyVal {
  std::string key;
  std::string value;
};

/// Split a "k1=v1,k2=v2,..." spec into pairs — the one tokenizer shared by
/// `--injector` and `--hub-fault`-style flags. An empty spec yields an empty
/// list. Returns false (and sets *bad_token to the offending token) when a
/// token lacks '=' or has an empty key; the caller owns the error message.
bool ParseKeyValList(const std::string& spec, std::vector<KeyVal>* out,
                     std::string* bad_token);

/// Minimal JSON field lookup for the small, well-known documents chaser
/// tools exchange (status.json, /status scrape bodies). Finds the FIRST
/// `"key":` occurrence anywhere in `json` — keys must therefore be unique
/// across nesting levels in the documents these are used on — and writes the
/// raw value token (a quoted string, number, `null`, `true`/`false`, or a
/// balanced {...}/[...] sub-document) to *out. Returns false when the key is
/// absent or the value is malformed. Not a JSON validator.
bool JsonFindRaw(const std::string& json, const std::string& key,
                 std::string* out);

/// JsonFindRaw restricted to quoted string values; *out gets the unquoted
/// text with \" \\ \n escapes decoded. False if absent or not a string.
bool JsonFindString(const std::string& json, const std::string& key,
                    std::string* out);

/// JsonFindRaw restricted to numbers. False if absent, `null`, or not a
/// number — callers use the false return to honor the null-for-unknown
/// contract (e.g. a shard's eta_s) instead of reading 0.
bool JsonFindNumber(const std::string& json, const std::string& key,
                    double* out);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Lower-case copy (ASCII).
std::string ToLower(std::string s);

}  // namespace chaser

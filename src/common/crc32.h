// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// One checksum shared by every framed byte stream in the tree — the trial
// journal's record frames and the hub wire protocol's command frames — so a
// frame written by one subsystem is checkable by the other's tooling and the
// two implementations can never drift.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace chaser {

inline std::uint32_t Crc32(const char* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ static_cast<std::uint8_t>(data[i])) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace chaser

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// One checksum shared by every framed byte stream in the tree — the trial
// journal's record frames and the hub wire protocol's command frames — so a
// frame written by one subsystem is checkable by the other's tooling and the
// two implementations can never drift.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace chaser {

/// Slicing-by-8: eight derived tables let the loop fold eight bytes per
/// iteration instead of one — same polynomial, same result, ~5x the
/// throughput, which matters once columnar stores checksum megabytes of
/// block frames per scan.
inline std::uint32_t Crc32(const char* data, std::size_t n) {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (int j = 1; j < 8; ++j) {
        t[j][i] = t[0][t[j - 1][i] & 0xFFu] ^ (t[j - 1][i] >> 8);
      }
    }
    return t;
  }();
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint32_t lo =
        crc ^ (static_cast<std::uint32_t>(p[i]) |
               static_cast<std::uint32_t>(p[i + 1]) << 8 |
               static_cast<std::uint32_t>(p[i + 2]) << 16 |
               static_cast<std::uint32_t>(p[i + 3]) << 24);
    const std::uint32_t hi = static_cast<std::uint32_t>(p[i + 4]) |
                             static_cast<std::uint32_t>(p[i + 5]) << 8 |
                             static_cast<std::uint32_t>(p[i + 6]) << 16 |
                             static_cast<std::uint32_t>(p[i + 7]) << 24;
    crc = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
          tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
          tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
          tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
  }
  for (; i < n; ++i) {
    crc = tables[0][(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace chaser

#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace chaser {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Parallel campaign workers log concurrently; serialize sink writes so lines
// never interleave mid-message.
std::mutex g_sink_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[chaser %s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace chaser

// Fundamental type aliases shared across the Chaser codebase.
#pragma once

#include <cstdint>

namespace chaser {

/// Guest virtual address (the emulated process's address space).
using GuestAddr = std::uint64_t;

/// Guest physical address (after soft-MMU translation).
using PhysAddr = std::uint64_t;

/// Identifier of a guest process inside the virtual machine.
using Pid = std::uint32_t;

/// MPI rank number.
using Rank = int;

/// Count of executed guest instructions.
using InstrCount = std::uint64_t;

inline constexpr Pid kInvalidPid = 0xffffffffu;

}  // namespace chaser

// Fixed-bucket histogram used by the campaign statistics and the
// Fig. 8 / Fig. 9 distribution benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace chaser {

class Histogram {
 public:
  /// Buckets of equal `bucket_width` covering [0, bucket_width * nbuckets);
  /// samples beyond the last bucket land in an overflow bucket.
  Histogram(std::uint64_t bucket_width, std::size_t nbuckets);

  void Add(std::uint64_t sample);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return min_; }
  std::uint64_t max() const { return max_; }
  double mean() const;

  /// Approximate rank statistic: the upper bound of the bucket holding the
  /// ceil(q * count)-th sample (1-based; q is clamped to [0, 1], and q == 0
  /// degenerates to rank 1, the minimum's bucket). The result is capped at
  /// the observed max(), so a quantile that lands in the overflow bucket —
  /// or in a bucket whose upper bound overshoots the largest sample —
  /// saturates to max() instead of leaking a bucket boundary no sample ever
  /// reached. Returns 0 on an empty histogram.
  std::uint64_t ApproxQuantile(double q) const;

  std::size_t num_buckets() const { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  std::uint64_t bucket_lo(std::size_t i) const { return bucket_width_ * i; }
  std::uint64_t bucket_hi(std::size_t i) const { return bucket_width_ * (i + 1); }
  std::uint64_t overflow() const { return overflow_; }

  /// Multi-line ASCII rendering (one row per non-empty bucket with a bar).
  std::string Render(const std::string& label) const;

 private:
  std::uint64_t bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace chaser

#include "common/strings.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace chaser {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::vector<std::string> SplitWhitespace(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Hex64(std::uint64_t v) {
  return StrFormat("0x%016llx", static_cast<unsigned long long>(v));
}

bool ParseU64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseKeyValList(const std::string& spec, std::vector<KeyVal>* out,
                     std::string* bad_token) {
  out->clear();
  if (spec.empty()) return true;
  for (const std::string& kv : Split(spec, ',')) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (bad_token != nullptr) *bad_token = kv;
      return false;
    }
    out->push_back({kv.substr(0, eq), kv.substr(eq + 1)});
  }
  return true;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace chaser

#include "common/strings.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace chaser {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::vector<std::string> SplitWhitespace(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Hex64(std::uint64_t v) {
  return StrFormat("0x%016llx", static_cast<unsigned long long>(v));
}

bool ParseU64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseKeyValList(const std::string& spec, std::vector<KeyVal>* out,
                     std::string* bad_token) {
  out->clear();
  if (spec.empty()) return true;
  for (const std::string& kv : Split(spec, ',')) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (bad_token != nullptr) *bad_token = kv;
      return false;
    }
    out->push_back({kv.substr(0, eq), kv.substr(eq + 1)});
  }
  return true;
}

namespace {

/// Position just past `"key"` + optional whitespace + ':', or npos.
std::size_t FindJsonValueStart(const std::string& json,
                               const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    std::size_t p = pos + needle.size();
    while (p < json.size() &&
           std::isspace(static_cast<unsigned char>(json[p]))) {
      ++p;
    }
    if (p < json.size() && json[p] == ':') {
      ++p;
      while (p < json.size() &&
             std::isspace(static_cast<unsigned char>(json[p]))) {
        ++p;
      }
      return p;
    }
    pos += needle.size();  // a string VALUE that happens to look like the key
  }
  return std::string::npos;
}

/// End (one past) of the quoted string starting at json[start] == '"'.
std::size_t QuotedEnd(const std::string& json, std::size_t start) {
  for (std::size_t p = start + 1; p < json.size(); ++p) {
    if (json[p] == '\\') {
      ++p;
    } else if (json[p] == '"') {
      return p + 1;
    }
  }
  return std::string::npos;
}

}  // namespace

bool JsonFindRaw(const std::string& json, const std::string& key,
                 std::string* out) {
  const std::size_t start = FindJsonValueStart(json, key);
  if (start == std::string::npos || start >= json.size()) return false;
  const char c = json[start];
  if (c == '"') {
    const std::size_t end = QuotedEnd(json, start);
    if (end == std::string::npos) return false;
    *out = json.substr(start, end - start);
    return true;
  }
  if (c == '{' || c == '[') {
    const char open = c;
    const char close = c == '{' ? '}' : ']';
    int depth = 0;
    for (std::size_t p = start; p < json.size(); ++p) {
      if (json[p] == '"') {
        const std::size_t end = QuotedEnd(json, p);
        if (end == std::string::npos) return false;
        p = end - 1;
      } else if (json[p] == open) {
        ++depth;
      } else if (json[p] == close) {
        if (--depth == 0) {
          *out = json.substr(start, p + 1 - start);
          return true;
        }
      }
    }
    return false;
  }
  // Bare token: number, null, true, false — up to a structural delimiter.
  std::size_t p = start;
  while (p < json.size() && json[p] != ',' && json[p] != '}' &&
         json[p] != ']' &&
         !std::isspace(static_cast<unsigned char>(json[p]))) {
    ++p;
  }
  if (p == start) return false;
  *out = json.substr(start, p - start);
  return true;
}

bool JsonFindString(const std::string& json, const std::string& key,
                    std::string* out) {
  std::string raw;
  if (!JsonFindRaw(json, key, &raw) || raw.size() < 2 || raw.front() != '"') {
    return false;
  }
  std::string decoded;
  decoded.reserve(raw.size() - 2);
  for (std::size_t p = 1; p + 1 < raw.size(); ++p) {
    if (raw[p] == '\\' && p + 2 < raw.size()) {
      ++p;
      decoded.push_back(raw[p] == 'n' ? '\n' : raw[p]);
    } else {
      decoded.push_back(raw[p]);
    }
  }
  *out = decoded;
  return true;
}

bool JsonFindNumber(const std::string& json, const std::string& key,
                    double* out) {
  std::string raw;
  if (!JsonFindRaw(json, key, &raw)) return false;
  return ParseDouble(raw, out);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace chaser

#include "common/fileio.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "common/error.h"

namespace chaser {

void WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw ConfigError("WriteFileAtomic: cannot open '" + tmp + "' for writing");
  }
  const auto fail = [&](const std::string& what) {
    std::fclose(f);
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw ConfigError("WriteFileAtomic: " + what + " '" + tmp + "'");
  };
  if (!content.empty() &&
      std::fwrite(content.data(), 1, content.size(), f) != content.size()) {
    fail("short write to");
  }
  // Flush user-space buffers, then force the bytes to disk before the
  // rename — otherwise a crash could publish an empty file under `path`.
  if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0) fail("cannot flush");
  if (std::fclose(f) != 0) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw ConfigError("WriteFileAtomic: close failed for '" + tmp + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code rm_ec;
    std::filesystem::remove(tmp, rm_ec);
    throw ConfigError("WriteFileAtomic: cannot rename '" + tmp + "' to '" +
                      path + "': " + ec.message());
  }
}

std::string ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw ConfigError("ReadFileToString: cannot open '" + path + "'");
  }
  std::string content;
  char buf[64 * 1024];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    content.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    throw ConfigError("ReadFileToString: read failed for '" + path + "'");
  }
  return content;
}

}  // namespace chaser

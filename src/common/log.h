// Minimal leveled logger.
//
// Campaigns run thousands of guest executions; logging defaults to kWarn so
// the hot path stays quiet. Tests and examples raise the level explicitly.
#pragma once

#include <string>

namespace chaser {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emit a log line (to stderr) if `level` passes the threshold.
void LogMessage(LogLevel level, const std::string& msg);

inline void LogDebug(const std::string& msg) { LogMessage(LogLevel::kDebug, msg); }
inline void LogInfo(const std::string& msg) { LogMessage(LogLevel::kInfo, msg); }
inline void LogWarn(const std::string& msg) { LogMessage(LogLevel::kWarn, msg); }
inline void LogError(const std::string& msg) { LogMessage(LogLevel::kError, msg); }

}  // namespace chaser

// Matvec (paper §IV-A2): MPI matrix-vector product b = A*x.
//
// The master (rank 0) broadcasts x, distributes contiguous row blocks of A
// to the slaves, and collects the partial products. The master's work is
// almost entirely data movement — which is why the paper injects only mov
// instructions, only on the master node, for this benchmark.
#include <vector>

#include "apps/app.h"
#include "common/error.h"
#include "common/rng.h"
#include "guest/builder.h"

namespace chaser::apps {

using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;
using guest::Sys;

AppSpec BuildMatvec(const MatvecParams& params) {
  if (params.ranks < 2) throw ConfigError("matvec needs at least 2 ranks");
  const std::uint64_t slaves = static_cast<std::uint64_t>(params.ranks) - 1;
  if (params.rows % slaves != 0) {
    throw ConfigError("matvec: rows must divide evenly among the slaves");
  }
  const std::uint64_t rows_per = params.rows / slaves;
  const std::uint64_t cols = params.cols;

  Rng rng(params.seed);
  std::vector<double> a(params.rows * cols);
  for (double& v : a) v = rng.UniformDouble(-1.0, 1.0);
  std::vector<double> x(cols);
  for (double& v : x) v = rng.UniformDouble(-1.0, 1.0);
  // The matrix is stored column-permuted (identity here); slaves index x
  // through this table, exactly like the column-index metadata of a sparse
  // format. Slaves *trust* it — a corrupted entry that propagates over MPI
  // becomes an out-of-bounds access on the slave node.
  std::vector<std::uint64_t> perm(cols);
  for (std::uint64_t j = 0; j < cols; ++j) perm[j] = j;

  ProgramBuilder b("matvec");
  const GuestAddr a_addr = b.DataF64("A", a);
  const GuestAddr x_addr = b.DataF64("x", x);
  const GuestAddr b_addr = b.Bss("b", params.rows * 8);
  const GuestAddr xbuf_addr = b.Bss("xbuf", cols * 8);
  const GuestAddr aloc_addr = b.Bss("A_local", rows_per * cols * 8);
  const GuestAddr bloc_addr = b.Bss("b_local", rows_per * 8);
  const GuestAddr stage_addr = b.Bss("send_stage", rows_per * cols * 8);
  const GuestAddr bout_addr = b.Bss("b_out", params.rows * 8);
  const GuestAddr hdr_stage_addr = b.Bss("hdr_stage", 8);
  const GuestAddr hdr_buf_addr = b.Bss("hdr_buf", 8);
  const GuestAddr perm_addr = b.DataU64("perm", perm);
  const GuestAddr perm_stage_addr = b.Bss("perm_stage", cols * 8);
  const GuestAddr perm_buf_addr = b.Bss("perm_buf", cols * 8);

  const auto dt_double = static_cast<std::int64_t>(guest::MpiDatatype::kDouble);

  b.Sys(Sys::kMpiInit);
  b.Sys(Sys::kMpiCommRank);
  b.Mov(R(10), R(0));  // rank
  b.Sys(Sys::kMpiCommSize);
  b.Mov(R(11), R(0));  // size

  // Everyone participates in the broadcast of x; the root sends its data
  // segment copy, slaves receive into xbuf.
  auto root_buf = b.NewLabel("root_buf");
  auto do_bcast = b.NewLabel("do_bcast");
  b.CmpI(R(10), 0);
  b.Br(Cond::kEq, root_buf);
  b.MovI(R(1), static_cast<std::int64_t>(xbuf_addr));
  b.Jmp(do_bcast);
  b.Bind(root_buf);
  b.MovI(R(1), static_cast<std::int64_t>(x_addr));
  b.Bind(do_bcast);
  b.MovI(R(2), static_cast<std::int64_t>(cols));
  b.MovI(R(3), dt_double);
  b.MovI(R(4), 0);
  b.Sys(Sys::kMpiBcast);

  // Broadcast the column-permutation table. The master stages it first
  // (word-by-word data movement, like the row blocks).
  {
    auto perm_bss = b.NewLabel("perm_bss");
    auto perm_go = b.NewLabel("perm_go");
    b.CmpI(R(10), 0);
    b.Br(Cond::kNe, perm_bss);
    b.MovI(R(9), static_cast<std::int64_t>(perm_addr));
    b.MovI(R(14), static_cast<std::int64_t>(perm_stage_addr));
    b.MovI(R(2), 0);
    auto stage_loop = b.NewLabel("perm_stage_loop");
    auto stage_done = b.NewLabel("perm_stage_done");
    b.Bind(stage_loop);
    b.CmpI(R(2), static_cast<std::int64_t>(cols));
    b.Br(Cond::kGe, stage_done);
    b.ShlI(R(6), R(2), 3);
    b.Add(R(5), R(9), R(6));
    b.Ld(R(1), R(5), 0);
    b.Add(R(5), R(14), R(6));
    b.St(R(5), 0, R(1));
    b.AddI(R(2), R(2), 1);
    b.Jmp(stage_loop);
    b.Bind(stage_done);
    b.MovI(R(1), static_cast<std::int64_t>(perm_stage_addr));
    b.Jmp(perm_go);
    b.Bind(perm_bss);
    b.MovI(R(1), static_cast<std::int64_t>(perm_buf_addr));
    b.Bind(perm_go);
    b.MovI(R(2), static_cast<std::int64_t>(cols));
    b.MovI(R(3), static_cast<std::int64_t>(guest::MpiDatatype::kInt64));
    b.MovI(R(4), 0);
    b.Sys(Sys::kMpiBcast);
  }

  auto slave = b.NewLabel("slave");
  b.CmpI(R(10), 0);
  b.Br(Cond::kNe, slave);

  // ---- Master ---------------------------------------------------------------
  // Distribute row blocks: slave w gets rows [(w-1)*rows_per, w*rows_per).
  // Like the original matvec, the master reads the matrix and stages each
  // block into a send buffer word by word — the bulk of its mov activity is
  // this pointer-heavy data movement, so corrupted movs usually hit
  // addresses (OS exceptions) rather than MPI arguments.
  b.MovI(R(13), 1);  // w
  auto m_send_loop = b.NewLabel("m_send_loop");
  auto m_send_done = b.NewLabel("m_send_done");
  b.Bind(m_send_loop);
  b.Cmp(R(13), R(11));
  b.Br(Cond::kGe, m_send_done);
  b.SubI(R(8), R(13), 1);
  b.MulI(R(8), R(8), static_cast<std::int64_t>(rows_per * cols * 8));
  // Header first: the slave's row count travels as data (tag 0), and the
  // slave *trusts* it for its loop bounds and receive size — a corrupted
  // header is how faults propagate to, and kill, slave nodes (Table III).
  b.MovI(R(1), static_cast<std::int64_t>(rows_per));
  b.MovI(R(5), static_cast<std::int64_t>(hdr_stage_addr));
  b.St(R(5), 0, R(1));
  b.MovI(R(1), static_cast<std::int64_t>(hdr_stage_addr));
  b.MovI(R(2), 1);
  b.MovI(R(3), static_cast<std::int64_t>(guest::MpiDatatype::kInt64));
  b.Mov(R(4), R(13));
  b.MovI(R(5), 0);  // tag 0: header
  b.Sys(Sys::kMpiSend);
  // Stage the block: stage[k] = A[(w-1)*rows_per*cols + k] for k in block.
  // Base pointers are hoisted into registers (as a compiler would), so the
  // loop's movs handle data values and pointers — the operands the paper's
  // mov-fault campaign corrupts.
  b.MovI(R(9), static_cast<std::int64_t>(a_addr));
  b.Add(R(9), R(9), R(8));  // r9 = &A[block]
  b.MovI(R(14), static_cast<std::int64_t>(stage_addr));
  b.MovI(R(2), 0);  // k
  auto m_stage_loop = b.NewLabel("m_stage_loop");
  auto m_stage_done = b.NewLabel("m_stage_done");
  b.Bind(m_stage_loop);
  b.CmpI(R(2), static_cast<std::int64_t>(rows_per * cols));
  b.Br(Cond::kGe, m_stage_done);
  b.ShlI(R(6), R(2), 3);
  b.Add(R(5), R(9), R(6));
  b.Ld(R(1), R(5), 0);
  b.Add(R(5), R(14), R(6));
  b.St(R(5), 0, R(1));
  b.AddI(R(2), R(2), 1);
  b.Jmp(m_stage_loop);
  b.Bind(m_stage_done);
  b.Mov(R(1), R(14));  // send buffer = stage
  b.MovI(R(2), static_cast<std::int64_t>(rows_per * cols));
  b.MovI(R(3), dt_double);
  b.Mov(R(4), R(13));       // dest = w
  b.MovI(R(5), 1);          // tag 1: row block
  b.Sys(Sys::kMpiSend);
  b.AddI(R(13), R(13), 1);
  b.Jmp(m_send_loop);
  b.Bind(m_send_done);

  // Collect the partial products into b.
  b.MovI(R(13), 1);
  auto m_recv_loop = b.NewLabel("m_recv_loop");
  auto m_recv_done = b.NewLabel("m_recv_done");
  b.Bind(m_recv_loop);
  b.Cmp(R(13), R(11));
  b.Br(Cond::kGe, m_recv_done);
  b.SubI(R(8), R(13), 1);
  b.MulI(R(8), R(8), static_cast<std::int64_t>(rows_per * 8));
  b.MovI(R(1), static_cast<std::int64_t>(b_addr));
  b.Add(R(1), R(1), R(8));
  b.MovI(R(2), static_cast<std::int64_t>(rows_per));
  b.MovI(R(3), dt_double);
  b.Mov(R(4), R(13));       // source = w
  b.MovI(R(5), 2);          // tag 2: partial result
  b.Sys(Sys::kMpiRecv);
  b.AddI(R(13), R(13), 1);
  b.Jmp(m_recv_loop);
  b.Bind(m_recv_done);

  // Assemble the output vector (more master-side data movement).
  b.MovI(R(9), static_cast<std::int64_t>(b_addr));
  b.MovI(R(14), static_cast<std::int64_t>(bout_addr));
  b.MovI(R(2), 0);
  auto m_out_loop = b.NewLabel("m_out_loop");
  auto m_out_done = b.NewLabel("m_out_done");
  b.Bind(m_out_loop);
  b.CmpI(R(2), static_cast<std::int64_t>(params.rows));
  b.Br(Cond::kGe, m_out_done);
  b.ShlI(R(6), R(2), 3);
  b.Add(R(5), R(9), R(6));
  b.Ld(R(1), R(5), 0);
  b.Add(R(5), R(14), R(6));
  b.St(R(5), 0, R(1));
  b.AddI(R(2), R(2), 1);
  b.Jmp(m_out_loop);
  b.Bind(m_out_done);

  b.Sys(Sys::kMpiFinalize);
  b.MovI(R(4), static_cast<std::int64_t>(bout_addr));
  b.MovI(R(5), static_cast<std::int64_t>(params.rows * 8));
  b.Write(3, R(4), R(5));
  b.Exit(0);

  // ---- Slave ----------------------------------------------------------------
  b.Bind(slave);
  // Header: how many rows this slave owns (trusted, as in the original code).
  b.MovI(R(1), static_cast<std::int64_t>(hdr_buf_addr));
  b.MovI(R(2), 1);
  b.MovI(R(3), static_cast<std::int64_t>(guest::MpiDatatype::kInt64));
  b.MovI(R(4), 0);
  b.MovI(R(5), 0);
  b.Sys(Sys::kMpiRecv);
  b.MovI(R(5), static_cast<std::int64_t>(hdr_buf_addr));
  b.Ld(R(13), R(5), 0);  // r13 = my row count (from the wire)

  b.MovI(R(1), static_cast<std::int64_t>(aloc_addr));
  b.MulI(R(2), R(13), static_cast<std::int64_t>(cols));
  b.MovI(R(3), dt_double);
  b.MovI(R(4), 0);
  b.MovI(R(5), 1);
  b.Sys(Sys::kMpiRecv);

  // b_local[i] = dot(A_local[i][:], x) for i < header row count
  b.MovI(R(2), 0);  // i
  auto s_row_loop = b.NewLabel("s_row_loop");
  auto s_rows_done = b.NewLabel("s_rows_done");
  b.Bind(s_row_loop);
  b.Cmp(R(2), R(13));
  b.Br(Cond::kGe, s_rows_done);
  b.FmovI(F(0), 0.0);
  b.MovI(R(3), 0);  // j
  auto s_col_loop = b.NewLabel("s_col_loop");
  auto s_cols_done = b.NewLabel("s_cols_done");
  b.Bind(s_col_loop);
  b.CmpI(R(3), static_cast<std::int64_t>(cols));
  b.Br(Cond::kGe, s_cols_done);
  b.MulI(R(6), R(2), static_cast<std::int64_t>(cols));
  b.Add(R(6), R(6), R(3));
  b.ShlI(R(6), R(6), 3);
  b.MovI(R(9), static_cast<std::int64_t>(aloc_addr));
  b.Add(R(6), R(9), R(6));
  b.Fld(F(1), R(6), 0);
  // x element through the (trusted) permutation table.
  b.ShlI(R(6), R(3), 3);
  b.MovI(R(9), static_cast<std::int64_t>(perm_buf_addr));
  b.Add(R(6), R(9), R(6));
  b.Ld(R(8), R(6), 0);
  b.ShlI(R(6), R(8), 3);
  b.MovI(R(9), static_cast<std::int64_t>(xbuf_addr));
  b.Add(R(6), R(9), R(6));
  b.Fld(F(2), R(6), 0);
  b.Fmul(F(1), F(1), F(2));
  b.Fadd(F(0), F(0), F(1));
  b.AddI(R(3), R(3), 1);
  b.Jmp(s_col_loop);
  b.Bind(s_cols_done);
  b.ShlI(R(6), R(2), 3);
  b.MovI(R(9), static_cast<std::int64_t>(bloc_addr));
  b.Add(R(6), R(9), R(6));
  b.Fst(R(6), 0, F(0));
  b.AddI(R(2), R(2), 1);
  b.Jmp(s_row_loop);
  b.Bind(s_rows_done);

  b.MovI(R(1), static_cast<std::int64_t>(bloc_addr));
  b.Mov(R(2), R(13));  // send as many results as the header promised
  b.MovI(R(3), dt_double);
  b.MovI(R(4), 0);
  b.MovI(R(5), 2);
  b.Sys(Sys::kMpiSend);
  b.Sys(Sys::kMpiFinalize);
  b.MovI(R(4), static_cast<std::int64_t>(bloc_addr));
  b.MovI(R(5), static_cast<std::int64_t>(rows_per * 8));
  b.Write(3, R(4), R(5));
  b.Exit(0);

  AppSpec spec;
  spec.name = "matvec";
  spec.program = b.Finalize();
  spec.num_ranks = params.ranks;
  spec.fault_classes = {guest::InstrClass::kMov};
  return spec;
}

}  // namespace chaser::apps

// BFS (Rodinia-style): frontier-queue breadth-first search over a random CSR
// graph. The visited test makes the inner loop cmp-heavy, which is why the
// paper targets the cmp instruction class for this benchmark.
#include <vector>

#include "apps/app.h"
#include "common/rng.h"
#include "guest/builder.h"

namespace chaser::apps {

using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;

AppSpec BuildBfs(const BfsParams& params) {
  Rng rng(params.seed);
  const std::uint64_t n = params.nodes;

  // Host-side workload generation: a random graph with a guaranteed
  // 0 -> 1 -> ... -> n-1 chain (so every node is reachable from the source)
  // plus `avg_degree - 1` random extra edges per node.
  std::vector<std::uint64_t> row_ptr(n + 1, 0);
  std::vector<std::uint64_t> col_idx;
  for (std::uint64_t u = 0; u < n; ++u) {
    row_ptr[u] = col_idx.size();
    if (u + 1 < n) col_idx.push_back(u + 1);
    for (std::uint64_t e = 1; e < params.avg_degree; ++e) {
      col_idx.push_back(rng.UniformU64(0, n - 1));
    }
  }
  row_ptr[n] = col_idx.size();

  ProgramBuilder b("bfs");
  const GuestAddr row_ptr_addr = b.DataU64("row_ptr", row_ptr);
  const GuestAddr col_idx_addr = b.DataU64("col_idx", col_idx);
  const GuestAddr levels_addr = b.Bss("levels", n * 8);
  const GuestAddr queue_addr = b.Bss("queue", n * 8);

  // Register plan:
  //   r1 head, r2 tail, r3 u, r4 level(u), r5 edge, r6 edge_end,
  //   r8 v, r9 addr scratch, r10 value scratch,
  //   r11 row_ptr, r12 col_idx, r13 levels, r14 queue.
  b.MovI(R(11), static_cast<std::int64_t>(row_ptr_addr));
  b.MovI(R(12), static_cast<std::int64_t>(col_idx_addr));
  b.MovI(R(13), static_cast<std::int64_t>(levels_addr));
  b.MovI(R(14), static_cast<std::int64_t>(queue_addr));

  // levels[0] = 1 (0 means unvisited); queue[0] = 0.
  b.MovI(R(10), 1);
  b.St(R(13), 0, R(10));
  b.MovI(R(10), 0);
  b.St(R(14), 0, R(10));
  b.MovI(R(1), 0);  // head
  b.MovI(R(2), 1);  // tail

  auto loop = b.NewLabel("loop");
  auto edge_loop = b.NewLabel("edge_loop");
  auto visit = b.NewLabel("visit");
  auto done = b.NewLabel("done");

  b.Bind(loop);
  b.Cmp(R(1), R(2));
  b.Br(Cond::kGe, done);
  // u = queue[head++]
  b.ShlI(R(9), R(1), 3);
  b.Add(R(9), R(14), R(9));
  b.Ld(R(3), R(9), 0);
  b.AddI(R(1), R(1), 1);
  // level(u)
  b.ShlI(R(9), R(3), 3);
  b.Add(R(9), R(13), R(9));
  b.Ld(R(4), R(9), 0);
  // edge range [row_ptr[u], row_ptr[u+1])
  b.ShlI(R(9), R(3), 3);
  b.Add(R(9), R(11), R(9));
  b.Ld(R(5), R(9), 0);
  b.Ld(R(6), R(9), 8);

  b.Bind(edge_loop);
  b.Cmp(R(5), R(6));
  b.Br(Cond::kGe, loop);
  // v = col_idx[e++]
  b.ShlI(R(9), R(5), 3);
  b.Add(R(9), R(12), R(9));
  b.Ld(R(8), R(9), 0);
  b.AddI(R(5), R(5), 1);
  // visited test (the cmp the campaign targets)
  b.ShlI(R(9), R(8), 3);
  b.Add(R(9), R(13), R(9));
  b.Ld(R(10), R(9), 0);
  b.CmpI(R(10), 0);
  b.Br(Cond::kEq, visit);
  b.Jmp(edge_loop);

  b.Bind(visit);
  b.AddI(R(10), R(4), 1);
  b.St(R(9), 0, R(10));  // levels[v] = level(u) + 1
  b.ShlI(R(9), R(2), 3);
  b.Add(R(9), R(14), R(9));
  b.St(R(9), 0, R(8));   // queue[tail++] = v
  b.AddI(R(2), R(2), 1);
  b.Jmp(edge_loop);

  b.Bind(done);
  b.MovI(R(4), static_cast<std::int64_t>(levels_addr));
  b.MovI(R(5), static_cast<std::int64_t>(n * 8));
  b.Write(3, R(4), R(5));
  b.Exit(0);

  AppSpec spec;
  spec.name = "bfs";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kCmp};
  return spec;
}

}  // namespace chaser::apps

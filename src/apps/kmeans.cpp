// K-means (Rodinia-style): Lloyd iterations over random points. The distance
// kernel is pure fadd/fmul/fsub work — the FP classes the paper injects into.
#include <vector>

#include "apps/app.h"
#include "common/rng.h"
#include "guest/builder.h"

namespace chaser::apps {

using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;

AppSpec BuildKmeans(const KmeansParams& params) {
  Rng rng(params.seed);
  const std::uint64_t n = params.points;
  const std::uint64_t d = params.dims;
  const std::uint64_t k = params.clusters;

  std::vector<double> points(n * d);
  for (double& p : points) p = rng.UniformDouble(0.0, 10.0);
  // Centroids seeded from the first k points (deterministic).
  std::vector<double> centroids(points.begin(), points.begin() + k * d);

  ProgramBuilder b("kmeans");
  const GuestAddr p_addr = b.DataF64("points", points);
  const GuestAddr c_addr = b.DataF64("centroids", centroids);
  const GuestAddr sums_addr = b.Bss("sums", k * d * 8);
  const GuestAddr counts_addr = b.Bss("counts", k * 8);

  // Register plan: r1 iter, r2 i, r3 kk, r4 j, r5 best, r6 addr, r8 scratch,
  // r9 addr2, r10 scratch2, r11 points, r12 centroids, r13 sums, r14 counts.
  // FP: f0 dist, f1 best_dist, f2 a, f3 c, f4 diff, f5 huge, f6 count.
  b.MovI(R(11), static_cast<std::int64_t>(p_addr));
  b.MovI(R(12), static_cast<std::int64_t>(c_addr));
  b.MovI(R(13), static_cast<std::int64_t>(sums_addr));
  b.MovI(R(14), static_cast<std::int64_t>(counts_addr));
  b.MovI(R(1), 0);  // iteration counter

  auto iter_loop = b.Here("iter_loop");
  (void)iter_loop;

  // -- zero sums and counts --------------------------------------------------
  b.MovI(R(3), 0);
  b.FmovI(F(2), 0.0);
  auto zero_sums = b.NewLabel("zero_sums");
  auto zero_done = b.NewLabel("zero_done");
  b.Bind(zero_sums);
  b.CmpI(R(3), static_cast<std::int64_t>(k * d));
  b.Br(Cond::kGe, zero_done);
  b.ShlI(R(6), R(3), 3);
  b.Add(R(6), R(13), R(6));
  b.Fst(R(6), 0, F(2));
  b.AddI(R(3), R(3), 1);
  b.Jmp(zero_sums);
  b.Bind(zero_done);
  b.MovI(R(3), 0);
  b.MovI(R(8), 0);
  auto zero_counts = b.NewLabel("zero_counts");
  auto zc_done = b.NewLabel("zc_done");
  b.Bind(zero_counts);
  b.CmpI(R(3), static_cast<std::int64_t>(k));
  b.Br(Cond::kGe, zc_done);
  b.ShlI(R(6), R(3), 3);
  b.Add(R(6), R(14), R(6));
  b.St(R(6), 0, R(8));
  b.AddI(R(3), R(3), 1);
  b.Jmp(zero_counts);
  b.Bind(zc_done);

  // -- assignment: for each point find the nearest centroid --------------------
  b.MovI(R(2), 0);  // i
  auto point_loop = b.NewLabel("point_loop");
  auto points_done = b.NewLabel("points_done");
  b.Bind(point_loop);
  b.CmpI(R(2), static_cast<std::int64_t>(n));
  b.Br(Cond::kGe, points_done);

  b.MovI(R(5), 0);           // best cluster
  b.FmovI(F(1), 1e300);      // best distance
  b.MovI(R(3), 0);           // kk
  auto clus_loop = b.NewLabel("clus_loop");
  auto clus_done = b.NewLabel("clus_done");
  b.Bind(clus_loop);
  b.CmpI(R(3), static_cast<std::int64_t>(k));
  b.Br(Cond::kGe, clus_done);

  b.FmovI(F(0), 0.0);  // dist
  b.MovI(R(4), 0);     // j
  auto dim_loop = b.NewLabel("dim_loop");
  auto dim_done = b.NewLabel("dim_done");
  b.Bind(dim_loop);
  b.CmpI(R(4), static_cast<std::int64_t>(d));
  b.Br(Cond::kGe, dim_done);
  // a = points[i*d + j]
  b.MulI(R(6), R(2), static_cast<std::int64_t>(d));
  b.Add(R(6), R(6), R(4));
  b.ShlI(R(6), R(6), 3);
  b.Add(R(6), R(11), R(6));
  b.Fld(F(2), R(6), 0);
  // c = centroids[kk*d + j]
  b.MulI(R(9), R(3), static_cast<std::int64_t>(d));
  b.Add(R(9), R(9), R(4));
  b.ShlI(R(9), R(9), 3);
  b.Add(R(9), R(12), R(9));
  b.Fld(F(3), R(9), 0);
  // dist += (a - c)^2
  b.Fsub(F(4), F(2), F(3));
  b.Fmul(F(4), F(4), F(4));
  b.Fadd(F(0), F(0), F(4));
  b.AddI(R(4), R(4), 1);
  b.Jmp(dim_loop);
  b.Bind(dim_done);

  auto not_better = b.NewLabel("not_better");
  b.Fcmp(F(0), F(1));
  b.Br(Cond::kGe, not_better);
  b.Fmov(F(1), F(0));
  b.Mov(R(5), R(3));
  b.Bind(not_better);
  b.AddI(R(3), R(3), 1);
  b.Jmp(clus_loop);
  b.Bind(clus_done);

  // counts[best]++ and sums[best][:] += point
  b.ShlI(R(6), R(5), 3);
  b.Add(R(6), R(14), R(6));
  b.Ld(R(8), R(6), 0);
  b.AddI(R(8), R(8), 1);
  b.St(R(6), 0, R(8));
  b.MovI(R(4), 0);
  auto acc_loop = b.NewLabel("acc_loop");
  auto acc_done = b.NewLabel("acc_done");
  b.Bind(acc_loop);
  b.CmpI(R(4), static_cast<std::int64_t>(d));
  b.Br(Cond::kGe, acc_done);
  b.MulI(R(6), R(2), static_cast<std::int64_t>(d));
  b.Add(R(6), R(6), R(4));
  b.ShlI(R(6), R(6), 3);
  b.Add(R(6), R(11), R(6));
  b.Fld(F(2), R(6), 0);
  b.MulI(R(9), R(5), static_cast<std::int64_t>(d));
  b.Add(R(9), R(9), R(4));
  b.ShlI(R(9), R(9), 3);
  b.Add(R(9), R(13), R(9));
  b.Fld(F(3), R(9), 0);
  b.Fadd(F(3), F(3), F(2));
  b.Fst(R(9), 0, F(3));
  b.AddI(R(4), R(4), 1);
  b.Jmp(acc_loop);
  b.Bind(acc_done);

  b.AddI(R(2), R(2), 1);
  b.Jmp(point_loop);
  b.Bind(points_done);

  // -- update step: centroid = sums / counts (skip empty clusters) -------------
  b.MovI(R(3), 0);
  auto upd_loop = b.NewLabel("upd_loop");
  auto upd_done = b.NewLabel("upd_done");
  auto upd_next = b.NewLabel("upd_next");
  b.Bind(upd_loop);
  b.CmpI(R(3), static_cast<std::int64_t>(k));
  b.Br(Cond::kGe, upd_done);
  b.ShlI(R(6), R(3), 3);
  b.Add(R(6), R(14), R(6));
  b.Ld(R(8), R(6), 0);
  b.CmpI(R(8), 0);
  b.Br(Cond::kEq, upd_next);
  b.CvtIF(F(6), R(8));
  b.MovI(R(4), 0);
  auto div_loop = b.NewLabel("div_loop");
  auto div_done = b.NewLabel("div_done");
  b.Bind(div_loop);
  b.CmpI(R(4), static_cast<std::int64_t>(d));
  b.Br(Cond::kGe, div_done);
  b.MulI(R(9), R(3), static_cast<std::int64_t>(d));
  b.Add(R(9), R(9), R(4));
  b.ShlI(R(9), R(9), 3);
  b.Add(R(6), R(13), R(9));   // &sums[kk][j]
  b.Fld(F(2), R(6), 0);
  b.Fdiv(F(2), F(2), F(6));
  b.Add(R(6), R(12), R(9));   // &centroids[kk][j]
  b.Fst(R(6), 0, F(2));
  b.AddI(R(4), R(4), 1);
  b.Jmp(div_loop);
  b.Bind(div_done);
  b.Bind(upd_next);
  b.AddI(R(3), R(3), 1);
  b.Jmp(upd_loop);
  b.Bind(upd_done);

  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), static_cast<std::int64_t>(params.iterations));
  b.Br(Cond::kLt, iter_loop);

  // Output the final centroids.
  b.MovI(R(4), static_cast<std::int64_t>(c_addr));
  b.MovI(R(5), static_cast<std::int64_t>(k * d * 8));
  b.Write(3, R(4), R(5));
  b.Exit(0);

  AppSpec spec;
  spec.name = "kmeans";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kFadd, guest::InstrClass::kFmul};
  return spec;
}

}  // namespace chaser::apps

// CLAMR-lite (paper §IV-A3): a cell-based shallow-water mini-app.
//
// The real CLAMR is a cell-based adaptive-mesh-refinement hydrodynamics code
// with a domain-specific mass-conservation correctness checker. This
// substitute keeps the properties the paper's campaign depends on:
//
//  * a conservative shallow-water (linear wave system) update on a periodic,
//    row-decomposed grid — Lax-Friedrichs, so total height ("mass") is
//    conserved to rounding and the checker has a sound invariant to verify;
//  * per-step cell refinement statistics: cells whose height gradient
//    exceeds a threshold are counted as "refined" (the AMR criterion),
//    feeding fcmp/fabs activity and the per-rank output;
//  * halo exchange over MPI send/recv each step and a global MPI_Reduce of
//    the local masses to rank 0, which asserts on conservation violation —
//    this is the "result check by applying domain specific mass conservation
//    criteria" that makes most injected faults *detected* (§IV-B);
//  * per-rank fd-3 output (final local height field + refinement count, plus
//    the global mass on rank 0) for bitwise SDC comparison.
#include "apps/app.h"
#include "common/error.h"
#include "guest/builder.h"

namespace chaser::apps {

using guest::Cond;
using guest::F;
using guest::FReg;
using guest::ProgramBuilder;
using guest::R;
using guest::Reg;
using guest::Sys;

AppSpec BuildClamr(const ClamrParams& params) {
  const auto w = static_cast<std::uint64_t>(params.ranks);
  if (w == 0 || params.global_rows % w != 0) {
    throw ConfigError("clamr: global_rows must divide evenly among ranks");
  }
  const std::uint64_t rows = params.global_rows / w;  // interior rows per rank
  const std::uint64_t cols = params.cols;
  const std::uint64_t c8 = cols * 8;
  const std::uint64_t field_bytes = (rows + 2) * c8;  // interior + 2 halo rows
  const auto dt_double = static_cast<std::int64_t>(guest::MpiDatatype::kDouble);

  // Initial-condition shape: a quadratic bump centred on the global grid.
  const double cr = static_cast<double>(params.global_rows) / 2.0;
  const double cc = static_cast<double>(cols) / 2.0;
  const double r2max =
      std::max(1.0, (static_cast<double>(params.global_rows) / 4.0) *
                        (static_cast<double>(params.global_rows) / 4.0));
  const double scale = 0.5 / r2max;

  ProgramBuilder b("clamr");
  const GuestAddr hb = b.Bss("H", field_bytes);
  const GuestAddr ub = b.Bss("U", field_bytes);
  const GuestAddr vb = b.Bss("V", field_bytes);
  const GuestAddr hnb = b.Bss("Hn", field_bytes);
  const GuestAddr unb = b.Bss("Un", field_bytes);
  const GuestAddr vnb = b.Bss("Vn", field_bytes);
  // Three conserved quantities: mass (sum H), x momentum (sum U),
  // y momentum (sum V).
  const GuestAddr mass_local = b.Bss("mass_local", 24);
  const GuestAddr mass_res = b.Bss("mass_res", 24);
  const GuestAddr mass0 = b.Bss("mass0", 24);
  const GuestAddr refout = b.Bss("refine_count", 8);

  // Register plan (stable across the whole program):
  //   r10 rank, r11 up-neighbour, r12 down-neighbour,
  //   r13 refined-cell counter, r14 step counter.
  // Loop-local: r1 i/k, r2 j, r3 jm*8, r4 jp*8, r5 addr, r6 j*8, r8 i*C*8,
  // r9 scratch. Syscall sequences use r1..r7 only.
  // FP: f14 = 0.25 (average weight), f15 = 0.05 (0.5 * dt/dx * g).

  b.Sys(Sys::kMpiInit);
  b.Sys(Sys::kMpiCommRank);
  b.Mov(R(10), R(0));
  // up = (rank + W - 1) % W, down = (rank + 1) % W (periodic decomposition)
  b.AddI(R(11), R(10), static_cast<std::int64_t>(w - 1));
  b.MovI(R(9), static_cast<std::int64_t>(w));
  b.RemU(R(11), R(11), R(9));
  b.AddI(R(12), R(10), 1);
  b.RemU(R(12), R(12), R(9));
  b.MovI(R(13), 0);  // refined-cell count

  // ---- Initial condition: H = 1 + max(0, r2max - dist^2) * scale ------------
  {
    b.MovI(R(1), 1);
    auto init_i = b.NewLabel("init_i");
    auto init_i_done = b.NewLabel("init_i_done");
    b.Bind(init_i);
    b.CmpI(R(1), static_cast<std::int64_t>(rows + 1));
    b.Br(Cond::kGe, init_i_done);
    // dx^2 from the global row index of local row i.
    b.MulI(R(9), R(10), static_cast<std::int64_t>(rows));
    b.Add(R(9), R(9), R(1));
    b.SubI(R(9), R(9), 1);
    b.CvtIF(F(0), R(9));
    b.FmovI(F(1), cr);
    b.Fsub(F(0), F(0), F(1));
    b.Fmul(F(0), F(0), F(0));
    b.MulI(R(8), R(1), static_cast<std::int64_t>(c8));
    b.MovI(R(2), 0);
    auto init_j = b.NewLabel("init_j");
    auto init_j_done = b.NewLabel("init_j_done");
    b.Bind(init_j);
    b.CmpI(R(2), static_cast<std::int64_t>(cols));
    b.Br(Cond::kGe, init_j_done);
    b.CvtIF(F(1), R(2));
    b.FmovI(F(2), cc);
    b.Fsub(F(1), F(1), F(2));
    b.Fmul(F(1), F(1), F(1));
    b.Fadd(F(2), F(0), F(1));   // dist^2
    b.FmovI(F(3), r2max);
    b.Fsub(F(3), F(3), F(2));
    b.FmovI(F(2), 0.0);
    b.Fmax(F(3), F(3), F(2));
    b.FmovI(F(2), scale);
    b.Fmul(F(3), F(3), F(2));
    b.FmovI(F(2), 1.0);
    b.Fadd(F(3), F(3), F(2));
    b.ShlI(R(6), R(2), 3);
    b.MovI(R(5), static_cast<std::int64_t>(hb));
    b.Add(R(5), R(5), R(8));
    b.Add(R(5), R(5), R(6));
    b.Fst(R(5), 0, F(3));
    b.AddI(R(2), R(2), 1);
    b.Jmp(init_j);
    b.Bind(init_j_done);
    b.AddI(R(1), R(1), 1);
    b.Jmp(init_i);
    b.Bind(init_i_done);
  }

  b.FmovI(F(14), 0.25);
  b.FmovI(F(15), 0.05);

  // ---- Emit helpers ----------------------------------------------------------
  // Load field[base_bias + i*C8 + col_off] into `fd`.
  const auto load_cell = [&](FReg fd, GuestAddr base, std::int64_t row_bias,
                             Reg col_off) {
    b.MovI(R(5), static_cast<std::int64_t>(base) + row_bias);
    b.Add(R(5), R(5), R(8));
    b.Add(R(5), R(5), col_off);
    b.Fld(fd, R(5), 0);
  };
  const auto store_cell = [&](GuestAddr base, FReg fs) {
    b.MovI(R(5), static_cast<std::int64_t>(base));
    b.Add(R(5), R(5), R(8));
    b.Add(R(5), R(5), R(6));
    b.Fst(R(5), 0, fs);
  };

  // One halo exchange of a field: row 1 -> up neighbour, row `rows` -> down
  // neighbour, halo rows filled from the opposite directions.
  const auto halo_exchange = [&](GuestAddr base, std::int64_t tag_up,
                                 std::int64_t tag_down) {
    b.MovI(R(1), static_cast<std::int64_t>(base + c8));  // row 1
    b.MovI(R(2), static_cast<std::int64_t>(cols));
    b.MovI(R(3), dt_double);
    b.Mov(R(4), R(11));
    b.MovI(R(5), tag_up);
    b.Sys(Sys::kMpiSend);
    b.MovI(R(1), static_cast<std::int64_t>(base + rows * c8));  // row L
    b.MovI(R(2), static_cast<std::int64_t>(cols));
    b.MovI(R(3), dt_double);
    b.Mov(R(4), R(12));
    b.MovI(R(5), tag_down);
    b.Sys(Sys::kMpiSend);
    b.MovI(R(1), static_cast<std::int64_t>(base));  // halo row 0 <- up's row L
    b.MovI(R(2), static_cast<std::int64_t>(cols));
    b.MovI(R(3), dt_double);
    b.Mov(R(4), R(11));
    b.MovI(R(5), tag_down);
    b.Sys(Sys::kMpiRecv);
    b.MovI(R(1), static_cast<std::int64_t>(base + (rows + 1) * c8));
    b.MovI(R(2), static_cast<std::int64_t>(cols));
    b.MovI(R(3), dt_double);
    b.Mov(R(4), R(12));
    b.MovI(R(5), tag_up);
    b.Sys(Sys::kMpiRecv);
  };

  // Local conserved sums (interior H, U, V) -> mass_local[0..2], then one
  // MPI_Reduce of all three to rank 0.
  const auto mass_reduce = [&]() {
    b.FmovI(F(0), 0.0);  // sum H
    b.FmovI(F(1), 0.0);  // sum U
    b.FmovI(F(2), 0.0);  // sum V
    b.MovI(R(1), 0);
    auto mass_k = b.NewLabel();
    auto mass_done = b.NewLabel();
    b.Bind(mass_k);
    b.CmpI(R(1), static_cast<std::int64_t>(rows * cols));
    b.Br(Cond::kGe, mass_done);
    b.ShlI(R(5), R(1), 3);
    // H: accumulate and bounds-check (NaN fails every ordered compare, so a
    // NaN cell trips the checker too).
    b.MovI(R(9), static_cast<std::int64_t>(hb + c8));
    b.Add(R(9), R(9), R(5));
    b.Fld(F(3), R(9), 0);
    b.Fadd(F(0), F(0), F(3));
    {
      auto h_lo_ok = b.NewLabel();
      auto h_hi_ok = b.NewLabel();
      b.FmovI(F(4), params.h_min);
      b.Fcmp(F(3), F(4));
      b.Br(Cond::kGe, h_lo_ok);
      b.AssertFail(4);  // cell height below physical bounds
      b.Bind(h_lo_ok);
      b.FmovI(F(4), params.h_max);
      b.Fcmp(F(3), F(4));
      b.Br(Cond::kLe, h_hi_ok);
      b.AssertFail(4);  // cell height above physical bounds
      b.Bind(h_hi_ok);
    }
    // U: accumulate and |U| bound.
    b.MovI(R(9), static_cast<std::int64_t>(ub + c8));
    b.Add(R(9), R(9), R(5));
    b.Fld(F(3), R(9), 0);
    b.Fadd(F(1), F(1), F(3));
    {
      auto u_ok = b.NewLabel();
      b.Fabs(F(4), F(3));
      b.FmovI(F(5), params.uv_max);
      b.Fcmp(F(4), F(5));
      b.Br(Cond::kLe, u_ok);
      b.AssertFail(5);  // x-momentum out of bounds
      b.Bind(u_ok);
    }
    // V: accumulate and |V| bound.
    b.MovI(R(9), static_cast<std::int64_t>(vb + c8));
    b.Add(R(9), R(9), R(5));
    b.Fld(F(3), R(9), 0);
    b.Fadd(F(2), F(2), F(3));
    {
      auto v_ok = b.NewLabel();
      b.Fabs(F(4), F(3));
      b.FmovI(F(5), params.uv_max);
      b.Fcmp(F(4), F(5));
      b.Br(Cond::kLe, v_ok);
      b.AssertFail(6);  // y-momentum out of bounds
      b.Bind(v_ok);
    }
    b.AddI(R(1), R(1), 1);
    b.Jmp(mass_k);
    b.Bind(mass_done);
    b.MovI(R(5), static_cast<std::int64_t>(mass_local));
    b.Fst(R(5), 0, F(0));
    b.Fst(R(5), 8, F(1));
    b.Fst(R(5), 16, F(2));
    b.MovI(R(1), static_cast<std::int64_t>(mass_local));
    b.MovI(R(2), static_cast<std::int64_t>(mass_res));
    b.MovI(R(3), 3);
    b.MovI(R(4), dt_double);
    b.MovI(R(5), static_cast<std::int64_t>(guest::MpiOp::kSum));
    b.MovI(R(6), 0);
    b.Sys(Sys::kMpiReduce);
  };

  // ---- Initial mass ----------------------------------------------------------
  mass_reduce();
  {
    auto not_root = b.NewLabel("init_mass_not_root");
    b.CmpI(R(10), 0);
    b.Br(Cond::kNe, not_root);
    for (std::int64_t c = 0; c < 3; ++c) {
      b.MovI(R(5), static_cast<std::int64_t>(mass_res));
      b.Ld(R(9), R(5), 8 * c);
      b.MovI(R(5), static_cast<std::int64_t>(mass0));
      b.St(R(5), 8 * c, R(9));
    }
    b.Bind(not_root);
  }

  // ---- Time-step loop ----------------------------------------------------------
  b.MovI(R(14), 0);
  auto step_loop = b.Here("step_loop");
  (void)step_loop;

  halo_exchange(hb, 10, 11);
  halo_exchange(ub, 12, 13);
  halo_exchange(vb, 14, 15);

  // Lax-Friedrichs update over the interior.
  {
    b.MovI(R(1), 1);
    auto cell_i = b.NewLabel("cell_i");
    auto cell_i_done = b.NewLabel("cell_i_done");
    b.Bind(cell_i);
    b.CmpI(R(1), static_cast<std::int64_t>(rows + 1));
    b.Br(Cond::kGe, cell_i_done);
    b.MulI(R(8), R(1), static_cast<std::int64_t>(c8));
    b.MovI(R(2), 0);
    auto cell_j = b.NewLabel("cell_j");
    auto cell_j_done = b.NewLabel("cell_j_done");
    b.Bind(cell_j);
    b.CmpI(R(2), static_cast<std::int64_t>(cols));
    b.Br(Cond::kGe, cell_j_done);
    b.ShlI(R(6), R(2), 3);
    // Periodic column neighbours as byte offsets.
    {
      auto jm_wrap = b.NewLabel();
      auto jm_done = b.NewLabel();
      b.CmpI(R(2), 0);
      b.Br(Cond::kEq, jm_wrap);
      b.SubI(R(3), R(6), 8);
      b.Jmp(jm_done);
      b.Bind(jm_wrap);
      b.MovI(R(3), static_cast<std::int64_t>((cols - 1) * 8));
      b.Bind(jm_done);
      auto jp_wrap = b.NewLabel();
      auto jp_done = b.NewLabel();
      b.CmpI(R(2), static_cast<std::int64_t>(cols - 1));
      b.Br(Cond::kEq, jp_wrap);
      b.AddI(R(4), R(6), 8);
      b.Jmp(jp_done);
      b.Bind(jp_wrap);
      b.MovI(R(4), 0);
      b.Bind(jp_done);
    }
    const auto bias = static_cast<std::int64_t>(c8);
    load_cell(F(0), hb, -bias, R(6));  // H[i-1][j]
    load_cell(F(1), hb, +bias, R(6));  // H[i+1][j]
    load_cell(F(2), hb, 0, R(3));      // H[i][jm]
    load_cell(F(3), hb, 0, R(4));      // H[i][jp]
    load_cell(F(4), ub, -bias, R(6));
    load_cell(F(5), ub, +bias, R(6));
    load_cell(F(6), ub, 0, R(3));
    load_cell(F(7), ub, 0, R(4));
    load_cell(F(8), vb, -bias, R(6));
    load_cell(F(9), vb, +bias, R(6));
    load_cell(F(10), vb, 0, R(3));
    load_cell(F(11), vb, 0, R(4));
    // Hn = avg4(H) - 0.05*(U[i+1]-U[i-1]) - 0.05*(V[jp]-V[jm])
    b.Fadd(F(12), F(0), F(1));
    b.Fadd(F(12), F(12), F(2));
    b.Fadd(F(12), F(12), F(3));
    b.Fmul(F(12), F(12), F(14));
    b.Fsub(F(13), F(5), F(4));
    b.Fmul(F(13), F(13), F(15));
    b.Fsub(F(12), F(12), F(13));
    b.Fsub(F(13), F(11), F(10));
    b.Fmul(F(13), F(13), F(15));
    b.Fsub(F(12), F(12), F(13));
    store_cell(hnb, F(12));
    // Un = avg4(U) - 0.05*(H[i+1]-H[i-1])
    b.Fadd(F(12), F(4), F(5));
    b.Fadd(F(12), F(12), F(6));
    b.Fadd(F(12), F(12), F(7));
    b.Fmul(F(12), F(12), F(14));
    b.Fsub(F(13), F(1), F(0));
    b.Fmul(F(13), F(13), F(15));
    b.Fsub(F(12), F(12), F(13));
    store_cell(unb, F(12));
    // Vn = avg4(V) - 0.05*(H[jp]-H[jm])
    b.Fadd(F(12), F(8), F(9));
    b.Fadd(F(12), F(12), F(10));
    b.Fadd(F(12), F(12), F(11));
    b.Fmul(F(12), F(12), F(14));
    b.Fsub(F(13), F(3), F(2));
    b.Fmul(F(13), F(13), F(15));
    b.Fsub(F(12), F(12), F(13));
    store_cell(vnb, F(12));
    // Cell-refinement criterion: |dH/di| + |dH/dj| > threshold, evaluated
    // on every 4th step (refinement happens per coarse cycle, not per
    // timestep, in the real code).
    {
      auto no_refine = b.NewLabel();
      b.AndI(R(9), R(14), 3);
      b.CmpI(R(9), 0);
      b.Br(Cond::kNe, no_refine);
      b.Fsub(F(12), F(1), F(0));
      b.Fabs(F(12), F(12));
      b.Fsub(F(13), F(3), F(2));
      b.Fabs(F(13), F(13));
      b.Fadd(F(12), F(12), F(13));
      b.FmovI(F(13), params.refine_threshold);
      b.Fcmp(F(12), F(13));
      b.Br(Cond::kLe, no_refine);
      b.AddI(R(13), R(13), 1);
      b.Bind(no_refine);
    }
    b.AddI(R(2), R(2), 1);
    b.Jmp(cell_j);
    b.Bind(cell_j_done);
    b.AddI(R(1), R(1), 1);
    b.Jmp(cell_i);
    b.Bind(cell_i_done);
  }

  // Copy the new interiors back (integer word moves — mov-class activity).
  {
    b.MovI(R(1), 0);
    auto copy_k = b.NewLabel("copy_k");
    auto copy_done = b.NewLabel("copy_done");
    b.Bind(copy_k);
    b.CmpI(R(1), static_cast<std::int64_t>(rows * cols));
    b.Br(Cond::kGe, copy_done);
    b.ShlI(R(5), R(1), 3);
    const GuestAddr pairs[3][2] = {{hnb, hb}, {unb, ub}, {vnb, vb}};
    for (const auto& pair : pairs) {
      b.MovI(R(9), static_cast<std::int64_t>(pair[0] + c8));
      b.Add(R(9), R(9), R(5));
      b.Ld(R(6), R(9), 0);
      b.MovI(R(9), static_cast<std::int64_t>(pair[1] + c8));
      b.Add(R(9), R(9), R(5));
      b.St(R(9), 0, R(6));
    }
    b.AddI(R(1), R(1), 1);
    b.Jmp(copy_k);
    b.Bind(copy_done);
  }

  // Conservation check: mass and both momentum components must match their
  // initial values to within rtol*|m0| + atol (the CLAMR result checker).
  mass_reduce();
  {
    auto check_done = b.NewLabel("check_done");
    b.CmpI(R(10), 0);
    b.Br(Cond::kNe, check_done);
    for (std::int64_t c = 0; c < 3; ++c) {
      auto comp_ok = b.NewLabel();
      b.MovI(R(5), static_cast<std::int64_t>(mass_res));
      b.Fld(F(0), R(5), 8 * c);
      b.MovI(R(5), static_cast<std::int64_t>(mass0));
      b.Fld(F(1), R(5), 8 * c);
      b.Fsub(F(2), F(0), F(1));
      b.Fabs(F(2), F(2));
      b.FmovI(F(3), params.mass_rtol);
      b.Fabs(F(4), F(1));
      b.Fmul(F(3), F(3), F(4));
      b.FmovI(F(4), params.mass_atol);
      b.Fadd(F(3), F(3), F(4));
      b.Fcmp(F(2), F(3));
      b.Br(Cond::kLe, comp_ok);
      b.AssertFail(c + 1);  // conservation violated -> fault detected
      b.Bind(comp_ok);
    }
    b.Bind(check_done);
  }

  // Checkpoint (the real CLAMR's -i flag): append the interior height field
  // to the output stream every checkpoint_interval steps.
  if (params.checkpoint_interval > 0) {
    auto no_ckpt = b.NewLabel("no_ckpt");
    b.AddI(R(9), R(14), 1);
    b.MovI(R(5), static_cast<std::int64_t>(params.checkpoint_interval));
    b.RemU(R(9), R(9), R(5));
    b.CmpI(R(9), 0);
    b.Br(Cond::kNe, no_ckpt);
    b.MovI(R(4), static_cast<std::int64_t>(hb + c8));
    b.MovI(R(5), static_cast<std::int64_t>(rows * cols * 8));
    b.Write(3, R(4), R(5));
    b.Bind(no_ckpt);
  }

  b.AddI(R(14), R(14), 1);
  b.CmpI(R(14), static_cast<std::int64_t>(params.steps));
  b.Br(Cond::kLt, step_loop);

  // ---- Output and shutdown -----------------------------------------------------
  b.MovI(R(5), static_cast<std::int64_t>(refout));
  b.St(R(5), 0, R(13));
  b.MovI(R(4), static_cast<std::int64_t>(hb + c8));
  b.MovI(R(5), static_cast<std::int64_t>(rows * cols * 8));
  b.Write(3, R(4), R(5));
  b.MovI(R(4), static_cast<std::int64_t>(refout));
  b.MovI(R(5), 8);
  b.Write(3, R(4), R(5));
  {
    auto not_root = b.NewLabel("out_not_root");
    b.CmpI(R(10), 0);
    b.Br(Cond::kNe, not_root);
    b.MovI(R(4), static_cast<std::int64_t>(mass_res));
    b.MovI(R(5), 24);
    b.Write(3, R(4), R(5));
    b.Bind(not_root);
  }
  b.Sys(Sys::kMpiFinalize);
  b.Exit(0);

  AppSpec spec;
  spec.name = "clamr";
  spec.program = b.Finalize();
  spec.num_ranks = params.ranks;
  // Pure-register FP classes (paper: "inject a single bit error into the
  // floating point instructions"); fmov is excluded because its address-base
  // operands are integer registers, not FP state.
  spec.fault_classes = {guest::InstrClass::kFadd, guest::InstrClass::kFmul,
                        guest::InstrClass::kFother};
  return spec;
}

}  // namespace chaser::apps

// LUD (Rodinia-style): in-place LU decomposition (Doolittle, no pivoting) of
// a diagonally dominant random matrix — a mix of FP arithmetic and the cmp
// instructions of the triangular loop bounds, matching the paper's combined
// FP + cmp fault targeting for lud.
#include <vector>

#include "apps/app.h"
#include "common/rng.h"
#include "guest/builder.h"

namespace chaser::apps {

using guest::Cond;
using guest::F;
using guest::ProgramBuilder;
using guest::R;

AppSpec BuildLud(const LudParams& params) {
  Rng rng(params.seed);
  const std::uint64_t n = params.n;

  std::vector<double> a(n * n);
  for (double& v : a) v = rng.UniformDouble(-1.0, 1.0);
  // Diagonal dominance keeps the factorization stable without pivoting.
  for (std::uint64_t i = 0; i < n; ++i) {
    a[i * n + i] = static_cast<double>(n) + rng.UniformDouble(0.0, 1.0);
  }

  ProgramBuilder b("lud");
  const GuestAddr a_addr = b.DataF64("matrix", a);

  // Register plan: r1 k, r2 i, r3 j, r6/r9 addr scratch, r11 matrix base.
  // FP: f0 A[k][k], f1 A[i][k], f2 A[k][j], f3 A[i][j] / scratch.
  b.MovI(R(11), static_cast<std::int64_t>(a_addr));
  b.MovI(R(1), 0);  // k

  auto k_loop = b.Here("k_loop");
  (void)k_loop;

  b.AddI(R(2), R(1), 1);  // i = k + 1
  auto i_loop = b.NewLabel("i_loop");
  auto i_done = b.NewLabel("i_done");
  b.Bind(i_loop);
  b.CmpI(R(2), static_cast<std::int64_t>(n));
  b.Br(Cond::kGe, i_done);

  // A[i][k] /= A[k][k]
  b.MulI(R(6), R(1), static_cast<std::int64_t>(n));
  b.Add(R(6), R(6), R(1));
  b.ShlI(R(6), R(6), 3);
  b.Add(R(6), R(11), R(6));
  b.Fld(F(0), R(6), 0);       // A[k][k]
  b.MulI(R(9), R(2), static_cast<std::int64_t>(n));
  b.Add(R(9), R(9), R(1));
  b.ShlI(R(9), R(9), 3);
  b.Add(R(9), R(11), R(9));
  b.Fld(F(1), R(9), 0);       // A[i][k]
  b.Fdiv(F(1), F(1), F(0));
  b.Fst(R(9), 0, F(1));

  // for j in k+1..n-1: A[i][j] -= A[i][k] * A[k][j]
  b.AddI(R(3), R(1), 1);
  auto j_loop = b.NewLabel("j_loop");
  auto j_done = b.NewLabel("j_done");
  b.Bind(j_loop);
  b.CmpI(R(3), static_cast<std::int64_t>(n));
  b.Br(Cond::kGe, j_done);
  b.MulI(R(6), R(1), static_cast<std::int64_t>(n));
  b.Add(R(6), R(6), R(3));
  b.ShlI(R(6), R(6), 3);
  b.Add(R(6), R(11), R(6));
  b.Fld(F(2), R(6), 0);       // A[k][j]
  b.MulI(R(9), R(2), static_cast<std::int64_t>(n));
  b.Add(R(9), R(9), R(3));
  b.ShlI(R(9), R(9), 3);
  b.Add(R(9), R(11), R(9));
  b.Fld(F(3), R(9), 0);       // A[i][j]
  b.Fmul(F(4), F(1), F(2));
  b.Fsub(F(3), F(3), F(4));
  b.Fst(R(9), 0, F(3));
  b.AddI(R(3), R(3), 1);
  b.Jmp(j_loop);
  b.Bind(j_done);

  b.AddI(R(2), R(2), 1);
  b.Jmp(i_loop);
  b.Bind(i_done);

  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), static_cast<std::int64_t>(n - 1));
  b.Br(Cond::kLt, k_loop);

  // Output the packed LU factors.
  b.MovI(R(4), static_cast<std::int64_t>(a_addr));
  b.MovI(R(5), static_cast<std::int64_t>(n * n * 8));
  b.Write(3, R(4), R(5));
  b.Exit(0);

  AppSpec spec;
  spec.name = "lud";
  spec.program = b.Finalize();
  spec.num_ranks = 1;
  spec.fault_classes = {guest::InstrClass::kFadd, guest::InstrClass::kFmul,
                        guest::InstrClass::kCmp};
  return spec;
}

}  // namespace chaser::apps

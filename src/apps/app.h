// Guest application specifications.
//
// Each builder returns a complete AppSpec: the GISA-64 program (generated
// with a seed-deterministic workload so golden runs are reproducible), the
// rank count, and the instruction classes the paper's campaign targets for
// that application (§IV-B: cmp for bfs, FP for kmeans, FP+cmp for lud, mov
// for Matvec, FP for CLAMR).
//
// Every application writes its numeric result to guest fd 3; the campaign
// layer compares that output bit-wise against the golden run to classify
// benign vs silent-data-corruption outcomes, exactly as the paper does.
#pragma once

#include <set>
#include <string>

#include "guest/program.h"

namespace chaser::apps {

struct AppSpec {
  std::string name;
  guest::Program program;
  int num_ranks = 1;  // 1 = single-process application
  std::set<guest::InstrClass> fault_classes;
};

// ---- Rodinia-style single-machine kernels -----------------------------------

struct BfsParams {
  std::uint64_t nodes = 512;
  std::uint64_t avg_degree = 8;
  std::uint64_t seed = 42;
};
/// Breadth-first search over a random CSR graph (cmp-heavy frontier loop).
AppSpec BuildBfs(const BfsParams& params = {});

struct KmeansParams {
  std::uint64_t points = 256;
  std::uint64_t dims = 4;
  std::uint64_t clusters = 4;
  std::uint64_t iterations = 5;
  std::uint64_t seed = 43;
};
/// K-means clustering (fadd/fmul distance kernel).
AppSpec BuildKmeans(const KmeansParams& params = {});

struct LudParams {
  std::uint64_t n = 24;
  std::uint64_t seed = 44;
};
/// In-place LU decomposition of a diagonally dominant matrix (FP + cmp).
AppSpec BuildLud(const LudParams& params = {});

// ---- MPI applications ---------------------------------------------------------

struct MatvecParams {
  std::uint64_t rows = 24;   // must be divisible by (ranks - 1)
  std::uint64_t cols = 12;
  int ranks = 4;
  std::uint64_t seed = 45;
};
/// MPI matrix-vector product b = A*x: the master broadcasts x, distributes
/// row blocks to the slaves, and collects partial results (mov-heavy master).
AppSpec BuildMatvec(const MatvecParams& params = {});

struct ClamrParams {
  std::uint64_t global_rows = 24;  // must be divisible by ranks
  std::uint64_t cols = 24;
  std::uint64_t steps = 30;
  int ranks = 4;
  /// Cell-refinement threshold on the height gradient (drives the per-step
  /// cell-based refinement statistics, the AMR element of CLAMR).
  double refine_threshold = 0.02;
  /// Conservation tolerances (relative + absolute floor). The Lax-Friedrichs
  /// scheme conserves mass and both momentum components to FP rounding, so
  /// these sit just above the deterministic rounding drift; violations abort
  /// with a program-level assertion — CLAMR's domain-specific checker.
  double mass_rtol = 1e-14;
  double mass_atol = 1e-14;
  /// Checkpoint frequency in steps (the real CLAMR's -i flag): every
  /// `checkpoint_interval` steps each rank appends its interior height field
  /// to the output stream. 0 disables checkpointing.
  std::uint64_t checkpoint_interval = 0;
  /// Per-cell sanity bounds (CLAMR-style cell state checks, verified by every
  /// rank locally while accumulating the conserved sums).
  double h_min = 0.5;
  double h_max = 2.0;
  double uv_max = 1.0;
  std::uint64_t seed = 46;
};
/// CLAMR-lite: a shallow-water (linear wave system) mini-app on a
/// row-decomposed periodic grid with halo exchange, a per-step cell
/// refinement count, and a global conservation checker (mass + x/y momentum
/// via MPI_Reduce to rank 0, which asserts on violation).
AppSpec BuildClamr(const ClamrParams& params = {});

}  // namespace chaser::apps

// Offline post-analysis workflow (how Figs. 7-9 are produced): run a traced
// campaign, export the per-run records and one case's propagation log to
// CSV, load the CSV back and compute the distribution statistics — then
// replay the most active case into a trace spool and build the propagation
// graph from it (the chaser_analyze pipeline, in-process).
//
//   $ ./examples/post_analysis [runs]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/propagation.h"
#include "analysis/spool.h"
#include "apps/app.h"
#include "campaign/campaign.h"
#include "campaign/report.h"

using namespace chaser;

int main(int argc, char** argv) {
  const std::uint64_t runs = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 40;

  // 1. A traced CLAMR campaign (faults on all ranks, like SIV-C).
  apps::AppSpec spec =
      apps::BuildClamr({.global_rows = 16, .cols = 16, .steps = 15, .ranks = 4});
  campaign::CampaignConfig config;
  config.runs = runs;
  config.seed = 2973;  // the paper's SIV-C campaign size, as a nod
  config.inject_ranks = {0, 1, 2, 3};
  campaign::Campaign c(std::move(spec), config);
  const campaign::CampaignResult result = c.Run();
  std::printf("%s\n", result.Render("clamr campaign").c_str());

  // 2. Export the run records.
  const char* records_path = "/tmp/chaser_runs.csv";
  {
    std::ofstream out(records_path);
    campaign::WriteRecordsCsv(result.records, out);
  }
  std::printf("wrote %zu run records to %s\n", result.records.size(), records_path);

  // 3. Re-execute the run with the most tainted writes and export its
  //    propagation trace + tainted-bytes timeline.
  const campaign::RunRecord* top = nullptr;
  for (const campaign::RunRecord& rec : result.records) {
    if (top == nullptr || rec.tainted_writes > top->tainted_writes) top = &rec;
  }
  if (top != nullptr && top->tainted_writes > 0) {
    const campaign::RunRecord replay = c.RunOnce(top->run_seed);
    std::ofstream trace_out("/tmp/chaser_trace_rank.csv");
    c.chaser().rank_chaser(top->inject_rank).trace_log().WriteCsv(trace_out);
    std::vector<core::TaintSample> all;
    for (Rank r = 0; r < 4; ++r) {
      const auto& t = c.chaser().rank_chaser(r).taint_timeline();
      all.insert(all.end(), t.begin(), t.end());
    }
    std::ofstream timeline_out("/tmp/chaser_timeline.csv");
    campaign::WriteTimelineCsv(all, timeline_out);
    std::printf("replayed seed %llu (%s): trace -> /tmp/chaser_trace_rank.csv, "
                "timeline -> /tmp/chaser_timeline.csv\n",
                static_cast<unsigned long long>(top->run_seed),
                campaign::OutcomeName(replay.outcome));
  }

  // 4. Offline pass: load the CSV back and compute the Fig. 8/9 statistics.
  std::ifstream in(records_path);
  const std::vector<campaign::RunRecord> loaded = campaign::ReadRecordsCsv(in);
  const campaign::PropagationStats stats = campaign::AnalyzePropagation(loaded);
  std::printf(
      "\noffline analysis of %llu runs:\n"
      "  total tainted reads / writes: %llu / %llu\n"
      "  max per run:                  %llu / %llu\n"
      "  %% runs with more reads than writes: %.2f (paper: 47.1)\n"
      "  %% runs with only reads:             %.2f (paper: 3.97)\n"
      "  %% runs with only writes:            %.2f (paper: 14.93)\n",
      static_cast<unsigned long long>(stats.runs),
      static_cast<unsigned long long>(stats.total_tainted_reads),
      static_cast<unsigned long long>(stats.total_tainted_writes),
      static_cast<unsigned long long>(stats.max_tainted_reads),
      static_cast<unsigned long long>(stats.max_tainted_writes),
      stats.pct_more_reads_than_writes, stats.pct_only_reads,
      stats.pct_only_writes);

  // 5. Spool pipeline: replay the top case with a trace spool attached and
  //    build the propagation graph offline (what chaser_analyze does from
  //    the command line).
  if (top != nullptr && top->tainted_writes > 0) {
    const char* spool_root = "/tmp/chaser_spool_example";
    std::filesystem::remove_all(spool_root);
    campaign::CampaignConfig spool_config = config;
    spool_config.runs = 0;
    spool_config.spool_dir = spool_root;
    spool_config.chaser_options.taint_sample_interval = 50'000;
    campaign::Campaign replayer(
        apps::BuildClamr({.global_rows = 16, .cols = 16, .steps = 15, .ranks = 4}),
        spool_config);
    replayer.RunOnce(top->run_seed);

    const std::string trial_dir =
        std::string(spool_root) + "/trial-" + std::to_string(top->run_seed);
    const analysis::TrialSpool spool = analysis::ReadTrialSpool(trial_dir);
    const analysis::PropagationGraph graph =
        analysis::PropagationGraph::Build(analysis::DatasetFromSpool(spool));
    std::printf("\nspooled replay -> %s\n%s", trial_dir.c_str(),
                graph.Summarize().c_str());
    const auto outputs = graph.OutputEvents();
    if (!outputs.empty()) {
      const auto chain = graph.RootCause(outputs[0].rank, outputs[0].fd,
                                         outputs[0].stream_off);
      std::printf("%s", chain.Render().c_str());
    }
  }
  return 0;
}

// Quickstart: assemble a tiny guest program, inject a single bit flip into
// its 5th fadd, and watch the fault propagate through memory.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/chaser.h"
#include "core/injectors/probabilistic_injector.h"
#include "core/trigger.h"
#include "guest/builder.h"
#include "guest/disasm.h"
#include "vm/vm.h"

using namespace chaser;
using guest::Cond;
using guest::F;
using guest::R;

int main() {
  // 1. Write a guest program with the ProgramBuilder: sum 1..10 in FP,
  //    store the running total to memory each iteration.
  guest::ProgramBuilder b("demo");
  const GuestAddr cell = b.Bss("total", 8);
  b.FmovI(F(0), 0.0);
  b.MovI(R(1), 1);
  b.MovI(R(9), static_cast<std::int64_t>(cell));
  auto loop = b.Here("loop");
  b.CvtIF(F(1), R(1));
  b.Fadd(F(0), F(0), F(1));      // <- we will corrupt this instruction
  b.Fst(R(9), 0, F(0));
  b.AddI(R(1), R(1), 1);
  b.CmpI(R(1), 11);
  b.Br(Cond::kLt, loop);
  b.Exit(0);
  const guest::Program program = b.Finalize();

  std::printf("guest program:\n%s\n", guest::DisassembleProgram(program).c_str());

  // 2. Attach Chaser to a VM and arm a deterministic single-bit fault:
  //    flip one random bit of an operand of the 5th fadd execution.
  vm::Vm vm;
  core::Chaser chaser(vm);
  core::InjectionCommand cmd;
  cmd.target_program = "demo";                         // what
  cmd.target_classes = {guest::InstrClass::kFadd};     // where
  cmd.trigger = std::make_shared<core::DeterministicTrigger>(5);  // when
  cmd.injector = core::ProbabilisticInjector::Create(1);          // how
  cmd.seed = 42;
  chaser.Arm(cmd);

  // 3. Run. The injector helper is spliced into the translated code of the
  //    fadd only; after it fires, the instrumentation is flushed out again.
  vm.StartProcess(program);
  vm.RunToCompletion();

  std::printf("exit: %s, final total = %.17g (clean run: 55)\n",
              vm::TerminationKindName(vm.termination()), vm.cpu().FpReg(0));
  for (const core::InjectionRecord& rec : chaser.injections()) {
    std::printf("%s\n", rec.Describe().c_str());
  }

  // 4. The propagation trace: every tainted memory read/write, with eip,
  //    virtual/physical address, value and taint mask (paper SIII-C).
  std::printf("\n%s", chaser.trace_log().ToString(12).c_str());
  return 0;
}

// The terminal workflow of the paper (Fig. 4): load the fault-injection
// plugin (plugin_init -> fi_interface_st), type `inject_fault ...` commands,
// and let the VMI process-creation callback attach Chaser when the target
// application starts. This demo scripts three command lines, one per
// bundled fault model, against the lud benchmark.
//
//   $ ./examples/console_demo
#include <cstdio>

#include "apps/app.h"
#include "common/error.h"
#include "core/chaser.h"
#include "core/console.h"
#include "vm/vm.h"

using namespace chaser;

int main() {
  apps::AppSpec spec = apps::BuildLud({});
  vm::Vm vm;
  core::Chaser chaser(vm);

  // Load the plugin: it exports the `inject_fault` terminal command whose
  // handler (do_fi_fault) parses the arguments into an fi_cmds_st and arms
  // Chaser with it.
  core::PluginRegistry registry;
  registry.LoadPlugin("fault_injection_plugin", [&] {
    return core::MakeFaultInjectionPlugin(
        [&](core::InjectionCommand cmd) { chaser.Arm(std::move(cmd)); });
  });
  std::printf("loaded plugin; available commands:\n");
  for (const auto& [name, iface] : registry.commands()) {
    std::printf("  %s\n    %s\n", name.c_str(), iface.help.c_str());
  }

  const char* kScript[] = {
      // deterministic: 2 bits into the 300th fmul-class execution
      "inject_fault -p lud -i fmul -m det -c 300 -b 2 -s 1",
      // probabilistic: p = 0.0005 per execution, at most 2 faults
      "inject_fault -p lud -i fadd,fmul -m prob -P 0.0005 -max 2 -s 2",
      // group: a fault burst every 200 executions, 3 bursts
      "inject_fault -p lud -i fadd -m group -c 200 -stride 200 -max 3 -s 3",
  };

  for (const char* line : kScript) {
    std::printf("\n(qemu) %s\n", line);
    try {
      registry.Dispatch(line);
    } catch (const CommandError& e) {
      std::printf("error: %s\n", e.what());
      continue;
    }
    vm.StartProcess(spec.program);  // fi_creation_cb matches "lud" -> attach
    vm.RunToCompletion();
    std::printf("  -> %s; %zu injection(s), %llu tainted reads, "
                "%llu tainted writes\n",
                vm::TerminationKindName(vm.termination()),
                chaser.injections().size(),
                static_cast<unsigned long long>(chaser.trace_log().tainted_reads()),
                static_cast<unsigned long long>(chaser.trace_log().tainted_writes()));
    for (const core::InjectionRecord& rec : chaser.injections()) {
      std::printf("     %s\n", rec.Describe().c_str());
    }
  }

  // Malformed command lines are rejected with a diagnostic:
  std::printf("\n(qemu) inject_fault -p lud\n");
  try {
    registry.Dispatch("inject_fault -p lud");
  } catch (const CommandError& e) {
    std::printf("error: %s\n", e.what());
  }
  return 0;
}

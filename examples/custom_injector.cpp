// Building a custom fault injector on Chaser's exported interfaces — the
// paper's Table II claim is that this takes ~100 lines and a couple of
// hours. This example implements a *stuck-at-zero* injector (a fault model
// not bundled with Chaser): whenever it fires, the first FP source operand
// of the targeted instruction has its mantissa forced to zero, emulating a
// stuck-at fault in a register file read port.
//
//   $ ./examples/custom_injector
#include <cstdio>

#include "apps/app.h"
#include "core/chaser.h"
#include "core/corrupt.h"
#include "core/trigger.h"
#include "guest/operands.h"
#include "vm/vm.h"

using namespace chaser;

namespace {

/// The complete custom injector: ~30 lines, only exported interfaces.
class StuckAtZeroMantissa final : public core::FaultInjector {
 public:
  void Inject(core::InjectionContext& ctx) override {
    const guest::OperandInfo ops = guest::OperandsOf(ctx.instr);
    if (ops.fp_sources.empty()) return;
    const unsigned reg = ops.fp_sources[0];
    // XOR with the current mantissa bits == force them to zero.
    constexpr std::uint64_t kMantissa = (1ull << 52) - 1;
    const std::uint64_t bits = ctx.vm.cpu().env[tcg::EnvFp(reg)];
    const std::uint64_t flip = bits & kMantissa;
    if (flip == 0) return;  // already a power of two
    ctx.records.push_back(core::CorruptFpRegister(ctx.vm, reg, flip));
  }
  std::string name() const override { return "stuck-at-zero-mantissa"; }
};

}  // namespace

int main() {
  // Target: the kmeans distance kernel.
  apps::AppSpec spec = apps::BuildKmeans({});
  vm::Vm vm;
  core::Chaser chaser(vm);

  core::InjectionCommand cmd;
  cmd.target_program = "kmeans";
  // fadd covers the accumulation into the cluster sums, whose results are
  // stored to memory — so the fault's footprint shows up in the trace.
  cmd.target_classes = {guest::InstrClass::kFadd};
  // A burst: every fadd-class execution from the 500th to the 540th loses
  // its mantissa (a transient stuck-at lasting a few hundred cycles).
  cmd.trigger = std::make_shared<core::GroupTrigger>(500, 1, 40);
  cmd.injector = std::make_shared<StuckAtZeroMantissa>();
  cmd.seed = 3;
  chaser.Arm(cmd);

  vm.StartProcess(spec.program);
  vm.RunToCompletion();

  std::printf("kmeans with the custom stuck-at-zero-mantissa injector:\n");
  std::printf("  exit: %s\n", vm::TerminationKindName(vm.termination()));
  for (const core::InjectionRecord& rec : chaser.injections()) {
    std::printf("  %s\n", rec.Describe().c_str());
  }
  std::printf("  propagation: %llu tainted reads, %llu tainted writes\n",
              static_cast<unsigned long long>(chaser.trace_log().tainted_reads()),
              static_cast<unsigned long long>(chaser.trace_log().tainted_writes()));

  // Compare against the clean run to classify the outcome.
  vm::Vm clean;
  clean.StartProcess(spec.program);
  clean.RunToCompletion();
  std::printf("  outcome: %s\n", vm.output(3) == clean.output(3)
                                     ? "benign (output bit-identical)"
                                     : "silent data corruption (centroids differ)");
  return 0;
}

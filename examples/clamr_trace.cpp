// CLAMR case study: inject a random FP register fault into the shallow-water
// mini-app, watch the taint footprint evolve (Fig. 7 style), and see whether
// the mass-conservation checker catches the fault.
//
//   $ ./examples/clamr_trace [seed]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "apps/app.h"
#include "core/chaser_mpi.h"
#include "core/injectors/probabilistic_injector.h"
#include "core/trigger.h"
#include "mpi/cluster.h"

using namespace chaser;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 20200625;

  apps::AppSpec spec = apps::BuildClamr({});
  mpi::Cluster cluster({.num_ranks = spec.num_ranks});
  core::Chaser::Options opts;
  opts.taint_sample_interval = 25'000;  // Fig. 7 samples every 100K; our runs
                                        // are shorter, so sample 4x as often
  core::ChaserMpi chaser(cluster, opts);

  core::InjectionCommand cmd;
  cmd.target_program = "clamr";
  cmd.target_classes = spec.fault_classes;  // fadd/fsub, fmul/fdiv, fabs/...
  cmd.trigger = std::make_shared<core::DeterministicTrigger>(2500);
  // A low-mantissa flip: small enough to slip past the conservation checker,
  // so the run (usually) survives and the footprint timeline is visible.
  cmd.injector = core::ProbabilisticInjector::Create(1, /*bit_width=*/8);
  cmd.seed = seed;
  chaser.Arm(cmd, {1});  // inject into rank 1

  cluster.Start(spec.program);
  const mpi::JobResult job = cluster.Run();

  std::printf("CLAMR job (%d ranks): ", cluster.num_ranks());
  if (job.completed) {
    std::printf("ran to completion\n");
  } else {
    std::printf("terminated on rank %d: %s (%s)\n", job.first_failure_rank,
                vm::TerminationKindName(job.first_failure_kind),
                job.first_failure_message.c_str());
  }
  for (const core::InjectionRecord& rec : chaser.rank_chaser(1).injections()) {
    std::printf("injected: %s\n", rec.Describe().c_str());
  }

  std::printf("\ntainted-byte footprint over time (all ranks summed):\n");
  std::map<std::uint64_t, std::uint64_t> series;
  for (Rank r = 0; r < cluster.num_ranks(); ++r) {
    for (const core::TaintSample& s : chaser.rank_chaser(r).taint_timeline()) {
      series[s.instret] += s.tainted_bytes;
    }
  }
  std::uint64_t peak = 1;
  for (const auto& [i, v] : series) peak = std::max(peak, v);
  for (const auto& [instret, bytes] : series) {
    std::printf("  %10llu instrs  %7llu bytes  %s\n",
                static_cast<unsigned long long>(instret),
                static_cast<unsigned long long>(bytes),
                std::string(static_cast<std::size_t>(40 * bytes / peak), '#').c_str());
  }

  std::printf("\nper-rank propagation activity:\n");
  for (Rank r = 0; r < cluster.num_ranks(); ++r) {
    const core::TraceLog& log = chaser.rank_chaser(r).trace_log();
    std::printf("  rank %d: %llu tainted reads, %llu tainted writes\n", r,
                static_cast<unsigned long long>(log.tainted_reads()),
                static_cast<unsigned long long>(log.tainted_writes()));
  }
  std::printf("cross-rank transfers seen by TaintHub: %zu\n",
              chaser.hub().transfer_log().size());

  std::printf("\nfirst few trace records (eip / vaddr / paddr / value / taint):\n%s",
              chaser.rank_chaser(1).trace_log().ToString(8).c_str());
  return 0;
}

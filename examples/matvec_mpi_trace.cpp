// MPI fault propagation: inject a payload fault into the Matvec master and
// trace it across rank (and node) boundaries via TaintHub.
//
//   $ ./examples/matvec_mpi_trace
#include <cstdio>

#include "apps/app.h"
#include "core/chaser_mpi.h"
#include "core/corrupt.h"
#include "core/trigger.h"
#include "guest/operands.h"
#include "mpi/cluster.h"

using namespace chaser;

namespace {

/// User-defined injector: corrupts the first *stored value* it is offered
/// (i.e. a payload word on its way into the send staging buffer).
class PayloadInjector final : public core::FaultInjector {
 public:
  void Inject(core::InjectionContext& ctx) override {
    if (done_ || ctx.instr.op != guest::Opcode::kSt) return;
    done_ = true;
    // Flip a mantissa byte of the staged double: the job survives, but the
    // corrupted row travels to a slave.
    ctx.records.push_back(
        core::CorruptIntRegister(ctx.vm, ctx.instr.rs2, 0xffull << 16));
  }
  std::string name() const override { return "payload"; }

 private:
  bool done_ = false;
};

}  // namespace

int main() {
  apps::AppSpec spec = apps::BuildMatvec({});  // 4 ranks: 1 master + 3 slaves
  mpi::Cluster cluster({.num_ranks = spec.num_ranks});
  core::ChaserMpi chaser(cluster);

  core::InjectionCommand cmd;
  cmd.target_program = "matvec";
  cmd.target_classes = {guest::InstrClass::kMov};  // paper: mov faults only
  cmd.trigger = std::make_shared<core::GroupTrigger>(100, 1, 200);
  cmd.injector = std::make_shared<PayloadInjector>();
  cmd.seed = 7;
  chaser.Arm(cmd, /*inject_ranks=*/{0});  // faults on the master node only

  cluster.Start(spec.program);
  const mpi::JobResult job = cluster.Run();

  std::printf("job: %s\n", job.completed ? "completed" : "killed");
  std::printf("injections on master: %zu\n", chaser.rank_chaser(0).injections().size());
  for (const core::InjectionRecord& rec : chaser.rank_chaser(0).injections()) {
    std::printf("  %s\n", rec.Describe().c_str());
  }

  // TaintHub saw the corrupted message cross the rank boundary:
  std::printf("\nTaintHub: %llu publishes, %llu polls, %llu hits\n",
              static_cast<unsigned long long>(chaser.hub().stats().publishes),
              static_cast<unsigned long long>(chaser.hub().stats().polls),
              static_cast<unsigned long long>(chaser.hub().stats().hits));
  for (const hub::TransferLogEntry& t : chaser.hub().transfer_log()) {
    std::printf("  tainted message rank %d -> rank %d (tag %lld, %llu tainted bytes)"
                " [node %d -> node %d]\n",
                t.id.src, t.id.dest, static_cast<long long>(t.id.tag),
                static_cast<unsigned long long>(t.tainted_bytes),
                cluster.node_of(t.id.src), cluster.node_of(t.id.dest));
  }

  // ... and the receiving slave kept tracing the fault locally:
  for (Rank r = 0; r < cluster.num_ranks(); ++r) {
    const core::TraceLog& log = chaser.rank_chaser(r).trace_log();
    std::printf("rank %d: %llu tainted reads, %llu tainted writes\n", r,
                static_cast<unsigned long long>(log.tainted_reads()),
                static_cast<unsigned long long>(log.tainted_writes()));
  }

  // Output check: master's b differs from a clean run (SDC) — re-run clean.
  mpi::Cluster clean({.num_ranks = spec.num_ranks});
  clean.Start(spec.program);
  clean.Run();
  std::printf("\noutput vs clean run: %s\n",
              cluster.rank_vm(0).output(3) == clean.rank_vm(0).output(3)
                  ? "bit-identical (benign)"
                  : "differs (silent data corruption)");
  return 0;
}

#!/usr/bin/env bash
# injector_smoke.sh — smoke test for every registered fault injector.
#
# Runs a short matvec campaign through `chaser_run --injector NAME` for each
# bundled fault family, checks the campaign exits cleanly, that custom
# injectors stamp their identity into a records CSV v6, and that the default
# family's output stays on the v4 wire format (the byte-identity guarantee).
# Companion to fleet_smoke.sh, one subsystem over.
#
# usage: tools/injector_smoke.sh [path/to/build/tools]
#
# Exits 0 on success, 1 on any failure. Safe to run repeatedly.
set -u

TOOLS="${1:-build/tools}"
RUN="$TOOLS/chaser_run"
APP=matvec
RUNS=12
SEED=20260807

if [[ ! -x "$RUN" ]]; then
  echo "injector_smoke: binary not found at '$RUN'" >&2
  echo "  build first (cmake --build build) or pass the tools dir" >&2
  exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/chaser-injector-smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

# Every bundled family, with one parameterised spelling each where the
# family takes parameters — so the smoke also exercises the key=val path.
SPECS=(
  "probabilistic"
  "probabilistic:bits=2,width=32"
  "deterministic:operand=0,mask=0x3"
  "group"
  "multibit:bits=4"
  "burst:span=3,bits=1"
  "stuckat:value=1,bits=2"
  "iskip"
  "rank-crash"
)

fail=0
for spec in "${SPECS[@]}"; do
  name="${spec%%:*}"
  slug="${spec//[:,=]/_}"
  csv="$WORK/$slug.csv"
  if ! "$RUN" --app "$APP" --runs "$RUNS" --seed "$SEED" --jobs 1 \
       --injector "$spec" --out "$csv" >"$WORK/$slug.log" 2>&1; then
    echo "injector_smoke: FAIL — '$spec' campaign crashed (see $WORK/$slug.log)"
    tail -5 "$WORK/$slug.log"
    fail=1
    continue
  fi
  if ! head -1 "$csv" | grep -q '^#chaser-records-csv v6$'; then
    echo "injector_smoke: FAIL — '$spec' did not emit a records CSV v6"
    head -1 "$csv"
    fail=1
    continue
  fi
  rows=$(($(wc -l < "$csv") - 2))  # minus version line and header
  if [[ "$rows" -ne "$RUNS" ]]; then
    echo "injector_smoke: FAIL — '$spec' wrote $rows rows, expected $RUNS"
    fail=1
    continue
  fi
  if ! tail -1 "$csv" | grep -q ",$name,"; then
    echo "injector_smoke: FAIL — '$spec' rows missing the injector column"
    tail -1 "$csv"
    fail=1
    continue
  fi
  echo "   ok $spec ($rows trials)"
done

echo "== default fault model stays on the v4 wire format"
"$RUN" --app "$APP" --runs "$RUNS" --seed "$SEED" --jobs 1 \
       --out "$WORK/default.csv" >"$WORK/default.log" 2>&1 || {
  echo "injector_smoke: FAIL (default campaign crashed; see $WORK/default.log)"
  fail=1; }
if [[ -f "$WORK/default.csv" ]] &&
   ! head -1 "$WORK/default.csv" | grep -q '^#chaser-records-csv v4$'; then
  echo "injector_smoke: FAIL — default campaign no longer emits CSV v4"
  head -1 "$WORK/default.csv"
  fail=1
fi

echo "== unknown injector name fails with the registered-name list"
if "$RUN" --app "$APP" --runs 1 --seed "$SEED" --injector bogus \
     >"$WORK/bogus.log" 2>&1; then
  echo "injector_smoke: FAIL — '--injector bogus' exited 0"
  fail=1
elif ! grep -q 'rank-crash' "$WORK/bogus.log"; then
  echo "injector_smoke: FAIL — unknown-name error does not list choices"
  tail -3 "$WORK/bogus.log"
  fail=1
fi

if [[ "$fail" -eq 0 ]]; then
  echo "injector_smoke: PASS — ${#SPECS[@]} injector specs ran a $RUNS-trial $APP campaign each"
fi
exit "$fail"

// chaser_hubd — standalone TaintHub service.
//
// Runs a HubServer (hub/remote/server.h) in the foreground until SIGINT or
// SIGTERM, then prints its lifetime stats and exits. Shard workers connect
// with `chaser_run --hub HOST:PORT`; chaser_fleet spawns one automatically
// with --spawn-hub.
//
//   chaser_hubd                     # 127.0.0.1, ephemeral port
//   chaser_hubd --port 7707
//   chaser_hubd --hub-fault drop=0.05,retries=3,seed=9
//   chaser_hubd --obs-port 0        # + HTTP scrape endpoint
//
// The first stdout line is machine-readable so a parent process reading a
// pipe can learn the bound (possibly ephemeral) port; with --obs-port a
// second machine-readable line follows for the scrape endpoint:
//
//   chaser_hubd: listening on 127.0.0.1:43117
//   chaser_hubd: obs listening on 127.0.0.1:43118
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include <unistd.h>

#include "common/error.h"
#include "common/strings.h"
#include "hub/remote/protocol.h"
#include "hub/remote/server.h"
#include "obs/export.h"

namespace {

using namespace chaser;

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

void Usage() {
  std::printf(
      "usage: chaser_hubd [options]\n"
      "\n"
      "options:\n"
      "  --host H            bind address (default 127.0.0.1)\n"
      "  --port P            bind port (default 0 = ephemeral; the bound\n"
      "                      port is printed on the first stdout line)\n"
      "  --hub-fault SPEC    install a fault model in every new session;\n"
      "                      same spec as chaser_run --hub-fault\n"
      "  --obs-port P        also serve /metrics (Prometheus wire counters,\n"
      "                      per-command latency), /status (server stats\n"
      "                      JSON) and /healthz over HTTP on --host:P\n"
      "                      (0 = ephemeral, echoed on the second line)\n"
      "  --help              this text\n");
}

/// /status body for a hub daemon: the live ServerStats as JSON.
std::string HubStatusJson(const hub::remote::HubServer& server) {
  const hub::remote::ServerStats s = server.stats();
  return StrFormat(
      "{\"role\": \"hubd\", \"running\": %s, \"connections_accepted\": %llu, "
      "\"connections_dropped\": %llu, \"conn_errors\": %llu, "
      "\"hello_errors\": %llu, \"commands\": %llu, "
      "\"records_published\": %llu}\n",
      server.running() ? "true" : "false",
      static_cast<unsigned long long>(s.connections_accepted),
      static_cast<unsigned long long>(s.connections_dropped),
      static_cast<unsigned long long>(s.conn_errors),
      static_cast<unsigned long long>(s.hello_errors),
      static_cast<unsigned long long>(s.commands),
      static_cast<unsigned long long>(s.records_published));
}

}  // namespace

int main(int argc, char** argv) {
  hub::remote::HubServer::Options options;
  int obs_port = -1;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--host") {
        if (i + 1 >= argc) throw ConfigError("missing value for --host");
        options.host = argv[++i];
      } else if (a == "--port") {
        if (i + 1 >= argc) throw ConfigError("missing value for --port");
        std::uint64_t p = 0;
        if (!ParseU64(argv[++i], &p) || p > 65535) {
          throw ConfigError("--port expects 0..65535");
        }
        options.port = static_cast<std::uint16_t>(p);
      } else if (a == "--hub-fault") {
        if (i + 1 >= argc) throw ConfigError("missing value for --hub-fault");
        options.default_fault = hub::remote::ParseHubFaultSpec(argv[++i]);
      } else if (a == "--obs-port") {
        if (i + 1 >= argc) throw ConfigError("missing value for --obs-port");
        std::uint64_t p = 0;
        if (!ParseU64(argv[++i], &p) || p > 65535) {
          throw ConfigError("--obs-port expects 0..65535");
        }
        obs_port = static_cast<int>(p);
      } else if (a == "--help" || a == "-h") {
        Usage();
        return 0;
      } else {
        throw ConfigError("unknown flag '" + a + "'");
      }
    }

    hub::remote::HubServer server(options);
    server.Start();
    std::printf("chaser_hubd: listening on %s:%u\n", options.host.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);  // parents read the port from a pipe before EOF

    std::unique_ptr<obs::ExportServer> export_server;
    if (obs_port >= 0) {
      obs::ExportServer::Options eo;
      eo.host = options.host;
      eo.port = static_cast<std::uint16_t>(obs_port);
      eo.status_body = [&server] { return HubStatusJson(server); };
      export_server = std::make_unique<obs::ExportServer>(std::move(eo));
      std::printf("chaser_hubd: obs listening on %s\n",
                  export_server->endpoint().c_str());
      std::fflush(stdout);
    }

    std::signal(SIGINT, OnSignal);
    std::signal(SIGTERM, OnSignal);
    while (g_stop == 0) {
      // The event loop runs on the server's own thread; this thread only
      // waits for a shutdown signal (pause() returns on any handled signal).
      pause();
    }

    // The scrape endpoint goes first so /status never reads a stopped
    // server's stats mid-teardown.
    export_server.reset();
    server.Stop();
    const hub::remote::ServerStats s = server.stats();
    std::printf(
        "chaser_hubd: %llu connections (%llu dropped, %llu protocol errors, "
        "%llu hello errors), %llu commands, %llu records published\n",
        static_cast<unsigned long long>(s.connections_accepted),
        static_cast<unsigned long long>(s.connections_dropped),
        static_cast<unsigned long long>(s.conn_errors),
        static_cast<unsigned long long>(s.hello_errors),
        static_cast<unsigned long long>(s.commands),
        static_cast<unsigned long long>(s.records_published));
    return 0;
  } catch (const ChaserError& e) {
    std::fprintf(stderr, "chaser_hubd: %s\n", e.what());
    return 2;
  }
}

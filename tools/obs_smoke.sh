#!/usr/bin/env bash
# obs_smoke.sh — end-to-end smoke test for the fleet observability plane.
#
# Proves the plane is live AND inert: runs the same 2-shard fleet twice,
# once with --obs 1 and once dark. While the watched fleet runs it scrapes
# /healthz and /metrics on every advertised endpoint (workers + hubd) via
# `chaser_analyze scrape`, renders one `chaser_analyze top --once` frame,
# then checks fleet-status.json carries the rollup, fleet-trace.json is a
# stitched Chrome trace, and — the identity guarantee — the merged CSV and
# report are byte-identical to the dark run's. Companion to fleet_smoke.sh.
#
# usage: tools/obs_smoke.sh [path/to/build/tools]
#
# Exits 0 on success, 1 on any divergence. Safe to run repeatedly.
set -u

TOOLS="${1:-build/tools}"
FLEET="$TOOLS/chaser_fleet"
ANALYZE="$TOOLS/chaser_analyze"
APP=kmeans
RUNS=160
SEED=20260807

for bin in "$FLEET" "$ANALYZE" "$TOOLS/chaser_run" "$TOOLS/chaser_hubd"; do
  if [[ ! -x "$bin" ]]; then
    echo "obs_smoke: binary not found at '$bin'" >&2
    echo "  build first (cmake --build build) or pass the tools dir" >&2
    exit 1
  fi
done

WORK="$(mktemp -d "${TMPDIR:-/tmp}/chaser-obs-smoke.XXXXXX")"
FLEET_PID=
trap '[[ -n "$FLEET_PID" ]] && kill "$FLEET_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

fleet_run() {  # fleet_run <dir> <obs 0|1>
  "$FLEET" run --app "$APP" --runs "$RUNS" --seed "$SEED" \
      --shards 2 --spawn-hub 1 --dir "$1" --obs "$2"
}

echo "== reference: same fleet with the plane dark (--obs 0)"
fleet_run "$WORK/dark" 0 >"$WORK/dark.log" 2>&1 || {
  echo "obs_smoke: FAIL (dark fleet crashed; see $WORK/dark.log)"; exit 1; }

echo "== watched fleet: 2 shards + hubd, all serving /metrics (--obs 1)"
fleet_run "$WORK/obs" 1 >"$WORK/obs.log" 2>&1 &
FLEET_PID=$!

# Wait for fleet-status.json to advertise obs endpoints ("obs": "H:P"
# appears once per live worker, plus one per spawned hubd under "hubs").
ENDPOINTS=
for _ in $(seq 1 600); do
  ENDPOINTS="$(grep -o '"obs": "[0-9.:]*"' "$WORK/obs/fleet-status.json" \
      2>/dev/null | sed 's/.*"obs": "//; s/"//' | sort -u)"
  [[ -n "$ENDPOINTS" ]] && break
  kill -0 "$FLEET_PID" 2>/dev/null || break
  sleep 0.05
done
if [[ -z "$ENDPOINTS" ]]; then
  echo "obs_smoke: FAIL — no obs endpoints ever appeared in fleet-status.json"
  exit 1
fi

fail=0
echo "== scrape: /healthz + /metrics on every advertised endpoint"
scraped=0
for ep in $ENDPOINTS; do
  # Endpoints are ephemeral; a worker that finished its shard between the
  # status snapshot and our scrape is gone, not broken. Require at least
  # one endpoint to answer both paths, don't fail on any one vanishing.
  if "$ANALYZE" scrape "$ep" /healthz >/dev/null 2>&1 &&
     "$ANALYZE" scrape "$ep" /metrics >"$WORK/metrics-$ep.txt" 2>&1; then
    grep -q '^# TYPE ' "$WORK/metrics-$ep.txt" || {
      echo "obs_smoke: FAIL — $ep /metrics has no # TYPE lines"; fail=1; }
    scraped=$((scraped + 1))
    echo "   $ep ok ($(grep -c '^# TYPE ' "$WORK/metrics-$ep.txt") families)"
  else
    echo "   $ep gone (finished before the scrape landed)"
  fi
done
if [[ "$scraped" -eq 0 ]]; then
  echo "obs_smoke: FAIL — every advertised endpoint refused the scrape"
  fail=1
fi

echo "== top: one dashboard frame against the live fleet"
"$ANALYZE" top --dir "$WORK/obs" --once >"$WORK/top.txt" 2>&1 || {
  echo "obs_smoke: FAIL (chaser_analyze top --once crashed)"; fail=1; }
grep -q 'ENDPOINT' "$WORK/top.txt" || {
  echo "obs_smoke: FAIL — top frame missing its header"; fail=1; }

wait "$FLEET_PID" || {
  echo "obs_smoke: FAIL (watched fleet exited nonzero; see $WORK/obs.log)"
  FLEET_PID=; exit 1; }
FLEET_PID=

echo "== artifacts: rollup + merged trace"
grep -q '"fleet"' "$WORK/obs/fleet-status.json" || {
  echo "obs_smoke: FAIL — fleet-status.json has no rollup"; fail=1; }
grep -q '"traceEvents"' "$WORK/obs/fleet-trace.json" 2>/dev/null || {
  echo "obs_smoke: FAIL — fleet-trace.json missing or not a Chrome trace"
  fail=1; }

echo "== identity: watched run's merged outputs == dark run's"
if ! diff -q "$WORK/dark/merged.csv" "$WORK/obs/merged.csv" >/dev/null; then
  echo "obs_smoke: FAIL — merged CSV differs with the plane on"
  diff "$WORK/dark/merged.csv" "$WORK/obs/merged.csv" | head -20
  fail=1
fi
if ! diff -q "$WORK/dark/report.txt" "$WORK/obs/report.txt" >/dev/null; then
  echo "obs_smoke: FAIL — merged report differs with the plane on"
  diff "$WORK/dark/report.txt" "$WORK/obs/report.txt" | head -20
  fail=1
fi

if [[ "$fail" -ne 0 ]]; then
  echo "obs_smoke: FAIL"
  exit 1
fi
echo "obs_smoke: PASS — scraped $scraped endpoint(s), dashboard rendered," \
     "trace merged, outputs byte-identical with the plane on"

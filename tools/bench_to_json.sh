#!/usr/bin/env sh
# Run a --json-capable bench binary and atomically record its output as
# BENCH_<name>.json at the repo root, so perf claims in the tree always have
# a checked-in, machine-readable measurement behind them.
#
# Usage: tools/bench_to_json.sh [bench_name] [build_dir]
#   bench_name  bench binary under <build_dir>/bench/ (default
#               bench_ablation_dispatch)
#   build_dir   CMake build tree (default: build)
#
# The JSON is written to BENCH_<suffix>.json where <suffix> is the bench name
# without its bench_ prefix, via a temp file + rename so a crashed run never
# leaves a truncated file behind.
#
# bench_ablation_obs additionally stamps the observability-plane ladder: its
# "+export" row and per-workload "overhead_export_vs_off_pct" record what a
# scraped worker (live /metrics endpoint + ~100ms-cadence scraper) costs over
# telemetry-off, alongside the original quiet-vs-off figure. Both ratios sit
# under the same <2% guard ("guard_passed").
#
# Optional end-to-end comparison against a pre-PR build: set CHASER_SEED_BIN
# to a chaser_run binary built from the baseline commit, e.g.
#
#   git worktree add .bench-seed <seed-commit>
#   cmake -S .bench-seed -B .bench-seed/build -DCMAKE_BUILD_TYPE=Release
#   cmake --build .bench-seed/build -j --target chaser_run
#   CHASER_SEED_BIN=.bench-seed/build/tools/chaser_run tools/bench_to_json.sh
#
# Seed and current campaigns are then run strictly alternated and the median
# per-pair wall-time ratio is spliced into the JSON as "vs_seed" — pairing
# cancels host frequency drift that poisons absolute times. This covers the
# optimisations the in-binary ablation ladder cannot toggle (optimizer fusion
# passes, the radix page table, elastic taint scans).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
bench_name=${1:-bench_ablation_dispatch}
build_dir=${2:-"$repo_root/build"}

bench_bin="$build_dir/bench/$bench_name"
if [ ! -x "$bench_bin" ]; then
  echo "bench_to_json: $bench_bin not found or not executable" >&2
  echo "bench_to_json: build it first: cmake --build $build_dir --target $bench_name" >&2
  exit 1
fi

suffix=${bench_name#bench_}
out="$repo_root/BENCH_${suffix}.json"
tmp="$out.tmp.$$"

trap 'rm -f "$tmp" "$tmp.spliced"' EXIT
"$bench_bin" --json > "$tmp"

# Stamp the records-CSV format version the build writes, so a recorded bench
# is traceable to the exact CSV schema of its era. kRecordsCsvVersion in
# src/campaign/report.h is the single source of truth — grep it rather than
# duplicating the number here.
csv_version=$(sed -n \
  's/.*constexpr unsigned kRecordsCsvVersion = \([0-9][0-9]*\);.*/\1/p' \
  "$repo_root/src/campaign/report.h")
if [ -z "$csv_version" ]; then
  echo "bench_to_json: cannot find kRecordsCsvVersion in src/campaign/report.h" >&2
  exit 1
fi
sed '$d' "$tmp" > "$tmp.spliced"
sed -i '$s/$/,/' "$tmp.spliced"
printf '  "records_csv_version": %s\n}\n' "$csv_version" >> "$tmp.spliced"
mv "$tmp.spliced" "$tmp"

# Same for the CTR segment format version (src/store/ctr.h), so a recorded
# columnar-store bench is traceable to the exact segment layout it measured.
ctr_version=$(sed -n \
  's/.*constexpr std::uint64_t kCtrFormatVersion = \([0-9][0-9]*\);.*/\1/p' \
  "$repo_root/src/store/ctr.h")
if [ -z "$ctr_version" ]; then
  echo "bench_to_json: cannot find kCtrFormatVersion in src/store/ctr.h" >&2
  exit 1
fi
sed '$d' "$tmp" > "$tmp.spliced"
sed -i '$s/$/,/' "$tmp.spliced"
printf '  "ctr_format_version": %s\n}\n' "$ctr_version" >> "$tmp.spliced"
mv "$tmp.spliced" "$tmp"

# Median wall-ms over strictly alternated runs of two binaries. Emits
# "<median_seed_ms> <median_cur_ms> <median_ratio>" for `pairs` pairs.
paired_ratio() {
  # $1=seed_bin $2=cur_bin $3=app $4=runs $5=pairs
  "$1" --app "$3" --runs "$4" --seed 42 --jobs 1 > /dev/null  # warm-up
  "$2" --app "$3" --runs "$4" --seed 42 --jobs 1 > /dev/null
  p=0
  ratios=""
  while [ "$p" -lt "$5" ]; do
    t0=$(date +%s%N)
    "$1" --app "$3" --runs "$4" --seed 42 --jobs 1 > /dev/null
    t1=$(date +%s%N)
    "$2" --app "$3" --runs "$4" --seed 42 --jobs 1 > /dev/null
    t2=$(date +%s%N)
    ratios="$ratios$(awk -v a="$t0" -v b="$t1" -v c="$t2" \
      'BEGIN{s=(b-a)/1e6; u=(c-b)/1e6; printf "%.2f %.2f %.4f\n", s, u, s/u}')
"
    p=$((p + 1))
  done
  printf '%s' "$ratios" | sort -g -k3 | awk -v n="$5" 'NR == int(n / 2) + 1'
}

if [ -n "${CHASER_SEED_BIN:-}" ]; then
  cur_run="$build_dir/tools/chaser_run"
  if [ ! -x "$CHASER_SEED_BIN" ] || [ ! -x "$cur_run" ]; then
    echo "bench_to_json: CHASER_SEED_BIN or $cur_run missing/not executable" >&2
    exit 1
  fi
  pairs=7
  echo "bench_to_json: pairing seed vs current ($pairs pairs per workload)..." >&2
  set -- "matvec 120" "lud 60"
  vs_seed=""
  for wl in "$@"; do
    app=${wl% *}
    runs=${wl#* }
    med=$(paired_ratio "$CHASER_SEED_BIN" "$cur_run" "$app" "$runs" "$pairs")
    seed_ms=$(printf '%s' "$med" | awk '{print $1}')
    cur_ms=$(printf '%s' "$med" | awk '{print $2}')
    ratio=$(printf '%s' "$med" | awk '{printf "%.2f", $3}')
    echo "bench_to_json:   $app: seed ${seed_ms} ms, current ${cur_ms} ms, ${ratio}x" >&2
    [ -n "$vs_seed" ] && vs_seed="$vs_seed, "
    vs_seed="$vs_seed{\"app\": \"$app\", \"runs\": $runs, \"seed_ms\": $seed_ms, \"current_ms\": $cur_ms, \"speedup\": $ratio}"
  done
  # Splice before the closing brace of the bench's JSON object.
  sed '$d' "$tmp" > "$tmp.spliced"
  # Turn the last remaining line's value into a comma-terminated member.
  sed -i '$s/$/,/' "$tmp.spliced"
  printf '  "vs_seed": {"pairs": %s, "note": "median paired campaign ratio vs pre-PR seed binary", "workloads": [%s]}\n}\n' \
    "$pairs" "$vs_seed" >> "$tmp.spliced"
  mv "$tmp.spliced" "$tmp"
fi

mv "$tmp" "$out"
trap - EXIT
echo "bench_to_json: wrote $out"

#!/usr/bin/env bash
# kill_resume_smoke.sh — end-to-end crash-safety smoke test for chaser_run.
#
# Proves the trial journal survives a SIGKILL mid-campaign: a campaign is
# started with --resume, killed hard partway through, resumed, and the
# resumed run's CSV + report must be byte-identical to an uninterrupted
# reference run of the same campaign.
#
# usage: tools/kill_resume_smoke.sh [path/to/chaser_run] [jobs]
#
# Exits 0 on success, 1 on any divergence. Safe to run repeatedly.
set -u

BIN="${1:-build/tools/chaser_run}"
JOBS="${2:-4}"
APP=matvec
RUNS=60
SEED=20260806

if [[ ! -x "$BIN" ]]; then
  echo "kill_resume_smoke: chaser_run binary not found at '$BIN'" >&2
  echo "  build it first (cmake --build build) or pass its path" >&2
  exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/chaser-kill-resume.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

run() {  # run <csv> <report> [extra flags...]
  local csv="$1" report="$2"
  shift 2
  "$BIN" --app "$APP" --runs "$RUNS" --seed "$SEED" --jobs "$JOBS" \
         --out "$csv" "$@" >"$report" 2>&1
}

echo "== reference: uninterrupted campaign ($RUNS trials, --jobs $JOBS)"
run "$WORK/ref.csv" "$WORK/ref.report" || {
  echo "kill_resume_smoke: FAIL (reference run crashed)"; exit 1; }

echo "== victim: same campaign with --resume, SIGKILLed mid-flight"
JOURNAL="$WORK/trials.journal"
run "$WORK/victim.csv" "$WORK/victim.report" --resume "$JOURNAL" &
VICTIM=$!

# Wait until the journal shows real progress (some frames past the header),
# then kill -9 with trials still outstanding. If the run is so fast it
# finishes first, that's fine — the resume below is then a pure replay.
for _ in $(seq 1 500); do
  size=$(stat -c %s "$JOURNAL" 2>/dev/null || echo 0)
  [[ "$size" -gt 256 ]] && break
  kill -0 "$VICTIM" 2>/dev/null || break
  sleep 0.01
done
if kill -9 "$VICTIM" 2>/dev/null; then
  echo "   killed pid $VICTIM with journal at $(stat -c %s "$JOURNAL" 2>/dev/null || echo 0) bytes"
else
  echo "   victim finished before the kill landed; resume becomes a replay"
fi
wait "$VICTIM" 2>/dev/null

echo "== resume: rerun with the same journal; only missing seeds execute"
run "$WORK/resumed.csv" "$WORK/resumed.report" --resume "$JOURNAL" || {
  echo "kill_resume_smoke: FAIL (resumed run crashed)"; exit 1; }

fail=0
if ! diff -q "$WORK/ref.csv" "$WORK/resumed.csv" >/dev/null; then
  echo "kill_resume_smoke: FAIL — resumed CSV differs from reference"
  diff "$WORK/ref.csv" "$WORK/resumed.csv" | head -20
  fail=1
fi
# The report embeds the CSV output path ("wrote N records to .../x.csv"),
# which legitimately differs between the two runs — normalize it away.
# Ditto the live shared-tb-cache counters: replayed trials are accounted
# without re-executing, so the resumed process performs less translation
# work than the reference. The campaign *results* (CSV + report body)
# must still match byte for byte.
norm() { sed -e 's| to .*\.csv$| to CSV|' \
             -e 's|^shared tb cache: .*|shared tb cache: (live counters)|' "$1"; }
norm "$WORK/ref.report" >"$WORK/ref.report.norm"
norm "$WORK/resumed.report" >"$WORK/resumed.report.norm"
if ! diff -q "$WORK/ref.report.norm" "$WORK/resumed.report.norm" >/dev/null; then
  echo "kill_resume_smoke: FAIL — resumed report differs from reference"
  diff "$WORK/ref.report.norm" "$WORK/resumed.report.norm" | head -20
  fail=1
fi

if [[ "$fail" -eq 0 ]]; then
  echo "kill_resume_smoke: PASS — resumed run is byte-identical to reference"
fi
exit "$fail"

#!/usr/bin/env bash
# store_smoke.sh — end-to-end smoke test for the CTR columnar trial store.
#
# Proves the whole columnar chain: a `chaser_run --records-format ctr`
# campaign SIGKILLed mid-run, a journal+store resume that converges back to
# the uninterrupted byte stream, a 3-shard fleet producing per-shard stores,
# a streaming `chaser_fleet merge` into one merged store, and
# `chaser_analyze query` / `export-csv` over the result — with the exported
# CSV byte-identical to what a plain `--records-format csv` run writes.
# Companion to fleet_smoke.sh, one storage layer down.
#
# usage: tools/store_smoke.sh [path/to/build/tools]
#
# Exits 0 on success, 1 on any divergence. Safe to run repeatedly.
set -u

TOOLS="${1:-build/tools}"
RUN="$TOOLS/chaser_run"
FLEET="$TOOLS/chaser_fleet"
ANALYZE="$TOOLS/chaser_analyze"
APP=matvec
RUNS=120
SEED=20260807

for bin in "$RUN" "$FLEET" "$ANALYZE"; do
  if [[ ! -x "$bin" ]]; then
    echo "store_smoke: binary not found at '$bin'" >&2
    echo "  build first (cmake --build build) or pass the tools dir" >&2
    exit 1
  fi
done

WORK="$(mktemp -d "${TMPDIR:-/tmp}/chaser-store-smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

echo "== reference: records CSV from an uninterrupted run ($RUNS trials)"
"$RUN" --app "$APP" --runs "$RUNS" --seed "$SEED" --jobs 1 \
       --out "$WORK/ref.csv" --report "$WORK/ref.report" \
       >"$WORK/ref.log" 2>&1 || {
  echo "store_smoke: FAIL (reference run crashed; see $WORK/ref.log)"; exit 1; }

echo "== store: same campaign into a CTR store, uninterrupted"
"$RUN" --app "$APP" --runs "$RUNS" --seed "$SEED" --jobs 1 \
       --out "$WORK/clean.ctr" --records-format ctr \
       >"$WORK/clean.log" 2>&1 || {
  echo "store_smoke: FAIL (clean store run crashed; see $WORK/clean.log)"
  exit 1; }

store_run() {  # journaled CTR run into $WORK/kill.ctr
  "$RUN" --app "$APP" --runs "$RUNS" --seed "$SEED" --jobs 1 \
         --resume "$WORK/kill.journal" \
         --out "$WORK/kill.ctr" --records-format ctr
}

echo "== kill: journaled CTR run is SIGKILLed mid-campaign"
store_run >"$WORK/kill.log" 2>&1 &
VICTIM=$!
for _ in $(seq 1 500); do
  size=$(stat -c %s "$WORK/kill.journal" 2>/dev/null || echo 0)
  [[ "$size" -gt 256 ]] && break
  kill -0 "$VICTIM" 2>/dev/null || break
  sleep 0.01
done
if kill -9 "$VICTIM" 2>/dev/null; then
  echo "   killed pid $VICTIM with journal at $(stat -c %s "$WORK/kill.journal" 2>/dev/null || echo 0) bytes"
else
  echo "   run finished before the kill landed; resume becomes a replay"
fi
wait "$VICTIM" 2>/dev/null

echo "== resume: rerun from journal + torn store"
store_run >"$WORK/resume.log" 2>&1 || {
  echo "store_smoke: FAIL (resume crashed; see $WORK/resume.log)"; exit 1; }

fail=0
if ! diff -rq "$WORK/clean.ctr" "$WORK/kill.ctr" >/dev/null; then
  echo "store_smoke: FAIL — resumed store differs from the uninterrupted store"
  diff -rq "$WORK/clean.ctr" "$WORK/kill.ctr" | head -10
  fail=1
fi

echo "== shards: 3-shard fleet into per-shard stores, streaming merge"
"$FLEET" run --app "$APP" --runs "$RUNS" --seed "$SEED" --shards 3 \
         --records-format ctr --dir "$WORK/fleet" \
         >"$WORK/fleet.log" 2>&1 || {
  echo "store_smoke: FAIL (fleet run crashed; see $WORK/fleet.log)"; exit 1; }
if [[ ! -d "$WORK/fleet/merged.ctr" ]]; then
  echo "store_smoke: FAIL — fleet left no merged.ctr store"; exit 1
fi
if ! diff -q "$WORK/ref.report" "$WORK/fleet/report.txt" >/dev/null; then
  echo "store_smoke: FAIL — fleet report differs from the unsharded reference"
  diff "$WORK/ref.report" "$WORK/fleet/report.txt" | head -20
  fail=1
fi

echo "== export: every store must reproduce the reference CSV byte for byte"
for store in "$WORK/clean.ctr" "$WORK/kill.ctr" "$WORK/fleet/merged.ctr"; do
  "$ANALYZE" export-csv "$store" --out "$WORK/export.csv" \
      >"$WORK/export.log" 2>&1 || {
    echo "store_smoke: FAIL (export-csv crashed on $store)"; fail=1; continue; }
  if ! diff -q "$WORK/ref.csv" "$WORK/export.csv" >/dev/null; then
    echo "store_smoke: FAIL — export of $store differs from the native CSV"
    diff "$WORK/ref.csv" "$WORK/export.csv" | head -10
    fail=1
  fi
done

echo "== query: summarize and a filtered group-by over the merged store"
"$ANALYZE" summarize "$WORK/fleet/merged.ctr" >"$WORK/summary.txt" 2>&1 || {
  echo "store_smoke: FAIL (summarize over the store crashed)"; fail=1; }
grep -q "$RUNS records" "$WORK/summary.txt" || {
  echo "store_smoke: FAIL — store summarize did not see all $RUNS records"
  head -5 "$WORK/summary.txt"; fail=1; }
"$ANALYZE" query "$WORK/fleet/merged.ctr" --group-by outcome \
    >"$WORK/query.txt" 2>&1 || {
  echo "store_smoke: FAIL (query over the store crashed)"; fail=1; }
grep -q "$RUNS records scanned" "$WORK/query.txt" || {
  echo "store_smoke: FAIL — query did not scan all $RUNS records"
  head -5 "$WORK/query.txt"; fail=1; }

if [[ "$fail" -eq 0 ]]; then
  echo "store_smoke: PASS — kill+resume, 3-shard streaming merge, query, and export-csv all byte-identical to the CSV reference"
fi
exit "$fail"

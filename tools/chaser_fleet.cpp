// chaser_fleet — sharded-campaign coordinator.
//
// `chaser_fleet run` splits one campaign across N `chaser_run --shard i/N`
// worker processes (optionally publishing message taint through spawned
// chaser_hubd servers), supervises them — a crashed shard is restarted and
// resumes from its journal — rolls their status files up into
// DIR/fleet-status.json, and finally merges the per-shard records into one
// report byte-identical to an unsharded run of the same plan (see
// campaign/fleet.h for the determinism argument).
//
//   chaser_fleet run --app matvec --runs 400 --seed 7 --shards 2
//       --dir /tmp/fleet --spawn-hub 1
//
// `chaser_fleet merge` is the offline half: given the per-shard records
// CSVs and the campaign plan, it re-derives the merged report without
// running anything.
//
//   chaser_fleet merge --app matvec --runs 400 --seed 7
//       --report /tmp/report.txt a.csv b.csv
//
// Hosts file: one line per shard. Only "local" (run the worker as a child
// process) is supported today; the file format exists so a future transport
// can slot in without changing the plan layout.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/campaign.h"
#include "campaign/fleet.h"
#include "campaign/report.h"
#include "common/error.h"
#include "common/fileio.h"
#include "common/strings.h"
#include "net/socket.h"
#include "obs/export.h"
#include "obs/trace_merge.h"
#include "store/ctr.h"

namespace {

using namespace chaser;

void Usage() {
  std::printf(
      "usage: chaser_fleet run   --app APP --dir DIR [options]\n"
      "       chaser_fleet merge --app APP --runs N --seed S [options] CSV...\n"
      "       chaser_fleet trace-merge --out FILE TRACE.json...\n"
      "\n"
      "run options:\n"
      "  --app NAME          campaign app (as chaser_run --app)\n"
      "  --dir DIR           working directory for per-shard journals, CSVs,\n"
      "                      logs, status files, and the merged outputs\n"
      "  --runs N            total trials across all shards (default 200)\n"
      "  --seed N            campaign seed (default 1)\n"
      "  --shards K          worker count (default 2)\n"
      "  --hosts FILE        one line per shard; each must be 'local'. Line\n"
      "                      count overrides --shards\n"
      "  --jobs N            worker threads per shard (default 1 = serial)\n"
      "  --sample POLICY     sampling policy, forwarded to every worker\n"
      "  --stop-ci W         early-stop interval width, applied at merge time\n"
      "                      in global seed order (workers run their full\n"
      "                      shard; see campaign/fleet.h)\n"
      "  --worker BIN        chaser_run binary (default: sibling of this one)\n"
      "  --hub H:P[,...]     existing chaser_hubd endpoint(s) for the workers\n"
      "  --spawn-hub N       spawn N chaser_hubd processes on ephemeral ports\n"
      "                      and point the workers at them (N>1 shards the\n"
      "                      hub key space; use 1 when byte-identity with an\n"
      "                      in-process run matters)\n"
      "  --hubd BIN          chaser_hubd binary (default: sibling)\n"
      "  --restarts N        max restarts per crashed shard (default 2); a\n"
      "                      restarted shard resumes from its journal\n"
      "  --records-format F  per-shard record storage (default csv): csv, or\n"
      "                      ctr for columnar CTR stores (shard-<i>.ctr/); the\n"
      "                      merge then streams shard stores record-by-record\n"
      "                      into DIR/merged.ctr instead of loading CSVs whole\n"
      "  --obs 0|1           observability plane (default 0): every worker and\n"
      "                      spawned hubd serves /metrics + /status + /healthz\n"
      "                      on an ephemeral port, fleet-status.json gains the\n"
      "                      live fleet rollup (scraped when possible, status\n"
      "                      files as fallback), workers write Chrome traces,\n"
      "                      and the traces merge into DIR/fleet-trace.json\n"
      "\n"
      "merge options (inputs: records CSVs, or CTR store dirs — not mixed):\n"
      "  --runs/--seed/--sample/--stop-ci   the plan every shard ran\n"
      "  --out FILE          write the merged records: a CSV for CSV inputs, a\n"
      "                      merged CTR store for CTR inputs (export a CSV\n"
      "                      with chaser_analyze export-csv)\n"
      "  --report FILE       write the merged report (also printed)\n"
      "\n"
      "trace-merge: stitch per-process Chrome traces (chaser_run --trace-out)\n"
      "into one fleet timeline — per-file pids become distinct process rows\n"
      "and timestamps are aligned via each file's wall-clock anchor\n"
      "(hub-handshake corrected when the run had a hub; see DESIGN.md 5.10).\n");
}

std::string ArgStr(int argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc) throw ConfigError(std::string("missing value for ") + flag);
  return argv[++i];
}

std::uint64_t ArgNum(int argc, char** argv, int& i, const char* flag) {
  std::uint64_t v = 0;
  if (!ParseU64(ArgStr(argc, argv, i, flag), &v)) {
    throw ConfigError(std::string("bad number for ") + flag);
  }
  return v;
}

/// Resolve a tool that ships next to this one: "<dir of argv0>/<name>", or
/// bare `name` (PATH lookup in execvp) when argv0 has no directory part.
std::string SiblingBinary(const char* argv0, const std::string& name) {
  const std::string self = argv0;
  const auto slash = self.rfind('/');
  if (slash == std::string::npos) return name;
  return self.substr(0, slash + 1) + name;
}

/// fork+execvp with stdout/stderr appended to `log_path`. Returns the pid.
pid_t SpawnLogged(const std::vector<std::string>& args,
                  const std::string& log_path) {
  const pid_t pid = fork();
  if (pid < 0) throw ConfigError(std::string("fork: ") + std::strerror(errno));
  if (pid == 0) {
    const int fd =
        open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      dup2(fd, STDOUT_FILENO);
      dup2(fd, STDERR_FILENO);
      if (fd > STDERR_FILENO) close(fd);
    }
    std::vector<char*> cargs;
    cargs.reserve(args.size() + 1);
    for (const std::string& a : args) cargs.push_back(const_cast<char*>(a.c_str()));
    cargs.push_back(nullptr);
    execvp(cargs[0], cargs.data());
    std::fprintf(stderr, "chaser_fleet: exec %s: %s\n", cargs[0],
                 std::strerror(errno));
    _exit(127);
  }
  return pid;
}

struct HubProc {
  pid_t pid = -1;
  std::string endpoint;
  std::string obs_endpoint;  // "" when the hub runs without a scrape server
};

/// Spawn a chaser_hubd on an ephemeral port and read the bound endpoint
/// from its first stdout line ("chaser_hubd: listening on H:P"); with
/// `obs` the daemon also gets --obs-port 0 and its scrape endpoint is read
/// from the second banner line.
HubProc SpawnHub(const std::string& hubd_bin, bool obs) {
  int pipefd[2];
  if (pipe(pipefd) != 0) {
    throw ConfigError(std::string("pipe: ") + std::strerror(errno));
  }
  const pid_t pid = fork();
  if (pid < 0) throw ConfigError(std::string("fork: ") + std::strerror(errno));
  if (pid == 0) {
    close(pipefd[0]);
    dup2(pipefd[1], STDOUT_FILENO);
    if (pipefd[1] > STDERR_FILENO) close(pipefd[1]);
    if (obs) {
      execlp(hubd_bin.c_str(), hubd_bin.c_str(), "--port", "0", "--obs-port",
             "0", static_cast<char*>(nullptr));
    } else {
      execlp(hubd_bin.c_str(), hubd_bin.c_str(), "--port", "0",
             static_cast<char*>(nullptr));
    }
    std::fprintf(stderr, "chaser_fleet: exec %s: %s\n", hubd_bin.c_str(),
                 std::strerror(errno));
    _exit(127);
  }
  close(pipefd[1]);
  // Read one banner line per call; the daemon flushes each after binding.
  const auto read_line = [&pipefd] {
    std::string line;
    char c;
    while (read(pipefd[0], &c, 1) == 1 && c != '\n') line.push_back(c);
    return line;
  };
  HubProc hub;
  hub.pid = pid;
  const std::string line = read_line();
  const std::string prefix = "chaser_hubd: listening on ";
  if (line.rfind(prefix, 0) != 0) {
    close(pipefd[0]);
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    throw ConfigError("chaser_fleet: unexpected chaser_hubd banner: '" + line +
                      "'");
  }
  hub.endpoint = line.substr(prefix.size());
  if (obs) {
    const std::string obs_line = read_line();
    const std::string obs_prefix = "chaser_hubd: obs listening on ";
    if (obs_line.rfind(obs_prefix, 0) == 0) {
      hub.obs_endpoint = obs_line.substr(obs_prefix.size());
    }
  }
  close(pipefd[0]);
  return hub;
}

std::vector<campaign::RunRecord> ReadRecordsFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open records CSV '" + path + "'");
  return campaign::ReadRecordsCsv(in);
}

void RenderAndWriteReport(const campaign::CampaignResult& result,
                          const campaign::MergePlan& plan,
                          const std::string& report_path) {
  const std::string report = result.Render(plan.app);
  if (!report_path.empty()) {
    WriteFileAtomic(report_path, report);
    std::printf("wrote report to %s\n", report_path.c_str());
  }
  std::printf("%s", report.c_str());
}

/// Streaming merge over per-shard CTR stores: each store is scanned
/// record-by-record (one segment in memory per shard, never the record set),
/// pulled round-robin through MergeShardStreams, and optionally re-emitted
/// as one merged CTR store. The merged result is byte-identical to the
/// unsharded run's — same reduction loop, same seed order.
campaign::CampaignResult MergeStoresAndWrite(
    const campaign::MergePlan& plan, const std::vector<std::string>& paths,
    const std::string& out_path, const std::string& report_path) {
  // Order the streams by each store's self-declared shard index —
  // MergeShardStreams expects stream i to be the shard owning trials
  // t % N == i, whatever order the paths were given in.
  std::vector<std::unique_ptr<store::CtrStoreScanner>> scanners(paths.size());
  for (const std::string& path : paths) {
    auto scanner = std::make_unique<store::CtrStoreScanner>(path);
    const store::CtrStoreInfo& info = scanner->info();
    if (info.campaign_seed != plan.seed || info.app != plan.app ||
        info.sample_policy != plan.sample_policy) {
      throw ConfigError(StrFormat(
          "merge: store '%s' was written by campaign %s/seed %llu/%s, not "
          "the plan's %s/seed %llu/%s",
          path.c_str(), info.app.c_str(),
          static_cast<unsigned long long>(info.campaign_seed),
          campaign::SamplePolicyName(info.sample_policy), plan.app.c_str(),
          static_cast<unsigned long long>(plan.seed),
          campaign::SamplePolicyName(plan.sample_policy)));
    }
    if (info.shard_count != paths.size()) {
      throw ConfigError(StrFormat(
          "merge: store '%s' is shard %llu of %llu but %zu stores were given",
          path.c_str(), static_cast<unsigned long long>(info.shard_index),
          static_cast<unsigned long long>(info.shard_count), paths.size()));
    }
    if (scanners[static_cast<std::size_t>(info.shard_index)] != nullptr) {
      throw ConfigError(StrFormat(
          "merge: two stores claim shard %llu — a store was passed twice",
          static_cast<unsigned long long>(info.shard_index)));
    }
    if (scanner->truncated()) {
      std::fprintf(stderr,
                   "chaser_fleet: warning: store '%s' has a torn tail (its "
                   "writer died); merging its intact prefix\n",
                   path.c_str());
    }
    scanners[static_cast<std::size_t>(info.shard_index)] = std::move(scanner);
  }
  std::vector<campaign::ShardRecordStream> streams;
  streams.reserve(scanners.size());
  for (const auto& scanner : scanners) {
    streams.push_back([s = scanner.get()](campaign::RunRecord* out) {
      return s->Next(out);
    });
  }

  std::unique_ptr<store::CtrStoreWriter> merged;
  std::function<void(const campaign::RunRecord&)> sink;
  if (!out_path.empty()) {
    store::CtrStoreInfo identity;
    identity.campaign_seed = plan.seed;
    identity.app = plan.app;
    identity.sample_policy = plan.sample_policy;
    merged = std::make_unique<store::CtrStoreWriter>(out_path, identity);
    sink = [w = merged.get()](const campaign::RunRecord& rec) { w->Add(rec); };
  }
  campaign::CampaignResult result =
      campaign::MergeShardStreams(plan, std::move(streams), sink);
  if (merged != nullptr) {
    merged->Finish();
    std::printf("wrote %llu merged records to %s (ctr store)\n",
                static_cast<unsigned long long>(merged->added()),
                out_path.c_str());
  }
  RenderAndWriteReport(result, plan, report_path);
  return result;
}

/// Merge shard records, render, and write the merged artifacts. CTR-store
/// inputs take the streaming path; CSVs are loaded whole, as before.
campaign::CampaignResult MergeAndWrite(const campaign::MergePlan& plan,
                                       const std::vector<std::string>& inputs,
                                       const std::string& out_path,
                                       const std::string& report_path) {
  std::size_t n_stores = 0;
  for (const std::string& path : inputs) {
    if (store::IsCtrStorePath(path)) ++n_stores;
  }
  if (n_stores == inputs.size()) {
    return MergeStoresAndWrite(plan, inputs, out_path, report_path);
  }
  if (n_stores != 0) {
    throw ConfigError(
        "merge: inputs mix CTR stores and records CSVs — pass one kind");
  }
  std::vector<campaign::RunRecord> all;
  for (const std::string& path : inputs) {
    std::vector<campaign::RunRecord> recs = ReadRecordsFile(path);
    all.insert(all.end(), recs.begin(), recs.end());
  }
  campaign::CampaignResult result = campaign::MergeShardRecords(plan, all);
  if (!out_path.empty()) {
    std::ostringstream csv;
    campaign::WriteRecordsCsv(result.records, csv, plan.sample_policy);
    WriteFileAtomic(out_path, csv.str());
    std::printf("wrote %zu merged records to %s\n", result.records.size(),
                out_path.c_str());
  }
  RenderAndWriteReport(result, plan, report_path);
  return result;
}

/// GET `path` from an "H:P" scrape endpoint; "" on any failure (the caller
/// always has a file fallback, so scrape failures are soft).
std::string TryScrape(const std::string& endpoint, const std::string& path) {
  if (endpoint.empty()) return "";
  try {
    const net::Endpoint ep = net::ParseEndpoint(endpoint);
    const obs::HttpResponse r =
        obs::HttpGet(ep.host, ep.port, path, /*timeout_ms=*/250);
    if (r.status == 200) return r.body;
  } catch (const ChaserError&) {
    // Worker mid-restart or already gone; fall back to its status file.
  }
  return "";
}

/// Roll every shard's status up into one fleet-status.json. Each shard
/// document is one complete JSON object (StatusWriter writes the file
/// atomically and /status serves the same rendering), so embedding it
/// verbatim keeps the rollup valid JSON. With the obs plane on, live
/// /status scrapes take precedence over the (possibly staler) status files.
void WriteFleetStatus(const std::string& dir, std::uint64_t shards,
                      const std::vector<int>& states,
                      const std::vector<unsigned>& restarts,
                      const std::vector<HubProc>& hubs, bool obs) {
  std::vector<campaign::ShardStatus> parsed(shards);
  std::vector<std::string> bodies(shards);
  for (std::uint64_t i = 0; i < shards; ++i) {
    std::string body;
    std::ifstream in(dir + "/shard-" + std::to_string(i) + ".status.json");
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      body = ss.str();
    }
    if (obs) {
      // The worker advertises its scrape endpoint inside its own status
      // file ("obs": "H:P") — no extra banner plumbing needed.
      const campaign::ShardStatus from_file = campaign::ParseShardStatus(body);
      const std::string live = TryScrape(from_file.obs_endpoint, "/status");
      if (!live.empty()) body = live;
    }
    while (!body.empty() && (body.back() == '\n' || body.back() == ' ')) {
      body.pop_back();
    }
    bodies[i] = body;
    parsed[i] = campaign::ParseShardStatus(body);
  }
  const campaign::FleetRollup r = campaign::RollUpShards(parsed);

  // eta_s keeps the null-for-unknown contract fleet-wide: one shard that
  // cannot estimate yet (or is not reporting) makes the fleet ETA null.
  std::string out = StrFormat(
      "{\"fleet\": {\"shards\": %llu, \"reporting\": %llu, \"total\": %llu, "
      "\"done\": %llu, \"replayed\": %llu, \"benign\": %llu, "
      "\"terminated\": %llu, \"sdc\": %llu, \"infra\": %llu, "
      "\"taint_lost\": %llu, \"trace_dropped\": %llu, "
      "\"trials_per_s\": %.2f, \"eta_s\": %s, \"estimates\": "
      "{\"benign\": %.6f, \"terminated\": %.6f, \"sdc\": %.6f, "
      "\"infra\": %.6f}}",
      static_cast<unsigned long long>(r.shards),
      static_cast<unsigned long long>(r.shards_reporting),
      static_cast<unsigned long long>(r.total),
      static_cast<unsigned long long>(r.done),
      static_cast<unsigned long long>(r.replayed),
      static_cast<unsigned long long>(r.benign),
      static_cast<unsigned long long>(r.terminated),
      static_cast<unsigned long long>(r.sdc),
      static_cast<unsigned long long>(r.infra),
      static_cast<unsigned long long>(r.taint_lost),
      static_cast<unsigned long long>(r.trace_dropped), r.trials_per_s,
      r.eta_known ? StrFormat("%.1f", r.eta_s).c_str() : "null",
      r.benign_rate, r.terminated_rate, r.sdc_rate, r.infra_rate);

  if (!hubs.empty()) {
    out += ", \"hubs\": [";
    for (std::size_t h = 0; h < hubs.size(); ++h) {
      if (h > 0) out += ", ";
      out += StrFormat("{\"endpoint\": \"%s\"", hubs[h].endpoint.c_str());
      if (!hubs[h].obs_endpoint.empty()) {
        out += StrFormat(", \"obs\": \"%s\"", hubs[h].obs_endpoint.c_str());
        std::string stats = TryScrape(hubs[h].obs_endpoint, "/status");
        while (!stats.empty() &&
               (stats.back() == '\n' || stats.back() == ' ')) {
          stats.pop_back();
        }
        if (!stats.empty()) out += ", \"stats\": " + stats;
      }
      out += "}";
    }
    out += "]";
  }

  out += ", \"shards\": [";
  for (std::uint64_t i = 0; i < shards; ++i) {
    if (i > 0) out += ", ";
    const char* state = states[i] == 0   ? "running"
                        : states[i] == 1 ? "done"
                                         : "failed";
    out += StrFormat("{\"shard\": %llu, \"state\": \"%s\", \"restarts\": %u",
                     static_cast<unsigned long long>(i), state, restarts[i]);
    if (!bodies[i].empty()) out += ", \"status\": " + bodies[i];
    out += "}";
  }
  out += "]}\n";
  WriteFileAtomic(dir + "/fleet-status.json", out);
}

/// Merge whatever per-shard traces exist into DIR/fleet-trace.json. Missing
/// traces (a shard that never started, an obs-off worker) are skipped — the
/// merged timeline covers what was actually recorded.
void MergeFleetTraces(const std::string& dir, std::uint64_t shards) {
  std::vector<std::string> paths;
  for (std::uint64_t i = 0; i < shards; ++i) {
    const std::string path =
        dir + "/shard-" + std::to_string(i) + ".trace.json";
    std::ifstream probe(path);
    if (probe) paths.push_back(path);
  }
  if (paths.empty()) return;
  const std::string out = dir + "/fleet-trace.json";
  const obs::TraceMergeStats stats = obs::MergeChromeTraceFiles(paths, out);
  std::printf(
      "chaser_fleet: merged %zu traces (%llu events, clock skew up to "
      "%lld us) into %s\n",
      stats.files, static_cast<unsigned long long>(stats.events),
      static_cast<long long>(stats.max_skew_us), out.c_str());
}

int RunFleet(int argc, char** argv) {
  std::string app, dir, worker_bin, hubd_bin, hosts_file;
  std::vector<std::string> hub_endpoints;
  campaign::MergePlan plan;
  plan.runs = 200;
  plan.seed = 1;
  std::uint64_t shards = 2;
  std::uint64_t jobs = 1;
  std::uint64_t spawn_hubs = 0;
  std::uint64_t max_restarts = 2;
  std::string records_format = "csv";
  bool obs = false;

  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--app") {
      app = ArgStr(argc, argv, i, "--app");
    } else if (a == "--dir") {
      dir = ArgStr(argc, argv, i, "--dir");
    } else if (a == "--runs") {
      plan.runs = ArgNum(argc, argv, i, "--runs");
    } else if (a == "--seed") {
      plan.seed = ArgNum(argc, argv, i, "--seed");
    } else if (a == "--shards") {
      shards = ArgNum(argc, argv, i, "--shards");
    } else if (a == "--hosts") {
      hosts_file = ArgStr(argc, argv, i, "--hosts");
    } else if (a == "--jobs") {
      jobs = ArgNum(argc, argv, i, "--jobs");
    } else if (a == "--sample") {
      const std::string policy = ArgStr(argc, argv, i, "--sample");
      if (!campaign::ParseSamplePolicy(policy, &plan.sample_policy)) {
        throw ConfigError("bad --sample policy '" + policy + "'");
      }
    } else if (a == "--stop-ci") {
      char* end = nullptr;
      const std::string val = ArgStr(argc, argv, i, "--stop-ci");
      plan.stop_ci = std::strtod(val.c_str(), &end);
      if (end == val.c_str() || *end != '\0' || plan.stop_ci <= 0.0 ||
          plan.stop_ci >= 1.0) {
        throw ConfigError("--stop-ci expects an interval width in (0,1)");
      }
    } else if (a == "--worker") {
      worker_bin = ArgStr(argc, argv, i, "--worker");
    } else if (a == "--hubd") {
      hubd_bin = ArgStr(argc, argv, i, "--hubd");
    } else if (a == "--hub") {
      for (const std::string& ep : Split(ArgStr(argc, argv, i, "--hub"), ',')) {
        if (!ep.empty()) hub_endpoints.push_back(ep);
      }
    } else if (a == "--spawn-hub") {
      spawn_hubs = ArgNum(argc, argv, i, "--spawn-hub");
    } else if (a == "--restarts") {
      max_restarts = ArgNum(argc, argv, i, "--restarts");
    } else if (a == "--records-format") {
      records_format = ArgStr(argc, argv, i, "--records-format");
      if (records_format != "csv" && records_format != "ctr") {
        throw ConfigError("bad --records-format '" + records_format +
                          "' (csv|ctr)");
      }
    } else if (a == "--obs") {
      obs = ArgNum(argc, argv, i, "--obs") != 0;
    } else if (a == "--help" || a == "-h") {
      Usage();
      return 0;
    } else {
      throw ConfigError("unknown flag '" + a + "'");
    }
  }
  if (app.empty() || dir.empty()) {
    Usage();
    return 2;
  }
  if (!hosts_file.empty()) {
    std::ifstream in(hosts_file);
    if (!in) throw ConfigError("cannot open hosts file '" + hosts_file + "'");
    std::uint64_t count = 0;
    std::string line;
    while (std::getline(in, line)) {
      while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
        line.pop_back();
      }
      if (line.empty() || line[0] == '#') continue;
      if (line != "local") {
        throw ConfigError("hosts file: only 'local' shards are supported, "
                          "got '" + line + "'");
      }
      ++count;
    }
    if (count == 0) throw ConfigError("hosts file lists no shards");
    shards = count;
  }
  if (shards == 0) throw ConfigError("--shards must be > 0");
  if (!hub_endpoints.empty() && spawn_hubs > 0) {
    throw ConfigError("--hub and --spawn-hub are mutually exclusive");
  }
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw ConfigError("cannot create --dir '" + dir + "': " +
                      std::strerror(errno));
  }
  if (worker_bin.empty()) worker_bin = SiblingBinary(argv[0], "chaser_run");
  if (hubd_bin.empty()) hubd_bin = SiblingBinary(argv[0], "chaser_hubd");

  std::vector<HubProc> hubs;
  for (std::uint64_t h = 0; h < spawn_hubs; ++h) {
    hubs.push_back(SpawnHub(hubd_bin, obs));
    hub_endpoints.push_back(hubs.back().endpoint);
    std::printf("chaser_fleet: hub %llu at %s%s%s\n",
                static_cast<unsigned long long>(h),
                hubs.back().endpoint.c_str(),
                hubs.back().obs_endpoint.empty() ? "" : ", obs ",
                hubs.back().obs_endpoint.c_str());
  }
  const auto stop_hubs = [&hubs] {
    for (HubProc& h : hubs) {
      if (h.pid > 0) {
        kill(h.pid, SIGTERM);
        waitpid(h.pid, nullptr, 0);
        h.pid = -1;
      }
    }
  };

  std::string hub_arg;
  for (const std::string& ep : hub_endpoints) {
    if (!hub_arg.empty()) hub_arg += ',';
    hub_arg += ep;
  }

  const bool ctr = records_format == "ctr";
  const auto worker_args = [&](std::uint64_t i) {
    const std::string base = dir + "/shard-" + std::to_string(i);
    std::vector<std::string> args = {
        worker_bin,
        "--app", app,
        "--runs", std::to_string(plan.runs),
        "--seed", std::to_string(plan.seed),
        "--shard", std::to_string(i) + "/" + std::to_string(shards),
        "--jobs", std::to_string(jobs),
        "--resume", base + ".journal",
        "--out", base + (ctr ? ".ctr" : ".csv"),
        "--records-format", records_format,
        "--status", base + ".status.json",
        "--report", base + ".report",
    };
    if (plan.sample_policy != campaign::SamplePolicy::kUniform) {
      args.push_back("--sample");
      args.push_back(campaign::SamplePolicyName(plan.sample_policy));
    }
    if (!hub_arg.empty()) {
      args.push_back("--hub");
      args.push_back(hub_arg);
    }
    if (obs) {
      // Ephemeral scrape port per worker (advertised in its status.json)
      // plus a per-shard Chrome trace for the post-run fleet merge.
      args.push_back("--obs-port");
      args.push_back("0");
      args.push_back("--trace-out");
      args.push_back(base + ".trace.json");
    }
    return args;
  };

  std::printf("chaser_fleet: %s, %llu runs, seed %llu, %llu shards%s\n",
              app.c_str(), static_cast<unsigned long long>(plan.runs),
              static_cast<unsigned long long>(plan.seed),
              static_cast<unsigned long long>(shards),
              hub_arg.empty() ? "" : (", hub " + hub_arg).c_str());

  // states: 0 running, 1 done, 2 failed.
  std::vector<int> states(shards, 0);
  std::vector<unsigned> restarts(shards, 0);
  std::map<pid_t, std::uint64_t> shard_of;
  for (std::uint64_t i = 0; i < shards; ++i) {
    const pid_t pid = SpawnLogged(worker_args(i),
                                  dir + "/shard-" + std::to_string(i) + ".log");
    shard_of[pid] = i;
  }
  WriteFleetStatus(dir, shards, states, restarts, hubs, obs);

  bool failed = false;
  while (!shard_of.empty()) {
    int status = 0;
    const pid_t pid = waitpid(-1, &status, WNOHANG);
    if (pid == 0) {
      WriteFleetStatus(dir, shards, states, restarts, hubs, obs);
      usleep(200 * 1000);
      continue;
    }
    if (pid < 0) {
      if (errno == EINTR) continue;
      throw ConfigError(std::string("waitpid: ") + std::strerror(errno));
    }
    const auto it = shard_of.find(pid);
    if (it == shard_of.end()) continue;  // a hub or unrelated child
    const std::uint64_t i = it->second;
    shard_of.erase(it);
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      states[i] = 1;
      std::printf("chaser_fleet: shard %llu done\n",
                  static_cast<unsigned long long>(i));
    } else if (restarts[i] < max_restarts) {
      ++restarts[i];
      std::printf("chaser_fleet: shard %llu exited abnormally (status %d), "
                  "restart %u/%llu — resuming from its journal\n",
                  static_cast<unsigned long long>(i), status, restarts[i],
                  static_cast<unsigned long long>(max_restarts));
      const pid_t npid = SpawnLogged(
          worker_args(i), dir + "/shard-" + std::to_string(i) + ".log");
      shard_of[npid] = i;
    } else {
      states[i] = 2;
      failed = true;
      std::fprintf(stderr,
                   "chaser_fleet: shard %llu failed after %u restarts (see "
                   "%s/shard-%llu.log)\n",
                   static_cast<unsigned long long>(i), restarts[i], dir.c_str(),
                   static_cast<unsigned long long>(i));
    }
    WriteFleetStatus(dir, shards, states, restarts, hubs, obs);
  }
  stop_hubs();
  if (failed) return 1;

  if (obs) MergeFleetTraces(dir, shards);

  plan.app = app;
  std::vector<std::string> inputs;
  for (std::uint64_t i = 0; i < shards; ++i) {
    inputs.push_back(dir + "/shard-" + std::to_string(i) +
                     (ctr ? ".ctr" : ".csv"));
  }
  MergeAndWrite(plan, inputs, dir + (ctr ? "/merged.ctr" : "/merged.csv"),
                dir + "/report.txt");
  return 0;
}

int RunTraceMerge(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> traces;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out") {
      out_path = ArgStr(argc, argv, i, "--out");
    } else if (a == "--help" || a == "-h") {
      Usage();
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      throw ConfigError("unknown flag '" + a + "'");
    } else {
      traces.push_back(a);
    }
  }
  if (out_path.empty() || traces.empty()) {
    Usage();
    return 2;
  }
  const obs::TraceMergeStats stats =
      obs::MergeChromeTraceFiles(traces, out_path);
  std::printf(
      "merged %zu traces (%llu events, clock skew up to %lld us) into %s\n",
      stats.files, static_cast<unsigned long long>(stats.events),
      static_cast<long long>(stats.max_skew_us), out_path.c_str());
  return 0;
}

int RunMerge(int argc, char** argv) {
  campaign::MergePlan plan;
  plan.runs = 200;
  plan.seed = 1;
  std::string out_path, report_path;
  std::vector<std::string> csvs;

  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--app") {
      plan.app = ArgStr(argc, argv, i, "--app");
    } else if (a == "--runs") {
      plan.runs = ArgNum(argc, argv, i, "--runs");
    } else if (a == "--seed") {
      plan.seed = ArgNum(argc, argv, i, "--seed");
    } else if (a == "--sample") {
      const std::string policy = ArgStr(argc, argv, i, "--sample");
      if (!campaign::ParseSamplePolicy(policy, &plan.sample_policy)) {
        throw ConfigError("bad --sample policy '" + policy + "'");
      }
    } else if (a == "--stop-ci") {
      char* end = nullptr;
      const std::string val = ArgStr(argc, argv, i, "--stop-ci");
      plan.stop_ci = std::strtod(val.c_str(), &end);
      if (end == val.c_str() || *end != '\0' || plan.stop_ci <= 0.0 ||
          plan.stop_ci >= 1.0) {
        throw ConfigError("--stop-ci expects an interval width in (0,1)");
      }
    } else if (a == "--out") {
      out_path = ArgStr(argc, argv, i, "--out");
    } else if (a == "--report") {
      report_path = ArgStr(argc, argv, i, "--report");
    } else if (a == "--help" || a == "-h") {
      Usage();
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      throw ConfigError("unknown flag '" + a + "'");
    } else {
      csvs.push_back(a);
    }
  }
  if (plan.app.empty() || csvs.empty()) {
    Usage();
    return 2;
  }
  MergeAndWrite(plan, csvs, out_path, report_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      Usage();
      return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "run") return RunFleet(argc, argv);
    if (cmd == "merge") return RunMerge(argc, argv);
    if (cmd == "trace-merge") return RunTraceMerge(argc, argv);
    if (cmd == "--help" || cmd == "-h") {
      Usage();
      return 0;
    }
    throw ConfigError("unknown subcommand '" + cmd +
                      "' (run|merge|trace-merge)");
  } catch (const ChaserError& e) {
    std::fprintf(stderr, "chaser_fleet: %s\n", e.what());
    return 2;
  }
}

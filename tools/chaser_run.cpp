// chaser_run — command-line fault-injection campaign driver.
//
// The productised entry point a user reaches for first:
//
//   chaser_run --app clamr --runs 500 --seed 7 --out /tmp/clamr.csv
//   chaser_run --app matvec --runs 1000 --inject-ranks 0 --no-trace
//   chaser_run --app lud --runs 200 --bits 1-3 --jobs 4
//
// Runs the campaign (golden run + N injection trials), prints the outcome
// distribution and termination breakdown, and optionally writes the per-run
// records to CSV for offline analysis (see campaign/report.h).
//
// Trials are seed-independent, so they fan out across a worker pool
// (campaign/parallel.h); the result is bit-identical to the serial engine
// for the same seed no matter the --jobs value.
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include <memory>

#include "apps/app.h"
#include "campaign/campaign.h"
#include "campaign/fleet.h"
#include "campaign/parallel.h"
#include "campaign/report.h"
#include "common/error.h"
#include "common/fileio.h"
#include "common/strings.h"
#include "hub/remote/client.h"
#include "hub/remote/protocol.h"
#include "obs/telemetry.h"
#include "store/ctr.h"
#include "tcg/shared_cache.h"

namespace {

using namespace chaser;

void Usage() {
  std::printf(
      "usage: chaser_run --app <bfs|kmeans|lud|matvec|clamr> [options]\n"
      "\n"
      "options:\n"
      "  --runs N            injection trials (default 200)\n"
      "  --seed N            campaign seed (default 1)\n"
      "  --bits LO-HI        random bit-flip width range (default 1-2)\n"
      "  --inject-ranks A,B  ranks to inject into (default: 0, or all for clamr)\n"
      "  --jobs N            worker threads (default: all hardware threads;\n"
      "                      1 = serial engine; results are seed-identical)\n"
      "  --sample POLICY     trial sampling policy (default uniform):\n"
      "                        uniform     rank uniform, invocation uniform —\n"
      "                                    today's behavior, byte-identical\n"
      "                        weighted    injection sites drawn by golden-run\n"
      "                                    execution mass (uniform over all\n"
      "                                    dynamic invocations)\n"
      "                        stratified  site equivalence classes drawn\n"
      "                                    uniformly, importance-weighted back\n"
      "                                    to the invocation estimand\n"
      "  --stop-ci W         stop early once every outcome rate's 95%% Wilson\n"
      "                      interval is narrower than W (e.g. 0.02); the stop\n"
      "                      point is deterministic in the seed and identical\n"
      "                      at any --jobs value (default 0 = run all trials)\n"
      "  --injector SPEC     fault injector, as name[:key=val,...] from the\n"
      "                      injector registry (default probabilistic):\n"
      "                        probabilistic[:bits=N,width=N]  random source-\n"
      "                                    operand bit flips — the default\n"
      "                        deterministic[:operand=I,mask=M] exact mask on\n"
      "                                    an exact operand\n"
      "                        group[:bits=N]    corrupt every FP source\n"
      "                        multibit[:bits=N] contiguous bit burst at a\n"
      "                                    random position\n"
      "                        burst[:span=N,bits=N] corrupt N adjacent\n"
      "                                    registers in one strike\n"
      "                        stuckat[:value=0|1,bits=N] pin bits for the\n"
      "                                    rest of the trial\n"
      "                        iskip       squash the targeted instruction\n"
      "                        rank-crash  kill the injected rank mid-run\n"
      "                      non-default injectors stamp the records CSV (v6)\n"
      "                      with injector and fault-class columns\n"
      "  --hub-fault-trigger SPEC\n"
      "                      like --hub-fault, but armed per trial: the model\n"
      "                      runs only inside each trial window (seeded from\n"
      "                      the trial RNG), never during the golden run\n"
      "  --no-trace          disable fault-propagation tracing\n"
      "  --spool DIR         stream each trial's full trace to DIR/trial-<seed>/\n"
      "                      (no event cap; inspect with chaser_analyze)\n"
      "  --out FILE          write per-run records as CSV (atomic: written to\n"
      "                      FILE.tmp and renamed into place)\n"
      "  --records-format F  how --out stores the records (default csv):\n"
      "                        csv  one records CSV, as before\n"
      "                        ctr  columnar CTR store (a directory of\n"
      "                             seg-*.ctr segments, ~10x smaller, written\n"
      "                             as trials commit); inspect with\n"
      "                             chaser_analyze query / export-csv. With\n"
      "                             --resume, a killed run's store resumes in\n"
      "                             place alongside the journal\n"
      "  --resume FILE       journal completed trials to FILE and, if it already\n"
      "                      holds trials from a killed run of this same campaign,\n"
      "                      replay them and execute only the missing seeds\n"
      "  --trial-retries N   rebuild the engine and retry a trial whose harness\n"
      "                      throws, up to N times, then quarantine it as\n"
      "                      outcome 'infra' instead of aborting (default 0)\n"
      "  --no-shared-tb-cache\n"
      "                      give every trial a private translation cache instead\n"
      "                      of the campaign-wide shared one (slower; the results\n"
      "                      are bit-identical either way)\n"
      "  --tb-cache-cap N    cap cached translation blocks per cache at N; on\n"
      "                      overflow the cache is flushed whole, QEMU-style\n"
      "                      (default 0 = unbounded)\n"
      "  --no-chain          do not chain translation blocks (every block exit\n"
      "                      returns to the dispatch loop)\n"
      "  --no-tlb            disable the flat software TLB in front of the\n"
      "                      guest page table\n"
      "  --dispatch MODE     interpreter engine: auto (default; computed-goto\n"
      "                      when compiled in), threaded, or switch — results\n"
      "                      are bit-identical across engines\n"
      "  --hub-fault SPEC    degrade TaintHub; SPEC is comma-separated k=v of\n"
      "                      drop=P (publish drop probability), delay=N (polls\n"
      "                      before a publish is visible), outage=A-B (hub down\n"
      "                      for operation clocks A..B), retries=N (receiver\n"
      "                      poll deadline), seed=N (drop-tape seed)\n"
      "\n"
      "fleet (see tools/chaser_fleet and chaser_hubd):\n"
      "  --shard I/N         run only global trials i with i %% N == I (seed\n"
      "                      order is preserved, so the N shards partition the\n"
      "                      campaign exactly); --stop-ci is deferred to the\n"
      "                      merge step, since the stop prefix is defined in\n"
      "                      global seed order. A --resume journal records the\n"
      "                      shard spec and refuses to resume a different one\n"
      "  --hub H:P[,H:P...]  publish/poll message taint through remote\n"
      "                      chaser_hubd server(s) instead of the in-process\n"
      "                      hub; >1 endpoint shards the key space\n"
      "  --report FILE       atomically write the rendered campaign report to\n"
      "                      FILE (the same text printed to stdout)\n"
      "\n"
      "observability (reports/CSVs/spools are byte-identical with these on or\n"
      "off — telemetry only observes):\n"
      "  --trace-out FILE    write a Chrome trace-event JSON (one tid per\n"
      "                      worker, spans per trial and per phase); open in\n"
      "                      chrome://tracing or https://ui.perfetto.dev\n"
      "  --status FILE       atomically rewrite FILE as live status.json every\n"
      "                      few trials (done/total, outcome tallies, rate, ETA)\n"
      "  --status-every N    rewrite the status file every N trials\n"
      "                      (default 0 = auto, about 1%% of the campaign)\n"
      "  --progress          force the one-line stderr progress meter even\n"
      "                      when stderr is not a terminal (with any other\n"
      "                      obs flag the meter is automatic on a TTY only)\n"
      "  --metrics FILE      write the full metrics registry as JSON at exit\n"
      "                      (with --out and any obs flag, defaults to\n"
      "                      <out>.metrics.json)\n"
      "  --obs-port P        serve live /metrics (Prometheus), /status and\n"
      "                      /healthz over HTTP on 127.0.0.1:P for scrapers\n"
      "                      and chaser_analyze top; 0 picks an ephemeral\n"
      "                      port, echoed as 'chaser_run: obs listening on'\n"
      "  --help              this text\n");
}

apps::AppSpec BuildApp(const std::string& name) {
  if (name == "bfs") return apps::BuildBfs({});
  if (name == "kmeans") return apps::BuildKmeans({});
  if (name == "lud") return apps::BuildLud({});
  if (name == "matvec") return apps::BuildMatvec({});
  if (name == "clamr") return apps::BuildClamr({});
  throw ConfigError("unknown app '" + name + "' (bfs|kmeans|lud|matvec|clamr)");
}

std::uint64_t ArgNum(int argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc) throw ConfigError(std::string("missing value for ") + flag);
  std::uint64_t v = 0;
  if (!ParseU64(argv[++i], &v)) {
    throw ConfigError(std::string("bad number for ") + flag);
  }
  return v;
}

/// Aggregate cache effectiveness across the whole campaign; printed while
/// the owning driver is still alive (the cache dies with it).
void PrintSharedCacheStats(const tcg::SharedTbCache* cache) {
  if (cache == nullptr) return;
  const tcg::SharedTbCache::Stats s = cache->stats();
  std::printf(
      "shared tb cache: %llu translations, %llu reuses, %llu epoch flushes, "
      "%llu evicted\n",
      static_cast<unsigned long long>(s.translations),
      static_cast<unsigned long long>(s.reuses),
      static_cast<unsigned long long>(s.epoch_flushes),
      static_cast<unsigned long long>(s.evicted_tbs));
}

}  // namespace

int main(int argc, char** argv) {
  std::string app_name;
  campaign::CampaignConfig config;
  config.runs = 200;
  config.seed = 1;
  std::string out_path;
  std::string records_format = "csv";
  std::string report_path;
  bool inject_ranks_given = false;
  std::uint64_t jobs = 0;  // 0 = hardware concurrency
  bool jobs_given = false;
  obs::TelemetryOptions obs_options;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--app") {
        if (i + 1 >= argc) throw ConfigError("missing value for --app");
        app_name = argv[++i];
      } else if (a == "--runs") {
        config.runs = ArgNum(argc, argv, i, "--runs");
      } else if (a == "--seed") {
        config.seed = ArgNum(argc, argv, i, "--seed");
      } else if (a == "--bits") {
        if (i + 1 >= argc) throw ConfigError("missing value for --bits");
        const std::vector<std::string> parts = Split(argv[++i], '-');
        std::uint64_t lo = 0, hi = 0;
        if (parts.size() != 2 || !ParseU64(parts[0], &lo) || !ParseU64(parts[1], &hi) ||
            lo == 0 || hi < lo || hi > 64) {
          throw ConfigError("--bits expects LO-HI with 1 <= LO <= HI <= 64");
        }
        config.flip_bits_min = static_cast<unsigned>(lo);
        config.flip_bits_max = static_cast<unsigned>(hi);
      } else if (a == "--inject-ranks") {
        if (i + 1 >= argc) throw ConfigError("missing value for --inject-ranks");
        for (const std::string& r : Split(argv[++i], ',')) {
          std::uint64_t v = 0;
          if (!ParseU64(r, &v)) throw ConfigError("bad rank in --inject-ranks");
          config.inject_ranks.insert(static_cast<Rank>(v));
        }
        inject_ranks_given = true;
      } else if (a == "--jobs") {
        jobs = ArgNum(argc, argv, i, "--jobs");
        jobs_given = true;
      } else if (a == "--sample") {
        if (i + 1 >= argc) throw ConfigError("missing value for --sample");
        const std::string policy = argv[++i];
        if (!campaign::ParseSamplePolicy(policy, &config.sample_policy)) {
          throw ConfigError("bad --sample policy '" + policy +
                            "' (uniform|weighted|stratified)");
        }
      } else if (a == "--stop-ci") {
        if (i + 1 >= argc) throw ConfigError("missing value for --stop-ci");
        char* end = nullptr;
        const std::string val = argv[++i];
        config.stop_ci = std::strtod(val.c_str(), &end);
        if (end == val.c_str() || *end != '\0' || config.stop_ci <= 0.0 ||
            config.stop_ci >= 1.0) {
          throw ConfigError("--stop-ci expects an interval width in (0,1)");
        }
      } else if (a == "--no-trace") {
        config.trace = false;
      } else if (a == "--resume") {
        if (i + 1 >= argc) throw ConfigError("missing value for --resume");
        config.journal_path = argv[++i];
      } else if (a == "--no-shared-tb-cache") {
        config.share_tb_cache = false;
      } else if (a == "--tb-cache-cap") {
        config.tb_cache_cap = ArgNum(argc, argv, i, "--tb-cache-cap");
      } else if (a == "--no-chain") {
        config.chain_tbs = false;
      } else if (a == "--no-tlb") {
        config.mem_tlb = false;
      } else if (a == "--dispatch") {
        if (i + 1 >= argc) throw ConfigError("missing value for --dispatch");
        const std::string mode = argv[++i];
        if (mode == "auto") {
          config.dispatch = vm::Dispatch::kAuto;
        } else if (mode == "threaded") {
          config.dispatch = vm::Dispatch::kThreaded;
        } else if (mode == "switch") {
          config.dispatch = vm::Dispatch::kSwitch;
        } else {
          throw ConfigError("bad --dispatch mode '" + mode +
                            "' (auto|threaded|switch)");
        }
      } else if (a == "--trial-retries") {
        config.trial_retries =
            static_cast<unsigned>(ArgNum(argc, argv, i, "--trial-retries"));
      } else if (a == "--hub-fault") {
        if (i + 1 >= argc) throw ConfigError("missing value for --hub-fault");
        config.hub_fault = hub::remote::ParseHubFaultSpec(argv[++i]);
      } else if (a == "--hub-fault-trigger") {
        if (i + 1 >= argc) {
          throw ConfigError("missing value for --hub-fault-trigger");
        }
        config.hub_fault_trigger =
            hub::remote::ParseHubFaultSpec(argv[++i], "--hub-fault-trigger");
      } else if (a == "--injector") {
        if (i + 1 >= argc) throw ConfigError("missing value for --injector");
        config.injector = core::ParseInjectorSpec(argv[++i]);
      } else if (a == "--shard") {
        if (i + 1 >= argc) throw ConfigError("missing value for --shard");
        const campaign::ShardSpec shard = campaign::ParseShardSpec(argv[++i]);
        config.shard_index = shard.index;
        config.shard_count = shard.count;
      } else if (a == "--hub") {
        if (i + 1 >= argc) throw ConfigError("missing value for --hub");
        for (const std::string& ep : Split(argv[++i], ',')) {
          if (!ep.empty()) config.hub_endpoints.push_back(ep);
        }
        if (config.hub_endpoints.empty()) {
          throw ConfigError("--hub: expected HOST:PORT[,HOST:PORT...]");
        }
      } else if (a == "--report") {
        if (i + 1 >= argc) throw ConfigError("missing value for --report");
        report_path = argv[++i];
      } else if (a == "--spool") {
        if (i + 1 >= argc) throw ConfigError("missing value for --spool");
        config.spool_dir = argv[++i];
      } else if (a == "--out") {
        if (i + 1 >= argc) throw ConfigError("missing value for --out");
        out_path = argv[++i];
      } else if (a == "--records-format") {
        if (i + 1 >= argc) {
          throw ConfigError("missing value for --records-format");
        }
        records_format = argv[++i];
        if (records_format != "csv" && records_format != "ctr") {
          throw ConfigError("bad --records-format '" + records_format +
                            "' (csv|ctr)");
        }
      } else if (a == "--trace-out") {
        if (i + 1 >= argc) throw ConfigError("missing value for --trace-out");
        obs_options.trace_path = argv[++i];
      } else if (a == "--status") {
        if (i + 1 >= argc) throw ConfigError("missing value for --status");
        obs_options.status_path = argv[++i];
      } else if (a == "--status-every") {
        obs_options.status_every = ArgNum(argc, argv, i, "--status-every");
      } else if (a == "--progress") {
        obs_options.progress = obs::ProgressMode::kOn;
      } else if (a == "--metrics") {
        if (i + 1 >= argc) throw ConfigError("missing value for --metrics");
        obs_options.metrics_path = argv[++i];
      } else if (a == "--obs-port") {
        const std::uint64_t port = ArgNum(argc, argv, i, "--obs-port");
        if (port > 65535) throw ConfigError("--obs-port out of range");
        obs_options.obs_port = static_cast<int>(port);
      } else if (a == "--help" || a == "-h") {
        Usage();
        return 0;
      } else {
        throw ConfigError("unknown flag '" + a + "'");
      }
    }
    if (app_name.empty()) {
      Usage();
      return 2;
    }

    apps::AppSpec spec = BuildApp(app_name);
    if (!inject_ranks_given && app_name == "clamr") {
      for (Rank r = 0; r < spec.num_ranks; ++r) config.inject_ranks.insert(r);
    }
    obs_options.shard_index = config.shard_index;
    obs_options.shard_count = config.shard_count;
    if (config.shard_count > 1 && config.stop_ci > 0.0) {
      std::fprintf(stderr,
                   "chaser_run: note: --stop-ci is deferred in shard workers; "
                   "the stop rule is applied at merge time (chaser_fleet)\n");
    }

    // Telemetry is armed only when an obs flag asked for it; with none, the
    // campaign runs with config.telemetry == nullptr and the instrumentation
    // sites stay on their no-profiler fast path.
    const bool obs_requested = !obs_options.trace_path.empty() ||
                               !obs_options.status_path.empty() ||
                               !obs_options.metrics_path.empty() ||
                               obs_options.progress != obs::ProgressMode::kOff ||
                               obs_options.obs_port >= 0;
    if (obs_requested && obs_options.metrics_path.empty() && !out_path.empty()) {
      obs_options.metrics_path = out_path + ".metrics.json";
    }
    // Any obs flag turns the meter on for interactive runs only; an
    // explicit --progress (kOn) still forces it into pipes and logs.
    if (obs_requested && obs_options.progress == obs::ProgressMode::kOff) {
      obs_options.progress = obs::ProgressMode::kAuto;
    }
    if (config.shard_count > 1) {
      // Fleet identity: one Perfetto process row per shard after the merge.
      obs_options.trace_pid =
          static_cast<std::uint32_t>(config.shard_index + 1);
      obs_options.trace_process_name =
          StrFormat("chaser shard-%llu/%llu",
                    static_cast<unsigned long long>(config.shard_index),
                    static_cast<unsigned long long>(config.shard_count));
    }
    std::unique_ptr<obs::Telemetry> telemetry;
    if (obs_requested) {
      telemetry = std::make_unique<obs::Telemetry>(obs_options);
      config.telemetry = telemetry.get();
      if (obs_options.obs_port >= 0) {
        // Machine-readable (cf. chaser_hubd's listening line): scripts that
        // pass --obs-port 0 learn the ephemeral port from this line.
        std::printf("chaser_run: obs listening on %s\n",
                    telemetry->obs_endpoint().c_str());
        std::fflush(stdout);
      }
      if (!obs_options.trace_path.empty() && !config.hub_endpoints.empty()) {
        // Trace anchors on the hub's clock: one handshake-derived offset per
        // worker, so merged fleet timelines align across hosts.
        try {
          const hub::remote::HubClockProbe probe =
              hub::remote::ProbeHubClock(config.hub_endpoints.front());
          telemetry->SetClockOffsetUs(probe.offset_us);
        } catch (const ConfigError& e) {
          std::fprintf(stderr,
                       "chaser_run: hub clock probe failed (%s); trace anchor "
                       "stays on the local clock\n",
                       e.what());
        }
      }
    }

    // The CTR store is written as trials commit (record_sink fires from the
    // drivers' ordered reduction, journal-replayed trials included), so a
    // killed run leaves a valid store prefix to resume from.
    std::unique_ptr<store::CtrStoreWriter> store_writer;
    if (!out_path.empty() && records_format == "ctr") {
      store::CtrStoreInfo identity;
      identity.campaign_seed = config.seed;
      identity.app = app_name;
      identity.sample_policy = config.sample_policy;
      identity.shard_index = config.shard_index;
      identity.shard_count = config.shard_count;
      store::CtrWriterOptions store_options;
      store_options.resume = !config.journal_path.empty();
      store_writer = std::make_unique<store::CtrStoreWriter>(
          out_path, identity, store_options);
      config.record_sink = [w = store_writer.get()](
                               const campaign::RunRecord& rec) { w->Add(rec); };
    }

    std::printf("chaser_run: %s, %llu runs, seed %llu, bits %u-%u, ranks %d, "
                "tracing %s\n",
                app_name.c_str(), static_cast<unsigned long long>(config.runs),
                static_cast<unsigned long long>(config.seed), config.flip_bits_min,
                config.flip_bits_max, spec.num_ranks, config.trace ? "on" : "off");
    if (config.shard_count > 1) {
      std::printf("shard: %llu/%llu (%zu of %llu trials)\n",
                  static_cast<unsigned long long>(config.shard_index),
                  static_cast<unsigned long long>(config.shard_count),
                  campaign::ShardTrialIndices(
                      config.runs, {config.shard_index, config.shard_count})
                      .size(),
                  static_cast<unsigned long long>(config.runs));
    }
    if (!config.hub_endpoints.empty()) {
      std::printf("hub: remote (%zu endpoint%s)\n", config.hub_endpoints.size(),
                  config.hub_endpoints.size() == 1 ? "" : "s");
    }
    if (!config.injector.IsDefault()) {
      std::printf("injector: %s (%s)\n", config.injector.name.c_str(),
                  core::InjectorRegistry::Global()
                      .Find(config.injector.name)
                      ->fault_class.c_str());
    }

    const auto print_golden = [](std::uint64_t instructions,
                                 const std::set<Rank>& ranks,
                                 auto&& execs_of) {
      std::printf("golden run: %llu instructions, targeted executions per rank:",
                  static_cast<unsigned long long>(instructions));
      for (const Rank r : ranks) {
        std::printf(" r%d=%llu", r,
                    static_cast<unsigned long long>(execs_of(r)));
      }
      std::printf("\n\n");
    };

    // The cache-stats source and Finish() both read the campaign-owned
    // shared cache, so they live inside the driver's scope.
    const auto attach_cache_stats = [&](const tcg::SharedTbCache* cache) {
      if (telemetry == nullptr || cache == nullptr) return;
      telemetry->SetCacheStatsSource([cache] {
        const tcg::SharedTbCache::Stats s = cache->stats();
        return obs::CacheStatsSnapshot{.translations = s.translations,
                                       .reuses = s.reuses,
                                       .epoch_flushes = s.epoch_flushes,
                                       .evicted_tbs = s.evicted_tbs};
      });
    };

    campaign::CampaignResult result;
    if (jobs_given && jobs == 1) {
      campaign::Campaign c(std::move(spec), config);
      c.RunGolden();
      print_golden(c.golden_instructions(), c.inject_ranks(),
                   [&](Rank r) { return c.golden_targeted_execs(r); });
      std::printf("engine: serial\n");
      attach_cache_stats(c.shared_tb_cache());
      result = c.Run();
      if (telemetry != nullptr) telemetry->Finish();
      std::printf("%s", result.Render(app_name).c_str());
      PrintSharedCacheStats(c.shared_tb_cache());
    } else {
      campaign::ParallelCampaign c(std::move(spec), config,
                                   static_cast<unsigned>(jobs));
      c.RunGolden();
      print_golden(c.golden_instructions(), c.inject_ranks(),
                   [&](Rank r) { return c.golden_targeted_execs(r); });
      std::printf("engine: parallel, %u workers\n", c.jobs());
      attach_cache_stats(c.shared_tb_cache());
      result = c.Run();
      if (telemetry != nullptr) telemetry->Finish();
      std::printf("%s", result.Render(app_name).c_str());
      PrintSharedCacheStats(c.shared_tb_cache());
    }

    if (config.trace) {
      const campaign::PropagationStats stats =
          campaign::AnalyzePropagation(result.records);
      std::printf(
          "propagation: %llu total tainted reads, %llu writes; "
          "%.1f%% of runs read more than they write\n",
          static_cast<unsigned long long>(stats.total_tainted_reads),
          static_cast<unsigned long long>(stats.total_tainted_writes),
          stats.pct_more_reads_than_writes);
    }

    if (!report_path.empty()) {
      WriteFileAtomic(report_path, result.Render(app_name));
      std::printf("wrote report to %s\n", report_path.c_str());
    }
    if (store_writer != nullptr) {
      store_writer->Finish();
      std::printf("wrote %llu records to %s (ctr store, %llu segment%s, "
                  "%llu resumed)\n",
                  static_cast<unsigned long long>(store_writer->added()),
                  out_path.c_str(),
                  static_cast<unsigned long long>(store_writer->segments()),
                  store_writer->segments() == 1 ? "" : "s",
                  static_cast<unsigned long long>(store_writer->stored()));
    } else if (!out_path.empty()) {
      // Atomic: a crash mid-write must never leave a half-written CSV where
      // a previous complete report used to be.
      std::ostringstream csv;
      campaign::WriteRecordsCsv(result.records, csv, config.sample_policy);
      WriteFileAtomic(out_path, csv.str());
      std::printf("wrote %zu records to %s\n", result.records.size(),
                  out_path.c_str());
    }
    if (!obs_options.trace_path.empty()) {
      std::printf("wrote Chrome trace to %s (chrome://tracing, Perfetto)\n",
                  obs_options.trace_path.c_str());
    }
    if (!obs_options.status_path.empty()) {
      std::printf("final status in %s\n", obs_options.status_path.c_str());
    }
    if (!obs_options.metrics_path.empty()) {
      std::printf("wrote metrics to %s\n", obs_options.metrics_path.c_str());
    }
    return 0;
  } catch (const ChaserError& e) {
    std::fprintf(stderr, "chaser_run: %s\n", e.what());
    return 2;
  }
}

#!/usr/bin/env bash
# fleet_smoke.sh — end-to-end smoke test for the sharded fleet pipeline.
#
# Proves the whole chain — chaser_hubd, two `chaser_run --shard` workers
# publishing taint through it, a SIGKILL mid-run, a journal resume, and the
# chaser_fleet merge — reproduces an unsharded single-process run byte for
# byte (records CSV and report). Companion to kill_resume_smoke.sh, one
# layer up the stack.
#
# usage: tools/fleet_smoke.sh [path/to/build/tools]
#
# Exits 0 on success, 1 on any divergence. Safe to run repeatedly.
set -u

TOOLS="${1:-build/tools}"
RUN="$TOOLS/chaser_run"
HUBD="$TOOLS/chaser_hubd"
FLEET="$TOOLS/chaser_fleet"
APP=matvec
RUNS=80
SEED=20260807

for bin in "$RUN" "$HUBD" "$FLEET"; do
  if [[ ! -x "$bin" ]]; then
    echo "fleet_smoke: binary not found at '$bin'" >&2
    echo "  build first (cmake --build build) or pass the tools dir" >&2
    exit 1
  fi
done

WORK="$(mktemp -d "${TMPDIR:-/tmp}/chaser-fleet-smoke.XXXXXX")"
HUB_PID=
trap '[[ -n "$HUB_PID" ]] && kill "$HUB_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

echo "== reference: unsharded single-process campaign ($RUNS trials)"
"$RUN" --app "$APP" --runs "$RUNS" --seed "$SEED" --jobs 1 \
       --out "$WORK/ref.csv" --report "$WORK/ref.report" \
       >"$WORK/ref.log" 2>&1 || {
  echo "fleet_smoke: FAIL (reference run crashed; see $WORK/ref.log)"; exit 1; }

echo "== hub: chaser_hubd on an ephemeral port"
"$HUBD" --port 0 >"$WORK/hubd.log" 2>&1 &
HUB_PID=$!
for _ in $(seq 1 500); do
  grep -q 'listening on' "$WORK/hubd.log" 2>/dev/null && break
  sleep 0.01
done
ENDPOINT="$(sed -n 's/^chaser_hubd: listening on //p' "$WORK/hubd.log" | head -1)"
if [[ -z "$ENDPOINT" ]]; then
  echo "fleet_smoke: FAIL (chaser_hubd never came up; see $WORK/hubd.log)"
  exit 1
fi
echo "   hub at $ENDPOINT"

shard() {  # shard <i> -> runs shard i/2 against the hub, journaled
  local i="$1"
  "$RUN" --app "$APP" --runs "$RUNS" --seed "$SEED" --jobs 1 \
         --shard "$i/2" --hub "$ENDPOINT" \
         --resume "$WORK/shard-$i.journal" \
         --out "$WORK/shard-$i.csv"
}

echo "== shards: worker 0 runs clean; worker 1 is SIGKILLed mid-run"
shard 0 >"$WORK/shard-0.log" 2>&1 || {
  echo "fleet_smoke: FAIL (shard 0 crashed; see $WORK/shard-0.log)"; exit 1; }

shard 1 >"$WORK/shard-1.log" 2>&1 &
VICTIM=$!
for _ in $(seq 1 500); do
  size=$(stat -c %s "$WORK/shard-1.journal" 2>/dev/null || echo 0)
  [[ "$size" -gt 256 ]] && break
  kill -0 "$VICTIM" 2>/dev/null || break
  sleep 0.01
done
if kill -9 "$VICTIM" 2>/dev/null; then
  echo "   killed shard 1 (pid $VICTIM) with journal at $(stat -c %s "$WORK/shard-1.journal" 2>/dev/null || echo 0) bytes"
else
  echo "   shard 1 finished before the kill landed; resume becomes a replay"
fi
wait "$VICTIM" 2>/dev/null

echo "== resume: shard 1 reruns from its journal"
shard 1 >"$WORK/shard-1.resume.log" 2>&1 || {
  echo "fleet_smoke: FAIL (shard 1 resume crashed; see $WORK/shard-1.resume.log)"
  exit 1; }

echo "== merge: chaser_fleet merge over both shard CSVs"
"$FLEET" merge --app "$APP" --runs "$RUNS" --seed "$SEED" \
         --out "$WORK/merged.csv" --report "$WORK/merged.report" \
         "$WORK/shard-0.csv" "$WORK/shard-1.csv" \
         >"$WORK/merge.log" 2>&1 || {
  echo "fleet_smoke: FAIL (merge crashed; see $WORK/merge.log)"; exit 1; }

fail=0
if ! diff -q "$WORK/ref.csv" "$WORK/merged.csv" >/dev/null; then
  echo "fleet_smoke: FAIL — merged CSV differs from the unsharded reference"
  diff "$WORK/ref.csv" "$WORK/merged.csv" | head -20
  fail=1
fi
if ! diff -q "$WORK/ref.report" "$WORK/merged.report" >/dev/null; then
  echo "fleet_smoke: FAIL — merged report differs from the unsharded reference"
  diff "$WORK/ref.report" "$WORK/merged.report" | head -20
  fail=1
fi

echo "== analyze: chaser_analyze summarize merges both shard CSVs"
ANALYZE="$TOOLS/chaser_analyze"
if [[ -x "$ANALYZE" ]]; then
  "$ANALYZE" summarize "$WORK/shard-0.csv" "$WORK/shard-1.csv" \
      >"$WORK/summary.txt" 2>&1 || {
    echo "fleet_smoke: FAIL (chaser_analyze summarize crashed)"; fail=1; }
  grep -q "$RUNS records" "$WORK/summary.txt" || {
    echo "fleet_smoke: FAIL — summarize did not see all $RUNS records"
    head -5 "$WORK/summary.txt"; fail=1; }
fi

kill "$HUB_PID" 2>/dev/null
wait "$HUB_PID" 2>/dev/null
HUB_PID=

if [[ "$fail" -eq 0 ]]; then
  echo "fleet_smoke: PASS — 2-shard remote-hub run (with a kill+resume) is byte-identical to the unsharded reference"
fi
exit "$fail"
